(* Tests for the exploration-coverage layer (Coverage): fingerprint
   commutation invariance, exact-set / Bloom-tier unique counting,
   recording passivity (engine fingerprints identical with and without
   coverage, sequential and parallel; fuzz reports unchanged in uniform
   mode), the deterministic golden report for hw-queue at jobs=1, a
   qcheck pass over randomly assembled observations, the coverage rows
   of stats diff, guided-fuzz smoke, and parent-directory creation for
   --*-out paths. *)

(* ---------------- fingerprints ----------------------------------------- *)

let fp_of events = Coverage.fp_value (List.fold_left Coverage.fp_feed Coverage.fp_empty events)

let test_fp_commutation () =
  let open Trace in
  let base p obj = Step { proc = p; obj; info = None; noop = false } in
  (* Adjacent steps on distinct objects commute: same fingerprint. *)
  let t1 = [ Invoke { proc = 0; op = 7 }; base 0 "a"; base 1 "b"; Return { proc = 0; resp = 1 } ] in
  let t2 = [ Invoke { proc = 0; op = 7 }; base 1 "b"; base 0 "a"; Return { proc = 0; resp = 1 } ] in
  Alcotest.(check int) "distinct-object swap is invariant" (fp_of t1) (fp_of t2);
  (* Adjacent steps on the same object do not. *)
  let s1 = [ base 0 "a"; base 1 "a" ] in
  let s2 = [ base 1 "a"; base 0 "a" ] in
  Alcotest.(check bool) "same-object swap changes the fingerprint" true (fp_of s1 <> fp_of s2);
  (* History events are order-sensitive. *)
  let h1 = [ Invoke { proc = 0; op = 1 }; Invoke { proc = 1; op = 2 } ] in
  let h2 = [ Invoke { proc = 1; op = 2 }; Invoke { proc = 0; op = 1 } ] in
  Alcotest.(check bool) "history order changes the fingerprint" true (fp_of h1 <> fp_of h2);
  Alcotest.(check bool) "fingerprints are non-negative" true (fp_of t1 >= 0 && fp_of s1 >= 0)

(* A family of visibly distinct one-object traces. *)
let mk_trace i : (int, int) Trace.t =
  [
    Trace.Invoke { proc = 0; op = i };
    Trace.Step { proc = 0; obj = "a"; info = None; noop = false };
    Trace.Return { proc = 0; resp = i };
  ]

let test_exact_dedup () =
  let c = Coverage.create () in
  let sh = Coverage.shard c ~domain:0 in
  Coverage.observe_node sh ~depth:1 ~branching:2 (mk_trace 1);
  Coverage.observe_node sh ~depth:2 ~branching:1 (mk_trace 1);
  Coverage.observe_node sh ~depth:3 ~branching:0 (mk_trace 2);
  let st = Coverage.stats c in
  Alcotest.(check int) "three observations" 3 st.Coverage.observations;
  Alcotest.(check int) "two unique worlds" 2 st.Coverage.unique;
  Alcotest.(check bool) "still exact" true st.Coverage.exact;
  Alcotest.(check int) "max depth" 3 st.Coverage.max_depth

let test_bloom_tier () =
  let c = Coverage.create ~exact_limit:4 () in
  let sh = Coverage.shard c ~domain:0 in
  let n = 200 in
  for i = 1 to n do
    Coverage.observe_node sh ~depth:1 ~branching:1 (mk_trace i)
  done;
  let st = Coverage.stats c in
  Alcotest.(check bool) "flipped to Bloom" false st.Coverage.exact;
  Alcotest.(check int) "observations exact regardless" n st.Coverage.observations;
  (* 200 elements in a 2^24-bit filter: the cardinality estimate is
     essentially exact; allow 5% slack anyway. *)
  Alcotest.(check bool)
    (Printf.sprintf "estimate near %d (got %d)" n st.Coverage.unique)
    true
    (abs (st.Coverage.unique - n) <= n / 20);
  match Coverage.validate (Coverage.to_json c ~meta:[]) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bloomed report invalid: %s" e

let test_observe_run_novelty () =
  let c = Coverage.create () in
  let sh = Coverage.shard c ~domain:0 in
  let t = mk_trace 9 in
  let nov1 = Coverage.observe_run sh ~run:0 t in
  let nov2 = Coverage.observe_run sh ~run:1 t in
  Alcotest.(check bool) "first run finds novelty" true (nov1 > 0);
  Alcotest.(check int) "replay finds none" 0 nov2;
  Coverage.note_corpus c ~mode:"coverage" ~runs:2 ~retained:1 ~dropped:0;
  let json = Coverage.to_json c ~meta:[] in
  (match Coverage.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "run report invalid: %s" e);
  let open Obs_json in
  (match Option.bind (member "attribution" json) to_list with
  | Some (row :: _) ->
      Alcotest.(check (option int)) "novelty attributed to run 0" (Some 0)
        (Option.bind (member "run" row) to_int)
  | _ -> Alcotest.fail "attribution missing");
  match Option.bind (member "corpus" json) (member "mode") with
  | Some (String "coverage") -> ()
  | _ -> Alcotest.fail "corpus mode missing"

(* ---------------- engine passivity ------------------------------------- *)

let fingerprint ?coverage ~jobs name =
  match Registry.find name with
  | None -> Alcotest.failf "unknown registry object %s" name
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let v, s = L.check_strong_stats ?coverage ~jobs prog in
      Format.asprintf "%a nodes=%d hits=%d depth=%d gen=%d killed=%d dead=%d vf=%d" L.pp_verdict v
        s.Lincheck.nodes s.Lincheck.cache_hits s.Lincheck.max_frontier_depth
        s.Lincheck.candidates_generated s.Lincheck.candidates_killed s.Lincheck.dead_ends
        s.Lincheck.validate_failures

let test_coverage_passive () =
  let plain = fingerprint ~jobs:1 "counter" in
  let c1 = Coverage.create () in
  Alcotest.(check string) "jobs=1 fingerprint unchanged" plain
    (fingerprint ~coverage:c1 ~jobs:1 "counter");
  let c4 = Coverage.create () in
  Alcotest.(check string) "jobs=4 fingerprint unchanged" plain
    (fingerprint ~coverage:c4 ~jobs:4 "counter");
  let s1 = Coverage.stats c1 in
  Alcotest.(check bool) "coverage recorded work" true (s1.Coverage.observations > 0);
  (* Sequential coverage is itself deterministic: run it again and the
     reports match byte for byte. *)
  let c1' = Coverage.create () in
  ignore (fingerprint ~coverage:c1' ~jobs:1 "counter");
  Alcotest.(check string) "jobs=1 report deterministic"
    (Obs_json.to_string (Coverage.to_json c1 ~meta:[]))
    (Obs_json.to_string (Coverage.to_json c1' ~meta:[]))

let test_mult_check_covered () =
  let open Spec.Queue_spec in
  let t =
    [
      Trace.Invoke { proc = 0; op = Enq 1 };
      Trace.Return { proc = 0; resp = Ok_ };
      Trace.Invoke { proc = 1; op = Deq };
      Trace.Invoke { proc = 2; op = Deq };
      Trace.Return { proc = 1; resp = Item 1 };
      Trace.Return { proc = 2; resp = Item 1 };
    ]
  in
  let plain = Mult_check.check_budgeted Mult_check.Queue t in
  let c = Coverage.create () in
  let covered = Mult_check.check_budgeted ~coverage:c Mult_check.Queue t in
  Alcotest.(check bool) "outcome unchanged" true (plain = covered);
  Alcotest.(check int) "input trace observed" 1 (Coverage.stats c).Coverage.observations

let test_fuzz_uniform_passive () =
  match Registry.find "counter" with
  | None -> Alcotest.fail "counter not registered"
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module A = Adversary.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let facts r = (r.A.fz_runs, r.A.fz_crashed_runs, r.A.fz_total_steps, r.A.fz_violation) in
      let plain = A.fuzz ~seed:5 ~runs:60 ~shrink:false prog in
      let cov = Coverage.create () in
      let covered = A.fuzz ~seed:5 ~runs:60 ~shrink:false ~coverage:cov prog in
      Alcotest.(check bool) "uniform campaign unchanged under coverage" true
        (facts plain = facts covered);
      let st = Coverage.stats cov in
      Alcotest.(check bool) "runs were observed" true (st.Coverage.observations > 0);
      match Coverage.validate (Coverage.to_json cov ~meta:[]) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "fuzz report invalid: %s" e

let test_fuzz_guided_smoke () =
  match Registry.find "counter" with
  | None -> Alcotest.fail "counter not registered"
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module A = Adversary.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let cov = Coverage.create () in
      let r = A.fuzz ~seed:3 ~runs:40 ~shrink:false ~coverage:cov ~guided:true prog in
      Alcotest.(check int) "counter has no violation: all runs executed" 40 r.A.fz_runs;
      Alcotest.(check bool) "no violation" true (r.A.fz_violation = None);
      let json = Coverage.to_json cov ~meta:[] in
      (match Coverage.validate json with
      | Ok () -> ()
      | Error e -> Alcotest.failf "guided report invalid: %s" e);
      let open Obs_json in
      (match Option.bind (member "corpus" json) (member "mode") with
      | Some (String "coverage") -> ()
      | _ -> Alcotest.fail "guided campaign must record corpus mode \"coverage\"");
      match Option.bind (Option.bind (member "corpus" json) (member "retained")) to_int with
      | Some n -> Alcotest.(check bool) "corpus retained seeds" true (n > 0)
      | None -> Alcotest.fail "corpus retained missing"

(* ---------------- golden report (hw-queue, jobs=1) ---------------------- *)

(* The jobs=1 report carries no timing fields, so it is a pure function
   of the workload and engine — pinned byte-for-byte against the
   committed baseline that CI also gates against with stats diff. *)
let test_golden_hw_queue () =
  match Registry.find "hw-queue" with
  | None -> Alcotest.fail "hw-queue not registered"
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let cov = Coverage.create () in
      let _ =
        L.check_strong_stats ~max_nodes:3_000_000 ?max_depth:c.default_depth ~jobs:1
          ~checkpoint_stride:16 ~coverage:cov prog
      in
      let meta =
        [
          ("command", Obs_json.String "coverage");
          ("object", Obs_json.String "hw-queue");
          ("jobs", Obs_json.Int 1);
        ]
      in
      let got = Obs_json.to_string (Coverage.to_json cov ~meta) in
      let baseline =
        (* cwd is test/ under `dune runtest`, the project root under
           `dune exec test/test_coverage.exe`. *)
        if Sys.file_exists "baselines/coverage-hw-queue-j1.json" then
          "baselines/coverage-hw-queue-j1.json"
        else "test/baselines/coverage-hw-queue-j1.json"
      in
      let want = String.trim (In_channel.with_open_text baseline In_channel.input_all) in
      Alcotest.(check string) "golden slin-coverage/v1 report" want got

(* ---------------- qcheck: random observations still validate ------------ *)

let event_gen =
  let open QCheck.Gen in
  frequency
    [
      (2, map2 (fun p op -> Trace.Invoke { proc = p; op }) (int_bound 2) (int_bound 5));
      (2, map2 (fun p resp -> Trace.Return { proc = p; resp }) (int_bound 2) (int_bound 5));
      ( 4,
        map3
          (fun p o i -> Trace.Step { proc = p; obj = (if o then "a" else "b"); info = i; noop = false })
          (int_bound 2) bool
          (oneofl [ None; Some "read"; Some "w" ]) );
    ]

let obs_gen =
  let open QCheck.Gen in
  pair bool
    (list_size (int_bound 30)
       (quad (int_bound 2) (int_bound 50) (int_bound 8) (list_size (int_bound 12) event_gen)))

let qcheck_coverage_tests =
  let arb = QCheck.make obs_gen in
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:200 ~name:"random reports validate and round-trip" arb
        (fun (small, ops) ->
          let c = if small then Coverage.create ~exact_limit:4 () else Coverage.create () in
          List.iter
            (fun (dom, depth, branching, t) ->
              Coverage.observe_node (Coverage.shard c ~domain:dom) ~depth ~branching t)
            ops;
          let json = Coverage.to_json c ~meta:[ ("command", Obs_json.String "test") ] in
          (match Coverage.validate json with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_reportf "invalid: %s" e);
          (* survives a print/parse cycle *)
          (match Coverage.validate (Obs_json.of_string_exn (Obs_json.to_string json)) with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_reportf "reparsed invalid: %s" e);
          (Coverage.stats c).Coverage.observations = List.length ops);
    ]

(* ---------------- stats diff on coverage reports ------------------------ *)

let coverage_doc traces =
  let c = Coverage.create () in
  let sh = Coverage.shard c ~domain:0 in
  List.iter (fun t -> Coverage.observe_node sh ~depth:1 ~branching:1 t) traces;
  Coverage.to_json c ~meta:[]

let step p obj : (int, int) Trace.event = Trace.Step { proc = p; obj; info = None; noop = false }

let test_diff_coverage_directions () =
  let open Stats_diff in
  Alcotest.(check bool) "unique_ratio is higher-better" true
    (direction_of_metric "unique_ratio" = Higher_better);
  Alcotest.(check bool) "conflict_ratio is neutral" true
    (direction_of_metric "conflict_ratio" = Neutral);
  Alcotest.(check bool) "unique_worlds is neutral" true
    (direction_of_metric "unique_worlds" = Neutral)

let test_diff_coverage_self () =
  let doc = coverage_doc [ [ step 0 "a"; step 1 "b" ]; [ step 0 "b"; step 1 "a"; step 0 "a" ] ] in
  match Stats_diff.diff ~old_doc:doc ~new_doc:doc with
  | Error e -> Alcotest.failf "coverage self-diff failed: %s" e
  | Ok es ->
      Alcotest.(check bool) "coverage flattens to rows" true (List.length es > 5);
      Alcotest.(check int) "self-diff has no regressions" 0
        (List.length (Stats_diff.regressions es))

let test_diff_coverage_removed_pair_gates () =
  let old_doc = coverage_doc [ [ step 0 "a"; step 1 "b" ]; [ step 0 "a"; step 1 "a" ] ] in
  let new_doc = coverage_doc [ [ step 0 "a"; step 1 "a" ] ] in
  match Stats_diff.diff ~old_doc ~new_doc with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok es ->
      let removed =
        List.filter (fun e -> e.Stats_diff.e_status = Stats_diff.Removed) es
      in
      Alcotest.(check bool) "vanished matrix cell is Removed" true (removed <> []);
      Alcotest.(check bool) "and it gates at any threshold" true
        (List.length (Stats_diff.regressions ~threshold:99.0 es) >= List.length removed)

let test_diff_coverage_schema_mismatch () =
  let cov = coverage_doc [ [ step 0 "a" ] ] in
  let bench =
    Obs_json.Assoc [ ("schema", Obs_json.String "slin-bench/v1"); ("results", Obs_json.List []) ]
  in
  match Stats_diff.diff ~old_doc:bench ~new_doc:cov with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bench vs coverage must not diff"

let test_validate_rejects_garbage () =
  match Coverage.validate (Obs_json.Assoc [ ("schema", Obs_json.String "slin-coverage/v1") ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "schema tag alone must not validate"

(* ---------------- parent-directory creation ----------------------------- *)

let test_ensure_parent_dir () =
  let base = Filename.concat (Filename.get_temp_dir_name ()) "covtest-out" in
  let path = Filename.concat base "deep/nested/report.json" in
  Obs.ensure_parent_dir path;
  Out_channel.with_open_text path (fun oc -> output_string oc "x");
  Alcotest.(check bool) "nested path created and writable" true (Sys.file_exists path);
  (* idempotent, and a bare filename is a no-op *)
  Obs.ensure_parent_dir path;
  Obs.ensure_parent_dir "plain.json";
  Alcotest.(check bool) "still there" true (Sys.file_exists path)

(* ---------------- suite ------------------------------------------------- *)

let () =
  Alcotest.run "coverage"
    [
      ( "fingerprints",
        [
          Alcotest.test_case "commutation invariance" `Quick test_fp_commutation;
          Alcotest.test_case "exact dedup" `Quick test_exact_dedup;
          Alcotest.test_case "bloom tier" `Quick test_bloom_tier;
          Alcotest.test_case "run novelty and attribution" `Quick test_observe_run_novelty;
        ] );
      ( "passivity",
        [
          Alcotest.test_case "engine fingerprints unchanged" `Quick test_coverage_passive;
          Alcotest.test_case "mult_check covered" `Quick test_mult_check_covered;
          Alcotest.test_case "uniform fuzz unchanged" `Quick test_fuzz_uniform_passive;
          Alcotest.test_case "guided fuzz smoke" `Quick test_fuzz_guided_smoke;
        ] );
      ("golden", [ Alcotest.test_case "hw-queue jobs=1 report" `Slow test_golden_hw_queue ]);
      ("qcheck", qcheck_coverage_tests);
      ( "stats-diff",
        [
          Alcotest.test_case "coverage metric directions" `Quick test_diff_coverage_directions;
          Alcotest.test_case "coverage self-diff" `Quick test_diff_coverage_self;
          Alcotest.test_case "removed pair cell gates" `Quick test_diff_coverage_removed_pair_gates;
          Alcotest.test_case "schema mismatch" `Quick test_diff_coverage_schema_mismatch;
          Alcotest.test_case "validate rejects garbage" `Quick test_validate_rejects_garbage;
        ] );
      ("outputs", [ Alcotest.test_case "parent dirs for --*-out" `Quick test_ensure_parent_dir ]);
    ]
