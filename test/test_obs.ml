(* Tests for the observability layer (Slin_obs): instrument arithmetic,
   JSON printing/parsing round trips, the JSONL sink, the Chrome
   trace-event exporter, the simulator's aggregated metrics, and the
   agreement between [check_strong_stats] and the verdict it wraps. *)

(* --- instruments ---------------------------------------------------- *)

let with_obs_enabled f =
  Obs.enabled := true;
  Fun.protect ~finally:(fun () -> Obs.enabled := false) f

let test_counter_arithmetic () =
  with_obs_enabled (fun () ->
      let c = Obs.counter "test.c1" in
      Alcotest.(check int) "fresh counter" 0 (Obs.count c);
      Obs.incr c;
      Obs.incr c;
      Obs.add c 40;
      Alcotest.(check int) "2 incr + add 40" 42 (Obs.count c));
  let c2 = Obs.counter "test.c2" in
  Obs.incr c2;
  Alcotest.(check int) "disabled counter stays 0" 0 (Obs.count c2)

let test_gauge_arithmetic () =
  with_obs_enabled (fun () ->
      let g = Obs.gauge "test.g1" in
      Obs.set g 3.5;
      Alcotest.(check (float 0.0)) "set" 3.5 (Obs.gauge_value g);
      Obs.observe_max g 2.0;
      Alcotest.(check (float 0.0)) "max keeps larger" 3.5 (Obs.gauge_value g);
      Obs.observe_max g 7.0;
      Alcotest.(check (float 0.0)) "max takes larger" 7.0 (Obs.gauge_value g))

let test_timer_arithmetic () =
  with_obs_enabled (fun () ->
      let t = Obs.timer "test.t1" in
      Obs.stop t;
      Alcotest.(check int) "stop without start is a no-op" 0 (Obs.timer_samples t);
      let x = Obs.time t (fun () -> Sys.opaque_identity (List.init 1000 Fun.id) |> List.length) in
      Alcotest.(check int) "timed thunk result" 1000 x;
      Alcotest.(check int) "one sample" 1 (Obs.timer_samples t);
      Alcotest.(check bool) "nonnegative total" true (Obs.timer_total_ns t >= 0);
      ignore (Obs.time t (fun () -> ()));
      Alcotest.(check int) "two samples" 2 (Obs.timer_samples t))

let test_snapshot_and_reset () =
  with_obs_enabled (fun () ->
      let c = Obs.counter "test.snap.c" in
      Obs.add c 5;
      let snap = Obs.snapshot () in
      (match List.assoc_opt "test.snap.c" snap with
      | Some (Obs_json.Int 5) -> ()
      | _ -> Alcotest.fail "counter missing from snapshot");
      Obs.reset ();
      Alcotest.(check int) "reset zeroes" 0 (Obs.count c))

(* --- JSON ----------------------------------------------------------- *)

let test_json_roundtrip () =
  let open Obs_json in
  let v =
    Assoc
      [
        ("s", String "a \"quoted\" \\ line\nwith\ttabs");
        ("i", Int (-42));
        ("f", Float 1.5);
        ("big", Float 1e100);
        ("t", Bool true);
        ("n", Null);
        ("l", List [ Int 1; Assoc [ ("x", Int 2) ]; List [] ]);
        ("empty", Assoc []);
      ]
  in
  let s = to_string v in
  Alcotest.(check bool) "reparses to equal value" true (of_string_exn s = v);
  (* Integral floats must stay floats across the round trip. *)
  Alcotest.(check bool) "2.0 stays a float" true (of_string_exn (to_string (Float 2.0)) = Float 2.0)

let test_json_escapes_and_unicode () =
  let open Obs_json in
  Alcotest.(check bool) "\\u escape decodes" true (of_string_exn {|"aAé"|} = String "aA\xc3\xa9");
  Alcotest.(check bool) "control char escaped" true (String.length (to_string (String "\x01")) > 4);
  Alcotest.(check bool) "control char round trip" true
    (of_string_exn (to_string (String "\x01\x02")) = String "\x01\x02")

(* qcheck round trips: the witness artifacts made the parser
   load-bearing, so hammer printer∘parser = id over adversarial values —
   escape-heavy and raw-byte strings, unicode, extreme ints, deep
   nesting. *)
let json_arbitrary =
  let open QCheck.Gen in
  let tricky_string =
    oneofl
      [
        "";
        "\"";
        "\\";
        "\\\\\"\\";
        "a \"quoted\" \\ line\nwith\ttabs\r";
        "\x01\x02\x7f\x00";
        "h\xc3\xa9llo";
        "\xe6\x97\xa5\xe6\x9c\xac\xe8\xaa\x9e";
        "\xf0\x9f\x90\xab wide unicode";
        String.make 200 '\\';
      ]
  in
  let str =
    oneof [ tricky_string; string_size ~gen:(char_range '\000' '\255') (int_bound 24) ]
  in
  let extreme_int = oneofl [ 0; 1; -1; 42; max_int; min_int; max_int - 1; min_int + 1 ] in
  let safe_float =
    map
      (fun f -> if Float.is_nan f || Float.abs f = Float.infinity then 0.5 else f)
      (oneof [ float; oneofl [ 0.0; -0.0; 2.0; 1e100; 1.5e-300; 3.141592653589793 ] ])
  in
  let scalar =
    oneof
      [
        map (fun s -> Obs_json.String s) str;
        map (fun i -> Obs_json.Int i) (oneof [ extreme_int; int ]);
        map (fun f -> Obs_json.Float f) safe_float;
        map (fun b -> Obs_json.Bool b) bool;
        return Obs_json.Null;
      ]
  in
  let tree =
    fix
      (fun self n ->
        if n <= 0 then scalar
        else
          frequency
            [
              (2, scalar);
              (1, map (fun l -> Obs_json.List l) (list_size (int_bound 4) (self (n - 1))));
              ( 1,
                map
                  (fun l -> Obs_json.Assoc l)
                  (list_size (int_bound 4) (pair str (self (n - 1)))) );
            ])
      4
  in
  QCheck.make tree ~print:Obs_json.to_string

let qcheck_roundtrip_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:1000 ~name:"to_string/of_string = id" json_arbitrary (fun v ->
          Obs_json.of_string_exn (Obs_json.to_string v) = v);
      QCheck.Test.make ~count:200 ~name:"pp/of_string = id" json_arbitrary (fun v ->
          Obs_json.of_string_exn (Format.asprintf "%a" Obs_json.pp v) = v);
      QCheck.Test.make ~count:200 ~name:"double round trip is stable" json_arbitrary (fun v ->
          let s = Obs_json.to_string v in
          Obs_json.to_string (Obs_json.of_string_exn s) = s);
    ]

let test_json_errors () =
  let open Obs_json in
  let bad s = match of_string s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "trailing garbage" true (bad "1 2");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "bare word" true (bad "bogus");
  Alcotest.(check bool) "unclosed object" true (bad "{\"a\":1")

(* --- JSONL ---------------------------------------------------------- *)

let test_jsonl_roundtrip () =
  let buf = Buffer.create 256 in
  let sink = Obs_jsonl.to_buffer buf in
  Obs_jsonl.emit sink ~ts_us:1.0 "alpha" [ ("k", Obs_json.Int 1) ];
  Obs_jsonl.emit sink ~ts_us:2.0 "beta" [ ("k", Obs_json.String "v") ];
  Obs_jsonl.emit sink "gamma" [];
  Alcotest.(check int) "three records" 3 (Obs_jsonl.records sink);
  let lines = String.split_on_char '\n' (Buffer.contents buf) |> List.filter (( <> ) "") in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  let parsed = List.map Obs_json.of_string_exn lines in
  let events =
    List.map (fun j -> Option.get (Option.bind (Obs_json.member "event" j) Obs_json.to_str)) parsed
  in
  Alcotest.(check (list string)) "event names in order" [ "alpha"; "beta"; "gamma" ] events;
  List.iter
    (fun j ->
      match Option.bind (Obs_json.member "ts_us" j) Obs_json.to_float with
      | Some ts -> Alcotest.(check bool) "ts_us nonnegative" true (ts >= 0.)
      | None -> Alcotest.fail "record missing ts_us")
    parsed

(* --- Chrome trace --------------------------------------------------- *)

let check_trace_events json ~expect_min =
  match Obs_json.(Option.bind (member "traceEvents" json) to_list) with
  | None -> Alcotest.fail "no traceEvents array"
  | Some events ->
      Alcotest.(check bool)
        (Printf.sprintf "at least %d events" expect_min)
        true
        (List.length events >= expect_min);
      List.iter
        (fun e ->
          let has k = Obs_json.member k e <> None in
          Alcotest.(check bool) "has ph" true (has "ph");
          Alcotest.(check bool) "has ts" true (has "ts");
          Alcotest.(check bool) "has pid" true (has "pid");
          Alcotest.(check bool) "has tid" true (has "tid");
          match Obs_json.(Option.bind (member "ph" e) to_str) with
          | Some ("B" | "E" | "X" | "i" | "C" | "M") -> ()
          | Some ph -> Alcotest.fail ("unexpected phase " ^ ph)
          | None -> Alcotest.fail "ph not a string")
        events

let test_chrome_trace_wellformed () =
  let tr = Obs_trace.create () in
  Obs_trace.process_name tr "test";
  Obs_trace.thread_name tr ~tid:0 "worker";
  Obs_trace.begin_span tr ~ts_us:0. "span";
  Obs_trace.instant tr ~ts_us:1. "tick";
  Obs_trace.counter tr ~ts_us:2. "nodes" 42.;
  Obs_trace.end_span tr ~ts_us:3. "span";
  Obs_trace.complete tr ~ts_us:0. ~dur_us:3. "whole";
  Alcotest.(check int) "size counts events" 7 (Obs_trace.size tr);
  let json = Obs_json.of_string_exn (Obs_trace.to_string tr) in
  check_trace_events json ~expect_min:7;
  (* The complete event must carry its duration. *)
  let events = Option.get Obs_json.(Option.bind (member "traceEvents" json) to_list) in
  let x =
    List.find
      (fun e -> Obs_json.(Option.bind (member "ph" e) to_str) = Some "X")
      events
  in
  Alcotest.(check bool) "X event has dur" true (Obs_json.member "dur" x <> None)

(* --- simulated executions ------------------------------------------- *)

(* A one-register program: p0 writes, p1 reads — tiny enough that the
   strong-linearizability game settles in well under a second. *)
let reg_prog : (Spec.Register.op, Spec.Register.resp) Sim.program =
  Harness.program
    ~make:(fun (module R : Runtime_intf.S) ->
      let r = R.obj ~name:"reg" 0 in
      fun (op : Spec.Register.op) : Spec.Register.resp ->
        match op with
        | Spec.Register.Write v ->
            R.access ~info:"write" r (fun _ -> (v, ()));
            Spec.Register.Ack
        | Spec.Register.Read -> Spec.Register.Value (R.read ~info:"read" r))
    ~workload:[| [ Spec.Register.Write 1 ]; [ Spec.Register.Read ] |]

let test_of_sim_trace () =
  let w = Sim.run_to_completion reg_prog in
  let tr =
    Obs_trace.of_sim_trace ~pp_op:Spec.Register.pp_op ~pp_resp:Spec.Register.pp_resp (Sim.trace w)
  in
  let json = Obs_json.of_string_exn (Obs_trace.to_string tr) in
  check_trace_events json ~expect_min:6;
  let events = Option.get Obs_json.(Option.bind (member "traceEvents" json) to_list) in
  let count ph =
    List.length
      (List.filter (fun e -> Obs_json.(Option.bind (member "ph" e) to_str) = Some ph) events)
  in
  (* Two completed operations: spans must balance. *)
  Alcotest.(check int) "balanced spans" (count "B") (count "E");
  Alcotest.(check int) "two operations" 2 (count "B");
  Alcotest.(check bool) "steps became instants" true (count "i" >= 2)

let test_sim_metrics () =
  Sim.Metrics.reset ();
  Sim.Metrics.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Sim.Metrics.enabled := false;
      Sim.Metrics.reset ())
    (fun () ->
      ignore (Sim.run_to_completion reg_prog);
      let snap = Sim.Metrics.snapshot () in
      let get k = Option.value ~default:0 (List.assoc_opt k snap) in
      Alcotest.(check int) "one world booted" 1 (get "world.boot");
      Alcotest.(check int) "two accesses" 2 (get "access.total");
      Alcotest.(check int) "both on reg" 2 (get "access.obj.reg");
      Alcotest.(check int) "one write" 1 (get "access.kind.write");
      Alcotest.(check int) "one read" 1 (get "access.kind.read");
      Alcotest.(check bool) "steps counted" true (get "step.total" >= 2));
  (* Disabled: nothing accumulates. *)
  ignore (Sim.run_to_completion reg_prog);
  Alcotest.(check (list (pair string int))) "disabled records nothing" [] (Sim.Metrics.snapshot ())

(* --- domain safety --------------------------------------------------- *)

(* Counters are atomics: hammering one from several real domains (via
   the parallel runtime, exactly how checker workers run) must lose
   nothing.  (Gauges and timers are mutex-guarded; counters are the only
   instrument bumped from worker domains.) *)
let test_counter_parallel () =
  with_obs_enabled (fun () ->
      let c = Obs.counter "test.par.c" in
      let domains = 4 and per = 50_000 in
      ignore
        (Par_runtime.run ~n:domains (fun _p ->
             for i = 1 to per do
               if i mod 10 = 0 then Obs.add c 3 else Obs.incr c
             done));
      let expect = domains * (per + (per / 10 * 2)) in
      Alcotest.(check int) "no lost increments" expect (Obs.count c))

(* Sim.Metrics shards per domain: concurrent simulations must not lose
   counts, and the merged snapshot must equal domains x one run's
   tallies. *)
let test_sim_metrics_parallel () =
  Sim.Metrics.reset ();
  Sim.Metrics.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Sim.Metrics.enabled := false;
      Sim.Metrics.reset ())
    (fun () ->
      ignore (Sim.run_to_completion reg_prog);
      let one = Sim.Metrics.snapshot () in
      Sim.Metrics.reset ();
      let domains = 4 and per = 25 in
      let workers =
        List.init domains (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per do
                  ignore (Sim.run_to_completion reg_prog)
                done))
      in
      List.iter Domain.join workers;
      let merged = Sim.Metrics.snapshot () in
      List.iter
        (fun (k, v) ->
          let got = Option.value ~default:0 (List.assoc_opt k merged) in
          Alcotest.(check int) (k ^ " scales exactly") (domains * per * v) got)
        one)

(* --- checker stats --------------------------------------------------- *)

module L = Lincheck.Make (Spec.Register)

let test_check_strong_stats_agree () =
  let v_plain = L.check_strong reg_prog in
  let ticks = ref 0 in
  let v, st =
    L.check_strong_stats ~on_progress:(fun ~nodes:_ ~elapsed_ns:_ -> incr ticks)
      ~progress_every:1 reg_prog
  in
  let nodes_of = function
    | L.Strongly_linearizable { nodes } -> nodes
    | L.Not_strongly_linearizable { nodes; _ } -> nodes
    | L.Out_of_budget { nodes; _ } -> nodes
    | L.Not_linearizable _ -> Alcotest.fail "register program must be linearizable"
  in
  Alcotest.(check string) "same verdict as check_strong"
    (Format.asprintf "%a" L.pp_verdict v_plain)
    (Format.asprintf "%a" L.pp_verdict v);
  Alcotest.(check int) "stats.nodes = verdict nodes" (nodes_of v) st.Lincheck.nodes;
  Alcotest.(check int) "heartbeat fired once per node" st.Lincheck.nodes !ticks;
  Alcotest.(check bool) "explored something" true (st.Lincheck.nodes > 0);
  Alcotest.(check bool) "frontier advanced" true (st.Lincheck.max_frontier_depth > 0);
  Alcotest.(check bool) "candidates enumerated" true (st.Lincheck.candidates_generated > 0);
  Alcotest.(check bool) "elapsed measured" true (st.Lincheck.elapsed_ns >= 0)

let test_check_strong_stats_tracer () =
  let tr = Obs_trace.create () in
  let _v, _st = L.check_strong_stats ~tracer:tr ~progress_every:1 reg_prog in
  let json = Obs_json.of_string_exn (Obs_trace.to_string tr) in
  check_trace_events json ~expect_min:3;
  let events = Option.get Obs_json.(Option.bind (member "traceEvents" json) to_list) in
  Alcotest.(check bool) "has counter samples" true
    (List.exists (fun e -> Obs_json.(Option.bind (member "ph" e) to_str) = Some "C") events);
  Alcotest.(check bool) "has the check_strong span" true
    (List.exists (fun e -> Obs_json.(Option.bind (member "name" e) to_str) = Some "check_strong")
       events)

let () =
  Alcotest.run "obs"
    [
      ( "instruments",
        [
          Alcotest.test_case "counter" `Quick test_counter_arithmetic;
          Alcotest.test_case "gauge" `Quick test_gauge_arithmetic;
          Alcotest.test_case "timer" `Quick test_timer_arithmetic;
          Alcotest.test_case "snapshot+reset" `Quick test_snapshot_and_reset;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes+unicode" `Quick test_json_escapes_and_unicode;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ]
        @ qcheck_roundtrip_tests );
      ("jsonl", [ Alcotest.test_case "round trip" `Quick test_jsonl_roundtrip ]);
      ( "chrome-trace",
        [
          Alcotest.test_case "well-formed" `Quick test_chrome_trace_wellformed;
          Alcotest.test_case "of_sim_trace" `Quick test_of_sim_trace;
        ] );
      ( "sim-metrics",
        [
          Alcotest.test_case "aggregation" `Quick test_sim_metrics;
          Alcotest.test_case "parallel shards" `Quick test_sim_metrics_parallel;
        ] );
      ("domain-safety", [ Alcotest.test_case "parallel counter" `Quick test_counter_parallel ]);
      ( "checker-stats",
        [
          Alcotest.test_case "agrees with verdict" `Quick test_check_strong_stats_agree;
          Alcotest.test_case "tracer events" `Quick test_check_strong_stats_tracer;
        ] );
    ]
