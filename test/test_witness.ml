(* Witness forensics: the pinned corpus under test/witnesses/ must keep
   replaying to its recorded verdict (the artifacts are the repo's
   headline refutations, pinned), and the extract -> shrink -> serialize
   -> parse -> replay pipeline must close the loop from a fresh checker
   verdict.

   Every corpus file names its object by registry name; [Registry] keys
   are the replay contract, so a failure here usually means an entry's
   implementation or workload changed under a committed witness. *)

let corpus_dir = "witnesses"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare
  |> List.map (Filename.concat corpus_dir)

(* Returns (reproduced, notes) as plain data so the spec-dependent
   report type stays inside the functor's scope. *)
let replay_parsed (p : Witness.parsed) : bool * string list =
  match Registry.find p.Witness.p_object with
  | None -> Alcotest.failf "witness names unknown registry object %S" p.Witness.p_object
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module W = Witness.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let r = W.replay prog p in
      (r.W.reproduced, r.W.notes)

let test_corpus_replays path () =
  match Witness.parse_file path with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok p ->
      Alcotest.(check bool)
        "shrunk_len <= original_len" true
        (p.Witness.p_shrunk_len <= p.Witness.p_original_len);
      let reproduced, notes = replay_parsed p in
      List.iter (fun n -> Printf.printf "replay note: %s\n" n) notes;
      Alcotest.(check (list string)) "no replay divergences" [] notes;
      Alcotest.(check bool) "verdict reproduced" true reproduced

let test_corpus_covers_headline_refutations () =
  (* The Theorem 10 EMPTY race (the §6 finding) and both baseline
     classics must stay pinned. *)
  let names = List.map Filename.basename (corpus_files ()) in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " pinned") true (List.mem required names))
    [ "set-empty-race.json"; "hw-queue.json"; "rw-max.json" ]

(* Fresh end-to-end run on the Theorem 10 finding: check refutes,
   extract certifies, shrink keeps certifying without growing, and the
   serialized artifact replays. *)
module Set_spec = Spec.Set_obj
module LS = Lincheck.Make (Set_spec)
module WS = Witness.Make (Set_spec)

let set_prog =
  Harness.program ~make:Executors.ts_set_atomic_fi
    ~workload:[| [ Set_spec.Put 1 ]; [ Set_spec.Put 2 ]; [ Set_spec.Take ] |]

let test_extract_shrink_roundtrip () =
  match LS.check_strong ~max_nodes:4_000_000 set_prog with
  | LS.Not_strongly_linearizable { witness; nodes } -> (
      match
        WS.extract ~max_nodes:4_000_000 set_prog ~kind:Witness.Not_strongly_linearizable
          ~schedule:witness
      with
      | None -> Alcotest.fail "extraction failed on the Theorem 10 refutation"
      | Some shape ->
          Alcotest.(check bool) "extracted certificate refutes" true
            (WS.refutes set_prog shape = Ok true);
          let original_len = Witness.size shape in
          let shrunk = WS.shrink set_prog shape in
          Alcotest.(check bool) "shrunk certificate refutes" true
            (WS.refutes set_prog shrunk = Ok true);
          Alcotest.(check bool) "shrinking does not grow" true
            (Witness.size shrunk <= original_len);
          let json =
            WS.to_json set_prog ~object_name:"set-empty-race" ~spec_name:"test"
              ~max_nodes:4_000_000 ~max_depth:None ~nodes:(Some nodes) ~original_len shrunk
          in
          (* Serialization round trip, through the actual printer. *)
          let p =
            match Witness.parse (Obs_json.of_string_exn (Obs_json.to_string json)) with
            | Ok p -> p
            | Error msg -> Alcotest.failf "re-parse: %s" msg
          in
          Alcotest.(check bool) "round-tripped shape matches" true
            (Witness.shape_of_parsed p = shrunk);
          let r = WS.replay set_prog p in
          Alcotest.(check bool) "round-tripped witness reproduces" true r.reproduced)
  | v -> Alcotest.failf "expected a refutation, got %a" LS.pp_verdict v

(* A damaged certificate must be rejected, not silently accepted: drop a
   future from a pinned two-future witness and the mini-solver finds a
   winning strategy again. *)
let test_damaged_certificate_fails () =
  match Witness.parse_file (Filename.concat corpus_dir "rw-max.json") with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok p -> (
      match Registry.find p.Witness.p_object with
      | None -> Alcotest.fail "rw-max missing from registry"
      | Some (Registry.Checkable c) ->
          let (module S) = c.spec in
          let module W = Witness.Make (S) in
          let prog = Harness.program ~make:c.make ~workload:c.workload in
          let shape = Witness.shape_of_parsed p in
          let damaged = { shape with Witness.futures = [ List.hd shape.Witness.futures ] } in
          Alcotest.(check bool) "one future alone does not refute" true
            (W.refutes prog damaged = Ok false))

let test_parse_rejects_garbage () =
  let bad s =
    match Witness.parse (Obs_json.of_string_exn s) with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "wrong schema" true
    (bad {|{"schema":"slin-witness/v0","kind":"not_linearizable","futures":[]}|});
  Alcotest.(check bool) "unknown kind" true
    (bad
       {|{"schema":"slin-witness/v1","object":"x","spec":"y","procs":2,"kind":"maybe","branch":[],"futures":[{"schedule":[0],"history":[]}],"conflict":null,"original_len":1,"shrunk_len":1}|});
  Alcotest.(check bool) "no futures" true
    (bad
       {|{"schema":"slin-witness/v1","object":"x","spec":"y","procs":2,"kind":"not_linearizable","branch":[],"futures":[],"conflict":null,"original_len":1,"shrunk_len":1}|})

let () =
  let corpus =
    List.map
      (fun path ->
        Alcotest.test_case (Filename.basename path) `Quick (test_corpus_replays path))
      (corpus_files ())
  in
  Alcotest.run "witness"
    [
      ("corpus", corpus);
      ( "corpus-coverage",
        [ Alcotest.test_case "headline refutations pinned" `Quick
            test_corpus_covers_headline_refutations ] );
      ( "pipeline",
        [
          Alcotest.test_case "extract/shrink/serialize round trip" `Quick
            test_extract_shrink_roundtrip;
          Alcotest.test_case "damaged certificate rejected" `Quick
            test_damaged_certificate_fails;
          Alcotest.test_case "parser rejects garbage" `Quick test_parse_rejects_garbage;
        ] );
    ]
