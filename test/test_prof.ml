(* Tests for the engine profiler (Prof) and the report differ
   (Stats_diff): profiling passivity (fingerprints identical with and
   without a profiler, sequential and parallel), structural validity of
   real and synthetic reports, the fake-clock deterministic report, a
   qcheck pass over randomly assembled lanes, the Chrome-trace export,
   and the stats-diff status/threshold/removed-row logic. *)

(* Lift the hardware-parallelism cap so the jobs=4 passivity cases run
   the real work-stealing engine even on a single-core runner. *)
let () = Unix.putenv "SLIN_DOMAIN_CAP" "8"

(* ---------------- passivity ------------------------------------------- *)

(* The deterministic slice of a run on a registry object: rendered
   verdict plus every stats field except elapsed time. *)
let fingerprint ?profiler ~jobs name =
  match Registry.find name with
  | None -> Alcotest.failf "unknown registry object %s" name
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let v, s = L.check_strong_stats ?profiler ~jobs prog in
      Format.asprintf "%a nodes=%d hits=%d depth=%d gen=%d killed=%d dead=%d vf=%d" L.pp_verdict v
        s.Lincheck.nodes s.Lincheck.cache_hits s.Lincheck.max_frontier_depth
        s.Lincheck.candidates_generated s.Lincheck.candidates_killed s.Lincheck.dead_ends
        s.Lincheck.validate_failures

(* A profiled run must be byte-identical to an unprofiled one — at jobs=1
   and on the parallel engine. *)
let test_profiling_passive () =
  let plain = fingerprint ~jobs:1 "counter" in
  let p1 = Prof.create () in
  Alcotest.(check string) "jobs=1 fingerprint unchanged" plain
    (fingerprint ~profiler:p1 ~jobs:1 "counter");
  let p4 = Prof.create () in
  Alcotest.(check string) "jobs=4 fingerprint unchanged" plain
    (fingerprint ~profiler:p4 ~jobs:4 "counter");
  Prof.finish p1;
  Prof.finish p4;
  (* And what the profiler itself recorded is consistent: every explored
     node landed in some lane. *)
  let lane_nodes p = List.fold_left (fun a l -> a + Prof.lane_nodes l) 0 (Prof.lanes p) in
  Alcotest.(check int) "jobs=1 and jobs=4 lanes record the same node total" (lane_nodes p1)
    (lane_nodes p4);
  Alcotest.(check bool) "lanes recorded work" true (lane_nodes p1 > 0)

(* The multiplicity checker's DFS is profiled the same way. *)
let test_mult_check_profiled () =
  let open Spec.Queue_spec in
  let t =
    [
      Trace.Invoke { proc = 0; op = Enq 1 };
      Trace.Return { proc = 0; resp = Ok_ };
      Trace.Invoke { proc = 1; op = Deq };
      Trace.Invoke { proc = 2; op = Deq };
      Trace.Return { proc = 1; resp = Item 1 };
      Trace.Return { proc = 2; resp = Item 1 };
    ]
  in
  let plain = Mult_check.check_budgeted Mult_check.Queue t in
  let p = Prof.create () in
  let profiled = Mult_check.check_budgeted ~profiler:p Mult_check.Queue t in
  Prof.finish p;
  Alcotest.(check bool) "outcome unchanged" true (plain = profiled);
  Alcotest.(check bool) "accepted with multiplicity" true (profiled = Mult_check.Decided true);
  match Prof.lanes p with
  | [ l ] ->
      Alcotest.(check bool) "visited states recorded" true (Prof.lane_nodes l > 0);
      (match Prof.validate (Prof.to_json p ~meta:[]) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "mult profile invalid: %s" e)
  | ls -> Alcotest.failf "expected one lane, got %d" (List.length ls)

(* ---------------- real-report validity -------------------------------- *)

let meta = [ ("command", Obs_json.String "test"); ("jobs", Obs_json.Int 4) ]

let test_real_report_validates () =
  let p = Prof.create () in
  ignore (fingerprint ~profiler:p ~jobs:4 "counter");
  Prof.finish p;
  (match Prof.validate (Prof.to_json p ~meta) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "real report invalid: %s" e);
  Alcotest.(check bool) "lanes account for (nearly) all wall time" true
    (Prof.accounted_pct p > 95.0 && Prof.accounted_pct p <= 100.5);
  (* The report survives a JSON print/parse cycle. *)
  let s = Obs_json.to_string (Prof.to_json p ~meta) in
  match Prof.validate (Obs_json.of_string_exn s) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reparsed report invalid: %s" e

(* ---------------- fake clock: deterministic reports -------------------- *)

(* Drive a profile entirely through the injectable clock and note_span:
   every derived number is then exact. *)
let fake_profile () =
  let now = ref 0 in
  let p = Prof.create ~clock:(fun () -> !now) () in
  let l0 = Prof.lane p ~domain:0 in
  let l1 = Prof.lane p ~domain:1 in
  (* lane 0: 60ns solve (10ns of it cross-checking), 20ns merge, rest idle *)
  Prof.note_span l0 Prof.Solve ~label:"col 0" ~start_ns:0 ~dur_ns:60 ();
  Prof.cross_checked l0 ~start_ns:20 ~stop_ns:30;
  Prof.note_span l0 Prof.Merge ~start_ns:70 ~dur_ns:20 ();
  (* lane 1: one 50ns solve *)
  Prof.note_span l1 Prof.Solve ~label:"col 1" ~start_ns:5 ~dur_ns:50 ();
  for d = 0 to 9 do
    Prof.fresh l0 ~depth:d
  done;
  Prof.hit l0;
  Prof.hit l0;
  Prof.fresh l1 ~depth:3;
  Prof.kill l0 Prof.Kill_mismatch;
  Prof.kill l0 Prof.Kill_futures;
  Prof.kill l1 Prof.Kill_dead_end;
  Prof.note_column l0 ~col:0 ~proc:0 ~nodes:10 ~outcome:"ok";
  Prof.note_column l1 ~col:1 ~proc:1 ~nodes:1 ~outcome:"ok";
  now := 100;
  Prof.finish p;
  p

let test_fake_clock_arithmetic () =
  let p = fake_profile () in
  Alcotest.(check int) "wall pinned by finish" 100 (Prof.wall_ns p);
  let l0 = Prof.lane p ~domain:0 and l1 = Prof.lane p ~domain:1 in
  Alcotest.(check int) "solve excludes nested cross-check" 50
    (Prof.lane_phase_ns p l0 Prof.Solve);
  Alcotest.(check int) "cross-check accumulated" 10 (Prof.lane_phase_ns p l0 Prof.Cross_check);
  Alcotest.(check int) "merge" 20 (Prof.lane_phase_ns p l0 Prof.Merge);
  Alcotest.(check int) "idle = wall - busy" 20 (Prof.lane_phase_ns p l0 Prof.Idle);
  Alcotest.(check int) "lane 1 idle" 50 (Prof.lane_phase_ns p l1 Prof.Idle);
  Alcotest.(check int) "lane 0 nodes" 10 (Prof.lane_nodes l0);
  Alcotest.(check int) "lane 1 nodes" 1 (Prof.lane_nodes l1);
  Alcotest.(check (float 0.01)) "accounted = 100" 100.0 (Prof.accounted_pct p)

let test_fake_clock_report () =
  let p = fake_profile () in
  let json = Prof.to_json p ~meta in
  (match Prof.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fake report invalid: %s" e);
  let open Obs_json in
  let get path j =
    List.fold_left (fun acc k -> Option.bind acc (member k)) (Some j) path
  in
  Alcotest.(check (option int)) "total nodes" (Some 11)
    (Option.bind (get [ "totals"; "nodes" ] json) to_int);
  Alcotest.(check (option int)) "total cache hits" (Some 2)
    (Option.bind (get [ "totals"; "cache_hits" ] json) to_int);
  Alcotest.(check (option int)) "kill attribution in totals" (Some 1)
    (Option.bind (get [ "totals"; "kills"; "dead_end" ] json) to_int);
  (match Option.bind (get [ "lanes" ] json) to_list with
  | Some [ lane0; lane1 ] ->
      Alcotest.(check (option int)) "lane 0 domain" (Some 0)
        (Option.bind (member "domain" lane0) to_int);
      Alcotest.(check (option int)) "lane 0 solve_ns" (Some 50)
        (Option.bind (get [ "phase_ns"; "solve" ] lane0) to_int);
      Alcotest.(check (option int)) "lane 1 idle_ns" (Some 50)
        (Option.bind (get [ "phase_ns"; "idle" ] lane1) to_int);
      (* depth histogram: ten nodes at depths 0..9 *)
      (match Option.bind (member "depth_hist" lane0) to_int_list with
      | Some h -> Alcotest.(check (list int)) "depth hist" (List.init 10 (fun _ -> 1)) h
      | None -> Alcotest.fail "lane 0 missing depth_hist");
      (match Option.bind (member "columns" lane0) to_list with
      | Some [ col ] ->
          Alcotest.(check (option string)) "column outcome" (Some "ok")
            (Option.bind (member "outcome" col) to_str)
      | _ -> Alcotest.fail "lane 0 must carry exactly one column")
  | _ -> Alcotest.fail "expected two lanes");
  (* Determinism: two identical fake runs render identical reports. *)
  let again = Obs_json.to_string (Prof.to_json (fake_profile ()) ~meta) in
  Alcotest.(check string) "byte-identical report" (Obs_json.to_string json) again

let test_summary_and_trace () =
  let p = fake_profile () in
  let s = Format.asprintf "%a" Prof.pp_summary p in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec at i = i + nl <= sl && (String.sub s i nl = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "summary mentions %S" needle) true (contains needle))
    [ "nodes"; "d0"; "d1"; "response_mismatch"; "dead_end" ];
  let tr = Prof.to_trace p in
  let json = Obs_json.of_string_exn (Obs_trace.to_string tr) in
  match Obs_json.(Option.bind (member "traceEvents" json) to_list) with
  | None -> Alcotest.fail "no traceEvents"
  | Some events ->
      let names =
        List.filter_map (fun e -> Obs_json.(Option.bind (member "name" e) to_str)) events
      in
      let thread_names =
        List.filter_map
          (fun e -> Obs_json.(Option.bind (Option.bind (member "args" e) (member "name")) to_str))
          events
      in
      Alcotest.(check bool) "trace names both domains" true
        (List.mem "domain 0" thread_names && List.mem "domain 1" thread_names);
      Alcotest.(check bool) "trace carries the solve slices" true (List.mem "solve col 0" names)

(* The work-stealing engine's two scheduler phases: [Steal] (deque raids)
   and [Share] (folding a finished column's counters and tables into the
   shared result) are busy time with their own columns in the summary —
   never lumped into idle, and reports carrying them still validate. *)
let test_steal_share_phases () =
  let now = ref 0 in
  let p = Prof.create ~clock:(fun () -> !now) () in
  let l = Prof.lane p ~domain:0 in
  Prof.note_span l Prof.Solve ~label:"col 0" ~start_ns:0 ~dur_ns:40 ();
  Prof.note_span l Prof.Steal ~start_ns:40 ~dur_ns:10 ();
  Prof.note_span l Prof.Share ~start_ns:50 ~dur_ns:30 ();
  now := 100;
  Prof.finish p;
  Alcotest.(check int) "steal accumulated" 10 (Prof.lane_phase_ns p l Prof.Steal);
  Alcotest.(check int) "share accumulated" 30 (Prof.lane_phase_ns p l Prof.Share);
  Alcotest.(check int) "steal/share count as busy time" 20 (Prof.lane_phase_ns p l Prof.Idle);
  (match Prof.validate (Prof.to_json p ~meta) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "steal/share report invalid: %s" e);
  let s = Format.asprintf "%a" Prof.pp_summary p in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec at i = i + nl <= sl && (String.sub s i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "summary has a steal column" true (contains "steal%");
  Alcotest.(check bool) "summary has a share column" true (contains "share%")

(* ---------------- qcheck: random lanes still validate ------------------ *)

(* Random profiles: arbitrary interleavings of the recording calls on a
   fake clock must always yield a structurally valid report whose totals
   are the sums of what was recorded. *)
let prof_ops_gen =
  let open QCheck.Gen in
  let op =
    frequency
      [
        (4, map2 (fun d n -> `Fresh (d, n)) (int_bound 80) (int_bound 3));
        (2, return `Hit);
        (2, map2 (fun s d -> `Span (s, d)) (int_bound 1000) (int_bound 500));
        (1, map2 (fun s d -> `Xchk (s, d)) (int_bound 1000) (int_bound 500));
        (1, map (fun k -> `Kill k) (oneofl Prof.all_kills));
        (1, map (fun n -> `Col n) (int_bound 100));
      ]
  in
  list_size (int_bound 40) (pair (int_bound 3) op)

let apply_ops p ops =
  List.iter
    (fun (dom, op) ->
      let l = Prof.lane p ~domain:dom in
      match op with
      | `Fresh (d, n) -> for _ = 0 to n do Prof.fresh l ~depth:d done
      | `Hit -> Prof.hit l
      | `Span (s, d) -> Prof.note_span l Prof.Solve ~start_ns:s ~dur_ns:d ()
      | `Xchk (s, d) -> Prof.cross_checked l ~start_ns:s ~stop_ns:(s + d)
      | `Kill k -> Prof.kill l k
      | `Col n -> Prof.note_column l ~col:0 ~proc:dom ~nodes:n ~outcome:"ok")
    ops

let qcheck_prof_tests =
  let arb = QCheck.make prof_ops_gen in
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:300 ~name:"random profiles validate" arb (fun ops ->
          let now = ref 0 in
          let p = Prof.create ~clock:(fun () -> !now) () in
          apply_ops p ops;
          now := 5000;
          Prof.finish p;
          let json = Prof.to_json p ~meta:[] in
          (match Prof.validate json with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_reportf "invalid: %s" e);
          (* report round-trips through the printer *)
          Prof.validate (Obs_json.of_string_exn (Obs_json.to_string json)) = Ok ());
      QCheck.Test.make ~count:300 ~name:"totals sum the lanes" arb (fun ops ->
          let now = ref 0 in
          let p = Prof.create ~clock:(fun () -> !now) () in
          apply_ops p ops;
          now := 5000;
          Prof.finish p;
          let json = Prof.to_json p ~meta:[] in
          let total =
            Option.bind Obs_json.(Option.bind (member "totals" json) (member "nodes")) Obs_json.to_int
          in
          let by_hand = List.fold_left (fun a l -> a + Prof.lane_nodes l) 0 (Prof.lanes p) in
          total = Some by_hand);
    ]

(* ---------------- stats diff ------------------------------------------- *)

let profile_doc rows =
  (* A minimal but valid-enough slin-profile/v1 totals block for rows_of. *)
  let open Obs_json in
  Assoc
    [
      ("schema", String "slin-profile/v1");
      ("wall_ns", Int 1000);
      ("accounted_pct", Float 100.0);
      ("totals", Assoc rows);
      ("lanes", List []);
    ]

let bench_doc rows =
  let open Obs_json in
  Assoc
    [
      ("schema", String "slin-bench/v1");
      ("quick", Bool false);
      ( "results",
        List
          (List.map
             (fun (name, metric, v) ->
               Assoc [ ("name", String name); ("metric", String metric); ("value", Float v) ])
             rows) );
    ]

let diff_exn ~old_doc ~new_doc =
  match Stats_diff.diff ~old_doc ~new_doc with
  | Ok es -> es
  | Error e -> Alcotest.failf "diff failed: %s" e

let test_diff_directions () =
  let open Stats_diff in
  Alcotest.(check bool) "nodes_per_sec is higher-better" true
    (direction_of_metric "nodes_per_sec" = Higher_better);
  Alcotest.(check bool) "schedules_per_s is higher-better" true
    (direction_of_metric "schedules_per_s" = Higher_better);
  Alcotest.(check bool) "utilization is higher-better" true
    (direction_of_metric "utilization" = Higher_better);
  Alcotest.(check bool) "speedup_j4_over_j1 is higher-better" true
    (direction_of_metric "speedup_j4_over_j1" = Higher_better);
  Alcotest.(check bool) "ns_per_op is lower-better" true
    (direction_of_metric "ns_per_op" = Lower_better);
  Alcotest.(check bool) "reduction_ratio is higher-better" true
    (direction_of_metric "reduction_ratio" = Higher_better);
  Alcotest.(check bool) "nodes_total is lower-better" true
    (direction_of_metric "nodes_total" = Lower_better);
  Alcotest.(check bool) "nodes_per_verdict is lower-better" true
    (direction_of_metric "nodes_per_verdict" = Lower_better);
  Alcotest.(check bool) "raw phase ns is neutral" true (direction_of_metric "solve_ns" = Neutral);
  Alcotest.(check bool) "wall_ns is neutral" true (direction_of_metric "wall_ns" = Neutral);
  Alcotest.(check bool) "nodes is neutral" true (direction_of_metric "nodes" = Neutral)

let test_diff_identical () =
  let doc = bench_doc [ ("a", "ns_per_op", 10.0); ("b", "ops_per_s", 5.0) ] in
  let es = diff_exn ~old_doc:doc ~new_doc:doc in
  Alcotest.(check int) "two rows" 2 (List.length es);
  List.iter
    (fun e -> Alcotest.(check bool) "unchanged" true (e.Stats_diff.e_status = Stats_diff.Unchanged))
    es;
  Alcotest.(check int) "no regressions" 0 (List.length (Stats_diff.regressions es))

let test_diff_improved_and_regressed () =
  let old_doc = bench_doc [ ("a", "ns_per_op", 100.0); ("b", "ops_per_s", 100.0) ] in
  let new_doc = bench_doc [ ("a", "ns_per_op", 50.0); ("b", "ops_per_s", 40.0) ] in
  let es = diff_exn ~old_doc ~new_doc in
  let find n = List.find (fun e -> e.Stats_diff.e_name = n) es in
  Alcotest.(check bool) "latency halved = improved" true
    ((find "a").Stats_diff.e_status = Stats_diff.Improved);
  Alcotest.(check bool) "throughput -60% = regressed" true
    ((find "b").Stats_diff.e_status = Stats_diff.Regressed);
  (* thresholds: -60% trips a 50 gate, passes a 70 gate *)
  Alcotest.(check int) "regression at threshold 50" 1
    (List.length (Stats_diff.regressions ~threshold:50.0 es));
  Alcotest.(check int) "no regression at threshold 70" 0
    (List.length (Stats_diff.regressions ~threshold:70.0 es))

let test_diff_neutral_never_gates () =
  let old_doc = bench_doc [ ("n", "nodes", 100.0) ] in
  let new_doc = bench_doc [ ("n", "nodes", 1.0) ] in
  let es = diff_exn ~old_doc ~new_doc in
  Alcotest.(check bool) "neutral row is Changed" true
    ((List.hd es).Stats_diff.e_status = Stats_diff.Changed);
  Alcotest.(check int) "never a regression" 0 (List.length (Stats_diff.regressions es))

let test_diff_removed_row_regresses () =
  let old_doc = bench_doc [ ("a", "ns_per_op", 10.0); ("gone", "ops_per_s", 5.0) ] in
  let new_doc = bench_doc [ ("a", "ns_per_op", 10.0) ] in
  let es = diff_exn ~old_doc ~new_doc in
  let gone = List.find (fun e -> e.Stats_diff.e_name = "gone") es in
  Alcotest.(check bool) "dropped row is Removed" true (gone.Stats_diff.e_status = Stats_diff.Removed);
  Alcotest.(check int) "removed rows always gate" 1
    (List.length (Stats_diff.regressions ~threshold:99.0 es))

let test_diff_added_row () =
  let old_doc = bench_doc [ ("a", "ns_per_op", 10.0) ] in
  let new_doc = bench_doc [ ("a", "ns_per_op", 10.0); ("new", "ops_per_s", 5.0) ] in
  let es = diff_exn ~old_doc ~new_doc in
  let added = List.find (fun e -> e.Stats_diff.e_name = "new") es in
  Alcotest.(check bool) "fresh row is Added" true (added.Stats_diff.e_status = Stats_diff.Added);
  Alcotest.(check int) "added rows never gate" 0 (List.length (Stats_diff.regressions es))

let test_diff_schema_mismatch () =
  let b = bench_doc [] and p = profile_doc [ ("nodes", Obs_json.Int 1) ] in
  (match Stats_diff.diff ~old_doc:b ~new_doc:p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bench vs profile must not diff");
  match Stats_diff.diff ~old_doc:(Obs_json.Assoc []) ~new_doc:(Obs_json.Assoc []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schema-less documents must not diff"

let test_diff_profile_reports () =
  (* End to end on real profile documents: identical reports diff clean. *)
  let p = Prof.create () in
  ignore (fingerprint ~profiler:p ~jobs:2 "counter");
  Prof.finish p;
  let doc = Prof.to_json p ~meta in
  let es = diff_exn ~old_doc:doc ~new_doc:doc in
  Alcotest.(check bool) "profile flattens to rows" true (List.length es > 5);
  Alcotest.(check int) "self-diff has no regressions" 0
    (List.length (Stats_diff.regressions es))

(* ---------------- suite ------------------------------------------------ *)

let () =
  Alcotest.run "prof"
    [
      ( "passivity",
        [
          Alcotest.test_case "profiled = unprofiled" `Quick test_profiling_passive;
          Alcotest.test_case "mult_check profiled" `Quick test_mult_check_profiled;
          Alcotest.test_case "real report validates" `Quick test_real_report_validates;
        ] );
      ( "fake-clock",
        [
          Alcotest.test_case "phase arithmetic" `Quick test_fake_clock_arithmetic;
          Alcotest.test_case "report fields" `Quick test_fake_clock_report;
          Alcotest.test_case "summary and trace" `Quick test_summary_and_trace;
          Alcotest.test_case "steal/share phases" `Quick test_steal_share_phases;
        ] );
      ("qcheck", qcheck_prof_tests);
      ( "stats-diff",
        [
          Alcotest.test_case "metric directions" `Quick test_diff_directions;
          Alcotest.test_case "identical reports" `Quick test_diff_identical;
          Alcotest.test_case "improved and regressed" `Quick test_diff_improved_and_regressed;
          Alcotest.test_case "neutral rows never gate" `Quick test_diff_neutral_never_gates;
          Alcotest.test_case "removed row regresses" `Quick test_diff_removed_row_regresses;
          Alcotest.test_case "added row" `Quick test_diff_added_row;
          Alcotest.test_case "schema mismatch" `Quick test_diff_schema_mismatch;
          Alcotest.test_case "profile self-diff" `Quick test_diff_profile_reports;
        ] );
    ]
