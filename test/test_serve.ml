(* Tests for the serve daemon: request parsing (including fault-injection
   gating), deterministic batch dispatch, memoization and coalescing,
   deadline degradation, bounded-queue shedding, crash-retry-resume
   supervision, retry exhaustion, and the response/report validators. *)

let ok_request ?(allow_faults = false) line =
  match Serve.request_of_line ~allow_faults line with
  | Ok r -> r
  | Error e -> Alcotest.failf "expected Ok for %s, got: %s" line e

let err_request ?(allow_faults = false) line =
  match Serve.request_of_line ~allow_faults line with
  | Ok _ -> Alcotest.failf "expected Error for %s" line
  | Error e -> e

(* ---------------- request parsing ------------------------------------- *)

let test_parse_defaults () =
  let r = ok_request {|{"kind":"check","object":"counter"}|} in
  Alcotest.(check bool) "kind" true (r.Serve.rq_kind = Serve.Check);
  Alcotest.(check string) "object" "counter" r.Serve.rq_object;
  Alcotest.(check bool) "sheddable by default" true r.Serve.rq_sheddable;
  Alcotest.(check bool) "no fault by default" true (r.Serve.rq_fault_cols = None);
  Alcotest.(check bool) "jobs clamped to >= 1" true (r.Serve.rq_jobs >= 1)

let test_parse_errors () =
  let _ = err_request {|{"kind":"launder","object":"counter"}|} in
  let _ = err_request {|{"kind":"check"}|} in
  let _ = err_request {|{"kind":"explain"}|} in
  let _ = err_request {|not json|} in
  let _ = err_request {|[1,2,3]|} in
  let _ = err_request {|{"kind":"check","object":"counter","max_nodes":"lots"}|} in
  ()

let test_fault_gating () =
  let line = {|{"kind":"check","object":"counter","fault":{"after_cols":1}}|} in
  let _ = err_request ~allow_faults:false line in
  let r = ok_request ~allow_faults:true line in
  Alcotest.(check bool) "fault parsed" true (r.Serve.rq_fault_cols = Some 1);
  (* fault injection only makes sense for checkpointed check runs *)
  let _ = err_request ~allow_faults:true {|{"kind":"fuzz","object":"counter","fault":{"after_cols":1}}|} in
  ()

(* ---------------- batch helpers --------------------------------------- *)

let str_member k j =
  match Obs_json.member k j with Some (Obs_json.String s) -> s | _ -> ""

let int_member k j =
  match Obs_json.member k j with Some (Obs_json.Int n) -> n | _ -> -1

let validate_all t responses =
  List.iter
    (fun r ->
      match Serve.validate_response r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid response %s: %s" (Obs_json.to_string r) e)
    responses;
  match Serve.validate_report (Serve.report t) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid report: %s" e

let deterministic_cfg =
  { Serve.default_config with Serve.deterministic = true; backoff_ms = 1 }

(* ---------------- canonical batch: determinism, coalescing, memo ------ *)

let test_batch_deterministic () =
  let jobs = Experiments.serve_jobs ~quick:true () in
  let run () =
    let t = Serve.create deterministic_cfg in
    let rs = Serve.run_batch t jobs in
    validate_all t rs;
    (t, rs)
  in
  let t1, r1 = run () in
  let _, r2 = run () in
  Alcotest.(check int) "one response per line" (List.length jobs) (List.length r1);
  Alcotest.(check string) "byte-reproducible batch"
    (String.concat "\n" (List.map Obs_json.to_string r1))
    (String.concat "\n" (List.map Obs_json.to_string r2));
  let status_of id =
    match List.find_opt (fun r -> str_member "id" r = id) r1 with
    | Some r -> str_member "status" r
    | None -> Alcotest.failf "no response with id %s" id
  in
  Alcotest.(check string) "unknown object rejected" "rejected" (status_of "check-unknown");
  Alcotest.(check string) "SL object done" "done" (status_of "check-counter");
  let rep = Serve.report t1 in
  Alcotest.(check int) "duplicates coalesced" 2 (int_member "coalesced" rep);
  Alcotest.(check int) "one rejection" 1 (int_member "rejected" rep);
  Alcotest.(check int) "no retries" 0 (int_member "retries" rep)

let test_memo_across_batches () =
  let line = {|{"id":"a","kind":"check","object":"counter","max_nodes":400000}|} in
  let t = Serve.create deterministic_cfg in
  let first = Serve.run_batch t [ line ] in
  let second = Serve.run_batch t [ line ] in
  validate_all t (first @ second);
  (match (first, second) with
  | [ f ], [ s ] ->
      Alcotest.(check string) "first computed" "done" (str_member "status" f);
      Alcotest.(check bool) "first not memoized" false
        (Obs_json.member "memo" f = Some (Obs_json.Bool true));
      Alcotest.(check string) "second answered" "done" (str_member "status" s);
      Alcotest.(check bool) "second memoized" true
        (Obs_json.member "memo" s = Some (Obs_json.Bool true))
  | _ -> Alcotest.fail "expected exactly one response per batch");
  Alcotest.(check int) "memo hit counted" 1 (int_member "memo_hits" (Serve.report t))

(* ---------------- deadline degradation -------------------------------- *)

(* A 1 ms deadline on a ~100k-node exploration: the engine's interrupt
   hook degrades the run to a structured inconclusive answer (exit-2
   semantics) instead of hanging the worker. *)
let test_deadline_degrades () =
  let t =
    Serve.create { deterministic_cfg with Serve.workers = 1; default_deadline_ms = 1 }
  in
  let rs =
    Serve.run_batch t [ {|{"id":"slow","kind":"check","object":"hw-queue","max_nodes":400000}|} ]
  in
  validate_all t rs;
  match rs with
  | [ r ] ->
      Alcotest.(check string) "status" "inconclusive" (str_member "status" r);
      Alcotest.(check int) "exit" 2 (int_member "exit" r);
      Alcotest.(check string) "reason" "deadline" (str_member "reason" r)
  | _ -> Alcotest.fail "expected one response"

(* ---------------- bounded queue: oldest-sheddable-first ---------------- *)

(* memo off => no coalescing, so three identical requests really queue;
   with queue_limit 1 and workers started only after submission, the two
   oldest sheddable requests are shed deterministically. *)
let test_shedding () =
  let t =
    Serve.create
      { deterministic_cfg with Serve.workers = 1; queue_limit = 1; memo = false }
  in
  let line id = Printf.sprintf {|{"id":"%s","kind":"check","object":"counter"}|} id in
  let rs = Serve.run_batch t [ line "r0"; line "r1"; line "r2" ] in
  validate_all t rs;
  let statuses = List.map (fun r -> (str_member "id" r, str_member "status" r)) rs in
  Alcotest.(check (list (pair string string)))
    "oldest shed first"
    [ ("r0", "shed"); ("r1", "shed"); ("r2", "done") ]
    statuses;
  Alcotest.(check int) "shed counted" 2 (int_member "shed" (Serve.report t))

(* A non-sheddable request survives the burst. *)
let test_sheddable_flag () =
  let t =
    Serve.create
      { deterministic_cfg with Serve.workers = 1; queue_limit = 1; memo = false }
  in
  let rs =
    Serve.run_batch t
      [
        {|{"id":"keep","kind":"check","object":"counter","sheddable":false}|};
        {|{"id":"burst","kind":"check","object":"faa-max"}|};
      ]
  in
  validate_all t rs;
  let statuses = List.map (fun r -> (str_member "id" r, str_member "status" r)) rs in
  Alcotest.(check (list (pair string string)))
    "non-sheddable kept" [ ("keep", "done"); ("burst", "shed") ] statuses

(* ---------------- supervision: crash, resume, exhaustion --------------- *)

(* Fault injection crashes the worker after the first checkpointed
   column; the supervisor restarts the request, which resumes from the
   in-memory checkpoint and must deliver the same verdict (status, exit,
   node count) as an undisturbed run. *)
let test_crash_resume_identical () =
  let cfg = { deterministic_cfg with Serve.workers = 1; allow_faults = true } in
  let clean =
    let t = Serve.create cfg in
    match
      Serve.run_batch t [ {|{"id":"c","kind":"check","object":"hw-queue","max_nodes":400000}|} ]
    with
    | [ r ] -> r
    | _ -> Alcotest.fail "expected one response"
  in
  let t = Serve.create cfg in
  let rs =
    Serve.run_batch t
      [
        {|{"id":"f","kind":"check","object":"hw-queue","max_nodes":400000,"jobs":4,"fault":{"after_cols":1,"times":1}}|};
      ]
  in
  validate_all t rs;
  match rs with
  | [ r ] ->
      Alcotest.(check string) "status" (str_member "status" clean) (str_member "status" r);
      Alcotest.(check int) "exit" (int_member "exit" clean) (int_member "exit" r);
      Alcotest.(check int) "verdict nodes identical after crash+resume"
        (int_member "nodes" clean) (int_member "nodes" r);
      Alcotest.(check int) "second attempt" 2 (int_member "attempts" r);
      Alcotest.(check int) "one restart" 1 (int_member "worker_restarts" (Serve.report t))
  | _ -> Alcotest.fail "expected one response"

(* A fault that fires on every attempt exhausts the retry budget and
   yields a structured failed response — faa-max has several
   strongly-linearizable columns, so every resumed attempt completes a
   fresh column and re-arms the injector. *)
let test_retry_exhaustion () =
  let t =
    Serve.create
      { deterministic_cfg with Serve.workers = 1; max_retries = 1; allow_faults = true }
  in
  let rs =
    Serve.run_batch t
      [
        {|{"id":"x","kind":"check","object":"faa-max","fault":{"after_cols":1,"times":99}}|};
      ]
  in
  validate_all t rs;
  match rs with
  | [ r ] ->
      Alcotest.(check string) "status" "failed" (str_member "status" r);
      Alcotest.(check int) "exit" 2 (int_member "exit" r);
      Alcotest.(check int) "attempts = 1 + max_retries" 2 (int_member "attempts" r);
      Alcotest.(check int) "retries counted" 1 (int_member "retries" (Serve.report t))
  | _ -> Alcotest.fail "expected one response"

(* ---------------- baseline gate ---------------------------------------- *)

(* The canonical quick batch re-run now must not regress against the
   committed slin-serve-report/v1 baseline (the same gate CI applies
   with `slin stats diff --fail-on-regress`). *)
let test_baseline_gate () =
  let baseline_path =
    if Sys.file_exists "baselines/serve-batch.json" then "baselines/serve-batch.json"
    else "test/baselines/serve-batch.json"
  in
  let ic = open_in baseline_path in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  let old_doc =
    match Obs_json.of_string (String.trim body) with
    | Ok j -> j
    | Error e -> Alcotest.failf "baseline does not parse: %s" e
  in
  let t = Serve.create deterministic_cfg in
  let _ = Serve.run_batch t (Experiments.serve_jobs ~quick:true ()) in
  let new_doc = Serve.report t in
  match Stats_diff.diff ~old_doc ~new_doc with
  | Error e -> Alcotest.failf "stats diff failed: %s" e
  | Ok entries -> (
      match Stats_diff.regressions entries with
      | [] -> ()
      | rs ->
          Alcotest.failf "serve report regressed vs baseline:@.%a" Stats_diff.pp rs)

(* ---------------- validators ------------------------------------------ *)

let test_validators_reject () =
  let bad =
    [
      Obs_json.Assoc [];
      Obs_json.Assoc [ ("schema", Obs_json.String "slin-serve/v999") ];
      Obs_json.Int 3;
    ]
  in
  List.iter
    (fun j ->
      match Serve.validate_response j with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "accepted %s" (Obs_json.to_string j))
    bad;
  List.iter
    (fun j ->
      match Serve.validate_report j with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "report accepted %s" (Obs_json.to_string j))
    bad

let () =
  Alcotest.run "serve"
    [
      ( "parsing",
        [
          Alcotest.test_case "defaults" `Quick test_parse_defaults;
          Alcotest.test_case "structured errors" `Quick test_parse_errors;
          Alcotest.test_case "fault gating" `Quick test_fault_gating;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "canonical batch deterministic" `Quick test_batch_deterministic;
          Alcotest.test_case "memo across batches" `Quick test_memo_across_batches;
          Alcotest.test_case "deadline degrades to inconclusive" `Quick test_deadline_degrades;
          Alcotest.test_case "oldest-sheddable-first" `Quick test_shedding;
          Alcotest.test_case "non-sheddable survives" `Quick test_sheddable_flag;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "crash + resume = clean verdict" `Quick test_crash_resume_identical;
          Alcotest.test_case "retry exhaustion fails structurally" `Quick test_retry_exhaustion;
        ] );
      ("baseline", [ Alcotest.test_case "no regress vs committed report" `Quick test_baseline_gate ]);
      ("validators", [ Alcotest.test_case "reject malformed" `Quick test_validators_reject ]);
    ]
