(* Checkpoint/resume determinism (slin-checkpoint/v1): a run killed
   mid-exploration and resumed from its last checkpoint must reach the
   same verdict, witness and counts as an uninterrupted run — at jobs=1
   and jobs=4, for kills injected at several points.  Plus the document
   round-trip itself: schema/digest validation makes a corrupted
   checkpoint a structured error, never a wrong resume or an
   exception. *)

(* Lift the hardware cap so jobs=4 cases run real multi-domain even on
   a single-core runner (see test_engine.ml). *)
let () = Unix.putenv "SLIN_DOMAIN_CAP" "8"

let fp_of (pp_verdict : Format.formatter -> 'v -> unit) (v : 'v) (s : Lincheck.stats) =
  Format.asprintf "%a | nodes=%d hits=%d frontier=%d cand=%d killed=%d dead=%d vfail=%d"
    pp_verdict v s.Lincheck.nodes s.Lincheck.cache_hits s.Lincheck.max_frontier_depth
    s.Lincheck.candidates_generated s.Lincheck.candidates_killed s.Lincheck.dead_ends
    s.Lincheck.validate_failures

(* ---------------- checkpointed run == plain run ----------------------- *)

(* Turning checkpointing on (which forces the column path even at
   jobs=1) must not change the deterministic slice of the result. *)
let test_checkpointed_equals_plain name jobs () =
  match Registry.find name with
  | None -> Alcotest.failf "unknown registry object %s" name
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let run ?checkpointing () =
        let v, s =
          L.check_strong_stats ~max_nodes:400_000 ?max_depth:c.default_depth ~jobs
            ?checkpointing prog
        in
        fp_of L.pp_verdict v s
      in
      let plain = run () in
      let emitted = ref 0 in
      let cp =
        {
          Lincheck.cp_config = Serve.config_fingerprint ~object_name:name ~max_depth:c.default_depth ();
          cp_resume = None;
          cp_emit = (fun _ -> incr emitted);
        }
      in
      let checkpointed = run ~checkpointing:cp () in
      Alcotest.(check string) (Printf.sprintf "%s jobs=%d" name jobs) plain checkpointed

(* ---------------- kill at several points, resume, compare ------------- *)

(* The interrupt hook is polled once per fresh node, so "kill after k
   polls" is a deterministic mid-run kill point.  If no column completed
   before the kill there is no checkpoint and the resume is a full
   re-run — that degenerate case must also match the golden. *)
let test_kill_resume name jobs kill_points () =
  match Registry.find name with
  | None -> Alcotest.failf "unknown registry object %s" name
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let cp_config =
        Serve.config_fingerprint ~object_name:name ~max_depth:c.default_depth ()
      in
      let run ?interrupt ?checkpointing () =
        let v, s =
          L.check_strong_stats ~max_nodes:400_000 ?max_depth:c.default_depth ~jobs
            ?interrupt ?checkpointing prog
        in
        (v, fp_of L.pp_verdict v s)
      in
      let _, golden = run () in
      List.iter
        (fun kill_after ->
          let last = ref None in
          let polls = Atomic.make 0 in
          let v1, _ =
            run
              ~interrupt:(fun () -> Atomic.fetch_and_add polls 1 >= kill_after)
              ~checkpointing:
                { Lincheck.cp_config; cp_resume = None; cp_emit = (fun ck -> last := Some ck) }
              ()
          in
          (match v1 with
          | L.Out_of_budget _ -> ()
          | _ ->
              Alcotest.failf "%s jobs=%d: kill point %d did not interrupt the run" name jobs
                kill_after);
          let _, resumed =
            run ~checkpointing:{ Lincheck.cp_config; cp_resume = !last; cp_emit = ignore } ()
          in
          Alcotest.(check string)
            (Printf.sprintf "%s jobs=%d kill=%d resume" name jobs kill_after)
            golden resumed)
        kill_points

(* Budget-based kill (the CLI's `--budget-nodes` + `--checkpoint-out`
   path): trip the node budget, then resume under the full budget. *)
let test_budget_resume name jobs small_budget () =
  match Registry.find name with
  | None -> Alcotest.failf "unknown registry object %s" name
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let cp_config =
        Serve.config_fingerprint ~object_name:name ~max_depth:c.default_depth ()
      in
      let run ~max_nodes ?checkpointing () =
        let v, s =
          L.check_strong_stats ~max_nodes ?max_depth:c.default_depth ~jobs ?checkpointing prog
        in
        (v, fp_of L.pp_verdict v s)
      in
      let _, golden = run ~max_nodes:400_000 () in
      let last = ref None in
      let v1, _ =
        run ~max_nodes:small_budget
          ~checkpointing:
            { Lincheck.cp_config; cp_resume = None; cp_emit = (fun ck -> last := Some ck) }
          ()
      in
      (match v1 with
      | L.Out_of_budget _ -> ()
      | _ -> Alcotest.failf "%s: budget %d did not trip" name small_budget);
      if !last = None then
        Alcotest.failf "%s: budget %d tripped before any column completed" name small_budget;
      let _, resumed =
        run ~max_nodes:400_000
          ~checkpointing:{ Lincheck.cp_config; cp_resume = !last; cp_emit = ignore } ()
      in
      Alcotest.(check string) (Printf.sprintf "%s budget=%d resume" name small_budget) golden
        resumed

(* For a strongly-linearizable object every column completes, so the
   cumulative checkpoint of interrupted-then-resumed and uninterrupted
   runs must carry the same content digest — the "coverage fingerprint"
   of what was explored. *)
let test_resume_fingerprint () =
  match Registry.find "counter" with
  | None -> Alcotest.fail "counter not registered"
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let cp_config =
        Serve.config_fingerprint ~object_name:"counter" ~max_depth:c.default_depth ()
      in
      let run ?interrupt ~resume () =
        let last = ref resume in
        let _ =
          L.check_strong_stats ~max_nodes:400_000 ?max_depth:c.default_depth ~jobs:1 ?interrupt
            ~checkpointing:
              { Lincheck.cp_config; cp_resume = resume; cp_emit = (fun ck -> last := Some ck) }
            prog
        in
        !last
      in
      let full =
        match run ~resume:None () with
        | Some ck -> ck
        | None -> Alcotest.fail "uninterrupted run emitted no checkpoint"
      in
      let polls = Atomic.make 0 in
      let mid = run ~interrupt:(fun () -> Atomic.fetch_and_add polls 1 >= 8_000) ~resume:None () in
      let resumed =
        match run ~resume:mid () with
        | Some ck -> ck
        | None -> Alcotest.fail "resumed run emitted no checkpoint"
      in
      Alcotest.(check string) "cumulative checkpoint digest"
        (Lincheck.checkpoint_fingerprint full)
        (Lincheck.checkpoint_fingerprint resumed)

(* ---------------- document round-trip and corruption ------------------ *)

let sample_checkpoint () =
  match Registry.find "counter" with
  | None -> Alcotest.fail "counter not registered"
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let last = ref None in
      let cp_config =
        Serve.config_fingerprint ~object_name:"counter" ~max_depth:c.default_depth ()
      in
      let _ =
        L.check_strong_stats ~max_nodes:400_000 ?max_depth:c.default_depth ~jobs:1
          ~checkpointing:
            { Lincheck.cp_config; cp_resume = None; cp_emit = (fun ck -> last := Some ck) }
          prog
      in
      match !last with Some ck -> ck | None -> Alcotest.fail "no checkpoint emitted"

let test_roundtrip () =
  let ck = sample_checkpoint () in
  let s = Obs_json.to_string (Lincheck.checkpoint_to_json ck) in
  match Obs_json.of_string s with
  | Error e -> Alcotest.failf "rendered checkpoint does not parse: %s" e
  | Ok j -> (
      match Lincheck.checkpoint_of_json j with
      | Error e -> Alcotest.failf "round-trip rejected: %s" e
      | Ok ck' ->
          Alcotest.(check bool) "structural equality" true (ck = ck');
          Alcotest.(check string) "digest stable"
            (Lincheck.checkpoint_fingerprint ck)
            (Lincheck.checkpoint_fingerprint ck'))

let test_corruption_rejected () =
  let ck = sample_checkpoint () in
  let j = Lincheck.checkpoint_to_json ck in
  let reject name doc =
    match Lincheck.checkpoint_of_json doc with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: corrupted checkpoint accepted" name
  in
  (match j with
  | Obs_json.Assoc kvs ->
      reject "schema swap"
        (Obs_json.Assoc
           (List.map
              (function
                | "schema", _ -> ("schema", Obs_json.String "slin-checkpoint/v999") | kv -> kv)
              kvs));
      reject "digest tamper"
        (Obs_json.Assoc
           (List.map
              (function
                | "fingerprint", _ -> ("fingerprint", Obs_json.String "deadbeefdeadbeef")
                | kv -> kv)
              kvs));
      reject "column list dropped"
        (Obs_json.Assoc (List.filter (fun (k, _) -> k <> "columns") kvs))
  | _ -> Alcotest.fail "checkpoint JSON is not an object");
  reject "not an object" (Obs_json.List [ Obs_json.Int 1 ])

(* Truncations of the serialized document: every prefix must be either a
   parse error or (only at full length) a valid checkpoint — never an
   exception, never a digest-valid partial document. *)
let test_truncation () =
  let ck = sample_checkpoint () in
  let s = Obs_json.to_string (Lincheck.checkpoint_to_json ck) in
  let n = String.length s in
  let step = max 1 (n / 97) in
  let i = ref 0 in
  while !i < n do
    let prefix = String.sub s 0 !i in
    (match Obs_json.of_string prefix with
    | Error _ -> ()
    | Ok j -> (
        match Lincheck.checkpoint_of_json j with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "truncation at %d/%d produced a valid checkpoint" !i n));
    i := !i + step
  done

(* ---------------- qcheck: corrupted bytes never raise ------------------ *)

(* Random byte soup through the JSON parser: result, never exception
   (the hardening contract of Obs_json.of_string). *)
let qcheck_json_never_raises =
  QCheck.Test.make ~name:"obs_json.of_string total on random bytes" ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      match Obs_json.of_string s with Ok _ -> true | Error _ -> true)

(* Byte flips over a valid serialized checkpoint: parsing plus digest
   validation either rejects the mutant or accepts a semantically
   identical document (e.g. the flip landed on an equivalent rendering);
   an accepted mutant must carry the original digest. *)
let qcheck_checkpoint_corruption =
  let base =
    lazy
      (let ck = sample_checkpoint () in
       (Obs_json.to_string (Lincheck.checkpoint_to_json ck), Lincheck.checkpoint_fingerprint ck))
  in
  QCheck.Test.make ~name:"checkpoint byte flips rejected or identical" ~count:300
    QCheck.(pair small_nat printable_char)
    (fun (pos, c) ->
      let s, digest = Lazy.force base in
      let n = String.length s in
      let pos = pos mod n in
      if s.[pos] = c then true
      else
        let b = Bytes.of_string s in
        Bytes.set b pos c;
        match Obs_json.of_string (Bytes.to_string b) with
        | Error _ -> true
        | Ok j -> (
            match Lincheck.checkpoint_of_json j with
            | Error _ -> true
            | Ok ck' -> Lincheck.checkpoint_fingerprint ck' = digest))

(* Corrupted witness files through the file-level parser: structured
   error, never an exception. *)
let test_witness_corruption_structured () =
  let cases =
    [
      "";
      "{";
      "not json at all";
      "{\"schema\":\"slin-witness/v999\"}";
      "{\"schema\":\"slin-witness/v1\",\"object\":42}";
      "[1,2,3]";
    ]
  in
  List.iter
    (fun body ->
      let path = Filename.temp_file "slin-corrupt" ".json" in
      let oc = open_out path in
      output_string oc body;
      close_out oc;
      (match Witness.parse_file path with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "corrupted witness %S accepted" body);
      Sys.remove path)
    cases

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "checkpoint"
    [
      ( "equivalence",
        [
          Alcotest.test_case "counter checkpointed = plain (j1)" `Quick
            (test_checkpointed_equals_plain "counter" 1);
          Alcotest.test_case "hw-queue checkpointed = plain (j4)" `Quick
            (test_checkpointed_equals_plain "hw-queue" 4);
          Alcotest.test_case "set-empty-race checkpointed = plain (j1)" `Quick
            (test_checkpointed_equals_plain "set-empty-race" 1);
        ] );
      ( "kill-resume",
        [
          Alcotest.test_case "counter kills at 3 strides (j1)" `Quick
            (test_kill_resume "counter" 1 [ 400; 4_000; 12_000 ]);
          Alcotest.test_case "counter kills at 3 strides (j4)" `Quick
            (test_kill_resume "counter" 4 [ 400; 4_000; 12_000 ]);
          Alcotest.test_case "hw-queue kills at 3 strides (j1)" `Quick
            (test_kill_resume "hw-queue" 1 [ 2_000; 20_000; 60_000 ]);
          Alcotest.test_case "hw-queue kills at 3 strides (j4)" `Quick
            (test_kill_resume "hw-queue" 4 [ 2_000; 20_000; 60_000 ]);
          Alcotest.test_case "counter budget trip + resume (j1)" `Quick
            (test_budget_resume "counter" 1 15_000);
          Alcotest.test_case "counter budget trip + resume (j4)" `Quick
            (test_budget_resume "counter" 4 15_000);
          Alcotest.test_case "cumulative digest identical after resume" `Quick
            test_resume_fingerprint;
        ] );
      ( "document",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick test_corruption_rejected;
          Alcotest.test_case "truncations rejected" `Quick test_truncation;
          Alcotest.test_case "corrupted witness files structured" `Quick
            test_witness_corruption_structured;
          q qcheck_json_never_raises;
          q qcheck_checkpoint_corruption;
        ] );
    ]
