(* Tests for Slin_adversary: the crash-extended strong-linearizability
   game, exhaustive wait-freedom bounds, livelock lasso detection, the
   seeded crash fuzzer, Algorithm B's crash sweep, and budgeted graceful
   degradation in the checkers. *)

(* ---------------- crash game vs crash-free game ----------------------- *)

(* Crash edges add no trace events, so the crash-extended tree is
   strongly linearizable iff the crash-free one is; the crash game must
   reproduce the plain verdict on every registry object it can afford. *)
let crash_game_agrees name () =
  match Registry.find name with
  | None -> Alcotest.failf "unknown registry object %s" name
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let module A = Adversary.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let v = L.check_strong ?max_depth:c.default_depth prog in
      let cv = A.check_strong_crashes ?max_depth:c.default_depth ~crashes:1 prog in
      let ok =
        match (v, cv) with
        | L.Strongly_linearizable _, A.Crash_strongly_linearizable _
        | L.Not_linearizable _, A.Crash_not_linearizable _
        | L.Not_strongly_linearizable _, A.Crash_not_strongly_linearizable _ ->
            true
        | _ -> false
      in
      if not ok then
        Alcotest.failf "crash game disagrees on %s: %a vs %a" name L.pp_verdict v
          A.pp_crash_verdict cv

(* ---------------- exhaustive wait-freedom bound ----------------------- *)

module A_max = Adversary.Make (Spec.Max_register)

let max_reg_prog () =
  Harness.program ~make:Executors.faa_max_register
    ~workload:
      [|
        [ Spec.Max_register.WriteMax 1; Spec.Max_register.ReadMax ];
        [ Spec.Max_register.WriteMax 2 ];
        [ Spec.Max_register.ReadMax ];
      |]

let test_wait_free_bound () =
  let r = A_max.wait_free_bound (max_reg_prog ()) in
  Alcotest.(check bool) "walk exhaustive" true (A_max.wait_free_established r);
  (* Theorem 1's operations are a single wide-F&A access: the
     adversarial bound over EVERY schedule is one step per op. *)
  Alcotest.(check int) "steps/op bound" 1 r.A_max.wf_max_steps_per_op;
  Alcotest.(check bool) "executions counted" true (r.A_max.wf_executions > 0)

let test_wait_free_budget () =
  let r = A_max.wait_free_bound ~max_nodes:10 (max_reg_prog ()) in
  Alcotest.(check bool) "budget hit" true r.A_max.wf_budget_hit;
  Alcotest.(check bool) "establishes nothing" false (A_max.wait_free_established r)

(* ---------------- livelock lasso on the HW queue ---------------------- *)

module A_q = Adversary.Make (Spec.Queue_spec)
module W_q = Witness.Make (Spec.Queue_spec)

(* Drain-heavy workload: one enqueue, two dequeues — whichever dequeue
   finds the queue empty spins forever, a certified livelock lasso. *)
let drain_prog () =
  Harness.program ~make:Executors.hw_queue
    ~workload:[| [ Spec.Queue_spec.Enq 1 ]; [ Spec.Queue_spec.Deq ]; [ Spec.Queue_spec.Deq ] |]

let test_livelock_found () =
  let prog = drain_prog () in
  let r = A_q.find_livelock prog in
  match r.A_q.lf_livelock with
  | None -> Alcotest.fail "no lasso found on the drain-heavy HW queue"
  | Some shape ->
      Alcotest.(check bool) "kind is Livelock" true (shape.Witness.kind = Witness.Livelock);
      Alcotest.(check int) "exactly one cycle" 1 (List.length shape.Witness.futures);
      (match W_q.refutes prog shape with
      | Ok true -> ()
      | Ok false -> Alcotest.fail "shrunk lasso no longer refutes"
      | Error e -> Alcotest.failf "lasso does not replay: %s" e)

let test_livelock_witness_roundtrip () =
  let prog = drain_prog () in
  match (A_q.find_livelock prog).A_q.lf_livelock with
  | None -> Alcotest.fail "no lasso found"
  | Some shape -> (
      let json =
        W_q.to_json prog ~object_name:"hw-queue-drain"
          ~spec_name:"Herlihy-Wing queue, drain-heavy (livelocks an empty deq)" ~max_nodes:0
          ~max_depth:None ~nodes:None ~original_len:(Witness.size shape) shape
      in
      match Witness.parse json with
      | Error e -> Alcotest.failf "serialized lasso does not parse: %s" e
      | Ok p ->
          Alcotest.(check bool) "kind survives" true (p.Witness.p_kind = Witness.Livelock);
          let report = W_q.replay prog p in
          if not report.W_q.reproduced then
            Alcotest.failf "livelock witness did not reproduce:@.%s"
              (String.concat "\n" report.W_q.notes))

(* No lasso on a wait-free object: every driver set completes. *)
let test_no_livelock_on_wait_free () =
  let r = A_max.find_livelock (max_reg_prog ()) in
  Alcotest.(check bool) "no lasso" true (r.A_max.lf_livelock = None);
  Alcotest.(check bool) "adversaries tried" true (r.A_max.lf_candidates > 0)

(* ---------------- seeded crash fuzzer --------------------------------- *)

module A_ts = Adversary.Make (Spec.Test_and_set)
module W_ts = Witness.Make (Spec.Test_and_set)

let tournament_prog () =
  Harness.program ~make:Executors.tournament_ts
    ~workload:(Array.make 4 [ Spec.Test_and_set.TestAndSet ])

let test_fuzz_deterministic () =
  (* A campaign is a pure function of (seed, runs, crash, max_steps):
     everything except wall-clock must coincide across reruns. *)
  let r1 = A_max.fuzz ~seed:3 ~runs:100 (max_reg_prog ()) in
  let r2 = A_max.fuzz ~seed:3 ~runs:100 (max_reg_prog ()) in
  Alcotest.(check int) "same runs" r1.A_max.fz_runs r2.A_max.fz_runs;
  Alcotest.(check int) "same crashed runs" r1.A_max.fz_crashed_runs r2.A_max.fz_crashed_runs;
  Alcotest.(check int) "same total steps" r1.A_max.fz_total_steps r2.A_max.fz_total_steps;
  Alcotest.(check bool) "SL object: no violation" true (r1.A_max.fz_violation = None)

let test_fuzz_finds_violation () =
  let prog = tournament_prog () in
  let r = A_ts.fuzz ~seed:7 ~runs:500 prog in
  match r.A_ts.fz_violation with
  | None -> Alcotest.fail "fuzzer missed the tournament T&S non-linearizability"
  | Some v -> (
      Alcotest.(check bool) "kind" true (v.A_ts.v_shape.Witness.kind = Witness.Not_linearizable);
      (* The certificate was shrunk but must still refute. *)
      (match W_ts.refutes prog v.A_ts.v_shape with
      | Ok true -> ()
      | Ok false -> Alcotest.fail "shrunk fuzz certificate no longer refutes"
      | Error e -> Alcotest.failf "fuzz certificate does not replay: %s" e);
      (* Same seed, same violation. *)
      match (A_ts.fuzz ~seed:7 ~runs:500 prog).A_ts.fz_violation with
      | Some v' ->
          Alcotest.(check int) "same run seed" v.A_ts.v_seed v'.A_ts.v_seed;
          Alcotest.(check (list int)) "same schedule" v.A_ts.v_schedule v'.A_ts.v_schedule
      | None -> Alcotest.fail "rerun with the same seed found nothing")

(* ---------------- Algorithm B under crash plans ----------------------- *)

let test_sweep_atomic_queue () =
  (* Lemma 12 with an atomic (strongly linearizable) queue: validity,
     agreement and termination hold under EVERY <=1-crash plan in the
     canonical schedule family, even though k-1 = 0 crashes would do. *)
  let r =
    Adversary.agreement_crash_sweep ~make:K_ordering.atomic_queue
      ~ordering:K_ordering.queue_witness ~inputs:[| 100; 200; 300 |] ~k:1 ~max_crashes:1 ()
  in
  Alcotest.(check (list string)) "no violations" [] r.Adversary.sw_violations;
  Alcotest.(check int) "k" 1 r.Adversary.sw_max_distinct;
  Alcotest.(check bool) "crashed runs exercised" true (r.Adversary.sw_crashed_runs > 0)

let test_sweep_hw_queue_violates () =
  (* The Herlihy-Wing queue is linearizable but not strongly so; the
     deterministic sweep finds an agreement violation under a crash. *)
  let r =
    Adversary.agreement_crash_sweep
      ~make:(K_ordering.hw_queue ~capacity:3)
      ~ordering:K_ordering.queue_witness ~inputs:[| 100; 200; 300 |] ~k:1 ~max_crashes:1 ()
  in
  Alcotest.(check bool) "violations found" true (r.Adversary.sw_violations <> [])

(* ---------------- budgeted graceful degradation ----------------------- *)

module L_max = Lincheck.Make (Spec.Max_register)

let test_budget_nodes_partial_stats () =
  let v, st = L_max.check_strong_stats ~max_nodes:10 (max_reg_prog ()) in
  (match v with
  | L_max.Out_of_budget { nodes; reason } ->
      Alcotest.(check bool) "reason" true (reason = Lincheck.Budget_nodes);
      Alcotest.(check int) "nodes counted" 11 nodes;
      (* The pinned rendering and JSON of the historical node-budget
         verdict: byte-identical, no "reason" field. *)
      Alcotest.(check string) "pinned pp" "inconclusive: budget of 11 nodes exhausted"
        (Format.asprintf "%a" L_max.pp_verdict v);
      Alcotest.(check bool) "no reason field" false
        (List.mem_assoc "reason" (L_max.verdict_fields v))
  | _ -> Alcotest.failf "expected Out_of_budget, got %a" L_max.pp_verdict v);
  Alcotest.(check bool) "partial stats populated" true (st.Lincheck.nodes > 0)

let test_budget_wall () =
  let v, _ = L_max.check_strong_stats ~budget_ms:0 (max_reg_prog ()) in
  match v with
  | L_max.Out_of_budget { reason; _ } ->
      Alcotest.(check bool) "wall reason" true (reason = Lincheck.Budget_wall);
      Alcotest.(check bool) "reason field present" true
        (List.mem_assoc "reason" (L_max.verdict_fields v))
  | _ -> Alcotest.failf "expected Out_of_budget, got %a" L_max.pp_verdict v

let test_crash_game_budget () =
  let cv = A_max.check_strong_crashes ~max_nodes:5 ~crashes:1 (max_reg_prog ()) in
  match cv with
  | A_max.Crash_inconclusive { nodes; reason } ->
      Alcotest.(check bool) "nodes counted" true (nodes > 0);
      Alcotest.(check bool) "reason" true (reason = Lincheck.Budget_nodes)
  | _ -> Alcotest.failf "expected inconclusive, got %a" A_max.pp_crash_verdict cv

let mult_trace () =
  (* Any queue trace will do; take one from the HW queue's standard
     workload under a fixed seed. *)
  let prog =
    Harness.program ~make:Executors.hw_queue
      ~workload:
        [|
          [ Spec.Queue_spec.Enq 1 ];
          [ Spec.Queue_spec.Enq 2 ];
          [ Spec.Queue_spec.Deq ];
          [ Spec.Queue_spec.Deq ];
        |]
  in
  Sim.trace (Sim.run_random ~seed:11 prog)

let test_mult_check_budgeted () =
  let t = mult_trace () in
  (match Mult_check.check_budgeted ~budget_nodes:0 Mult_check.Queue t with
  | Mult_check.Inconclusive { visited; reason } ->
      Alcotest.(check bool) "visited counted" true (visited > 0);
      Alcotest.(check bool) "reason" true (reason = Lincheck.Budget_nodes)
  | Mult_check.Decided _ -> Alcotest.fail "a zero-node budget cannot decide");
  match Mult_check.check_budgeted Mult_check.Queue t with
  | Mult_check.Decided b -> (
      Alcotest.(check bool) "unbudgeted agrees with check" (Mult_check.check Mult_check.Queue t) b;
      (* memoized DFS: same decision, never more states *)
      match Mult_check.check_budgeted ~reduce:true Mult_check.Queue t with
      | Mult_check.Decided b' ->
          Alcotest.(check bool) "reduced DFS agrees" b b'
      | Mult_check.Inconclusive _ -> Alcotest.fail "reduce sets no budget, nothing to trip")
  | Mult_check.Inconclusive _ -> Alcotest.fail "no budget set, nothing to trip"

let suite =
  [
    ("crash game agrees: faa-max", `Quick, crash_game_agrees "faa-max");
    ("crash game agrees: mwmr-register", `Quick, crash_game_agrees "mwmr-register");
    ("crash game agrees: tournament-ts", `Quick, crash_game_agrees "tournament-ts");
    ("wait-free bound exhaustive", `Quick, test_wait_free_bound);
    ("wait-free bound budget", `Quick, test_wait_free_budget);
    ("livelock found on HW queue", `Quick, test_livelock_found);
    ("livelock witness roundtrip", `Quick, test_livelock_witness_roundtrip);
    ("no livelock on wait-free object", `Quick, test_no_livelock_on_wait_free);
    ("fuzz deterministic", `Quick, test_fuzz_deterministic);
    ("fuzz finds violation", `Quick, test_fuzz_finds_violation);
    ("sweep: atomic queue clean", `Quick, test_sweep_atomic_queue);
    ("sweep: HW queue violates", `Quick, test_sweep_hw_queue_violates);
    ("budget: nodes + partial stats", `Quick, test_budget_nodes_partial_stats);
    ("budget: wall clock", `Quick, test_budget_wall);
    ("budget: crash game", `Quick, test_crash_game_budget);
    ("budget: multiplicity checker", `Quick, test_mult_check_budgeted);
  ]

let () = Alcotest.run "adversary" [ ("adversary", suite) ]
