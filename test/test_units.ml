(* Unit tests for the supporting modules that the bigger suites exercise
   only indirectly: Trace, History, Inf_array, Atomic_objects, and the
   Object_intf reference semantics. *)

let inv p op = Trace.Invoke { proc = p; op }
let ret p resp = Trace.Return { proc = p; resp }
let step p obj = Trace.Step { proc = p; obj; info = None; noop = false }

(* --- Trace ------------------------------------------------------------ *)

let test_trace_history_filter () =
  let t = [ inv 0 "a"; step 0 "r"; step 1 "r"; ret 0 "x"; inv 1 "b" ] in
  Alcotest.(check int) "history keeps inv/ret" 3 (List.length (Trace.history t));
  Alcotest.(check int) "step count" 2 (Trace.step_count t)

(* --- History ----------------------------------------------------------- *)

let records_of t = History.of_trace t

let test_history_extraction () =
  let t = [ inv 0 "a"; inv 1 "b"; ret 1 "rb"; ret 0 "ra" ] in
  let rs = records_of t in
  Alcotest.(check int) "two records" 2 (List.length rs);
  let a = List.nth rs 0 and b = List.nth rs 1 in
  Alcotest.(check int) "ids by invocation order" 0 a.History.id;
  Alcotest.(check bool) "both complete" true History.(is_complete a && is_complete b);
  Alcotest.(check bool) "overlapping" true (History.overlapping a b);
  Alcotest.(check bool) "no precedence" false (History.precedes a b || History.precedes b a)

let test_history_precedence () =
  let t = [ inv 0 "a"; ret 0 "ra"; inv 1 "b"; ret 1 "rb" ] in
  match records_of t with
  | [ a; b ] ->
      Alcotest.(check bool) "a precedes b" true (History.precedes a b);
      Alcotest.(check bool) "b not precedes a" false (History.precedes b a)
  | _ -> Alcotest.fail "expected two records"

let test_history_pending () =
  let t = [ inv 0 "a"; inv 1 "b"; ret 1 "rb" ] in
  let rs = records_of t in
  Alcotest.(check int) "one pending" 1 (List.length (History.pending_ops rs));
  Alcotest.(check int) "one complete" 1 (List.length (History.complete_ops rs));
  let p = List.hd (History.pending_ops rs) in
  Alcotest.(check bool) "pending precedes nothing" false
    (List.exists (History.precedes p) rs)

let test_history_malformed () =
  Alcotest.check_raises "double invoke"
    (Invalid_argument "History.of_trace: p0 invoked twice concurrently") (fun () ->
      ignore (records_of [ inv 0 "a"; inv 0 "b" ]));
  Alcotest.check_raises "return without invoke"
    (Invalid_argument "History.of_trace: p1 returned without invoking") (fun () ->
      ignore (records_of [ ret 1 "x" ]))

(* --- Inf_array ---------------------------------------------------------- *)

let test_inf_array () =
  let created = ref [] in
  let a =
    Inf_array.create (fun i ->
        created := i :: !created;
        i * 10)
  in
  Alcotest.(check int) "get 5" 50 (Inf_array.get a 5);
  Alcotest.(check int) "get 5 again (cached)" 50 (Inf_array.get a 5);
  Alcotest.(check int) "get 0" 0 (Inf_array.get a 0);
  Alcotest.(check (list int)) "each index created once" [ 0; 5 ]
    (List.sort compare !created)

(* --- Atomic_objects ------------------------------------------------------ *)

let test_atomic_objects () =
  let module R = (val Solo_runtime.make ~self:1 ~n:3 ()) in
  let module A = Atomic_objects.Make (R) in
  let m = A.Max_register.create () in
  A.Max_register.write_max m 5;
  A.Max_register.write_max m 2;
  Alcotest.(check int) "max register" 5 (A.Max_register.read_max m);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Max_register.write_max: negative") (fun () ->
      A.Max_register.write_max m (-1));
  let ts = A.Multishot_ts.create () in
  Alcotest.(check int) "ts win" 0 (A.Multishot_ts.test_and_set ts);
  A.Multishot_ts.reset ts;
  Alcotest.(check int) "ts read after reset" 0 (A.Multishot_ts.read ts);
  let f = A.Fetch_inc.create () in
  Alcotest.(check int) "fi starts at 1" 1 (A.Fetch_inc.fetch_inc f);
  let s = A.Snapshot.create () in
  A.Snapshot.update s 9;
  Alcotest.(check (array int)) "snapshot self component" [| 0; 9; 0 |] (A.Snapshot.scan s);
  let q = A.Queue.create () in
  A.Queue.enqueue q 1;
  A.Queue.enqueue q 2;
  Alcotest.(check (option int)) "queue fifo" (Some 1) (A.Queue.dequeue q);
  let st = A.Stack.create () in
  A.Stack.push st 1;
  A.Stack.push st 2;
  Alcotest.(check (option int)) "stack lifo" (Some 2) (A.Stack.pop st);
  Alcotest.(check (option int)) "stack drain" (Some 1) (A.Stack.pop st);
  Alcotest.(check (option int)) "stack empty" None (A.Stack.pop st)

let test_wide_faa_negative_guard () =
  let module R = (val Solo_runtime.make ~self:0 ~n:1 ()) in
  let module P = Prim.Make (R) in
  let r = P.Faa_wide.make (Bignum.of_int 1) in
  Alcotest.check_raises "underflow surfaces" Bignum.Underflow (fun () ->
      ignore (P.Faa_wide.fetch_and_add r (Bignum.Signed.of_int (-2))))

let suite =
  [
    ("trace history filter", `Quick, test_trace_history_filter);
    ("history extraction", `Quick, test_history_extraction);
    ("history precedence", `Quick, test_history_precedence);
    ("history pending", `Quick, test_history_pending);
    ("history malformed traces", `Quick, test_history_malformed);
    ("inf array", `Quick, test_inf_array);
    ("atomic objects", `Quick, test_atomic_objects);
    ("wide faa underflow", `Quick, test_wide_faa_negative_guard);
  ]

let () = Alcotest.run "units" [ ("units", suite) ]
