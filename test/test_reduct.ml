(* Tests for the partial-order-reduction layer ([Reduct]): the static
   dependency relation, its agreement with the coverage layer's
   empirical object-pair matrix (PR 7), and the commutation-invariance
   of the trace fingerprint the engine's [--reduce] memo keys on.

   The reduction is sound only while two facts hold, and both are
   pinned here:
   - the static relation never calls a pair commuting that the
     empirical layer (or the simulator itself) can distinguish;
   - the fingerprint is invariant under exactly the adjacent swaps the
     relation allows — equal for commuting reorders, sensitive to
     conflicting ones. *)

let step proc obj info = Trace.Step { proc; obj; info; noop = false }

(* ---------------- static relation basics ------------------------------- *)

let test_static_relation () =
  let comm = Reduct.commuting_steps in
  Alcotest.(check bool) "distinct objects commute" true
    (comm ~obj1:"a" ~info1:(Some "write") ~obj2:"b" ~info2:(Some "write"));
  Alcotest.(check bool) "same-object read/read commutes" true
    (comm ~obj1:"a" ~info1:(Some "read") ~obj2:"a" ~info2:(Some "read"));
  Alcotest.(check bool) "same-object read/write conflicts" false
    (comm ~obj1:"a" ~info1:(Some "read") ~obj2:"a" ~info2:(Some "write"));
  Alcotest.(check bool) "same-object swap/swap conflicts" false
    (comm ~obj1:"a" ~info1:(Some "swap") ~obj2:"a" ~info2:(Some "swap"));
  Alcotest.(check bool) "untagged same-object access conflicts" false
    (comm ~obj1:"a" ~info1:None ~obj2:"a" ~info2:None);
  (* event level: same process never commutes (program order is real) *)
  Alcotest.(check bool) "same-process steps never commute" false
    (Reduct.events_commute (step 0 "a" (Some "read")) (step 0 "b" (Some "read")));
  (* history events *)
  let inv p : (string, string) Trace.event = Trace.Invoke { proc = p; op = "op" } in
  let ret p : (string, string) Trace.event = Trace.Return { proc = p; resp = "r" } in
  Alcotest.(check bool) "invoke/invoke conflicts (record ids)" false
    (Reduct.events_commute (inv 0) (inv 1));
  Alcotest.(check bool) "invoke/return conflicts (precedence)" false
    (Reduct.events_commute (ret 0) (inv 1));
  Alcotest.(check bool) "return/return commutes" true (Reduct.events_commute (ret 0) (ret 1));
  Alcotest.(check bool) "step vs invoke commutes" true
    (Reduct.events_commute (step 0 "a" (Some "write")) (inv 1));
  (* dynamic refinement: state-preserving accesses behave like reads *)
  let noop_cas p = Trace.Step { proc = p; obj = "a"; info = Some "cas"; noop = true } in
  Alcotest.(check bool) "two same-object noop accesses commute" true
    (Reduct.events_commute (noop_cas 0) (noop_cas 1));
  Alcotest.(check bool) "noop vs mutating access conflicts" false
    (Reduct.events_commute (noop_cas 0) (step 1 "a" (Some "cas")))

(* ---------------- agreement with the coverage layer -------------------- *)

(* Feed a two-step trace into a fresh coverage shard and read the
   classification back out of the [slin-coverage/v1] matrix.  This goes
   through [Coverage]'s own (unexported) classifier, so the test fails
   if the two layers' notions of read-likeness or conflict ever
   drift. *)
let coverage_conflicting ~obj1 ~info1 ~obj2 ~info2 =
  let c = Coverage.create () in
  let sh = Coverage.shard c ~domain:0 in
  let tr : (string, string) Trace.t = [ step 0 obj1 info1; step 1 obj2 info2 ] in
  Coverage.observe_node sh ~depth:2 ~branching:0 tr;
  let json = Coverage.to_json c ~meta:[] in
  let rows =
    match Option.bind (Obs_json.member "matrix" json) Obs_json.to_list with
    | Some rows -> rows
    | None -> Alcotest.fail "coverage report has no matrix"
  in
  let conf = ref 0 and comm = ref 0 in
  List.iter
    (fun row ->
      let num k =
        match Option.bind (Obs_json.member k row) Obs_json.to_float with
        | Some f -> int_of_float f
        | None -> Alcotest.failf "matrix row missing %s" k
      in
      conf := !conf + num "conflicting";
      comm := !comm + num "commuting")
    rows;
  match (!conf, !comm) with
  | 1, 0 -> true
  | 0, 1 -> false
  | c, m -> Alcotest.failf "expected exactly one classified pair, got %d conf + %d comm" c m

let test_matches_coverage_classifier () =
  let tags = [ Some "read"; Some "scan"; Some "collect"; Some "write"; Some "cas";
               Some "swap"; Some "fetch&add"; Some "test&set"; Some "update"; None ]
  in
  List.iter
    (fun info1 ->
      List.iter
        (fun info2 ->
          let show i = match i with Some s -> s | None -> "?" in
          (* same object: the interesting axis *)
          Alcotest.(check bool)
            (Printf.sprintf "same-object %s/%s" (show info1) (show info2))
            (Reduct.conflicting_steps ~obj1:"x" ~info1 ~obj2:"x" ~info2)
            (coverage_conflicting ~obj1:"x" ~info1 ~obj2:"x" ~info2);
          (* distinct objects: both layers must say commuting *)
          Alcotest.(check bool)
            (Printf.sprintf "distinct-object %s/%s" (show info1) (show info2))
            false
            (coverage_conflicting ~obj1:"x" ~info1 ~obj2:"y" ~info2
            || Reduct.conflicting_steps ~obj1:"x" ~info1 ~obj2:"y" ~info2))
        tags)
    tags

(* The committed PR 7 empirical matrix for hw-queue: the static
   relation's shape must hold in the real data.  Distinct-object rows
   never conflict; every same-object row of this workload conflicts at
   least once (each hw-queue object sees writes: F&A on [back], swaps
   on the slots); and [back] — the one object with a read/F&A mix —
   also records commuting (read/read) pairs. *)
let test_against_committed_matrix () =
  let path =
    if Sys.file_exists "baselines/coverage-hw-queue-j1.json" then
      "baselines/coverage-hw-queue-j1.json"
    else "test/baselines/coverage-hw-queue-j1.json"
  in
  let json =
    Obs_json.of_string_exn (In_channel.with_open_text path In_channel.input_all)
  in
  let rows =
    match Option.bind (Obs_json.member "matrix" json) Obs_json.to_list with
    | Some rows -> rows
    | None -> Alcotest.fail "baseline has no matrix"
  in
  Alcotest.(check bool) "baseline matrix is non-trivial" true (List.length rows >= 3);
  List.iter
    (fun row ->
      let str k =
        match Obs_json.member k row with
        | Some (Obs_json.String s) -> s
        | _ -> Alcotest.failf "matrix row missing %s" k
      in
      let num k =
        match Option.bind (Obs_json.member k row) Obs_json.to_float with
        | Some f -> int_of_float f
        | None -> Alcotest.failf "matrix row missing %s" k
      in
      let a = str "a" and b = str "b" in
      let conf = num "conflicting" and comm = num "commuting" in
      if not (String.equal a b) then
        Alcotest.(check int)
          (Printf.sprintf "distinct objects %s/%s never conflict" a b)
          0 conf
      else begin
        Alcotest.(check bool)
          (Printf.sprintf "same object %s sees conflicts (it is written)" a)
          true (conf > 0);
        if String.equal a "hw.back" then
          Alcotest.(check bool) "hw.back sees commuting read/read pairs" true (comm > 0)
      end)
    rows

(* ---------------- fingerprint commutation-invariance ------------------- *)

(* Random walk over a registry object's schedule tree, recording the
   event bundle each scheduling step emitted.  Returns the schedule and
   its per-step bundles. *)
let random_walk prog rng =
  let w = Sim.run_schedule prog [] in
  let sched = ref [] in
  let bundles = ref [] in
  let continue = ref true in
  while !continue do
    match Sim.enabled w with
    | [] -> continue := false
    | ps ->
        let p = List.nth ps (Random.State.int rng (List.length ps)) in
        let before = Sim.trace_len w in
        Sim.step w p;
        sched := p :: !sched;
        bundles := Sim.events_from w ~from:before :: !bundles
  done;
  (Array.of_list (List.rev !sched), Array.of_list (List.rev !bundles))

let trace_of_schedule prog sched =
  let w = Sim.run_schedule prog (Array.to_list sched) in
  Sim.trace w

(* The semantic content of a history: the records (ids, processes,
   operations, responses) and the real-time precedence relation.  Raw
   [op_record]s also carry trace positions ([inv_index]/[res_index]),
   which commuting swaps of course move — the game never reads the
   positions themselves, only the precedence derived from them. *)
let hist_sem tr =
  let recs = History.of_trace tr in
  let core = List.map (fun r -> (r.History.id, r.History.proc, r.History.op, r.History.resp)) recs in
  let prec =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if a.History.id <> b.History.id && History.precedes a b then
              Some (a.History.id, b.History.id)
            else None)
          recs)
      recs
  in
  (core, prec)

(* The property the [--reduce] memo rests on: swapping two adjacent
   scheduling steps whose bundles commute (per [bundles_commute])
   changes neither the trace fingerprint nor the history.  Conflicting
   adjacent swaps of base-object accesses must change the fingerprint
   (that direction is what keeps distinct subtrees from sharing a memo
   entry; hash collisions are possible in principle but a fixed seeded
   walk hitting one would be a baked-in soundness bug worth failing
   on). *)
let swap_invariance_prop name seed =
  match Registry.find name with
  | None -> Alcotest.failf "unknown registry object %s" name
  | Some (Registry.Checkable c) ->
  let prog = Harness.program ~make:c.make ~workload:c.workload in
  let rng = Random.State.make [| seed; 0x0d0e |] in
  let sched, bundles = random_walk prog rng in
  let n = Array.length sched in
  if n < 2 then true
  else begin
    let base_tr = trace_of_schedule prog sched in
    let base_fp = Reduct.fp_of_trace base_tr in
    let base_hist = hist_sem base_tr in
    let ok = ref true in
    for i = 0 to n - 2 do
      if sched.(i) <> sched.(i + 1) then begin
        let swapped = Array.copy sched in
        swapped.(i) <- sched.(i + 1);
        swapped.(i + 1) <- sched.(i);
        if Reduct.bundles_commute bundles.(i) bundles.(i + 1) then begin
          (* A commuting swap leaves both fibers' views unchanged, so
             the swapped schedule is always legal — [run_schedule]
             raising here would itself refute commutation. *)
          let tr' = trace_of_schedule prog swapped in
          let fp' = Reduct.fp_of_trace tr' in
          if fp' <> base_fp then begin
            Printf.printf "commuting swap at %d changed fp (%s)\n" i name;
            ok := false
          end;
          if hist_sem tr' <> base_hist then begin
            Printf.printf "commuting swap at %d changed history (%s)\n" i name;
            ok := false
          end
        end
        else begin
          (* Conflicting swap: only pure Step/Step conflicts must move
             the fingerprint (history reorders change the records, and
             mixed bundles can conflict via their history halves while
             the object chains stay equal).  The reordered run may
             behave arbitrarily differently — including taking a
             different number of steps, which makes the tail of the
             swapped schedule illegal; that derailment is itself the
             conflict manifesting, not a failure. *)
          let pure_steps =
            List.for_all (function Trace.Step _ -> true | _ -> false) bundles.(i)
            && List.for_all (function Trace.Step _ -> true | _ -> false) bundles.(i + 1)
          in
          if pure_steps then begin
            match trace_of_schedule prog swapped with
            | tr' ->
                if Reduct.fp_of_trace tr' = base_fp && tr' <> base_tr then begin
                  Printf.printf "conflicting swap at %d kept fp (%s)\n" i name;
                  ok := false
                end
            | exception Sim.Invalid_schedule _ -> ()
          end
        end
      end
    done;
    !ok
  end

let prop name ?(count = 60) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let seed_arb = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

(* ---------------- fingerprint unit behaviour --------------------------- *)

let test_fp_reads_commute () =
  let r p = step p "x" (Some "read") in
  let w p = step p "x" (Some "write") in
  let fp evs = Reduct.fp_of_trace (evs : (string, string) Trace.t) in
  Alcotest.(check bool) "read/read swap keeps fp" true
    (fp [ r 0; r 1; w 2 ] = fp [ r 1; r 0; w 2 ]);
  Alcotest.(check bool) "read/write swap changes fp" true
    (fp [ r 0; w 1 ] <> fp [ w 1; r 0 ]);
  Alcotest.(check bool) "distinct-object swap keeps fp" true
    (fp [ step 0 "x" (Some "write"); step 1 "y" (Some "write") ]
    = fp [ step 1 "y" (Some "write"); step 0 "x" (Some "write") ]);
  let ret p : (string, string) Trace.event = Trace.Return { proc = p; resp = "r" } in
  let inv p : (string, string) Trace.event = Trace.Invoke { proc = p; op = "op" } in
  Alcotest.(check bool) "return/return swap keeps fp" true
    (fp [ ret 0; ret 1; inv 2 ] = fp [ ret 1; ret 0; inv 2 ]);
  Alcotest.(check bool) "return/invoke swap changes fp" true
    (fp [ ret 0; inv 1 ] <> fp [ inv 1; ret 0 ]);
  Alcotest.(check bool) "invoke/invoke swap changes fp" true
    (fp [ inv 0; inv 1 ] <> fp [ inv 1; inv 0 ])

(* ---------------- suite ------------------------------------------------ *)

let () =
  Alcotest.run "reduct"
    [
      ( "reduct",
        [
          Alcotest.test_case "static relation" `Quick test_static_relation;
          Alcotest.test_case "agrees with coverage classifier" `Quick
            test_matches_coverage_classifier;
          Alcotest.test_case "shape of committed empirical matrix" `Quick
            test_against_committed_matrix;
          Alcotest.test_case "fingerprint units" `Quick test_fp_reads_commute;
          prop "hw-queue: adjacent commuting swaps preserve fp" seed_arb
            (swap_invariance_prop "hw-queue");
          prop "agm-stack: adjacent commuting swaps preserve fp" ~count:40 seed_arb
            (swap_invariance_prop "agm-stack");
          prop "set-empty-race: adjacent commuting swaps preserve fp" ~count:40 seed_arb
            (swap_invariance_prop "set-empty-race");
        ] );
    ]
