(* Tests for the multicore checker engine (incremental replay, anchored
   cross-checks, work-stealing subtree solving): the determinism
   contract — verdict, witness and every count identical across [jobs],
   [steal_grain] and [checkpoint_stride] — plus the heartbeat cadence,
   the incremental node evaluation itself, and the adversary's twin
   loops. *)

(* [effective_workers] caps [jobs] at the hardware parallelism, so on a
   single-core CI runner every jobs>1 case would silently collapse to
   the sequential engine and test nothing.  Lifting the cap via the env
   override forces real multi-domain runs everywhere. *)
let () = Unix.putenv "SLIN_DOMAIN_CAP" "8"

(* ---------------- engine equivalence over the registry ---------------- *)

(* The deterministic slice of a run: the rendered verdict (so witness
   schedules and node payloads are compared too) and every stats field
   except elapsed time. *)
let run_fingerprint name ~jobs ~steal_grain ~checkpoint_stride ~max_nodes =
  match Registry.find name with
  | None -> Alcotest.failf "unknown registry object %s" name
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let v, s =
        L.check_strong_stats ~max_nodes ?max_depth:c.default_depth ~jobs ~steal_grain
          ~checkpoint_stride prog
      in
      Format.asprintf "%a | nodes=%d hits=%d frontier=%d cand=%d killed=%d dead=%d vfail=%d"
        L.pp_verdict v s.Lincheck.nodes s.Lincheck.cache_hits s.Lincheck.max_frontier_depth
        s.Lincheck.candidates_generated s.Lincheck.candidates_killed s.Lincheck.dead_ends
        s.Lincheck.validate_failures

(* jobs x steal-grain x checkpoint-stride, all against the sequential
   run.  grain 0 is whole-column tasks (stealing without forking),
   grain 4 the default fork depth — at jobs=1 both must also reduce to
   the sequential engine exactly. *)
let engine_equivalent ?(max_nodes = 200_000) name () =
  let base = run_fingerprint name ~jobs:1 ~steal_grain:4 ~checkpoint_stride:16 ~max_nodes in
  List.iter
    (fun jobs ->
      List.iter
        (fun steal_grain ->
          List.iter
            (fun stride ->
              let fp =
                run_fingerprint name ~jobs ~steal_grain ~checkpoint_stride:stride ~max_nodes
              in
              Alcotest.(check string)
                (Printf.sprintf "%s at jobs=%d grain=%d stride=%d" name jobs steal_grain
                   stride)
                base fp)
            [ 1; 16 ])
        [ 0; 4 ])
    [ 1; 2; 4 ]

(* Objects covering every verdict constructor: SL (faa-max, counter,
   readable-ts, set), NSL with witness (set-empty-race, hw-queue),
   NOT-LIN (tournament-ts).  mwmr-register under a deliberately small
   budget exercises Out_of_budget — in the parallel engine that is the
   sequential-fallback path, which must reproduce the jobs=1 run
   bit-for-bit. *)
let equivalence_objects =
  [
    ("faa-max", None);
    ("counter", None);
    ("readable-ts", None);
    ("fetch-inc", None);
    ("set", None);
    ("tournament-ts", None);
    ("set-empty-race", None);
    ("hw-queue", None);
    ("mwmr-register", Some 50_000);
  ]

(* ---------------- partial-order reduction ----------------------------- *)

(* The [--reduce] contract: the verdict (witness included) is identical
   to the unreduced run's; the reduced exploration is deterministic —
   the same node/prune counts at every jobs x steal_grain combination
   (grain is forced to whole-column tasks under reduce, so the matrix
   also pins that collapse); and on the refuted E2 baselines the memo
   actually bites (>= 5x fewer nodes on hw-queue — the ratio the bench
   rows gate).  [reduce_check] re-explores every memo hit and compares:
   it must agree everywhere and reproduce the unreduced node count
   exactly (every node is visited, just also cross-checked). *)
(* [pp_verdict] embeds the node count ("; 92839 nodes"), which is
   exactly what reduction changes — blank the token before any "nodes"
   so reduced and unreduced verdicts compare on verdict kind + witness
   schedule alone. *)
let strip_node_counts s =
  let rec go = function
    | _ :: (b :: _ as rest) when String.length b >= 5 && String.sub b 0 5 = "nodes" ->
        "N" :: go rest
    | x :: rest -> x :: go rest
    | [] -> []
  in
  String.concat " " (go (String.split_on_char ' ' s))

let reduce_equivalent ?(min_ratio = 5) ?(max_nodes = 500_000) name () =
  match Registry.find name with
  | None -> Alcotest.failf "unknown registry object %s" name
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let run ~jobs ~steal_grain ~reduce ~reduce_check =
        let v, s =
          L.check_strong_stats ~max_nodes ?max_depth:c.default_depth ~jobs ~steal_grain
            ~reduce ~reduce_check prog
        in
        (Format.asprintf "%a" L.pp_verdict v, s.Lincheck.nodes)
      in
      let base_v, base_n = run ~jobs:1 ~steal_grain:4 ~reduce:false ~reduce_check:false in
      let red_v, red_n = run ~jobs:1 ~steal_grain:0 ~reduce:true ~reduce_check:false in
      Alcotest.(check string) (name ^ ": reduced verdict identical")
        (strip_node_counts base_v) (strip_node_counts red_v);
      Alcotest.(check bool)
        (Printf.sprintf "%s: reduction >= %dx (%d vs %d nodes)" name min_ratio base_n red_n)
        true
        (red_n * min_ratio <= base_n);
      List.iter
        (fun jobs ->
          List.iter
            (fun steal_grain ->
              let v, n = run ~jobs ~steal_grain ~reduce:true ~reduce_check:false in
              Alcotest.(check string)
                (Printf.sprintf "%s reduced at jobs=%d grain=%d: verdict" name jobs steal_grain)
                red_v v;
              Alcotest.(check int)
                (Printf.sprintf "%s reduced at jobs=%d grain=%d: nodes" name jobs steal_grain)
                red_n n)
            [ 0; 4 ])
        [ 1; 4 ]

let test_reduce_check_cross_validates () =
  match Registry.find "set-empty-race" with
  | None -> Alcotest.fail "set-empty-race not registered"
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let run ~reduce ~reduce_check =
        let v, s =
          L.check_strong_stats ~max_nodes:500_000 ?max_depth:c.default_depth ~reduce
            ~reduce_check prog
        in
        (Format.asprintf "%a" L.pp_verdict v, s.Lincheck.nodes)
      in
      let base_v, base_n = run ~reduce:false ~reduce_check:false in
      (* reduce_check implies reduce; it raises on any memo/subtree
         disagreement, so merely completing is the cross-validation *)
      let chk_v, chk_n = run ~reduce:false ~reduce_check:true in
      Alcotest.(check string) "reduce_check verdict identical" base_v chk_v;
      Alcotest.(check int) "reduce_check re-explores every node" base_n chk_n;
      let red_v, _ = run ~reduce:true ~reduce_check:false in
      Alcotest.(check string) "reduced verdict identical" (strip_node_counts base_v)
        (strip_node_counts red_v)

(* ---------------- heartbeat cadence ----------------------------------- *)

(* With the time cadence disabled ([progress_every_ms:0]), [on_progress]
   fires exactly at every [progress_every]-th fresh node: floor(nodes /
   every) times in a complete run, and never for node 0.  The parallel
   engine aggregates node counts across workers and emits from worker 0,
   so jobs=2 beats too (cadence is timing-dependent there — just
   monotone node totals, not an exact count). *)
let test_heartbeat_cadence () =
  match Registry.find "counter" with
  | None -> Alcotest.fail "counter not registered"
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let every = 50 in
      let beats = ref 0 in
      let _, s =
        L.check_strong_stats
          ~on_progress:(fun ~nodes:_ ~elapsed_ns:_ -> incr beats)
          ~progress_every:every ~progress_every_ms:0 prog
      in
      Alcotest.(check int) "beats = floor(nodes/every)" (s.Lincheck.nodes / every) !beats;
      Alcotest.(check bool) "some beats fired" true (!beats > 0);
      let beats_par = ref 0 in
      let last = ref 0 in
      let monotone = ref true in
      let _, s2 =
        L.check_strong_stats
          ~on_progress:(fun ~nodes ~elapsed_ns:_ ->
            incr beats_par;
            if nodes < !last then monotone := false;
            last := nodes)
          ~progress_every:1 ~progress_every_ms:0 ~jobs:2 prog
      in
      Alcotest.(check int) "same nodes at jobs=2" s.Lincheck.nodes s2.Lincheck.nodes;
      Alcotest.(check bool) "parallel engine beats" true (!beats_par > 0);
      Alcotest.(check bool) "aggregated node totals are monotone" true !monotone;
      Alcotest.(check bool) "beats never overshoot the node total" true
        (!last <= s2.Lincheck.nodes)

(* The wall-clock cadence: with the node cadence effectively off (a huge
   [progress_every]) and a 1 ms time cadence, a run that expands many
   nodes still beats — cache-hit streaks and long replays can no longer
   go silent. *)
let test_heartbeat_time_cadence () =
  match Registry.find "counter" with
  | None -> Alcotest.fail "counter not registered"
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let beats = ref 0 in
      let _, s =
        L.check_strong_stats
          ~on_progress:(fun ~nodes:_ ~elapsed_ns:_ -> incr beats)
          ~progress_every:max_int ~progress_every_ms:1 prog
      in
      Alcotest.(check bool) "run explored enough to take >1ms" true
        (s.Lincheck.elapsed_ns > 1_000_000);
      Alcotest.(check bool) "time cadence beats" true (!beats > 0)

(* ---------------- incremental node evaluation ------------------------- *)

(* Chain [extend_info] down a long schedule, anchoring every node
   against a full replay: any divergence raises. *)
let test_extend_info_chain () =
  match Registry.find "hw-queue" with
  | None -> Alcotest.fail "hw-queue not registered"
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let w = Sim.run_schedule prog [] in
      let info = ref (L.Internal.info_of_world w) in
      L.Internal.cross_check !info w;
      let steps = ref 0 in
      let continue = ref true in
      while !continue && !steps < 60 do
        match Sim.enabled w with
        | [] -> continue := false
        | ps ->
            (* rotate through the enabled set so the walk interleaves *)
            Sim.step w (List.nth ps (!steps mod List.length ps));
            info := L.Internal.extend_info !info w;
            L.Internal.cross_check !info w;
            incr steps
      done;
      Alcotest.(check bool) "walked some steps" true (!steps > 0)

(* ---------------- adversary twins ------------------------------------- *)

(* The crash game shares the incremental engine; its verdict must be
   identical for every anchor stride. *)
let test_crash_game_stride () =
  match Registry.find "faa-max" with
  | None -> Alcotest.fail "faa-max not registered"
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module A = Adversary.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let show stride =
        Format.asprintf "%a" A.pp_crash_verdict
          (A.check_strong_crashes ~checkpoint_stride:stride ~crashes:1 prog)
      in
      let base = show 16 in
      List.iter
        (fun stride ->
          Alcotest.(check string) (Printf.sprintf "stride %d" stride) base (show stride))
        [ 1; 4 ]

(* Fuzz campaigns: every report field except elapsed time is identical
   for every [jobs] — including on a campaign that finds a violation,
   where "first" must mean index-minimal, not first in wall time. *)
let fuzz_jobs_equivalent name runs () =
  match Registry.find name with
  | None -> Alcotest.failf "unknown registry object %s" name
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module A = Adversary.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let show jobs =
        let r = A.fuzz ~seed:1 ~runs ~jobs prog in
        let viol =
          match r.A.fz_violation with
          | None -> "none"
          | Some v ->
              Printf.sprintf "seed=%d crash=%s sched=%d shrunk=%d" v.A.v_seed
                (String.concat ","
                   (List.map (fun (p, at) -> Printf.sprintf "%d@%d" p at) v.A.v_crash_after))
                (List.length v.A.v_schedule) (Witness.size v.A.v_shape)
        in
        Printf.sprintf "runs=%d crashed=%d steps=%d viol=%s" r.A.fz_runs r.A.fz_crashed_runs
          r.A.fz_total_steps viol
      in
      let base = show 1 in
      List.iter
        (fun jobs ->
          Alcotest.(check string) (Printf.sprintf "%s fuzz at jobs=%d" name jobs) base
            (show jobs))
        [ 2; 3 ]

(* The agreement crash sweep: the whole report record is deterministic,
   so plain equality across [jobs]. *)
let test_sweep_jobs_equivalent () =
  let sweep jobs =
    Adversary.agreement_crash_sweep ~make:K_ordering.atomic_queue
      ~ordering:K_ordering.queue_witness ~inputs:[| 100; 200; 300 |] ~k:1 ~max_crashes:1 ~jobs
      ()
  in
  let base = sweep 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "sweep report identical at jobs=%d" jobs)
        true
        (sweep jobs = base))
    [ 2; 4 ]

(* ---------------- suite ----------------------------------------------- *)

let suite =
  List.map
    (fun (name, max_nodes) ->
      Alcotest.test_case
        (Printf.sprintf "equivalence: %s" name)
        `Slow
        (engine_equivalent ?max_nodes name))
    equivalence_objects
  @ [
      Alcotest.test_case "reduce: hw-queue >= 5x, jobs/grain equivalence" `Slow
        (reduce_equivalent "hw-queue");
      Alcotest.test_case "reduce: set-empty-race equivalence" `Slow
        (reduce_equivalent ~min_ratio:1 "set-empty-race");
      Alcotest.test_case "reduce: faa-max (SL verdict) equivalence" `Slow
        (reduce_equivalent ~min_ratio:1 "faa-max");
      Alcotest.test_case "reduce_check cross-validation" `Slow
        test_reduce_check_cross_validates;
      Alcotest.test_case "heartbeat cadence" `Quick test_heartbeat_cadence;
      Alcotest.test_case "heartbeat time cadence" `Quick test_heartbeat_time_cadence;
      Alcotest.test_case "extend_info anchored walk" `Quick test_extend_info_chain;
      Alcotest.test_case "crash game: stride equivalence" `Quick test_crash_game_stride;
      Alcotest.test_case "fuzz: jobs equivalence (clean)" `Slow
        (fuzz_jobs_equivalent "faa-max" 60);
      Alcotest.test_case "fuzz: jobs equivalence (violation)" `Slow
        (fuzz_jobs_equivalent "hw-queue" 120);
      Alcotest.test_case "sweep: jobs equivalence" `Slow test_sweep_jobs_equivalent;
    ]

let () = Alcotest.run "engine" [ ("engine", suite) ]
