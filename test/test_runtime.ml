(* Tests for the simulator, solo and parallel runtimes.

   The op/resp types for trace events are strings throughout: these tests
   exercise the machinery, not a particular object. *)

let ev = Alcotest.of_pp (Trace.pp_event Format.pp_print_string Format.pp_print_string)

(* A two-process read-then-write race on one register: the classic lost
   update.  Each process reads the register, then writes read+1. *)
let race_program () : (string, string) Sim.program =
  {
    procs = 2;
    boot =
      (fun w ->
        let module R = (val Sim.runtime w) in
        let r = R.obj ~name:"r" 0 in
        for p = 0 to 1 do
          Sim.spawn w ~proc:p (fun () ->
              ignore
                (Sim.operation w ~op:"inc" ~resp:string_of_int (fun () ->
                     let v = R.read r in
                     R.access r (fun _ -> (v + 1, v + 1)))))
        done);
  }

(* Final register value for a given schedule of the race program. *)
let race_result schedule =
  let w = Sim.run_schedule (race_program ()) schedule in
  let returns =
    List.filter_map
      (function Trace.Return { resp; _ } -> Some resp | _ -> None)
      (Sim.trace w)
  in
  returns

let test_determinism () =
  let s = [ 0; 1; 0; 1; 0; 1 ] in
  let t1 = Sim.trace (Sim.run_schedule (race_program ()) s) in
  let t2 = Sim.trace (Sim.run_schedule (race_program ()) s) in
  Alcotest.(check (list ev)) "same schedule, same trace" t1 t2

let test_sequential_schedule () =
  (* p0 runs to completion, then p1: no lost update. *)
  Alcotest.(check (list string)) "sequential" [ "1"; "2" ] (race_result [ 0; 0; 0; 1; 1; 1 ])

let test_racy_schedule () =
  (* Both read before either writes: both return 1 (lost update). *)
  Alcotest.(check (list string)) "interleaved" [ "1"; "1" ] (race_result [ 0; 1; 0; 1; 0; 1 ])

let test_step_counts () =
  let w = Sim.run_to_completion (race_program ()) in
  (* Each process: 1 boot resume + 2 accesses = 3 steps. *)
  Alcotest.(check int) "p0 steps" 3 (Sim.steps_of w 0);
  Alcotest.(check int) "p1 steps" 3 (Sim.steps_of w 1);
  Alcotest.(check bool) "p0 finished" true (Sim.finished w 0);
  Alcotest.(check (list int)) "none enabled" [] (Sim.enabled w)

let test_trace_shape () =
  let w = Sim.run_schedule (race_program ()) [ 0; 0; 0 ] in
  match Sim.trace w with
  | [ Trace.Invoke { proc = 0; op = "inc" }; Step _; Step _; Return { proc = 0; resp = "1" } ]
    ->
      ()
  | t ->
      Alcotest.failf "unexpected trace:@.%a"
        (Trace.pp Format.pp_print_string Format.pp_print_string)
        t

let test_invoke_before_first_step () =
  (* The first resume records the invocation and suspends at the first
     access without applying it. *)
  let w = Sim.run_schedule (race_program ()) [ 0 ] in
  (match Sim.trace w with
  | [ Trace.Invoke { proc = 0; _ } ] -> ()
  | t ->
      Alcotest.failf "unexpected trace:@.%a"
        (Trace.pp Format.pp_print_string Format.pp_print_string)
        t);
  Alcotest.(check (list int)) "both still enabled" [ 0; 1 ] (Sim.enabled w)

let test_crash () =
  let prog = race_program () in
  let w = Sim.run_schedule prog [ 0; 1 ] in
  Sim.crash w 0;
  Alcotest.(check (list int)) "only p1 left" [ 1 ] (Sim.enabled w);
  Alcotest.check_raises "stepping crashed proc" (Sim.Invalid_schedule "p0 crashed") (fun () ->
      Sim.step w 0);
  (* p1 can still finish; p0's operation stays pending. *)
  while Sim.enabled w <> [] do
    Sim.step w 1
  done;
  let returns =
    List.filter_map (function Trace.Return { proc; _ } -> Some proc | _ -> None) (Sim.trace w)
  in
  Alcotest.(check (list int)) "only p1 returned" [ 1 ] returns

let test_invalid_schedule () =
  let w = Sim.run_to_completion (race_program ()) in
  Alcotest.check_raises "finished" (Sim.Invalid_schedule "p0 already finished") (fun () ->
      Sim.step w 0);
  Alcotest.check_raises "out of range" (Sim.Invalid_schedule "p7 out of range") (fun () ->
      Sim.step w 7)

let test_spawn_errors () =
  let w = Sim.create ~n:1 in
  Sim.spawn w ~proc:0 (fun () -> ());
  Alcotest.check_raises "double spawn" (Invalid_argument "Sim.spawn: process already has a body")
    (fun () -> Sim.spawn w ~proc:0 (fun () -> ()));
  Alcotest.check_raises "out of range" (Invalid_argument "Sim.spawn: process out of range")
    (fun () -> Sim.spawn w ~proc:3 (fun () -> ()))

let test_run_random_deterministic () =
  let t1 = Sim.trace (Sim.run_random ~seed:42 (race_program ())) in
  let t2 = Sim.trace (Sim.run_random ~seed:42 (race_program ())) in
  Alcotest.(check (list ev)) "same seed, same trace" t1 t2

let test_run_random_crash () =
  (* Crash p0 immediately: only p1's operation completes. *)
  let w = Sim.run_random ~seed:1 ~crash_after:[ (0, 0) ] (race_program ()) in
  let returns =
    List.filter_map (function Trace.Return { proc; _ } -> Some proc | _ -> None) (Sim.trace w)
  in
  Alcotest.(check (list int)) "only p1 returned" [ 1 ] returns

let test_crash_idempotent () =
  (* A second crash of the same process, or a crash of a finished one,
     is a no-op — not an error, not a second fault. *)
  let w = Sim.run_schedule (race_program ()) [ 0 ] in
  Sim.crash w 0;
  Sim.crash w 0;
  Alcotest.(check (list int)) "p1 still enabled" [ 1 ] (Sim.enabled w);
  while Sim.enabled w <> [] do
    Sim.step w 1
  done;
  Sim.crash w 1;
  Alcotest.(check bool) "p1 stays finished, not crashed" true (Sim.finished w 1)

let test_crash_after_semantics () =
  (* [(p, at)] crashes p at the top of the scheduling loop once the
     TOTAL step count has reached [at] — before step at+1 is chosen.
     [(p, 0)] therefore means p never takes a step.  Pinned here with a
     fully deterministic plan: p0 can never run, and p1 crashes right
     after the first step, whatever the seed picks. *)
  let w, sched =
    Sim.run_random_full ~seed:99 ~crash_after:[ (0, 0); (1, 1) ] (race_program ())
  in
  Alcotest.(check (list int)) "exactly one step, by p1" [ 1 ] sched;
  (match Sim.trace w with
  | [ Trace.Invoke { proc = 1; _ } ] -> ()
  | t ->
      Alcotest.failf "unexpected trace:@.%a"
        (Trace.pp Format.pp_print_string Format.pp_print_string)
        t);
  Alcotest.(check (list int)) "nobody left enabled" [] (Sim.enabled w)

let test_run_random_full_consistency () =
  (* run_random is fst of run_random_full (same RNG stream), and the
     returned schedule replays the identical trace on its own — crashes
     only remove future steps, so no crash replay support is needed. *)
  List.iter
    (fun crash_after ->
      let w, sched = Sim.run_random_full ~seed:5 ~crash_after (race_program ()) in
      let t = Sim.trace w in
      Alcotest.(check (list ev))
        "run_random agrees" t
        (Sim.trace (Sim.run_random ~seed:5 ~crash_after (race_program ())));
      Alcotest.(check (list ev))
        "schedule alone replays the trace" t
        (Sim.trace (Sim.run_schedule (race_program ()) sched)))
    [ []; [ (0, 2) ]; [ (1, 0) ]; [ (0, 1); (1, 3) ] ]

let test_solo_runtime () =
  let module R = (val Solo_runtime.make ~self:3 ~n:8 ()) in
  let o = R.obj 10 in
  Alcotest.(check int) "read" 10 (R.read o);
  Alcotest.(check int) "rmw result" 10 (R.access o (fun s -> (s + 1, s)));
  Alcotest.(check int) "state updated" 11 (R.read o);
  Alcotest.(check int) "self" 3 (R.self ());
  Alcotest.(check int) "n" 8 (R.n_procs ())

let test_par_runtime () =
  let n = 4 and per = 1000 in
  let module R = (val Par_runtime.make ~n ()) in
  let counter = R.obj 0 in
  let selves =
    Par_runtime.run ~n (fun _ ->
        for _ = 1 to per do
          ignore (R.access counter (fun s -> (s + 1, s)))
        done;
        R.self ())
  in
  Alcotest.(check int) "no lost increments" (n * per) (R.read counter);
  Alcotest.(check (list int)) "distinct selves" [ 0; 1; 2; 3 ]
    (List.sort compare (Array.to_list selves))

(* Property: for every schedule of the race program that completes both
   operations, the final value is 1 or 2, and it is 2 iff no lost update
   (the two operations do not overlap at their access points). *)
let prop_race_outcomes =
  let gen = QCheck.Gen.(list_size (int_bound 20) (int_bound 1)) in
  let arb = QCheck.make ~print:(fun l -> String.concat "" (List.map string_of_int l)) gen in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"race outcomes are 1 or 2" ~count:300 arb (fun choices ->
         (* Interpret the random bits as a schedule, skipping disabled procs. *)
         let w = Sim.create ~n:2 in
         (race_program ()).boot w;
         List.iter
           (fun p -> match Sim.enabled w with [] -> () | en -> if List.mem p en then Sim.step w p)
           choices;
         (* Finish any stragglers deterministically. *)
         let rec drain () =
           match Sim.enabled w with
           | [] -> ()
           | p :: _ ->
               Sim.step w p;
               drain ()
         in
         drain ();
         let returns =
           List.filter_map
             (function Trace.Return { resp; _ } -> Some (int_of_string resp) | _ -> None)
             (Sim.trace w)
         in
         List.length returns = 2 && List.for_all (fun v -> v = 1 || v = 2) returns))

let suite =
  [
    ("determinism", `Quick, test_determinism);
    ("sequential schedule", `Quick, test_sequential_schedule);
    ("racy schedule", `Quick, test_racy_schedule);
    ("step counts", `Quick, test_step_counts);
    ("trace shape", `Quick, test_trace_shape);
    ("invoke before first step", `Quick, test_invoke_before_first_step);
    ("crash", `Quick, test_crash);
    ("invalid schedule", `Quick, test_invalid_schedule);
    ("spawn errors", `Quick, test_spawn_errors);
    ("run_random deterministic", `Quick, test_run_random_deterministic);
    ("run_random crash", `Quick, test_run_random_crash);
    ("crash idempotent", `Quick, test_crash_idempotent);
    ("crash_after semantics", `Quick, test_crash_after_semantics);
    ("run_random_full consistency", `Quick, test_run_random_full_consistency);
    ("solo runtime", `Quick, test_solo_runtime);
    ("parallel runtime", `Quick, test_par_runtime);
    prop_race_outcomes;
  ]

let () = Alcotest.run "runtime" [ ("runtime", suite) ]
