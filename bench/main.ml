(* Benchmark and experiment harness.

   Regenerates every experiment table (E1-E5, E7, E8, see DESIGN.md and
   EXPERIMENTS.md) and runs the E6 micro-benchmarks (bechamel timings on
   the solo runtime plus a parallel-runtime throughput table) and the
   fuzz-throughput pass.  Every timing also lands in BENCH_results.json
   so the perf trajectory is tracked PR-over-PR; --quick swaps the
   bechamel suite for a fast manual-timing pass but still writes the
   file.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- --quick # fast pass (quick E2, no bechamel)
     dune exec bench/main.exe -- e3 e5   # selected experiments only *)

let valid_experiments =
  [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "fuzz"; "checker"; "serve" ]

let usage_and_exit bad =
  Printf.eprintf "unknown argument%s: %s\n"
    (if List.length bad > 1 then "s" else "")
    (String.concat ", " bad);
  Printf.eprintf "usage: main.exe [--quick] [--out FILE] [%s ...]\n"
    (String.concat "|" valid_experiments);
  exit 2

let quick, out_file, chosen =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = ref false and out = ref "BENCH_results.json" in
  let names = ref [] and bad = ref [] in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        go rest
    | "--out" :: file :: rest ->
        out := file;
        go rest
    | a :: rest when String.length a > 6 && String.sub a 0 6 = "--out=" ->
        out := String.sub a 6 (String.length a - 6);
        go rest
    | a :: rest when List.mem a valid_experiments ->
        names := a :: !names;
        go rest
    | a :: rest ->
        bad := a :: !bad;
        go rest
  in
  go args;
  (match List.rev !bad with [] -> () | bad -> usage_and_exit bad);
  (!quick, !out, List.rev !names)

let selected name = chosen = [] || List.mem name chosen

(* ------------------------------------------------------------------ *)
(* BENCH_results.json: machine-readable perf record                    *)
(* ------------------------------------------------------------------ *)

(* (name, metric, value) triples; metric is "ns_per_op", "ops_per_s" or
   "schedules_per_s". *)
let bench_results : (string * string * float) list ref = ref []

(* Per-campaign fuzz summaries, serialized under the top-level "fuzz"
   key of BENCH_results.json. *)
let fuzz_results : (string * Obs_json.t) list ref = ref []

let record_result name metric value = bench_results := (name, metric, value) :: !bench_results

let bench_history_file = "bench_history.jsonl"

(* Rows of the previous report at [out_file], keyed by (name, metric),
   plus its fuzz summaries keyed by label.  A missing or unparseable
   file contributes nothing (first run, or a hand-edited report). *)
let read_old_results () =
  let open Obs_json in
  let doc =
    if not (Sys.file_exists out_file) then None
    else
      match In_channel.with_open_text out_file In_channel.input_all with
      | exception Sys_error _ -> None
      | s -> ( match of_string s with Ok d -> Some d | Error _ -> None)
  in
  match doc with
  | None -> ([], [])
  | Some doc ->
      let rows =
        match Option.bind (member "results" doc) to_list with
        | None -> []
        | Some l ->
            List.filter_map
              (fun r ->
                match
                  ( Option.bind (member "name" r) to_str,
                    Option.bind (member "metric" r) to_str,
                    Option.bind (member "value" r) to_float )
                with
                | Some n, Some m, Some v -> Some ((n, m), v)
                | _ -> None)
              l
      in
      let fuzz =
        match Option.bind (member "fuzz" doc) to_assoc with Some a -> a | None -> []
      in
      (rows, fuzz)

(* One line per run, appended: full-fidelity record of what this run
   measured (only the fresh rows, never the merged carry-over), so the
   perf trajectory survives any number of partial runs. *)
let append_history ~fresh =
  let open Obs_json in
  let t = Unix.gettimeofday () in
  let tm = Unix.gmtime t in
  let stamp =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
  in
  let doc =
    Assoc
      [
        ("schema", String "slin-bench-history/v1");
        ("time", String stamp);
        ("quick", Bool quick);
        ( "experiments",
          List
            (List.map
               (fun s -> String s)
               (if chosen = [] then valid_experiments else chosen)) );
        ( "results",
          List
            (List.map
               (fun ((name, metric), value) ->
                 Assoc
                   [ ("name", String name); ("metric", String metric); ("value", Float value) ])
               fresh) );
      ]
  in
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 bench_history_file in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc

(* Merge this run's measurements into [out_file] by (name, metric):
   rows the run re-measured are updated in place, rows it did not touch
   (e.g. `bench checker` leaving the E6 timings alone) are preserved,
   new rows append after them.  A selective run no longer clobbers the
   rest of the report. *)
let write_bench_results () =
  let open Obs_json in
  let fresh = List.rev_map (fun (name, metric, value) -> ((name, metric), value)) !bench_results in
  let old_rows, old_fuzz = read_old_results () in
  let kept =
    List.map
      (fun (k, v) -> (k, Option.value (List.assoc_opt k fresh) ~default:v))
      old_rows
  in
  let added = List.filter (fun (k, _) -> not (List.mem_assoc k kept)) fresh in
  let merged = kept @ added in
  let results =
    List.map
      (fun ((name, metric), value) ->
        Assoc [ ("name", String name); ("metric", String metric); ("value", Float value) ])
      merged
  in
  let fresh_fuzz = List.rev !fuzz_results in
  let kept_fuzz =
    List.map (fun (k, v) -> (k, Option.value (List.assoc_opt k fresh_fuzz) ~default:v)) old_fuzz
  in
  let added_fuzz = List.filter (fun (k, _) -> not (List.mem_assoc k kept_fuzz)) fresh_fuzz in
  let doc =
    Assoc
      [
        ("schema", String "slin-bench/v1");
        ("quick", Bool quick);
        ("results", List results);
        ("fuzz", Assoc (kept_fuzz @ added_fuzz));
      ]
  in
  let oc = open_out out_file in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  append_history ~fresh;
  Format.printf "@.wrote %s (%d results: %d fresh, %d carried over); run appended to %s@."
    out_file (List.length merged) (List.length fresh)
    (List.length merged - List.length fresh)
    bench_history_file

(* ------------------------------------------------------------------ *)
(* E6: micro-benchmarks                                                 *)
(* ------------------------------------------------------------------ *)

let ns_per_op_table : (string * float) list ref = ref []

let bechamel_run ~name (tests : Bechamel.Test.t list) =
  let open Bechamel in
  let open Toolkit in
  let grouped = Test.make_grouped ~name ~fmt:"%s %s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun key v ->
      match Analyze.OLS.estimates v with
      | Some [ est ] ->
          ns_per_op_table := (key, est) :: !ns_per_op_table;
          record_result key "ns_per_op" est
      | _ -> ())
    results

(* Max register single-operation cost on the solo runtime: the Theorem 1
   construction (wide fetch&add + bit fiddling) vs the read/write
   collect-based baseline vs the atomic reference. *)
let bench_max_register () =
  let open Bechamel in
  let n = 4 in
  let module R = (val Solo_runtime.make ~self:0 ~n ()) in
  let module Faa = Faa_max_register.Make (R) in
  let module Rw = Rw_max_register.Make (R) in
  let module A = Atomic_objects.Make (R) in
  let faa = Faa.create () and rw = Rw.create () and am = A.Max_register.create () in
  let i = ref 0 in
  let tests =
    [
      Test.make ~name:"faa write+read"
        (Staged.stage (fun () ->
             incr i;
             Faa.write_max faa (!i mod 16);
             ignore (Faa.read_max faa)));
      Test.make ~name:"rw write+read"
        (Staged.stage (fun () ->
             incr i;
             Rw.write_max rw (!i mod 16);
             ignore (Rw.read_max rw)));
      Test.make ~name:"atomic write+read"
        (Staged.stage (fun () ->
             incr i;
             A.Max_register.write_max am (!i mod 16);
             ignore (A.Max_register.read_max am)));
    ]
  in
  bechamel_run ~name:"maxreg" tests

(* Snapshot: Theorem 2's wide fetch&add snapshot vs the AAD read/write
   snapshot, update+scan pairs, n = 4. *)
let bench_snapshot () =
  let open Bechamel in
  let n = 4 in
  let module R = (val Solo_runtime.make ~self:0 ~n ()) in
  let module Faa = Faa_snapshot.Make (R) in
  let module Aad = Rw_snapshot.Make (R) in
  let faa = Faa.create () and aad = Aad.create () in
  let i = ref 0 in
  let tests =
    [
      Test.make ~name:"faa update+scan"
        (Staged.stage (fun () ->
             incr i;
             Faa.update faa (!i mod 64);
             ignore (Faa.scan faa)));
      Test.make ~name:"aad update+scan"
        (Staged.stage (fun () ->
             incr i;
             Aad.update aad (!i mod 64);
             ignore (Aad.scan aad)));
    ]
  in
  bechamel_run ~name:"snapshot" tests

(* Wide fetch&add raw cost as the stored value grows (the Sec 6 cost). *)
let bench_wide_faa () =
  let open Bechamel in
  let module R = (val Solo_runtime.make ~self:0 ~n:4 ()) in
  let module P = Prim.Make (R) in
  let mk bits =
    let r = P.Faa_wide.make (Bignum.pow2 bits) in
    Test.make
      ~name:(Printf.sprintf "faa @ %d bits" bits)
      (Staged.stage (fun () -> ignore (P.Faa_wide.fetch_and_add r (Bignum.Signed.of_int 1))))
  in
  bechamel_run ~name:"widefaa" [ mk 16; mk 256; mk 4096; mk 65536 ]

(* Fetch&increment: Theorem 9's construction (readable T&S scan) vs the
   atomic reference.  The T&S construction's cost grows linearly in the
   counter value — the lock-free price — so measure bursts on fresh
   instances. *)
let bench_fetch_inc () =
  let open Bechamel in
  let module R = (val Solo_runtime.make ~self:0 ~n:4 ()) in
  let module RT = Readable_ts.Make (R) in
  let module F = Ts_fetch_inc.Make (RT) in
  let module A = Atomic_objects.Make (R) in
  let tests =
    [
      Test.make ~name:"thm9 fi 30 ops"
        (Staged.stage (fun () ->
             let f = F.create () in
             for _ = 1 to 30 do
               ignore (F.fetch_inc f)
             done));
      Test.make ~name:"atomic fi 30 ops"
        (Staged.stage (fun () ->
             let f = A.Fetch_inc.create () in
             for _ = 1 to 30 do
               ignore (A.Fetch_inc.fetch_inc f)
             done));
    ]
  in
  bechamel_run ~name:"fetchinc" tests

(* Simple-type counter (Algorithm 1): cost grows with history length, so
   measure a fixed-size burst on a fresh instance each run. *)
let bench_simple_counter () =
  let open Bechamel in
  let n = 4 in
  let module R = (val Solo_runtime.make ~self:0 ~n ()) in
  let module Snap = Faa_snapshot.Make (R) in
  let module C = Simple_type.Make (Simple_instances.Counter_type) (Snap) in
  let tests =
    [
      Test.make ~name:"alg1 counter 50 ops"
        (Staged.stage (fun () ->
             let c = C.create ~n () in
             for k = 1 to 50 do
               ignore
                 (C.execute c ~self:0
                    (if k mod 4 = 0 then Spec.Counter.Read else Spec.Counter.Add 1))
             done));
    ]
  in
  bechamel_run ~name:"simple" tests

(* Parallel-runtime throughput: real domains hammering one object. *)
let bench_parallel () =
  Format.printf "@.| parallel runtime (4 domains x 20k ops each) | ops/s@.";
  let n = 4 and per = 20_000 in
  let total = float_of_int (n * per) in
  let time_par name f =
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    record_result ("parallel " ^ name) "ops_per_s" (total /. dt);
    Format.printf "| %-44s | %.0f@." name (total /. dt)
  in
  let module R = (val Par_runtime.make ~n ()) in
  let module Faa = Faa_max_register.Make (R) in
  let module A = Atomic_objects.Make (R) in
  let faa = Faa.create () in
  time_par "Thm 1 max register (wide F&A)" (fun () ->
      ignore
        (Par_runtime.run ~n (fun p ->
             for k = 1 to per do
               if k mod 4 = 0 then ignore (Faa.read_max faa)
               else Faa.write_max faa ((k mod 16) + p)
             done)));
  let am = A.Max_register.create () in
  time_par "atomic max register" (fun () ->
      ignore
        (Par_runtime.run ~n (fun p ->
             for k = 1 to per do
               if k mod 4 = 0 then ignore (A.Max_register.read_max am)
               else A.Max_register.write_max am ((k mod 16) + p)
             done)))

let e6 () =
  Format.printf "%s@." (String.make 78 '-');
  Format.printf "E6: micro-benchmarks (solo runtime; ns per operation via bechamel OLS)@.";
  Format.printf "%s@." (String.make 78 '-');
  bench_max_register ();
  bench_snapshot ();
  bench_wide_faa ();
  bench_fetch_inc ();
  bench_simple_counter ();
  List.iter
    (fun (name, ns) -> Format.printf "| %-44s | %10.1f ns/op@." name ns)
    (List.sort compare !ns_per_op_table);
  bench_parallel ()

(* Quick E6: a single manually-timed burst per construction instead of
   the bechamel suite — coarse, but enough to keep BENCH_results.json
   populated on smoke runs (CI's `bench --quick` step). *)
let e6_quick () =
  Format.printf "%s@." (String.make 78 '-');
  Format.printf "E6 (quick): micro-benchmarks, single manual timing per construction@.";
  Format.printf "%s@." (String.make 78 '-');
  let time_burst name iters f =
    f 64 (* warm up *);
    let t0 = Unix.gettimeofday () in
    f iters;
    let dt = Unix.gettimeofday () -. t0 in
    let ns = dt *. 1e9 /. float_of_int iters in
    record_result ("quick " ^ name) "ns_per_op" ns;
    Format.printf "| %-44s | %10.1f ns/op@." name ns
  in
  let n = 4 in
  let module R = (val Solo_runtime.make ~self:0 ~n ()) in
  let module Faa = Faa_max_register.Make (R) in
  let module Rw = Rw_max_register.Make (R) in
  let module A = Atomic_objects.Make (R) in
  let module Snap = Faa_snapshot.Make (R) in
  let faa = Faa.create () and rw = Rw.create () and am = A.Max_register.create () in
  let snap = Snap.create () in
  time_burst "maxreg faa write+read" 20_000 (fun iters ->
      for i = 1 to iters do
        Faa.write_max faa (i mod 16);
        ignore (Faa.read_max faa)
      done);
  time_burst "maxreg rw write+read" 20_000 (fun iters ->
      for i = 1 to iters do
        Rw.write_max rw (i mod 16);
        ignore (Rw.read_max rw)
      done);
  time_burst "maxreg atomic write+read" 20_000 (fun iters ->
      for i = 1 to iters do
        A.Max_register.write_max am (i mod 16);
        ignore (A.Max_register.read_max am)
      done);
  time_burst "snapshot faa update+scan" 5_000 (fun iters ->
      for i = 1 to iters do
        Snap.update snap (i mod 64);
        ignore (Snap.scan snap)
      done);
  (* Bignum width-scaling smoke: the limb loops behind every wide
     fetch&add, at the same widths as the full widefaa suite.  [add v v]
     is the full-length carry chain, [sub (pow2 b) one] the full-length
     borrow chain — together they cover both split hot loops. *)
  List.iter
    (fun bits ->
      let v = Bignum.pow2 bits in
      let iters = max 500 (4_000_000 / bits) in
      time_burst
        (Printf.sprintf "bignum add @ %d bits" bits)
        iters
        (fun iters ->
          for _ = 1 to iters do
            ignore (Bignum.add v v)
          done);
      time_burst
        (Printf.sprintf "bignum sub @ %d bits" bits)
        iters
        (fun iters ->
          for _ = 1 to iters do
            ignore (Bignum.sub v Bignum.one)
          done))
    [ 16; 256; 4096; 65536 ]

(* ------------------------------------------------------------------ *)
(* Fuzz throughput: schedules/sec with and without crash injection      *)
(* ------------------------------------------------------------------ *)

(* How fast the seeded crash fuzzer turns schedules over, and what crash
   injection costs, on a wait-free object (short schedules) and the
   Herlihy-Wing queue (long, spin-heavy schedules).  Campaigns run with
   shrink disabled and on violation-free objects so the figure is pure
   schedule + linearizability-check throughput. *)
let bench_fuzz () =
  Format.printf "@.| fuzz throughput (seeded campaigns)           | schedules/s@.";
  let runs = if quick then 400 else 4_000 in
  let campaign ~name ~crash =
    match Registry.find name with
    | None -> ()
    | Some (Registry.Checkable c) ->
        let (module S) = c.spec in
        let module A = Adversary.Make (S) in
        let prog = Harness.program ~make:c.make ~workload:c.workload in
        let r = A.fuzz ~seed:1 ~runs ~crash ~shrink:false prog in
        let sps = A.fuzz_schedules_per_sec r in
        let label = Printf.sprintf "fuzz %s%s" name (if crash then " +crash" else "") in
        record_result label "schedules_per_s" sps;
        fuzz_results :=
          ( label,
            Obs_json.Assoc
              [
                ("object", Obs_json.String name);
                ("crash_injection", Obs_json.Bool crash);
                ("runs", Obs_json.Int r.A.fz_runs);
                ("crashed_runs", Obs_json.Int r.A.fz_crashed_runs);
                ("total_steps", Obs_json.Int r.A.fz_total_steps);
                ("schedules_per_sec", Obs_json.Float sps);
              ] )
          :: !fuzz_results;
        Format.printf "| %-44s | %.0f@." label sps
  in
  List.iter
    (fun name ->
      campaign ~name ~crash:false;
      campaign ~name ~crash:true)
    [ "counter"; "hw-queue" ]

(* Scheduler A/B under one budget: unique world fingerprints reached by
   the default uniform scheduler vs the coverage-guided one (same master
   seed, same run count, crash injection on, shrink off).  Both rows are
   deterministic — each campaign is a pure function of its arguments —
   so the pair records how much diversity guidance buys, PR over PR. *)
let bench_fuzz_ab () =
  let runs = if quick then 200 else 2_000 in
  Format.printf "@.| fuzz scheduler A/B (%d runs, same seed)     | unique worlds@." runs;
  let campaign ~name ~guided =
    match Registry.find name with
    | None -> ()
    | Some (Registry.Checkable c) ->
        let (module S) = c.spec in
        let module A = Adversary.Make (S) in
        let prog = Harness.program ~make:c.make ~workload:c.workload in
        let cov = Coverage.create () in
        let _ = A.fuzz ~seed:1 ~runs ~crash:true ~shrink:false ~coverage:cov ~guided prog in
        let st = Coverage.stats cov in
        let label =
          Printf.sprintf "fuzz %s %s" name (if guided then "guided" else "uniform")
        in
        record_result label "unique_worlds" (float_of_int st.Coverage.unique);
        Format.printf "| %-44s | %d unique of %d observed@." label st.Coverage.unique
          st.Coverage.observations
  in
  campaign ~name:"hw-queue" ~guided:false;
  campaign ~name:"hw-queue" ~guided:true

(* ------------------------------------------------------------------ *)
(* Checker engine throughput: nodes/sec on the E2 refutations          *)
(* ------------------------------------------------------------------ *)

(* The engine's headline number: node throughput of the strong-
   linearizability game on the two big E2 refutations.  Node counts are
   identical at every [jobs] (the parallel merge is deterministic), so
   nodes/sec rows are directly comparable; CI's perf-smoke step compares
   a fresh jobs=1 run of the hw-queue row against the committed value. *)
let bench_checker () =
  Format.printf "@.| checker engine (SL game, E2 refutations)     | nodes/s@.";
  let nps_tbl = Hashtbl.create 8 in
  let nodes_tbl = Hashtbl.create 8 in
  let run ?(reduce = false) ?preempt_bound ~name ~jobs () =
    match Registry.find name with
    | None -> ()
    | Some (Registry.Checkable c) ->
        let (module S) = c.spec in
        let module L = Lincheck.Make (S) in
        let prog = Harness.program ~make:c.make ~workload:c.workload in
        let _, s =
          L.check_strong_stats ?max_depth:c.default_depth ~jobs ~reduce ?preempt_bound prog
        in
        let nps = Lincheck.nodes_per_sec s in
        let label =
          Printf.sprintf "checker %s%s%s -j %d" name
            (if reduce then " --reduce" else "")
            (match preempt_bound with
            | Some b -> Printf.sprintf " --preempt-bound %d" b
            | None -> "")
            jobs
        in
        Hashtbl.replace nps_tbl (name, jobs, reduce) nps;
        Hashtbl.replace nodes_tbl (name, jobs, reduce) s.Lincheck.nodes;
        record_result label "nodes_per_sec" nps;
        (* Node counts are deterministic (identical at every [jobs]), so
           the jobs=1 rows gate Lower_better in stats diff: on a fixed
           benchmark, more nodes for the same verdict is precisely the
           regression the reduction exists to prevent. *)
        if jobs = 1 then record_result label "nodes_total" (float_of_int s.Lincheck.nodes);
        Format.printf "| %-44s | %.0f (%d nodes)@." label nps s.Lincheck.nodes
  in
  (* Scaling curve, not just a parallel spot-check: -j 1/2/4/8 rows let
     stats diff catch a regression anywhere on the curve. *)
  let jobs_list = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  List.iter
    (fun jobs ->
      run ~name:"hw-queue" ~jobs ();
      run ~name:"agm-stack" ~jobs ())
    jobs_list;
  (* The partial-order-reduced runs: same verdicts and witnesses (the
     engine-equivalence suite pins that), a fraction of the nodes. *)
  List.iter
    (fun jobs ->
      run ~reduce:true ~name:"hw-queue" ~jobs ();
      run ~reduce:true ~name:"agm-stack" ~jobs ())
    [ 1; 4 ];
  (* Derived scaling ratio: unlike the absolute nodes/s rows (machine-
     dependent, Neutral in stats diff), speedup_j4_over_j1 is scale-free
     and gated Higher_better — it is the number the work-stealing
     scheduler exists to keep up.  On a single-core host both runs
     collapse to the sequential engine and the ratio honestly reads
     ~1.0. *)
  List.iter
    (fun name ->
      match
        (Hashtbl.find_opt nps_tbl (name, 1, false), Hashtbl.find_opt nps_tbl (name, 4, false))
      with
      | Some n1, Some n4 when n1 > 0. ->
          let sp = n4 /. n1 in
          let label = Printf.sprintf "checker %s" name in
          record_result label "speedup_j4_over_j1" sp;
          Format.printf "| %-44s | %.2fx (j4 over j1)@." (label ^ " scaling") sp
      | _ -> ())
    [ "hw-queue"; "agm-stack" ];
  (* reduction_ratio: unreduced over reduced node count at jobs=1.  Both
     counts are exact and deterministic, so the ratio is scale-free and
     gated Higher_better — down means the sleep-set memo stopped
     pruning. *)
  List.iter
    (fun name ->
      match
        ( Hashtbl.find_opt nodes_tbl (name, 1, false),
          Hashtbl.find_opt nodes_tbl (name, 1, true) )
      with
      | Some full, Some red when red > 0 ->
          let ratio = float_of_int full /. float_of_int red in
          let label = Printf.sprintf "checker %s" name in
          record_result label "reduction_ratio" ratio;
          Format.printf "| %-44s | %.2fx (%d -> %d nodes)@." (label ^ " reduction") ratio
            full red
      | _ -> ())
    [ "hw-queue"; "agm-stack" ];
  (* A previously-infeasible row: hw-queue-deep's refutation needs
     ~2.46M nodes unreduced — past the checker's default 2M budget —
     but the reduced, preemption-bounded game lands it in a few
     thousand.  Recorded unconditionally (it is cheap by construction);
     the node count doubles as a determinism canary. *)
  run ~reduce:true ~preempt_bound:2 ~name:"hw-queue-deep" ~jobs:1 ()

(* ------------------------------------------------------------------ *)
(* Serve throughput: the canonical batch through the supervised pool    *)
(* ------------------------------------------------------------------ *)

(* End-to-end dispatch cost of `slin serve --batch` on the canonical
   quick jobs: queueing, memo/coalesce bookkeeping, worker domains and
   response assembly included.  The request counters ride along as
   neutral rows so stats diff flags a changed batch shape. *)
let bench_serve () =
  Format.printf "@.| serve batch (canonical quick jobs)           | requests/s@.";
  let lines = Experiments.serve_jobs ~quick:true () in
  let t0 = Unix.gettimeofday () in
  let t = Serve.create Serve.default_config in
  let rs = Serve.run_batch t lines in
  let dt = Unix.gettimeofday () -. t0 in
  let rps = float_of_int (List.length rs) /. dt in
  record_result "serve batch" "requests_per_s" rps;
  let rep = Serve.report t in
  List.iter
    (fun k ->
      match Obs_json.member k rep with
      | Some (Obs_json.Int n) -> record_result "serve batch" k (float_of_int n)
      | _ -> ())
    [ "requests"; "done"; "inconclusive"; "rejected"; "coalesced" ];
  Format.printf "| %-44s | %.1f@."
    (Printf.sprintf "serve batch (%d requests)" (List.length rs))
    rps

let () =
  if selected "e1" then Experiments.e1 ();
  if selected "e2" then Experiments.e2 ~quick ();
  if selected "e3" then Experiments.e3 ();
  if selected "e4" then Experiments.e4 ();
  if selected "e5" then Experiments.e5 ();
  if selected "e7" then Experiments.e7 ();
  if selected "e8" then Experiments.e8 ();
  if selected "e6" then if quick then e6_quick () else e6 ();
  if selected "fuzz" then begin
    bench_fuzz ();
    bench_fuzz_ab ()
  end;
  if selected "checker" then bench_checker ();
  if selected "serve" then bench_serve ();
  write_bench_results ();
  Format.printf "@.All selected experiments completed.@."
