(* slin — command-line front end.

   Subcommands:
     slin experiment [e1|e2|e3|e4|e5] [--quick]   regenerate experiment tables
     slin check OBJECT [--max-nodes N] [--max-depth D]
                      [--stats] [--json-out FILE] [--trace-out FILE]
                                                  strong-linearizability game
     slin agree OBJECT [--trials N] [--crash-prob P] [--seed S]
                                                  run Algorithm B (Lemma 12)
     slin trace OBJECT [--seed S] [--trace-out FILE]
                                                  print one random execution

   OBJECT names: faa-max, faa-snapshot, counter, readable-ts,
   multishot-ts, fetch-inc, set, hw-queue, agm-stack, rw-max,
   mwmr-register, cas-queue, set-empty-race, set-repaired (check/trace); queue, stack, ooo-queue,
   hw-queue (agree). *)

open Cmdliner

(* --- checkable objects ------------------------------------------------ *)

type checkable =
  | Checkable : {
      spec_name : string;
      make : (module Runtime_intf.S) -> 'op -> 'resp;
      workload : 'op list array;
      spec : (module Spec.S with type op = 'op and type resp = 'resp);
      default_depth : int option;
    }
      -> checkable

let checkables : (string * checkable) list =
  [
    ( "faa-max",
      Checkable
        {
          spec_name = "max register from fetch&add (Thm 1)";
          make = Executors.faa_max_register;
          workload =
            [|
              [ Spec.Max_register.WriteMax 1; Spec.Max_register.ReadMax ];
              [ Spec.Max_register.WriteMax 2 ];
              [ Spec.Max_register.ReadMax ];
            |];
          spec = (module Spec.Max_register);
          default_depth = None;
        } );
    ( "faa-snapshot",
      Checkable
        {
          spec_name = "atomic snapshot from fetch&add (Thm 2)";
          make = Executors.faa_snapshot3;
          workload =
            [|
              [ Executors.Snap3.Update (0, 1); Executors.Snap3.Update (0, 2) ];
              [ Executors.Snap3.Update (1, 3) ];
              [ Executors.Snap3.Scan; Executors.Snap3.Scan ];
            |];
          spec = (module Executors.Snap3);
          default_depth = None;
        } );
    ( "counter",
      Checkable
        {
          spec_name = "simple-type counter over F&A snapshot (Thm 4)";
          make = Executors.simple_counter;
          workload =
            [|
              [ Spec.Counter.Add 1 ];
              [ Spec.Counter.Add 2 ];
              [ Spec.Counter.Read; Spec.Counter.Read ];
            |];
          spec = (module Spec.Counter);
          default_depth = None;
        } );
    ( "readable-ts",
      Checkable
        {
          spec_name = "readable test&set from test&set (Thm 5)";
          make = Executors.readable_ts;
          workload =
            [|
              [ Spec.Test_and_set.TestAndSet ];
              [ Spec.Test_and_set.TestAndSet ];
              [ Spec.Test_and_set.Read; Spec.Test_and_set.Read ];
            |];
          spec = (module Spec.Test_and_set);
          default_depth = None;
        } );
    ( "multishot-ts",
      Checkable
        {
          spec_name = "multi-shot test&set (Thm 6)";
          make = Executors.multishot_ts_atomic;
          workload =
            [|
              [ Spec.Multishot_test_and_set.TestAndSet; Spec.Multishot_test_and_set.Reset ];
              [ Spec.Multishot_test_and_set.TestAndSet ];
              [ Spec.Multishot_test_and_set.Read ];
            |];
          spec = (module Spec.Multishot_test_and_set);
          default_depth = None;
        } );
    ( "fetch-inc",
      Checkable
        {
          spec_name = "fetch&increment from test&set (Thm 9)";
          make = Executors.ts_fetch_inc;
          workload =
            [|
              [ Spec.Fetch_and_inc.FetchInc ];
              [ Spec.Fetch_and_inc.FetchInc ];
              [ Spec.Fetch_and_inc.Read ];
            |];
          spec = (module Spec.Fetch_and_inc);
          default_depth = None;
        } );
    ( "set",
      Checkable
        {
          spec_name = "set from test&set, full stack (Thm 10)";
          make = Executors.ts_set_full;
          workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Take ] |];
          spec = (module Spec.Set_obj);
          default_depth = None;
        } );
    ( "hw-queue",
      Checkable
        {
          spec_name = "Herlihy-Wing queue (baseline, not SL)";
          make = Executors.hw_queue;
          workload =
            [|
              [ Spec.Queue_spec.Enq 1 ];
              [ Spec.Queue_spec.Enq 2 ];
              [ Spec.Queue_spec.Deq ];
              [ Spec.Queue_spec.Deq ];
            |];
          spec = (module Spec.Queue_spec);
          default_depth = Some 22;
        } );
    ( "agm-stack",
      Checkable
        {
          spec_name = "AGM-style stack (baseline, not SL)";
          make = Executors.agm_stack;
          workload =
            [|
              [ Spec.Stack_spec.Push 1 ];
              [ Spec.Stack_spec.Push 2 ];
              [ Spec.Stack_spec.Pop ];
              [ Spec.Stack_spec.Pop ];
            |];
          spec = (module Spec.Stack_spec);
          default_depth = Some 24;
        } );
    ( "rw-max",
      Checkable
        {
          spec_name = "read/write max register (baseline, not SL)";
          make = Executors.rw_max_register;
          workload =
            [|
              [ Spec.Max_register.WriteMax 1 ];
              [ Spec.Max_register.WriteMax 2 ];
              [ Spec.Max_register.ReadMax; Spec.Max_register.ReadMax ];
            |];
          spec = (module Spec.Max_register);
          default_depth = None;
        } );
    ( "mwmr-register",
      Checkable
        {
          spec_name = "MWMR register from SWMR (baseline, not SL)";
          make = Executors.mwmr_register;
          workload =
            [|
              [ Spec.Register.Write 1 ];
              [ Spec.Register.Write 2 ];
              [ Spec.Register.Read; Spec.Register.Read ];
            |];
          spec = (module Spec.Register);
          default_depth = None;
        } );
    ( "set-empty-race",
      Checkable
        {
          spec_name = "Alg 2 set, EMPTY race (the Thm 10 finding)";
          make = Executors.ts_set_atomic_fi;
          workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Put 2 ]; [ Spec.Set_obj.Take ] |];
          spec = (module Spec.Set_obj);
          default_depth = None;
        } );
    ( "set-repaired",
      Checkable
        {
          spec_name = "repaired set: conservative EMPTY (finding follow-up)";
          make =
            (fun (module R : Runtime_intf.S) ->
              let module A = Atomic_objects.Make (R) in
              let module S = Ts_set_conservative.Make (R) (A.Fetch_inc) in
              let t = S.create ~name:"cset" () in
              fun (op : Spec.Set_obj.op) : Spec.Set_obj.resp ->
                match op with
                | Spec.Set_obj.Put x ->
                    S.put t x;
                    Spec.Set_obj.Ok_
                | Spec.Set_obj.Take -> (
                    match S.take t with
                    | None -> Spec.Set_obj.Empty
                    | Some x -> Spec.Set_obj.Item x));
          workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Put 2 ]; [ Spec.Set_obj.Take ] |];
          spec = (module Spec.Set_obj);
          default_depth = Some 18;
        } );
    ( "cas-queue",
      Checkable
        {
          spec_name = "CAS universal queue (baseline, SL)";
          make = Executors.cas_queue;
          workload =
            [|
              [ Spec.Queue_spec.Enq 1 ];
              [ Spec.Queue_spec.Enq 2 ];
              [ Spec.Queue_spec.Deq; Spec.Queue_spec.Deq ];
            |];
          spec = (module Spec.Queue_spec);
          default_depth = Some 30;
        } );
  ]

let object_names = List.map fst checkables

let run_check name max_nodes max_depth stats json_out trace_out =
  match List.assoc_opt name checkables with
  | None ->
      Format.eprintf "unknown object %S; choose from: %s@." name (String.concat ", " object_names);
      1
  | Some (Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let depth = match max_depth with Some _ -> max_depth | None -> c.default_depth in
      let observing = stats || json_out <> None || trace_out <> None in
      if observing then begin
        Sim.Metrics.reset ();
        Sim.Metrics.enabled := true
      end;
      Format.printf "object: %s@." c.spec_name;
      (match Harness.find_non_linearizable ~check:L.is_linearizable ~runs:150 prog with
      | None -> Format.printf "linearizability: ok on 150 random schedules@."
      | Some seed -> Format.printf "linearizability: VIOLATED at seed %d@." seed);
      if not observing then begin
        (* No observability requested: exactly the historical path and
           output, byte for byte. *)
        let v = L.check_strong ~max_nodes ?max_depth:depth prog in
        Format.printf "strong linearizability: %a@." L.pp_verdict v;
        0
      end
      else begin
        (* Open every output up front: a bad path must fail before the
           (possibly long) exploration, not after it. *)
        match
          let sink = Option.map (fun path -> (path, Obs_jsonl.create path)) json_out in
          Option.iter (fun path -> close_out (open_out path)) trace_out;
          sink
        with
        | exception Sys_error msg ->
            Format.eprintf "cannot open output file: %s@." msg;
            1
        | json_sink ->
        let tracer = match trace_out with Some _ -> Some (Obs_trace.create ()) | None -> None in
        (* Heartbeat for long checks: nodes so far and current rate, on
           stderr so stdout stays machine-clean. *)
        let on_progress ~nodes ~elapsed_ns =
          let rate =
            if elapsed_ns <= 0 then 0. else float_of_int nodes *. 1e9 /. float_of_int elapsed_ns
          in
          Printf.eprintf "heartbeat: %d nodes explored, %.0f nodes/s\n%!" nodes rate
        in
        let on_progress = if stats then Some on_progress else None in
        let v, st =
          L.check_strong_stats ~max_nodes ?max_depth:depth ?on_progress ~progress_every:25_000
            ?tracer prog
        in
        Format.printf "strong linearizability: %a@." L.pp_verdict v;
        let sim_metrics = Sim.Metrics.snapshot () in
        if stats then begin
          Format.printf "exploration stats:@.  @[<v>%a@]@." Lincheck.pp_stats st;
          Format.printf "sim metrics:@.";
          List.iter (fun (k, n) -> Format.printf "  %-28s %d@." k n) sim_metrics
        end;
        (match json_sink with
        | None -> ()
        | Some (path, sink) ->
            Obs_jsonl.emit sink "check_run"
              [
                ("object", Obs_json.String name);
                ("spec", Obs_json.String c.spec_name);
                ("procs", Obs_json.Int (Array.length c.workload));
                ("max_nodes", Obs_json.Int max_nodes);
                ( "max_depth",
                  match depth with Some d -> Obs_json.Int d | None -> Obs_json.Null );
              ];
            Obs_jsonl.emit sink "check_stats" (Lincheck.stats_fields st);
            Obs_jsonl.emit sink "sim_metrics"
              (List.map (fun (k, n) -> (k, Obs_json.Int n)) sim_metrics);
            Obs_jsonl.emit sink "check_verdict" (L.verdict_fields v);
            Obs_jsonl.close sink;
            Format.printf "stats JSONL written to %s@." path);
        (match (trace_out, tracer) with
        | Some path, Some tr ->
            Obs_trace.process_name tr (Printf.sprintf "slin check %s" name);
            Obs_trace.write tr path;
            Format.printf "Chrome trace (%d events) written to %s@." (Obs_trace.size tr) path
        | _ -> ());
        0
      end

let run_trace name seed trace_out =
  match List.assoc_opt name checkables with
  | None ->
      Format.eprintf "unknown object %S; choose from: %s@." name (String.concat ", " object_names);
      1
  | Some (Checkable c) ->
      let (module S) = c.spec in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let w = Sim.run_random ~seed prog in
      Format.printf "object: %s (seed %d)@.%a" c.spec_name seed (Trace.pp S.pp_op S.pp_resp)
        (Sim.trace w);
      (match trace_out with
      | None -> 0
      | Some path -> (
          let tr = Obs_trace.of_sim_trace ~pp_op:S.pp_op ~pp_resp:S.pp_resp (Sim.trace w) in
          match Obs_trace.write tr path with
          | () ->
              Format.printf "Chrome trace (%d events) written to %s — open at ui.perfetto.dev@."
                (Obs_trace.size tr) path;
              0
          | exception Sys_error msg ->
              Format.eprintf "cannot open output file: %s@." msg;
              1))

(* --- agreement objects ------------------------------------------------ *)

let agree_objects = [ "queue"; "stack"; "ooo-queue"; "hw-queue" ]

let run_agree name trials crash_prob seed =
  let inputs3 = [| 100; 200; 300 |] in
  let stats =
    match name with
    | "queue" ->
        Some
          (Agreement.run_many ~make:K_ordering.atomic_queue ~ordering:K_ordering.queue_witness
             ~inputs:inputs3 ~trials ~crash_prob ~seed ())
    | "stack" ->
        Some
          (Agreement.run_many ~make:K_ordering.atomic_stack ~ordering:K_ordering.stack_witness
             ~inputs:inputs3 ~trials ~crash_prob ~seed ())
    | "ooo-queue" ->
        Some
          (Agreement.run_many
             ~make:(K_ordering.atomic_ooo_queue ~k:2)
             ~ordering:(K_ordering.ooo_queue_witness ~k:2)
             ~inputs:[| 1; 2; 3; 4; 5 |] ~trials ~crash_prob ~seed ())
    | "hw-queue" ->
        Some
          (Agreement.run_many
             ~make:(K_ordering.hw_queue ~capacity:3)
             ~ordering:K_ordering.queue_witness ~inputs:inputs3 ~trials ~crash_prob ~seed ())
    | _ -> None
  in
  match stats with
  | None ->
      Format.eprintf "unknown object %S; choose from: %s@." name (String.concat ", " agree_objects);
      1
  | Some s ->
      Format.printf "%s: %a@." name Agreement.pp_stats s;
      0

(* --- cmdliner plumbing ------------------------------------------------ *)

let experiment_cmd =
  let which = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT") in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Skip the slow refutations.") in
  let run which quick =
    let sel name = which = [] || List.mem name which in
    if sel "e1" then Experiments.e1 ();
    if sel "e2" then Experiments.e2 ~quick ();
    if sel "e3" then Experiments.e3 ();
    if sel "e4" then Experiments.e4 ();
    if sel "e5" then Experiments.e5 ();
    if sel "e7" then Experiments.e7 ();
    0
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate experiment tables E1-E5 (see EXPERIMENTS.md).")
    Term.(const run $ which $ quick)

let check_cmd =
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let max_nodes =
    Arg.(value & opt int 2_000_000 & info [ "max-nodes" ] ~doc:"Node budget for the game.")
  in
  let max_depth =
    Arg.(value & opt (some int) None & info [ "max-depth" ] ~doc:"Truncate the execution tree.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print exploration statistics (nodes, nodes/s, frontier depth, killed \
             linearizations) and aggregated simulator metrics; emit a progress heartbeat on \
             stderr during long checks.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE" ~doc:"Write stats and verdict as JSON Lines to $(docv).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event file of the exploration to $(docv) (open at \
             ui.perfetto.dev).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the linearizability checks and the strong-linearizability game on OBJECT.")
    Term.(const run_check $ obj $ max_nodes $ max_depth $ stats $ json_out $ trace_out)

let agree_cmd =
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let trials = Arg.(value & opt int 1000 & info [ "trials" ] ~doc:"Random schedules to run.") in
  let crash_prob =
    Arg.(value & opt float 0.0 & info [ "crash-prob" ] ~doc:"Probability of crashing a process.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "agree" ~doc:"Run Algorithm B (Lemma 12) k-set agreement on OBJECT.")
    Term.(const run_agree $ obj $ trials $ crash_prob $ seed)

let trace_cmd =
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the execution as a Chrome trace-event file to $(docv) (open at \
             ui.perfetto.dev).")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print one random execution trace of OBJECT's standard workload.")
    Term.(const run_trace $ obj $ seed $ trace_out)

let () =
  let doc = "strongly-linearizable objects from consensus-number-2 primitives" in
  let info = Cmd.info "slin" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ experiment_cmd; check_cmd; agree_cmd; trace_cmd ]))
