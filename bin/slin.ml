(* slin — command-line front end.

   Subcommands:
     slin experiment [e1|..|e5|e7|e8] [--quick] [--witness-dir DIR]
                                                  regenerate experiment tables
     slin check OBJECT [--max-nodes N] [--max-depth D]
                      [--budget-nodes N] [--budget-ms MS] [--budget-mb MB]
                      [--stats] [--json-out FILE] [--trace-out FILE]
                      [--witness-out FILE] [--no-shrink]
                      [--checkpoint-out F.json] [--resume F.json]
                                                  strong-linearizability game
     slin explain WITNESS.json [--trace-out BASE]
                                                  replay + render a witness
     slin fuzz OBJECT [--seed S] [--runs N] [--no-crash] [--max-steps N]
                      [--no-shrink] [--witness-out FILE]
                                                  seeded crash fuzzing
     slin progress OBJECT [--max-nodes N] [--max-depth D] [--witness-out FILE]
                                                  wait-freedom bound + lasso search
     slin agree OBJECT [--trials N] [--crash-prob P] [--seed S]
                                                  run Algorithm B (Lemma 12)
     slin trace OBJECT [--seed S] [--trace-out FILE]
                                                  print one random execution
     slin profile OBJECT [--jobs N] [--profile-out F.json] [--trace-out F.json]
                                                  per-domain engine telemetry
     slin coverage OBJECT [--jobs N] [--coverage-out F.json]
                                                  exploration-coverage report
     slin serve [--batch JOBS.jsonl | --socket PATH] [--workers N]
                      [--deterministic] [--report F.json] ...
                                                  supervised checking service
     slin stats diff OLD.json NEW.json [--fail-on-regress PCT]
                                                  compare two perf reports

   OBJECT names come from the shared registry (Registry.names): faa-max,
   faa-snapshot, counter, readable-ts, multishot-ts, fetch-inc, set,
   hw-queue, agm-stack, rw-max, mwmr-register, cas-queue, set-empty-race,
   set-repaired, tournament-ts, aww-multishot-fi (check/fuzz/progress/
   trace/explain); queue, stack, ooo-queue, hw-queue (agree).

   Exit codes (check, explain, fuzz, progress): 0 = verified / witness
   reproduced / no violation found, 1 = refuted / witness did not
   reproduce / violation found, 2 = usage error, unknown object,
   inconclusive (out of budget or interrupted), or internal error.

   One-shot check/fuzz handle SIGINT/SIGTERM cooperatively: the engine
   stops at the next node (or completed fuzz run), flushes the final
   checkpoint when --checkpoint-out is active, reports partial stats,
   and exits 2 through the normal inconclusive path. *)

open Cmdliner

let unknown_object name =
  Format.eprintf "unknown object %S; choose from: %s@." name
    (String.concat ", " Registry.names)

(* --- profiling helpers ------------------------------------------------ *)

(* Reduction fields are emitted only when the mode is on, so reports
   from unreduced runs — including every committed baseline — keep their
   historical byte shape. *)
let profile_meta ?steal_grain ?(reduce = false) ?preempt_bound ~command ~objname ~jobs () =
  [
    ("command", Obs_json.String command);
    ("object", Obs_json.String objname);
    ("jobs", Obs_json.Int jobs);
  ]
  @ (match steal_grain with Some g -> [ ("steal_grain", Obs_json.Int g) ] | None -> [])
  @ (if reduce then [ ("reduce", Obs_json.Bool true) ] else [])
  @
  match preempt_bound with
  | Some b -> [ ("preempt_bound", Obs_json.Int b) ]
  | None -> []

(* Finish the profile and write its slin-profile/v1 report; false on an
   unwritable path (the caller decides whether that poisons the exit
   code). *)
let write_profile prof ~meta path =
  Prof.finish prof;
  let json = Prof.to_json prof ~meta in
  match
    Obs.ensure_parent_dir path;
    Out_channel.with_open_text path (fun oc ->
        output_string oc (Obs_json.to_string json);
        output_char oc '\n')
  with
  | () ->
      Format.printf "profile report (slin-profile/v1) written to %s@." path;
      true
  | exception Sys_error msg ->
      Format.eprintf "cannot open output file: %s@." msg;
      false

(* Same shape for the slin-coverage/v1 report. *)
let write_coverage cov ~meta path =
  let json = Coverage.to_json cov ~meta in
  match
    Obs.ensure_parent_dir path;
    Out_channel.with_open_text path (fun oc ->
        output_string oc (Obs_json.to_string json);
        output_char oc '\n')
  with
  | () ->
      Format.printf "coverage report (slin-coverage/v1) written to %s@." path;
      true
  | exception Sys_error msg ->
      Format.eprintf "cannot open output file: %s@." msg;
      false

(* --- graceful interruption -------------------------------------------- *)

(* The SIGINT/SIGTERM handlers only set a flag; the engine polls it at
   every fresh node (check) or between runs (fuzz), so the command ends
   through its normal inconclusive path — verdict line, partial stats,
   final checkpoint, exit 2 — instead of dying mid-write. *)
let interrupted = Atomic.make false

let install_signal_handlers () =
  let handle = Sys.Signal_handle (fun _ -> Atomic.set interrupted true) in
  (try Sys.set_signal Sys.sigint handle with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm handle with Invalid_argument _ | Sys_error _ -> ()

let signal_interrupt () = Atomic.get interrupted

(* --- checkpoint files ------------------------------------------------- *)

(* Atomic write (tmp + rename) so a signal or crash mid-emit can never
   leave a torn checkpoint behind — the previous complete one survives.
   Serialized because the column workers emit concurrently. *)
let checkpoint_writer path =
  let lock = Mutex.create () in
  fun ck ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match
          Obs.ensure_parent_dir path;
          let tmp = path ^ ".tmp" in
          Out_channel.with_open_text tmp (fun oc ->
              output_string oc (Obs_json.to_string (Lincheck.checkpoint_to_json ck));
              output_char oc '\n');
          Sys.rename tmp path
        with
        | () -> ()
        | exception Sys_error msg -> Printf.eprintf "cannot write checkpoint: %s\n%!" msg)

let read_checkpoint ~cp_config path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Obs_json.of_string (String.trim contents) with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j -> (
          match Lincheck.checkpoint_of_json j with
          | Error e -> Error (Printf.sprintf "%s: %s" path e)
          | Ok ck ->
              if ck.Lincheck.ck_config <> cp_config then
                Error
                  (Printf.sprintf
                     "%s: checkpoint was taken under configuration %S but this run is %S \
                      (object, depth bound and engine must match)"
                     path ck.Lincheck.ck_config cp_config)
              else Ok ck))

(* --- check ------------------------------------------------------------ *)

let run_check name max_nodes max_depth budget_nodes budget_ms budget_mb stats json_out
    trace_out witness_out no_shrink jobs steal_grain reduce reduce_check preempt_bound
    checkpoint_stride profile_out coverage_out checkpoint_out resume =
  match Registry.find name with
  | None ->
      unknown_object name;
      2
  | Some (Registry.Checkable c) -> (
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      (* --budget-nodes is the graceful-degradation spelling of the node
         cap: same game, but the caller is asking for a partial answer
         rather than expecting the budget to suffice. *)
      let max_nodes = Option.value budget_nodes ~default:max_nodes in
      let depth = match max_depth with Some _ -> max_depth | None -> c.default_depth in
      install_signal_handlers ();
      let cp_config =
        Serve.config_fingerprint ~reduce:(reduce || reduce_check) ?preempt_bound
          ~object_name:name ~max_depth:depth ()
      in
      let resume_ck =
        match resume with
        | None -> Ok None
        | Some path -> Result.map Option.some (read_checkpoint ~cp_config path)
      in
      match resume_ck with
      | Error msg ->
          Format.eprintf "cannot resume: %s@." msg;
          2
      | Ok resume_ck ->
      let checkpointing =
        match (checkpoint_out, resume_ck) with
        | None, None -> None
        | _ ->
            let cp_emit =
              match checkpoint_out with
              | Some path -> checkpoint_writer path
              | None -> fun _ -> ()
            in
            Some { Lincheck.cp_config; cp_resume = resume_ck; cp_emit }
      in
      (* Resume chatter goes to stderr so stdout stays byte-comparable
         with an uninterrupted golden run. *)
      (match resume_ck with
      | Some ck ->
          Format.eprintf "resuming from checkpoint: %d columns done (fingerprint %s)@."
            (List.length ck.Lincheck.ck_columns)
            (Lincheck.checkpoint_fingerprint ck)
      | None -> ());
      let note_interrupt () =
        Format.eprintf "interrupted by signal%s@."
          (match checkpoint_out with
          | Some p -> "; checkpoint flushed to " ^ p
          | None -> "")
      in
      let exit_of_verdict = function
        | L.Strongly_linearizable _ -> 0
        | L.Not_linearizable _ | L.Not_strongly_linearizable _ -> 1
        | L.Out_of_budget _ -> 2
      in
      (* Witness emission shares the verdict path of both modes below.
         Extraction re-runs the game with the same budget, so it succeeds
         whenever the check refuted. *)
      let emit_witness v =
        match witness_out with
        | None -> ()
        | Some path -> (
            let refutation =
              match v with
              | L.Not_linearizable { schedule } ->
                  Some (Witness.Not_linearizable, schedule, None)
              | L.Not_strongly_linearizable { witness; nodes } ->
                  Some (Witness.Not_strongly_linearizable, witness, Some nodes)
              | _ -> None
            in
            match refutation with
            | None ->
                Format.eprintf "no witness written to %s: the verdict is not a refutation@." path
            | Some (kind, schedule, nodes) -> (
                Obs.ensure_parent_dir path;
                let module W = Witness.Make (S) in
                match W.extract ~max_nodes ?max_depth:depth prog ~kind ~schedule with
                | None -> Format.eprintf "witness extraction failed within the node budget@."
                | Some shape ->
                    let original_len = Witness.size shape in
                    let shape = if no_shrink then shape else W.shrink prog shape in
                    let json =
                      W.to_json prog ~object_name:name ~spec_name:c.spec_name ~max_nodes
                        ~max_depth:depth ~nodes ~original_len shape
                    in
                    (match
                       Out_channel.with_open_text path (fun oc ->
                           output_string oc (Obs_json.to_string json);
                           output_char oc '\n')
                     with
                    | () ->
                        Format.printf "witness (%s, %d steps%s) written to %s@."
                          (Witness.kind_tag kind) (Witness.size shape)
                          (if no_shrink then "" else Printf.sprintf ", shrunk from %d" original_len)
                          path
                    | exception Sys_error msg ->
                        Format.eprintf "cannot open output file: %s@." msg)))
      in
      (* Wall-clock and heap budgets only exist on the stats path; a
         budget request therefore routes there (same verdict line, plus
         whatever observability was asked for). *)
      let observing =
        stats || json_out <> None || trace_out <> None || budget_ms <> None
        || budget_mb <> None || profile_out <> None || coverage_out <> None
      in
      if observing then begin
        Sim.Metrics.reset ();
        Sim.Metrics.enabled := true
      end;
      Format.printf "object: %s@." c.spec_name;
      (match Harness.find_non_linearizable ~check:L.is_linearizable ~runs:150 prog with
      | None -> Format.printf "linearizability: ok on 150 random schedules@."
      | Some seed -> Format.printf "linearizability: VIOLATED at seed %d@." seed);
      if not observing then begin
        (* No observability requested: exactly the historical path and
           output, byte for byte (witness emission only adds output when
           its flag is on; --jobs/--checkpoint-stride/--checkpoint-out/
           --resume change how the tree is explored or persisted, never
           the verdict or its rendering; interrupt/resume notes go to
           stderr). *)
        let v, st =
          L.check_strong_stats ~max_nodes ?max_depth:depth ~jobs ~steal_grain ~reduce
            ~reduce_check ?preempt_bound ~checkpoint_stride ~interrupt:signal_interrupt
            ?checkpointing prog
        in
        Format.printf "strong linearizability: %a@." L.pp_verdict v;
        (match v with
        | L.Out_of_budget { reason = Lincheck.Budget_interrupt; _ } ->
            note_interrupt ();
            Format.eprintf "partial stats:@.  @[<v>%a@]@." Lincheck.pp_stats st
        | _ -> ());
        emit_witness v;
        exit_of_verdict v
      end
      else begin
        (* Open every output up front: a bad path must fail before the
           (possibly long) exploration, not after it. *)
        match
          let sink =
            Option.map
              (fun path ->
                Obs.ensure_parent_dir path;
                (path, Obs_jsonl.create path))
              json_out
          in
          let touch path =
            Obs.ensure_parent_dir path;
            close_out (open_out path)
          in
          Option.iter touch trace_out;
          Option.iter touch profile_out;
          Option.iter touch coverage_out;
          sink
        with
        | exception Sys_error msg ->
            Format.eprintf "cannot open output file: %s@." msg;
            2
        | json_sink ->
        let tracer = match trace_out with Some _ -> Some (Obs_trace.create ()) | None -> None in
        (* Heartbeat for long checks: nodes so far and current rate, on
           stderr so stdout stays machine-clean. *)
        let on_progress ~nodes ~elapsed_ns =
          let rate =
            if elapsed_ns <= 0 then 0. else float_of_int nodes *. 1e9 /. float_of_int elapsed_ns
          in
          Printf.eprintf "heartbeat: %d nodes explored, %.0f nodes/s\n%!" nodes rate
        in
        let on_progress = if stats then Some on_progress else None in
        let profiler = Option.map (fun _ -> Prof.create ()) profile_out in
        let coverage = Option.map (fun _ -> Coverage.create ()) coverage_out in
        let v, st =
          L.check_strong_stats ~max_nodes ?max_depth:depth ?budget_ms
            ?budget_heap_mb:budget_mb ?on_progress ~progress_every:25_000 ?tracer ?profiler
            ?coverage ~jobs ~steal_grain ~reduce ~reduce_check ?preempt_bound
            ~checkpoint_stride ~interrupt:signal_interrupt ?checkpointing prog
        in
        Option.iter Prof.finish profiler;
        Format.printf "strong linearizability: %a@." L.pp_verdict v;
        (match v with
        | L.Out_of_budget { reason = Lincheck.Budget_interrupt; _ } -> note_interrupt ()
        | _ -> ());
        let sim_metrics = Sim.Metrics.snapshot () in
        if stats then begin
          Format.printf "exploration stats:@.  @[<v>%a@]@." Lincheck.pp_stats st;
          Format.printf "sim metrics:@.";
          List.iter (fun (k, n) -> Format.printf "  %-28s %d@." k n) sim_metrics
        end;
        (match json_sink with
        | None -> ()
        | Some (path, sink) ->
            Obs_jsonl.emit sink "check_run"
              [
                ("object", Obs_json.String name);
                ("spec", Obs_json.String c.spec_name);
                ("procs", Obs_json.Int (Array.length c.workload));
                ("max_nodes", Obs_json.Int max_nodes);
                ( "max_depth",
                  match depth with Some d -> Obs_json.Int d | None -> Obs_json.Null );
              ];
            Obs_jsonl.emit sink "check_stats" (Lincheck.stats_fields st);
            Obs_jsonl.emit sink "sim_metrics"
              (List.map (fun (k, n) -> (k, Obs_json.Int n)) sim_metrics);
            Obs_jsonl.emit sink "check_verdict" (L.verdict_fields v);
            Obs_jsonl.close sink;
            Format.printf "stats JSONL written to %s@." path);
        (match (trace_out, tracer) with
        | Some path, Some tr ->
            Obs_trace.process_name tr (Printf.sprintf "slin check %s" name);
            Obs_trace.write tr path;
            Format.printf "Chrome trace (%d events) written to %s@." (Obs_trace.size tr) path
        | _ -> ());
        let meta () =
          profile_meta ~steal_grain ~reduce:(reduce || reduce_check) ?preempt_bound
            ~command:"check" ~objname:name ~jobs ()
        in
        (match (profile_out, profiler) with
        | Some path, Some prof -> ignore (write_profile prof ~meta:(meta ()) path)
        | _ -> ());
        (match (coverage_out, coverage) with
        | Some path, Some cov -> ignore (write_coverage cov ~meta:(meta ()) path)
        | _ -> ());
        emit_witness v;
        exit_of_verdict v
      end)

(* --- explain ---------------------------------------------------------- *)

let run_explain path trace_out =
  match Witness.parse_file path with
  | Error msg ->
      Format.eprintf "%s@." msg;
      2
  | Ok p -> (
      match Registry.find p.Witness.p_object with
      | None ->
          Format.eprintf "witness references unknown object %S; this build knows: %s@."
            p.Witness.p_object
            (String.concat ", " Registry.names);
          2
      | Some (Registry.Checkable c) ->
          let (module S) = c.spec in
          let module W = Witness.Make (S) in
          let prog = Harness.program ~make:c.make ~workload:c.workload in
          let shape = Witness.shape_of_parsed p in
          Format.printf "object: %s — %s@." p.Witness.p_object c.spec_name;
          Format.printf "witness: %s, %d future(s), %d schedule steps (certificate had %d)@."
            (Witness.kind_tag p.Witness.p_kind)
            (List.length p.Witness.p_futures)
            p.Witness.p_shrunk_len p.Witness.p_original_len;
          Format.printf "%a" (W.pp_explain ~prog ?conflict:p.Witness.p_conflict) shape;
          let report = W.replay prog p in
          List.iter (fun n -> Format.printf "note: %s@." n) report.W.notes;
          (match trace_out with
          | None -> ()
          | Some base ->
              List.iteri
                (fun i (f : Witness.recorded_future) ->
                  match Sim.run_schedule_result prog (p.Witness.p_branch @ f.Witness.f_schedule) with
                  | Error _ -> ()
                  | Ok w -> (
                      let tr =
                        Obs_trace.of_sim_trace ~pp_op:S.pp_op ~pp_resp:S.pp_resp (Sim.trace w)
                      in
                      Obs_trace.process_name tr
                        (Printf.sprintf "%s future %d" p.Witness.p_object i);
                      let out = Printf.sprintf "%s.f%d.json" base i in
                      match
                        Obs.ensure_parent_dir out;
                        Obs_trace.write tr out
                      with
                      | () ->
                          Format.printf "Chrome trace for future %d (%d events) written to %s@." i
                            (Obs_trace.size tr) out
                      | exception Sys_error msg ->
                          Format.eprintf "cannot open output file: %s@." msg))
                p.Witness.p_futures);
          if report.W.reproduced then begin
            Format.printf "replay: verdict REPRODUCED@.";
            0
          end
          else begin
            Format.printf "replay: NOT reproduced@.";
            1
          end)

(* --- trace ------------------------------------------------------------ *)

let run_trace name seed trace_out =
  match Registry.find name with
  | None ->
      unknown_object name;
      2
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let w = Sim.run_random ~seed prog in
      Format.printf "object: %s (seed %d)@.%a" c.spec_name seed (Trace.pp S.pp_op S.pp_resp)
        (Sim.trace w);
      (match trace_out with
      | None -> 0
      | Some path -> (
          let tr = Obs_trace.of_sim_trace ~pp_op:S.pp_op ~pp_resp:S.pp_resp (Sim.trace w) in
          match
            Obs.ensure_parent_dir path;
            Obs_trace.write tr path
          with
          | () ->
              Format.printf "Chrome trace (%d events) written to %s — open at ui.perfetto.dev@."
                (Obs_trace.size tr) path;
              0
          | exception Sys_error msg ->
              Format.eprintf "cannot open output file: %s@." msg;
              2))

(* --- fuzz ------------------------------------------------------------- *)

let write_witness_json path json =
  match
    Obs.ensure_parent_dir path;
    Out_channel.with_open_text path (fun oc ->
        output_string oc (Obs_json.to_string json);
        output_char oc '\n')
  with
  | () -> true
  | exception Sys_error msg ->
      Format.eprintf "cannot open output file: %s@." msg;
      false

let run_fuzz name seed runs no_crash max_steps no_shrink witness_out jobs profile_out
    coverage_out guided =
  match Registry.find name with
  | None ->
      unknown_object name;
      2
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module A = Adversary.Make (S) in
      let module W = Witness.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      install_signal_handlers ();
      let profiler = Option.map (fun _ -> Prof.create ()) profile_out in
      let coverage = Option.map (fun _ -> Coverage.create ()) coverage_out in
      let r =
        A.fuzz ~seed ~runs ~crash:(not no_crash) ~max_steps ~shrink:(not no_shrink) ~jobs
          ?profiler ?coverage ~guided ~interrupt:signal_interrupt prog
      in
      Option.iter Prof.finish profiler;
      Format.printf "object: %s (master seed %d)@." c.spec_name seed;
      if guided then Format.printf "scheduler: coverage-guided (sequential)@.";
      (* No wall-clock figures here: with a fixed seed the output is
         byte-for-byte reproducible (the bench harness reports
         schedules/s instead). *)
      Format.printf "fuzz: %d runs (%d with an injected crash), %d schedule steps@."
        r.A.fz_runs r.A.fz_crashed_runs r.A.fz_total_steps;
      let code =
        match r.A.fz_violation with
        | None when r.A.fz_interrupted ->
            (* Partial campaign: the counts above cover only completed
               runs, and absence of a violation in those is not the
               clean exit-0 answer — degrade to inconclusive. *)
            Format.printf "no violation in the %d completed runs (campaign interrupted)@."
              r.A.fz_runs;
            Format.eprintf "interrupted by signal: %d of %d runs completed@." r.A.fz_runs runs;
            2
        | None ->
            Format.printf "no linearizability violation found@.";
            0
        | Some v ->
          let crash_str =
            match v.A.v_crash_after with
            | [] -> "no crash"
            | l ->
                String.concat ", "
                  (List.map (fun (p, at) -> Printf.sprintf "crash p%d at step %d" p at) l)
          in
          Format.printf "VIOLATION: not linearizable (run seed %d, %s, %d-step schedule)@."
            v.A.v_seed crash_str
            (List.length v.A.v_schedule);
          Format.printf "certificate: %d steps after shrinking@." (Witness.size v.A.v_shape);
          (match witness_out with
          | None -> ()
          | Some path ->
              let json =
                W.to_json prog ~object_name:name ~spec_name:c.spec_name ~max_nodes:0
                  ~max_depth:None ~nodes:None
                  ~original_len:(List.length v.A.v_schedule)
                  v.A.v_shape
              in
              if write_witness_json path json then
                Format.printf "witness (%s, %d steps) written to %s — replay with slin explain@."
                  (Witness.kind_tag v.A.v_shape.Witness.kind)
                  (Witness.size v.A.v_shape) path);
          1
      in
      (match (profile_out, profiler) with
      | Some path, Some prof ->
          ignore
            (write_profile prof ~meta:(profile_meta ~command:"fuzz" ~objname:name ~jobs ()) path)
      | _ -> ());
      (match (coverage_out, coverage) with
      | Some path, Some cov ->
          ignore
            (write_coverage cov ~meta:(profile_meta ~command:"fuzz" ~objname:name ~jobs ()) path)
      | _ -> ());
      code

(* --- serve ------------------------------------------------------------ *)

let run_serve batch socket_path out report_out workers queue_limit max_retries backoff_ms
    deadline_ms stall_ms deterministic allow_faults no_memo emit_jobs quick =
  if emit_jobs then begin
    List.iter print_endline (Experiments.serve_jobs ~quick ());
    0
  end
  else begin
    let cfg =
      {
        Serve.workers;
        queue_limit;
        max_retries;
        backoff_ms;
        default_deadline_ms = deadline_ms;
        stall_ms;
        memo = not no_memo;
        deterministic;
        allow_faults;
      }
    in
    let t = Serve.create cfg in
    let write_report () =
      match report_out with
      | None -> ()
      | Some path -> (
          let json = Serve.report t in
          match
            Obs.ensure_parent_dir path;
            Out_channel.with_open_text path (fun oc ->
                output_string oc (Obs_json.to_string json);
                output_char oc '\n')
          with
          | () ->
              Format.eprintf "serve report (%s) written to %s@." Serve.report_schema path
          | exception Sys_error msg -> Format.eprintf "cannot write report: %s@." msg)
    in
    match batch with
    | Some path -> (
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error msg ->
            Format.eprintf "cannot read batch file: %s@." msg;
            2
        | contents ->
            let lines =
              String.split_on_char '\n' contents |> List.filter (fun l -> String.trim l <> "")
            in
            let responses = Serve.run_batch t lines in
            let emit oc =
              List.iter
                (fun r ->
                  output_string oc (Obs_json.to_string r);
                  output_char oc '\n')
                responses
            in
            (match out with
            | None ->
                emit stdout;
                flush stdout
            | Some path -> (
                match
                  Obs.ensure_parent_dir path;
                  Out_channel.with_open_text path emit
                with
                | () ->
                    Format.eprintf "%d responses written to %s@." (List.length responses) path
                | exception Sys_error msg ->
                    Format.eprintf "cannot write responses: %s@." msg));
            write_report ();
            (* Shed, rejected and inconclusive responses are the service
               doing its job (structured degradation); only a request
               that exhausted its retries fails the run. *)
            if
              List.exists
                (fun r -> Obs_json.member "status" r = Some (Obs_json.String "failed"))
                responses
            then 1
            else 0)
    | None -> (
        match socket_path with
        | Some path ->
            install_signal_handlers ();
            Format.eprintf "listening on %s (SIGINT/SIGTERM to stop)@." path;
            Serve.serve_socket t path ~stop:signal_interrupt;
            write_report ();
            0
        | None ->
            (* JSONL over stdin/stdout, one response line per request
               line, in completion order. *)
            Serve.serve_stream t stdin stdout;
            write_report ();
            0)
  end

(* --- progress --------------------------------------------------------- *)

let run_progress name max_nodes max_depth witness_out =
  match Registry.find name with
  | None ->
      unknown_object name;
      2
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module A = Adversary.Make (S) in
      let module W = Witness.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let depth = match max_depth with Some _ -> max_depth | None -> c.default_depth in
      Format.printf "object: %s@." c.spec_name;
      let wf = A.wait_free_bound ~max_nodes ?max_depth:depth prog in
      Format.printf "wait-freedom: %a%s@." A.pp_wf_report wf
        (if A.wait_free_established wf then " — exhaustive: an adversarial bound"
         else " — walk incomplete: establishes nothing");
      let lf = A.find_livelock prog in
      (match lf.A.lf_livelock with
      | None ->
          Format.printf "lock-freedom: no lasso found (%d adversaries tried)@."
            lf.A.lf_candidates;
          0
      | Some shape ->
          Format.printf "lock-freedom: LIVELOCK — certified %d-step lasso (stem %d, cycle %d)@."
            (Witness.size shape)
            (List.length shape.Witness.branch)
            (List.length (List.concat shape.Witness.futures));
          (match witness_out with
          | None -> ()
          | Some path ->
              let json =
                W.to_json prog ~object_name:name ~spec_name:c.spec_name ~max_nodes
                  ~max_depth:depth ~nodes:None
                  ~original_len:(Witness.size shape)
                  shape
              in
              if write_witness_json path json then
                Format.printf "witness (livelock) written to %s — replay with slin explain@."
                  path);
          1)

(* --- profile ---------------------------------------------------------- *)

let run_profile name jobs steal_grain reduce preempt_bound max_nodes max_depth
    checkpoint_stride profile_out trace_out =
  match Registry.find name with
  | None ->
      unknown_object name;
      2
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let depth = match max_depth with Some _ -> max_depth | None -> c.default_depth in
      let prof = Prof.create () in
      let v, st =
        L.check_strong_stats ~max_nodes ?max_depth:depth ~jobs ~steal_grain ~reduce
          ?preempt_bound ~checkpoint_stride ~profiler:prof prog
      in
      Prof.finish prof;
      Format.printf "object: %s@." c.spec_name;
      Format.printf "strong linearizability: %a@." L.pp_verdict v;
      Format.printf "exploration: %d nodes, %.0f nodes/s, jobs=%d@." st.Lincheck.nodes
        (Lincheck.nodes_per_sec st) jobs;
      Format.printf "%a" Prof.pp_summary prof;
      let meta =
        profile_meta ~steal_grain ~reduce ?preempt_bound ~command:"profile" ~objname:name
          ~jobs ()
      in
      let ok_report =
        match profile_out with None -> true | Some path -> write_profile prof ~meta path
      in
      let ok_trace =
        match trace_out with
        | None -> true
        | Some path -> (
            let tr = Prof.to_trace ~process_name:(Printf.sprintf "slin profile %s" name) prof in
            match
              Obs.ensure_parent_dir path;
              Obs_trace.write tr path
            with
            | () ->
                Format.printf
                  "Chrome trace (%d events) written to %s — open at ui.perfetto.dev@."
                  (Obs_trace.size tr) path;
                true
            | exception Sys_error msg ->
                Format.eprintf "cannot open output file: %s@." msg;
                false)
      in
      if not (ok_report && ok_trace) then 2
      else (
        match v with
        | L.Strongly_linearizable _ -> 0
        | L.Not_linearizable _ | L.Not_strongly_linearizable _ -> 1
        | L.Out_of_budget _ -> 2)

(* --- coverage --------------------------------------------------------- *)

let run_coverage name jobs steal_grain reduce preempt_bound max_nodes max_depth
    checkpoint_stride exact_limit coverage_out =
  match Registry.find name with
  | None ->
      unknown_object name;
      2
  | Some (Registry.Checkable c) ->
      let (module S) = c.spec in
      let module L = Lincheck.Make (S) in
      let prog = Harness.program ~make:c.make ~workload:c.workload in
      let depth = match max_depth with Some _ -> max_depth | None -> c.default_depth in
      let cov = Coverage.create ?exact_limit () in
      let v, st =
        L.check_strong_stats ~max_nodes ?max_depth:depth ~jobs ~steal_grain ~reduce
          ?preempt_bound ~checkpoint_stride ~coverage:cov prog
      in
      Format.printf "object: %s@." c.spec_name;
      Format.printf "strong linearizability: %a@." L.pp_verdict v;
      Format.printf "exploration: %d nodes, jobs=%d@." st.Lincheck.nodes jobs;
      Format.printf "%a" Coverage.pp_summary cov;
      (* The reclaimed-redundancy ratio: how many observations each
         commutation class received under reduction.  1.0 means the memo
         reclaimed all redundancy the coverage layer can see. *)
      let reduce_meta =
        if not reduce then []
        else
          let s = Coverage.stats cov in
          let redundancy =
            if s.Coverage.unique = 0 then 1.0
            else float_of_int s.Coverage.observations /. float_of_int s.Coverage.unique
          in
          [ ("redundancy", Obs_json.Float redundancy) ]
      in
      let meta =
        profile_meta ~steal_grain ~reduce ?preempt_bound ~command:"coverage" ~objname:name
          ~jobs ()
        @ reduce_meta
      in
      let ok_report =
        match coverage_out with None -> true | Some path -> write_coverage cov ~meta path
      in
      if not ok_report then 2
      else (
        match v with
        | L.Strongly_linearizable _ -> 0
        | L.Not_linearizable _ | L.Not_strongly_linearizable _ -> 1
        | L.Out_of_budget _ -> 2)

(* --- stats diff ------------------------------------------------------- *)

let read_json_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> Obs_json.of_string s
  | exception Sys_error msg -> Error msg

let run_stats_diff old_path new_path fail_on_regress =
  match (read_json_file old_path, read_json_file new_path) with
  | Error msg, _ ->
      Format.eprintf "%s: %s@." old_path msg;
      2
  | _, Error msg ->
      Format.eprintf "%s: %s@." new_path msg;
      2
  | Ok old_doc, Ok new_doc -> (
      match Stats_diff.diff ~old_doc ~new_doc with
      | Error msg ->
          Format.eprintf "%s@." msg;
          2
      | Ok entries -> (
          Format.printf "%a" Stats_diff.pp entries;
          match fail_on_regress with
          | None -> 0
          | Some pct ->
              let regs = Stats_diff.regressions ~threshold:pct entries in
              if regs = [] then begin
                Format.printf "no regression beyond %.1f%%@." pct;
                0
              end
              else begin
                Format.eprintf "REGRESSION: %d row(s) worsened beyond %.1f%% (or vanished):@."
                  (List.length regs) pct;
                List.iter
                  (fun e ->
                    Format.eprintf "  %s / %s@." e.Stats_diff.e_name e.Stats_diff.e_metric)
                  regs;
                1
              end))

(* --- agreement objects ------------------------------------------------ *)

let agree_objects = [ "queue"; "stack"; "ooo-queue"; "hw-queue" ]

let run_agree name trials crash_prob seed =
  let inputs3 = [| 100; 200; 300 |] in
  let stats =
    match name with
    | "queue" ->
        Some
          (Agreement.run_many ~make:K_ordering.atomic_queue ~ordering:K_ordering.queue_witness
             ~inputs:inputs3 ~trials ~crash_prob ~seed ())
    | "stack" ->
        Some
          (Agreement.run_many ~make:K_ordering.atomic_stack ~ordering:K_ordering.stack_witness
             ~inputs:inputs3 ~trials ~crash_prob ~seed ())
    | "ooo-queue" ->
        Some
          (Agreement.run_many
             ~make:(K_ordering.atomic_ooo_queue ~k:2)
             ~ordering:(K_ordering.ooo_queue_witness ~k:2)
             ~inputs:[| 1; 2; 3; 4; 5 |] ~trials ~crash_prob ~seed ())
    | "hw-queue" ->
        Some
          (Agreement.run_many
             ~make:(K_ordering.hw_queue ~capacity:3)
             ~ordering:K_ordering.queue_witness ~inputs:inputs3 ~trials ~crash_prob ~seed ())
    | _ -> None
  in
  match stats with
  | None ->
      Format.eprintf "unknown object %S; choose from: %s@." name (String.concat ", " agree_objects);
      2
  | Some s ->
      Format.printf "%s: %a@." name Agreement.pp_stats s;
      0

(* --- cmdliner plumbing ------------------------------------------------ *)

let verdict_exits =
  [
    Cmd.Exit.info 0 ~doc:"the object verified strongly linearizable (check), or the witness \
                          replayed to the same verdict (explain).";
    Cmd.Exit.info 1 ~doc:"the check refuted — not linearizable, or linearizable but not \
                          strongly (check); the witness did not reproduce (explain).";
    Cmd.Exit.info 2
      ~doc:
        "usage error, unknown object, inconclusive (node budget exhausted), or internal error.";
  ]

let experiment_cmd =
  let which = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT") in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Skip the slow refutations.") in
  let witness_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness-dir" ] ~docv:"DIR"
          ~doc:"Write a slin-witness/v1 JSON artifact for every E2 refutation into $(docv).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Solve E2's strong-linearizability games and E7's crash sweep on $(docv) \
             domains.  Merging is deterministic: every table is identical for every \
             $(docv).")
  in
  let known = [ "e1"; "e2"; "e3"; "e4"; "e5"; "e7"; "e8" ] in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Write a slin-profile/v1 per-domain profiling report of E2's \
             strong-linearizability games to $(docv).")
  in
  let coverage_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "coverage-out" ] ~docv:"FILE"
          ~doc:
            "Write a slin-coverage/v1 exploration-coverage report of E2's \
             strong-linearizability games to $(docv).")
  in
  let run which quick witness_dir jobs profile_out coverage_out =
    match List.filter (fun n -> not (List.mem n known)) which with
    | _ :: _ as bad ->
        Format.eprintf "unknown experiment%s %s; choose from: %s@."
          (if List.length bad > 1 then "s" else "")
          (String.concat ", " (List.map (Printf.sprintf "%S") bad))
          (String.concat ", " known);
        2
    | [] ->
        let sel name = which = [] || List.mem name which in
        let profiler = Option.map (fun _ -> Prof.create ()) profile_out in
        let coverage = Option.map (fun _ -> Coverage.create ()) coverage_out in
        Option.iter (fun d -> Obs.ensure_parent_dir (Filename.concat d "w")) witness_dir;
        if sel "e1" then Experiments.e1 ();
        if sel "e2" then Experiments.e2 ?witness_dir ~jobs ?profiler ?coverage ~quick ();
        if sel "e3" then Experiments.e3 ();
        if sel "e4" then Experiments.e4 ();
        if sel "e5" then Experiments.e5 ();
        if sel "e7" then Experiments.e7 ~jobs ();
        if sel "e8" then Experiments.e8 ();
        (match (profile_out, profiler) with
        | Some path, Some prof ->
            ignore
              (write_profile prof
                 ~meta:(profile_meta ~command:"experiment" ~objname:"e2" ~jobs ())
                 path)
        | _ -> ());
        (match (coverage_out, coverage) with
        | Some path, Some cov ->
            ignore
              (write_coverage cov
                 ~meta:(profile_meta ~command:"experiment" ~objname:"e2" ~jobs ())
                 path)
        | _ -> ());
        0
  in
  Cmd.v
    (Cmd.info "experiment" ~exits:verdict_exits
       ~doc:"Regenerate experiment tables E1-E5, E7, E8 (see EXPERIMENTS.md).")
    Term.(const run $ which $ quick $ witness_dir $ jobs $ profile_out $ coverage_out)

let check_cmd =
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let max_nodes =
    Arg.(value & opt int 2_000_000 & info [ "max-nodes" ] ~doc:"Node budget for the game.")
  in
  let max_depth =
    Arg.(value & opt (some int) None & info [ "max-depth" ] ~doc:"Truncate the execution tree.")
  in
  let budget_nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-nodes" ]
          ~doc:
            "Degrade gracefully after exploring $(docv) nodes: report an inconclusive verdict \
             with partial statistics and exit 2 (overrides $(b,--max-nodes))."
          ~docv:"N")
  in
  let budget_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-ms" ]
          ~doc:
            "Degrade gracefully after $(docv) milliseconds of exploration: report an \
             inconclusive verdict with partial statistics and exit 2."
          ~docv:"MS")
  in
  let budget_mb =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-mb" ]
          ~doc:
            "Degrade gracefully when the OCaml heap exceeds $(docv) MB: report an inconclusive \
             verdict with partial statistics and exit 2."
          ~docv:"MB")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print exploration statistics (nodes, nodes/s, frontier depth, killed \
             linearizations) and aggregated simulator metrics; emit a progress heartbeat on \
             stderr during long checks.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE" ~doc:"Write stats and verdict as JSON Lines to $(docv).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event file of the exploration to $(docv) (open at \
             ui.perfetto.dev).")
  in
  let witness_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness-out" ] ~docv:"FILE"
          ~doc:
            "On a refutation, extract a self-certifying counterexample, shrink it, and write \
             it as a slin-witness/v1 JSON artifact to $(docv); replay it later with $(b,slin \
             explain).")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Skip witness minimization: write the certificate exactly as extracted.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Solve the game on up to $(docv) domains (capped at the hardware parallelism; \
             override with SLIN_DOMAIN_CAP), distributing top-level subtrees — and, past \
             the steal grain, their hot subtrees — by work stealing.  The merge is \
             deterministic: verdict, witness and node counts are identical for every value \
             (the stderr heartbeat is only emitted at $(docv)=1).")
  in
  let steal_grain =
    Arg.(
      value & opt int 4
      & info [ "steal-grain" ] ~docv:"D"
          ~doc:
            "Work-stealing split depth: with 2+ effective domains, nodes at depth <= $(docv) \
             fork their children as stealable tasks ($(docv)=0 restricts stealing to whole \
             top-level subtrees).  Results are identical for every value.")
  in
  let reduce =
    Arg.(
      value & flag
      & info [ "reduce" ]
          ~doc:
            "Enable dependency-aware partial-order reduction in the strong-linearizability \
             game: schedule prefixes that differ only by swapping adjacent commuting \
             base-object accesses (distinct objects, or read-like pairs on the same object) \
             share one subtree exploration via a candidate-survival memo.  The verdict and \
             witness are identical to an unreduced run; only the node count shrinks.")
  in
  let reduce_check =
    Arg.(
      value & flag
      & info [ "reduce-check" ]
          ~doc:
            "Debug mode implying $(b,--reduce): every memo hit additionally re-explores the \
             subtree and verifies the stored answer matches, i.e. cross-validates that \
             commutation-equivalent prefixes really have isomorphic subtrees.  Costs at \
             least as much as an unreduced run.")
  in
  let preempt_bound =
    Arg.(
      value
      & opt (some int) None
      & info [ "preempt-bound" ] ~docv:"N"
          ~doc:
            "Only explore schedules with at most $(docv) preemptions (context switches away \
             from a still-enabled process).  Refutations found under the bound are sound; a \
             strong-linearizability success that pruned any schedule degrades to an \
             inconclusive $(i,preempt_bound) verdict.  Composes with $(b,--reduce) and the \
             node/time/heap budgets.")
  in
  let checkpoint_stride =
    Arg.(
      value & opt int 16
      & info [ "checkpoint-stride" ] ~docv:"K"
          ~doc:
            "Anchor interval of the incremental engine: every explored node whose depth is a \
             multiple of $(docv) is re-derived from a full replay and compared against the \
             incrementally maintained state ($(docv)=1 checks every node).  Results are \
             identical for every value.")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Write a slin-profile/v1 per-domain profiling report of the exploration to \
             $(docv) (compare runs with $(b,slin stats diff)).")
  in
  let coverage_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "coverage-out" ] ~docv:"FILE"
          ~doc:
            "Write a slin-coverage/v1 exploration-coverage report (unique world \
             fingerprints, depth/branching histograms, object-pair access matrix) to \
             $(docv); compare runs with $(b,slin stats diff).")
  in
  let checkpoint_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-out" ] ~docv:"FILE"
          ~doc:
            "Write a slin-checkpoint/v1 snapshot of the exploration to $(docv) (atomically, \
             after every completed column), so a budget-limited, killed or crashed run can \
             be continued with $(b,--resume).  A resumed run provably reaches the verdict \
             an uninterrupted one would.")
  in
  let resume =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a slin-checkpoint/v1 file written by $(b,--checkpoint-out): \
             completed columns are replayed from the snapshot, only the rest is explored.  \
             The checkpoint's object, depth bound and engine fingerprint must match this \
             invocation; its content digest is verified.")
  in
  Cmd.v
    (Cmd.info "check" ~exits:verdict_exits
       ~doc:"Run the linearizability checks and the strong-linearizability game on OBJECT.")
    Term.(
      const run_check $ obj $ max_nodes $ max_depth $ budget_nodes $ budget_ms $ budget_mb
      $ stats $ json_out $ trace_out $ witness_out $ no_shrink $ jobs $ steal_grain
      $ reduce $ reduce_check $ preempt_bound $ checkpoint_stride $ profile_out
      $ coverage_out $ checkpoint_out $ resume)

let explain_cmd =
  let witness =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WITNESS.json")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"BASE"
          ~doc:
            "Write one Chrome trace-event file per future, $(docv).fN.json (open at \
             ui.perfetto.dev).")
  in
  Cmd.v
    (Cmd.info "explain" ~exits:verdict_exits
       ~doc:
        "Replay a slin-witness/v1 artifact: re-run its schedules under the simulator, verify \
         the recorded refutation reproduces, and render a side-by-side timeline of the \
         diverging futures.")
    Term.(const run_explain $ witness $ trace_out)

let fuzz_cmd =
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master seed; the whole campaign is \
                                                           a pure function of it.") in
  let runs = Arg.(value & opt int 500 & info [ "runs" ] ~doc:"Random schedules to run.") in
  let no_crash =
    Arg.(value & flag & info [ "no-crash" ] ~doc:"Disable crash injection (schedules only).")
  in
  let max_steps =
    Arg.(value & opt int 2048 & info [ "max-steps" ] ~doc:"Step cap per schedule.")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report the violating schedule exactly as executed.")
  in
  let witness_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness-out" ] ~docv:"FILE"
          ~doc:
            "On a violation, write the shrunk certificate as a slin-witness/v1 JSON artifact \
             to $(docv); replay it later with $(b,slin explain).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Execute the campaign's runs on $(docv) domains.  Run configurations are drawn \
             from the PRNG upfront and the first violation is the index-minimal one, so \
             every report field except elapsed time is identical for every $(docv).")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Write a slin-profile/v1 per-worker profiling report of the campaign to $(docv) \
             (one lane per domain; work units are schedules executed).")
  in
  let coverage_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "coverage-out" ] ~docv:"FILE"
          ~doc:
            "Write a slin-coverage/v1 report of the campaign to $(docv): unique world \
             fingerprints over every run's event prefixes, with per-run novelty \
             attribution.")
  in
  let guided =
    Arg.(
      value & flag
      & info [ "guided" ]
          ~doc:
            "Coverage-guided scheduling: prefer the enabled process whose (world \
             fingerprint, process) edge is least traversed, and splice prefixes of \
             retained novelty-bearing schedules.  Sequential ($(b,--jobs) is ignored); \
             produces different schedules than the default uniform scheduler, which \
             stays byte-reproducible per seed.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~exits:verdict_exits
       ~doc:
         "Fuzz OBJECT with seeded random schedules and crash injection: every trace is \
          checked for linearizability, and the first violation is shrunk into a replayable \
          witness.")
    Term.(
      const run_fuzz $ obj $ seed $ runs $ no_crash $ max_steps $ no_shrink $ witness_out
      $ jobs $ profile_out $ coverage_out $ guided)

let progress_cmd =
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let max_nodes =
    Arg.(
      value & opt int 2_000_000 & info [ "max-nodes" ] ~doc:"Node budget for the tree walk.")
  in
  let max_depth =
    Arg.(value & opt (some int) None & info [ "max-depth" ] ~doc:"Truncate the schedule tree.")
  in
  let witness_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness-out" ] ~docv:"FILE"
          ~doc:
            "If a livelock lasso is found, write its certificate as a slin-witness/v1 JSON \
             artifact to $(docv).")
  in
  Cmd.v
    (Cmd.info "progress" ~exits:verdict_exits
       ~doc:
         "Verify progress properties of OBJECT mechanically: an exhaustive worst-case \
          steps-per-operation bound over every schedule (wait-freedom), and a lasso search \
          for livelocks (lock-freedom refutation).")
    Term.(const run_progress $ obj $ max_nodes $ max_depth $ witness_out)

let agree_cmd =
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let trials = Arg.(value & opt int 1000 & info [ "trials" ] ~doc:"Random schedules to run.") in
  let crash_prob =
    Arg.(value & opt float 0.0 & info [ "crash-prob" ] ~doc:"Probability of crashing a process.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "agree" ~doc:"Run Algorithm B (Lemma 12) k-set agreement on OBJECT.")
    Term.(const run_agree $ obj $ trials $ crash_prob $ seed)

let trace_cmd =
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the execution as a Chrome trace-event file to $(docv) (open at \
             ui.perfetto.dev).")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print one random execution trace of OBJECT's standard workload.")
    Term.(const run_trace $ obj $ seed $ trace_out)

let profile_cmd =
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Solve the game on $(docv) domains; the report carries one lane per domain, so \
             this is the tool for explaining parallel speedups (or slowdowns).")
  in
  let max_nodes =
    Arg.(
      value & opt int 3_000_000 & info [ "max-nodes" ] ~doc:"Node budget for the game.")
  in
  let max_depth =
    Arg.(value & opt (some int) None & info [ "max-depth" ] ~doc:"Truncate the execution tree.")
  in
  let checkpoint_stride =
    Arg.(
      value & opt int 16
      & info [ "checkpoint-stride" ] ~docv:"K"
          ~doc:"Anchor interval of the incremental engine (as in $(b,slin check)).")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Write the slin-profile/v1 JSON report to $(docv) (compare runs with $(b,slin \
             stats diff)).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event file with one lane per domain to $(docv) (open at \
             ui.perfetto.dev).")
  in
  let steal_grain =
    Arg.(
      value & opt int 4
      & info [ "steal-grain" ] ~docv:"D"
          ~doc:"Work-stealing split depth (as in $(b,slin check)).")
  in
  let reduce =
    Arg.(
      value & flag
      & info [ "reduce" ]
          ~doc:
            "Partial-order reduction (as in $(b,slin check)); prune counts appear in the \
             report's $(i,prunes) lane counters and kill attribution.")
  in
  let preempt_bound =
    Arg.(
      value
      & opt (some int) None
      & info [ "preempt-bound" ] ~docv:"N"
          ~doc:"Preemption bound (as in $(b,slin check)).")
  in
  Cmd.v
    (Cmd.info "profile" ~exits:verdict_exits
       ~doc:
         "Run the strong-linearizability game on OBJECT under the engine profiler: \
          per-domain solve/merge/steal/share/idle/cross-check time, node and cache-hit \
          counts, depth histograms and candidate-kill attribution.  Profiling is passive — \
          the verdict is identical to $(b,slin check)'s.")
    Term.(
      const run_profile $ obj $ jobs $ steal_grain $ reduce $ preempt_bound $ max_nodes
      $ max_depth $ checkpoint_stride $ profile_out $ trace_out)

let coverage_cmd =
  let obj = Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Solve the game on $(docv) domains.  At $(docv)=1 the report is a pure \
             function of the workload and engine (golden-testable); at $(docv)>1 worker \
             racing perturbs which duplicate reaches a world first, so per-shard splits \
             move while the merged unique count stays within Bloom-estimate noise.")
  in
  let max_nodes =
    Arg.(
      value & opt int 3_000_000 & info [ "max-nodes" ] ~doc:"Node budget for the game.")
  in
  let max_depth =
    Arg.(value & opt (some int) None & info [ "max-depth" ] ~doc:"Truncate the execution tree.")
  in
  let checkpoint_stride =
    Arg.(
      value & opt int 16
      & info [ "checkpoint-stride" ] ~docv:"K"
          ~doc:"Anchor interval of the incremental engine (as in $(b,slin check)).")
  in
  let steal_grain =
    Arg.(
      value & opt int 4
      & info [ "steal-grain" ] ~docv:"D"
          ~doc:"Work-stealing split depth (as in $(b,slin check)).")
  in
  let exact_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "exact-limit" ] ~docv:"N"
          ~doc:
            "Per-shard exact fingerprint-set bound (default 262144); past it a shard \
             flips to a Bloom filter and unique counts become estimates.")
  in
  let coverage_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "coverage-out" ] ~docv:"FILE"
          ~doc:
            "Write the slin-coverage/v1 JSON report to $(docv) (compare runs with \
             $(b,slin stats diff)).")
  in
  let reduce =
    Arg.(
      value & flag
      & info [ "reduce" ]
          ~doc:
            "Partial-order reduction (as in $(b,slin check)); the report's meta gains a \
             $(i,redundancy) field — observations per commutation class — showing how much \
             redundancy the memo left behind.")
  in
  let preempt_bound =
    Arg.(
      value
      & opt (some int) None
      & info [ "preempt-bound" ] ~docv:"N"
          ~doc:"Preemption bound (as in $(b,slin check)).")
  in
  Cmd.v
    (Cmd.info "coverage" ~exits:verdict_exits
       ~doc:
         "Run the strong-linearizability game on OBJECT under the coverage recorder: \
          unique world fingerprints (commutation classes visited), depth and branching \
          histograms, and the empirical object-pair dependency matrix (commuting vs \
          conflicting adjacent accesses).  Recording is passive — the verdict and node \
          counts are identical to $(b,slin check)'s.")
    Term.(
      const run_coverage $ obj $ jobs $ steal_grain $ reduce $ preempt_bound $ max_nodes
      $ max_depth $ checkpoint_stride $ exact_limit $ coverage_out)

let serve_cmd =
  let batch =
    Arg.(
      value
      & opt (some file) None
      & info [ "batch" ] ~docv:"JOBS.jsonl"
          ~doc:
            "Run one JSONL request per line of $(docv) to completion and emit one response \
             per line, in arrival order.  All requests are enqueued before any worker \
             starts, so shedding, coalescing and the report counters are deterministic.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) and serve connections (JSONL in, \
             JSONL out) until SIGINT/SIGTERM.  Without $(b,--batch) or $(b,--socket), \
             requests are read from stdin.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write batch responses to $(docv) instead of stdout.")
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write a slin-serve-report/v1 summary (request counters by status, memo/retry/\
             restart counts, completed_ratio) to $(docv); compare runs with $(b,slin stats \
             diff).")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"Worker domains in the pool.")
  in
  let queue_limit =
    Arg.(
      value & opt int 64
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Bounded queue length.  Past it the oldest sheddable queued request is shed \
             (else the incoming one), with a structured $(i,shed) response.")
  in
  let max_retries =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Re-dispatches per request after a worker crash, with exponential backoff; past \
             this the request gets a structured $(i,failed) response.")
  in
  let backoff_ms =
    Arg.(
      value & opt int 25
      & info [ "backoff-ms" ] ~docv:"MS" ~doc:"Base of the exponential retry backoff.")
  in
  let deadline_ms =
    Arg.(
      value & opt int 60_000
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline (a request's own deadline_ms wins).  Past it the \
             run degrades to an inconclusive verdict instead of hanging a worker.")
  in
  let stall_ms =
    Arg.(
      value & opt int 10_000
      & info [ "stall-ms" ] ~docv:"MS"
          ~doc:
            "Heartbeat age after which a busy worker is considered stalled and cancelled \
             cooperatively (the request answers inconclusive/stalled).")
  in
  let deterministic =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~doc:
            "Omit wall-clock fields from responses and the report so batch output is \
             byte-reproducible and can be gated against a baseline.")
  in
  let allow_faults =
    Arg.(
      value & flag
      & info [ "allow-fault-injection" ]
          ~doc:
            "Accept requests carrying a fault member (crash the worker after N checkpointed \
             columns) — the supervision/retry/resume path's test hook.  Off by default; \
             such requests are rejected.")
  in
  let no_memo =
    Arg.(
      value & flag
      & info [ "no-memo" ]
          ~doc:"Disable verdict memoization and duplicate-request coalescing.")
  in
  let emit_jobs =
    Arg.(
      value & flag
      & info [ "emit-jobs" ]
          ~doc:
            "Print the canonical smoke-test batch (JSONL, one request per line) to stdout \
             and exit; feed it back with $(b,--batch).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"With $(b,--emit-jobs): smaller node budgets and fuzz runs.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"service ran; every request was answered or degraded \
                                 (done, inconclusive, shed or rejected).";
           Cmd.Exit.info 1 ~doc:"at least one request $(i,failed) (crashed past its retry \
                                 budget).";
           Cmd.Exit.info 2 ~doc:"usage error or unreadable batch file.";
         ]
       ~doc:
         "Run the supervised checking service: JSONL check/fuzz/coverage/explain requests \
          (from a batch file, stdin, or a Unix socket) are dispatched to a pool of worker \
          domains with per-request deadlines, heartbeat stall detection, crash retries \
          with exponential backoff, checkpoint/resume, bounded-queue load shedding and \
          verdict memoization; every answer is a versioned slin-serve/v1 response.")
    Term.(
      const run_serve $ batch $ socket $ out $ report_out $ workers $ queue_limit
      $ max_retries $ backoff_ms $ deadline_ms $ stall_ms $ deterministic $ allow_faults
      $ no_memo $ emit_jobs $ quick)

let stats_cmd =
  let diff_cmd =
    let old_f = Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json") in
    let new_f = Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json") in
    let fail_on =
      Arg.(
        value
        & opt (some float) None
        & info [ "fail-on-regress" ] ~docv:"PCT"
            ~doc:
              "Exit 1 if any directional metric worsened by more than $(docv) percent, or if \
               a row present in OLD.json is missing from NEW.json.  Without this flag the \
               diff is informational and always exits 0.")
    in
    Cmd.v
      (Cmd.info "diff"
         ~exits:
           [
             Cmd.Exit.info 0 ~doc:"reports compared; no gated regression.";
             Cmd.Exit.info 1 ~doc:"$(b,--fail-on-regress) was given and a regression exceeded \
                                   the threshold (or a row vanished).";
             Cmd.Exit.info 2 ~doc:"unreadable file, malformed report, or mismatched schemas.";
           ]
         ~doc:
           "Compare two versioned perf reports (slin-bench/v1, slin-profile/v1, \
            slin-coverage/v1 or slin-serve-report/v1) field-by-field: throughput, \
            unique-world and completed-request ratios regress downward, latency metrics \
            regress upward, neutral counters are reported but never gated.")
      Term.(const run_stats_diff $ old_f $ new_f $ fail_on)
  in
  Cmd.group
    (Cmd.info "stats"
       ~doc:
         "Tools over versioned perf reports (slin-bench/v1, slin-profile/v1, \
          slin-coverage/v1, slin-serve-report/v1).")
    [ diff_cmd ]

let () =
  let doc = "strongly-linearizable objects from consensus-number-2 primitives" in
  let info = Cmd.info "slin" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        experiment_cmd;
        check_cmd;
        explain_cmd;
        fuzz_cmd;
        progress_cmd;
        agree_cmd;
        trace_cmd;
        profile_cmd;
        coverage_cmd;
        serve_cmd;
        stats_cmd;
      ]
  in
  (* All usage and internal errors land on 2, leaving 0/1 to carry the
     verdict (see EXIT STATUS in the subcommand man pages). *)
  exit (match Cmd.eval_value group with Ok (`Ok code) -> code | Ok (`Help | `Version) -> 0 | Error _ -> 2)
