(* The object registry: every (implementation, workload, spec) triple the
   tooling can check by name.  One shared table so the CLI (`slin check`,
   `slin explain`, `slin trace`), the E2 experiment rows and the pinned
   witness corpus all agree on what a name means — witness artifacts
   record the registry name as their replay key, so an entry's [make],
   [workload] and [spec] must stay stable once a witness referencing it
   is committed (add a new name instead of repurposing one). *)

type checkable =
  | Checkable : {
      spec_name : string;
      make : (module Runtime_intf.S) -> 'op -> 'resp;
      workload : 'op list array;
      spec : (module Spec.S with type op = 'op and type resp = 'resp);
      default_depth : int option;
    }
      -> checkable

let all : (string * checkable) list =
  [
    ( "faa-max",
      Checkable
        {
          spec_name = "max register from fetch&add (Thm 1)";
          make = Executors.faa_max_register;
          workload =
            [|
              [ Spec.Max_register.WriteMax 1; Spec.Max_register.ReadMax ];
              [ Spec.Max_register.WriteMax 2 ];
              [ Spec.Max_register.ReadMax ];
            |];
          spec = (module Spec.Max_register);
          default_depth = None;
        } );
    ( "faa-snapshot",
      Checkable
        {
          spec_name = "atomic snapshot from fetch&add (Thm 2)";
          make = Executors.faa_snapshot3;
          workload =
            [|
              [ Executors.Snap3.Update (0, 1); Executors.Snap3.Update (0, 2) ];
              [ Executors.Snap3.Update (1, 3) ];
              [ Executors.Snap3.Scan; Executors.Snap3.Scan ];
            |];
          spec = (module Executors.Snap3);
          default_depth = None;
        } );
    ( "counter",
      Checkable
        {
          spec_name = "simple-type counter over F&A snapshot (Thm 4)";
          make = Executors.simple_counter;
          workload =
            [|
              [ Spec.Counter.Add 1 ];
              [ Spec.Counter.Add 2 ];
              [ Spec.Counter.Read; Spec.Counter.Read ];
            |];
          spec = (module Spec.Counter);
          default_depth = None;
        } );
    ( "readable-ts",
      Checkable
        {
          spec_name = "readable test&set from test&set (Thm 5)";
          make = Executors.readable_ts;
          workload =
            [|
              [ Spec.Test_and_set.TestAndSet ];
              [ Spec.Test_and_set.TestAndSet ];
              [ Spec.Test_and_set.Read; Spec.Test_and_set.Read ];
            |];
          spec = (module Spec.Test_and_set);
          default_depth = None;
        } );
    ( "multishot-ts",
      Checkable
        {
          spec_name = "multi-shot test&set (Thm 6)";
          make = Executors.multishot_ts_atomic;
          workload =
            [|
              [ Spec.Multishot_test_and_set.TestAndSet; Spec.Multishot_test_and_set.Reset ];
              [ Spec.Multishot_test_and_set.TestAndSet ];
              [ Spec.Multishot_test_and_set.Read ];
            |];
          spec = (module Spec.Multishot_test_and_set);
          default_depth = None;
        } );
    ( "fetch-inc",
      Checkable
        {
          spec_name = "fetch&increment from test&set (Thm 9)";
          make = Executors.ts_fetch_inc;
          workload =
            [|
              [ Spec.Fetch_and_inc.FetchInc ];
              [ Spec.Fetch_and_inc.FetchInc ];
              [ Spec.Fetch_and_inc.Read ];
            |];
          spec = (module Spec.Fetch_and_inc);
          default_depth = None;
        } );
    ( "set",
      Checkable
        {
          spec_name = "set from test&set, full stack (Thm 10)";
          make = Executors.ts_set_full;
          workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Take ] |];
          spec = (module Spec.Set_obj);
          default_depth = None;
        } );
    ( "hw-queue",
      Checkable
        {
          spec_name = "Herlihy-Wing queue (baseline, not SL)";
          make = Executors.hw_queue;
          workload =
            [|
              [ Spec.Queue_spec.Enq 1 ];
              [ Spec.Queue_spec.Enq 2 ];
              [ Spec.Queue_spec.Deq ];
              [ Spec.Queue_spec.Deq ];
            |];
          spec = (module Spec.Queue_spec);
          default_depth = Some 22;
        } );
    ( "hw-queue-deep",
      Checkable
        {
          spec_name = "Herlihy-Wing queue, deep workload (baseline, not SL)";
          make = Executors.hw_queue;
          workload =
            [|
              [ Spec.Queue_spec.Enq 1; Spec.Queue_spec.Enq 3 ];
              [ Spec.Queue_spec.Enq 2 ];
              [ Spec.Queue_spec.Deq; Spec.Queue_spec.Deq ];
              [ Spec.Queue_spec.Deq ];
            |];
          spec = (module Spec.Queue_spec);
          default_depth = Some 32;
        } );
    ( "agm-stack",
      Checkable
        {
          spec_name = "AGM-style stack (baseline, not SL)";
          make = Executors.agm_stack;
          workload =
            [|
              [ Spec.Stack_spec.Push 1 ];
              [ Spec.Stack_spec.Push 2 ];
              [ Spec.Stack_spec.Pop ];
              [ Spec.Stack_spec.Pop ];
            |];
          spec = (module Spec.Stack_spec);
          default_depth = Some 24;
        } );
    ( "rw-max",
      Checkable
        {
          spec_name = "read/write max register (baseline, not SL)";
          make = Executors.rw_max_register;
          workload =
            [|
              [ Spec.Max_register.WriteMax 1 ];
              [ Spec.Max_register.WriteMax 2 ];
              [ Spec.Max_register.ReadMax; Spec.Max_register.ReadMax ];
            |];
          spec = (module Spec.Max_register);
          default_depth = None;
        } );
    ( "mwmr-register",
      Checkable
        {
          spec_name = "MWMR register from SWMR (baseline, not SL)";
          make = Executors.mwmr_register;
          workload =
            [|
              [ Spec.Register.Write 1 ];
              [ Spec.Register.Write 2 ];
              [ Spec.Register.Read; Spec.Register.Read ];
            |];
          spec = (module Spec.Register);
          default_depth = None;
        } );
    ( "set-empty-race",
      Checkable
        {
          spec_name = "Alg 2 set, EMPTY race (the Thm 10 finding)";
          make = Executors.ts_set_atomic_fi;
          workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Put 2 ]; [ Spec.Set_obj.Take ] |];
          spec = (module Spec.Set_obj);
          default_depth = None;
        } );
    ( "set-repaired",
      Checkable
        {
          spec_name = "repaired set: conservative EMPTY (finding follow-up)";
          make =
            (fun (module R : Runtime_intf.S) ->
              let module A = Atomic_objects.Make (R) in
              let module S = Ts_set_conservative.Make (R) (A.Fetch_inc) in
              let t = S.create ~name:"cset" () in
              fun (op : Spec.Set_obj.op) : Spec.Set_obj.resp ->
                match op with
                | Spec.Set_obj.Put x ->
                    S.put t x;
                    Spec.Set_obj.Ok_
                | Spec.Set_obj.Take -> (
                    match S.take t with
                    | None -> Spec.Set_obj.Empty
                    | Some x -> Spec.Set_obj.Item x));
          workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Put 2 ]; [ Spec.Set_obj.Take ] |];
          spec = (module Spec.Set_obj);
          default_depth = Some 18;
        } );
    ( "cas-queue",
      Checkable
        {
          spec_name = "CAS universal queue (baseline, SL)";
          make = Executors.cas_queue;
          workload =
            [|
              [ Spec.Queue_spec.Enq 1 ];
              [ Spec.Queue_spec.Enq 2 ];
              [ Spec.Queue_spec.Deq; Spec.Queue_spec.Deq ];
            |];
          spec = (module Spec.Queue_spec);
          default_depth = Some 30;
        } );
    ( "tournament-ts",
      Checkable
        {
          spec_name = "tournament test&set (baseline, not linearizable)";
          make = Executors.tournament_ts;
          workload = Array.make 4 [ Spec.Test_and_set.TestAndSet ];
          spec = (module Spec.Test_and_set);
          default_depth = None;
        } );
    ( "hw-queue-drain",
      Checkable
        {
          spec_name = "Herlihy-Wing queue, drain-heavy (livelocks an empty deq)";
          make = Executors.hw_queue;
          workload =
            [|
              [ Spec.Queue_spec.Enq 1 ];
              [ Spec.Queue_spec.Deq ];
              [ Spec.Queue_spec.Deq ];
            |];
          spec = (module Spec.Queue_spec);
          default_depth = Some 18;
        } );
    ( "aww-multishot-fi",
      Checkable
        {
          spec_name = "multi-shot AWW fetch&inc with hint read (not linearizable)";
          make = Executors.aww_multishot_fi;
          workload =
            [|
              [ Spec.Fetch_and_inc.FetchInc ];
              [ Spec.Fetch_and_inc.FetchInc ];
              [ Spec.Fetch_and_inc.Read ];
            |];
          spec = (module Spec.Fetch_and_inc);
          default_depth = None;
        } );
  ]

let names = List.map fst all
let find name = List.assoc_opt name all
