(* Executors: adapters from specification operations to implementation
   calls, one per (object, implementation) pair used in the experiments.
   Each takes the world's runtime and returns the operation interpreter
   the workload harness drives. *)

module Snap2 = Spec.Snapshot (struct
  let n = 2
end)

module Snap3 = Spec.Snapshot (struct
  let n = 3
end)

(* --- the paper's constructions --------------------------------------- *)

let faa_max_register (module R : Runtime_intf.S) =
  let module M = Faa_max_register.Make (R) in
  let t = M.create ~name:"max" () in
  fun (op : Spec.Max_register.op) : Spec.Max_register.resp ->
    match op with
    | Spec.Max_register.WriteMax v ->
        M.write_max t v;
        Spec.Max_register.Ack
    | Spec.Max_register.ReadMax -> Spec.Max_register.Value (M.read_max t)

let faa_snapshot3 (module R : Runtime_intf.S) =
  let module S = Faa_snapshot.Make (R) in
  let t = S.create ~name:"snap" () in
  fun (op : Snap3.op) : Snap3.resp ->
    match op with
    | Snap3.Update (_, v) ->
        S.update t v;
        Snap3.Ack
    | Snap3.Scan -> Snap3.View (Array.to_list (S.scan t))

let simple_counter (module R : Runtime_intf.S) =
  let module Snap = Faa_snapshot.Make (R) in
  let module C = Simple_type.Make (Simple_instances.Counter_type) (Snap) in
  let t = C.create ~name:"counter" ~n:(R.n_procs ()) () in
  fun (op : Spec.Counter.op) -> C.execute t ~self:(R.self ()) op

(* Theorem 3 proper: the simple-type construction over an ATOMIC
   snapshot (Theorem 4 = the same functor over Theorem 2's snapshot). *)
let simple_counter_atomic_snap (module R : Runtime_intf.S) =
  let module A = Atomic_objects.Make (R) in
  let module C = Simple_type.Make (Simple_instances.Counter_type) (A.Snapshot) in
  let t = C.create ~name:"counter" ~n:(R.n_procs ()) () in
  fun (op : Spec.Counter.op) -> C.execute t ~self:(R.self ()) op

let union_set (module R : Runtime_intf.S) =
  let module Snap = Faa_snapshot.Make (R) in
  let module U = Simple_type.Make (Simple_instances.Union_set_type) (Snap) in
  let t = U.create ~name:"uset" ~n:(R.n_procs ()) () in
  fun (op : Simple_instances.Union_set_type.op) -> U.execute t ~self:(R.self ()) op

let simple_max_register (module R : Runtime_intf.S) =
  let module Snap = Faa_snapshot.Make (R) in
  let module M = Simple_type.Make (Simple_instances.Max_register_type) (Snap) in
  let t = M.create ~name:"stmax" ~n:(R.n_procs ()) () in
  fun (op : Spec.Max_register.op) -> M.execute t ~self:(R.self ()) op

let simple_logical_clock (module R : Runtime_intf.S) =
  let module Snap = Faa_snapshot.Make (R) in
  let module C = Simple_type.Make (Simple_instances.Logical_clock_type) (Snap) in
  let t = C.create ~name:"clock" ~n:(R.n_procs ()) () in
  fun (op : Spec.Logical_clock.op) -> C.execute t ~self:(R.self ()) op

let readable_ts (module R : Runtime_intf.S) =
  let module T = Readable_ts.Make (R) in
  let t = T.create ~name:"rts" () in
  fun (op : Spec.Test_and_set.op) : Spec.Test_and_set.resp ->
    match op with
    | Spec.Test_and_set.TestAndSet -> Spec.Test_and_set.Value (T.test_and_set t)
    | Spec.Test_and_set.Read -> Spec.Test_and_set.Value (T.read t)

let multishot_ts_atomic (module R : Runtime_intf.S) =
  let module A = Atomic_objects.Make (R) in
  let module T = Multishot_ts.Make (A.Max_register) (A.Readable_ts) in
  let t = T.create ~name:"msts" () in
  fun (op : Spec.Multishot_test_and_set.op) : Spec.Multishot_test_and_set.resp ->
    match op with
    | Spec.Multishot_test_and_set.TestAndSet ->
        Spec.Multishot_test_and_set.Value (T.test_and_set t)
    | Spec.Multishot_test_and_set.Read -> Spec.Multishot_test_and_set.Value (T.read t)
    | Spec.Multishot_test_and_set.Reset ->
        T.reset t;
        Spec.Multishot_test_and_set.Ack

let multishot_ts_composed (module R : Runtime_intf.S) =
  let module M = Faa_max_register.Make (R) in
  let module RT = Readable_ts.Make (R) in
  let module T = Multishot_ts.Make (M) (RT) in
  let t = T.create ~name:"msts" () in
  fun (op : Spec.Multishot_test_and_set.op) : Spec.Multishot_test_and_set.resp ->
    match op with
    | Spec.Multishot_test_and_set.TestAndSet ->
        Spec.Multishot_test_and_set.Value (T.test_and_set t)
    | Spec.Multishot_test_and_set.Read -> Spec.Multishot_test_and_set.Value (T.read t)
    | Spec.Multishot_test_and_set.Reset ->
        T.reset t;
        Spec.Multishot_test_and_set.Ack

let ts_fetch_inc (module R : Runtime_intf.S) =
  let module RT = Readable_ts.Make (R) in
  let module F = Ts_fetch_inc.Make (RT) in
  let t = F.create ~name:"fi" () in
  fun (op : Spec.Fetch_and_inc.op) : Spec.Fetch_and_inc.resp ->
    match op with
    | Spec.Fetch_and_inc.FetchInc -> Spec.Fetch_and_inc.Value (F.fetch_inc t)
    | Spec.Fetch_and_inc.Read -> Spec.Fetch_and_inc.Value (F.read t)

let ts_set_atomic_fi (module R : Runtime_intf.S) =
  let module A = Atomic_objects.Make (R) in
  let module S = Ts_set.Make (R) (A.Fetch_inc) in
  let t = S.create ~name:"set" () in
  fun (op : Spec.Set_obj.op) : Spec.Set_obj.resp ->
    match op with
    | Spec.Set_obj.Put x ->
        S.put t x;
        Spec.Set_obj.Ok_
    | Spec.Set_obj.Take -> (
        match S.take t with None -> Spec.Set_obj.Empty | Some x -> Spec.Set_obj.Item x)

let ts_set_full (module R : Runtime_intf.S) =
  let module RT = Readable_ts.Make (R) in
  let module F = Ts_fetch_inc.Make (RT) in
  let module S = Ts_set.Make (R) (F) in
  let t = S.create ~name:"set" () in
  fun (op : Spec.Set_obj.op) : Spec.Set_obj.resp ->
    match op with
    | Spec.Set_obj.Put x ->
        S.put t x;
        Spec.Set_obj.Ok_
    | Spec.Set_obj.Take -> (
        match S.take t with None -> Spec.Set_obj.Empty | Some x -> Spec.Set_obj.Item x)

(* --- baselines -------------------------------------------------------- *)

let hw_queue (module R : Runtime_intf.S) =
  let module Q = Hw_queue.Make (R) in
  let t = Q.create () in
  fun (op : Spec.Queue_spec.op) : Spec.Queue_spec.resp ->
    match op with
    | Spec.Queue_spec.Enq x ->
        Q.enqueue t x;
        Spec.Queue_spec.Ok_
    | Spec.Queue_spec.Deq -> (
        match Q.dequeue t with None -> Spec.Queue_spec.Empty | Some x -> Spec.Queue_spec.Item x)

let agm_stack (module R : Runtime_intf.S) =
  let module S = Agm_stack.Make (R) in
  let t = S.create () in
  fun (op : Spec.Stack_spec.op) : Spec.Stack_spec.resp ->
    match op with
    | Spec.Stack_spec.Push x ->
        S.push t x;
        Spec.Stack_spec.Ok_
    | Spec.Stack_spec.Pop -> (
        match S.pop t with None -> Spec.Stack_spec.Empty | Some x -> Spec.Stack_spec.Item x)

let rw_max_register (module R : Runtime_intf.S) =
  let module M = Rw_max_register.Make (R) in
  let t = M.create () in
  fun (op : Spec.Max_register.op) : Spec.Max_register.resp ->
    match op with
    | Spec.Max_register.WriteMax v ->
        M.write_max t v;
        Spec.Max_register.Ack
    | Spec.Max_register.ReadMax -> Spec.Max_register.Value (M.read_max t)

let rw_snapshot2 (module R : Runtime_intf.S) =
  let module S = Rw_snapshot.Make (R) in
  let t = S.create () in
  fun (op : Snap2.op) : Snap2.resp ->
    match op with
    | Snap2.Update (_, v) ->
        S.update t v;
        Snap2.Ack
    | Snap2.Scan -> Snap2.View (Array.to_list (S.scan t))

let rw_snapshot3 (module R : Runtime_intf.S) =
  let module S = Rw_snapshot.Make (R) in
  let t = S.create () in
  fun (op : Snap3.op) : Snap3.resp ->
    match op with
    | Snap3.Update (_, v) ->
        S.update t v;
        Snap3.Ack
    | Snap3.Scan -> Snap3.View (Array.to_list (S.scan t))

(* Multi-writer register from single-writer registers (Vitányi–Awerbuch
   timestamps): the classic consensus-number-1 baseline that is
   linearizable but not strongly linearizable (Helmi–Higham–Woelfel). *)
let mwmr_register (module R : Runtime_intf.S) =
  let n = R.n_procs () in
  let own = Array.init n (fun i -> R.obj ~name:(Printf.sprintf "own%d" i) (0, i, 0)) in
  let collect () = Array.map (fun o -> R.read o) own in
  fun (op : Spec.Register.op) : Spec.Register.resp ->
    match op with
    | Spec.Register.Write v ->
        let views = collect () in
        let ts = Array.fold_left (fun acc (t, _, _) -> max acc t) 0 views in
        R.access own.(R.self ()) (fun _ -> ((ts + 1, R.self (), v), ()));
        Spec.Register.Ack
    | Spec.Register.Read ->
        let views = collect () in
        let _, _, v = Array.fold_left max (min_int, min_int, 0) views in
        Spec.Register.Value v

let cas_queue (module R : Runtime_intf.S) =
  let module U =
    Cas_universal.Make
      (R)
      (struct
        type state = int list
        type op = Spec.Queue_spec.op
        type resp = Spec.Queue_spec.resp

        let init = []

        let apply s : op -> state * resp = function
          | Spec.Queue_spec.Enq x -> (s @ [ x ], Spec.Queue_spec.Ok_)
          | Spec.Queue_spec.Deq -> (
              match s with
              | [] -> ([], Spec.Queue_spec.Empty)
              | x :: r -> (r, Spec.Queue_spec.Item x))
      end)
  in
  let t = U.create ~name:"casq" () in
  fun op -> U.execute t op

let aww_one_shot_fi (module R : Runtime_intf.S) =
  let module F = Aww_fetch_inc.Make (R) in
  let t = F.create () in
  fun (op : Spec.Fetch_and_inc.op) : Spec.Fetch_and_inc.resp ->
    match op with
    | Spec.Fetch_and_inc.FetchInc -> Spec.Fetch_and_inc.Value (F.fetch_inc t)
    | Spec.Fetch_and_inc.Read -> invalid_arg "one-shot object has no read"

let aww_multishot_fi (module R : Runtime_intf.S) =
  let module F = Aww_multishot_fi.Make (R) in
  let t = F.create () in
  fun (op : Spec.Fetch_and_inc.op) : Spec.Fetch_and_inc.resp ->
    match op with
    | Spec.Fetch_and_inc.FetchInc -> Spec.Fetch_and_inc.Value (F.fetch_inc t)
    | Spec.Fetch_and_inc.Read -> Spec.Fetch_and_inc.Value (F.read t)

let tournament_ts (module R : Runtime_intf.S) =
  let module T = Tournament_ts.Make (R) in
  let t = T.create () in
  fun (op : Spec.Test_and_set.op) : Spec.Test_and_set.resp ->
    match op with
    | Spec.Test_and_set.TestAndSet -> Spec.Test_and_set.Value (T.test_and_set t)
    | Spec.Test_and_set.Read -> invalid_arg "tournament T&S is not readable"

let atomic_max_register (module R : Runtime_intf.S) =
  let module A = Atomic_objects.Make (R) in
  let t = A.Max_register.create ~name:"amax" () in
  fun (op : Spec.Max_register.op) : Spec.Max_register.resp ->
    match op with
    | Spec.Max_register.WriteMax v ->
        A.Max_register.write_max t v;
        Spec.Max_register.Ack
    | Spec.Max_register.ReadMax -> Spec.Max_register.Value (A.Max_register.read_max t)
