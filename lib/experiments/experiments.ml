(* Experiment drivers: each function regenerates one table of
   EXPERIMENTS.md (the executable counterpart of the paper's figure and
   theorems).  Used by bench/main.exe and the slin CLI. *)

let hr () = Format.printf "%s@." (String.make 78 '-')

let section title =
  hr ();
  Format.printf "%s@." title;
  hr ()

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 — every arrow verified                                  *)
(* ------------------------------------------------------------------ *)

(* One row: run the strong-linearizability game on a small workload and
   measure worst steps/operation over random schedules. *)
module E1_row (S : Spec.S) = struct
  module L = Lincheck.Make (S)

  let run ~name ~progress ~make ~workload ?max_nodes ?max_depth () =
    let prog = Harness.program ~make ~workload in
    let verdict = L.check_strong ?max_nodes ?max_depth prog in
    let m = Progress.measure ~runs:60 prog in
    Format.printf "| %-34s | %-9s | %-36s | steps/op <= %d@." name progress
      (Format.asprintf "%a" L.pp_verdict verdict)
      m.Progress.max_steps_per_op
end

let e1 () =
  section
    "E1 (Figure 1): strong linearizability of every construction, verified\n\
     exhaustively on bounded workloads; steps/op bounds over random schedules";
  let module Row_max = E1_row (Spec.Max_register) in
  Row_max.run ~name:"Thm 1: max register <- F&A" ~progress:"wait-free"
    ~make:Executors.faa_max_register
    ~workload:
      [|
        [ Spec.Max_register.WriteMax 1; Spec.Max_register.ReadMax ];
        [ Spec.Max_register.WriteMax 2 ];
        [ Spec.Max_register.ReadMax ];
      |]
    ();
  let module Row_snap = E1_row (Executors.Snap3) in
  Row_snap.run ~name:"Thm 2: snapshot <- F&A" ~progress:"wait-free" ~make:Executors.faa_snapshot3
    ~workload:
      [|
        [ Executors.Snap3.Update (0, 1); Executors.Snap3.Update (0, 2) ];
        [ Executors.Snap3.Update (1, 3) ];
        [ Executors.Snap3.Scan; Executors.Snap3.Scan ];
      |]
    ();
  let module Row_counter = E1_row (Spec.Counter) in
  Row_counter.run ~name:"Thm 3: counter <- atomic snapshot" ~progress:"wait-free"
    ~make:Executors.simple_counter_atomic_snap
    ~workload:
      [| [ Spec.Counter.Add 1 ]; [ Spec.Counter.Add 2 ]; [ Spec.Counter.Read; Spec.Counter.Read ] |]
    ();
  Row_counter.run ~name:"Thm 4: counter <- snapshot (Alg 1)" ~progress:"wait-free"
    ~make:Executors.simple_counter
    ~workload:
      [| [ Spec.Counter.Add 1 ]; [ Spec.Counter.Add 2 ]; [ Spec.Counter.Read; Spec.Counter.Read ] |]
    ();
  let module Row_uset = E1_row (Simple_instances.Union_set_spec) in
  Row_uset.run ~name:"Thm 4: union set <- snapshot" ~progress:"wait-free"
    ~make:Executors.union_set
    ~workload:
      Simple_instances.Union_set_type.
        [| [ Insert 1 ]; [ Insert 2 ]; [ Contains 1; Contains 2 ] |]
    ();
  let module Row_clock = E1_row (Spec.Logical_clock) in
  Row_clock.run ~name:"Thm 4: logical clock <- snapshot" ~progress:"wait-free"
    ~make:Executors.simple_logical_clock
    ~workload:
      [|
        [ Spec.Logical_clock.Tick ];
        [ Spec.Logical_clock.Tick ];
        [ Spec.Logical_clock.Read; Spec.Logical_clock.Read ];
      |]
    ();
  let module Row_stmax = E1_row (Spec.Max_register) in
  Row_stmax.run ~name:"Thm 4: max register <- snapshot" ~progress:"wait-free"
    ~make:Executors.simple_max_register
    ~workload:
      [|
        [ Spec.Max_register.WriteMax 2 ];
        [ Spec.Max_register.WriteMax 1 ];
        [ Spec.Max_register.ReadMax; Spec.Max_register.ReadMax ];
      |]
    ();
  let module Row_ts = E1_row (Spec.Test_and_set) in
  Row_ts.run ~name:"Thm 5: readable T&S <- T&S" ~progress:"wait-free" ~make:Executors.readable_ts
    ~workload:
      [|
        [ Spec.Test_and_set.TestAndSet ];
        [ Spec.Test_and_set.TestAndSet ];
        [ Spec.Test_and_set.Read; Spec.Test_and_set.Read ];
      |]
    ();
  let module Row_msts = E1_row (Spec.Multishot_test_and_set) in
  Row_msts.run ~name:"Thm 6: multi-shot T&S <- maxreg+rT&S" ~progress:"wait-free"
    ~make:Executors.multishot_ts_atomic
    ~workload:
      [|
        [ Spec.Multishot_test_and_set.TestAndSet; Spec.Multishot_test_and_set.Reset ];
        [ Spec.Multishot_test_and_set.TestAndSet ];
        [ Spec.Multishot_test_and_set.Read ];
      |]
    ();
  Row_msts.run ~name:"Cor 7: multi-shot T&S <- T&S+F&A" ~progress:"wait-free"
    ~make:Executors.multishot_ts_composed
    ~workload:
      [|
        [ Spec.Multishot_test_and_set.TestAndSet; Spec.Multishot_test_and_set.Reset ];
        [ Spec.Multishot_test_and_set.TestAndSet ];
      |]
    ~max_nodes:2_000_000 ();
  let module Row_fi = E1_row (Spec.Fetch_and_inc) in
  Row_fi.run ~name:"Thm 9: fetch&inc <- T&S" ~progress:"lock-free" ~make:Executors.ts_fetch_inc
    ~workload:
      [|
        [ Spec.Fetch_and_inc.FetchInc ];
        [ Spec.Fetch_and_inc.FetchInc ];
        [ Spec.Fetch_and_inc.Read ];
      |]
    ();
  let module Row_set = E1_row (Spec.Set_obj) in
  Row_set.run ~name:"Thm 10: set <- T&S (Alg 2)" ~progress:"lock-free"
    ~make:Executors.ts_set_atomic_fi
    ~workload:[| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Take ] |]
    ();
  Row_set.run ~name:"Thm 10: set <- T&S (full stack)" ~progress:"lock-free"
    ~make:Executors.ts_set_full
    ~workload:[| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Take ] |]
    ~max_nodes:2_000_000 ()

(* ------------------------------------------------------------------ *)
(* E2: the other side — refutations of the baselines                   *)
(* ------------------------------------------------------------------ *)

module E2_row (S : Spec.S) = struct
  module L = Lincheck.Make (S)
  module W = Witness.Make (S)

  (* [reg] is the object's name in [Registry]; refuted rows with a
     registry name get a minimized-witness column ("w ORIG>SHRUNK"
     certificate step counts) and, when [witness_dir] is set, a
     slin-witness/v1 artifact at DIR/REG.json replayable with
     `slin explain`. *)
  let run ~name ~expect ~make ~workload ?reg ?witness_dir ?max_nodes ?max_depth ?(jobs = 1)
      ?profiler ?coverage () =
    let prog = Harness.program ~make ~workload in
    let lin =
      match Harness.find_non_linearizable ~check:L.is_linearizable ~runs:150 prog with
      | None -> "linearizable (150 random runs)"
      | Some seed -> Printf.sprintf "NOT LINEARIZABLE (seed %d)!" seed
    in
    (* Unique-worlds delta for this row: coverage is shared across the
       whole E2 pass, so the column counts worlds no earlier row
       reached — cumulative novelty, deterministic at -j 1. *)
    let unique_before =
      match coverage with Some c -> (Coverage.stats c).Coverage.unique | None -> 0
    in
    let verdict =
      fst (L.check_strong_stats ?max_nodes ?max_depth ~jobs ?profiler ?coverage prog)
    in
    let coverage_col =
      match coverage with
      | None -> ""
      | Some c ->
          Printf.sprintf " | u +%d" ((Coverage.stats c).Coverage.unique - unique_before)
    in
    let forensics kind schedule nodes reg =
      match W.extract ?max_nodes ?max_depth prog ~kind ~schedule with
      | None -> "w ?"
      | Some shape ->
          let original_len = Witness.size shape in
          let shape = W.shrink prog shape in
          (match witness_dir with
          | None -> ()
          | Some dir ->
              let json =
                W.to_json prog ~object_name:reg ~spec_name:name
                  ~max_nodes:(Option.value max_nodes ~default:200_000)
                  ~max_depth ~nodes ~original_len shape
              in
              let path = Filename.concat dir (reg ^ ".json") in
              Out_channel.with_open_text path (fun oc ->
                  output_string oc (Obs_json.to_string json);
                  output_char oc '\n'));
          Printf.sprintf "w %d>%d" original_len (Witness.size shape)
    in
    let witness_col =
      match (verdict, reg) with
      | L.Not_linearizable { schedule }, Some reg ->
          forensics Witness.Not_linearizable schedule None reg
      | L.Not_strongly_linearizable { witness; nodes }, Some reg ->
          forensics Witness.Not_strongly_linearizable witness (Some nodes) reg
      | _ -> "-"
    in
    Format.printf "| %-34s | %-30s | %-36s | %-7s%s | expect: %s@." name lin
      (Format.asprintf "%a" L.pp_verdict verdict)
      witness_col coverage_col expect
end

let e2 ?witness_dir ?(jobs = 1) ?profiler ?coverage ~quick () =
  section
    "E2: baselines from the same primitives are linearizable but NOT\n\
     strongly linearizable (mechanical refutations; cf. Thm 17 and GHW/HHW)";
  let module Row_reg = E2_row (Spec.Register) in
  Row_reg.run ~name:"MWMR register <- SWMR registers" ~expect:"refuted (HHW PODC'12)"
    ~make:Executors.mwmr_register
    ~workload:
      [|
        [ Spec.Register.Write 1 ];
        [ Spec.Register.Write 2 ];
        [ Spec.Register.Read; Spec.Register.Read ];
      |]
    ~reg:"mwmr-register" ?witness_dir ~max_nodes:2_000_000 ~jobs ?profiler ?coverage ();
  let module Row_max = E2_row (Spec.Max_register) in
  Row_max.run ~name:"RW max register <- registers" ~expect:"refuted (DW DISC'15)"
    ~make:Executors.rw_max_register
    ~workload:
      [|
        [ Spec.Max_register.WriteMax 1 ];
        [ Spec.Max_register.WriteMax 2 ];
        [ Spec.Max_register.ReadMax; Spec.Max_register.ReadMax ];
      |]
    ~reg:"rw-max" ?witness_dir ~max_nodes:2_000_000 ~jobs ?profiler ?coverage ();
  if not quick then begin
    let module Row_q = E2_row (Spec.Queue_spec) in
    Row_q.run ~name:"HW queue <- F&A+swap" ~expect:"refuted (Thm 17)" ~make:Executors.hw_queue
      ~workload:
        [|
          [ Spec.Queue_spec.Enq 1 ];
          [ Spec.Queue_spec.Enq 2 ];
          [ Spec.Queue_spec.Deq ];
          [ Spec.Queue_spec.Deq ];
        |]
      ~reg:"hw-queue" ?witness_dir ~max_nodes:3_000_000 ~max_depth:22 ~jobs ?profiler ?coverage ();
    let module Row_s = E2_row (Spec.Stack_spec) in
    Row_s.run ~name:"AGM stack <- F&A+swap" ~expect:"refuted (Thm 17, AE DISC'19)"
      ~make:Executors.agm_stack
      ~workload:
        [|
          [ Spec.Stack_spec.Push 1 ];
          [ Spec.Stack_spec.Push 2 ];
          [ Spec.Stack_spec.Pop ];
          [ Spec.Stack_spec.Pop ];
        |]
      ~reg:"agm-stack" ?witness_dir ~max_nodes:5_000_000 ~max_depth:24 ~jobs ?profiler ?coverage ();
    (* The AAD snapshot — GHW's original counterexample object.  Its
       embedded-scan helping makes the game tree explode.  The incremental
       engine settles this workload exhaustively (~345k nodes, previously
       Out_of_budget at 150k): the bounded game IS won here, so the known
       refutation (GHW STOC'11) needs a larger workload — more racing
       updates against the double-collect — which remains beyond exhaustive
       reach; the row documents that honestly. *)
    let module Row_sn = E2_row (Executors.Snap2) in
    Row_sn.run ~name:"AAD snapshot <- SWMR registers"
      ~expect:"SL at this workload; GHW refutation needs larger one"
      ~make:Executors.rw_snapshot2
      ~workload:
        [|
          [ Executors.Snap2.Update (0, 1); Executors.Snap2.Update (0, 2) ];
          [ Executors.Snap2.Scan; Executors.Snap2.Scan ];
        |]
      ~max_nodes:1_500_000 ~max_depth:18 ~jobs ?profiler ?coverage ()
  end;
  (* FINDING (DESIGN.md §6): Algorithm 2's EMPTY-returning take breaks
     prefix-closure once two puts race a take — the checker refutes
     Theorem 10's own setting (distinct items, atomic bases).  The E1
     rows verify the fragment their workloads can reach; this row pins
     the gap. *)
  let module Row_set = E2_row (Spec.Set_obj) in
  Row_set.run ~name:"Alg 2 set, EMPTY race (finding)" ~expect:"refuted — gap in Thm 10 proof"
    ~make:Executors.ts_set_atomic_fi
    ~workload:[| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Put 2 ]; [ Spec.Set_obj.Take ] |]
    ~reg:"set-empty-race" ?witness_dir ~max_nodes:4_000_000 ~jobs ?profiler ?coverage ();
  (* The naive tournament n-process T&S from 2-process T&S: not even
     linearizable — a loser can complete before the eventual winner
     invokes.  Why Afek-Gafni-Tromp-Vitanyi needed more than a
     tournament, and a negative control for the checker. *)
  let module Row_tts = E2_row (Spec.Test_and_set) in
  Row_tts.run ~name:"tournament T&S <- 2-proc T&S" ~expect:"NOT linearizable (AGTV context)"
    ~make:Executors.tournament_ts
    ~workload:(Array.make 4 [ Spec.Test_and_set.TestAndSet ])
    ~reg:"tournament-ts" ?witness_dir ~max_nodes:2_000_000 ~jobs ?profiler ?coverage ();
  (* Multi-shot AWW fetch&inc with a cached-hint read: the regressing
     hint makes Read non-linearizable outright — the second negative
     control, and the reason Theorem 9 re-scans instead of caching. *)
  let module Row_afi = E2_row (Spec.Fetch_and_inc) in
  Row_afi.run ~name:"AWW multi-shot F&I, hint read" ~expect:"NOT linearizable (stale hint)"
    ~make:Executors.aww_multishot_fi
    ~workload:
      [|
        [ Spec.Fetch_and_inc.FetchInc ];
        [ Spec.Fetch_and_inc.FetchInc ];
        [ Spec.Fetch_and_inc.Read ];
      |]
    ~reg:"aww-multishot-fi" ?witness_dir ~max_nodes:2_000_000 ~jobs ?profiler ?coverage ();
  (* Positive controls: implementations that must pass. *)
  let module Row_fi = E2_row (Spec.Fetch_and_inc) in
  Row_fi.run ~name:"AWW one-shot fetch&inc <- T&S" ~expect:"verified (paper, Sec 1)"
    ~make:Executors.aww_one_shot_fi
    ~workload:
      [|
        [ Spec.Fetch_and_inc.FetchInc ];
        [ Spec.Fetch_and_inc.FetchInc ];
        [ Spec.Fetch_and_inc.FetchInc ];
      |]
    ~jobs ?profiler ?coverage ();
  let module Row_cq = E2_row (Spec.Queue_spec) in
  Row_cq.run ~name:"CAS universal queue" ~expect:"verified (universal primitive)"
    ~make:Executors.cas_queue
    ~workload:
      [|
        [ Spec.Queue_spec.Enq 1 ];
        [ Spec.Queue_spec.Enq 2 ];
        [ Spec.Queue_spec.Deq; Spec.Queue_spec.Deq ];
      |]
    ~max_nodes:2_000_000 ~max_depth:30 ~jobs ?profiler ?coverage ()

(* ------------------------------------------------------------------ *)
(* E3: Lemma 12 — k-set agreement from strongly-linearizable objects   *)
(* ------------------------------------------------------------------ *)

let e3_row ~name ~make ~ordering ~inputs ~trials ~crash_prob ~seed =
  let stats = Agreement.run_many ~make ~ordering ~inputs ~trials ~crash_prob ~seed () in
  let n = Array.length inputs in
  Format.printf "| %-34s | n=%d k=%d | %a@." name n
    (ordering.K_ordering.degree ~n)
    Agreement.pp_stats stats

let e3 () =
  section
    "E3 (Lemma 12): Algorithm B solves k-set agreement from strongly-\n\
     linearizable k-ordering objects (random schedules, some with crashes)";
  let i3 = [| 100; 200; 300 |] and i5 = [| 1; 2; 3; 4; 5 |] in
  e3_row ~name:"queue (atomic)" ~make:K_ordering.atomic_queue ~ordering:K_ordering.queue_witness
    ~inputs:i3 ~trials:1000 ~crash_prob:0.0 ~seed:7;
  e3_row ~name:"queue (atomic, crashes)" ~make:K_ordering.atomic_queue
    ~ordering:K_ordering.queue_witness ~inputs:i3 ~trials:1000 ~crash_prob:0.5 ~seed:8;
  e3_row ~name:"stack (atomic)" ~make:K_ordering.atomic_stack ~ordering:K_ordering.stack_witness
    ~inputs:i3 ~trials:1000 ~crash_prob:0.0 ~seed:9;
  e3_row ~name:"queue with multiplicity" ~make:K_ordering.atomic_queue
    ~ordering:K_ordering.queue_multiplicity_witness ~inputs:i3 ~trials:500 ~crash_prob:0.0
    ~seed:10;
  e3_row ~name:"1-stuttering queue" ~make:K_ordering.atomic_queue
    ~ordering:(K_ordering.stuttering_queue_witness ~m:1)
    ~inputs:i3 ~trials:500 ~crash_prob:0.0 ~seed:11;
  e3_row ~name:"1-stuttering stack" ~make:K_ordering.atomic_stack
    ~ordering:(K_ordering.stuttering_stack_witness ~m:1)
    ~inputs:i3 ~trials:500 ~crash_prob:0.0 ~seed:12;
  e3_row ~name:"2-ooo queue (n=5 > 2k)" ~make:(K_ordering.atomic_ooo_queue ~k:2)
    ~ordering:(K_ordering.ooo_queue_witness ~k:2)
    ~inputs:i5 ~trials:1000 ~crash_prob:0.0 ~seed:13;
  Format.printf "(expected: zero violations everywhere; max-distinct reaches k)@."

(* ------------------------------------------------------------------ *)
(* E4: the impossibility mechanism — B over a non-SL queue disagrees   *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section
    "E4 (Thm 17 mechanism): Algorithm B over the Herlihy-Wing queue\n\
     (linearizable, NOT strongly linearizable) loses agreement";
  let i3 = [| 100; 200; 300 |] in
  e3_row ~name:"HW queue <- F&A+swap" ~make:(K_ordering.hw_queue ~capacity:3)
    ~ordering:K_ordering.queue_witness ~inputs:i3 ~trials:4000 ~crash_prob:0.0 ~seed:7;
  e3_row ~name:"HW queue (crashes)" ~make:(K_ordering.hw_queue ~capacity:3)
    ~ordering:K_ordering.queue_witness ~inputs:i3 ~trials:4000 ~crash_prob:0.5 ~seed:11;
  e3_row ~name:"RW queue w/ multiplicity [11]" ~make:Rw_mult_queue.instance
    ~ordering:K_ordering.queue_multiplicity_witness ~inputs:i3 ~trials:4000 ~crash_prob:0.0
    ~seed:5;
  e3_row ~name:"RW stack w/ multiplicity [11]" ~make:Rw_mult_queue.stack_instance
    ~ordering:K_ordering.stack_multiplicity_witness ~inputs:i3 ~trials:4000 ~crash_prob:0.0
    ~seed:9;
  Format.printf
    "(expected: agreement violations > 0 — the adversary exploits the\n\
     unfixed linearization order; contrast with E3's zero)@."

(* ------------------------------------------------------------------ *)
(* E5: width of the wide fetch&add register (paper Sec 6)              *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* E8: checker scalability ablation                                     *)
(* ------------------------------------------------------------------ *)

(* How the strong-linearizability game scales with workload size — the
   practical limit of exhaustive verification (and why E2's AAD row
   needed the incremental engine to settle).  Rows grow the Theorem 1
   workload. *)
let e8 () =
  section "E8 (ablation): cost of the strong-linearizability game vs workload";
  let module L = Lincheck.Make (Spec.Max_register) in
  Format.printf "| %-34s | %-12s | %-10s | seconds@." "workload (Thm 1 max register)" "verdict"
    "nodes";
  List.iter
    (fun (label, workload) ->
      let t0 = Unix.gettimeofday () in
      let v = L.check_strong ~max_nodes:3_000_000 (Harness.program ~make:Executors.faa_max_register ~workload) in
      let dt = Unix.gettimeofday () -. t0 in
      let verdict, nodes =
        match v with
        | L.Strongly_linearizable { nodes } -> ("SL", nodes)
        | L.Not_linearizable _ -> ("NOT-LIN", -1)
        | L.Not_strongly_linearizable { nodes; _ } -> ("NOT-SL", nodes)
        | L.Out_of_budget { nodes; _ } -> ("budget", nodes)
      in
      Format.printf "| %-34s | %-12s | %-10d | %.2f@." label verdict nodes dt)
    [
      ("2 procs x 1 op", [| [ Spec.Max_register.WriteMax 1 ]; [ Spec.Max_register.ReadMax ] |]);
      ( "2 procs x 2 ops",
        [|
          [ Spec.Max_register.WriteMax 1; Spec.Max_register.ReadMax ];
          [ Spec.Max_register.WriteMax 2; Spec.Max_register.ReadMax ];
        |] );
      ( "3 procs x 2 ops",
        [|
          [ Spec.Max_register.WriteMax 1; Spec.Max_register.ReadMax ];
          [ Spec.Max_register.WriteMax 2; Spec.Max_register.ReadMax ];
          [ Spec.Max_register.ReadMax; Spec.Max_register.WriteMax 3 ];
        |] );
      ( "4 procs x 2 ops",
        [|
          [ Spec.Max_register.WriteMax 1; Spec.Max_register.ReadMax ];
          [ Spec.Max_register.WriteMax 2; Spec.Max_register.ReadMax ];
          [ Spec.Max_register.ReadMax; Spec.Max_register.WriteMax 3 ];
          [ Spec.Max_register.WriteMax 4; Spec.Max_register.ReadMax ];
        |] );
    ];
  Format.printf
    "(shape: node count grows with the multinomial of interleavings; one-step\n\
     operations keep Theorem 1 tractable at sizes where multi-step objects\n\
     explode — compare E2's AAD snapshot row)@."

let e5 () =
  section
    "E5 (Sec 6): bits used by the single wide fetch&add register\n\
     (max register: unary per process; snapshot: binary per process)";
  Format.printf "| %-12s | %-10s | %-18s | %-18s@." "n processes" "max value" "maxreg bits"
    "snapshot bits";
  List.iter
    (fun (n, v) ->
      (* Run n processes, each writing 1..v round-robin, in the simulator. *)
      let max_bits = ref 0 and snap_bits = ref 0 in
      let prog : (string, string) Sim.program =
        {
          procs = n;
          boot =
            (fun w ->
              let module R = (val Sim.runtime w) in
              let module M = Faa_max_register.Make (R) in
              let module S = Faa_snapshot.Make (R) in
              let m = M.create () and s = S.create () in
              for p = 0 to n - 1 do
                Sim.spawn w ~proc:p (fun () ->
                    for x = 1 to v do
                      M.write_max m x;
                      S.update s x
                    done;
                    max_bits := max !max_bits (M.width_bits m);
                    snap_bits := max !snap_bits (S.width_bits s))
              done);
        }
      in
      ignore (Sim.run_to_completion prog);
      Format.printf "| %-12d | %-10d | %-18d | %-18d@." n v !max_bits !snap_bits)
    [ (2, 8); (2, 64); (4, 8); (4, 64); (8, 64); (16, 64); (4, 1024) ];
  Format.printf
    "(expected shape: maxreg ~ n*v bits — unary; snapshot ~ n*log2(v) bits —\n\
     binary; both exceed a machine word quickly, cf. the paper's open\n\
     question about O(log n)-bit implementations)@."

(* ------------------------------------------------------------------ *)
(* E7: the adversary — crashes and progress properties                  *)
(* ------------------------------------------------------------------ *)

(* One row per construction, three adversarial checks:
   - the strong-linearizability game replayed on the execution tree
     extended with crash edges (at most one crash per branch), which
     must agree with the crash-free verdict (crash edges add no trace
     events — the column cross-validates that equivalence mechanically);
   - an exhaustive wait-freedom bound: worst steps/operation over every
     schedule of the workload ("exhaustive" only when the whole tree was
     walked — a truncated walk establishes nothing);
   - a lock-freedom lasso search: drive every candidate process subset
     and look for a repeating no-completion cycle, certified as a
     [Livelock] witness. *)
module E7_row (S : Spec.S) = struct
  module L = Lincheck.Make (S)
  module A = Adversary.Make (S)

  let run ~name ~make ~workload ?max_nodes ?max_depth ?wf_max_nodes () =
    let prog = Harness.program ~make ~workload in
    let v = L.check_strong ?max_nodes ?max_depth prog in
    let cv = A.check_strong_crashes ?max_nodes ?max_depth ~crashes:1 prog in
    let crash_col =
      let tag, nodes =
        match cv with
        | A.Crash_strongly_linearizable { nodes } -> ("SL", nodes)
        | A.Crash_not_linearizable _ -> ("NOT-LIN", -1)
        | A.Crash_not_strongly_linearizable { nodes; _ } -> ("NOT-SL", nodes)
        | A.Crash_inconclusive { nodes; _ } -> ("budget", nodes)
      in
      let agrees =
        match (v, cv) with
        | L.Strongly_linearizable _, A.Crash_strongly_linearizable _
        | L.Not_linearizable _, A.Crash_not_linearizable _
        | L.Not_strongly_linearizable _, A.Crash_not_strongly_linearizable _ ->
            "agrees"
        | _, A.Crash_inconclusive _ -> "-"
        | _ -> "DISAGREES"
      in
      if nodes < 0 then Printf.sprintf "%s (%s)" tag agrees
      else Printf.sprintf "%s %dn (%s)" tag nodes agrees
    in
    let wf = A.wait_free_bound ?max_nodes:wf_max_nodes ?max_depth prog in
    let wf_col =
      if A.wait_free_established wf then
        Printf.sprintf "steps/op <= %d exhaustive" wf.A.wf_max_steps_per_op
      else
        Printf.sprintf "steps/op >= %d (%s)" wf.A.wf_max_steps_per_op
          (if wf.A.wf_budget_hit then "budget" else "truncated")
    in
    let lf = A.find_livelock prog in
    let lf_col =
      match lf.A.lf_livelock with
      | Some shape -> Printf.sprintf "LIVELOCK (%d-step lasso)" (Witness.size shape)
      | None -> Printf.sprintf "no lasso (%d adversaries)" lf.A.lf_candidates
    in
    Format.printf "| %-34s | %-22s | %-25s | %s@." name crash_col wf_col lf_col
end

(* One row per k-ordering object: Algorithm B under every crash plan of
   at most (k-1) processes (or [max_crashes] when forced higher) crossed
   with a canonical deterministic schedule family. *)
let e7_sweep ~name ~make ~ordering ~inputs ~k ?max_crashes ?(jobs = 1) () =
  let r = Adversary.agreement_crash_sweep ~make ~ordering ~inputs ~k ?max_crashes ~jobs () in
  Format.printf "| %-34s | %a@." name Adversary.pp_sweep_report r;
  List.iteri
    (fun i s -> if i < 3 then Format.printf "    ! %s@." s)
    r.Adversary.sw_violations;
  let extra = List.length r.Adversary.sw_violations - 3 in
  if extra > 0 then Format.printf "    ! ... and %d more@." extra

let e7 ?(jobs = 1) () =
  section
    "E7 (adversary): the SL game on the crash-extended tree (<= 1 crash),\n\
     exhaustive wait-freedom bounds, and lock-freedom lasso search";
  Format.printf "| %-34s | %-22s | %-25s | %s@." "construction" "SL + crashes" "wait-freedom"
    "lock-freedom";
  let module Row_max = E7_row (Spec.Max_register) in
  Row_max.run ~name:"Thm 1: max register <- F&A" ~make:Executors.faa_max_register
    ~workload:
      [|
        [ Spec.Max_register.WriteMax 1; Spec.Max_register.ReadMax ];
        [ Spec.Max_register.WriteMax 2 ];
        [ Spec.Max_register.ReadMax ];
      |]
    ();
  let module Row_counter = E7_row (Spec.Counter) in
  Row_counter.run ~name:"Thm 3: counter <- atomic snapshot" ~make:Executors.simple_counter_atomic_snap
    ~workload:
      [| [ Spec.Counter.Add 1 ]; [ Spec.Counter.Add 2 ]; [ Spec.Counter.Read; Spec.Counter.Read ] |]
    ();
  let module Row_ts = E7_row (Spec.Test_and_set) in
  Row_ts.run ~name:"Thm 5: readable T&S <- T&S" ~make:Executors.readable_ts
    ~workload:
      [|
        [ Spec.Test_and_set.TestAndSet ];
        [ Spec.Test_and_set.TestAndSet ];
        [ Spec.Test_and_set.Read; Spec.Test_and_set.Read ];
      |]
    ();
  let module Row_fi = E7_row (Spec.Fetch_and_inc) in
  Row_fi.run ~name:"Thm 9: fetch&inc <- T&S" ~make:Executors.ts_fetch_inc
    ~workload:
      [|
        [ Spec.Fetch_and_inc.FetchInc ];
        [ Spec.Fetch_and_inc.FetchInc ];
        [ Spec.Fetch_and_inc.Read ];
      |]
    ();
  let module Row_set = E7_row (Spec.Set_obj) in
  Row_set.run ~name:"Thm 10: set <- T&S (Alg 2)" ~make:Executors.ts_set_atomic_fi
    ~workload:[| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Take ] |]
    ();
  let module Row_reg = E7_row (Spec.Register) in
  Row_reg.run ~name:"MWMR register (E2 refutation)" ~make:Executors.mwmr_register
    ~workload:
      [|
        [ Spec.Register.Write 1 ];
        [ Spec.Register.Write 2 ];
        [ Spec.Register.Read; Spec.Register.Read ];
      |]
    ~max_nodes:2_000_000 ();
  let module Row_q = E7_row (Spec.Queue_spec) in
  Row_q.run ~name:"HW queue (E2 refutation)" ~make:Executors.hw_queue
    ~workload:[| [ Spec.Queue_spec.Enq 1 ]; [ Spec.Queue_spec.Deq ]; [ Spec.Queue_spec.Deq ] |]
    ~max_nodes:400_000 ~max_depth:18 ~wf_max_nodes:400_000 ();
  Format.printf
    "(expected: every crash-extended verdict agrees with the crash-free one;\n\
     wait-free constructions get exhaustive bounds; the HW queue's spinning\n\
     dequeue yields a certified livelock lasso and a truncated walk)@.";
  hr ();
  Format.printf
    "E7b: Algorithm B under every <=(k-1)-crash plan x deterministic schedules@.";
  hr ();
  let i3 = [| 100; 200; 300 |] and i5 = [| 1; 2; 3; 4; 5 |] in
  e7_sweep ~name:"queue (atomic), k=1, no crashes" ~make:K_ordering.atomic_queue
    ~ordering:K_ordering.queue_witness ~inputs:i3 ~k:1 ~jobs ();
  e7_sweep ~name:"queue (atomic), forced 1 crash" ~make:K_ordering.atomic_queue
    ~ordering:K_ordering.queue_witness ~inputs:i3 ~k:1 ~max_crashes:1 ~jobs ();
  e7_sweep ~name:"stack (atomic), forced 1 crash" ~make:K_ordering.atomic_stack
    ~ordering:K_ordering.stack_witness ~inputs:i3 ~k:1 ~max_crashes:1 ~jobs ();
  e7_sweep ~name:"2-ooo queue (n=5), <=1 crash" ~make:(K_ordering.atomic_ooo_queue ~k:2)
    ~ordering:(K_ordering.ooo_queue_witness ~k:2)
    ~inputs:i5 ~k:2 ~jobs ();
  e7_sweep ~name:"HW queue, forced 1 crash" ~make:(K_ordering.hw_queue ~capacity:3)
    ~ordering:K_ordering.queue_witness ~inputs:i3 ~k:1 ~max_crashes:1 ~jobs ();
  Format.printf
    "(expected: zero violations for the atomic objects even with one forced\n\
     crash — Lemma 12 is crash-tolerant; the HW queue rows may violate)@."

(* The canonical batch for `slin serve --batch` smoke runs: a spread of
   registry objects plus deliberate duplicates (coalescing), one
   already-answered repeat (memo across batches), a fuzz row and a
   coverage row.  Deadlines are generous — CI shares cores with the
   whole matrix, and a slow runner must not turn a done row into a
   deadline row and break the deterministic baseline.  [quick] trims
   node budgets for smoke tests. *)
let serve_jobs ?(quick = false) () =
  let nodes = if quick then 60_000 else 400_000 in
  let line kind id obj extra =
    Obs_json.to_string
      (Obs_json.Assoc
         ([
            ("id", Obs_json.String id);
            ("kind", Obs_json.String kind);
            ("object", Obs_json.String obj);
            ("max_nodes", Obs_json.Int nodes);
            ("deadline_ms", Obs_json.Int 600_000);
          ]
         @ extra))
  in
  [
    line "check" "check-faa-max" "faa-max" [];
    line "check" "check-counter" "counter" [];
    line "check" "check-hw-queue" "hw-queue" [];
    line "check" "check-hw-queue-dup" "hw-queue" [];
    (* coalesces *)
    line "check" "check-set-empty-race" "set-empty-race" [];
    line "fuzz" "fuzz-hw-queue" "hw-queue"
      [ ("seed", Obs_json.Int 1); ("runs", Obs_json.Int (if quick then 100 else 400)) ];
    line "coverage" "coverage-counter" "counter" [];
    line "check" "check-faa-max-dup" "faa-max" [];
    (* coalesces *)
    line "check" "check-unknown" "no-such-object" [];
    (* rejected *)
  ]
