(* A multi-shot fetch&increment in the style of Afek–Weisberger–Weisman
   [4, 5]: the test&set sweep of [Aww_fetch_inc], made multi-shot by
   dropping the one-shot guard, plus the "obvious" O(1) read — a shared
   hint register that every winner publishes its index into after
   winning its cell.

   The hint is where it goes wrong.  Two concurrent fetch&incs can win
   cells i < j and then publish in the opposite order, so the hint
   regresses from j to i; a read taken after both have returned then
   reports a counter value that contradicts the two completed
   operations.  The object is NOT linearizable (not merely not strongly
   linearizable) — which is exactly why Theorem 9's readable
   fetch&increment re-scans the test&set cells on every read instead of
   caching a hint.  It serves the checker as a negative control whose
   refutation is a single bad execution rather than a branch in the
   execution tree. *)

module Make (R : Runtime_intf.S) : sig
  type t

  val create : ?name:string -> unit -> t

  val fetch_inc : t -> int
  (** The value fetched; the counter then reads one higher. *)

  val read : t -> int
  (** Current counter value, from the hint register: O(1), wrong. *)
end = struct
  module P = Prim.Make (R)

  type t = { cells : P.Test_and_set.t Inf_array.t; hint : int R.obj }

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "awwm." in
    {
      cells =
        Inf_array.create (fun i ->
            P.Test_and_set.make ~name:(Printf.sprintf "%sts%d" prefix i) ());
      hint = R.obj ~name:(prefix ^ "hint") 0;
    }

  let fetch_inc t =
    let rec go i =
      if P.Test_and_set.test_and_set (Inf_array.get t.cells i) = 0 then i else go (i + 1)
    in
    let i = go 1 in
    R.access ~info:"hint-write" t.hint (fun _ -> (i, ()));
    i

  let read t = R.read ~info:"hint-read" t.hint + 1
end
