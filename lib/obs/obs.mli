(** Lightweight counters, gauges and timers.

    A global registry of named instruments.  Every mutating operation is
    gated on {!enabled} (default [false]), so instrumented hot paths pay
    a single load-and-branch when observability is off — instrumentation
    must never perturb the checker's deterministic exploration or the
    benchmarks.  Creation ({!counter}, {!gauge}, {!timer}) always
    registers, so a {!snapshot} lists every instrument even if untouched. *)

val enabled : bool ref
(** Master switch for all instruments (default [false]). *)

val now_ns : unit -> int
(** Wall-clock time in nanoseconds (from [Unix.gettimeofday]). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge

val set : gauge -> float -> unit

val observe_max : gauge -> float -> unit
(** Keep the maximum of all observed values (frontier depths, queue
    lengths, ...). *)

val gauge_value : gauge -> float

(** {1 Timers} *)

type timer

val timer : string -> timer
val start : timer -> unit

val stop : timer -> unit
(** Accumulates elapsed time since the matching {!start}; a [stop]
    without a running [start] is a no-op. *)

val time : timer -> (unit -> 'a) -> 'a
(** [time t f] brackets [f] with {!start}/{!stop} (exception-safe). *)

val timer_total_ns : timer -> int
val timer_samples : timer -> int

(** {1 Registry} *)

val reset : unit -> unit
(** Zero every registered instrument. *)

val snapshot : unit -> (string * Obs_json.t) list
(** All registered instruments in registration order: counters as [Int],
    gauges as [Float], timers as [{total_ns; samples}]. *)

(** {1 Filesystem} *)

val ensure_parent_dir : string -> unit
(** Create the parent directory of [path] (and any missing ancestors)
    so a subsequent [open_out path] cannot fail with [Sys_error] on a
    missing directory.  Existing directories and empty/current parents
    are left alone; creation races are tolerated. *)
