type direction = Higher_better | Lower_better | Neutral

let has_suffix s suf =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

(* Only scale-free ratio metrics are directional: throughput and
   utilization up is good, per-op latency down is good.  Raw accumulators
   (node counts, kill counts, per-phase and wall nanoseconds) are
   neutral — reported, never gated — because absolute times jitter by
   large factors across machines and a tiny baseline (a few us of idle)
   turns any absolute wobble into a huge percentage. *)
(* [unique_ratio] (coverage: unique worlds per observation) is matched
   by exact name, not a "_ratio" suffix rule: [conflict_ratio] is also a
   ratio but has no good direction — a workload seeing more conflicts is
   neither better nor worse. *)
(* [completed_ratio] (serve: requests answered with a verdict or a
   structured inconclusive, over all requests) is a scale-free service
   health ratio: down means more sheds/failures per request. *)
let has_prefix s pre =
  let n = String.length s and m = String.length pre in
  n >= m && String.sub s 0 m = pre

(* [speedup*] metrics (e.g. the engine's [speedup_j4_over_j1]) are
   already scale-free ratios of two throughputs measured on the same
   machine in the same run, so they gate cleanly: down means the
   parallel engine stopped scaling. *)
(* Node counts were neutral until the engine grew partial-order
   reduction (PR 10): a reduced run's [nodes_total] / [nodes_per_verdict]
   are exact counts of the same deterministic exploration, so on a
   fixed benchmark "more nodes for the same verdict" is precisely the
   regression the reduction exists to prevent.  [reduction_ratio]
   (unreduced nodes over reduced nodes) gates the other way: down means
   the reduction stopped pruning. *)
let direction_of_metric m =
  if has_suffix m "_per_s" || has_suffix m "_per_sec" || m = "utilization" then Higher_better
  else if m = "unique_ratio" || m = "completed_ratio" then Higher_better
  else if has_prefix m "speedup" || has_suffix m "_speedup" then Higher_better
  else if m = "reduction_ratio" || has_suffix m "_reduction_ratio" then Higher_better
  else if m = "ns_per_op" then Lower_better
  else if m = "nodes_total" || m = "nodes_per_verdict" then Lower_better
  else Neutral

type row = { row_name : string; row_metric : string; row_value : float }

(* ---------------- flattening ---------------- *)

let num j = Obs_json.to_float j

let bench_rows doc =
  match Obs_json.member "results" doc with
  | Some (Obs_json.List rs) ->
      let row r =
        let open Obs_json in
        match (member "name" r, member "metric" r, member "value" r) with
        | Some (String name), Some (String metric), Some v -> (
            match num v with
            | Some value -> Ok { row_name = name; row_metric = metric; row_value = value }
            | None -> Error (Printf.sprintf "result %S: value is not a number" name))
        | _ -> Error "malformed result row (need name/metric/value)"
      in
      List.fold_left
        (fun acc r ->
          match (acc, row r) with
          | Error _, _ -> acc
          | _, Error e -> Error e
          | Ok rows, Ok x -> Ok (x :: rows))
        (Ok []) rs
      |> Result.map List.rev
  | _ -> Error "slin-bench/v1 document has no results array"

let profile_rows doc =
  let open Obs_json in
  match Prof.validate doc with
  | Error e -> Error e
  | Ok () ->
      let rows = ref [] in
      let push name metric value = rows := { row_name = name; row_metric = metric; row_value = value } :: !rows in
      let push_num name metric j = match num j with Some v -> push name metric v | None -> () in
      (match member "wall_ns" doc with Some j -> push_num "totals" "wall_ns" j | None -> ());
      (match member "totals" doc with
      | Some tot ->
          (match member "nodes" tot with Some j -> push_num "totals" "nodes" j | None -> ());
          (match member "cache_hits" tot with Some j -> push_num "totals" "cache_hits" j | None -> ());
          (match member "nodes_per_sec" tot with
          | Some j -> push_num "totals" "nodes_per_sec" j
          | None -> ());
          (match member "phase_ns" tot with
          | Some (Assoc kvs) -> List.iter (fun (k, v) -> push_num "totals" (k ^ "_ns") v) kvs
          | _ -> ());
          (match member "kills" tot with
          | Some (Assoc kvs) -> List.iter (fun (k, v) -> push_num "totals" ("kill." ^ k) v) kvs
          | _ -> ())
      | None -> ());
      (match member "lanes" doc with
      | Some (List lanes) ->
          List.iter
            (fun l ->
              match member "domain" l with
              | Some (Int d) ->
                  let name = Printf.sprintf "lane d%d" d in
                  (match member "nodes" l with Some j -> push_num name "nodes" j | None -> ());
                  (match member "utilization" l with
                  | Some j -> push_num name "utilization" j
                  | None -> ());
                  (match member "phase_ns" l with
                  | Some (Assoc kvs) -> List.iter (fun (k, v) -> push_num name (k ^ "_ns") v) kvs
                  | _ -> ())
              | _ -> ())
            lanes
      | _ -> ());
      Ok (List.rev !rows)

(* Coverage reports flatten to: the headline counters and the
   unique_ratio (the only directional, hence gated, metric), the pair
   totals, and one row per matrix cell.  Matrix rows are Neutral, but a
   {e removed} cell — an object pair no longer observed at all — still
   gates, same as any removed row. *)
let coverage_rows doc =
  let open Obs_json in
  match Coverage.validate doc with
  | Error e -> Error e
  | Ok () ->
      let rows = ref [] in
      let push name metric value =
        rows := { row_name = name; row_metric = metric; row_value = value } :: !rows
      in
      let push_num name metric j = match num j with Some v -> push name metric v | None -> () in
      List.iter
        (fun k -> match member k doc with Some j -> push_num "coverage" k j | None -> ())
        [ "observations"; "unique_worlds"; "unique_ratio"; "max_depth" ];
      (match member "pairs" doc with
      | Some p ->
          List.iter
            (fun k -> match member k p with Some j -> push_num "pairs" k j | None -> ())
            [ "observed"; "commuting"; "conflicting"; "conflict_ratio" ]
      | None -> ());
      (match member "matrix" doc with
      | Some (List cells) ->
          List.iter
            (fun cell ->
              match (member "a" cell, member "b" cell) with
              | Some (String a), Some (String b) ->
                  let name = Printf.sprintf "pair %s|%s" a b in
                  (match member "commuting" cell with
                  | Some j -> push_num name "commuting" j
                  | None -> ());
                  (match member "conflicting" cell with
                  | Some j -> push_num name "conflicting" j
                  | None -> ())
              | _ -> ())
            cells
      | _ -> ());
      Ok (List.rev !rows)

(* Serve reports flatten to one "serve" row per counter plus the two
   directional (gated) metrics: completed_ratio and, when the report is
   not deterministic-mode, requests_per_s.  Counters are Neutral —
   reported, and gating on removal only — except that a baseline made
   with --deterministic never carries timing rows, so machine-speed
   jitter cannot gate. *)
let serve_rows doc =
  let open Obs_json in
  match to_float (Option.value (member "requests" doc) ~default:Null) with
  | None -> Error "slin-serve-report/v1 document has no numeric requests field"
  | Some _ ->
      let rows = ref [] in
      let push_num metric j =
        match num j with
        | Some v -> rows := { row_name = "serve"; row_metric = metric; row_value = v } :: !rows
        | None -> ()
      in
      List.iter
        (fun k -> match member k doc with Some j -> push_num k j | None -> ())
        [
          "requests";
          "done";
          "inconclusive";
          "failed";
          "shed";
          "rejected";
          "memo_hits";
          "coalesced";
          "retries";
          "worker_restarts";
          "completed_ratio";
          "requests_per_s";
        ];
      Ok (List.rev !rows)

let rows_of doc =
  match Obs_json.member "schema" doc with
  | Some (Obs_json.String ("slin-bench/v1" as s)) ->
      Result.map (fun rows -> (s, rows)) (bench_rows doc)
  | Some (Obs_json.String ("slin-profile/v1" as s)) ->
      Result.map (fun rows -> (s, rows)) (profile_rows doc)
  | Some (Obs_json.String ("slin-coverage/v1" as s)) ->
      Result.map (fun rows -> (s, rows)) (coverage_rows doc)
  | Some (Obs_json.String ("slin-serve-report/v1" as s)) ->
      Result.map (fun rows -> (s, rows)) (serve_rows doc)
  | Some (Obs_json.String s) -> Error (Printf.sprintf "unsupported schema %S" s)
  | _ -> Error "document has no schema tag"

(* ---------------- diffing ---------------- *)

type status = Unchanged | Improved | Regressed | Changed | Added | Removed

type entry = {
  e_name : string;
  e_metric : string;
  e_dir : direction;
  e_old : float option;
  e_new : float option;
  e_pct : float;
  e_status : status;
}

let pct_change ~old_v ~new_v =
  if old_v = new_v then 0.
  else if old_v = 0. then infinity *. (if new_v > 0. then 1. else -1.)
  else 100. *. (new_v -. old_v) /. Float.abs old_v

let classify dir pct =
  if pct = 0. then Unchanged
  else
    match dir with
    | Neutral -> Changed
    | Lower_better -> if pct < 0. then Improved else Regressed
    | Higher_better -> if pct > 0. then Improved else Regressed

let diff ~old_doc ~new_doc =
  match (rows_of old_doc, rows_of new_doc) with
  | Error e, _ -> Error ("old report: " ^ e)
  | _, Error e -> Error ("new report: " ^ e)
  | Ok (s1, _), Ok (s2, _) when s1 <> s2 ->
      Error (Printf.sprintf "schema mismatch: old is %s, new is %s" s1 s2)
  | Ok (_, old_rows), Ok (_, new_rows) ->
      let find rows name metric =
        List.find_opt (fun r -> r.row_name = name && r.row_metric = metric) rows
      in
      let matched =
        List.map
          (fun o ->
            let dir = direction_of_metric o.row_metric in
            match find new_rows o.row_name o.row_metric with
            | Some n ->
                let pct = pct_change ~old_v:o.row_value ~new_v:n.row_value in
                {
                  e_name = o.row_name;
                  e_metric = o.row_metric;
                  e_dir = dir;
                  e_old = Some o.row_value;
                  e_new = Some n.row_value;
                  e_pct = pct;
                  e_status = classify dir pct;
                }
            | None ->
                {
                  e_name = o.row_name;
                  e_metric = o.row_metric;
                  e_dir = dir;
                  e_old = Some o.row_value;
                  e_new = None;
                  e_pct = 0.;
                  e_status = Removed;
                })
          old_rows
      in
      let added =
        List.filter_map
          (fun n ->
            match find old_rows n.row_name n.row_metric with
            | Some _ -> None
            | None ->
                Some
                  {
                    e_name = n.row_name;
                    e_metric = n.row_metric;
                    e_dir = direction_of_metric n.row_metric;
                    e_old = None;
                    e_new = Some n.row_value;
                    e_pct = 0.;
                    e_status = Added;
                  })
          new_rows
      in
      Ok (matched @ added)

let regressions ?(threshold = 0.) entries =
  List.filter
    (fun e ->
      match e.e_status with
      | Removed -> true
      | Regressed -> (
          (* worsening magnitude, as a positive percent *)
          match e.e_dir with
          | Lower_better -> e.e_pct > threshold
          | Higher_better -> -.e.e_pct > threshold
          | Neutral -> false)
      | _ -> false)
    entries

(* ---------------- rendering ---------------- *)

let marker = function
  | Unchanged -> "  ="
  | Improved -> "  +"
  | Regressed -> "  !"
  | Changed -> "  ~"
  | Added -> "  a"
  | Removed -> "  x"

let fnum = function
  | None -> "-"
  | Some v ->
      if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
      else Printf.sprintf "%.4g" v

let pp fmt entries =
  let w_name =
    List.fold_left (fun w e -> max w (String.length e.e_name)) 4 entries
  in
  let w_metric =
    List.fold_left (fun w e -> max w (String.length e.e_metric)) 6 entries
  in
  Format.fprintf fmt "%s %-*s %-*s %14s %14s %10s@." "st " w_name "name" w_metric "metric" "old"
    "new" "delta";
  List.iter
    (fun e ->
      let delta =
        match e.e_status with
        | Added -> "added"
        | Removed -> "removed"
        | Unchanged -> "="
        | _ ->
            if Float.is_finite e.e_pct then Printf.sprintf "%+.1f%%" e.e_pct
            else if e.e_pct > 0. then "+inf%"
            else "-inf%"
      in
      Format.fprintf fmt "%s %-*s %-*s %14s %14s %10s@." (marker e.e_status) w_name e.e_name
        w_metric e.e_metric (fnum e.e_old) (fnum e.e_new) delta)
    entries
