(** Structured-event sink serializing to JSON Lines.

    Each record is one line: [{"event": NAME, "ts_us": T, ...fields}].
    Channel-backed sinks flush per record, so files remain parseable
    line-by-line even if the producer dies mid-run. *)

type t

val create : string -> t
(** Open [path] for writing (truncates); {!close} closes it. *)

val to_channel : out_channel -> t
(** Write to an existing channel; {!close} leaves it open. *)

val to_buffer : Buffer.t -> t
(** In-memory sink, for tests. *)

val emit : t -> ?ts_us:float -> string -> (string * Obs_json.t) list -> unit
(** [emit sink name fields] writes one record.  [ts_us] defaults to the
    current wall clock in microseconds. *)

val records : t -> int
(** Records emitted so far. *)

val close : t -> unit
