(** Chrome trace-event exporter ([chrome://tracing] / Perfetto).

    Builds the JSON object format [{"traceEvents": [...]}]; open the
    written file at {{:https://ui.perfetto.dev}ui.perfetto.dev}.  Every
    event has a phase ([ph]), a microsecond timestamp ([ts]) and a
    [pid]/[tid] pair selecting its track. *)

type t

val create : unit -> t

(** {1 Generic events}

    All timestamps are in microseconds on whatever timeline the caller
    chooses (wall clock for real runs, event index for simulated
    executions). *)

val begin_span :
  t -> ?cat:string -> ?pid:int -> ?tid:int -> ?args:(string * Obs_json.t) list ->
  ts_us:float -> string -> unit
(** Open a nested span (phase ["B"]); close with {!end_span}. *)

val end_span :
  t -> ?cat:string -> ?pid:int -> ?tid:int -> ?args:(string * Obs_json.t) list ->
  ts_us:float -> string -> unit

val complete :
  t -> ?cat:string -> ?pid:int -> ?tid:int -> ?args:(string * Obs_json.t) list ->
  ts_us:float -> dur_us:float -> string -> unit
(** Self-contained slice (phase ["X"]) with an explicit duration. *)

val instant :
  t -> ?cat:string -> ?pid:int -> ?tid:int -> ?args:(string * Obs_json.t) list ->
  ts_us:float -> string -> unit
(** Thread-scoped instant (phase ["i"]). *)

val counter : t -> ?cat:string -> ?pid:int -> ?tid:int -> ts_us:float -> string -> float -> unit
(** Counter-track sample (phase ["C"]): Perfetto draws these as a value
    over time. *)

val thread_name : t -> ?pid:int -> tid:int -> string -> unit
val process_name : t -> ?pid:int -> string -> unit

val size : t -> int
(** Events recorded so far. *)

(** {1 Output} *)

val to_json : t -> Obs_json.t
val to_string : t -> string
val write : t -> string -> unit

(** {1 Producers} *)

val of_sim_trace :
  pp_op:(Format.formatter -> 'op -> unit) ->
  pp_resp:(Format.formatter -> 'resp -> unit) ->
  ('op, 'resp) Trace.t ->
  t
(** One simulated execution on a synthetic timeline (the i-th event at
    i µs): each process is a thread-track, each high-level operation a
    span (its response annotates the closing event), each base-object
    step an instant.  Spans left open by pending operations are closed
    at the end so the trace is balanced. *)
