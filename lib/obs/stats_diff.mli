(** Field-by-field comparison of two versioned perf reports
    ([slin-bench/v1], [slin-profile/v1], [slin-coverage/v1] or
    [slin-serve-report/v1]) — the engine behind
    [slin stats diff old.json new.json [--fail-on-regress PCT]].

    Both documents are flattened into [(name, metric, value)] rows;
    rows are matched by [(name, metric)]; each metric name implies a
    direction (nodes/s up is good, ns/op down is good, counters are
    neutral), and only directional rows can regress.  Rows present in
    the old report but missing from the new one count as regressions
    when gating — a silently dropped benchmark must not pass. *)

type direction = Higher_better | Lower_better | Neutral

val direction_of_metric : string -> direction
(** Only scale-free or deterministic metrics are directional:
    throughput ([..._per_s], [..._per_sec], [utilization]) is
    higher-better, coverage's [unique_ratio] and serve's
    [completed_ratio] (matched by exact name — [conflict_ratio] has no
    good direction) are higher-better, the partial-order reduction's
    [reduction_ratio] (unreduced over reduced node count) is
    higher-better, per-op latency ([ns_per_op]) is lower-better, and
    exploration size ([nodes_total], [nodes_per_verdict]) is
    lower-better — node counts are exact and deterministic on a fixed
    benchmark, so growth is a real reduction regression, not jitter.
    Everything else — kill counts, raw wall/phase nanoseconds — is
    neutral: reported, never gated (absolute times jitter across
    machines, and a tiny baseline turns any wobble into a huge
    percentage). *)

type row = { row_name : string; row_metric : string; row_value : float }

val rows_of : Obs_json.t -> (string * row list, string) result
(** Flatten a report into its schema tag and rows.  [slin-bench/v1]
    yields its [results] array (fuzz campaign summaries are skipped);
    [slin-profile/v1] yields totals (wall, nodes/s, per-phase ns, kill
    counts) plus per-lane nodes, utilization and per-phase ns;
    [slin-coverage/v1] yields the headline counters, [unique_ratio]
    (the one gated metric), pair totals and one row per access-matrix
    cell (neutral, but a removed cell still gates);
    [slin-serve-report/v1] yields its request counters plus the gated
    [completed_ratio] (and [requests_per_s] when present — reports made
    with [--deterministic] omit timing, so machine speed cannot gate).
    Unknown schemas are an error. *)

type status =
  | Unchanged
  | Improved
  | Regressed
  | Changed  (** a neutral-direction row whose value moved *)
  | Added  (** present only in the new report *)
  | Removed  (** present only in the old report *)

type entry = {
  e_name : string;
  e_metric : string;
  e_dir : direction;
  e_old : float option;
  e_new : float option;
  e_pct : float;  (** signed percent change vs old; 0 when either side is missing *)
  e_status : status;
}

val diff : old_doc:Obs_json.t -> new_doc:Obs_json.t -> (entry list, string) result
(** Match rows by [(name, metric)], old-report order first, then added
    rows.  Errors when either document fails to flatten or the two
    schema tags differ (a bench report cannot baseline a profile). *)

val regressions : ?threshold:float -> entry list -> entry list
(** Entries that fail a [--fail-on-regress threshold] gate: directional
    rows that worsened by strictly more than [threshold] percent
    (default [0.]), plus every [Removed] row. *)

val pp : Format.formatter -> entry list -> unit
(** Aligned table: status marker, name, metric, old, new, percent. *)
