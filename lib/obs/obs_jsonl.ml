(* Structured-event sink: JSON Lines (one JSON object per line).

   Every emitted record carries at least {"event": NAME, "ts_us": T};
   callers append arbitrary JSON fields.  Channel-backed sinks flush on
   every record so a crash mid-run loses at most the current line —
   JSONL files stay parseable line-by-line no matter where the producer
   died, which is the point of the format. *)

type target = Channel of out_channel * bool (* close on [close]? *) | Buffer of Buffer.t

type t = { target : target; mutable records : int }

let to_channel oc = { target = Channel (oc, false); records = 0 }
let to_buffer b = { target = Buffer b; records = 0 }

let create path =
  let oc = open_out path in
  { target = Channel (oc, true); records = 0 }

let emit sink ?ts_us event fields =
  let ts_us =
    match ts_us with Some t -> t | None -> float_of_int (Obs.now_ns ()) /. 1e3
  in
  let record =
    Obs_json.Assoc (("event", Obs_json.String event) :: ("ts_us", Obs_json.Float ts_us) :: fields)
  in
  let line = Obs_json.to_string record in
  sink.records <- sink.records + 1;
  match sink.target with
  | Channel (oc, _) ->
      output_string oc line;
      output_char oc '\n';
      flush oc
  | Buffer b ->
      Buffer.add_string b line;
      Buffer.add_char b '\n'

let records sink = sink.records

let close sink =
  match sink.target with Channel (oc, true) -> close_out oc | Channel _ | Buffer _ -> ()
