(** Span-based engine profiler ([slin-profile/v1]).

    A {!t} collects, for one run (a [check_strong_stats] solve, a fuzz
    campaign, or a whole experiment), one {!lane} per domain.  Each lane
    records a timeline of phase spans (solve / merge / cross-check; idle
    is synthesized from the gaps at report time), per-lane work counters
    (nodes, cache hits, a depth histogram), candidate-kill attribution,
    and per-column node counts for the parallel engine.

    Thread-safety contract: {!lane} (creation/lookup) and {!finish} are
    safe from any domain; everything that takes a [lane] mutates only
    that lane and must be called from the single domain that owns it —
    which is exactly how the engine uses it (one lane per worker
    domain).  The whole layer is passive: a profiled run's verdicts,
    node counts and outputs are byte-identical to an unprofiled one. *)

(** {1 Phases and kill reasons} *)

type phase = Solve | Merge | Idle | Cross_check | Steal | Share
(** [Steal] covers a successful steal transfer on the thief's lane;
    [Share] covers canonical result absorption (a completed column's
    counters landing on the completing lane).  Both are busy time. *)

val phase_tag : phase -> string
(** ["solve"], ["merge"], ["idle"], ["cross_check"], ["steal"],
    ["share"] — the JSON tags. *)

(** Why a candidate linearization died (the game's backtracking,
    attributed at the kill site):
    - [Kill_mismatch]: the inherited prefix was invalidated by a new
      response (a validate failure at a child);
    - [Kill_dead_end]: a child node admitted no valid extension at all;
    - [Kill_futures]: a deeper descendant refuted every extension — the
      candidate survived its children's validation but not their futures;
    - [Kill_budget]: exploration stopped by a budget while the candidate
      was still live;
    - [Kill_pruned]: the partial-order-reduction memo answered for the
      subtree — the stored kill of the twin node, re-attributed here so
      reduced runs still account for every candidate death. *)
type kill_reason = Kill_mismatch | Kill_dead_end | Kill_futures | Kill_budget | Kill_pruned

val kill_tag : kill_reason -> string
(** ["response_mismatch"], ["dead_end"], ["futures_refuted"],
    ["budget"], ["pruned"]. *)

val kill_index : kill_reason -> int
(** Position of a reason in {!all_kills} — the index convention for
    {!add_kills} vectors. *)

val all_kills : kill_reason list

(** {1 Collectors} *)

type t
(** A whole-run profile: t0, lanes, finish time. *)

type lane
(** Per-domain recorder.  Single-owner: only the owning domain may write
    to it. *)

val create : ?clock:(unit -> int) -> unit -> t
(** Start a profile at [clock ()] (default {!Obs.now_ns} — the injectable
    clock exists for deterministic tests). *)

val finish : t -> unit
(** Pin the profile's end time (idempotent: the first call wins).
    Reports built before [finish] use "now" as the end. *)

val lane : t -> domain:int -> lane
(** The lane for [domain], created on first use.  Safe from any domain. *)

val lanes : t -> lane list
(** All lanes, sorted by domain index. *)

(** {1 Recording (owner domain only)} *)

val begin_span : lane -> phase -> ?label:string -> unit -> unit
(** Open a span now.  At most one span is open per lane; opening over an
    open span closes it first. *)

val end_span : lane -> unit
(** Close the open span (no-op if none), accumulating its duration into
    the lane's per-phase totals and, capacity permitting, its timeline. *)

val note_span : lane -> phase -> ?label:string -> start_ns:int -> dur_ns:int -> unit -> unit
(** Record a span with explicit absolute times (tests; pre-measured
    sections). *)

val cross_checked : lane -> start_ns:int -> stop_ns:int -> unit
(** One anchored cross-check replay: always accumulated into the lane's
    cross-check total; entered into the timeline only when it is long
    (>= 100 us) — the "long anchored replay" case worth seeing. *)

val fresh : lane -> depth:int -> unit
(** One fresh node at [depth]: bumps the node count and the depth
    histogram (clamped to the last bucket). *)

val hit : lane -> unit
(** One node-cache hit. *)

val add_nodes : lane -> int -> unit
(** Bulk work counter for non-tree engines (fuzz: one unit per schedule
    executed) and for canonical absorption of a completed column's node
    total by the stealing engine. *)

val add_hits : lane -> int -> unit
(** Bulk cache-hit absorption (stealing engine, column completion). *)

val add_depth_hist : lane -> int array -> unit
(** Pointwise-add a depth histogram into the lane's (extra source
    buckets beyond the lane's 64 are dropped). *)

val add_kills : lane -> int array -> unit
(** Pointwise-add a kill-attribution vector (indexed like
    {!all_kills}). *)

val kill : lane -> kill_reason -> unit

val prune : lane -> unit
(** One subtree answered from the reduction memo ([--reduce]) instead of
    being re-explored: bumps the lane's prune counter (reported as
    [prunes] in lanes and totals). *)

val add_prunes : lane -> int -> unit
(** Bulk prune-count absorption (stealing engine, column completion). *)

val note_column : lane -> col:int -> proc:int -> nodes:int -> outcome:string -> unit
(** One parallel column solved (or abandoned) on this lane. *)

(** {1 Reports} *)

val wall_ns : t -> int

val lane_nodes : lane -> int

val lane_domain : lane -> int

val lane_phase_ns : t -> lane -> phase -> int
(** Accumulated time per phase.  [Solve] excludes the nested cross-check
    time; [Idle] is the wall time not covered by any recorded span
    (clamped at 0) — which is why the profile is needed. *)

val accounted_pct : t -> float
(** Fraction of [lanes * wall] covered by spans + synthesized idle, as a
    percentage.  By construction close to 100; below only if a lane's
    recorded spans overlap or run past [finish]. *)

val to_json : t -> meta:(string * Obs_json.t) list -> Obs_json.t
(** The versioned [slin-profile/v1] report.  [meta] fields (object,
    command, jobs, ...) are spliced in after the [schema] field. *)

val validate : Obs_json.t -> (unit, string) result
(** Structural check of a [slin-profile/v1] document: schema tag,
    totals, and per-lane fields with consistent types.  Used by tests
    and by [slin stats diff]. *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable ASCII summary: totals line, per-lane phase breakdown
    (percent of wall), kill attribution, and per-column node counts. *)

val to_trace : ?process_name:string -> t -> Obs_trace.t
(** Chrome trace: one thread lane per domain carrying its solve / merge
    / cross-check slices plus synthesized idle slices, openable at
    ui.perfetto.dev. *)
