(* Lightweight metrics: counters, gauges and timers in a global
   registry, plus the clock used by everything in the observability
   layer.

   All mutating operations are gated on [enabled] (default: off), so an
   instrumented hot path pays one load-and-branch when observability is
   not requested — instrumentation must never perturb the checker's
   deterministic exploration or the benchmarks' timings.  [snapshot]
   renders every registered instrument as JSON fields for the JSONL
   sink. *)

let enabled = ref false

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float; mutable touched : bool }

type timer = {
  t_name : string;
  mutable total_ns : int;
  mutable samples : int;
  mutable started_at : int;  (* -1 when not running *)
}

type instrument = Counter of counter | Gauge of gauge | Timer of timer

(* Registration order is preserved (newest first internally, reversed in
   [snapshot]) so output is stable run over run. *)
let registry : instrument list ref = ref []

let counter name =
  let c = { c_name = name; count = 0 } in
  registry := Counter c :: !registry;
  c

let incr c = if !enabled then c.count <- c.count + 1
let add c n = if !enabled then c.count <- c.count + n
let count c = c.count

let gauge name =
  let g = { g_name = name; value = 0.; touched = false } in
  registry := Gauge g :: !registry;
  g

let set g v =
  if !enabled then begin
    g.value <- v;
    g.touched <- true
  end

let observe_max g v =
  if !enabled then begin
    if (not g.touched) || v > g.value then g.value <- v;
    g.touched <- true
  end

let gauge_value g = g.value

let timer name =
  let t = { t_name = name; total_ns = 0; samples = 0; started_at = -1 } in
  registry := Timer t :: !registry;
  t

let start t = if !enabled then t.started_at <- now_ns ()

let stop t =
  if !enabled && t.started_at >= 0 then begin
    t.total_ns <- t.total_ns + (now_ns () - t.started_at);
    t.samples <- t.samples + 1;
    t.started_at <- -1
  end

let time t f =
  start t;
  Fun.protect ~finally:(fun () -> stop t) f

let timer_total_ns t = t.total_ns
let timer_samples t = t.samples

let reset () =
  List.iter
    (function
      | Counter c -> c.count <- 0
      | Gauge g ->
          g.value <- 0.;
          g.touched <- false
      | Timer t ->
          t.total_ns <- 0;
          t.samples <- 0;
          t.started_at <- -1)
    !registry

let snapshot () =
  List.rev_map
    (function
      | Counter c -> (c.c_name, Obs_json.Int c.count)
      | Gauge g -> (g.g_name, Obs_json.Float g.value)
      | Timer t ->
          ( t.t_name,
            Obs_json.Assoc
              [ ("total_ns", Obs_json.Int t.total_ns); ("samples", Obs_json.Int t.samples) ] ))
    !registry
