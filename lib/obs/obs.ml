(* Lightweight metrics: counters, gauges and timers in a global
   registry, plus the clock used by everything in the observability
   layer.

   All mutating operations are gated on [enabled] (default: off), so an
   instrumented hot path pays one load-and-branch when observability is
   not requested — instrumentation must never perturb the checker's
   deterministic exploration or the benchmarks' timings.

   Domain-safety: counters are bumped from worker domains (the parallel
   checker and the fuzz campaign both touch e.g. the adversary's
   counters from every worker), so they are [Atomic] — a plain mutable
   int loses increments under contention.  Gauges and timers only
   mutate on cold paths (per-run maxima, bracketed sections), so they
   share one lock instead of paying an atomic per field.  [snapshot]
   renders every registered instrument as JSON fields for the JSONL
   sink. *)

let enabled = ref false

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type counter = { c_name : string; count : int Atomic.t }
type gauge = { g_name : string; mutable value : float; mutable touched : bool }

type timer = {
  t_name : string;
  mutable total_ns : int;
  mutable samples : int;
  mutable started_at : int;  (* -1 when not running *)
}

type instrument = Counter of counter | Gauge of gauge | Timer of timer

(* Guards the registry list and all gauge/timer fields.  Counters are
   lock-free. *)
let lock = Mutex.create ()

(* Registration order is preserved (newest first internally, reversed in
   [snapshot]) so output is stable run over run. *)
let registry : instrument list ref = ref []

let register i =
  Mutex.lock lock;
  registry := i :: !registry;
  Mutex.unlock lock

let counter name =
  let c = { c_name = name; count = Atomic.make 0 } in
  register (Counter c);
  c

let incr c = if !enabled then Atomic.incr c.count
let add c n = if !enabled then ignore (Atomic.fetch_and_add c.count n)
let count c = Atomic.get c.count

let gauge name =
  let g = { g_name = name; value = 0.; touched = false } in
  register (Gauge g);
  g

let set g v =
  if !enabled then begin
    Mutex.lock lock;
    g.value <- v;
    g.touched <- true;
    Mutex.unlock lock
  end

let observe_max g v =
  if !enabled then begin
    Mutex.lock lock;
    if (not g.touched) || v > g.value then g.value <- v;
    g.touched <- true;
    Mutex.unlock lock
  end

let gauge_value g =
  Mutex.lock lock;
  let v = g.value in
  Mutex.unlock lock;
  v

let timer name =
  let t = { t_name = name; total_ns = 0; samples = 0; started_at = -1 } in
  register (Timer t);
  t

let start t =
  if !enabled then begin
    let now = now_ns () in
    Mutex.lock lock;
    t.started_at <- now;
    Mutex.unlock lock
  end

let stop t =
  if !enabled then begin
    let now = now_ns () in
    Mutex.lock lock;
    if t.started_at >= 0 then begin
      t.total_ns <- t.total_ns + (now - t.started_at);
      t.samples <- t.samples + 1;
      t.started_at <- -1
    end;
    Mutex.unlock lock
  end

let time t f =
  start t;
  Fun.protect ~finally:(fun () -> stop t) f

let timer_total_ns t =
  Mutex.lock lock;
  let v = t.total_ns in
  Mutex.unlock lock;
  v

let timer_samples t =
  Mutex.lock lock;
  let v = t.samples in
  Mutex.unlock lock;
  v

let reset () =
  Mutex.lock lock;
  List.iter
    (function
      | Counter c -> Atomic.set c.count 0
      | Gauge g ->
          g.value <- 0.;
          g.touched <- false
      | Timer t ->
          t.total_ns <- 0;
          t.samples <- 0;
          t.started_at <- -1)
    !registry;
  Mutex.unlock lock

let snapshot () =
  Mutex.lock lock;
  let fields =
    List.rev_map
      (function
        | Counter c -> (c.c_name, Obs_json.Int (Atomic.get c.count))
        | Gauge g -> (g.g_name, Obs_json.Float g.value)
        | Timer t ->
            ( t.t_name,
              Obs_json.Assoc
                [ ("total_ns", Obs_json.Int t.total_ns); ("samples", Obs_json.Int t.samples) ]
            ))
      !registry
  in
  Mutex.unlock lock;
  fields

(* Parent-directory creation for report/out paths: every --*-out flag
   funnels through this so `slin check obj --json-out a/b/c.jsonl` works
   without a manual mkdir. *)
let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error ((EEXIST | EISDIR), _, _) -> ()
  end

let ensure_parent_dir path =
  try mkdir_p (Filename.dirname path)
  with Unix.Unix_error (e, _, arg) ->
    (* Surface as the Sys_error every --*-out call site already catches. *)
    raise (Sys_error (Printf.sprintf "%s: %s" arg (Unix.error_message e)))
