(* Exploration-coverage telemetry: commutation-invariant world
   fingerprints (exact set below a threshold, Bloom filter above),
   schedule-prefix depth/branching histograms, an empirical
   commuting/conflicting access matrix, and fuzz-corpus attribution —
   rendered as a versioned slin-coverage/v1 JSON report and an ASCII
   summary.

   Invariants the engine relies on:
   - recording into a shard is unsynchronized (one owner domain), so a
     covered run pays one trace scan per fresh node and nothing per
     cache hit;
   - nothing here feeds back into exploration: a covered run's verdict,
     node counts and stdout are byte-identical to an uncovered one (the
     guided fuzz scheduler reads coverage deliberately, and only behind
     its own opt-in flag);
   - reports carry no timing fields, so a -j 1 report is a pure
     function of the workload and engine — golden-testable byte-for-
     byte, unlike the profiler's. *)

(* ---------------- fingerprints ---------------------------------------- *)

(* 62-bit mixing keeps every fingerprint a non-negative OCaml int on
   64-bit platforms.  The multiplier is the splitmix64 constant
   truncated to fit; wrap-around multiplication is deterministic. *)
let fp_mask = (1 lsl 62) - 1

let mix h x =
  let h = (h + x) * 0x9E3779B97F4A7 in
  (h lxor (h lsr 29)) land fp_mask

(* A fingerprint state separates the totally-ordered history (invokes
   and returns) from the per-object step chains.  Steps fold into their
   object's chain in program order; chains combine into [fs_sum] by
   modular addition, which is order-insensitive across objects.  Net
   effect: swapping adjacent steps on distinct objects leaves the
   fingerprint unchanged (same chains, same history), while reordering
   steps on one object changes its chain — exactly the Mazurkiewicz
   commutation the dependency matrix below estimates empirically. *)
type fp_state = {
  fs_hist : int;  (* chain over Invoke/Return events *)
  fs_objs : (string * int) list;  (* per-object step chains *)
  fs_sum : int;  (* sum of sealed chains, mod 2^62 *)
}

let obj_seed obj = mix 0x51 (Hashtbl.hash obj)
let seal obj chain = mix (Hashtbl.hash obj) chain
let fp_empty = { fs_hist = mix 0 0x5eed; fs_objs = []; fs_sum = 0 }

let fp_feed st (ev : (_, _) Trace.event) =
  match ev with
  | Trace.Invoke _ | Trace.Return _ -> { st with fs_hist = mix st.fs_hist (Hashtbl.hash ev) }
  | Trace.Step { proc; obj; info; noop = _ } ->
      let chain = match List.assoc_opt obj st.fs_objs with Some c -> c | None -> obj_seed obj in
      let chain' = mix chain (Hashtbl.hash (proc, info)) in
      let rec set = function
        | [] -> [ (obj, chain') ]
        | (o, _) :: rest when String.equal o obj -> (obj, chain') :: rest
        | kv :: rest -> kv :: set rest
      in
      {
        st with
        fs_objs = set st.fs_objs;
        fs_sum = (st.fs_sum - seal obj chain + seal obj chain') land fp_mask;
      }

let fp_value st = mix st.fs_hist st.fs_sum

(* ---------------- access-pair classification -------------------------- *)

(* The empirical dependency relation (ROADMAP: DPOR-class reduction):
   adjacent steps by distinct processes commute when they touch
   distinct base objects, or when both accesses are read-like on the
   same object; anything else on a shared object conflicts.  [info]
   labels come from the simulator's access log. *)
let read_like = function Some ("read" | "scan" | "collect") -> true | _ -> false

type pair_counts = { mutable pc_comm : int; mutable pc_conf : int }

(* ---------------- shards ---------------------------------------------- *)

let depth_buckets = 128
let branch_buckets = 17 (* 0..15 exact, 16 = "16 or more" *)
let bloom_bits = 1 lsl 24
let bloom_hashes = 4
let default_exact_limit = 262_144

type shard = {
  s_limit : int;
  mutable s_exact : (int, unit) Hashtbl.t option;  (* [Some] until flipped *)
  mutable s_bloom : Bytes.t option;
  mutable s_observations : int;
  mutable s_max_depth : int;
  s_depth_hist : int array;
  s_branch_hist : int array;
  s_pairs : (string * string, pair_counts) Hashtbl.t;
  s_attr : (int, int) Hashtbl.t;  (* fuzz run index -> novel fingerprints *)
}

type corpus = { c_mode : string; c_runs : int; c_retained : int; c_dropped : int }

type t = {
  t_limit : int;
  t_lock : Mutex.t;
  mutable t_shards : (int * shard) list;
  mutable t_corpus : corpus option;
}

let create ?(exact_limit = default_exact_limit) () =
  { t_limit = exact_limit; t_lock = Mutex.create (); t_shards = []; t_corpus = None }

let shard t ~domain =
  Mutex.lock t.t_lock;
  let s =
    match List.assoc_opt domain t.t_shards with
    | Some s -> s
    | None ->
        let s =
          {
            s_limit = t.t_limit;
            s_exact = Some (Hashtbl.create 1024);
            s_bloom = None;
            s_observations = 0;
            s_max_depth = 0;
            s_depth_hist = Array.make depth_buckets 0;
            s_branch_hist = Array.make branch_buckets 0;
            s_pairs = Hashtbl.create 64;
            s_attr = Hashtbl.create 64;
          }
        in
        t.t_shards <- (domain, s) :: t.t_shards;
        s
  in
  Mutex.unlock t.t_lock;
  s

let note_corpus t ~mode ~runs ~retained ~dropped =
  Mutex.lock t.t_lock;
  t.t_corpus <- Some { c_mode = mode; c_runs = runs; c_retained = retained; c_dropped = dropped };
  Mutex.unlock t.t_lock

(* Bloom membership-and-insert: double hashing h1 + i*h2 over the bit
   array.  Forcing h2 odd makes the probe sequence cover the (power of
   two sized) table. *)
let bloom_add bloom fp =
  let h2 = mix fp 0xb100f11 lor 1 in
  let fresh = ref false in
  for i = 0 to bloom_hashes - 1 do
    let bit = (fp + (i * h2)) land (bloom_bits - 1) in
    let byte = Char.code (Bytes.get bloom (bit lsr 3)) in
    let mask = 1 lsl (bit land 7) in
    if byte land mask = 0 then begin
      fresh := true;
      Bytes.set bloom (bit lsr 3) (Char.chr (byte lor mask))
    end
  done;
  !fresh

(* Is [fp] new to this shard?  Exact set until [s_limit], then flip the
   accumulated set into a Bloom filter and continue approximately. *)
let seen_add s fp =
  match s.s_exact with
  | Some tbl ->
      if Hashtbl.mem tbl fp then false
      else begin
        Hashtbl.add tbl fp ();
        if Hashtbl.length tbl > s.s_limit then begin
          let bloom = Bytes.make (bloom_bits / 8) '\000' in
          Hashtbl.iter (fun k () -> ignore (bloom_add bloom k)) tbl;
          s.s_exact <- None;
          s.s_bloom <- Some bloom
        end;
        true
      end
  | None -> (
      match s.s_bloom with Some bloom -> bloom_add bloom fp | None -> assert false)

let bump_depth s depth =
  if depth > s.s_max_depth then s.s_max_depth <- depth;
  let b = if depth < 0 then 0 else if depth >= depth_buckets then depth_buckets - 1 else depth in
  s.s_depth_hist.(b) <- s.s_depth_hist.(b) + 1

let record_pair s a b conflicting =
  let key = if String.compare a b <= 0 then (a, b) else (b, a) in
  let pc =
    match Hashtbl.find_opt s.s_pairs key with
    | Some pc -> pc
    | None ->
        let pc = { pc_comm = 0; pc_conf = 0 } in
        Hashtbl.add s.s_pairs key pc;
        pc
  in
  if conflicting then pc.pc_conf <- pc.pc_conf + 1 else pc.pc_comm <- pc.pc_comm + 1

let classify_pair s (p : _ Trace.event) (q : _ Trace.event) =
  match (p, q) with
  | Trace.Step a, Trace.Step b when a.proc <> b.proc ->
      let conflicting =
        String.equal a.obj b.obj && not (read_like a.info && read_like b.info)
      in
      record_pair s a.obj b.obj conflicting
  | _ -> ()

let record_pairs s tr =
  let prev = ref None in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Step _ ->
          (match !prev with Some p -> classify_pair s p ev | None -> ());
          prev := Some ev
      | _ -> ())
    tr

let observe_node s ~depth ~branching tr =
  s.s_observations <- s.s_observations + 1;
  bump_depth s depth;
  let b =
    if branching < 0 then 0
    else if branching >= branch_buckets then branch_buckets - 1
    else branching
  in
  s.s_branch_hist.(b) <- s.s_branch_hist.(b) + 1;
  let fp = fp_value (List.fold_left fp_feed fp_empty tr) in
  if seen_add s fp then record_pairs s tr

let observe_run s ~run tr =
  let novel = ref 0 in
  let st = ref fp_empty in
  let steps = ref 0 in
  let prev_step = ref None in
  List.iter
    (fun ev ->
      st := fp_feed !st ev;
      (match ev with Trace.Step _ -> incr steps | _ -> ());
      s.s_observations <- s.s_observations + 1;
      bump_depth s !steps;
      if seen_add s (fp_value !st) then begin
        incr novel;
        match (ev, !prev_step) with
        | Trace.Step _, Some p -> classify_pair s p ev
        | _ -> ()
      end;
      match ev with Trace.Step _ -> prev_step := Some ev | _ -> ())
    tr;
  if !novel > 0 then
    Hashtbl.replace s.s_attr run
      ((match Hashtbl.find_opt s.s_attr run with Some n -> n | None -> 0) + !novel);
  !novel

(* ---------------- merge + report --------------------------------------- *)

let popcount_bytes b =
  let n = ref 0 in
  Bytes.iter
    (fun c ->
      let x = ref (Char.code c) in
      while !x <> 0 do
        x := !x land (!x - 1);
        incr n
      done)
    b;
  !n

type stats = { observations : int; unique : int; exact : bool; max_depth : int }

let shards_snapshot t =
  Mutex.lock t.t_lock;
  let ss = t.t_shards and corpus = t.t_corpus in
  Mutex.unlock t.t_lock;
  (List.sort (fun (a, _) (b, _) -> compare a b) ss, corpus)

(* Merged unique count.  All shards exact: the union set, still exact.
   Any shard bloomed: OR the filters, pour the exact shards in, and
   estimate the cardinality from the fill — X set bits out of m with k
   hashes gives n ~ -(m/k) ln(1 - X/m), which is order-insensitive and
   hence deterministic for a fixed workload. *)
let merged_unique shards =
  let bloomed = List.exists (fun (_, s) -> s.s_bloom <> None) shards in
  if not bloomed then begin
    let union = Hashtbl.create 1024 in
    List.iter
      (fun (_, s) ->
        match s.s_exact with
        | Some tbl -> Hashtbl.iter (fun k () -> Hashtbl.replace union k ()) tbl
        | None -> assert false)
      shards;
    (Hashtbl.length union, true, None)
  end
  else begin
    let merged = Bytes.make (bloom_bits / 8) '\000' in
    List.iter
      (fun (_, s) ->
        match (s.s_bloom, s.s_exact) with
        | Some b, _ ->
            for i = 0 to Bytes.length merged - 1 do
              Bytes.set merged i
                (Char.chr (Char.code (Bytes.get merged i) lor Char.code (Bytes.get b i)))
            done
        | None, Some tbl -> Hashtbl.iter (fun k () -> ignore (bloom_add merged k)) tbl
        | None, None -> assert false)
      shards;
    let x = popcount_bytes merged in
    let m = float_of_int bloom_bits and k = float_of_int bloom_hashes in
    let fill = float_of_int x /. m in
    let est =
      if fill >= 1.0 then max_int else int_of_float (Float.round (-.(m /. k) *. log (1.0 -. fill)))
    in
    (est, false, Some x)
  end

let stats t =
  let shards, _ = shards_snapshot t in
  let unique, exact, _ = merged_unique shards in
  {
    observations = List.fold_left (fun a (_, s) -> a + s.s_observations) 0 shards;
    unique;
    exact;
    max_depth = List.fold_left (fun a (_, s) -> max a s.s_max_depth) 0 shards;
  }

let merged_hist shards pick buckets =
  let h = Array.make buckets 0 in
  List.iter
    (fun (_, s) -> Array.iteri (fun i v -> h.(i) <- h.(i) + v) (pick s))
    shards;
  h

let truncate_hist h =
  let last = ref (-1) in
  Array.iteri (fun i v -> if v > 0 then last := i) h;
  Array.to_list (Array.sub h 0 (!last + 1))

let merged_pairs shards =
  let acc = Hashtbl.create 64 in
  List.iter
    (fun (_, s) ->
      Hashtbl.iter
        (fun key pc ->
          let cur =
            match Hashtbl.find_opt acc key with
            | Some pc' -> pc'
            | None ->
                let pc' = { pc_comm = 0; pc_conf = 0 } in
                Hashtbl.add acc key pc';
                pc'
          in
          cur.pc_comm <- cur.pc_comm + pc.pc_comm;
          cur.pc_conf <- cur.pc_conf + pc.pc_conf)
        s.s_pairs)
    shards;
  Hashtbl.fold (fun k pc l -> (k, pc) :: l) acc []
  |> List.sort (fun ((a1, b1), _) ((a2, b2), _) ->
         match String.compare a1 a2 with 0 -> String.compare b1 b2 | c -> c)

let merged_attr shards =
  let acc = Hashtbl.create 64 in
  List.iter
    (fun (_, s) ->
      Hashtbl.iter
        (fun run n ->
          Hashtbl.replace acc run
            ((match Hashtbl.find_opt acc run with Some m -> m | None -> 0) + n))
        s.s_attr)
    shards;
  Hashtbl.fold (fun run n l -> (run, n) :: l) acc []
  |> List.sort (fun (r1, n1) (r2, n2) -> match compare n2 n1 with 0 -> compare r1 r2 | c -> c)

let attribution_cap = 32

let to_json t ~meta =
  let shards, corpus = shards_snapshot t in
  let unique, exact, set_bits = merged_unique shards in
  let observations = List.fold_left (fun a (_, s) -> a + s.s_observations) 0 shards in
  let max_depth = List.fold_left (fun a (_, s) -> max a s.s_max_depth) 0 shards in
  let pairs = merged_pairs shards in
  let pair_comm = List.fold_left (fun a (_, pc) -> a + pc.pc_comm) 0 pairs in
  let pair_conf = List.fold_left (fun a (_, pc) -> a + pc.pc_conf) 0 pairs in
  let attr = merged_attr shards in
  let attr_total = List.length attr in
  let open Obs_json in
  Assoc
    ([ ("schema", String "slin-coverage/v1") ]
    @ meta
    @ [
        ("exact_limit", Int t.t_limit);
        ("observations", Int observations);
        ("unique_worlds", Int unique);
        ("exact", Bool exact);
        ( "unique_ratio",
          Float (float_of_int unique /. float_of_int (max 1 observations)) );
        ( "bloom",
          match set_bits with
          | None -> Null
          | Some x ->
              Assoc [ ("bits", Int bloom_bits); ("hashes", Int bloom_hashes); ("set_bits", Int x) ]
        );
        ("max_depth", Int max_depth);
        ( "depth_hist",
          List
            (List.map (fun v -> Int v)
               (truncate_hist (merged_hist shards (fun s -> s.s_depth_hist) depth_buckets))) );
        ( "branching_hist",
          List
            (List.map (fun v -> Int v)
               (truncate_hist (merged_hist shards (fun s -> s.s_branch_hist) branch_buckets))) );
        ( "pairs",
          Assoc
            [
              ("observed", Int (pair_comm + pair_conf));
              ("commuting", Int pair_comm);
              ("conflicting", Int pair_conf);
              ( "conflict_ratio",
                Float (float_of_int pair_conf /. float_of_int (max 1 (pair_comm + pair_conf))) );
            ] );
        ( "matrix",
          List
            (List.map
               (fun ((a, b), pc) ->
                 Assoc
                   [
                     ("a", String a);
                     ("b", String b);
                     ("commuting", Int pc.pc_comm);
                     ("conflicting", Int pc.pc_conf);
                   ])
               pairs) );
        ( "attribution",
          List
            (List.map
               (fun (run, n) -> Assoc [ ("run", Int run); ("new_worlds", Int n) ])
               (List.filteri (fun i _ -> i < attribution_cap) attr)) );
        ("attributed_runs", Int attr_total);
        ( "corpus",
          match corpus with
          | None -> Null
          | Some c ->
              Assoc
                [
                  ("mode", String c.c_mode);
                  ("runs", Int c.c_runs);
                  ("retained", Int c.c_retained);
                  ("dropped", Int c.c_dropped);
                ] );
      ])

(* ---------------- validation ------------------------------------------- *)

let validate json =
  let open Obs_json in
  let ( let* ) r f = Result.bind r f in
  let need_int k j =
    match Option.bind (member k j) to_int with
    | Some v when v >= 0 -> Ok v
    | Some _ -> Error (Printf.sprintf "%s: negative" k)
    | None -> Error (Printf.sprintf "missing int field %s" k)
  in
  let need_int_list k j =
    match Option.bind (member k j) to_int_list with
    | Some l when List.for_all (fun v -> v >= 0) l -> Ok l
    | Some _ -> Error (Printf.sprintf "%s: negative bucket" k)
    | None -> Error (Printf.sprintf "missing int list %s" k)
  in
  match member "schema" json with
  | Some (String "slin-coverage/v1") ->
      let* observations = need_int "observations" json in
      let* unique = need_int "unique_worlds" json in
      let* _ = need_int "exact_limit" json in
      let* _ = need_int "max_depth" json in
      let* depth_hist = need_int_list "depth_hist" json in
      let* _ = need_int_list "branching_hist" json in
      let* () =
        match Option.bind (member "exact" json) to_bool with
        | Some true when unique > observations -> Error "exact unique_worlds exceeds observations"
        | Some _ -> Ok ()
        | None -> Error "missing bool field exact"
      in
      let* () =
        match Option.bind (member "unique_ratio" json) to_float with
        | Some r when r >= 0.0 -> Ok ()
        | Some _ -> Error "unique_ratio: negative"
        | None -> Error "missing float field unique_ratio"
      in
      let* () =
        (* every observation lands in a depth bucket *)
        if List.fold_left ( + ) 0 depth_hist <> observations then
          Error "depth_hist does not sum to observations"
        else Ok ()
      in
      let* () =
        match member "pairs" json with
        | Some p ->
            let* c = need_int "commuting" p in
            let* f = need_int "conflicting" p in
            let* o = need_int "observed" p in
            if o <> c + f then Error "pairs.observed <> commuting + conflicting" else Ok ()
        | None -> Error "missing pairs"
      in
      let* () =
        match Option.bind (member "matrix" json) to_list with
        | Some rows ->
            List.fold_left
              (fun acc row ->
                let* () = acc in
                match
                  ( Option.bind (member "a" row) to_str,
                    Option.bind (member "b" row) to_str,
                    Option.bind (member "commuting" row) to_int,
                    Option.bind (member "conflicting" row) to_int )
                with
                | Some _, Some _, Some c, Some f when c >= 0 && f >= 0 -> Ok ()
                | _ -> Error "malformed matrix row")
              (Ok ()) rows
        | None -> Error "missing matrix"
      in
      let* () =
        match Option.bind (member "attribution" json) to_list with
        | Some rows ->
            List.fold_left
              (fun acc row ->
                let* () = acc in
                match
                  ( Option.bind (member "run" row) to_int,
                    Option.bind (member "new_worlds" row) to_int )
                with
                | Some _, Some n when n > 0 -> Ok ()
                | Some _, Some _ -> Error "attribution row with no new worlds"
                | _ -> Error "malformed attribution row")
              (Ok ()) rows
        | None -> Error "missing attribution"
      in
      (match member "corpus" json with
      | Some Null -> Ok ()
      | Some c ->
          let* _ = need_int "runs" c in
          let* _ = need_int "retained" c in
          let* _ = need_int "dropped" c in
          (match Option.bind (member "mode" c) to_str with
          | Some ("uniform" | "coverage") -> Ok ()
          | Some m -> Error (Printf.sprintf "unknown corpus mode %s" m)
          | None -> Error "corpus missing mode")
      | None -> Error "missing corpus")
  | Some (String s) -> Error (Printf.sprintf "not a coverage report (schema %s)" s)
  | _ -> Error "missing schema"

(* ---------------- summary ---------------------------------------------- *)

let pp_summary fmt t =
  let shards, corpus = shards_snapshot t in
  let unique, exact, set_bits = merged_unique shards in
  let observations = List.fold_left (fun a (_, s) -> a + s.s_observations) 0 shards in
  let max_depth = List.fold_left (fun a (_, s) -> max a s.s_max_depth) 0 shards in
  let pairs = merged_pairs shards in
  let pair_comm = List.fold_left (fun a (_, pc) -> a + pc.pc_comm) 0 pairs in
  let pair_conf = List.fold_left (fun a (_, pc) -> a + pc.pc_conf) 0 pairs in
  Format.fprintf fmt "coverage: %d observation%s, %d unique world%s%s@."
    observations
    (if observations = 1 then "" else "s")
    unique
    (if unique = 1 then "" else "s")
    (if exact then "" else " (Bloom estimate)");
  if observations > 0 then
    Format.fprintf fmt "  redundancy: %.2f observations/world, max depth %d@."
      (float_of_int observations /. float_of_int (max 1 unique))
      max_depth;
  (match set_bits with
  | Some x -> Format.fprintf fmt "  bloom: %d/%d bits set@." x bloom_bits
  | None -> ());
  let branch = merged_hist shards (fun s -> s.s_branch_hist) branch_buckets in
  let bsum = Array.fold_left ( + ) 0 branch in
  if bsum > 0 then begin
    let mode = ref 0 in
    Array.iteri (fun i v -> if v > branch.(!mode) then mode := i) branch;
    Format.fprintf fmt "  branching: mode %d (%d of %d nodes)@." !mode branch.(!mode) bsum
  end;
  if pair_comm + pair_conf > 0 then begin
    Format.fprintf fmt "  access pairs: %d commuting, %d conflicting (%.1f%% conflicting)@."
      pair_comm pair_conf
      (100.0 *. float_of_int pair_conf /. float_of_int (pair_comm + pair_conf));
    let hot =
      List.filter (fun (_, pc) -> pc.pc_conf > 0) pairs
      |> List.sort (fun (_, p1) (_, p2) -> compare p2.pc_conf p1.pc_conf)
    in
    List.iteri
      (fun i ((a, b), pc) ->
        if i < 5 then
          Format.fprintf fmt "    %-24s %8d conflicting %8d commuting@."
            (if String.equal a b then a else a ^ " | " ^ b)
            pc.pc_conf pc.pc_comm)
      hot
  end;
  match corpus with
  | Some c ->
      Format.fprintf fmt "  corpus (%s): %d runs, %d retained, %d dropped@." c.c_mode c.c_runs
        c.c_retained c.c_dropped
  | None -> ()
