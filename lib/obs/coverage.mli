(** Exploration-coverage telemetry: which worlds a run actually visited.

    The profiler (PR 6) answers {e where the time went}; this layer
    answers {e where the search went}.  It is threaded — strictly
    passively — through the sequential and parallel engines,
    [Mult_check] and the fuzzer, and records four things:

    - {b unique world fingerprints}: a commutation-invariant hash of the
      world state reached by each explored schedule prefix (exact set
      below [exact_limit], Bloom filter + cardinality estimate above);
    - {b schedule-prefix coverage}: depth and branching-factor
      histograms over the observed prefixes;
    - {b a per-object-pair access matrix} classifying adjacent access
      pairs as commuting vs conflicting — the empirical dependency
      relation a DPOR-style reduction would consume (ROADMAP item);
    - {b fuzz-corpus attribution}: how many fingerprints each fuzz run
      was the first to reach.

    The fingerprint is invariant under swapping adjacent steps on
    {e distinct} base objects (both the history chain and the per-object
    step chains are unchanged), so the unique count approximates the
    number of commutation classes visited; [nodes / unique] is the
    redundancy a dependency-aware reduction could remove.

    Reports ([to_json], schema ["slin-coverage/v1"]) carry {e no timing
    fields}: a [-j 1] report is a pure function of the workload and
    engine, hence golden-testable and CI-gateable byte-for-byte.

    Thread-safety mirrors {!Prof}: [shard t ~domain] is safe from any
    domain; recording into a shard is single-owner and unsynchronized;
    report/summary functions merge the shards under the registry lock. *)

type t
type shard

val create : ?exact_limit:int -> unit -> t
(** [exact_limit] (default 262144) bounds the exact per-shard
    fingerprint set; past it the shard flips to a Bloom filter (2{^24}
    bits, 4 hashes) and unique counts become estimates. *)

val shard : t -> domain:int -> shard
(** Get-or-create the recording shard for a domain (thread-safe). *)

(** {1 Recording} *)

val observe_node : shard -> depth:int -> branching:int -> ('op, 'resp) Trace.t -> unit
(** One explored tree node: fingerprint its trace, bump the depth and
    branching histograms, and — when the fingerprint is new to this
    shard — fold the trace's adjacent access pairs into the matrix. *)

val observe_run : shard -> run:int -> ('op, 'resp) Trace.t -> int
(** One fuzz run: fingerprint {e every event prefix} of the trace
    (each event transitions to a new world).  Novel prefixes are
    attributed to [run] and contribute their last adjacent access pair
    to the matrix.  Returns the number of novel fingerprints — the
    signal coverage-guided fuzzing retains seeds by.  The branching
    histogram is engine-fed only and is not touched here. *)

val note_corpus : t -> mode:string -> runs:int -> retained:int -> dropped:int -> unit
(** Record the fuzz campaign's corpus summary (set-once; later calls
    overwrite).  [mode] is ["uniform"] or ["coverage"]. *)

(** {1 Fingerprint states} (for incremental consumers, e.g. the guided
    fuzz scheduler's edge-novelty table) *)

type fp_state

val fp_empty : fp_state
val fp_feed : fp_state -> ('op, 'resp) Trace.event -> fp_state
val fp_value : fp_state -> int
(** Non-negative; equal for traces that differ only by commuting
    adjacent steps on distinct objects. *)

(** {1 Reports} *)

type stats = {
  observations : int;  (** world observations (tree nodes / run events) *)
  unique : int;  (** distinct fingerprints (estimate once any shard bloomed) *)
  exact : bool;  (** [true] while every shard still holds an exact set *)
  max_depth : int;
}

val stats : t -> stats
(** Merge the shards and summarize (cheap; usable between phases). *)

val to_json : t -> meta:(string * Obs_json.t) list -> Obs_json.t
(** The [slin-coverage/v1] report.  Deterministic: no wall-clock fields,
    shards merged order-insensitively, matrix and attribution sorted. *)

val validate : Obs_json.t -> (unit, string) result
(** Structural check of a [slin-coverage/v1] document. *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable summary: unique worlds, redundancy, depth/branching
    spread, hottest conflicting pairs, corpus line. *)
