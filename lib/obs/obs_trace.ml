(* Chrome trace-event exporter.

   Produces the JSON object format understood by chrome://tracing and
   Perfetto (https://ui.perfetto.dev): {"traceEvents": [...]} where each
   event carries the phase [ph] ("B"/"E" for nested spans, "X" for
   complete slices, "i" for instants, "C" for counter tracks, "M" for
   metadata), a microsecond timestamp [ts], and a [pid]/[tid] pair
   selecting the track.

   Two producers use this: [of_sim_trace] renders one simulated
   execution (each process a thread-track, each high-level operation a
   span, each base-object step an instant), and the checker emits
   counter samples so the exploration rate over time is visible as a
   counter track. *)

type event = {
  name : string;
  cat : string;
  ph : string;
  ts_us : float;
  pid : int;
  tid : int;
  dur_us : float option;
  args : (string * Obs_json.t) list;
}

type t = { mutable rev_events : event list; mutable n : int }

let create () = { rev_events = []; n = 0 }

let push tr e =
  tr.rev_events <- e :: tr.rev_events;
  tr.n <- tr.n + 1

let event tr ?(cat = "slin") ?(pid = 1) ?(tid = 0) ?dur_us ?(args = []) ~ph ~ts_us name =
  push tr { name; cat; ph; ts_us; pid; tid; dur_us; args }

let begin_span tr ?cat ?pid ?tid ?args ~ts_us name = event tr ?cat ?pid ?tid ?args ~ph:"B" ~ts_us name
let end_span tr ?cat ?pid ?tid ?args ~ts_us name = event tr ?cat ?pid ?tid ?args ~ph:"E" ~ts_us name

let complete tr ?cat ?pid ?tid ?args ~ts_us ~dur_us name =
  event tr ?cat ?pid ?tid ?args ~ph:"X" ~dur_us ~ts_us name

let instant tr ?cat ?pid ?tid ?args ~ts_us name = event tr ?cat ?pid ?tid ?args ~ph:"i" ~ts_us name

let counter tr ?cat ?pid ?tid ~ts_us name value =
  event tr ?cat ?pid ?tid ~args:[ (name, Obs_json.Float value) ] ~ph:"C" ~ts_us name

let thread_name tr ?(pid = 1) ~tid name =
  event tr ~pid ~tid ~args:[ ("name", Obs_json.String name) ] ~ph:"M" ~ts_us:0. "thread_name"

let process_name tr ?(pid = 1) name =
  event tr ~pid ~args:[ ("name", Obs_json.String name) ] ~ph:"M" ~ts_us:0. "process_name"

let size tr = tr.n

let json_of_event e =
  let base =
    [
      ("name", Obs_json.String e.name);
      ("cat", Obs_json.String e.cat);
      ("ph", Obs_json.String e.ph);
      ("ts", Obs_json.Float e.ts_us);
      ("pid", Obs_json.Int e.pid);
      ("tid", Obs_json.Int e.tid);
    ]
  in
  let base = match e.dur_us with Some d -> base @ [ ("dur", Obs_json.Float d) ] | None -> base in
  let base =
    match e.ph with
    | "i" -> base @ [ ("s", Obs_json.String "t") ] (* instant scope: thread *)
    | _ -> base
  in
  let base = match e.args with [] -> base | args -> base @ [ ("args", Obs_json.Assoc args) ] in
  Obs_json.Assoc base

let to_json tr =
  Obs_json.Assoc
    [
      ("traceEvents", Obs_json.List (List.rev_map json_of_event tr.rev_events));
      ("displayTimeUnit", Obs_json.String "ms");
    ]

let to_string tr = Obs_json.to_string (to_json tr)

let write tr path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string tr))

(* One simulated execution as a trace: a synthetic timeline where the
   i-th trace event happens at i microseconds.  Each process is a
   thread-track; operations are B/E spans named by their op, responses
   annotate the closing event, and base-object steps are instants. *)
let of_sim_trace ~pp_op ~pp_resp (t : _ Trace.t) =
  let tr = create () in
  process_name tr "slin simulated execution";
  let procs = Hashtbl.create 8 in
  let open_op : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let seen p =
    if not (Hashtbl.mem procs p) then begin
      Hashtbl.add procs p ();
      thread_name tr ~tid:p (Printf.sprintf "p%d" p)
    end
  in
  List.iteri
    (fun i ev ->
      let ts_us = float_of_int i in
      match ev with
      | Trace.Invoke { proc; op } ->
          seen proc;
          let name = Format.asprintf "%a" pp_op op in
          Hashtbl.replace open_op proc name;
          begin_span tr ~cat:"op" ~tid:proc ~ts_us name
      | Trace.Return { proc; resp } ->
          seen proc;
          let name = match Hashtbl.find_opt open_op proc with Some n -> n | None -> "op" in
          Hashtbl.remove open_op proc;
          end_span tr ~cat:"op" ~tid:proc ~ts_us
            ~args:[ ("resp", Obs_json.String (Format.asprintf "%a" pp_resp resp)) ]
            name
      | Trace.Step { proc; obj; info; noop = _ } ->
          seen proc;
          let name = match info with Some i -> obj ^ " " ^ i | None -> obj in
          instant tr ~cat:"step" ~tid:proc ~ts_us name)
    t;
  (* Close any span left open by a pending operation so the JSON is
     balanced. *)
  let last = float_of_int (List.length t) in
  Hashtbl.iter
    (fun proc name ->
      end_span tr ~cat:"op" ~tid:proc ~ts_us:last
        ~args:[ ("resp", Obs_json.String "(pending)") ]
        name)
    open_op;
  tr
