(* Span-based engine profiler: per-domain timelines + work counters,
   rendered as a versioned slin-profile/v1 JSON report, an ASCII
   summary, and a Chrome trace with one lane per domain.

   Invariants the engine relies on:
   - recording into a lane is unsynchronized (one owner domain), so the
     hot-path cost of a profiled run is an array bump per node;
   - nothing here feeds back into exploration — a profiled run's
     verdict, node counts and stdout are byte-identical to an
     unprofiled one;
   - [Solve] phase totals exclude the nested cross-check time, so the
     per-phase breakdown partitions lane busy time instead of
     double-counting anchored replays. *)

type phase = Solve | Merge | Idle | Cross_check | Steal | Share

let phase_tag = function
  | Solve -> "solve"
  | Merge -> "merge"
  | Idle -> "idle"
  | Cross_check -> "cross_check"
  | Steal -> "steal"
  | Share -> "share"

let phase_index = function
  | Solve -> 0
  | Merge -> 1
  | Idle -> 2
  | Cross_check -> 3
  | Steal -> 4
  | Share -> 5

type kill_reason = Kill_mismatch | Kill_dead_end | Kill_futures | Kill_budget | Kill_pruned

let kill_tag = function
  | Kill_mismatch -> "response_mismatch"
  | Kill_dead_end -> "dead_end"
  | Kill_futures -> "futures_refuted"
  | Kill_budget -> "budget"
  | Kill_pruned -> "pruned"

let kill_index = function
  | Kill_mismatch -> 0
  | Kill_dead_end -> 1
  | Kill_futures -> 2
  | Kill_budget -> 3
  | Kill_pruned -> 4

let all_kills = [ Kill_mismatch; Kill_dead_end; Kill_futures; Kill_budget; Kill_pruned ]

let n_kills = List.length all_kills

type span = { sp_phase : phase; sp_label : string; sp_start_ns : int; sp_dur_ns : int }

(* Timeline capacity per lane: coarse spans (solve columns, merges) are
   few; long cross-checks can add up, so the tail is dropped (counted)
   rather than growing without bound on million-node runs. *)
let max_spans_per_lane = 4096

(* Only anchored replays at least this long enter the timeline; all of
   them land in the aggregate either way. *)
let long_cross_check_ns = 100_000

let depth_buckets = 64

type lane = {
  l_domain : int;
  mutable l_spans : span list;  (* newest first *)
  mutable l_nspans : int;
  mutable l_dropped : int;
  mutable l_open : (phase * string * int) option;
  mutable l_nodes : int;
  mutable l_hits : int;
  l_phase_ns : int array;  (* indexed by phase_index; Idle unused here *)
  l_depth_hist : int array;
  l_kills : int array;
  mutable l_prunes : int;
  mutable l_cross_checks : int;
  mutable l_columns : (int * int * int * string) list;  (* newest first *)
}

type t = {
  t_clock : unit -> int;
  t_t0_ns : int;
  mutable t_finish_ns : int option;
  t_lock : Mutex.t;
  mutable t_lanes : lane list;
}

let create ?clock () =
  let clock = match clock with Some c -> c | None -> Obs.now_ns in
  {
    t_clock = clock;
    t_t0_ns = clock ();
    t_finish_ns = None;
    t_lock = Mutex.create ();
    t_lanes = [];
  }

let finish t =
  match t.t_finish_ns with Some _ -> () | None -> t.t_finish_ns <- Some (t.t_clock ())

let end_ns t = match t.t_finish_ns with Some e -> e | None -> t.t_clock ()

let wall_ns t = max 0 (end_ns t - t.t_t0_ns)

let lane t ~domain =
  Mutex.lock t.t_lock;
  let l =
    match List.find_opt (fun l -> l.l_domain = domain) t.t_lanes with
    | Some l -> l
    | None ->
        let l =
          {
            l_domain = domain;
            l_spans = [];
            l_nspans = 0;
            l_dropped = 0;
            l_open = None;
            l_nodes = 0;
            l_hits = 0;
            l_phase_ns = Array.make 6 0;
            l_depth_hist = Array.make depth_buckets 0;
            l_kills = Array.make n_kills 0;
            l_prunes = 0;
            l_cross_checks = 0;
            l_columns = [];
          }
        in
        t.t_lanes <- l :: t.t_lanes;
        l
  in
  Mutex.unlock t.t_lock;
  l

let lanes t =
  Mutex.lock t.t_lock;
  let ls = t.t_lanes in
  Mutex.unlock t.t_lock;
  List.sort (fun a b -> compare a.l_domain b.l_domain) ls

let push_span l sp =
  if l.l_nspans < max_spans_per_lane then begin
    l.l_spans <- sp :: l.l_spans;
    l.l_nspans <- l.l_nspans + 1
  end
  else l.l_dropped <- l.l_dropped + 1

let note_span l ph ?(label = "") ~start_ns ~dur_ns () =
  let dur_ns = max 0 dur_ns in
  l.l_phase_ns.(phase_index ph) <- l.l_phase_ns.(phase_index ph) + dur_ns;
  push_span l { sp_phase = ph; sp_label = label; sp_start_ns = start_ns; sp_dur_ns = dur_ns }

(* Spans need the profile's clock; lanes don't carry a back-pointer, so
   begin/end read the global clock directly.  Tests that want a fake
   clock use [note_span]. *)
let begin_span l ph ?(label = "") () =
  (match l.l_open with
  | None -> ()
  | Some (ph0, label0, start0) ->
      l.l_open <- None;
      note_span l ph0 ~label:label0 ~start_ns:start0 ~dur_ns:(Obs.now_ns () - start0) ());
  l.l_open <- Some (ph, label, Obs.now_ns ())

let end_span l =
  match l.l_open with
  | None -> ()
  | Some (ph, label, start) ->
      l.l_open <- None;
      note_span l ph ~label ~start_ns:start ~dur_ns:(Obs.now_ns () - start) ()

let cross_checked l ~start_ns ~stop_ns =
  let dur = max 0 (stop_ns - start_ns) in
  l.l_cross_checks <- l.l_cross_checks + 1;
  l.l_phase_ns.(phase_index Cross_check) <- l.l_phase_ns.(phase_index Cross_check) + dur;
  if dur >= long_cross_check_ns then
    push_span l { sp_phase = Cross_check; sp_label = ""; sp_start_ns = start_ns; sp_dur_ns = dur }

let fresh l ~depth =
  l.l_nodes <- l.l_nodes + 1;
  let b = if depth >= depth_buckets then depth_buckets - 1 else if depth < 0 then 0 else depth in
  l.l_depth_hist.(b) <- l.l_depth_hist.(b) + 1

let hit l = l.l_hits <- l.l_hits + 1

let add_nodes l n = l.l_nodes <- l.l_nodes + n

let add_hits l n = l.l_hits <- l.l_hits + n

let add_depth_hist l hist =
  let n = min (Array.length hist) depth_buckets in
  for i = 0 to n - 1 do
    l.l_depth_hist.(i) <- l.l_depth_hist.(i) + hist.(i)
  done

let add_kills l kills =
  let n = min (Array.length kills) n_kills in
  for i = 0 to n - 1 do
    l.l_kills.(i) <- l.l_kills.(i) + kills.(i)
  done

let kill l r = l.l_kills.(kill_index r) <- l.l_kills.(kill_index r) + 1

let prune l = l.l_prunes <- l.l_prunes + 1

let add_prunes l n = l.l_prunes <- l.l_prunes + n

let note_column l ~col ~proc ~nodes ~outcome = l.l_columns <- (col, proc, nodes, outcome) :: l.l_columns

let lane_nodes l = l.l_nodes

let lane_domain l = l.l_domain

(* Busy time of a lane: solve + merge + steal + share span time.
   Cross-check time is nested inside solve spans, so it is not added
   again; the [Solve] figure reported outward has it subtracted
   instead. *)
let lane_busy_ns l =
  l.l_phase_ns.(phase_index Solve)
  + l.l_phase_ns.(phase_index Merge)
  + l.l_phase_ns.(phase_index Steal)
  + l.l_phase_ns.(phase_index Share)

let lane_phase_ns_in t l ph =
  match ph with
  | Solve -> max 0 (l.l_phase_ns.(phase_index Solve) - l.l_phase_ns.(phase_index Cross_check))
  | Merge -> l.l_phase_ns.(phase_index Merge)
  | Cross_check -> l.l_phase_ns.(phase_index Cross_check)
  | Steal -> l.l_phase_ns.(phase_index Steal)
  | Share -> l.l_phase_ns.(phase_index Share)
  | Idle -> max 0 (wall_ns t - lane_busy_ns l)

let lane_phase_ns = lane_phase_ns_in

let accounted_pct t =
  let w = wall_ns t in
  let ls = lanes t in
  if w <= 0 || ls = [] then 100.
  else
    let covered =
      List.fold_left (fun acc l -> acc + min w (lane_busy_ns l) + lane_phase_ns_in t l Idle) 0 ls
    in
    100. *. float_of_int covered /. float_of_int (w * List.length ls)

(* ---------------------------------------------------------------- *)
(* slin-profile/v1 report                                            *)
(* ---------------------------------------------------------------- *)

let trim_trailing_zeros arr =
  let n = ref (Array.length arr) in
  while !n > 0 && arr.(!n - 1) = 0 do
    decr n
  done;
  Array.to_list (Array.sub arr 0 !n)

let kills_json kills =
  Obs_json.Assoc (List.map (fun r -> (kill_tag r, Obs_json.Int kills.(kill_index r))) all_kills)

let phase_ns_json t l =
  Obs_json.Assoc
    (List.map
       (fun ph -> (phase_tag ph, Obs_json.Int (lane_phase_ns_in t l ph)))
       [ Solve; Merge; Cross_check; Steal; Share; Idle ])

let span_json t sp =
  Obs_json.Assoc
    ([
       ("phase", Obs_json.String (phase_tag sp.sp_phase));
       ("start_ns", Obs_json.Int (sp.sp_start_ns - t.t_t0_ns));
       ("dur_ns", Obs_json.Int sp.sp_dur_ns);
     ]
    @ if sp.sp_label = "" then [] else [ ("label", Obs_json.String sp.sp_label) ])

let lane_json t l =
  let w = wall_ns t in
  let busy = lane_busy_ns l in
  let util = if w <= 0 then 0. else float_of_int (min w busy) /. float_of_int w in
  Obs_json.Assoc
    ([
       ("domain", Obs_json.Int l.l_domain);
       ("nodes", Obs_json.Int l.l_nodes);
       ("cache_hits", Obs_json.Int l.l_hits);
       ("prunes", Obs_json.Int l.l_prunes);
       ("cross_checks", Obs_json.Int l.l_cross_checks);
       ("phase_ns", phase_ns_json t l);
       ("utilization", Obs_json.Float util);
       ("depth_hist", Obs_json.List (List.map (fun n -> Obs_json.Int n) (trim_trailing_zeros l.l_depth_hist)));
       ("kills", kills_json l.l_kills);
       ( "columns",
         Obs_json.List
           (List.rev_map
              (fun (col, proc, nodes, outcome) ->
                Obs_json.Assoc
                  [
                    ("col", Obs_json.Int col);
                    ("proc", Obs_json.Int proc);
                    ("nodes", Obs_json.Int nodes);
                    ("outcome", Obs_json.String outcome);
                  ])
              l.l_columns) );
       ("spans", Obs_json.List (List.rev_map (span_json t) l.l_spans));
     ]
    @ if l.l_dropped = 0 then [] else [ ("dropped_spans", Obs_json.Int l.l_dropped) ])

let totals t =
  let ls = lanes t in
  let sum f = List.fold_left (fun acc l -> acc + f l) 0 ls in
  let nodes = sum (fun l -> l.l_nodes) in
  let hits = sum (fun l -> l.l_hits) in
  let prunes = sum (fun l -> l.l_prunes) in
  let kills = Array.make n_kills 0 in
  List.iter (fun l -> Array.iteri (fun i k -> kills.(i) <- kills.(i) + k) l.l_kills) ls;
  let phase ph = sum (fun l -> lane_phase_ns_in t l ph) in
  (ls, nodes, hits, prunes, kills, phase)

let to_json t ~meta =
  let w = wall_ns t in
  let ls, nodes, hits, prunes, kills, phase = totals t in
  let nps = if w <= 0 then 0. else float_of_int nodes *. 1e9 /. float_of_int w in
  Obs_json.Assoc
    ((("schema", Obs_json.String "slin-profile/v1") :: meta)
    @ [
        ("wall_ns", Obs_json.Int w);
        ("accounted_pct", Obs_json.Float (accounted_pct t));
        ( "totals",
          Obs_json.Assoc
            [
              ("nodes", Obs_json.Int nodes);
              ("cache_hits", Obs_json.Int hits);
              ("prunes", Obs_json.Int prunes);
              ("nodes_per_sec", Obs_json.Float nps);
              ( "phase_ns",
                Obs_json.Assoc
                  (List.map
                     (fun ph -> (phase_tag ph, Obs_json.Int (phase ph)))
                     [ Solve; Merge; Cross_check; Steal; Share; Idle ]) );
              ("kills", kills_json kills);
            ] );
        ("lanes", Obs_json.List (List.map (lane_json t) ls));
      ])

(* ---------------------------------------------------------------- *)
(* Validation                                                        *)
(* ---------------------------------------------------------------- *)

let validate doc =
  let open Obs_json in
  let ( let* ) r f = Result.bind r f in
  let need name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let need_int obj name =
    match member name obj with
    | Some (Int _) -> Ok ()
    | Some _ -> Error (Printf.sprintf "field %S is not an integer" name)
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let* () =
    match member "schema" doc with
    | Some (String "slin-profile/v1") -> Ok ()
    | Some (String s) -> Error (Printf.sprintf "unexpected schema %S" s)
    | _ -> Error "missing schema tag"
  in
  let* () = need_int doc "wall_ns" in
  let* tot = need "totals" (member "totals" doc) in
  let* () = need_int tot "nodes" in
  let* () = need_int tot "cache_hits" in
  let* () =
    match member "nodes_per_sec" tot with
    | Some (Float _ | Int _) -> Ok ()
    | _ -> Error "totals.nodes_per_sec missing or not a number"
  in
  let check_phase_ns owner obj =
    match member "phase_ns" obj with
    | Some (Assoc kvs) ->
        let tags = List.map phase_tag [ Solve; Merge; Cross_check; Idle ] in
        let rec go = function
          | [] -> Ok ()
          | tag :: rest -> (
              match List.assoc_opt tag kvs with
              | Some (Int _) -> go rest
              | _ -> Error (Printf.sprintf "%s.phase_ns.%s missing or not an integer" owner tag))
        in
        go tags
    | _ -> Error (Printf.sprintf "%s.phase_ns missing" owner)
  in
  let* () = check_phase_ns "totals" tot in
  let* lanes = need "lanes" (member "lanes" doc) in
  let* lanes = need "lanes (list)" (to_list lanes) in
  let rec check_lanes = function
    | [] -> Ok ()
    | l :: rest ->
        let* () = need_int l "domain" in
        let* () = need_int l "nodes" in
        let* () = need_int l "cache_hits" in
        let* () = check_phase_ns "lane" l in
        let* () =
          match member "spans" l with
          | Some (List spans) ->
              let rec sp = function
                | [] -> Ok ()
                | s :: srest ->
                    let* () = need_int s "start_ns" in
                    let* () = need_int s "dur_ns" in
                    let* () =
                      match member "phase" s with
                      | Some (String ("solve" | "merge" | "idle" | "cross_check" | "steal" | "share")) ->
                          Ok ()
                      | _ -> Error "span.phase missing or unknown"
                    in
                    sp srest
              in
              sp spans
          | _ -> Error "lane.spans missing"
        in
        check_lanes rest
  in
  check_lanes lanes

(* ---------------------------------------------------------------- *)
(* ASCII summary                                                     *)
(* ---------------------------------------------------------------- *)

let pp_summary fmt t =
  let w = wall_ns t in
  let ls, nodes, hits, prunes, kills, phase = totals t in
  let wall_s = float_of_int w /. 1e9 in
  let nps = if w <= 0 then 0. else float_of_int nodes *. 1e9 /. float_of_int w in
  Format.fprintf fmt "wall %.3f s, %d lanes, %d nodes (%.0f nodes/s), %d cache hits%s@." wall_s
    (List.length ls) nodes nps hits
    (if prunes > 0 then Printf.sprintf ", %d prunes" prunes else "");
  let pct ns = if w <= 0 then 0. else 100. *. float_of_int ns /. float_of_int w in
  Format.fprintf fmt "lane   nodes      hits   solve%%  merge%%  xchk%%  steal%%  share%%   idle%%@.";
  List.iter
    (fun l ->
      Format.fprintf fmt "d%-4d %8d %8d   %5.1f   %5.1f  %5.1f   %5.1f   %5.1f   %5.1f@."
        l.l_domain l.l_nodes l.l_hits
        (pct (lane_phase_ns_in t l Solve))
        (pct (lane_phase_ns_in t l Merge))
        (pct (lane_phase_ns_in t l Cross_check))
        (pct (lane_phase_ns_in t l Steal))
        (pct (lane_phase_ns_in t l Share))
        (pct (lane_phase_ns_in t l Idle)))
    ls;
  ignore phase;
  let total_kills = Array.fold_left ( + ) 0 kills in
  if total_kills > 0 then begin
    Format.fprintf fmt "kills:";
    List.iter
      (fun r ->
        let k = kills.(kill_index r) in
        if k > 0 then Format.fprintf fmt " %s=%d" (kill_tag r) k)
      all_kills;
    Format.fprintf fmt "@."
  end;
  let cols =
    List.concat_map (fun l -> List.rev_map (fun (c, p, n, o) -> (c, (p, n, o, l.l_domain))) l.l_columns) ls
    |> List.sort compare
  in
  if cols <> [] then begin
    Format.fprintf fmt "columns:";
    List.iter
      (fun (c, (p, n, o, d)) ->
        Format.fprintf fmt " c%d[p%d]=%d@@d%d%s" c p n d (if o = "ok" then "" else "(" ^ o ^ ")"))
      cols;
    Format.fprintf fmt "@."
  end;
  Format.fprintf fmt "lanes account for %.1f%% of wall time@." (accounted_pct t)

(* ---------------------------------------------------------------- *)
(* Chrome trace: one thread lane per domain                          *)
(* ---------------------------------------------------------------- *)

let to_trace ?(process_name = "slin profile") t =
  let tr = Obs_trace.create () in
  Obs_trace.process_name tr process_name;
  let t0 = t.t_t0_ns in
  let w = wall_ns t in
  List.iter
    (fun l ->
      Obs_trace.thread_name tr ~tid:l.l_domain (Printf.sprintf "domain %d" l.l_domain);
      let spans =
        List.sort (fun a b -> compare a.sp_start_ns b.sp_start_ns) (List.rev l.l_spans)
      in
      (* Emit recorded spans, and fill gaps between top-level (non
         cross-check) spans with synthesized idle slices so each lane
         visually accounts for the whole run. *)
      let cursor = ref 0 in
      List.iter
        (fun sp ->
          let rel = sp.sp_start_ns - t0 in
          (match sp.sp_phase with
          | Cross_check -> ()
          | _ ->
              if rel - !cursor > 1_000 then
                Obs_trace.complete tr ~cat:"prof" ~tid:l.l_domain
                  ~ts_us:(float_of_int !cursor /. 1e3)
                  ~dur_us:(float_of_int (rel - !cursor) /. 1e3)
                  "idle";
              cursor := max !cursor (rel + sp.sp_dur_ns));
          let name =
            if sp.sp_label = "" then phase_tag sp.sp_phase
            else phase_tag sp.sp_phase ^ " " ^ sp.sp_label
          in
          Obs_trace.complete tr ~cat:"prof" ~tid:l.l_domain
            ~ts_us:(float_of_int rel /. 1e3)
            ~dur_us:(float_of_int sp.sp_dur_ns /. 1e3)
            name)
        spans;
      if w - !cursor > 1_000 then
        Obs_trace.complete tr ~cat:"prof" ~tid:l.l_domain
          ~ts_us:(float_of_int !cursor /. 1e3)
          ~dur_us:(float_of_int (w - !cursor) /. 1e3)
          "idle")
    (lanes t);
  tr
