(* Minimal JSON values: enough to serialize metrics, stats and Chrome
   trace events, and to parse them back in tests and tooling.  The
   toolchain has no JSON library baked in, so this is self-contained.

   The printer emits valid JSON (RFC 8259): strings are escaped,
   non-finite floats become [null], integral floats keep a trailing
   ".0" so they survive a round trip as floats. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ---------------------------------------------------------------- *)
(* Printing                                                          *)
(* ---------------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else s

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        l;
      Buffer.add_char buf ']'
  | Assoc kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          add buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* ---------------------------------------------------------------- *)
(* Parsing (recursive descent)                                       *)
(* ---------------------------------------------------------------- *)

exception Parse_error of string

let parse_error pos msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

(* Nesting cap: [parse_value] recurses per '['/'{', so adversarial input
   like a megabyte of open brackets would otherwise blow the OCaml stack
   with [Stack_overflow] — an uncatchable-looking crash instead of the
   structured diagnostic the serve/explain paths promise.  1024 levels
   is far beyond any document this tool emits. *)
let max_nesting = 1024

let of_string_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let depth = ref 0 in
  let enter () =
    incr depth;
    if !depth > max_nesting then parse_error !pos "nesting too deep"
  in
  let leave () = decr depth in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else parse_error !pos (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else parse_error !pos (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then parse_error !pos "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then parse_error !pos "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> parse_error !pos "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* Encode the BMP code point as UTF-8. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> parse_error !pos (Printf.sprintf "bad escape \\%C" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E' then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> parse_error start "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> parse_error start "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        enter ();
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          leave ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> parse_error !pos "expected ',' or ']'"
          in
          let l = List (items []) in
          leave ();
          l
    | Some '{' ->
        enter ();
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          leave ();
          Assoc []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> parse_error !pos "expected ',' or '}'"
          in
          let a = Assoc (members []) in
          leave ();
          a
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error !pos "trailing garbage";
  v

let of_string s =
  match of_string_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
  | exception Stack_overflow ->
      (* Unreachable while [max_nesting] holds, but [of_string] promises
         "never an uncaught exception" to the serve/explain paths. *)
      Error "nesting too deep"

(* ---------------------------------------------------------------- *)
(* Accessors                                                         *)
(* ---------------------------------------------------------------- *)

let member key = function Assoc kvs -> List.assoc_opt key kvs | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_assoc = function Assoc kvs -> Some kvs | _ -> None

let to_int_list v =
  match to_list v with
  | None -> None
  | Some items ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | Int i :: rest -> go (i :: acc) rest
        | _ -> None
      in
      go [] items
