(** Minimal JSON values (RFC 8259 subset) with a printer and a parser.

    The observability layer serializes metrics snapshots, checker stats
    and Chrome trace events through this type; tests and tooling parse
    them back.  Self-contained because the baked-in toolchain carries no
    JSON library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Strings are escaped; non-finite
    floats render as [null]. *)

val pp : Format.formatter -> t -> unit

exception Parse_error of string

val of_string : string -> (t, string) result
(** Parse one complete JSON document (trailing garbage is an error).
    Never raises: malformed, truncated or pathologically nested input
    (beyond 1024 levels) yields [Error] with a diagnostic. *)

val of_string_exn : string -> t
(** @raise Parse_error on malformed input. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member k (Assoc kvs)] is the value bound to [k], if any. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option
val to_assoc : t -> (string * t) list option

val to_int_list : t -> int list option
(** All-[Int] lists only — the shape schedules take in witness files. *)
