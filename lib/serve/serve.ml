(* slin serve — a supervised, checkpoint/resume checking service.

   One [t] owns a bounded request queue, a memo table and a pool of
   worker domains.  The design goal is that no single request can take
   the daemon down or wedge it:

   - every request runs under a deadline, enforced through the engine's
     [?interrupt] hook, so a too-hard instance degrades to the existing
     inconclusive verdict instead of hanging a worker;
   - the same hook doubles as a heartbeat: the driver loop watches
     heartbeat age and cancels stalled workers cooperatively;
   - a worker that {e crashes} (an escaped exception — in tests, the
     gated fault injector below) is restarted by its supervisor wrapper
     and the request re-enqueued with exponential backoff, at most
     [max_retries] times, then answered with a structured [failed]
     response;
   - check requests run under {!Lincheck.checkpointing} with the
     checkpoint kept on the job record, so a retried attempt resumes
     from the last completed column instead of starting over — and
     reaches the same verdict, by the engine's column determinism;
   - past [queue_limit] the oldest sheddable queued request is shed
     (else the incoming one), with a structured [shed] response.

   Everything observable (responses, the report) is versioned JSON so
   CI can validate shape and gate counters with [slin stats diff]. *)

let schema = "slin-serve/v1"
let report_schema = "slin-serve-report/v1"

type kind = Check | Fuzz | Coverage | Explain

let kind_tag = function
  | Check -> "check"
  | Fuzz -> "fuzz"
  | Coverage -> "coverage"
  | Explain -> "explain"

let kind_of_tag = function
  | "check" -> Some Check
  | "fuzz" -> Some Fuzz
  | "coverage" -> Some Coverage
  | "explain" -> Some Explain
  | _ -> None

type request = {
  rq_id : string;
  rq_kind : kind;
  rq_object : string;
  rq_witness_file : string option;
  rq_max_nodes : int;
  rq_max_depth : int option;
  rq_seed : int;
  rq_runs : int;
  rq_jobs : int;
  rq_steal_grain : int;
  rq_deadline_ms : int option;
  rq_sheddable : bool;
  rq_fault_cols : int option;
  rq_fault_times : int;
}

(* ---------------- request parsing ---------------- *)

let ( let* ) = Result.bind

let request_of_json ~allow_faults j =
  let open Obs_json in
  let str_field k =
    match member k j with
    | None -> Ok None
    | Some (String s) -> Ok (Some s)
    | Some _ -> Error (Printf.sprintf "request field %S must be a string" k)
  in
  let int_field k =
    match member k j with
    | None -> Ok None
    | Some v -> (
        match to_int v with
        | Some i -> Ok (Some i)
        | None -> Error (Printf.sprintf "request field %S must be an integer" k))
  in
  let bool_field k =
    match member k j with
    | None -> Ok None
    | Some (Bool b) -> Ok (Some b)
    | Some _ -> Error (Printf.sprintf "request field %S must be a boolean" k)
  in
  match j with
  | Assoc _ ->
      let* kind_s = str_field "kind" in
      let* kind =
        match kind_s with
        | None -> Error "request has no kind field"
        | Some s -> (
            match kind_of_tag s with
            | Some k -> Ok k
            | None -> Error (Printf.sprintf "unknown request kind %S" s))
      in
      let* id = str_field "id" in
      let* obj = str_field "object" in
      let* wfile = str_field "witness_file" in
      let* max_nodes = int_field "max_nodes" in
      let* depth = int_field "max_depth" in
      let* seed = int_field "seed" in
      let* runs = int_field "runs" in
      let* jobs = int_field "jobs" in
      let* steal_grain = int_field "steal_grain" in
      let* deadline = int_field "deadline_ms" in
      let* sheddable = bool_field "sheddable" in
      let* fault =
        match member "fault" j with
        | None -> Ok None
        | Some f ->
            if not allow_faults then
              Error "fault injection is not enabled (start with --allow-fault-injection)"
            else if kind <> Check then Error "fault injection only applies to check requests"
            else (
              match Option.bind (member "after_cols" f) to_int with
              | Some cols when cols >= 1 ->
                  let times =
                    match Option.bind (member "times" f) to_int with
                    | Some t when t >= 1 -> t
                    | _ -> 1
                  in
                  Ok (Some (cols, times))
              | _ -> Error "fault needs an integer after_cols >= 1")
      in
      let* () =
        match kind with
        | Explain -> if wfile = None then Error "explain requires witness_file" else Ok ()
        | _ -> (
            match obj with
            | Some o when o <> "" -> Ok ()
            | _ -> Error (Printf.sprintf "%s requires a registry object name" (kind_tag kind)))
      in
      Ok
        {
          rq_id = Option.value id ~default:"";
          rq_kind = kind;
          rq_object = Option.value obj ~default:"";
          rq_witness_file = wfile;
          rq_max_nodes = max 1 (Option.value max_nodes ~default:200_000);
          rq_max_depth = depth;
          rq_seed = Option.value seed ~default:1;
          rq_runs = max 1 (Option.value runs ~default:200);
          rq_jobs = min 8 (max 1 (Option.value jobs ~default:1));
          (* Scheduling detail, not checked work: any value yields the
             same verdict, so clamp instead of rejecting. *)
          rq_steal_grain = min 64 (max 0 (Option.value steal_grain ~default:4));
          rq_deadline_ms = deadline;
          rq_sheddable = Option.value sheddable ~default:true;
          rq_fault_cols = Option.map fst fault;
          rq_fault_times = (match fault with Some (_, t) -> t | None -> 0);
        }
  | _ -> Error "request must be a JSON object"

let request_of_line ~allow_faults line =
  match Obs_json.of_string line with
  | Error e -> Error ("malformed request JSON: " ^ e)
  | Ok j -> request_of_json ~allow_faults j

(* ---------------- configuration ---------------- *)

type config = {
  workers : int;
  queue_limit : int;
  max_retries : int;
  backoff_ms : int;
  default_deadline_ms : int;
  stall_ms : int;
  memo : bool;
  deterministic : bool;
  allow_faults : bool;
}

let default_config =
  {
    workers = 2;
    queue_limit = 64;
    max_retries = 2;
    backoff_ms = 25;
    default_deadline_ms = 60_000;
    stall_ms = 10_000;
    memo = true;
    deterministic = false;
    allow_faults = false;
  }

(* Budgets are deliberately not part of the key: completed columns are
   valid facts about the game tree whatever budget discovered them, so a
   checkpoint taken under one budget may resume under another.  Reduction
   and preemption bounds ARE part of the key — they change which columns
   count as fully explored — but only when non-default, so every
   fingerprint (and checkpoint) minted before they existed stays valid. *)
let config_fingerprint ?(reduce = false) ?preempt_bound ~object_name ~max_depth () =
  Printf.sprintf "%s|depth=%s|%s%s%s" object_name
    (match max_depth with Some d -> string_of_int d | None -> "none")
    Lincheck.engine_fingerprint
    (if reduce then "|reduce" else "")
    (match preempt_bound with Some b -> Printf.sprintf "|preempt=%d" b | None -> "")

(* ---------------- service state ---------------- *)

type memo_entry = {
  m_kind : string;
  m_object : string;
  m_status : string;
  m_exit : int;
  m_extra : (string * Obs_json.t) list;
}

type job = {
  j_idx : int;  (* arrival index; slot in the batch output *)
  j_req : request;
  j_key : string option;  (* memo/coalesce key; [None] = not memoizable *)
  mutable j_attempts : int;  (* dispatches so far (1 = first try) *)
  mutable j_fault_left : int;
  mutable j_resume : Lincheck.checkpoint option;  (* survives a crash *)
  mutable j_waiters : (int * string) list;  (* coalesced (idx, id), newest first *)
  mutable j_delivered : bool;
}

type t = {
  cfg : config;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable queue : job list;  (* arrival order; retries go to the front *)
  mutable qlen : int;
  mutable stopping : bool;
  memo : (string, memo_entry) Hashtbl.t;
  pending : (string, job) Hashtbl.t;  (* queued or running, for coalescing *)
  hb : int Atomic.t array;  (* per-worker last heartbeat, ns *)
  cancel : bool Atomic.t array;  (* per-worker cooperative cancel flag *)
  busy : job option array;  (* under [lock] *)
  mutable deliver : int -> Obs_json.t -> unit;  (* set by the active driver *)
  t_created : int;
  mutable n_requests : int;
  mutable n_done : int;
  mutable n_inconclusive : int;
  mutable n_failed : int;
  mutable n_shed : int;
  mutable n_rejected : int;
  mutable n_memo_hits : int;
  mutable n_coalesced : int;
  mutable n_retries : int;
  mutable n_restarts : int;
}

let create cfg =
  let workers = max 1 cfg.workers in
  let cfg = { cfg with workers } in
  {
    cfg;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queue = [];
    qlen = 0;
    stopping = false;
    memo = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    hb = Array.init workers (fun _ -> Atomic.make 0);
    cancel = Array.init workers (fun _ -> Atomic.make false);
    busy = Array.make workers None;
    deliver = (fun _ _ -> ());
    t_created = Obs.now_ns ();
    n_requests = 0;
    n_done = 0;
    n_inconclusive = 0;
    n_failed = 0;
    n_shed = 0;
    n_rejected = 0;
    n_memo_hits = 0;
    n_coalesced = 0;
    n_retries = 0;
    n_restarts = 0;
  }

let memo_key req =
  match req.rq_kind with
  | Explain -> None (* file-based input; content can change under the same path *)
  | _ when req.rq_fault_cols <> None -> None (* crash drills must actually run *)
  | _ ->
      Some
        (Obs_json.to_string
           (Obs_json.Assoc
              [
                ("kind", Obs_json.String (kind_tag req.rq_kind));
                ("object", Obs_json.String req.rq_object);
                ("max_nodes", Obs_json.Int req.rq_max_nodes);
                ( "max_depth",
                  match req.rq_max_depth with Some d -> Obs_json.Int d | None -> Obs_json.Null );
                ("seed", Obs_json.Int req.rq_seed);
                ("runs", Obs_json.Int req.rq_runs);
                ("jobs", Obs_json.Int req.rq_jobs);
                (* deadline_ms is excluded: it decides when we give up,
                   not what the answer is — and inconclusive-by-deadline
                   results are never memoized anyway. *)
                ("engine", Obs_json.String Lincheck.engine_fingerprint);
              ]))

(* ---------------- responses ---------------- *)

let count_status t = function
  | "done" -> t.n_done <- t.n_done + 1
  | "inconclusive" -> t.n_inconclusive <- t.n_inconclusive + 1
  | "failed" -> t.n_failed <- t.n_failed + 1
  | "shed" -> t.n_shed <- t.n_shed + 1
  | _ -> t.n_rejected <- t.n_rejected + 1

let build_response t ~idx ~id ~kind ~obj ~attempts ~memo ~elapsed_ns (status, code, extra) =
  let open Obs_json in
  let base =
    [
      ("schema", String schema);
      ("id", String id);
      ("idx", Int idx);
      ("kind", String kind);
      ("object", String obj);
      ("status", String status);
      ("exit", Int code);
      ("attempts", Int attempts);
    ]
  in
  let memo_f = if memo then [ ("memo", Bool true) ] else [] in
  let timing =
    if t.cfg.deterministic || elapsed_ns <= 0 then []
    else [ ("elapsed_ms", Float (float_of_int elapsed_ns /. 1e6)) ]
  in
  Assoc (base @ memo_f @ extra @ timing)

(* A lone response with no job behind it (rejected input, memo hit). *)
let respond_direct t ~idx ~id ~kind ~obj ~memo ~count (status, code, extra) =
  Mutex.lock t.lock;
  if count then count_status t status;
  Mutex.unlock t.lock;
  t.deliver idx
    (build_response t ~idx ~id ~kind ~obj ~attempts:0 ~memo ~elapsed_ns:0 (status, code, extra))

(* Results worth remembering: real verdicts, and inconclusives that are
   a property of the instance (node budget) rather than of this
   particular run's wall-clock luck (deadline/stall are never cached). *)
let memoizable status extra =
  status = "done"
  || status = "inconclusive"
     && List.assoc_opt "reason" extra = Some (Obs_json.String "nodes")

(* Answer a job and every request coalesced onto it; idempotent so a
   crash-after-delivery can never double-respond. *)
let respond_job t job ~elapsed_ns (status, code, extra) =
  let req = job.j_req in
  Mutex.lock t.lock;
  let fresh = not job.j_delivered in
  if fresh then begin
    job.j_delivered <- true;
    count_status t status;
    List.iter (fun _ -> count_status t status) job.j_waiters;
    match job.j_key with
    | None -> ()
    | Some key ->
        Hashtbl.remove t.pending key;
        if t.cfg.memo && memoizable status extra then
          Hashtbl.replace t.memo key
            {
              m_kind = kind_tag req.rq_kind;
              m_object = req.rq_object;
              m_status = status;
              m_exit = code;
              m_extra = extra;
            }
  end;
  Mutex.unlock t.lock;
  if fresh then begin
    let mk ~idx ~id =
      build_response t ~idx ~id ~kind:(kind_tag req.rq_kind) ~obj:req.rq_object
        ~attempts:job.j_attempts ~memo:false ~elapsed_ns (status, code, extra)
    in
    t.deliver job.j_idx (mk ~idx:job.j_idx ~id:req.rq_id);
    List.iter (fun (idx, id) -> t.deliver idx (mk ~idx ~id)) (List.rev job.j_waiters)
  end

(* ---------------- submission: reject / memo / coalesce / shed ---------------- *)

let shed_response = ("shed", 2, [ ("reason", Obs_json.String "queue full") ])

(* Oldest sheddable queued job, if any; retried jobs (attempts > 0) are
   in-flight work we already paid for and are never shed. *)
let pop_sheddable t =
  let rec go acc = function
    | [] -> None
    | j :: rest when j.j_req.rq_sheddable && j.j_attempts = 0 -> Some (j, List.rev_append acc rest)
    | j :: rest -> go (j :: acc) rest
  in
  go [] t.queue

let submit t ~idx line =
  Mutex.lock t.lock;
  t.n_requests <- t.n_requests + 1;
  Mutex.unlock t.lock;
  let reject ~id ~kind ~obj msg =
    respond_direct t ~idx ~id ~kind ~obj ~memo:false ~count:true
      ("rejected", 2, [ ("error", Obs_json.String msg) ])
  in
  match Obs_json.of_string line with
  | Error e -> reject ~id:"" ~kind:"unknown" ~obj:"" ("malformed request JSON: " ^ e)
  | Ok j -> (
      (* Salvage id/kind for the rejected response even when the request
         is structurally bad, so the caller can still correlate it. *)
      let salvage k =
        match Obs_json.member k j with Some (Obs_json.String s) -> s | _ -> ""
      in
      match request_of_json ~allow_faults:t.cfg.allow_faults j with
      | Error e ->
          reject ~id:(salvage "id")
            ~kind:(if salvage "kind" = "" then "unknown" else salvage "kind")
            ~obj:(salvage "object") e
      | Ok req -> (
          let kind = kind_tag req.rq_kind in
          match
            if req.rq_kind = Explain then None
            else if Registry.find req.rq_object = None then
              Some (Printf.sprintf "unknown object %S" req.rq_object)
            else None
          with
          | Some msg -> reject ~id:req.rq_id ~kind ~obj:req.rq_object msg
          | None -> (
              let key = if t.cfg.memo then memo_key req else None in
              let memo_hit =
                match key with
                | None -> None
                | Some k ->
                    Mutex.lock t.lock;
                    let m = Hashtbl.find_opt t.memo k in
                    if m <> None then t.n_memo_hits <- t.n_memo_hits + 1;
                    Mutex.unlock t.lock;
                    m
              in
              match memo_hit with
              | Some m ->
                  respond_direct t ~idx ~id:req.rq_id ~kind:m.m_kind ~obj:m.m_object ~memo:true
                    ~count:true (m.m_status, m.m_exit, m.m_extra)
              | None -> (
                  Mutex.lock t.lock;
                  let coalesced =
                    match key with
                    | None -> false
                    | Some k -> (
                        match Hashtbl.find_opt t.pending k with
                        | Some owner when not owner.j_delivered ->
                            owner.j_waiters <- (idx, req.rq_id) :: owner.j_waiters;
                            t.n_coalesced <- t.n_coalesced + 1;
                            true
                        | _ -> false)
                  in
                  if coalesced then Mutex.unlock t.lock
                  else begin
                    let job =
                      {
                        j_idx = idx;
                        j_req = req;
                        j_key = key;
                        j_attempts = 0;
                        j_fault_left = (if req.rq_fault_cols = None then 0 else req.rq_fault_times);
                        j_resume = None;
                        j_waiters = [];
                        j_delivered = false;
                      }
                    in
                    let shed_out =
                      if t.qlen < t.cfg.queue_limit then begin
                        t.queue <- t.queue @ [ job ];
                        t.qlen <- t.qlen + 1;
                        None
                      end
                      else
                        match pop_sheddable t with
                        | Some (old, rest) ->
                            t.queue <- rest @ [ job ];
                            Some old
                        | None ->
                            if req.rq_sheddable then Some job
                            else begin
                              (* nothing sheddable and the newcomer is
                                 not either: admit it over the limit —
                                 unsheddable work must be served *)
                              t.queue <- t.queue @ [ job ];
                              t.qlen <- t.qlen + 1;
                              None
                            end
                    in
                    let queued = match shed_out with Some s -> s != job | None -> true in
                    (match (key, queued) with
                    | Some k, true -> Hashtbl.replace t.pending k job
                    | _ -> ());
                    Condition.signal t.nonempty;
                    Mutex.unlock t.lock;
                    match shed_out with
                    | Some victim -> respond_job t victim ~elapsed_ns:0 shed_response
                    | None -> ()
                  end))))

(* ---------------- executors ---------------- *)

exception Fault_injected

let () =
  Printexc.register_printer (function
    | Fault_injected -> Some "injected worker fault (testing)"
    | _ -> None)

(* Run one request on worker [k].  May raise (that is the point of the
   supervisor); everything observable goes through [respond_job]. *)
let execute t k job =
  job.j_attempts <- job.j_attempts + 1;
  let req = job.j_req in
  let deadline_ms = Option.value req.rq_deadline_ms ~default:t.cfg.default_deadline_ms in
  let t_start = Obs.now_ns () in
  let deadline_ns = t_start + (deadline_ms * 1_000_000) in
  let cancel = t.cancel.(k) and hb = t.hb.(k) in
  let interrupt () =
    Atomic.set hb (Obs.now_ns ());
    Atomic.get cancel || Obs.now_ns () > deadline_ns
  in
  let interrupt_reason () = if Atomic.get cancel then "stalled" else "deadline" in
  (* [verdict_fields] tags an interrupt as just "interrupt"; the daemon
     knows which robustness path fired, so say so. *)
  let retag_interrupt fields =
    List.map
      (function
        | "reason", Obs_json.String "interrupt" ->
            ("reason", Obs_json.String (interrupt_reason ()))
        | kv -> kv)
      fields
  in
  let result =
    match Registry.find req.rq_object with
    | None when req.rq_kind <> Explain ->
        ("rejected", 2, [ ("error", Obs_json.String "unknown object") ])
    | found -> (
        match req.rq_kind with
        | Explain -> (
            let path = Option.value req.rq_witness_file ~default:"" in
            match Witness.parse_file path with
            | Error e -> ("rejected", 2, [ ("error", Obs_json.String e) ])
            | Ok p -> (
                match Registry.find p.Witness.p_object with
                | None ->
                    ( "rejected",
                      2,
                      [
                        ( "error",
                          Obs_json.String
                            (Printf.sprintf "witness references unknown object %S"
                               p.Witness.p_object) );
                      ] )
                | Some (Registry.Checkable c) ->
                    let (module S) = c.spec in
                    let module W = Witness.Make (S) in
                    let prog = Harness.program ~make:c.make ~workload:c.workload in
                    let rep = W.replay prog p in
                    ( "done",
                      (if rep.W.reproduced then 0 else 1),
                      [
                        ("witness_object", Obs_json.String p.Witness.p_object);
                        ("reproduced", Obs_json.Bool rep.W.reproduced);
                        ( "notes",
                          Obs_json.List (List.map (fun s -> Obs_json.String s) rep.W.notes) );
                      ] )))
        | Check | Coverage -> (
            match found with
            | None -> assert false (* handled above *)
            | Some (Registry.Checkable c) ->
                let (module S) = c.spec in
                let module L = Lincheck.Make (S) in
                let prog = Harness.program ~make:c.make ~workload:c.workload in
                let depth =
                  match req.rq_max_depth with Some _ as d -> d | None -> c.default_depth
                in
                let coverage =
                  if req.rq_kind = Coverage then Some (Coverage.create ()) else None
                in
                (* Coverage runs skip checkpointing: a resumed run does
                   not re-visit completed columns, so its observation
                   counts would not match an uninterrupted one. *)
                let checkpointing =
                  if req.rq_kind = Check then
                    Some
                      {
                        Lincheck.cp_config =
                          config_fingerprint ~object_name:req.rq_object ~max_depth:depth ();
                        cp_resume = job.j_resume;
                        cp_emit =
                          (fun ck ->
                            job.j_resume <- Some ck;
                            match req.rq_fault_cols with
                            | Some cols
                              when job.j_fault_left > 0
                                   && List.length ck.Lincheck.ck_columns >= cols ->
                                job.j_fault_left <- job.j_fault_left - 1;
                                raise Fault_injected
                            | _ -> ());
                      }
                  else None
                in
                let v, _st =
                  L.check_strong_stats ~max_nodes:req.rq_max_nodes ?max_depth:depth
                    ~jobs:req.rq_jobs ~steal_grain:req.rq_steal_grain ~interrupt
                    ?checkpointing ?coverage prog
                in
                let status, code =
                  match v with
                  | L.Strongly_linearizable _ -> ("done", 0)
                  | L.Not_linearizable _ | L.Not_strongly_linearizable _ -> ("done", 1)
                  | L.Out_of_budget _ -> ("inconclusive", 2)
                in
                let cov_fields =
                  match coverage with
                  | None -> []
                  | Some cov ->
                      let cs = Coverage.stats cov in
                      [
                        ("observations", Obs_json.Int cs.Coverage.observations);
                        ("unique_worlds", Obs_json.Int cs.Coverage.unique);
                        ( "unique_ratio",
                          Obs_json.Float
                            (if cs.Coverage.observations = 0 then 0.
                             else
                               float_of_int cs.Coverage.unique
                               /. float_of_int cs.Coverage.observations) );
                      ]
                in
                (status, code, retag_interrupt (L.verdict_fields v) @ cov_fields))
        | Fuzz -> (
            match found with
            | None -> assert false (* handled above *)
            | Some (Registry.Checkable c) ->
                let (module S) = c.spec in
                let module A = Adversary.Make (S) in
                let prog = Harness.program ~make:c.make ~workload:c.workload in
                let r =
                  A.fuzz ~seed:req.rq_seed ~runs:req.rq_runs ~shrink:false ~jobs:req.rq_jobs
                    ~interrupt prog
                in
                let base =
                  [
                    ("runs", Obs_json.Int r.A.fz_runs);
                    ("crashed_runs", Obs_json.Int r.A.fz_crashed_runs);
                    ("schedule_steps", Obs_json.Int r.A.fz_total_steps);
                  ]
                in
                if r.A.fz_interrupted then
                  ( "inconclusive",
                    2,
                    (("reason", Obs_json.String (interrupt_reason ())) :: base)
                    @ [ ("interrupted", Obs_json.Bool true) ] )
                else
                  (match r.A.fz_violation with
                  | Some v ->
                      ( "done",
                        1,
                        base
                        @ [
                            ("violation", Obs_json.Bool true);
                            ("violation_seed", Obs_json.Int v.A.v_seed);
                            ( "certificate_steps",
                              Obs_json.Int (Witness.size v.A.v_shape) );
                          ] )
                  | None -> ("done", 0, base @ [ ("violation", Obs_json.Bool false) ]))))
  in
  respond_job t job ~elapsed_ns:(Obs.now_ns () - t_start) result

(* ---------------- the supervised worker pool ---------------- *)

let take_job t k =
  Mutex.lock t.lock;
  while t.queue = [] && not t.stopping do
    Condition.wait t.nonempty t.lock
  done;
  let r =
    match t.queue with
    | [] -> None
    | job :: rest ->
        t.queue <- rest;
        t.qlen <- t.qlen - 1;
        t.busy.(k) <- Some job;
        Atomic.set t.cancel.(k) false;
        Atomic.set t.hb.(k) (Obs.now_ns ());
        Some job
  in
  Mutex.unlock t.lock;
  r

let clear_busy t k =
  Mutex.lock t.lock;
  t.busy.(k) <- None;
  Mutex.unlock t.lock

(* The supervisor: a worker whose [execute] raises is "restarted" (its
   loop re-entered with clean state) and the victim request re-enqueued
   at the front with exponentially backed-off delay — unless it has
   exhausted its retries, in which case it gets a structured [failed]
   response.  Either way the daemon keeps serving. *)
let supervised t k =
  let rec loop () =
    match take_job t k with
    | None -> ()
    | Some job ->
        (match execute t k job with
        | () -> clear_busy t k
        | exception exn ->
            clear_busy t k;
            Mutex.lock t.lock;
            t.n_restarts <- t.n_restarts + 1;
            Mutex.unlock t.lock;
            if job.j_delivered then ()
            else if job.j_attempts > t.cfg.max_retries then
              respond_job t job ~elapsed_ns:0
                ( "failed",
                  2,
                  [
                    ( "error",
                      Obs_json.String
                        (Printf.sprintf "worker crashed (%d attempts): %s" job.j_attempts
                           (Printexc.to_string exn)) );
                  ] )
            else begin
              Mutex.lock t.lock;
              t.n_retries <- t.n_retries + 1;
              Mutex.unlock t.lock;
              let backoff =
                float_of_int (t.cfg.backoff_ms * (1 lsl min 10 (job.j_attempts - 1))) /. 1000.
              in
              Unix.sleepf (Float.min 2.0 backoff);
              Mutex.lock t.lock;
              t.queue <- job :: t.queue;
              t.qlen <- t.qlen + 1;
              Condition.signal t.nonempty;
              Mutex.unlock t.lock
            end);
        loop ()
  in
  loop ()

let start_workers t =
  Mutex.lock t.lock;
  t.stopping <- false;
  Mutex.unlock t.lock;
  Array.init t.cfg.workers (fun k -> Domain.spawn (fun () -> supervised t k))

let stop_workers t doms =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  Array.iter Domain.join doms

(* Cooperative stall detection: a busy worker whose heartbeat (refreshed
   by the engine's interrupt poll, i.e. every fresh node) is older than
   [stall_ms] gets its cancel flag set; the run then degrades to an
   inconclusive "stalled" verdict at its next poll.  Cancellation is
   cooperative at node granularity — a worker that never reaches another
   node cannot be reclaimed without killing the domain, which OCaml does
   not allow. *)
let check_stalls t =
  let now = Obs.now_ns () in
  Mutex.lock t.lock;
  Array.iteri
    (fun k b ->
      match b with
      | Some _ when now - Atomic.get t.hb.(k) > t.cfg.stall_ms * 1_000_000 ->
          Atomic.set t.cancel.(k) true
      | _ -> ())
    t.busy;
  Mutex.unlock t.lock

(* ---------------- drivers ---------------- *)

let run_batch t lines =
  let n = List.length lines in
  let out = Array.make n Obs_json.Null in
  let dlock = Mutex.create () in
  let remaining = ref n in
  t.deliver <-
    (fun idx resp ->
      Mutex.lock dlock;
      if out.(idx) = Obs_json.Null then begin
        out.(idx) <- resp;
        decr remaining
      end;
      Mutex.unlock dlock);
  (* Enqueue everything before any worker runs: shedding and coalescing
     then depend only on the input order, so batch responses (and the
     shed count) are deterministic and baseline-able. *)
  List.iteri (fun idx line -> submit t ~idx line) lines;
  let doms = start_workers t in
  let rec wait () =
    Mutex.lock dlock;
    let r = !remaining in
    Mutex.unlock dlock;
    if r > 0 then begin
      check_stalls t;
      Unix.sleepf 0.02;
      wait ()
    end
  in
  wait ();
  stop_workers t doms;
  Array.to_list out

let serve_stream t ic oc =
  let omutex = Mutex.create () in
  let outstanding = ref 0 in
  t.deliver <-
    (fun _idx resp ->
      Mutex.lock omutex;
      output_string oc (Obs_json.to_string resp);
      output_char oc '\n';
      flush oc;
      decr outstanding;
      Mutex.unlock omutex);
  let doms = start_workers t in
  let drain () =
    let rec go () =
      Mutex.lock omutex;
      let r = !outstanding in
      Mutex.unlock omutex;
      if r > 0 then begin
        check_stalls t;
        Unix.sleepf 0.02;
        go ()
      end
    in
    go ()
  in
  Fun.protect
    ~finally:(fun () ->
      drain ();
      stop_workers t doms)
    (fun () ->
      let idx = ref 0 in
      let rec read () =
        match input_line ic with
        | line ->
            if String.trim line <> "" then begin
              Mutex.lock omutex;
              incr outstanding;
              Mutex.unlock omutex;
              submit t ~idx:!idx line;
              incr idx
            end;
            read ()
        | exception End_of_file -> ()
      in
      read ())

let serve_socket t path ~stop =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        if not (stop ()) then begin
          match Unix.accept sock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | conn, _ ->
              let ic = Unix.in_channel_of_descr conn in
              let oc = Unix.out_channel_of_descr conn in
              (try serve_stream t ic oc
               with Sys_error _ | Unix.Unix_error _ -> () (* client went away *));
              (try Unix.close conn with Unix.Unix_error _ -> ());
              accept_loop ()
        end
      in
      accept_loop ())

(* ---------------- reporting & validation ---------------- *)

let report t =
  let open Obs_json in
  Mutex.lock t.lock;
  let fields =
    [
      ("schema", String report_schema);
      ("workers", Int t.cfg.workers);
      ("queue_limit", Int t.cfg.queue_limit);
      ("requests", Int t.n_requests);
      ("done", Int t.n_done);
      ("inconclusive", Int t.n_inconclusive);
      ("failed", Int t.n_failed);
      ("shed", Int t.n_shed);
      ("rejected", Int t.n_rejected);
      ("memo_hits", Int t.n_memo_hits);
      ("coalesced", Int t.n_coalesced);
      ("retries", Int t.n_retries);
      ("worker_restarts", Int t.n_restarts);
      ( "completed_ratio",
        Float
          (float_of_int (t.n_done + t.n_inconclusive) /. float_of_int (max 1 t.n_requests)) );
    ]
  in
  let timing =
    if t.cfg.deterministic then []
    else
      let elapsed_ns = max 1 (Obs.now_ns () - t.t_created) in
      [
        ("elapsed_ms", Float (float_of_int elapsed_ns /. 1e6));
        ( "requests_per_s",
          Float (float_of_int t.n_requests *. 1e9 /. float_of_int elapsed_ns) );
      ]
  in
  Mutex.unlock t.lock;
  Assoc (fields @ timing)

let statuses = [ "done"; "inconclusive"; "failed"; "shed"; "rejected" ]
let kinds = [ "check"; "fuzz"; "coverage"; "explain"; "unknown" ]

let validate_response j =
  let open Obs_json in
  let* () =
    match member "schema" j with
    | Some (String s) when s = schema -> Ok ()
    | Some (String s) -> Error (Printf.sprintf "response schema is %S, want %S" s schema)
    | _ -> Error "response has no schema tag"
  in
  let* () = if member "id" j |> Option.map to_str |> Option.join <> None then Ok () else Error "response has no id" in
  let* () =
    match Option.bind (member "idx" j) to_int with
    | Some i when i >= 0 -> Ok ()
    | _ -> Error "response has no idx"
  in
  let* () =
    match Option.bind (member "kind" j) to_str with
    | Some k when List.mem k kinds -> Ok ()
    | Some k -> Error (Printf.sprintf "response has unknown kind %S" k)
    | None -> Error "response has no kind"
  in
  let* () =
    match Option.bind (member "object" j) to_str with
    | Some _ -> Ok ()
    | None -> Error "response has no object"
  in
  let* st =
    match Option.bind (member "status" j) to_str with
    | Some s when List.mem s statuses -> Ok s
    | Some s -> Error (Printf.sprintf "response has unknown status %S" s)
    | None -> Error "response has no status"
  in
  let* code =
    match Option.bind (member "exit" j) to_int with
    | Some c when c >= 0 && c <= 2 -> Ok c
    | _ -> Error "response exit must be 0, 1 or 2"
  in
  let* () =
    if (st = "done") = (code <> 2) then Ok ()
    else Error (Printf.sprintf "status %S inconsistent with exit %d" st code)
  in
  match Option.bind (member "attempts" j) to_int with
  | Some a when a >= 0 -> Ok ()
  | _ -> Error "response has no attempts count"

let validate_report j =
  let open Obs_json in
  let* () =
    match member "schema" j with
    | Some (String s) when s = report_schema -> Ok ()
    | Some (String s) -> Error (Printf.sprintf "report schema is %S, want %S" s report_schema)
    | _ -> Error "report has no schema tag"
  in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        match Option.bind (member k j) to_int with
        | Some v when v >= 0 -> Ok ()
        | _ -> Error (Printf.sprintf "report field %S must be a non-negative integer" k))
      (Ok ())
      [
        "workers";
        "queue_limit";
        "requests";
        "done";
        "inconclusive";
        "failed";
        "shed";
        "rejected";
        "memo_hits";
        "coalesced";
        "retries";
        "worker_restarts";
      ]
  in
  match Option.bind (member "completed_ratio" j) to_float with
  | Some r when r >= 0. && r <= 1. -> Ok ()
  | _ -> Error "report completed_ratio must be a float in [0, 1]"
