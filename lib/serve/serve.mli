(** [slin serve] — a supervised, checkpoint/resume checking service.

    The daemon accepts JSONL check/fuzz/coverage/explain requests (from
    a batch file, stdin, or a Unix socket), dispatches them to a
    supervised pool of worker domains, and answers each with one
    versioned [slin-serve/v1] JSON response line.  Robustness is the
    point:

    - {e deadlines}: each request carries (or inherits) a deadline;
      when it passes, the engine's interrupt hook degrades the run to
      the existing inconclusive verdict (exit-2 semantics) instead of
      hanging the daemon.
    - {e supervision}: workers heartbeat through the same hook; a
      stalled worker is cancelled cooperatively, and a {e crashed}
      worker (an escaped exception) is restarted, its request
      re-enqueued with bounded exponential backoff — at most
      [max_retries] re-dispatches, then a structured [failed] response.
    - {e checkpoint/resume}: check requests run under
      {!Lincheck.checkpointing}; a crashed attempt resumes from its
      last in-memory checkpoint and provably reaches the verdict an
      uninterrupted run would (column determinism).
    - {e backpressure}: the queue is bounded; past the limit the oldest
      sheddable queued request is shed (else the incoming one), with a
      structured [shed] response — the daemon never OOMs on a burst.
    - {e memoization}: verdicts are memoized keyed on (kind, registry
      object, config, engine fingerprint); duplicate in-flight requests
      coalesce onto the pending job. *)

val schema : string
(** ["slin-serve/v1"] — the per-response schema tag. *)

val report_schema : string
(** ["slin-serve-report/v1"] — the end-of-run summary schema tag. *)

type kind = Check | Fuzz | Coverage | Explain

val kind_tag : kind -> string

type request = {
  rq_id : string;  (** caller's correlation id (defaulted when absent) *)
  rq_kind : kind;
  rq_object : string;  (** registry object name (unused for [Explain]) *)
  rq_witness_file : string option;  (** [Explain]: slin-witness/v1 path *)
  rq_max_nodes : int;
  rq_max_depth : int option;  (** [None] = the registry default depth *)
  rq_seed : int;  (** [Fuzz] master seed *)
  rq_runs : int;  (** [Fuzz] campaign length *)
  rq_jobs : int;  (** engine domains for this request (clamped to 1-8) *)
  rq_steal_grain : int;
      (** work-stealing split depth (clamped to 0-64, default 4); a
          scheduling detail — the verdict is identical for every value *)
  rq_deadline_ms : int option;  (** [None] = the config default *)
  rq_sheddable : bool;  (** may this request be shed under load? *)
  rq_fault_cols : int option;
      (** fault injection (tests/CI only, gated on [allow_faults]):
          crash the worker after this many checkpointed columns *)
  rq_fault_times : int;  (** how many attempts the fault fires on *)
}

val request_of_json : allow_faults:bool -> Obs_json.t -> (request, string) result
(** Validate and default one request object.  Unknown kinds, ill-typed
    fields and fault injection without [allow_faults] are structured
    errors, never exceptions. *)

val request_of_line : allow_faults:bool -> string -> (request, string) result
(** {!Obs_json.of_string} then {!request_of_json}; malformed JSON is an
    [Error], never an exception. *)

type config = {
  workers : int;  (** worker domains (>= 1) *)
  queue_limit : int;  (** bounded queue length before shedding *)
  max_retries : int;  (** re-dispatches per request after a crash *)
  backoff_ms : int;  (** base of the exponential retry backoff *)
  default_deadline_ms : int;  (** deadline for requests that carry none *)
  stall_ms : int;
      (** heartbeat age after which a busy worker is cancelled *)
  memo : bool;  (** memoize verdicts / coalesce duplicates *)
  deterministic : bool;
      (** omit wall-clock fields from responses and the report, so
          batch output is byte-reproducible and baseline-gateable *)
  allow_faults : bool;  (** accept fault-injection requests *)
}

val default_config : config
(** 2 workers, queue limit 64, 2 retries, 25 ms backoff, 60 s deadline,
    10 s stall, memo on, deterministic off, faults off. *)

val config_fingerprint :
  ?reduce:bool ->
  ?preempt_bound:int ->
  object_name:string ->
  max_depth:int option ->
  unit ->
  string
(** The checkpoint/memo configuration key for a check of [object_name]
    at effective depth bound [max_depth] under this binary's
    {!Lincheck.engine_fingerprint}.  Node and time budgets are
    deliberately excluded: completed columns are valid facts about the
    tree whatever budget discovered them, which is what lets a
    budget-interrupted run's checkpoint resume under a larger budget.
    Partial-order reduction ([reduce]) and a preemption bound do enter
    the key — but only when non-default, so fingerprints minted before
    those modes existed remain byte-identical. *)

type t

val create : config -> t

val run_batch : t -> string list -> Obs_json.t list
(** Enqueue every line (shedding and coalescing deterministically,
    since workers only start afterwards), run the supervised pool to
    completion, and return one response per line, in arrival order.
    Never raises on malformed input lines — they get [rejected]
    responses.  Can be called repeatedly on one [t]; memoized verdicts
    persist across calls. *)

val serve_stream : t -> in_channel -> out_channel -> unit
(** Serve JSONL requests from a channel until EOF, writing each
    response (in completion order) as one JSON line, flushed.  Used for
    [slin serve] over stdin and per-connection on the socket. *)

val serve_socket : t -> string -> stop:(unit -> bool) -> unit
(** Listen on a Unix-domain socket path and serve connections
    sequentially with {!serve_stream} until [stop ()] (polled between
    connections, and on [EINTR]). *)

val report : t -> Obs_json.t
(** The [slin-serve-report/v1] summary over everything this [t] served:
    request counters by status, memo/coalesce/retry/restart counts,
    [completed_ratio], and (unless deterministic) [requests_per_s]. *)

val validate_response : Obs_json.t -> (unit, string) result
(** Structural check of one [slin-serve/v1] response. *)

val validate_report : Obs_json.t -> (unit, string) result
(** Structural check of a [slin-serve-report/v1] document. *)
