(* Arbitrary-precision naturals on 31-bit limbs, little-endian.

   Invariant: the limb array has no trailing zero limb; zero is the empty
   array.  31-bit limbs keep every intermediate of [divmod_small] and
   [mul_small] within 62 bits, so plain [int] arithmetic never overflows on
   64-bit platforms. *)

exception Underflow

let limb_bits = 31
let limb_mask = (1 lsl limb_bits) - 1
let small_max = 1 lsl 30

type t = int array

let zero : t = [||]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let is_zero x = Array.length x = 0

let of_int k =
  if k < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs k = if k = 0 then [] else (k land limb_mask) :: limbs (k lsr limb_bits) in
  Array.of_list (limbs k)

let one = of_int 1

(* An OCaml int has 63 value bits; three 31-bit limbs may not fit. *)
let to_int_opt x =
  let n = Array.length x in
  if n = 0 then Some 0
  else if n > 3 then None
  else
    let rec build i acc =
      if i < 0 then Some acc
      else
        let shifted = acc lsl limb_bits in
        if shifted lsr limb_bits <> acc || shifted < 0 then None
        else build (i - 1) (shifted lor x.(i))
    in
    build (n - 1) 0

let to_int_exn x =
  match to_int_opt x with
  | Some k -> k
  | None -> failwith "Bignum.to_int_exn: does not fit in int"

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let hash (x : t) = Hashtbl.hash x

(* [add]/[sub] are the checker's hottest bignum loops (every simulated
   FAA/counter step lands here), so both split their loop at the shorter
   operand's length: the common prefix runs with unsafe accesses and no
   per-limb bound tests, the tail is carry/borrow propagation plus one
   [Array.blit].  Indices are loop-bounded by the array lengths computed
   on entry, which is what makes the unsafe accesses safe. *)

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let x, lx, y, ly = if la >= lb then (a, la, b, lb) else (b, lb, a, la) in
    let r = Array.make lx 0 in
    let carry = ref 0 in
    for i = 0 to ly - 1 do
      let s = Array.unsafe_get x i + Array.unsafe_get y i + !carry in
      Array.unsafe_set r i (s land limb_mask);
      carry := s lsr limb_bits
    done;
    for i = ly to lx - 1 do
      let s = Array.unsafe_get x i + !carry in
      Array.unsafe_set r i (s land limb_mask);
      carry := s lsr limb_bits
    done;
    if !carry = 0 then
      (* no growth: the top limb absorbed its carry without wrapping, so
         it is >= [x]'s (nonzero) top limb — already normalized *)
      r
    else begin
      let r' = Array.make (lx + 1) 0 in
      Array.blit r 0 r' 0 lx;
      r'.(lx) <- !carry;
      r'
    end
  end

let succ x = add x one

let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if lb > la then raise Underflow;
  if lb = 0 then a
  else begin
    let r = Array.make la 0 in
    let borrow = ref 0 in
    for i = 0 to lb - 1 do
      let d = Array.unsafe_get a i - Array.unsafe_get b i - !borrow in
      if d < 0 then begin
        Array.unsafe_set r i (d + (1 lsl limb_bits));
        borrow := 1
      end
      else begin
        Array.unsafe_set r i d;
        borrow := 0
      end
    done;
    let i = ref lb in
    while !borrow = 1 && !i < la do
      let d = Array.unsafe_get a !i - 1 in
      if d < 0 then Array.unsafe_set r !i limb_mask
      else begin
        Array.unsafe_set r !i d;
        borrow := 0
      end;
      incr i
    done;
    if !borrow <> 0 then raise Underflow;
    if !i < la then Array.blit a !i r !i (la - !i);
    (* when the blit ran, [r]'s top limb is [a]'s (nonzero) top limb and
       [normalize] returns [r] itself — no copy on the fast path *)
    normalize r
  end

let mul_small (a : t) k : t =
  if k < 0 || k >= small_max then invalid_arg "Bignum.mul_small: factor out of range";
  if k = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * k) + !carry in
      r.(i) <- p land limb_mask;
      carry := p lsr limb_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let divmod_small (a : t) k : t * int =
  if k < 1 || k >= small_max then invalid_arg "Bignum.divmod_small: divisor out of range";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor a.(i) in
    q.(i) <- cur / k;
    rem := cur mod k
  done;
  (normalize q, !rem)

let to_string x =
  if is_zero x then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec go x =
      if not (is_zero x) then begin
        (* Peel 9 decimal digits at a time. *)
        let q, r = divmod_small x 1_000_000_000 in
        if is_zero q then Buffer.add_string buf (string_of_int r)
        else begin
          go q;
          Buffer.add_string buf (Printf.sprintf "%09d" r)
        end
      end
    in
    go x;
    Buffer.contents buf
  end

let of_string s =
  if s = "" then invalid_arg "Bignum.of_string: empty";
  let acc = ref zero in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Bignum.of_string: not a digit";
      acc := add (mul_small !acc 10) (of_int (Char.code c - Char.code '0')))
    s;
  !acc

let pp fmt x = Format.pp_print_string fmt (to_string x)

let pow2 k =
  if k < 0 then invalid_arg "Bignum.pow2: negative";
  let limb = k / limb_bits and off = k mod limb_bits in
  let r = Array.make (limb + 1) 0 in
  r.(limb) <- 1 lsl off;
  r

let bit (x : t) k =
  if k < 0 then invalid_arg "Bignum.bit: negative index";
  let limb = k / limb_bits and off = k mod limb_bits in
  limb < Array.length x && x.(limb) land (1 lsl off) <> 0

let set_bit (x : t) k =
  if k < 0 then invalid_arg "Bignum.set_bit: negative index";
  let limb = k / limb_bits and off = k mod limb_bits in
  let n = max (Array.length x) (limb + 1) in
  let r = Array.make n 0 in
  Array.blit x 0 r 0 (Array.length x);
  r.(limb) <- r.(limb) lor (1 lsl off);
  r

let clear_bit (x : t) k =
  if k < 0 then invalid_arg "Bignum.clear_bit: negative index";
  let limb = k / limb_bits and off = k mod limb_bits in
  if limb >= Array.length x then x
  else begin
    let r = Array.copy x in
    r.(limb) <- r.(limb) land lnot (1 lsl off);
    normalize r
  end

let logbin f (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make n 0 in
  for i = 0 to n - 1 do
    r.(i) <- f (if i < la then a.(i) else 0) (if i < lb then b.(i) else 0)
  done;
  normalize r

let logand = logbin ( land )
let logor = logbin ( lor )
let logxor = logbin ( lxor )

let shift_left (x : t) k =
  if k < 0 then invalid_arg "Bignum.shift_left: negative";
  if is_zero x || k = 0 then x
  else begin
    let limbs = k / limb_bits and off = k mod limb_bits in
    let la = Array.length x in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = x.(i) lsl off in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right (x : t) k =
  if k < 0 then invalid_arg "Bignum.shift_right: negative";
  if is_zero x || k = 0 then x
  else begin
    let limbs = k / limb_bits and off = k mod limb_bits in
    let la = Array.length x in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = x.(i + limbs) lsr off in
        let hi = if off > 0 && i + limbs + 1 < la then x.(i + limbs + 1) lsl (limb_bits - off) else 0 in
        r.(i) <- (lo lor hi) land limb_mask
      done;
      normalize r
    end
  end

let num_bits (x : t) =
  let la = Array.length x in
  if la = 0 then 0
  else begin
    let top = x.(la - 1) in
    let rec width k = if top lsr k = 0 then k else width (k + 1) in
    ((la - 1) * limb_bits) + width 0
  end

let popcount (x : t) =
  let count_limb v =
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
    go v 0
  in
  Array.fold_left (fun acc v -> acc + count_limb v) 0 x

let to_hex x =
  if is_zero x then "0"
  else begin
    let buf = Buffer.create 16 in
    let nibbles = ((Array.length x * limb_bits) + 3) / 4 in
    let started = ref false in
    for j = nibbles - 1 downto 0 do
      let v =
        (if bit x ((4 * j) + 3) then 8 else 0)
        + (if bit x ((4 * j) + 2) then 4 else 0)
        + (if bit x ((4 * j) + 1) then 2 else 0)
        + if bit x (4 * j) then 1 else 0
      in
      if v <> 0 || !started then begin
        started := true;
        Buffer.add_char buf "0123456789abcdef".[v]
      end
    done;
    Buffer.contents buf
  end

(* The strided operations accumulate into a mutable limb buffer rather
   than going through [set_bit] (which copies), keeping them linear in
   the number of bits touched. *)

let set_bit_mut (a : int array) k =
  let limb = k / limb_bits and off = k mod limb_bits in
  a.(limb) <- a.(limb) lor (1 lsl off)

let extract_stride (x : t) ~offset ~stride =
  if offset < 0 then invalid_arg "Bignum.extract_stride: negative offset";
  if stride < 1 then invalid_arg "Bignum.extract_stride: stride < 1";
  let w = num_bits x in
  if w <= offset then zero
  else begin
    let count = 1 + ((w - 1 - offset) / stride) in
    let buf = Array.make ((count / limb_bits) + 1) 0 in
    let pos = ref offset in
    for j = 0 to count - 1 do
      if bit x !pos then set_bit_mut buf j;
      pos := !pos + stride
    done;
    normalize buf
  end

let deposit_stride (v : t) ~offset ~stride =
  if offset < 0 then invalid_arg "Bignum.deposit_stride: negative offset";
  if stride < 1 then invalid_arg "Bignum.deposit_stride: stride < 1";
  let w = num_bits v in
  if w = 0 then zero
  else begin
    let top = offset + ((w - 1) * stride) in
    let buf = Array.make ((top / limb_bits) + 1) 0 in
    for j = 0 to w - 1 do
      if bit v j then set_bit_mut buf (offset + (j * stride))
    done;
    normalize buf
  end

module Signed = struct
  type nat = t

  let nat_add = add
  let nat_sub = sub

  type t = { neg : bool; mag : nat }

  let zero = { neg = false; mag = zero }

  let of_nat ?(neg = false) mag = { neg; mag }

  let of_int k = if k < 0 then { neg = true; mag = of_int (-k) } else { neg = false; mag = of_int k }

  let add a b =
    if a.neg = b.neg then { a with mag = nat_add a.mag b.mag }
    else if compare a.mag b.mag >= 0 then { a with mag = nat_sub a.mag b.mag }
    else { b with mag = nat_sub b.mag a.mag }

  let apply x d = if d.neg then nat_sub x d.mag else nat_add x d.mag

  let pp fmt d =
    if d.neg && not (is_zero d.mag) then Format.pp_print_char fmt '-';
    pp fmt d.mag
end
