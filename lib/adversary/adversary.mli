(** Slin_adversary: crash-fault injection, mechanical progress checking
    and fuzzing for the strong-linearizability checker.

    The paper's positive theorems promise {e wait-free} / {e lock-free}
    strong linearizability — guarantees that only mean something against
    an adversary that schedules badly and crashes processes.  This
    module is that adversary, made mechanical:

    - {!Make.check_strong_crashes}: the checker's game on the execution
      tree extended with crash edges (a crash permanently removes an
      enabled process; it adds no trace events, so the crash-extended
      tree is strongly linearizable iff the crash-free one is — the game
      cross-validates that equivalence and exercises pending-forever
      histories);
    - {!Make.wait_free_bound}: exhaustive worst-case steps-per-operation
      over the whole crash-free schedule tree;
    - {!Make.find_livelock}: lock-freedom refutation by lasso detection,
      certified as a [Livelock] witness in the [slin-witness/v1] shape;
    - {!Make.fuzz}: the seeded crash fuzzer behind [slin fuzz];
    - {!agreement_crash_sweep}: Lemma 12's Algorithm B under every
      ≤(k−1)-crash plan over a canonical schedule family, checking k-set
      agreement's validity, agreement and termination.

    Observability: the module registers [adversary.*] counters
    (crash-game nodes, fuzz runs/steps, lasso candidates, sweep runs),
    live when [Obs.enabled]. *)

module Make (S : Spec.S) : sig
  (** {1 Crash-schedule enumeration} *)

  (** One adversary move: step an enabled process, or crash one. *)
  type crash_action = Step of int | Crash of int

  val pp_crash_actions : Format.formatter -> crash_action list -> unit
  (** Compact rendering: step as the process id, crash as [!id]. *)

  type crash_verdict =
    | Crash_strongly_linearizable of { nodes : int }
        (** A prefix-closed linearization function exists on the whole
            crash-extended tree. *)
    | Crash_not_linearizable of { actions : crash_action list }
        (** Some crash execution is not even linearizable. *)
    | Crash_not_strongly_linearizable of { actions : crash_action list; nodes : int }
        (** No prefix-closed choice exists; [actions] is the deepest
            dead end. *)
    | Crash_inconclusive of { nodes : int; reason : Lincheck.budget_reason }

  val pp_crash_verdict : Format.formatter -> crash_verdict -> unit

  val check_strong_crashes :
    ?max_nodes:int ->
    ?max_depth:int ->
    ?budget_ms:int ->
    ?checkpoint_stride:int ->
    crashes:int ->
    (S.op, S.resp) Sim.program ->
    crash_verdict
  (** Solve the strong-linearizability game on [prog]'s execution tree
      extended with up to [crashes] crash edges per branch.  Because a
      crash edge changes no history, the verdict must agree with
      [Lincheck.check_strong] on the same program — a mechanical
      cross-validation of the crash-robustness of every SL verdict.
      [max_nodes] defaults to 2M (crash edges enlarge the tree ~(n+1)×
      per allowed crash).

      Node evaluation shares the checker's incremental engine: each
      node derives from its parent in O(trace delta), and every
      [checkpoint_stride]-th (default 16, clamped to >= 1) tree level is
      re-derived from a full replay and compared — a pure cross-check,
      results are identical for every stride.  At most 128 processes
      (cache keys pack one action per byte). *)

  (** {1 Wait-freedom, exhaustively} *)

  type wf_report = {
    wf_nodes : int;  (** schedule-tree nodes walked *)
    wf_executions : int;  (** complete (quiescent) executions *)
    wf_truncated : int;  (** leaves cut by the depth bound *)
    wf_budget_hit : bool;  (** the node budget stopped the walk *)
    wf_max_steps_per_op : int;  (** worst steps any completed op took *)
  }

  val wait_free_established : wf_report -> bool
  (** True when the walk was exhaustive (no truncation, no budget hit),
      making [wf_max_steps_per_op] an adversarial wait-freedom bound for
      the workload: no schedule makes any operation take more steps. *)

  val pp_wf_report : Format.formatter -> wf_report -> unit

  val wait_free_bound :
    ?max_nodes:int -> ?max_depth:int -> (S.op, S.resp) Sim.program -> wf_report
  (** Walk every crash-free schedule of [prog] (the full schedule tree,
      [max_nodes] default 2M) and report the worst per-operation step
      count over all complete executions. *)

  (** {1 Lock-freedom refutation (lasso detection)} *)

  type lf_result = {
    lf_candidates : int;  (** (driver set, stem) adversaries tried *)
    lf_livelock : Witness.shape option;
        (** a shrunk, verified [Livelock] certificate, if one was found *)
  }

  val find_livelock :
    ?max_drive:int -> ?stem_cap:int -> (S.op, S.resp) Sim.program -> lf_result
  (** Try to refute lock-freedom: for every candidate driver set, run
      the complement briefly (the stem) then drive the set round-robin
      for [max_drive] steps.  A drive window with no completed operation
      whose tail repeats a (process, event-signature) block is a lasso;
      it is returned only if [Witness.Make(S).refutes] confirms the
      [Livelock] certificate.  An empty result is {e not} a lock-freedom
      proof — combine with {!wait_free_bound} (an exhaustively walked
      finite tree has no infinite execution at all). *)

  (** {1 Seeded crash fuzzing} *)

  type violation = {
    v_seed : int;  (** the per-run simulator seed *)
    v_crash_after : (int * int) list;  (** the injected crash plan *)
    v_schedule : int list;
        (** the executed schedule; replays the trace on its own (a crash
            only removes future steps of a process) *)
    v_shape : Witness.shape;  (** shrunk [Not_linearizable] certificate *)
  }

  type fuzz_report = {
    fz_runs : int;
    fz_crashed_runs : int;
    fz_total_steps : int;
    fz_elapsed_ns : int;
    fz_violation : violation option;
    fz_interrupted : bool;
        (** the [interrupt] hook stopped the campaign before all runs
            completed (and no violation was found); stats cover only the
            completed runs *)
  }

  val fuzz_schedules_per_sec : fuzz_report -> float

  val fuzz :
    seed:int ->
    runs:int ->
    ?crash:bool ->
    ?max_steps:int ->
    ?shrink:bool ->
    ?jobs:int ->
    ?profiler:Prof.t ->
    ?coverage:Coverage.t ->
    ?guided:bool ->
    ?interrupt:(unit -> bool) ->
    (S.op, S.resp) Sim.program ->
    fuzz_report
  (** Run up to [runs] random schedules derived from the master [seed]
      (per-run seeds and crash plans come from one PRNG stream, so a
      campaign is a pure function of its arguments), injecting at most
      one crash per run when [crash] (default true), and check every
      trace for linearizability.  The first violation stops the campaign
      and is shrunk (unless [shrink:false]) into a replayable
      [slin-witness/v1] certificate.

      [jobs] (default 1) executes runs on that many domains.  Run
      configurations are pre-drawn in sequential order and "first
      violation" means the index-minimal one, so every report field
      except [fz_elapsed_ns] is identical for every [jobs] value.

      [coverage] records every run's trace-prefix fingerprints and
      access pairs, attributing novel fingerprints to the run that first
      reached them; passive — the report is unchanged.

      [guided] (default false) switches the scheduler from uniform
      random to coverage-guided: each step resumes the enabled process
      whose (world fingerprint, process) edge is least traversed, and —
      once per-run novelty gets scarce — splices in a prefix of a
      retained novelty-bearing schedule (while novelty is abundant,
      fresh exploration beats replaying known prefixes); runs
      discovering new fingerprints are kept as corpus
      seeds (capped, deduplicated by coverage).  Guided campaigns are
      sequential ([jobs] is ignored) and deliberately read coverage —
      they produce different (usually strictly more diverse) schedules
      than uniform mode, which stays the default precisely so seeded
      campaigns remain byte-reproducible.

      [interrupt] is polled between runs; once it returns [true] the
      campaign stops, setting [fz_interrupted] and reporting partial
      stats over the completed runs (signal handlers and serve
      deadlines use this — an uninterrupted campaign's report is
      unchanged). *)
end

(** {1 Algorithm B under crash schedules} *)

type sweep_report = {
  sw_k : int;
  sw_runs : int;
  sw_crashed_runs : int;
  sw_nonterminating : int;  (** runs that hit the step cap *)
  sw_max_distinct : int;  (** most distinct decisions in any run *)
  sw_violations : string list;
      (** one line per violated property; empty when validity, agreement
          and termination all held in every run *)
}

val pp_sweep_report : Format.formatter -> sweep_report -> unit

val agreement_crash_sweep :
  make:((module Runtime_intf.S) -> ('op, 'resp) K_ordering.instance) ->
  ordering:('op, 'resp) K_ordering.witness ->
  inputs:int array ->
  k:int ->
  ?max_crashes:int ->
  ?positions:int list ->
  ?max_steps:int ->
  ?jobs:int ->
  unit ->
  sweep_report
(** Run Lemma 12's Algorithm B under a canonical deterministic schedule
    family (round-robin rotations, fixed priority orders, seeded random
    streams) crossed with {e every} crash plan of at most [max_crashes]
    (default [k - 1]) distinct processes, each crashed at a total-step
    position from [positions].  Each run checks k-set agreement's
    contract: validity (decisions are inputs), agreement (at most [k]
    distinct decisions) and termination (every surviving process
    decides).  [jobs] (default 1) executes the run grid on that many
    domains; runs are independent and merged in grid order, so the
    report is identical for every [jobs] value. *)
