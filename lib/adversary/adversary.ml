(* Slin_adversary: the failure-aware layer of the checker.

   The paper's positive results promise wait-free / lock-free strong
   linearizability — statements that only mean something against an
   adversary that schedules badly and crashes processes.  This module
   makes that adversary mechanical:

   - [Make(S).check_strong_crashes] replays the strong-linearizability
     game on the execution tree {e extended with crash edges}: at every
     node the adversary may, while its crash budget lasts, permanently
     remove an enabled process.  A crash edge changes no history (the
     trace is untouched), so the crash-extended tree is strongly
     linearizable iff the crash-free tree is — crashing a process is
     indistinguishable from the adversary never scheduling it again, and
     each crash-maximal node's history already appears at an interior
     node of the crash-free tree.  The game is still worth running: it
     mechanically cross-validates that equivalence (the checker's answer
     must match [Lincheck.check_strong]'s on every E1 construction) and
     exercises the pending-forever histories crashes create.

   - [Make(S).wait_free_bound] walks the whole crash-free schedule tree
     and reports the worst steps-per-operation over every complete
     execution: an exhaustive per-workload wait-freedom bound, as
     opposed to [Progress.measure]'s sampled one.

   - [Make(S).find_livelock] refutes lock-freedom by lasso detection:
     drive a candidate process subset round-robin, and when the drive
     window fills with a periodic event-signature block containing no
     completion, certify the stem + cycle as a [Livelock] witness in the
     [slin-witness/v1] shape (verified by [Witness.Make(S).refutes]).

   - [Make(S).fuzz] is the seeded crash fuzzer behind [slin fuzz]: a
     master seed derives per-run schedules and crash plans, every trace
     is checked for linearizability, and a violation is shrunk through
     the witness shrinker into a replayable artifact.  Crashes need no
     special replay support: a crash only removes a process's future
     steps, so the recorded schedule alone reproduces the trace.

   - [agreement_crash_sweep] runs Lemma 12's Algorithm B under a
     canonical family of deterministic schedules crossed with every
     crash plan of at most k-1 processes over a position grid, checking
     k-set agreement's validity, agreement and termination each time. *)

(* Instruments, registered once (the functor may be instantiated per
   spec; counters live here so the registry holds one of each). *)
let c_crash_nodes = Obs.counter "adversary.crash_game.nodes"
let c_fuzz_runs = Obs.counter "adversary.fuzz.runs"
let c_fuzz_steps = Obs.counter "adversary.fuzz.steps"
let c_fuzz_pruned = Obs.counter "adversary.fuzz.checks_pruned"
let c_lasso_candidates = Obs.counter "adversary.lasso.candidates"
let c_sweep_runs = Obs.counter "adversary.sweep.runs"
let c_sweep_reused = Obs.counter "adversary.sweep.analysis_reused"

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

let take n l =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go n [] l

(* --- crash-aware strong linearizability + progress + fuzzing ---------- *)

module Make (S : Spec.S) = struct
  module L = Lincheck.Make (S)
  module W = Witness.Make (S)

  let op_str o = Format.asprintf "%a" S.pp_op o
  let resp_str r = Format.asprintf "%a" S.pp_resp r

  let event_sig = function
    | Trace.Invoke { proc; op } -> Printf.sprintf "i%d:%s" proc (op_str op)
    | Trace.Return { proc; resp } -> Printf.sprintf "r%d:%s" proc (resp_str resp)
    | Trace.Step { proc; obj; info; noop = _ } ->
        Printf.sprintf "s%d:%s%s" proc obj
          (match info with Some i -> ":" ^ i | None -> "")

  (* ---------------- the crash game ------------------------------------ *)

  type crash_action = Step of int | Crash of int

  let pp_crash_action fmt = function
    | Step p -> Format.pp_print_int fmt p
    | Crash p -> Format.fprintf fmt "!%d" p

  let pp_crash_actions fmt l = List.iter (pp_crash_action fmt) l

  type crash_verdict =
    | Crash_strongly_linearizable of { nodes : int }
    | Crash_not_linearizable of { actions : crash_action list }
    | Crash_not_strongly_linearizable of { actions : crash_action list; nodes : int }
    | Crash_inconclusive of { nodes : int; reason : Lincheck.budget_reason }

  let pp_crash_verdict fmt = function
    | Crash_strongly_linearizable { nodes } ->
        Format.fprintf fmt "strongly linearizable under crashes (%d nodes explored)" nodes
    | Crash_not_linearizable { actions } ->
        Format.fprintf fmt "NOT linearizable under crashes (actions: %a)" pp_crash_actions
          actions
    | Crash_not_strongly_linearizable { actions; nodes } ->
        Format.fprintf fmt "NOT strongly linearizable under crashes (actions: %a; %d nodes)"
          pp_crash_actions actions nodes
    | Crash_inconclusive { nodes; reason } ->
        Format.fprintf fmt "inconclusive under crashes (%s budget, %d nodes)"
          (Lincheck.budget_reason_tag reason)
          nodes

  exception Found_crash_not_linearizable of crash_action list

  let run_actions prog actions =
    let w = Sim.create ~n:prog.Sim.procs in
    prog.Sim.boot w;
    List.iter (function Step p -> Sim.step w p | Crash p -> Sim.crash w p) actions;
    w

  (* The strong-linearizability game of [Lincheck.check_strong_stats]
     with the adversary's move set enlarged: besides stepping any
     enabled process it may crash one, [crashes] times in total per
     branch.  Crash edges add no trace events, so this decides strong
     linearizability of the crash-extended execution tree; soundness and
     the game structure are exactly the checker's.

     Node evaluation is the checker's incremental engine
     ([Lincheck.Make(S).Internal]): each node's records and precedence
     masks derive from its parent's in O(delta) — a crash edge appends
     no events, so the child shares the parent's arrays outright — and
     every [checkpoint_stride]-th tree level is re-derived from a full
     trace replay and compared ([cross_check]).  One mutable spine world
     descends a single action when the solver expands the first child of
     the node it just evaluated; any other move rebuilds via
     [run_actions].  The cache keys pack the action path one byte per
     action (crash = process + 128). *)
  let check_strong_crashes ?(max_nodes = 2_000_000) ?max_depth ?budget_ms
      ?(checkpoint_stride = 16) ~crashes (prog : (S.op, S.resp) Sim.program) : crash_verdict =
    let stride = max 1 checkpoint_stride in
    if prog.Sim.procs > 128 then
      invalid_arg "Adversary.check_strong_crashes: at most 128 processes";
    let t0 = Obs.now_ns () in
    let nodes = ref 0 in
    let tripped = ref Lincheck.Budget_nodes in
    let stop reason =
      tripped := reason;
      raise Lincheck.Budget_exhausted
    in
    let key_char = function
      | Step p -> Char.unsafe_chr p
      | Crash p -> Char.unsafe_chr (p + 128)
    in
    let cache : (string, L.Internal.node_info) Hashtbl.t = Hashtbl.create 1024 in
    let apply w = function Step p -> Sim.step w p | Crash p -> Sim.crash w p in
    let ev_path : crash_action list ref = ref [] in
    let ev_world : (S.op, S.resp) Sim.t option ref = ref None in
    let world_at path =
      let w =
        match (path, !ev_world) with
        | a :: tl, Some w when tl == !ev_path ->
            apply w a;
            w
        | _ -> run_actions prog (List.rev path)
      in
      ev_path := path;
      ev_world := Some w;
      w
    in
    let node_data path depth key parent_info =
      match Hashtbl.find_opt cache key with
      | Some info -> info
      | None ->
          incr nodes;
          Obs.incr c_crash_nodes;
          if !nodes > max_nodes then stop Lincheck.Budget_nodes;
          (match budget_ms with
          | Some ms when Obs.now_ns () - t0 > ms * 1_000_000 -> stop Lincheck.Budget_wall
          | _ -> ());
          let w = world_at path in
          let info =
            match parent_info with
            | Some pi -> L.Internal.extend_info pi w
            | None -> L.Internal.info_of_world w
          in
          if depth mod stride = 0 then L.Internal.cross_check info w;
          Hashtbl.add cache key info;
          info
    in
    let deepest = ref [] in
    let deepest_len = ref 0 in
    let rec solve path depth key parent_info budget (lin : L.linearization) =
      let info = node_data path depth key parent_info in
      let en = L.Internal.enabled_of info in
      let en = match max_depth with Some d when depth >= d -> [] | _ -> en in
      let children =
        List.map (fun p -> Step p) en
        @ (if budget > 0 then List.map (fun p -> Crash p) en else [])
      in
      match L.Internal.validate_info info lin with
      | None -> false
      | Some states -> (
          match L.Internal.extensions_info info lin states with
          | [] ->
              if not (L.Internal.root_linearizable info) then
                raise (Found_crash_not_linearizable (List.rev path));
              if depth > !deepest_len then begin
                deepest := List.rev path;
                deepest_len := depth
              end;
              false
          | candidates ->
              children = []
              || List.exists
                   (fun cand ->
                     List.for_all
                       (fun a ->
                         let budget' = match a with Crash _ -> budget - 1 | Step _ -> budget in
                         solve (a :: path) (depth + 1)
                           (key ^ String.make 1 (key_char a))
                           (Some info) budget' cand)
                       children)
                   candidates)
    in
    match solve [] 0 "" None crashes [] with
    | true -> Crash_strongly_linearizable { nodes = !nodes }
    | false -> Crash_not_strongly_linearizable { actions = !deepest; nodes = !nodes }
    | exception Found_crash_not_linearizable actions -> Crash_not_linearizable { actions }
    | exception Lincheck.Budget_exhausted ->
        Crash_inconclusive { nodes = !nodes; reason = !tripped }

  (* ---------------- exhaustive wait-freedom bound --------------------- *)

  type wf_report = {
    wf_nodes : int;  (* schedule-tree nodes walked *)
    wf_executions : int;  (* complete (quiescent) executions *)
    wf_truncated : int;  (* leaves cut by the depth bound *)
    wf_budget_hit : bool;  (* node budget stopped the walk *)
    wf_max_steps_per_op : int;  (* worst steps any completed op took *)
  }

  let wait_free_established r = r.wf_truncated = 0 && not r.wf_budget_hit

  let pp_wf_report fmt r =
    Format.fprintf fmt "max %d steps/op over %d executions (%d nodes%s%s)"
      r.wf_max_steps_per_op r.wf_executions r.wf_nodes
      (if r.wf_truncated > 0 then Printf.sprintf ", %d truncated" r.wf_truncated else "")
      (if r.wf_budget_hit then ", budget hit" else "")

  (* Walk the whole crash-free schedule tree; at every quiescent leaf
     record the per-operation step counts of the trace.  The resulting
     maximum is an adversarial bound: no schedule of this workload makes
     any operation take more base-object steps.  A report with
     truncation or a budget hit establishes nothing (the tree has
     executions the walk did not finish). *)
  let wait_free_bound ?(max_nodes = 2_000_000) ?max_depth
      (prog : (S.op, S.resp) Sim.program) : wf_report =
    let nodes = ref 0 in
    let executions = ref 0 in
    let truncated = ref 0 in
    let budget_hit = ref false in
    let max_steps = ref 0 in
    let rec go sched_rev depth =
      if !budget_hit then ()
      else begin
        incr nodes;
        if !nodes > max_nodes then budget_hit := true
        else
          let w = Sim.run_schedule prog (List.rev sched_rev) in
          match Sim.enabled w with
          | [] ->
              incr executions;
              List.iter
                (fun s -> if s > !max_steps then max_steps := s)
                (Progress.op_step_counts (Sim.trace w))
          | _ when (match max_depth with Some d -> depth >= d | None -> false) ->
              incr truncated
          | ps -> List.iter (fun p -> go (p :: sched_rev) (depth + 1)) ps
      end
    in
    go [] 0;
    {
      wf_nodes = !nodes;
      wf_executions = !executions;
      wf_truncated = !truncated;
      wf_budget_hit = !budget_hit;
      wf_max_steps_per_op = !max_steps;
    }

  (* ---------------- lock-freedom via lasso detection ------------------ *)

  type lf_result = {
    lf_candidates : int;  (* (driver set, stem) adversaries tried *)
    lf_livelock : Witness.shape option;  (* verified Livelock certificate *)
  }

  let nonempty_subsets n =
    (* every nonempty subset of 0..n-1 as a sorted list; for larger
       systems fall back to singletons + the full set *)
    if n <= 6 then
      List.init ((1 lsl n) - 1) (fun i ->
          let m = i + 1 in
          List.filter (fun p -> m land (1 lsl p) <> 0) (List.init n Fun.id))
    else List.init n (fun p -> [ p ]) @ [ List.init n Fun.id ]

  (* Refute lock-freedom if possible: for each candidate driver set D,
     first run the processes outside D (round-robin, up to [stem_cap]
     steps — the stem), then schedule only D round-robin for [max_drive]
     steps.  If no operation completes in the whole drive window and the
     window's tail is a repeating (process, event-signature) block, the
     stem + cycle form a lasso; it is returned only if the [Livelock]
     certificate check ([W.refutes]) confirms it.  Finding nothing is
     not a proof of lock-freedom — combine with {!wait_free_bound} (a
     finite fully-walked tree has no infinite execution at all). *)
  let find_livelock ?(max_drive = 240) ?(stem_cap = 64) (prog : (S.op, S.resp) Sim.program) :
      lf_result =
    let n = prog.Sim.procs in
    let candidates = ref 0 in
    let try_driver d : Witness.shape option =
      incr candidates;
      Obs.incr c_lasso_candidates;
      let w = Sim.create ~n in
      prog.Sim.boot w;
      (* stem: give the complement a chance to run (it may fill or drain
         shared state the livelock depends on) *)
      let stem_rev = ref [] in
      let rec stem_loop k =
        if k < stem_cap then
          match List.filter (fun p -> not (List.mem p d)) (Sim.enabled w) with
          | [] -> ()
          | p :: _ ->
              Sim.step w p;
              stem_rev := p :: !stem_rev;
              stem_loop (k + 1)
      in
      stem_loop 0;
      (* drive: round-robin over D, recording per-step signatures *)
      let prev = ref (List.length (Sim.trace w)) in
      let entries = Array.make max_drive (0, [ "" ]) in
      let rec drive t =
        if t >= max_drive then Some t
        else
          match List.filter (fun p -> List.mem p d) (Sim.enabled w) with
          | [] -> None (* drivers finished: they made progress *)
          | dps -> (
              let p = List.nth dps (t mod List.length dps) in
              Sim.step w p;
              let tr = Sim.trace w in
              let events = drop !prev tr in
              prev := List.length tr;
              if List.exists (function Trace.Return _ -> true | _ -> false) events then None
              else begin
                entries.(t) <- (p, List.map event_sig events);
                drive (t + 1)
              end)
      in
      match drive 0 with
      | None -> None
      | Some len ->
          let pending =
            History.of_trace (Sim.trace w)
            |> List.exists (fun r -> not (History.is_complete r))
          in
          if not pending then None
          else
            (* smallest period whose tail covers three repetitions *)
            let rec try_period l =
              if 3 * l > len then None
              else if
                List.for_all
                  (fun i -> entries.(i) = entries.(i + l))
                  (List.init (2 * l) (fun i -> len - (3 * l) + i))
              then Some l
              else try_period (l + 1)
            in
            (match try_period 1 with
            | None -> None
            | Some l ->
                let drive_sched = List.init len (fun i -> fst entries.(i)) in
                let branch = List.rev !stem_rev @ take (len - l) drive_sched in
                let cycle = drop (len - l) drive_sched in
                let shape =
                  { Witness.kind = Witness.Livelock; branch; futures = [ cycle ] }
                in
                (match W.refutes prog shape with Ok true -> Some shape | _ -> None))
    in
    let rec search = function
      | [] -> None
      | d :: rest -> ( match try_driver d with Some s -> Some s | None -> search rest)
    in
    let livelock = search (nonempty_subsets n) in
    { lf_candidates = !candidates; lf_livelock = Option.map (W.shrink prog) livelock }

  (* ---------------- seeded crash fuzzer ------------------------------- *)

  type violation = {
    v_seed : int;  (* the per-run simulator seed *)
    v_crash_after : (int * int) list;
    v_schedule : int list;  (* as executed; replays the trace alone *)
    v_shape : Witness.shape;  (* shrunk Not_linearizable certificate *)
  }

  type fuzz_report = {
    fz_runs : int;
    fz_crashed_runs : int;
    fz_total_steps : int;
    fz_elapsed_ns : int;
    fz_violation : violation option;
    fz_interrupted : bool;
  }

  let fuzz_schedules_per_sec r =
    if r.fz_elapsed_ns <= 0 then 0.
    else float_of_int r.fz_runs *. 1e9 /. float_of_int r.fz_elapsed_ns

  (* The master [seed] drives everything: per-run simulator seeds and
     crash plans come from one PRNG stream, so a fuzz campaign is a pure
     function of (seed, runs, crash, max_steps).  Each run schedules
     uniformly at random (with at most one injected crash when [crash]),
     and the trace is checked for plain linearizability — under random
     (non-adversarial) scheduling that is the property violations
     actually manifest as.  The first violation stops the campaign and
     is shrunk into a replayable certificate.

     All run configurations are drawn from the PRNG upfront, in exactly
     the order the stop-at-first-violation loop would draw them; [jobs]
     domains then draw indices from a shared cursor.  The campaign
     "stops" at the smallest violating index v — workers abandon
     indices past the current minimum — and the report aggregates runs
     0..v only, so every field except [fz_elapsed_ns] is identical for
     every [jobs] (the first violation is the index-minimal one, not
     the first found in wall time). *)
  let fuzz ~seed ~runs ?(crash = true) ?(max_steps = 2048) ?(shrink = true) ?(jobs = 1)
      ?profiler ?coverage ?(guided = false) ?interrupt
      (prog : (S.op, S.resp) Sim.program) : fuzz_report =
    let t0 = Obs.now_ns () in
    (* Polled between runs (a run is bounded by [max_steps], so an
       interrupt stops the campaign within one schedule).  An
       uninterrupted campaign takes exactly the historical code path. *)
    let intr () = match interrupt with Some f -> f () | None -> false in
    let rng = Random.State.make [| seed; 0xad5e |] in
    let nruns = max runs 0 in
    let cfgs = Array.make nruns (0, []) in
    for i = 0 to nruns - 1 do
      let run_seed = Random.State.bits rng in
      let crash_after =
        if crash && Random.State.bool rng then
          [ (Random.State.int rng prog.Sim.procs, Random.State.int rng 33) ]
        else []
      in
      cfgs.(i) <- (run_seed, crash_after)
    done;
    let steps_of = Array.make nruns 0 in
    let done_flags = Array.make nruns false in
    let viol_sched = Array.make nruns None in
    let min_viol = Atomic.make max_int in
    let rec note i =
      let cur = Atomic.get min_viol in
      if i < cur && not (Atomic.compare_and_set min_viol cur i) then note i
    in
    let corpus_retained = ref 0 in
    let corpus_dropped = ref 0 in
    (* Uniform campaign body, one call per index, distributed by
       [Steal_pool.parallel_for]'s shared cursor so a straggler schedule
       no longer stalls a whole static stride class.  Indices past the
       current minimal violation are skipped (the campaign "stopped"
       there); per-worker profiler lanes get one solve span for the
       worker's whole share, one work unit per schedule executed (fuzz
       has no tree nodes).  Coverage records each run's trace prefixes
       on the executing worker's shard — passive, so the campaign's
       report is unchanged.

       Triage is reduced unconditionally: linearizability depends only
       on the history, which commuting swaps preserve, so a trace whose
       {!Reduct} commutation class a worker already checked CLEAN needs
       no second [check_trace].  Only clean classes are cached —
       violations are always detected, [viol_sched]/[note] fire exactly
       as without the cache, and every report field stays identical for
       every [jobs] (the caches are per-worker, but skipping a clean
       re-check is invisible to the report). *)
    let run_uniform () =
      let nworkers = max 1 (min (Steal_pool.effective_workers ~requested:jobs) nruns) in
      let lanes = Array.make nworkers None in
      let shards = Array.make nworkers None in
      let cleans : (int, unit) Hashtbl.t array =
        Array.init nworkers (fun _ -> Hashtbl.create 64)
      in
      Steal_pool.parallel_for ~workers:nworkers ~n:nruns
        ~init:(fun w ->
          let lane = Option.map (fun p -> Prof.lane p ~domain:w) profiler in
          (match lane with
          | Some l -> Prof.begin_span l Prof.Solve ~label:(Printf.sprintf "fuzz w%d" w) ()
          | None -> ());
          lanes.(w) <- lane;
          shards.(w) <- Option.map (fun c -> Coverage.shard c ~domain:w) coverage)
        ~fini:(fun w -> match lanes.(w) with Some l -> Prof.end_span l | None -> ())
        (fun ~worker i ->
          if i <= Atomic.get min_viol && not (intr ()) then begin
            let run_seed, crash_after = cfgs.(i) in
            let w, schedule = Sim.run_random_full ~seed:run_seed ~crash_after ~max_steps prog in
            steps_of.(i) <- List.length schedule;
            (match lanes.(worker) with Some l -> Prof.add_nodes l 1 | None -> ());
            (match shards.(worker) with
            | Some sh -> ignore (Coverage.observe_run sh ~run:i (Sim.trace w))
            | None -> ());
            let tr = Sim.trace w in
            let fp = Reduct.fp_of_trace tr in
            let clean = cleans.(worker) in
            if Hashtbl.mem clean fp then Obs.incr c_fuzz_pruned
            else if L.check_trace tr = None then begin
              viol_sched.(i) <- Some schedule;
              note i
            end
            else Hashtbl.add clean fp ();
            done_flags.(i) <- true
          end)
    in
    (* Coverage-guided scheduling (opt-in): each step resumes the
       enabled process whose (world fingerprint, process) edge has been
       traversed least across the campaign — the earliest opportunity
       to leave previously-visited territory — optionally splicing in a
       prefix of a retained novelty-bearing schedule first.  Runs that
       discover new fingerprints are retained as corpus seeds (capped,
       lowest-novelty dropped first), which both prioritizes productive
       seeds and dedups the corpus by coverage.  The corpus and edge
       table are shared across runs, so guided campaigns are sequential
       ([jobs] is ignored); crash plans and per-run RNG streams are
       drawn exactly as in uniform mode, keeping the campaign a pure
       function of (seed, runs, crash, max_steps). *)
    let run_guided () =
      let lane = Option.map (fun p -> Prof.lane p ~domain:0) profiler in
      (match lane with
      | Some l -> Prof.begin_span l Prof.Solve ~label:"fuzz guided" ()
      | None -> ());
      let cov = match coverage with Some c -> c | None -> Coverage.create () in
      let sh = Coverage.shard cov ~domain:0 in
      let edges : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
      let corpus = ref [] in  (* (schedule, novelty), newest first *)
      let corpus_cap = 64 in
      (* Smoothed novelty ratio (novel fingerprints per freshly-explored
         event).  While it is high the space is nowhere near saturated
         and fresh exploration beats replaying — splicing a known prefix
         would spend steps on guaranteed-old worlds.  Splice only once
         novelty gets scarce, which is when corpus seeds (the runs that
         still found something) are worth extending.  Two guards keep
         the gate honest: the ratio's denominator excludes the spliced
         prefix (replayed events are old by construction, so counting
         them would make splicing self-justifying), and an EMA smooths
         it (one short crashed run with a low ratio must not flip the
         whole campaign into replay mode). *)
      let novelty_ema = ref 1.0 in
      let i = ref 0 in
      while !i < nruns && Atomic.get min_viol = max_int && not (intr ()) do
        let run_seed, crash_after = cfgs.(!i) in
        let rng_run = Random.State.make [| run_seed; 0x9d1d |] in
        let w = Sim.run_schedule prog [] in
        let rev_sched = ref [] in
        let total = ref 0 in
        let fpst = ref Coverage.fp_empty in
        let traced = ref 0 in
        let feed () =
          List.iter
            (fun ev -> fpst := Coverage.fp_feed !fpst ev)
            (Sim.events_from w ~from:!traced);
          traced := Sim.trace_len w
        in
        feed ();
        let do_step p =
          Sim.step w p;
          rev_sched := p :: !rev_sched;
          incr total;
          feed ()
        in
        let inject_crashes () =
          List.iter (fun (p, at) -> if !total >= at then Sim.crash w p) crash_after
        in
        (if !corpus_retained > 0 && !novelty_ema < 0.5 && Random.State.bool rng_run then begin
           let sched, _ = List.nth !corpus (Random.State.int rng_run !corpus_retained) in
           let cut = Random.State.int rng_run (Array.length sched + 1) in
           let j = ref 0 in
           let ok = ref true in
           while !ok && !j < cut && !total < max_steps do
             inject_crashes ();
             let p = sched.(!j) in
             if List.mem p (Sim.enabled w) then do_step p else ok := false;
             incr j
           done
         end);
        let splice_len = !total in
        let quiesced = ref false in
        while (not !quiesced) && !total < max_steps do
          inject_crashes ();
          match Sim.enabled w with
          | [] -> quiesced := true
          | ps ->
              let fp = Coverage.fp_value !fpst in
              let count p =
                match Hashtbl.find_opt edges (fp, p) with Some n -> n | None -> 0
              in
              let best = List.fold_left (fun m p -> min m (count p)) max_int ps in
              let cands = List.filter (fun p -> count p = best) ps in
              let p = List.nth cands (Random.State.int rng_run (List.length cands)) in
              Hashtbl.replace edges (fp, p) (best + 1);
              do_step p
        done;
        let schedule = List.rev !rev_sched in
        steps_of.(!i) <- !total;
        (match lane with Some l -> Prof.add_nodes l 1 | None -> ());
        let novelty = Coverage.observe_run sh ~run:!i (Sim.trace w) in
        let fresh_ratio =
          Float.min 1.0 (float_of_int novelty /. float_of_int (max 1 (!total - splice_len)))
        in
        novelty_ema := (0.7 *. !novelty_ema) +. (0.3 *. fresh_ratio);
        if novelty > 0 then begin
          corpus := (Array.of_list schedule, novelty) :: !corpus;
          incr corpus_retained;
          if !corpus_retained > corpus_cap then begin
            let worst = List.fold_left (fun m (_, n) -> min m n) max_int !corpus in
            let gone = ref false in
            (* oldest lowest-novelty entry goes first *)
            corpus :=
              List.rev
                (List.fold_left
                   (fun acc (s, n) ->
                     if (not !gone) && n = worst then begin
                       gone := true;
                       acc
                     end
                     else (s, n) :: acc)
                   []
                   (List.rev !corpus));
            decr corpus_retained;
            incr corpus_dropped
          end
        end;
        if L.check_trace (Sim.trace w) = None then begin
          viol_sched.(!i) <- Some schedule;
          note !i
        end;
        done_flags.(!i) <- true;
        incr i
      done;
      match lane with Some l -> Prof.end_span l | None -> ()
    in
    (if guided then run_guided () else run_uniform ());
    let first_viol =
      let rec find i =
        if i >= nruns then None else if viol_sched.(i) <> None then Some i else find (i + 1)
      in
      find 0
    in
    (* An interrupted campaign (stopped by the hook with no violation and
       runs left undone) reports partial stats over the runs that actually
       completed — with [jobs > 1] that set need not be an index prefix.
       Completed campaigns keep the historical prefix accounting, byte
       for byte. *)
    let interrupted = first_viol = None && Array.exists not done_flags in
    let fz_runs =
      if interrupted then Array.fold_left (fun n d -> if d then n + 1 else n) 0 done_flags
      else match first_viol with Some v -> v + 1 | None -> nruns
    in
    let crashed_runs = ref 0 in
    let total_steps = ref 0 in
    (if interrupted then
       Array.iteri
         (fun i d ->
           if d then begin
             if snd cfgs.(i) <> [] then incr crashed_runs;
             total_steps := !total_steps + steps_of.(i)
           end)
         done_flags
     else
       for i = 0 to fz_runs - 1 do
         if snd cfgs.(i) <> [] then incr crashed_runs;
         total_steps := !total_steps + steps_of.(i)
       done);
    Obs.add c_fuzz_runs fz_runs;
    Obs.add c_fuzz_steps !total_steps;
    (match coverage with
    | Some c ->
        Coverage.note_corpus c
          ~mode:(if guided then "coverage" else "uniform")
          ~runs:fz_runs ~retained:!corpus_retained ~dropped:!corpus_dropped
    | None -> ());
    let violation =
      match first_viol with
      | None -> None
      | Some v ->
          let run_seed, crash_after = cfgs.(v) in
          let schedule = Option.get viol_sched.(v) in
          let shape0 =
            { Witness.kind = Witness.Not_linearizable; branch = []; futures = [ schedule ] }
          in
          let shape = if shrink then W.shrink prog shape0 else shape0 in
          Some { v_seed = run_seed; v_crash_after = crash_after; v_schedule = schedule; v_shape = shape }
    in
    {
      fz_runs;
      fz_crashed_runs = !crashed_runs;
      fz_total_steps = !total_steps;
      fz_elapsed_ns = Obs.now_ns () - t0;
      fz_violation = violation;
      fz_interrupted = interrupted;
    }
end

(* --- Algorithm B under crash schedules -------------------------------- *)

type sweep_report = {
  sw_k : int;
  sw_runs : int;
  sw_crashed_runs : int;
  sw_nonterminating : int;  (* runs that hit the step cap *)
  sw_max_distinct : int;  (* most distinct decisions in any run *)
  sw_violations : string list;  (* empty = validity/agreement/termination all held *)
}

let pp_sweep_report fmt r =
  Format.fprintf fmt
    "%d runs (%d with crashes): max %d distinct decisions (k=%d), %d violations%s"
    r.sw_runs r.sw_crashed_runs r.sw_max_distinct r.sw_k
    (List.length r.sw_violations)
    (if r.sw_nonterminating > 0 then Printf.sprintf ", %d hit the step cap" r.sw_nonterminating
     else "")

(* Deterministic scheduling policies: round-robin rotations, fixed
   priority orders and a few seeded-random streams.  Each policy is
   generative (fresh state per run). *)
let policies n =
  let rr r =
    ( Printf.sprintf "rr+%d" r,
      fun () t ps -> List.nth ps ((t + r) mod List.length ps) )
  in
  let prio r =
    ( Printf.sprintf "prio+%d" r,
      fun () _ ps ->
        let order = List.init n (fun i -> (i + r) mod n) in
        List.find (fun p -> List.mem p ps) order )
  in
  let rand s =
    ( Printf.sprintf "rand%d" s,
      fun () ->
        let rng = Random.State.make [| s; 0x5eed |] in
        fun _ ps -> List.nth ps (Random.State.int rng (List.length ps)) )
  in
  List.init n rr
  @ List.init n prio
  @ List.map (fun (name, mk) -> (name, fun () -> mk ())) [ rand 1; rand 2; rand 3 ]

(* All crash plans with at most [max_crashes] distinct processes, each
   crashed at a position from [positions] (total-step counts). *)
let crash_plans ~n ~max_crashes ~positions =
  let rec choose k from =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun p ->
          List.map (fun rest -> p :: rest) (choose (k - 1) (List.filter (fun q -> q > p) from)))
        from
  in
  let proc_sets =
    List.concat_map (fun k -> choose k (List.init n Fun.id)) (List.init max_crashes (fun i -> i + 1))
  in
  let rec assign = function
    | [] -> [ [] ]
    | p :: rest ->
        List.concat_map
          (fun plan -> List.map (fun pos -> (p, pos) :: plan) positions)
          (assign rest)
  in
  [] :: List.concat_map assign proc_sets

(* Run Algorithm B ([Agreement.program]) under every (policy, crash
   plan) pair and check Lemma 12's contract each time: validity (every
   decision is some input), agreement (at most [k] distinct decisions)
   and termination (every surviving process decides).  [max_crashes]
   defaults to [k - 1] — the fault level k-set agreement must tolerate. *)
let agreement_crash_sweep ~make ~ordering ~inputs ~k ?max_crashes
    ?(positions = [ 0; 1; 3; 7; 15; 31 ]) ?(max_steps = 50_000) ?(jobs = 1) () : sweep_report =
  let n = Array.length inputs in
  let max_crashes = match max_crashes with Some c -> c | None -> max 0 (k - 1) in
  (* The (policy, plan) grid is fixed upfront; runs are independent
     (fresh policy state, decisions array and world per run), so [jobs]
     domains can grab grid indices dynamically and the merge — in grid
     order — reproduces the sequential report for every [jobs]. *)
  let pairs =
    Array.of_list
      (List.concat_map
         (fun pol -> List.map (fun plan -> (pol, plan)) (crash_plans ~n ~max_crashes ~positions))
         (policies n))
  in
  let nruns = Array.length pairs in
  (* Analysis reuse under reduction: two runs whose traces fall in the
     same {!Reduct} commutation class have identical histories, hence
     identical decision arrays, so validity / agreement / termination
     and the distinct-decision count come out the same.  Violation-free
     terminated runs cache [fp -> distinct] per worker; a later
     class-mate reuses the count and skips re-analysis.  Nothing with a
     violation (or a step-cap hit) is ever cached, so no violation can
     be masked, and since class-mates reproduce the same analysis the
     merged report is structurally identical for every [jobs]. *)
  let run_one cache ((pol_name, mk_choose), plan) =
    let violations = ref [] in
    let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
    let choose = mk_choose () in
    let decisions = Array.make n None in
    let prog = Agreement.program ~make ~ordering ~inputs ~decisions in
    let w = Sim.create ~n:prog.Sim.procs in
    prog.Sim.boot w;
    let total = ref 0 in
    let rec loop () =
      List.iter (fun (p, at) -> if !total >= at then Sim.crash w p) plan;
      match Sim.enabled w with
      | [] -> true
      | ps when !total < max_steps ->
          Sim.step w (choose !total ps);
          incr total;
          loop ()
      | _ -> false
    in
    let terminated = loop () in
    let plan_str =
      String.concat "," (List.map (fun (p, at) -> Printf.sprintf "p%d@%d" p at) plan)
    in
    let ctx = Printf.sprintf "policy %s, crashes [%s]" pol_name plan_str in
    let distinct = ref 0 in
    if not terminated then violate "%s: did not terminate within %d steps" ctx max_steps
    else begin
      match Hashtbl.find_opt cache (Reduct.fp_of_trace (Sim.trace w)) with
      | Some d ->
          distinct := d;
          Obs.incr c_sweep_reused
      | None ->
          let outcome = { Agreement.decisions; inputs } in
          distinct := List.length (Agreement.distinct_decisions outcome);
          if not (Agreement.valid outcome) then violate "%s: validity violated" ctx;
          if not (Agreement.agreement ~k outcome) then
            violate "%s: agreement violated (%d distinct decisions, k=%d)" ctx !distinct k;
          Array.iteri
            (fun p d ->
              if Sim.finished w p && d = None then
                violate "%s: p%d terminated without deciding" ctx p)
            decisions;
          if !violations = [] then
            Hashtbl.add cache (Reduct.fp_of_trace (Sim.trace w)) !distinct
    end;
    (plan <> [], not terminated, !distinct, List.rev !violations)
  in
  let results = Array.make nruns (false, false, 0, []) in
  let workers = Steal_pool.effective_workers ~requested:jobs in
  let caches : (int, int) Hashtbl.t array =
    Array.init (max 1 workers) (fun _ -> Hashtbl.create 64)
  in
  Steal_pool.parallel_for ~workers ~n:nruns
    (fun ~worker i -> results.(i) <- run_one caches.(worker) pairs.(i));
  Obs.add c_sweep_runs nruns;
  let crashed_runs = ref 0 in
  let nonterminating = ref 0 in
  let max_distinct = ref 0 in
  let violations = ref [] in
  Array.iter
    (fun (crashed, nonterm, distinct, vs) ->
      if crashed then incr crashed_runs;
      if nonterm then incr nonterminating;
      if distinct > !max_distinct then max_distinct := distinct;
      violations := List.rev_append vs !violations)
    results;
  {
    sw_k = k;
    sw_runs = nruns;
    sw_crashed_runs = !crashed_runs;
    sw_nonterminating = !nonterminating;
    sw_max_distinct = !max_distinct;
    sw_violations = List.rev !violations;
  }
