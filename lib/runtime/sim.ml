(* Deterministic effect-based simulator.

   Each process is a fiber.  [access] performs the [Suspend] effect before
   applying its state transition, so one resume = one atomic step; the
   scheduler (the caller of [step]) decides the interleaving.  Within a
   resume, the fiber also runs all its local computation up to the next
   access — local computation is free, exactly as in the paper's model
   where only base-object operations are steps. *)

type _ Effect.t += Suspend : unit Effect.t

exception Invalid_schedule of string

(* Global, opt-in metrics aggregated across every world (the checker
   boots one world per explored schedule, so per-world counts are
   useless for exploration-wide totals).  Gated on [enabled] so the
   default cost per access is one load-and-branch; when enabled the
   counts are still deterministic — they never influence scheduling. *)
module Metrics = struct
  let enabled = ref false

  (* Per-domain shard tables (Domain.DLS): [bump] only ever touches the
     calling domain's own table, so concurrent simulations neither
     contend on a lock nor lose increments — the parallel checker boots
     worlds from several domains at once.  Each shard registers itself
     on first use; [snapshot] merges across shards and [reset] clears
     them, and both must run while no other domain is simulating (the
     engine joins its workers before reporting, so this holds at every
     call site).  [bump] call sites are all gated on [enabled], so the
     unobserved fast path never touches any of this. *)
  let shards_lock = Mutex.create ()

  let shards : (string, int ref) Hashtbl.t list ref = ref []

  let shard_key =
    Domain.DLS.new_key (fun () ->
        let t : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
        Mutex.lock shards_lock;
        shards := t :: !shards;
        Mutex.unlock shards_lock;
        t)

  let bump key =
    let table = Domain.DLS.get shard_key in
    match Hashtbl.find_opt table key with
    | Some r -> incr r
    | None -> Hashtbl.add table key (ref 1)

  let reset () =
    Mutex.lock shards_lock;
    List.iter Hashtbl.reset !shards;
    Mutex.unlock shards_lock

  let snapshot () =
    Mutex.lock shards_lock;
    let merged : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun shard ->
        Hashtbl.iter
          (fun k r ->
            match Hashtbl.find_opt merged k with
            | Some acc -> acc := !acc + !r
            | None -> Hashtbl.add merged k (ref !r))
          shard)
      !shards;
    Mutex.unlock shards_lock;
    List.sort compare (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) merged [])
end

type fiber =
  | Absent
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Running  (* transient marker while a resume is in progress *)
  | Finished
  | Crashed

type ('op, 'resp) t = {
  procs : int;
  fibers : fiber array;
  steps : int array;
  mutable current : int;  (* process being resumed; -1 outside [step] *)
  mutable rev_trace : ('op, 'resp) Trace.event list;
  mutable trace_n : int;  (* List.length rev_trace, maintained incrementally *)
}

let create ~n =
  if n < 1 then invalid_arg "Sim.create: need at least one process";
  {
    procs = n;
    fibers = Array.make n Absent;
    steps = Array.make n 0;
    current = -1;
    rev_trace = [];
    trace_n = 0;
  }

let n w = w.procs

let record w e =
  w.rev_trace <- e :: w.rev_trace;
  w.trace_n <- w.trace_n + 1

let runtime (type op resp) (w : (op, resp) t) : (module Runtime_intf.S) =
  (module struct
    type 'a obj = { mutable state : 'a; obj_name : string }

    let obj_counter = ref 0

    let obj ?name init =
      incr obj_counter;
      let obj_name =
        match name with Some s -> s | None -> Printf.sprintf "obj%d" !obj_counter
      in
      { state = init; obj_name }

    let access ?info o f =
      Effect.perform Suspend;
      (* The step was granted: apply the transition atomically (no other
         fiber can run until the next Suspend). *)
      let old = o.state in
      let s, r = f old in
      o.state <- s;
      (* State-preserving accesses are flagged for the reduction layer.
         Physical equality catches reads (which return their argument);
         the structural fallback catches rewrites of an equal value, and
         is guarded because object states are arbitrary. *)
      let noop = s == old || (try s = old with Invalid_argument _ -> false) in
      record w (Trace.Step { proc = w.current; obj = o.obj_name; info; noop });
      if !Metrics.enabled then begin
        Metrics.bump "access.total";
        Metrics.bump ("access.obj." ^ o.obj_name);
        match info with Some kind -> Metrics.bump ("access.kind." ^ kind) | None -> ()
      end;
      r

    let read ?info o = access ?info o (fun s -> (s, s))
    let self () = w.current
    let n_procs () = w.procs
  end)

let spawn w ~proc body =
  if proc < 0 || proc >= w.procs then invalid_arg "Sim.spawn: process out of range";
  (match w.fibers.(proc) with
  | Absent -> ()
  | _ -> invalid_arg "Sim.spawn: process already has a body");
  w.fibers.(proc) <- Not_started body

let operation w ~op ~resp f =
  let p = w.current in
  if p < 0 then invalid_arg "Sim.operation: not inside a fiber";
  record w (Trace.Invoke { proc = p; op });
  let r = f () in
  (* [f] may have suspended and resumed many times; re-read the current
     process rather than trusting [p] — they are equal because only [p]'s
     resumes run this code. *)
  record w (Trace.Return { proc = w.current; resp = resp r });
  r

let enabled w =
  let acc = ref [] in
  for p = w.procs - 1 downto 0 do
    match w.fibers.(p) with
    | Not_started _ | Suspended _ -> acc := p :: !acc
    | Absent | Running | Finished | Crashed -> ()
  done;
  !acc

let finished w p = match w.fibers.(p) with Finished -> true | _ -> false
let steps_of w p = w.steps.(p)

let crash w p =
  if p < 0 || p >= w.procs then invalid_arg "Sim.crash: process out of range";
  match w.fibers.(p) with
  | Finished -> ()  (* crashing a finished process has no effect *)
  | Crashed -> ()  (* idempotent: a second crash is a no-op, not a new fault *)
  | _ ->
      if !Metrics.enabled then Metrics.bump "crash";
      w.fibers.(p) <- Crashed

let handler w p =
  {
    Effect.Deep.retc = (fun () -> w.fibers.(p) <- Finished);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) -> w.fibers.(p) <- Suspended k)
        | _ -> None);
  }

let step w p =
  if p < 0 || p >= w.procs then raise (Invalid_schedule (Printf.sprintf "p%d out of range" p));
  match w.fibers.(p) with
  | Absent -> raise (Invalid_schedule (Printf.sprintf "p%d has no body" p))
  | Running -> raise (Invalid_schedule (Printf.sprintf "p%d re-entered" p))
  | Finished -> raise (Invalid_schedule (Printf.sprintf "p%d already finished" p))
  | Crashed -> raise (Invalid_schedule (Printf.sprintf "p%d crashed" p))
  | Not_started body ->
      if !Metrics.enabled then Metrics.bump "step.total";
      w.fibers.(p) <- Running;
      w.current <- p;
      w.steps.(p) <- w.steps.(p) + 1;
      Effect.Deep.match_with body () (handler w p);
      w.current <- -1
  | Suspended k ->
      if !Metrics.enabled then Metrics.bump "step.total";
      w.fibers.(p) <- Running;
      w.current <- p;
      w.steps.(p) <- w.steps.(p) + 1;
      Effect.Deep.continue k ();
      w.current <- -1

let trace w = List.rev w.rev_trace

let trace_len w = w.trace_n

(* Chronological events from position [from] (inclusive) to the end of
   the trace.  O(new events): the checker's incremental node evaluation
   reads only the delta a step appended, never the whole trace. *)
let events_from w ~from =
  let rec take acc k l = if k <= 0 then acc else match l with [] -> acc | e :: rest -> take (e :: acc) (k - 1) rest in
  take [] (w.trace_n - from) w.rev_trace

type ('op, 'resp) program = { procs : int; boot : ('op, 'resp) t -> unit }

let boot_world prog =
  if !Metrics.enabled then Metrics.bump "world.boot";
  let w = create ~n:prog.procs in
  prog.boot w;
  w

let run_schedule prog schedule =
  let w = boot_world prog in
  List.iter (fun p -> step w p) schedule;
  w

(* Replay entry point for untrusted schedules (witness artifacts, shrink
   candidates): a schedule that steps a finished, crashed or out-of-range
   process is reported as [Error] instead of an exception, with the
   offending position for diagnostics. *)
let run_schedule_result prog schedule =
  let w = boot_world prog in
  let rec go i = function
    | [] -> Ok w
    | p :: rest -> (
        match step w p with
        | () -> go (i + 1) rest
        | exception Invalid_schedule msg ->
            Error (Printf.sprintf "step %d (process %d): %s" i p msg))
  in
  go 0 schedule

let run_to_completion ?(choose = fun ps -> List.hd ps) prog =
  let w = boot_world prog in
  let rec loop () =
    match enabled w with
    | [] -> ()
    | ps ->
        step w (choose ps);
        loop ()
  in
  loop ();
  w

(* [crash_after] semantics, pinned by test/test_runtime.ml: the pair
   [(p, at)] crashes [p] at the top of the scheduling loop once the total
   step count has reached [at], i.e. BEFORE the (at+1)-th step is chosen.
   So [p] takes at most [at] of the first [at] total steps and none
   afterwards; [(p, 0)] means [p] never runs.  Re-crashing on later loop
   iterations is harmless because [crash] is idempotent. *)
let run_random_full ~seed ?(crash_after = []) ?max_steps prog =
  let w = boot_world prog in
  let rng = Random.State.make [| seed |] in
  let total = ref 0 in
  let rev_sched = ref [] in
  let continue_run () = match max_steps with None -> true | Some m -> !total < m in
  let rec loop () =
    List.iter (fun (p, at) -> if !total >= at then crash w p) crash_after;
    match enabled w with
    | [] -> ()
    | ps when continue_run () ->
        let p = List.nth ps (Random.State.int rng (List.length ps)) in
        step w p;
        rev_sched := p :: !rev_sched;
        incr total;
        loop ()
    | _ -> ()
  in
  loop ();
  (w, List.rev !rev_sched)

let run_random ~seed ?crash_after ?max_steps prog =
  fst (run_random_full ~seed ?crash_after ?max_steps prog)
