(* Execution traces produced by the simulator.

   A trace is the sequence of observable events of one execution: high-level
   invocations and responses (which form the history checked for
   linearizability) plus one entry per base-object step (used for step
   accounting, debugging and the collect of Lemma 12's Algorithm B). *)

(* [noop] marks a state-preserving access: the transition wrote back the
   state it observed (every read, a failed CAS, a swap of the value
   already there...).  Recorded because such accesses commute with each
   other and with reads on the same object — the partial-order-reduction
   layer exploits that; nothing else (printing, history, coverage
   classification) looks at it. *)
type ('op, 'resp) event =
  | Invoke of { proc : int; op : 'op }
  | Return of { proc : int; resp : 'resp }
  | Step of { proc : int; obj : string; info : string option; noop : bool }

type ('op, 'resp) t = ('op, 'resp) event list
(* Chronological order (earliest first). *)

let pp_event pp_op pp_resp fmt = function
  | Invoke { proc; op } -> Format.fprintf fmt "p%d: invoke %a" proc pp_op op
  | Return { proc; resp } -> Format.fprintf fmt "p%d: return %a" proc pp_resp resp
  | Step { proc; obj; info; noop = _ } ->
      Format.fprintf fmt "p%d: step %s%s" proc obj
        (match info with None -> "" | Some i -> " [" ^ i ^ "]")

let pp pp_op pp_resp fmt (t : _ t) =
  List.iteri (fun i e -> Format.fprintf fmt "%3d  %a@." i (pp_event pp_op pp_resp) e) t

(* The history of a trace: invocation and response events only. *)
let history (t : ('op, 'resp) t) : ('op, 'resp) t =
  List.filter (function Invoke _ | Return _ -> true | Step _ -> false) t

let step_count (t : _ t) =
  List.length (List.filter (function Step _ -> true | _ -> false) t)
