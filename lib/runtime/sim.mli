(** Deterministic simulator for the asynchronous shared-memory model.

    A {e world} holds [n] processes (cooperative fibers) and the shared
    base objects they create through the world's {!runtime}.  Every
    {!Runtime_intf.S.access} suspends the calling fiber; {!step} resumes a
    chosen process for exactly one atomic step.  The sequence of choices —
    the {e schedule} — fully determines the execution, so executions can be
    replayed, enumerated exhaustively, and subjected to crash injection,
    which is how the strong-linearizability checker explores the execution
    tree.

    Worlds are parameterized by the high-level operation and response types
    ['op] and ['resp] of the object under test; {!operation} brackets an
    operation so that its invocation and response appear in the trace. *)

type ('op, 'resp) t
(** A world. *)

exception Invalid_schedule of string
(** Raised by {!step} when asked to run a process that is finished,
    crashed, or out of range. *)

val create : n:int -> ('op, 'resp) t
(** [create ~n] is a fresh world with [n] processes and no fibers yet. *)

(** Opt-in metrics aggregated across {e all} worlds — the checker boots
    one world per explored schedule, so per-world counts cannot describe
    a whole exploration.  Keys: ["access.total"], ["access.obj.NAME"]
    (per base object), ["access.kind.KIND"] (per access kind, from the
    [info] label), ["step.total"], ["world.boot"], ["crash"].  Disabled
    by default; when disabled every instrumentation site costs one
    load-and-branch and nothing is recorded, so executions (and checker
    node counts) are unaffected either way. *)
module Metrics : sig
  val enabled : bool ref

  val reset : unit -> unit
  (** Drop all accumulated counts (every domain's shard). *)

  val snapshot : unit -> (string * int) list
  (** Accumulated counts merged across all domains' shards, sorted by
      key.  Call only while no other domain is simulating — the checker
      joins its worker domains before reporting, so every existing call
      site satisfies this. *)
end

val n : _ t -> int

val runtime : _ t -> (module Runtime_intf.S)
(** The runtime through which algorithms create and access this world's
    base objects.  Each world has its own. *)

val spawn : ('op, 'resp) t -> proc:int -> (unit -> unit) -> unit
(** [spawn w ~proc body] installs [body] as the program of process [proc].
    The body does not run until [proc] is first scheduled.
    @raise Invalid_argument if [proc] already has a body or is out of
    range. *)

val operation : ('op, 'resp) t -> op:'op -> resp:('r -> 'resp) -> (unit -> 'r) -> 'r
(** [operation w ~op ~resp f] brackets the high-level operation [f]:
    records [Invoke] in the trace, runs [f], records [Return] carrying
    [resp (f ())].  Must be called from a fiber of [w]. *)

(** {1 Scheduling} *)

val enabled : _ t -> int list
(** Processes that can take a step (spawned, not finished, not crashed),
    in increasing order. *)

val step : _ t -> int -> unit
(** [step w p] resumes process [p] for one step: the first resume runs the
    body up to (not including) its first access; every later resume applies
    exactly one pending access and runs up to the next one (or to
    completion).  @raise Invalid_schedule if [p] is not enabled. *)

val crash : _ t -> int -> unit
(** [crash w p] permanently removes [p] from the schedulable set, modelling
    a crash; any pending operation of [p] stays pending forever.  Crashing
    a process that is already crashed or finished is a no-op (idempotent —
    repeated injection of the same fault is not a new fault). *)

val finished : _ t -> int -> bool
(** [finished w p] is true when [p]'s body ran to completion. *)

val steps_of : _ t -> int -> int
(** Number of steps [p] has taken (its resumes so far). *)

val trace : ('op, 'resp) t -> ('op, 'resp) Trace.t
(** Events so far, in chronological order. *)

val trace_len : _ t -> int
(** Number of events recorded so far ([List.length (trace w)], O(1)). *)

val events_from : ('op, 'resp) t -> from:int -> ('op, 'resp) Trace.event list
(** [events_from w ~from] is the chronological suffix of [trace w]
    starting at position [from] — the delta since a caller last observed
    [trace_len w = from].  Costs O(number of new events), so incremental
    consumers never pay for the whole trace. *)

(** {1 Programs and drivers}

    A program packages everything needed to (re-)execute a workload from
    scratch, which exploration does once per schedule. *)

type ('op, 'resp) program = {
  procs : int;  (** number of processes *)
  boot : ('op, 'resp) t -> unit;
      (** creates the shared objects and spawns all process bodies *)
}

val run_schedule : ('op, 'resp) program -> int list -> ('op, 'resp) t
(** Boot a fresh world and apply the given schedule.
    @raise Invalid_schedule as {!step} does. *)

val run_schedule_result : ('op, 'resp) program -> int list -> (('op, 'resp) t, string) result
(** Like {!run_schedule} for untrusted schedules (witness replay, shrink
    candidates): an invalid step yields [Error] describing the offending
    position instead of raising. *)

val run_to_completion : ?choose:(int list -> int) -> ('op, 'resp) program -> ('op, 'resp) t
(** Boot a fresh world and keep stepping until no process is enabled.
    [choose] picks the next process among the enabled ones (default: the
    smallest index — round-robin-free but deterministic). *)

val run_random :
  seed:int -> ?crash_after:(int * int) list -> ?max_steps:int -> ('op, 'resp) program -> ('op, 'resp) t
(** Boot a fresh world and schedule uniformly at random ([seed] makes the
    run reproducible).  [crash_after] is a list of [(proc, step_number)]
    pairs: [proc] is crashed at the top of the scheduling loop once the
    total step count has reached [step_number] — i.e. {e before} the
    [(step_number + 1)]-th step is chosen, so [proc] takes no step once
    [step_number] total steps have run, and [(proc, 0)] means [proc]
    never runs at all.  Stops after [max_steps] total steps (default: run
    until quiescence). *)

val run_random_full :
  seed:int ->
  ?crash_after:(int * int) list ->
  ?max_steps:int ->
  ('op, 'resp) program ->
  ('op, 'resp) t * int list
(** Like {!run_random} (identical RNG stream, so [run_random ~seed p] and
    [fst (run_random_full ~seed p)] are the same execution) but also
    returns the schedule actually executed.  Crashes need no separate
    encoding for replay: a crash only removes a process's {e future}
    steps, so re-running the returned schedule through {!run_schedule}
    reproduces the identical trace — the crashed process simply never
    appears again.  This is what makes fuzz-found violations replayable
    as plain [slin-witness/v1] schedules. *)
