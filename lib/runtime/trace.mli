(** Execution traces produced by the simulator.

    A trace is the chronological sequence of observable events of one
    execution: high-level invocations and responses (the {e history},
    checked for linearizability) plus one entry per base-object step
    (used for step accounting and debugging). *)

type ('op, 'resp) event =
  | Invoke of { proc : int; op : 'op }
  | Return of { proc : int; resp : 'resp }
  | Step of { proc : int; obj : string; info : string option; noop : bool }
      (** [noop] marks a state-preserving access (the transition wrote
          back exactly the state it observed: every read, a failed CAS,
          a swap of the value already present).  Such accesses commute
          with each other and with reads of the same object, which the
          partial-order-reduction layer exploits; printing, history
          extraction and coverage classification ignore it. *)

type ('op, 'resp) t = ('op, 'resp) event list
(** Earliest event first. *)

val pp_event :
  (Format.formatter -> 'op -> unit) ->
  (Format.formatter -> 'resp -> unit) ->
  Format.formatter ->
  ('op, 'resp) event ->
  unit

val pp :
  (Format.formatter -> 'op -> unit) ->
  (Format.formatter -> 'resp -> unit) ->
  Format.formatter ->
  ('op, 'resp) t ->
  unit
(** One numbered line per event. *)

val history : ('op, 'resp) t -> ('op, 'resp) t
(** Invocation and response events only. *)

val step_count : ('op, 'resp) t -> int
(** Number of base-object steps in the trace. *)
