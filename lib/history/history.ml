(* Histories: the invocation/response structure of a trace (paper §2).

   An operation record pairs an invocation with its response (if any) and
   remembers the positions of both events, from which the real-time
   precedence relation is derived: OP precedes OP' iff OP's response
   appears before OP''s invocation. *)

type ('op, 'resp) op_record = {
  id : int;  (* dense, in invocation order *)
  proc : int;
  op : 'op;
  resp : 'resp option;  (* None while pending *)
  inv_index : int;  (* position of the Invoke event in the trace *)
  res_index : int option;  (* position of the Return event, if completed *)
}

let is_complete r = r.resp <> None
let is_pending r = r.resp = None

(* [precedes a b]: a completed strictly before b was invoked. *)
let precedes a b = match a.res_index with Some ra -> ra < b.inv_index | None -> false

let overlapping a b = (not (precedes a b)) && not (precedes b a)

(* Extract the operation records of a trace, in invocation order.
   Assumes well-formedness (one pending operation per process at a time),
   which the simulator guarantees. *)
let of_trace (t : ('op, 'resp) Trace.t) : ('op, 'resp) op_record list =
  let records = ref [] in
  let open_ops : (int, ('op, 'resp) op_record) Hashtbl.t = Hashtbl.create 8 in
  let next_id = ref 0 in
  List.iteri
    (fun idx ev ->
      match ev with
      | Trace.Step _ -> ()
      | Trace.Invoke { proc; op } ->
          if Hashtbl.mem open_ops proc then
            invalid_arg (Printf.sprintf "History.of_trace: p%d invoked twice concurrently" proc);
          let r = { id = !next_id; proc; op; resp = None; inv_index = idx; res_index = None } in
          incr next_id;
          Hashtbl.add open_ops proc r;
          records := r :: !records
      | Trace.Return { proc; resp } -> (
          match Hashtbl.find_opt open_ops proc with
          | None ->
              invalid_arg (Printf.sprintf "History.of_trace: p%d returned without invoking" proc)
          | Some r ->
              Hashtbl.remove open_ops proc;
              let completed = { r with resp = Some resp; res_index = Some idx } in
              records := completed :: List.filter (fun x -> x.id <> r.id) !records))
    t;
  List.sort (fun a b -> compare a.id b.id) !records

let complete_ops records = List.filter is_complete records
let pending_ops records = List.filter is_pending records

let pp_op_record pp_op pp_resp fmt r =
  Format.fprintf fmt "#%d p%d %a%s" r.id r.proc pp_op r.op
    (match r.resp with
    | None -> " (pending)"
    | Some v -> Format.asprintf " -> %a" pp_resp v)

let pp pp_op pp_resp fmt records =
  List.iter (fun r -> Format.fprintf fmt "%a@." (pp_op_record pp_op pp_resp) r) records

let label pp_op pp_resp r = Format.asprintf "%a" (pp_op_record pp_op pp_resp) r

let pp_inline pp_op pp_resp fmt records =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
    (pp_op_record pp_op pp_resp) fmt records
