(** Histories: the invocation/response structure of a trace (paper §2).

    A history pairs every invocation with its response (if any) and keeps
    the positions of both events, from which the real-time precedence
    relation is derived.  Operation records are the unit the checkers
    work on. *)

type ('op, 'resp) op_record = {
  id : int;  (** dense, in invocation order — stable under trace extension *)
  proc : int;
  op : 'op;
  resp : 'resp option;  (** [None] while pending *)
  inv_index : int;  (** position of the [Invoke] event in the trace *)
  res_index : int option;  (** position of the [Return] event, if completed *)
}

val is_complete : _ op_record -> bool
val is_pending : _ op_record -> bool

val precedes : ('op, 'resp) op_record -> ('op, 'resp) op_record -> bool
(** [precedes a b]: [a]'s response appears strictly before [b]'s
    invocation — the paper's "OP precedes OP'". *)

val overlapping : ('op, 'resp) op_record -> ('op, 'resp) op_record -> bool
(** Neither precedes the other. *)

val of_trace : ('op, 'resp) Trace.t -> ('op, 'resp) op_record list
(** Operation records of a trace, sorted by [id].  Requires
    well-formedness (at most one pending operation per process), which
    the simulator guarantees.
    @raise Invalid_argument on a malformed trace. *)

val complete_ops : ('op, 'resp) op_record list -> ('op, 'resp) op_record list
val pending_ops : ('op, 'resp) op_record list -> ('op, 'resp) op_record list

val pp_op_record :
  (Format.formatter -> 'op -> unit) ->
  (Format.formatter -> 'resp -> unit) ->
  Format.formatter ->
  ('op, 'resp) op_record ->
  unit

val pp :
  (Format.formatter -> 'op -> unit) ->
  (Format.formatter -> 'resp -> unit) ->
  Format.formatter ->
  ('op, 'resp) op_record list ->
  unit

val label :
  (Format.formatter -> 'op -> unit) ->
  (Format.formatter -> 'resp -> unit) ->
  ('op, 'resp) op_record ->
  string
(** One-line rendering of a record ([#3 p2 Deq -> Item 1]) — the unit of
    conflict reporting in witness artifacts. *)

val pp_inline :
  (Format.formatter -> 'op -> unit) ->
  (Format.formatter -> 'resp -> unit) ->
  Format.formatter ->
  ('op, 'resp) op_record list ->
  unit
(** Whole history on one (wrapped) line, records separated by [";"]. *)
