(** Work-stealing task pool for the exploration engines.

    A {!t} owns one deque per worker.  Owners push and pop at the bottom
    (LIFO — a single worker therefore executes forked tasks in exact
    depth-first order, which is what makes the stealing engine's
    one-worker schedule identical to the sequential engine's); thieves
    steal {e half} of a victim's deque from the top (the oldest, largest
    subtrees), with the victim chosen by a seeded pseudo-random round
    robin so steal storms do not synchronize.

    Tasks are [worker -> unit] closures: a task learns which worker is
    executing it so it can push follow-up work onto that worker's deque
    and record profiler spans on that worker's lane.  Blocking joins are
    cooperative: {!help_until} runs queued work (own deque first, then
    steals) until the caller's predicate holds, so a worker waiting on
    forked children is never idle while runnable work exists.

    The pool makes no determinism promises by itself — callers get
    determinism by merging task results in a canonical order (see
    [Lincheck]'s schedule-prefix merge). *)

type t

val create :
  workers:int ->
  ?seed:int ->
  ?on_steal:(thief:int -> victim:int -> stolen:int -> dur_ns:int -> unit) ->
  unit ->
  t
(** A pool with [workers] deques (clamped to >= 1).  [seed] (default 0)
    drives every worker's victim-selection stream — same seed, same
    steal attempts modulo timing.  [on_steal] observes each successful
    steal (called on the thief's domain, after the transfer; [dur_ns]
    is the measured duration of the successful transfer, for steal-span
    profiling). *)

val workers : t -> int

val push : t -> worker:int -> (int -> unit) -> unit
(** Push a task on the bottom of [worker]'s deque.  Must be called from
    the domain currently acting as [worker]. *)

val help_until : t -> worker:int -> (unit -> bool) -> unit
(** Run tasks as [worker] until [done_ ()] holds: pop the bottom of the
    own deque; when empty, try to steal half of a random victim's deque;
    when nothing is runnable, spin politely ([Domain.cpu_relax]).  The
    predicate is re-checked between tasks, so it must eventually be made
    true by some task (typically an atomic join counter reaching 0). *)

val run : t -> (int -> unit) -> unit
(** [run pool main] spawns [workers pool - 1] domains and runs [main
    worker] on each of them plus the calling domain (as worker 0),
    joining them all before returning.  [main] is usually
    [fun w -> help_until pool ~worker:w all_done]. *)

(** {1 Worker capping}

    Domains beyond the machine's core count are a pessimization for this
    CPU-bound engine (time-slicing one core between speculative domains
    is exactly the `-j 4` slowdown this module exists to fix), so
    callers cap the requested [--jobs] at the hardware parallelism. *)

val hardware_domains : unit -> int
(** The effective hardware parallelism: [SLIN_DOMAIN_CAP] (read from the
    environment on every call, so tests can override it) when set to a
    positive integer, else [Domain.recommended_domain_count ()]. *)

val effective_workers : requested:int -> int
(** [min requested (hardware_domains ())], clamped to >= 1. *)

(** {1 Parallel for}

    Dynamic index distribution for embarrassingly-parallel loops (fuzz
    campaigns, crash sweeps): workers grab the next undone index from a
    shared cursor, so one slow iteration no longer stalls a whole static
    stride class.  Results keyed by index stay deterministic. *)

val parallel_for :
  workers:int ->
  n:int ->
  ?init:(int -> unit) ->
  ?fini:(int -> unit) ->
  (worker:int -> int -> unit) -> unit
(** Run [body ~worker i] for every [i] in [0 .. n-1], distributed over
    [workers] domains via an atomic cursor.  [init w] / [fini w] run on
    each participating worker's own domain before its first index and
    after its last (per-worker profiler lanes, coverage shards).  With
    [workers <= 1] this is exactly the sequential loop
    [init 0; for i = 0 to n-1 do body ~worker:0 i done; fini 0] —
    byte-identical to the historical single-domain paths. *)
