(** Counterexample forensics: structured, replayable witness artifacts
    for the strong-linearizability checker's refutations.

    A refutation verdict names a single schedule — the deepest dead end
    of the game.  This module turns it into a self-certifying
    {e certificate subtree}: a shared schedule prefix (the {e branch})
    plus a small set of continuation schedules (the {e futures}) such
    that no prefix-closed assignment of linearizations exists on that
    subtree.  Because the subtree embeds in the full execution tree, its
    refutation carries over: replaying the certificate re-proves the
    verdict without re-running the exploration.

    The pipeline: {!Make.extract} builds a certificate from a verdict,
    {!Make.shrink} greedily minimizes it, {!Make.conflict_of} computes
    the spec-level reason, {!Make.to_json} serializes it as a versioned
    [slin-witness/v1] document, and {!parse} / {!Make.replay} load one
    back and verify the verdict reproduces (the [slin explain] path). *)

(** [Livelock] certificates come from the lock-freedom checker in
    [Slin_adversary]: the branch is a {e stem} schedule and the single
    future is a {e cycle} that keeps replaying with an identical event
    signature while no operation completes — a lasso through the
    schedule graph, starving every pending operation. *)
type kind = Not_linearizable | Not_strongly_linearizable | Livelock

val kind_tag : kind -> string

val kind_of_tag : string -> kind option

(** A certificate: futures are stored {e relative} to the branch; the
    certificate tree is the union of the schedules [branch @ future]. *)
type shape = { kind : kind; branch : int list; futures : int list list }

(** The full schedules [branch @ future], in future order. *)
val schedules : shape -> int list list

(** Total number of schedule steps (branch + all futures). *)
val size : shape -> int

(** {1 Conflicts}

    The spec-level reason the certificate refutes, phrased in terms of
    the {e choices} each future leaves open for some operation at the
    branch point. *)

(** The response an operation is committed to in a branch
    linearization, or [None] when it is deferred past the branch. *)
type choice = string option

type conflict =
  | Placement of { op : string; forced_by : int; excluded_by : int }
      (** one future forces [op] to linearize at or before the branch
          point, another strictly after it *)
  | Response of {
      op : string;
      forced_by : int;
      resp_a : string;
      excluded_by : int;
      resp_b : string;
    }  (** two futures force [op] to distinct responses at the branch *)
  | Commitment of {
      op : string;
      future_a : int;
      choices_a : choice list;
      future_b : int;
      choices_b : choice list;
    }
      (** general form: the choice sets two futures leave open for [op]
          at the branch point are disjoint *)
  | Generic of string  (** no single-operation explanation found *)

(** One-sentence human-readable rendering. *)
val conflict_description : conflict -> string

(** {1 The serialized artifact} *)

val schema_version : string
(** ["slin-witness/v1"] *)

type recorded_op = { r_id : int; r_proc : int; r_op : string; r_resp : string option }

type recorded_future = { f_schedule : int list; f_history : recorded_op list }

(** A parsed [slin-witness/v1] document.  [p_object] is the registry
    name under which the witnessed object can be re-instantiated. *)
type parsed = {
  p_object : string;
  p_spec : string;
  p_procs : int;
  p_kind : kind;
  p_branch : int list;
  p_futures : recorded_future list;
  p_conflict : conflict option;
  p_max_nodes : int option;
  p_max_depth : int option;
  p_nodes : int option;
  p_original_len : int;
  p_shrunk_len : int;
}

val shape_of_parsed : parsed -> shape

val parse : Obs_json.t -> (parsed, string) result

val parse_file : string -> (parsed, string) result

(** {1 Spec-dependent machinery}

    Everything that must replay schedules or run the checker's game.
    The functor instantiates its own [Lincheck.Make (S)] internally; the
    API exchanges only plain data (schedules, programs), so it composes
    with any other instantiation. *)

module Make (S : Spec.S) : sig
  (** Does the certificate refute?  For [Not_linearizable] the (single)
      future's history must fail linearizability outright; for
      [Not_strongly_linearizable] the checker's game, restricted to the
      certificate tree, must have no winning strategy; for [Livelock]
      the single future (the cycle) must replay four times from the end
      of the branch (the stem) with an identical event signature, no
      operation completing, and some operation left pending.  [Error]
      when a schedule in the certificate does not replay. *)
  val refutes : (S.op, S.resp) Sim.program -> shape -> (bool, string) result

  (** Build a certificate from a refutation verdict of
      [Lincheck.Make(S).check_strong] on [prog].  For
      [Not_strongly_linearizable] this re-runs the game recording
      refutation evidence, using the same traversal and budget as the
      original check — pass the same [max_nodes] / [max_depth].
      [schedule] is the verdict's witness schedule (used directly for
      [Not_linearizable]).  [None] only if the verdict cannot be
      re-established within the budget.  Always [None] for [Livelock]:
      a stem/cycle split cannot be recovered from one schedule — the
      lock-freedom checker builds the shape directly. *)
  val extract :
    ?max_nodes:int ->
    ?max_depth:int ->
    (S.op, S.resp) Sim.program ->
    kind:kind ->
    schedule:int list ->
    shape option

  (** Greedy minimization to a local fixpoint: drop futures, drop
      steps, hoist common future prefixes into the branch, reduce
      context switches — re-verifying every candidate with {!refutes}.
      The result refutes whenever the input does, and never has more
      steps. *)
  val shrink : (S.op, S.resp) Sim.program -> shape -> shape

  (** The spec-level reason the certificate refutes, if a
      single-operation explanation exists.  [None] for
      [Not_linearizable] certificates (the history itself is the
      explanation). *)
  val conflict_of : (S.op, S.resp) Sim.program -> shape -> conflict option

  (** Serialize as a [slin-witness/v1] document.  [object_name] must be
      a stable registry name so [slin explain] can re-instantiate the
      object; [original_len] is the pre-shrink certificate size. *)
  val to_json :
    (S.op, S.resp) Sim.program ->
    object_name:string ->
    spec_name:string ->
    max_nodes:int ->
    max_depth:int option ->
    nodes:int option ->
    original_len:int ->
    shape ->
    Obs_json.t

  type replay_report = {
    reproduced : bool;  (** verdict re-established and histories match *)
    notes : string list;  (** every observed divergence, empty when reproduced *)
  }

  (** Re-run a parsed witness against a freshly instantiated program:
      replays every future schedule, compares each invocation/response
      against the recorded history, then re-checks {!refutes} on the
      certificate. *)
  val replay : (S.op, S.resp) Sim.program -> parsed -> replay_report

  (** Step-by-step rendering of one full schedule: one line per step
      with the simulator events it produced. *)
  val timeline : (S.op, S.resp) Sim.program -> int list -> string list

  (** Render the certificate for humans: kind, branch timeline, futures
      (side by side when there are exactly two), per-future histories,
      and the conflict when given. *)
  val pp_explain :
    prog:(S.op, S.resp) Sim.program -> ?conflict:conflict -> Format.formatter -> shape -> unit
end
