(** Progress-property measurements (paper §2: wait-freedom,
    lock-freedom), empirical side.

    Wait-freedom of an implementation shows up as a steps-per-operation
    bound independent of the schedule; lock-freedom as completions
    continuing in every run.  [measure] runs a program under many random
    schedules (optionally with crash injection) and reports the worst
    counts observed — experiment E1's progress column. *)

type report = {
  runs : int;
  max_steps_per_op : int;  (** worst steps any single operation took *)
  total_completed : int;  (** operations completed across all runs *)
  total_steps : int;  (** base-object steps across all runs *)
}

val pp_report : Format.formatter -> report -> unit

val report_fields : report -> (string * Obs_json.t) list
(** The report as JSON fields, for the structured-event sink. *)

val op_step_counts : ('op, 'resp) Trace.t -> int list
(** Steps taken by each completed operation of a trace. *)

val measure : ?seed:int -> ?runs:int -> ?crash_prob:float -> ('op, 'resp) Sim.program -> report
(** [measure prog] runs [prog] under [runs] (default 100) random
    schedules; with probability [crash_prob] a run crashes one random
    process early. *)
