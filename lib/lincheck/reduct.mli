(** Dependency-aware partial-order reduction support: the static
    commutation relation over base-object accesses and a trace
    fingerprint invariant under exactly that relation.

    Two base-object accesses by distinct processes commute when they
    touch distinct objects, or when both are read-like accesses of the
    same object; everything else — same-object access pairs involving a
    write/F&A/swap, and any invoke/return history event — conflicts.
    This is the static side of the empirical object-pair matrix the
    coverage layer measures ({!Coverage.classify_pair} uses the same
    rule), and the fingerprint below identifies schedule prefixes that
    differ only by swapping adjacent commuting accesses.  The engine's
    [--reduce] mode keys its candidate-survival memo on {!fp_value}:
    trace-equivalent prefixes have identical histories and record
    arrays, so their SL-game subtrees are isomorphic and one
    exploration answers the whole equivalence class. *)

val fp_mask : int
(** [(1 lsl 62) - 1] — fingerprints are non-negative 62-bit ints. *)

val mix : int -> int -> int
(** The Fibonacci-style mixing step shared with [Coverage]. *)

val read_like : string option -> bool
(** Is this access [info] tag read-like ("read" / "scan" / "collect")?
    Kept in sync with [Coverage] by test, since commuting reads is only
    sound when both layers agree on what a read is. *)

val preserving : info:string option -> noop:bool -> bool
(** Did this access leave its object's state unchanged — read-like by
    tag, or flagged state-preserving by the simulator ([Trace.Step]'s
    [noop]: a failed CAS, a swap writing back the value present)?  Two
    adjacent preserving accesses of the same object commute: either
    order observes the same state, returns the same responses and
    leaves the object unchanged. *)

val commuting_steps :
  obj1:string -> info1:string option -> obj2:string -> info2:string option -> bool
(** Do two base-object accesses (by distinct processes) commute?
    [true] iff distinct objects, or same object with both read-like. *)

val conflicting_steps :
  obj1:string -> info1:string option -> obj2:string -> info2:string option -> bool
(** Negation of {!commuting_steps}. *)

val events_commute : ('op, 'resp) Trace.event -> ('op, 'resp) Trace.event -> bool
(** Event-level relation (all cases require distinct processes):
    [Step]/[Step] pairs commute when the objects are distinct or both
    accesses are {!preserving}; [Return]/[Return] pairs commute (their
    mutual order feeds neither the precedence relation, the record ids,
    nor the completed set); a [Step] commutes with any history event.
    [Invoke]/[Invoke] conflicts (record ids are assigned in invocation
    order) and [Invoke]/[Return] conflicts (that order is exactly the
    real-time precedence relation). *)

val bundles_commute :
  ('op, 'resp) Trace.event list -> ('op, 'resp) Trace.event list -> bool
(** Do two whole scheduling-step bundles (the event lists emitted by
    two [Sim.step]s of distinct processes) commute?  True when every
    cross pair of events commutes per {!events_commute}; swapping such
    bundles preserves the invocation order, the precedence relation,
    all per-object access orders, and the resulting world. *)

type fp_state
(** Incremental fingerprint state over a trace prefix. *)

val fp_empty : fp_state

val fp_feed : fp_state -> ('op, 'resp) Trace.event -> fp_state
(** Fold one trace event into the state.  Read-like steps add into a
    commutative per-object pending sum; other accesses seal the pending
    sum into that object's order-sensitive chain. *)

val fp_feed_list : fp_state -> ('op, 'resp) Trace.event list -> fp_state

val fp_value : fp_state -> int
(** The fingerprint of the prefix fed so far.  Equal for prefixes that
    differ only by swaps of adjacent commuting accesses; conflicting
    reorders change it (modulo 62-bit hash collisions). *)

val fp_of_trace : ('op, 'resp) Trace.event list -> int
(** [fp_value (fp_feed_list fp_empty tr)]. *)
