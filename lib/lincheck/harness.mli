(** Workload harness: turn an object implementation plus per-process
    operation lists into a {!Sim.program} whose trace records exactly the
    high-level operations — the shape both checkers consume. *)

val program :
  make:((module Runtime_intf.S) -> 'op -> 'resp) ->
  workload:'op list array ->
  ('op, 'resp) Sim.program
(** [program ~make ~workload] spawns one process per entry of [workload],
    each performing its operations in order.  [make] is called once per
    world (i.e. once per explored schedule); it creates a fresh instance
    and returns the operation executor shared by all processes —
    per-process local state inside the implementation is keyed by
    [R.self ()]. *)

val find_non_linearizable :
  check:(('op, 'resp) Trace.t -> bool) ->
  runs:int ->
  ?crash_prob:float ->
  ('op, 'resp) Sim.program ->
  int option
(** Run [runs] seeded random schedules (every fifth run crashes a process
    when [crash_prob > 0]) and return the first seed whose trace fails
    [check], if any.  Schedules whose {!Reduct} commutation class was
    already checked clean are skipped — linearizability depends only on
    the history, which commuting swaps preserve — so a class is checked
    once however many of the [runs] seeds land in it.  Violations are
    never skipped (only clean classes are cached), and the first
    offending seed is the same as without reduction. *)
