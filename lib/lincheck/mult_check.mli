(** Linearizability with multiplicity (paper §5, footnote 3; after
    Castañeda–Rajsbaum–Raynal).

    The relaxation: dequeues (pops) that are pairwise concurrent may
    return the same item; such duplicated operations are linearized
    consecutively.  Because the relaxation is only available to
    {e concurrent} operations, the check is interval-sensitive and cannot
    be phrased as a {!Spec.S} state machine — it gets its own search.

    Only plain linearizability is decided here; the strong-
    linearizability status of multiplicity objects is settled by the
    paper's Theorem 17 (they are 1-ordering), exhibited in this
    repository by running Algorithm B on {!Rw_mult_queue}. *)

type kind =
  | Queue  (** FIFO discipline *)
  | Stack  (** LIFO discipline; encode Push/Pop as [Enq]/[Deq] *)

type outcome =
  | Decided of bool
  | Inconclusive of { visited : int; reason : Lincheck.budget_reason }
      (** A budget tripped after entering [visited] DFS states. *)

val check : kind -> (Spec.Queue_spec.op, Spec.Queue_spec.resp) Trace.t -> bool
(** [check kind t]: is [t] linearizable as a [kind] with multiplicity?
    Pending operations may be included when needed.
    @raise Invalid_argument beyond 60 operations. *)

val check_budgeted :
  ?budget_nodes:int ->
  ?budget_ms:int ->
  ?jobs:int ->
  ?reduce:bool ->
  ?profiler:Prof.t ->
  ?coverage:Coverage.t ->
  kind ->
  (Spec.Queue_spec.op, Spec.Queue_spec.resp) Trace.t ->
  outcome
(** Like {!check} but with graceful degradation: [budget_nodes] bounds
    DFS states entered and [budget_ms] bounds wall-clock time; a tripped
    budget yields [Inconclusive] instead of an unbounded search.  With no
    budgets set this is [Decided (check kind t)].

    [jobs] (default 1, capped at the hardware parallelism) runs the
    root-level linearization branches as independent sub-searches on
    that many domains when no budget is set; the decision is the same
    for every value.  Budgeted searches stay sequential — a
    deterministic trip point needs the sequential visit order.

    [reduce] (default false) memoizes DFS states on (mask, items,
    group): linearization orders that converge on the same abstract
    state share one sub-search.  The decision is unchanged (the answer
    is a pure function of that key); [visited] counts drop, which is
    why the memo is opt-in.  Forces the sequential search ([jobs]
    ignored); memo hits are reported as profiler [prunes].

    [profiler] records the DFS as one solve span on lane 0 with one work
    unit per visited state (and a [budget] kill if a budget trips);
    passive — the outcome is unchanged.

    [coverage] records the checked trace as one observed world on
    shard 0 (fingerprint + access pairs); passive too. *)
