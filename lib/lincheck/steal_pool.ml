(* Work-stealing task pool.  See the mli for the contract.

   Each deque is a growable circular buffer guarded by its own mutex.
   That is deliberately boring: the engine's tasks are whole subtrees
   (microseconds to seconds of work), so deque operations are far off
   the hot path and a lock-free Chase–Lev deque would buy nothing
   measurable while costing the memory-model subtlety.  What matters for
   scaling is the policy — owner LIFO at the bottom, steal-half from the
   top — not the queue's synchronization primitive. *)

type deque = {
  lock : Mutex.t;
  mutable buf : (int -> unit) option array;
  mutable top : int;  (* index of the oldest task (steal end) *)
  mutable size : int;
}

type t = {
  deques : deque array;
  rngs : int array;  (* per-worker xorshift victim-selection state *)
  on_steal : (thief:int -> victim:int -> stolen:int -> dur_ns:int -> unit) option;
}

let new_deque () = { lock = Mutex.create (); buf = Array.make 32 None; top = 0; size = 0 }

let create ~workers ?(seed = 0) ?on_steal () =
  let n = max 1 workers in
  {
    deques = Array.init n (fun _ -> new_deque ());
    (* xorshift states must be nonzero; mix the worker index in so the
       workers' victim streams differ even under the same seed *)
    rngs = Array.init n (fun w -> (seed * 0x9e3779b9) lxor ((w + 1) * 0x85ebca6b) lor 1);
    on_steal;
  }

let workers t = Array.length t.deques

(* Unlocked internals: callers hold [d.lock]. *)

let grow d =
  let cap = Array.length d.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to d.size - 1 do
    buf.(i) <- d.buf.((d.top + i) mod cap)
  done;
  d.buf <- buf;
  d.top <- 0

let push t ~worker task =
  let d = t.deques.(worker) in
  Mutex.lock d.lock;
  if d.size = Array.length d.buf then grow d;
  d.buf.((d.top + d.size) mod Array.length d.buf) <- Some task;
  d.size <- d.size + 1;
  Mutex.unlock d.lock

let try_pop t ~worker =
  let d = t.deques.(worker) in
  Mutex.lock d.lock;
  let r =
    if d.size = 0 then None
    else begin
      d.size <- d.size - 1;
      let i = (d.top + d.size) mod Array.length d.buf in
      let task = d.buf.(i) in
      d.buf.(i) <- None;
      task
    end
  in
  Mutex.unlock d.lock;
  r

(* Steal ceil(size/2) tasks off the top of [victim].  The oldest stolen
   task is returned to run immediately; the rest land on the thief's own
   deque with their relative order preserved (oldest nearest the top),
   so a later thief keeps stealing the globally oldest work. *)
let try_steal_from t ~thief ~victim =
  if victim = thief then None
  else begin
    let start_ns = match t.on_steal with Some _ -> Obs.now_ns () | None -> 0 in
    let d = t.deques.(victim) in
    Mutex.lock d.lock;
    let stolen =
      if d.size = 0 then []
      else begin
        let k = (d.size + 1) / 2 in
        let cap = Array.length d.buf in
        let out = ref [] in
        for i = k - 1 downto 0 do
          let j = (d.top + i) mod cap in
          (match d.buf.(j) with Some task -> out := task :: !out | None -> assert false);
          d.buf.(j) <- None
        done;
        d.top <- (d.top + k) mod cap;
        d.size <- d.size - k;
        !out
      end
    in
    Mutex.unlock d.lock;
    match stolen with
    | [] -> None
    | first :: rest ->
        (* Keep [rest] in oldest-first order at the bottom of our deque:
           pushing newest-first makes the owner's LIFO pop return them
           oldest-first, matching the order the victim would have run. *)
        List.iter (fun task -> push t ~worker:thief task) (List.rev rest);
        (match t.on_steal with
        | Some f ->
            f ~thief ~victim ~stolen:(List.length stolen) ~dur_ns:(Obs.now_ns () - start_ns)
        | None -> ());
        Some first
  end

let next_victim t ~worker =
  (* xorshift32: cheap, seeded, and statistically plenty for picking a
     victim index. *)
  let s = t.rngs.(worker) in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 17) in
  let s = (s lxor (s lsl 5)) land 0x3fffffff in
  t.rngs.(worker) <- (if s = 0 then 1 else s);
  s mod Array.length t.deques

let try_steal t ~thief =
  (* One randomized sweep over the other deques per attempt; the caller
     spins (politely) around this, so missing a racing push is fine. *)
  let n = Array.length t.deques in
  let start = next_victim t ~worker:thief in
  let rec probe i =
    if i >= n then None
    else
      match try_steal_from t ~thief ~victim:((start + i) mod n) with
      | Some _ as r -> r
      | None -> probe (i + 1)
  in
  probe 0

let help_until t ~worker done_ =
  (* Escalating backoff on failed steal sweeps: spin briefly (work
     usually reappears within microseconds when a fork resolves), then
     start sleeping.  Pure spinning is catastrophic when domains
     outnumber cores — the spinners steal timeslices from the one
     worker actually producing work — and the sleep costs nothing on a
     balanced run because a loaded deque resets the backoff. *)
  let misses = ref 0 in
  let rec loop () =
    if not (done_ ()) then begin
      (match try_pop t ~worker with
      | Some task ->
          misses := 0;
          task worker
      | None -> (
          if Array.length t.deques = 1 then
            (* Single worker out of work: the predicate can only be made
               true by work we would have to run ourselves. *)
            ()
          else
            match try_steal t ~thief:worker with
            | Some task ->
                misses := 0;
                task worker
            | None ->
                incr misses;
                if !misses < 64 then Domain.cpu_relax ()
                else Unix.sleepf (min 0.001 (1e-6 *. float_of_int !misses))));
      loop ()
    end
  in
  loop ()

let run t main =
  let n = Array.length t.deques in
  let spawned = List.init (n - 1) (fun k -> Domain.spawn (fun () -> main (k + 1))) in
  main 0;
  List.iter Domain.join spawned

let hardware_domains () =
  match Option.bind (Sys.getenv_opt "SLIN_DOMAIN_CAP") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> Domain.recommended_domain_count ()

let effective_workers ~requested = max 1 (min requested (hardware_domains ()))

let parallel_for ~workers ~n ?init ?fini body =
  let init w = match init with Some f -> f w | None -> () in
  let fini w = match fini with Some f -> f w | None -> () in
  if n <= 0 then ()
  else if workers <= 1 then begin
    init 0;
    for i = 0 to n - 1 do
      body ~worker:0 i
    done;
    fini 0
  end
  else begin
    let cursor = Atomic.make 0 in
    let worker w =
      init w;
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          body ~worker:w i;
          loop ()
        end
      in
      loop ();
      fini w
    in
    let nw = min workers n in
    let spawned = List.init (nw - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    worker 0;
    List.iter Domain.join spawned
  end
