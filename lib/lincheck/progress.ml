(* Progress-property measurements (paper §2: wait-freedom, lock-freedom).

   These are empirical: wait-freedom of an implementation shows up as a
   bound on steps-per-operation that is independent of the schedule;
   lock-freedom shows up as completions continuing to happen in every
   run.  [measure] runs a program under many random schedules (and
   optional crash injection) and reports the worst step counts
   observed. *)

type report = {
  runs : int;
  max_steps_per_op : int;  (* worst steps any single operation took *)
  total_completed : int;  (* operations completed across all runs *)
  total_steps : int;  (* base-object steps across all runs *)
}

let pp_report fmt r =
  Format.fprintf fmt "runs=%d max-steps/op=%d completed=%d steps=%d" r.runs r.max_steps_per_op
    r.total_completed r.total_steps

let report_fields r =
  [
    ("runs", Obs_json.Int r.runs);
    ("max_steps_per_op", Obs_json.Int r.max_steps_per_op);
    ("total_completed", Obs_json.Int r.total_completed);
    ("total_steps", Obs_json.Int r.total_steps);
  ]

(* Steps each operation took: walk the trace keeping, per process, the
   number of Step events since its last Invoke. *)
let op_step_counts (t : _ Trace.t) : int list =
  let open_steps : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  let finished = ref [] in
  List.iter
    (function
      | Trace.Invoke { proc; _ } -> Hashtbl.replace open_steps proc (ref 0)
      | Trace.Step { proc; _ } -> (
          match Hashtbl.find_opt open_steps proc with Some r -> incr r | None -> ())
      | Trace.Return { proc; _ } -> (
          match Hashtbl.find_opt open_steps proc with
          | Some r ->
              finished := !r :: !finished;
              Hashtbl.remove open_steps proc
          | None -> ()))
    t;
  !finished

let measure ?(seed = 0) ?(runs = 100) ?(crash_prob = 0.0) (prog : _ Sim.program) : report =
  let rng = Random.State.make [| seed |] in
  let max_per_op = ref 0 and completed = ref 0 and steps = ref 0 in
  for _ = 1 to runs do
    let run_seed = Random.State.int rng 1_000_000 in
    let crash_after =
      if crash_prob > 0.0 && Random.State.float rng 1.0 < crash_prob then
        [ (Random.State.int rng prog.Sim.procs, Random.State.int rng 20) ]
      else []
    in
    let w = Sim.run_random ~seed:run_seed ~crash_after prog in
    let t = Sim.trace w in
    List.iter
      (fun c ->
        incr completed;
        if c > !max_per_op then max_per_op := c)
      (op_step_counts t);
    steps := !steps + Trace.step_count t
  done;
  { runs; max_steps_per_op = !max_per_op; total_completed = !completed; total_steps = !steps }
