(* Counterexample forensics: structured, replayable witness artifacts
   for the strong-linearizability checker's refutations.

   A refutation verdict names a single schedule (the deepest dead end of
   the game); on its own that is evidence, not an explanation.  This
   module turns it into a self-certifying {e certificate subtree}: a
   shared schedule prefix (the {e branch}) plus a small set of
   continuation schedules (the {e futures}) such that no prefix-closed
   assignment of linearizations exists on that little tree.  Because the
   subtree embeds in the full execution tree, its refutation carries
   over — replaying the certificate (a handful of schedules) re-proves
   the verdict without re-running the exploration.

   The pipeline is: [extract] builds a certificate from the verdict's
   schedule, [shrink] greedily minimizes it (dropping futures and steps,
   hoisting common future prefixes into the branch, reducing context
   switches) re-checking every candidate with the same mini-solver, and
   [conflict_of] computes the spec-level reason — typically one
   operation whose linearization is forced before the branch point by
   one future and after it by another.  [to_json] serializes the result
   as a versioned [slin-witness/v1] document; [parse]/[replay] load one
   back and verify the verdict reproduces (the `slin explain` path).

   The mini-solver reuses the checker's own enumeration
   ([Lincheck.Make(S).Internal]), so a certificate accepted here fails
   for exactly the reason the full game failed. *)

(* [Livelock] certificates come from the lock-freedom checker
   (Slin_adversary): the branch is a stem schedule and the single future
   is a cycle that keeps replaying with an identical event signature and
   no operation completing — a lasso through the schedule graph. *)
type kind = Not_linearizable | Not_strongly_linearizable | Livelock

let kind_tag = function
  | Not_linearizable -> "not_linearizable"
  | Not_strongly_linearizable -> "not_strongly_linearizable"
  | Livelock -> "livelock"

let kind_of_tag = function
  | "not_linearizable" -> Some Not_linearizable
  | "not_strongly_linearizable" -> Some Not_strongly_linearizable
  | "livelock" -> Some Livelock
  | _ -> None

type shape = { kind : kind; branch : int list; futures : int list list }

(* Future schedules are stored relative to the branch; the certificate
   tree is the union of the full schedules (futures sharing a prefix
   share the corresponding nodes). *)
let schedules s = List.map (fun f -> s.branch @ f) s.futures

let size s =
  List.length s.branch + List.fold_left (fun a f -> a + List.length f) 0 s.futures

let switches sched =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (if a = b then acc else acc + 1) rest
    | _ -> acc
  in
  go 0 sched

let total_switches s = List.fold_left (fun a sched -> a + switches sched) 0 (schedules s)

(* --- conflicts -------------------------------------------------------- *)

(* A {e choice} for an operation at the branch point: the response it is
   committed to in the branch linearization, or [None] when its
   linearization is deferred past the branch. *)
type choice = string option

type conflict =
  | Placement of { op : string; forced_by : int; excluded_by : int }
  | Response of {
      op : string;
      forced_by : int;
      resp_a : string;
      excluded_by : int;
      resp_b : string;
    }
  | Commitment of {
      op : string;
      future_a : int;
      choices_a : choice list;
      future_b : int;
      choices_b : choice list;
    }
  | Generic of string

let choices_str (choices : choice list) =
  let resps = List.filter_map Fun.id choices in
  let deferred = List.mem None choices in
  match (resps, deferred) with
  | [], _ -> "deferred past the branch point"
  | rs, false -> "committed to " ^ String.concat " or " rs
  | rs, true -> "committed to " ^ String.concat " or " rs ^ ", or deferred past the branch point"

let conflict_description = function
  | Placement { op; forced_by; excluded_by } ->
      Printf.sprintf
        "operation %s must be linearized at or before the branch point for future %d to stay \
         linearizable, but strictly after it for future %d — no prefix-closed choice exists at \
         the branch"
        op forced_by excluded_by
  | Response { op; forced_by; resp_a; excluded_by; resp_b } ->
      Printf.sprintf
        "operation %s must be committed to response %s for future %d but to %s for future %d — \
         no prefix-closed choice exists at the branch"
        op resp_a forced_by resp_b excluded_by
  | Commitment { op; future_a; choices_a; future_b; choices_b } ->
      Printf.sprintf
        "operation %s admits no common choice at the branch point: future %d needs it %s, while \
         future %d needs it %s"
        op future_a (choices_str choices_a) future_b (choices_str choices_b)
  | Generic msg -> msg

let choices_json choices =
  Obs_json.List
    (List.map
       (function None -> Obs_json.Null | Some r -> Obs_json.String r)
       choices)

let conflict_fields c =
  let common = [ ("description", Obs_json.String (conflict_description c)) ] in
  match c with
  | Placement { op; forced_by; excluded_by } ->
      [
        ("type", Obs_json.String "placement");
        ("op", Obs_json.String op);
        ("forced_by_future", Obs_json.Int forced_by);
        ("excluded_by_future", Obs_json.Int excluded_by);
      ]
      @ common
  | Response { op; forced_by; resp_a; excluded_by; resp_b } ->
      [
        ("type", Obs_json.String "response");
        ("op", Obs_json.String op);
        ("forced_by_future", Obs_json.Int forced_by);
        ("resp_a", Obs_json.String resp_a);
        ("excluded_by_future", Obs_json.Int excluded_by);
        ("resp_b", Obs_json.String resp_b);
      ]
      @ common
  | Commitment { op; future_a; choices_a; future_b; choices_b } ->
      [
        ("type", Obs_json.String "commitment");
        ("op", Obs_json.String op);
        ("future_a", Obs_json.Int future_a);
        ("choices_a", choices_json choices_a);
        ("future_b", Obs_json.Int future_b);
        ("choices_b", choices_json choices_b);
      ]
      @ common
  | Generic _ -> ("type", Obs_json.String "generic") :: common

(* --- the serialized artifact ------------------------------------------ *)

let schema_version = "slin-witness/v1"

type recorded_op = { r_id : int; r_proc : int; r_op : string; r_resp : string option }

type recorded_future = { f_schedule : int list; f_history : recorded_op list }

type parsed = {
  p_object : string;
  p_spec : string;
  p_procs : int;
  p_kind : kind;
  p_branch : int list;
  p_futures : recorded_future list;
  p_conflict : conflict option;
  p_max_nodes : int option;
  p_max_depth : int option;
  p_nodes : int option;
  p_original_len : int;
  p_shrunk_len : int;
}

let shape_of_parsed p =
  { kind = p.p_kind; branch = p.p_branch; futures = List.map (fun f -> f.f_schedule) p.p_futures }

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let parse (json : Obs_json.t) : (parsed, string) result =
  let get k j = match Obs_json.member k j with Some v -> v | None -> bad "missing field %S" k in
  let opt k j = match Obs_json.member k j with Some Obs_json.Null | None -> None | Some v -> Some v in
  let gstr k j =
    match Obs_json.to_str (get k j) with Some s -> s | None -> bad "field %S: expected a string" k
  in
  let gint k j =
    match Obs_json.to_int (get k j) with Some i -> i | None -> bad "field %S: expected an int" k
  in
  let gints k j =
    match Obs_json.to_int_list (get k j) with
    | Some l -> l
    | None -> bad "field %S: expected a list of ints" k
  in
  let glist k j =
    match Obs_json.to_list (get k j) with Some l -> l | None -> bad "field %S: expected a list" k
  in
  let oint k j = Option.bind (opt k j) Obs_json.to_int in
  try
    let schema = gstr "schema" json in
    if schema <> schema_version then
      bad "unsupported witness schema %S (this build reads %S)" schema schema_version;
    let p_kind =
      let tag = gstr "kind" json in
      match kind_of_tag tag with Some k -> k | None -> bad "unknown witness kind %S" tag
    in
    let p_futures =
      glist "futures" json
      |> List.map (fun fj ->
             let f_history =
               glist "history" fj
               |> List.map (fun hj ->
                      {
                        r_id = gint "id" hj;
                        r_proc = gint "proc" hj;
                        r_op = gstr "op" hj;
                        r_resp = Option.bind (opt "resp" hj) Obs_json.to_str;
                      })
             in
             { f_schedule = gints "schedule" fj; f_history })
    in
    if p_futures = [] then bad "witness has no futures";
    let p_conflict =
      match opt "conflict" json with
      | None -> None
      | Some cj -> (
          match gstr "type" cj with
          | "placement" ->
              Some
                (Placement
                   {
                     op = gstr "op" cj;
                     forced_by = gint "forced_by_future" cj;
                     excluded_by = gint "excluded_by_future" cj;
                   })
          | "response" ->
              Some
                (Response
                   {
                     op = gstr "op" cj;
                     forced_by = gint "forced_by_future" cj;
                     resp_a = gstr "resp_a" cj;
                     excluded_by = gint "excluded_by_future" cj;
                     resp_b = gstr "resp_b" cj;
                   })
          | "commitment" ->
              let gchoices k j =
                glist k j
                |> List.map (function
                     | Obs_json.Null -> None
                     | v -> (
                         match Obs_json.to_str v with
                         | Some s -> Some s
                         | None -> bad "field %S: expected strings or nulls" k))
              in
              Some
                (Commitment
                   {
                     op = gstr "op" cj;
                     future_a = gint "future_a" cj;
                     choices_a = gchoices "choices_a" cj;
                     future_b = gint "future_b" cj;
                     choices_b = gchoices "choices_b" cj;
                   })
          | "generic" -> Some (Generic (gstr "description" cj))
          | t -> bad "unknown conflict type %S" t)
    in
    let check = opt "check" json in
    Ok
      {
        p_object = gstr "object" json;
        p_spec = gstr "spec" json;
        p_procs = gint "procs" json;
        p_kind;
        p_branch = gints "branch" json;
        p_futures;
        p_conflict;
        p_max_nodes = Option.bind check (oint "max_nodes");
        p_max_depth = Option.bind check (oint "max_depth");
        p_nodes = Option.bind check (oint "nodes");
        p_original_len = gint "original_len" json;
        p_shrunk_len = gint "shrunk_len" json;
      }
  with Bad msg -> Error msg

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Obs_json.of_string contents with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok json -> ( match parse json with Ok p -> Ok p | Error msg -> Error (path ^ ": " ^ msg)))

(* --- spec-dependent machinery ----------------------------------------- *)

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

let take n l =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go n [] l

module Make (S : Spec.S) = struct
  module L = Lincheck.Make (S)

  let op_str o = Format.asprintf "%a" S.pp_op o

  let resp_str r = Format.asprintf "%a" S.pp_resp r

  (* Linearizations compared by content: entry responses via their
     printed form, the same identification the checker's own candidate
     deduplication uses. *)
  let lin_key (lin : L.linearization) =
    List.map (fun (e : L.entry) -> (e.L.op_id, resp_str e.L.eresp)) lin

  let node_records prog sched =
    match Sim.run_schedule_result prog sched with
    | Error e -> Error e
    | Ok w -> Ok (History.of_trace (Sim.trace w))

  let node_records_exn prog sched =
    match node_records prog sched with
    | Ok r -> r
    | Error e -> invalid_arg ("Witness: invalid schedule in certificate: " ^ e)

  (* ---------------- the mini-solver (certificate check) --------------- *)

  (* The certificate tree, nodes annotated with their replayed records. *)
  type tnode = { tid : int; records : (S.op, S.resp) History.op_record list; kids : tnode list }

  let build_tree prog shape : (tnode, string) result =
    let next = ref 0 in
    let rec build prefix_rev suffixes =
      match node_records prog (List.rev prefix_rev) with
      | Error e -> Error e
      | Ok records -> (
          (* Group continuations by first step, preserving first-appearance
             order, so futures sharing a prefix share tree nodes. *)
          let order = ref [] in
          let tbl = Hashtbl.create 4 in
          List.iter
            (fun sched ->
              match sched with
              | [] -> ()
              | h :: rest -> (
                  match Hashtbl.find_opt tbl h with
                  | None ->
                      order := h :: !order;
                      Hashtbl.add tbl h [ rest ]
                  | Some l -> Hashtbl.replace tbl h (rest :: l)))
            suffixes;
          let rec build_kids acc = function
            | [] -> Ok (List.rev acc)
            | h :: rest -> (
                match build (h :: prefix_rev) (List.rev (Hashtbl.find tbl h)) with
                | Error e -> Error e
                | Ok kid -> build_kids (kid :: acc) rest)
          in
          match build_kids [] (List.rev !order) with
          | Error e -> Error e
          | Ok kids ->
              let tid = !next in
              incr next;
              Ok { tid; records; kids })
    in
    build [] (schedules shape)

  (* Decide whether a prefix-closed assignment of linearizations exists
     on the certificate tree — the checker's game restricted to it.  The
     assignment at each node comes from [Internal.extensions] exactly as
     in the full solver, so refutation here is refutation there. *)
  let solvable root =
    let memo = Hashtbl.create 64 in
    let rec solve (n : tnode) (lin : L.linearization) =
      let key = (n.tid, lin_key lin) in
      match Hashtbl.find_opt memo key with
      | Some b -> b
      | None ->
          let b =
            match L.Internal.validate_prefix n.records lin with
            | None -> false
            | Some states -> (
                match L.Internal.extensions n.records lin states with
                | [] -> false
                | cands ->
                    n.kids = []
                    || List.exists (fun c -> List.for_all (fun k -> solve k c) n.kids) cands)
          in
          Hashtbl.add memo key b;
          b
    in
    solve root []

  (* ---------------- livelock (lasso) certificates ---------------------- *)

  (* Empirical lasso check: from the end of the stem, the cycle must
     replay [lasso_reps] times with an identical event signature each
     time and no operation completing, and some operation must still be
     pending afterwards.  For the deterministic implementations here
     this certifies the loop the lock-freedom checker explored; it is
     schedule-replay evidence, not an inductive state-equality proof. *)
  let lasso_reps = 4

  let event_sig = function
    | Trace.Invoke { proc; op } -> Printf.sprintf "i%d:%s" proc (op_str op)
    | Trace.Return { proc; resp } -> Printf.sprintf "r%d:%s" proc (resp_str resp)
    | Trace.Step { proc; obj; info; noop = _ } ->
        Printf.sprintf "s%d:%s%s" proc obj
          (match info with Some i -> ":" ^ i | None -> "")

  let check_livelock prog ~stem ~cycle : (bool, string) result =
    if cycle = [] then Error "a livelock witness needs a non-empty cycle"
    else
      match Sim.run_schedule_result prog stem with
      | Error e -> Error e
      | Ok w ->
          let prev = ref (List.length (Sim.trace w)) in
          (* One cycle replay: its event signatures and whether any
             operation returned, or [None] when a step was invalid
             (a process finished or crashed mid-cycle — no lasso). *)
          let cycle_sig () =
            match List.iter (fun p -> Sim.step w p) cycle with
            | () ->
                let tr = Sim.trace w in
                let events = drop !prev tr in
                prev := List.length tr;
                let returned =
                  List.exists (function Trace.Return _ -> true | _ -> false) events
                in
                Some (List.map event_sig events, returned)
            | exception Sim.Invalid_schedule _ -> None
          in
          let rec loops i reference =
            i >= lasso_reps
            ||
            match cycle_sig () with
            | None | Some (_, true) -> false
            | Some (s, false) -> (
                match reference with
                | None -> loops (i + 1) (Some s)
                | Some r -> r = s && loops (i + 1) reference)
          in
          let looping = loops 0 None in
          let pending =
            History.of_trace (Sim.trace w)
            |> List.exists (fun r -> not (History.is_complete r))
          in
          Ok (looping && pending)

  let refutes prog shape : (bool, string) result =
    match shape.kind with
    | Not_linearizable -> (
        match schedules shape with
        | [ sched ] -> (
            match Sim.run_schedule_result prog sched with
            | Error e -> Error e
            | Ok w -> Ok (L.check_trace (Sim.trace w) = None))
        | _ -> Error "a not_linearizable witness must have exactly one future")
    | Not_strongly_linearizable -> (
        match build_tree prog shape with
        | Error e -> Error e
        | Ok root -> Ok (not (solvable root)))
    | Livelock -> (
        match shape.futures with
        | [ cycle ] -> check_livelock prog ~stem:shape.branch ~cycle
        | _ -> Error "a livelock witness must have exactly one future (the cycle)")

  (* ---------------- extraction ---------------------------------------- *)

  (* Linearizations assignable at the end of [branch] through the chain
     game from the root (each node's choice extending its parent's). *)
  let reach prog branch : L.linearization list option =
    let dedup lins =
      let seen = Hashtbl.create 16 in
      List.filter
        (fun l ->
          let k = lin_key l in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        lins
    in
    let expand records lins =
      dedup
        (List.concat_map
           (fun lin ->
             match L.Internal.validate_prefix records lin with
             | None -> []
             | Some states -> L.Internal.extensions records lin states)
           lins)
    in
    let rec go prefix_rev lins = function
      | [] -> Some lins
      | s :: rest -> (
          match node_records prog (List.rev (s :: prefix_rev)) with
          | Error _ -> None
          | Ok records -> go (s :: prefix_rev) (expand records lins) rest)
    in
    match node_records prog [] with
    | Error _ -> None
    | Ok records0 -> go [] (expand records0 [ [] ]) branch

  (* Records at every node of a future chain, by one replay per prefix. *)
  let chain_records prog branch future =
    let rec go prefix_rev acc = function
      | [] -> Some (Array.of_list (List.rev acc))
      | s :: rest -> (
          match node_records prog (List.rev (s :: prefix_rev)) with
          | Error _ -> None
          | Ok records -> go (s :: prefix_rev) (records :: acc) rest)
    in
    go (List.rev branch) [] future

  (* Which of [cands] (linearizations at the branch node) survive the
     chain game along [future]? *)
  let survivors rec_seq cands =
    let n = Array.length rec_seq in
    let memo = Hashtbl.create 64 in
    let rec go i lin =
      if i >= n then true
      else
        let key = (i, lin_key lin) in
        match Hashtbl.find_opt memo key with
        | Some b -> b
        | None ->
            let b =
              match L.Internal.validate_prefix rec_seq.(i) lin with
              | None -> false
              | Some states -> (
                  match L.Internal.extensions rec_seq.(i) lin states with
                  | [] -> false
                  | cs -> List.exists (fun c -> go (i + 1) c) cs)
            in
            Hashtbl.add memo key b;
            b
    in
    List.filter (fun c -> go 0 c) cands

  (* Re-run the solver's game recording the {e refutation evidence}: for
     every node/linearization the game visits and fails, the set of
     dead-end schedules that jointly kill all its candidate extensions
     (each candidate is killed at some child; the union of those kills,
     recursively, is an adversary strategy).  The traversal is the same
     recursion as [check_strong] — same node order, same budget — so it
     terminates exactly when the original check did.  Returns the
     evidence paths for the root, or [None] if the game is winnable (or
     the budget is exhausted, which cannot happen when the original
     check refuted within the same budget). *)
  exception Evidence_not_linearizable of int list

  let record_evidence ?(max_nodes = 200_000) ?max_depth prog : int list list option =
    let nodes = ref 0 in
    let cache : (int list, (S.op, S.resp) History.op_record list * int list) Hashtbl.t =
      Hashtbl.create 1024
    in
    let node_data path =
      match Hashtbl.find_opt cache path with
      | Some d -> d
      | None ->
          incr nodes;
          if !nodes > max_nodes then raise Lincheck.Budget_exhausted;
          let w = Sim.run_schedule prog (List.rev path) in
          let d = (History.of_trace (Sim.trace w), Sim.enabled w) in
          Hashtbl.add cache path d;
          d
    in
    (* [None] = (node, lin) is winnable; [Some paths] = refuted, with the
       dead-end schedules witnessing it. *)
    let rec refute path depth (lin : L.linearization) : int list list option =
      let records, children = node_data path in
      let children = match max_depth with Some d when depth >= d -> [] | _ -> children in
      match L.Internal.validate_prefix records lin with
      | None -> Some [ List.rev path ]
      | Some states -> (
          match L.Internal.extensions records lin states with
          | [] ->
              if L.Internal.extensions records [] [ S.init ] = [] then
                raise (Evidence_not_linearizable (List.rev path));
              Some [ List.rev path ]
          | candidates ->
              if children = [] then None
              else
                let rec try_candidates acc = function
                  | [] -> Some acc
                  | cand :: rest ->
                      let rec find_kill = function
                        | [] -> None
                        | p :: ps -> (
                            match refute (p :: path) (depth + 1) cand with
                            | Some ev -> Some ev
                            | None -> find_kill ps)
                      in
                      (match find_kill children with
                      | None -> None
                      | Some ev -> try_candidates (List.rev_append ev acc) rest)
                in
                try_candidates [] candidates)
    in
    match refute [] 0 [] with
    | exception Lincheck.Budget_exhausted -> None
    | exception Evidence_not_linearizable _ -> None
    | r -> r

  let rec common_prefix a b =
    match (a, b) with
    | x :: a', y :: b' when x = y -> x :: common_prefix a' b'
    | _ -> []

  (* Prune the evidence broom before shrinking: keep only futures needed
     to kill every linearization assignable at the branch (greedy set
     cover over the per-future survivor analysis).  Heuristic only — the
     result is verified with [refutes] and the full future set is kept
     when the pruned one does not certify. *)
  let prune_futures prog branch futures =
    match futures with
    | [] | [ _ ] -> futures
    | _ -> (
        match reach prog branch with
        | None | Some [] -> futures
        | Some cands ->
            let keys_of lins = List.map lin_key lins in
            let with_kills =
              List.map
                (fun f ->
                  let kills =
                    match chain_records prog branch f with
                    | None -> []
                    | Some rec_seq ->
                        let surviving = keys_of (survivors rec_seq cands) in
                        List.filter
                          (fun k -> not (List.mem k surviving))
                          (keys_of cands)
                  in
                  (f, kills))
                futures
            in
            let rec cover alive chosen avail =
              if alive = [] then Some (List.rev chosen)
              else
                let scored =
                  List.map
                    (fun (f, kills) ->
                      (List.length (List.filter (fun k -> List.mem k kills) alive), f, kills))
                    avail
                in
                match List.sort compare scored |> List.rev with
                | (best, f, kills) :: _ when best > 0 ->
                    cover
                      (List.filter (fun k -> not (List.mem k kills)) alive)
                      (f :: chosen)
                      (List.filter (fun (g, _) -> g <> f) avail)
                | _ -> None
            in
            (match cover (keys_of cands) [] with_kills with
            | Some chosen
              when (match refutes prog { kind = Not_strongly_linearizable; branch; futures = chosen }
                    with
                   | Ok true -> true
                   | _ -> false) ->
                chosen
            | _ -> futures))

  (* Build a certificate from a refutation verdict.  For a
     [Not_linearizable] verdict the single schedule is the certificate.
     For [Not_strongly_linearizable] the game is re-run with evidence
     recording; the certificate tree is the union of the recorded
     dead-end schedules, presented as their longest common prefix (the
     branch) plus the diverging suffixes (the futures). *)
  let extract ?max_nodes ?max_depth prog ~kind ~(schedule : int list) : shape option =
    match kind with
    | Livelock ->
        (* Livelock certificates carry a stem/cycle split that a single
           verdict schedule cannot express; Slin_adversary builds the
           shape directly and goes straight to [shrink]/[to_json]. *)
        ignore schedule;
        None
    | Not_linearizable ->
        let s = { kind; branch = []; futures = [ schedule ] } in
        (match refutes prog s with Ok true -> Some s | _ -> None)
    | Not_strongly_linearizable -> (
        match record_evidence ?max_nodes ?max_depth prog with
        | None | Some [] -> None
        | Some paths ->
            let paths = List.sort_uniq compare paths in
            let branch =
              match paths with p :: rest -> List.fold_left common_prefix p rest | [] -> []
            in
            let b = List.length branch in
            let futures = List.sort_uniq compare (List.map (fun p -> drop b p) paths) in
            let branch, futures =
              match List.filter (fun f -> f <> []) futures with
              | [] ->
                  (* every path equals the branch: certify the chain alone *)
                  (take (b - 1) branch, [ drop (b - 1) branch ])
              | fs -> (branch, fs)
            in
            let futures = prune_futures prog branch futures in
            let s = { kind; branch; futures } in
            (match refutes prog s with Ok true -> Some s | _ -> None))

  (* ---------------- shrinking ----------------------------------------- *)

  (* Greedy minimization to a fixpoint.  Every transformation is
     re-checked with [refutes]; each accepted step strictly decreases
     (total steps, future count, context switches) lexicographically, so
     the loop terminates. *)
  let shrink prog shape0 =
    let ok s = match refutes prog s with Ok true -> true | _ -> false in
    let replace_future s i f' =
      { s with futures = List.mapi (fun j f -> if j = i then f' else f) s.futures }
    in
    let remove_nth l n = List.filteri (fun i _ -> i <> n) l in
    let drop_futures s =
      if List.length s.futures <= 1 then []
      else List.mapi (fun i _ -> { s with futures = remove_nth s.futures i }) s.futures
    in
    let drop_future_steps s =
      List.concat
        (List.mapi
           (fun i f ->
             let n = List.length f in
             (* last step first: trailing steps usually carry no events *)
             List.rev_map (fun j -> replace_future s i (remove_nth f j)) (List.init n Fun.id))
           s.futures)
    in
    let drop_branch_steps s =
      let n = List.length s.branch in
      List.rev_map (fun j -> { s with branch = remove_nth s.branch j }) (List.init n Fun.id)
    in
    let hoist s =
      match s.futures with
      | (h :: _) :: _ when List.length s.futures > 1 ->
          if List.for_all (function h' :: _ -> h' = h | [] -> false) s.futures then
            [ { s with branch = s.branch @ [ h ]; futures = List.map List.tl s.futures } ]
          else []
      | _ -> []
    in
    let swaps s =
      (* Adjacent swaps that reduce context switches, in the branch and in
         each future (cosmetic: fewer interleavings to read). *)
      let swap_points l =
        List.filteri (fun i _ -> i < List.length l - 1) (List.mapi (fun i _ -> i) l)
      in
      let swap_at l i =
        List.mapi
          (fun j x -> if j = i then List.nth l (i + 1) else if j = i + 1 then List.nth l i else x)
          l
      in
      List.map (fun i -> { s with branch = swap_at s.branch i }) (swap_points s.branch)
      @ List.concat
          (List.mapi
             (fun fi f -> List.map (fun i -> replace_future s fi (swap_at f i)) (swap_points f))
             s.futures)
    in
    let rec loop s fuel =
      if fuel = 0 then s
      else
        let smaller =
          List.find_opt ok
            (drop_futures s @ drop_future_steps s @ drop_branch_steps s @ hoist s)
        in
        match smaller with
        | Some s' -> loop s' (fuel - 1)
        | None -> (
            match
              List.find_opt (fun c -> total_switches c < total_switches s && ok c) (swaps s)
            with
            | Some s' -> loop s' (fuel - 1)
            | None -> s)
    in
    loop shape0 500

  (* ---------------- conflict computation ------------------------------ *)

  let conflict_of prog shape : conflict option =
    match shape.kind with
    | Not_linearizable -> None
    | Livelock ->
        Some
          (Generic
             (Printf.sprintf
                "the cycle (schedule %s) repeats with an identical event signature and no \
                 operation completes — the adversary starves every pending operation"
                (String.concat "" (List.map string_of_int (List.concat shape.futures)))))
    | Not_strongly_linearizable -> (
        match reach prog shape.branch with
        | None -> None
        | Some [] ->
            Some (Generic "the branch prefix itself admits no prefix-closed linearization")
        | Some cands -> (
            match node_records prog shape.branch with
            | Error _ -> None
            | Ok branch_records ->
                let surv =
                  List.map
                    (fun f ->
                      match chain_records prog shape.branch f with
                      | None -> []
                      | Some rec_seq -> survivors rec_seq cands)
                    shape.futures
                in
                let n = List.length surv in
                let s = Array.of_list surv in
                (* The choices future [i]'s survivors leave open for
                   operation [id]: the responses it is committed to at the
                   branch, [None] meaning "linearized after the branch". *)
                let choices i id : choice list =
                  List.sort_uniq compare
                    (List.map
                       (fun lin ->
                         List.find_map
                           (fun (e : L.entry) ->
                             if e.L.op_id = id then Some (resp_str e.L.eresp) else None)
                           lin)
                       s.(i))
                in
                let label r = History.label S.pp_op S.pp_resp r in
                (* An operation whose choice sets under two futures are
                   disjoint is a one-operation explanation: any common
                   branch linearization would need a common choice. *)
                let classify r i j =
                  let id = r.History.id in
                  if s.(i) = [] || s.(j) = [] then None
                  else
                    let a = choices i id and b = choices j id in
                    if List.exists (fun c -> List.mem c b) a then None
                    else
                      match (a, b) with
                      | _ when (not (List.mem None a)) && b = [ None ] ->
                          Some (Placement { op = label r; forced_by = i; excluded_by = j })
                      | [ Some ra ], [ Some rb ] ->
                          Some
                            (Response
                               {
                                 op = label r;
                                 forced_by = i;
                                 resp_a = ra;
                                 excluded_by = j;
                                 resp_b = rb;
                               })
                      | a, b ->
                          Some
                            (Commitment
                               {
                                 op = label r;
                                 future_a = i;
                                 choices_a = a;
                                 future_b = j;
                                 choices_b = b;
                               })
                in
                let best =
                  (* prefer the crispest classification over all
                     (operation, future pair) choices *)
                  let rank = function
                    | Placement _ -> 0
                    | Response _ -> 1
                    | Commitment _ -> 2
                    | Generic _ -> 3
                  in
                  List.concat_map
                    (fun r ->
                      List.concat_map
                        (fun i ->
                          List.filter_map
                            (fun j -> if i = j then None else classify r i j)
                            (List.init n Fun.id))
                        (List.init n Fun.id))
                    branch_records
                  |> List.sort (fun a b -> compare (rank a) (rank b))
                in
                (match best with
                | c :: _ -> Some c
                | [] ->
                    Some
                      (Generic "no linearization of the branch prefix survives every future"))))

  (* ---------------- serialization ------------------------------------- *)

  let history_json records =
    Obs_json.List
      (List.map
         (fun (r : _ History.op_record) ->
           Obs_json.Assoc
             [
               ("id", Obs_json.Int r.History.id);
               ("proc", Obs_json.Int r.History.proc);
               ("op", Obs_json.String (op_str r.History.op));
               ( "resp",
                 match r.History.resp with
                 | None -> Obs_json.Null
                 | Some v -> Obs_json.String (resp_str v) );
             ])
         records)

  let to_json prog ~object_name ~spec_name ~max_nodes ~max_depth ~nodes ~original_len shape =
    let ints l = Obs_json.List (List.map (fun i -> Obs_json.Int i) l) in
    let conflict = conflict_of prog shape in
    Obs_json.Assoc
      [
        ("schema", Obs_json.String schema_version);
        ("object", Obs_json.String object_name);
        ("spec", Obs_json.String spec_name);
        ("procs", Obs_json.Int prog.Sim.procs);
        ("kind", Obs_json.String (kind_tag shape.kind));
        ( "check",
          Obs_json.Assoc
            [
              ("max_nodes", Obs_json.Int max_nodes);
              ( "max_depth",
                match max_depth with Some d -> Obs_json.Int d | None -> Obs_json.Null );
              ("nodes", match nodes with Some n -> Obs_json.Int n | None -> Obs_json.Null);
            ] );
        ("branch", ints shape.branch);
        ( "futures",
          Obs_json.List
            (List.map
               (fun f ->
                 Obs_json.Assoc
                   [
                     ("schedule", ints f);
                     ("history", history_json (node_records_exn prog (shape.branch @ f)));
                   ])
               shape.futures) );
        ( "conflict",
          match conflict with None -> Obs_json.Null | Some c -> Obs_json.Assoc (conflict_fields c)
        );
        ("original_len", Obs_json.Int original_len);
        ("shrunk_len", Obs_json.Int (size shape));
      ]

  (* ---------------- replay verification -------------------------------- *)

  type replay_report = { reproduced : bool; notes : string list }

  let replay prog (p : parsed) : replay_report =
    let notes = ref [] in
    let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
    if p.p_procs <> prog.Sim.procs then
      note "witness records %d processes but the program has %d" p.p_procs prog.Sim.procs;
    List.iteri
      (fun i (f : recorded_future) ->
        match node_records prog (p.p_branch @ f.f_schedule) with
        | Error e -> note "future %d: schedule does not replay: %s" i e
        | Ok records ->
            if List.length records <> List.length f.f_history then
              note "future %d: replay has %d operations, witness recorded %d" i
                (List.length records) (List.length f.f_history)
            else
              List.iter2
                (fun (r : _ History.op_record) (rec_op : recorded_op) ->
                  if r.History.proc <> rec_op.r_proc then
                    note "future %d, op #%d: replayed on p%d, recorded on p%d" i r.History.id
                      r.History.proc rec_op.r_proc;
                  if op_str r.History.op <> rec_op.r_op then
                    note "future %d, op #%d: replayed %s, recorded %s" i r.History.id
                      (op_str r.History.op) rec_op.r_op;
                  let replayed_resp = Option.map resp_str r.History.resp in
                  if replayed_resp <> rec_op.r_resp then
                    note "future %d, op #%d: replayed response %s, recorded %s" i r.History.id
                      (Option.value ~default:"(pending)" replayed_resp)
                      (Option.value ~default:"(pending)" rec_op.r_resp))
                records f.f_history)
      p.p_futures;
    let verdict_ok =
      match refutes prog (shape_of_parsed p) with
      | Ok true -> true
      | Ok false ->
          note "the certificate does NOT refute: a prefix-closed assignment exists on the subtree";
          false
      | Error e ->
          note "certificate replay failed: %s" e;
          false
    in
    { reproduced = verdict_ok && !notes = []; notes = List.rev !notes }

  (* ---------------- rendering ------------------------------------------ *)

  let describe_event = function
    | Trace.Invoke { op; _ } -> "invoke " ^ op_str op
    | Trace.Return { resp; _ } -> "return " ^ resp_str resp
    | Trace.Step { obj; info; _ } -> (
        match info with Some i -> obj ^ ":" ^ i | None -> obj)

  (* One line per schedule step, attributing trace events to the step
     that produced them (the trace grows by whole steps). *)
  let timeline prog sched : string list =
    match Sim.run_schedule_result prog [] with
    | Error _ -> []
    | Ok w ->
        let prev = ref (List.length (Sim.trace w)) in
        List.mapi
          (fun i p ->
            match Sim.step w p with
            | exception Sim.Invalid_schedule msg ->
                Printf.sprintf "%3d  p%d  <invalid: %s>" (i + 1) p msg
            | () ->
                let tr = Sim.trace w in
                let events = drop !prev tr in
                prev := List.length tr;
                Printf.sprintf "%3d  p%d  %s" (i + 1) p
                  (String.concat "; " (List.map describe_event events)))
          sched

  let side_by_side left right =
    let width = List.fold_left (fun a s -> max a (String.length s)) 24 left in
    let rec zip l r =
      match (l, r) with
      | [], [] -> []
      | lh :: lt, [] -> (lh, "") :: zip lt []
      | [], rh :: rt -> ("", rh) :: zip [] rt
      | lh :: lt, rh :: rt -> (lh, rh) :: zip lt rt
    in
    List.map (fun (l, r) -> Printf.sprintf "%-*s | %s" width l r) (zip left right)

  let sched_str sched = String.concat "" (List.map string_of_int sched)

  let pp_explain ~prog ?conflict fmt shape =
    let b = List.length shape.branch in
    (match shape.kind with
    | Not_linearizable -> Format.fprintf fmt "kind: NOT linearizable@."
    | Not_strongly_linearizable ->
        Format.fprintf fmt "kind: linearizable but NOT strongly linearizable@."
    | Livelock ->
        Format.fprintf fmt
          "kind: LIVELOCK (lock-freedom refuted: the cycle below repeats forever without \
           completing any operation)@.");
    let branch_label, future_label =
      match shape.kind with
      | Livelock -> ("stem", "cycle")
      | Not_linearizable | Not_strongly_linearizable -> ("branch (shared prefix)", "future")
    in
    let future_lines f = drop b (timeline prog (shape.branch @ f)) in
    if shape.branch <> [] then begin
      Format.fprintf fmt "%s, schedule %s:@." branch_label (sched_str shape.branch);
      List.iter
        (fun l -> Format.fprintf fmt "%s@." l)
        (take b (timeline prog (shape.branch @ List.hd shape.futures)))
    end;
    (match shape.futures with
    | [ f0; f1 ] ->
        let header side i f = Printf.sprintf "%s future %d, schedule %s:" side i (sched_str f) in
        let left = header "" 0 f0 :: future_lines f0 in
        let right = header "" 1 f1 :: future_lines f1 in
        List.iter (fun l -> Format.fprintf fmt "%s@." l) (side_by_side left right)
    | fs ->
        List.iteri
          (fun i f ->
            Format.fprintf fmt "%s %d, schedule %s:@." future_label i (sched_str f);
            List.iter (fun l -> Format.fprintf fmt "%s@." l) (future_lines f))
          fs);
    (* the complete history of each execution, as the checker sees it *)
    List.iteri
      (fun i f ->
        match node_records prog (shape.branch @ f) with
        | Error _ -> ()
        | Ok records ->
            Format.fprintf fmt "history %d: @[%a@]@." i
              (History.pp_inline S.pp_op S.pp_resp)
              records)
      shape.futures;
    match conflict with
    | Some c -> Format.fprintf fmt "conflict: %s@." (conflict_description c)
    | None -> ()
end
