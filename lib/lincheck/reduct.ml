(* Dependency-aware partial-order reduction: the static commutation
   relation over base-object accesses, and a trace fingerprint that is
   invariant under exactly that relation.

   Two adjacent base-object accesses by distinct processes commute when
   they touch distinct objects, or when both are read-like accesses
   ("read" / "scan" / "collect" in the simulator's access log) of the
   same object.  This is the static half of the empirical matrix the
   coverage layer (PR 7) measures: [Coverage.classify_pair] counts a
   pair as conflicting iff [conflicting_steps] says so, and
   [test_reduct] pins that agreement against real workloads.

   The fingerprint refines [Coverage]'s commutation-invariant world
   fingerprint: where coverage folds every step of an object into one
   order-sensitive chain, this one accumulates consecutive read-like
   steps into a commutative sum that the next non-read access seals
   into the chain.  Net effect: two traces get equal fingerprints when
   they differ by swapping adjacent commuting accesses — distinct
   objects (separate chains) or same-object read/read (commutative
   pending sum) — while any conflicting reorder changes a chain.  The
   engine's [--reduce] mode keys its candidate-survival memo on this
   value: trace-equivalent prefixes have identical histories (invoke /
   return order is untouched by commuting steps), hence identical
   record arrays, minimal-extension sets and enabled sets, so their
   game subtrees are isomorphic and one exploration answers both. *)

(* 62-bit mixing keeps every fingerprint a non-negative OCaml int on
   64-bit platforms (same constants as [Coverage], so the two layers
   agree on what "one mixing step" costs). *)
let fp_mask = (1 lsl 62) - 1

let mix h x =
  let h = (h + x) * 0x9E3779B97F4A7 in
  (h lxor (h lsr 29)) land fp_mask

(* ---------------- static dependency relation -------------------------- *)

(* Must match [Coverage.read_like] — the empirical matrix counts a pair
   as commuting under exactly this predicate, and the validation test
   fails if the two ever drift apart. *)
let read_like = function Some ("read" | "scan" | "collect") -> true | _ -> false

(* Dynamic refinement: a state-preserving access (the simulator's [noop]
   flag — a failed CAS, a swap writing back the value already there)
   behaves exactly like a read for commutation purposes: both orders of
   two adjacent same-object state-preserving accesses observe the same
   state, return the same responses and leave the object unchanged. *)
let preserving ~info ~noop = noop || read_like info

let commuting_steps ~obj1 ~info1 ~obj2 ~info2 =
  (not (String.equal obj1 obj2)) || (read_like info1 && read_like info2)

let conflicting_steps ~obj1 ~info1 ~obj2 ~info2 =
  not (commuting_steps ~obj1 ~info1 ~obj2 ~info2)

(* Event-level relation.  A game node's semantics is a function of
   exactly: the per-object access sequences (they determine object
   states, observed values, hence every fiber's continuation and every
   recorded response), the invocation ORDER (record ids are assigned by
   it), the return-before-invoke precedence relation, and the SET of
   completed operations.  Adjacent swaps that preserve all four
   commute:
   - [Step]/[Step] by distinct processes, per {!commuting_steps};
   - [Return]/[Return] by distinct processes (neither precedence nor
     ids nor the completed set reads the order of back-to-back
     returns);
   - [Step] against an [Invoke] or [Return] of a distinct process (a
     base-object access is invisible to the history and vice versa).
   [Invoke]/[Invoke] conflicts (record ids permute) and
   [Invoke]/[Return] conflicts (that order IS the precedence
   relation). *)
let events_commute (e1 : (_, _) Trace.event) (e2 : (_, _) Trace.event) =
  match (e1, e2) with
  | Trace.Step a, Trace.Step b ->
      a.proc <> b.proc
      && ((not (String.equal a.obj b.obj))
         || (preserving ~info:a.info ~noop:a.noop && preserving ~info:b.info ~noop:b.noop))
  | Trace.Return { proc = p; _ }, Trace.Return { proc = q; _ } -> p <> q
  | Trace.Step { proc = p; _ }, (Trace.Invoke { proc = q; _ } | Trace.Return { proc = q; _ })
  | (Trace.Invoke { proc = p; _ } | Trace.Return { proc = p; _ }), Trace.Step { proc = q; _ }
    ->
      p <> q
  | _ -> false

(* Bundle-level relation, for whole scheduling steps: one [Sim.step]
   emits a bundle of trace events (possibly an invoke or return plus a
   base-object access).  Two bundles commute when every cross pair of
   events does — then swapping the bundles preserves the invocation
   order, the precedence relation, every per-object access order, and
   (since commuting accesses also leave the object states and both
   fibers' views unchanged) the world. *)
let bundles_commute b1 b2 =
  List.for_all (fun e1 -> List.for_all (fun e2 -> events_commute e1 e2) b2) b1

(* ---------------- commutation-invariant fingerprint -------------------- *)

(* Per-object state: an order-sensitive chain of sealed accesses plus a
   commutative sum of the read-like accesses seen since the last
   non-read access.  Reads add into [oc_pend] (modular addition —
   order-insensitive); any other access seals the pending sum into the
   chain and then extends it. *)
type obj_chain = { oc_chain : int; oc_pend : int }

type fp_state = {
  fr_hist : int;  (* chain over Invoke events (each sealing pending returns) *)
  fr_rets : int;  (* commutative sum of returns since the last Invoke *)
  fr_objs : (string * obj_chain) list;  (* per-object chains, small assoc *)
  fr_sum : int;  (* sum of sealed per-object values, mod 2^62 *)
}

let obj_seed obj = mix 0x51 (Hashtbl.hash obj)

let seal obj c = mix (Hashtbl.hash obj) (mix c.oc_chain c.oc_pend)

let fp_empty = { fr_hist = mix 0 0x5eed; fr_rets = 0; fr_objs = []; fr_sum = 0 }

let fp_feed st (ev : (_, _) Trace.event) =
  match ev with
  (* The history mirrors the object chains' read trick: back-to-back
     returns land in a commutative pending sum — their mutual order is
     semantically dead — and the next invoke seals it, because a
     return-before-invoke pair IS a precedence edge. *)
  | Trace.Return _ -> { st with fr_rets = (st.fr_rets + Hashtbl.hash ev) land fp_mask }
  | Trace.Invoke _ ->
      { st with fr_hist = mix (mix st.fr_hist st.fr_rets) (Hashtbl.hash ev); fr_rets = 0 }
  | Trace.Step { proc; obj; info; noop } ->
      let cur =
        match List.assoc_opt obj st.fr_objs with
        | Some c -> c
        | None -> { oc_chain = obj_seed obj; oc_pend = 0 }
      in
      let h = Hashtbl.hash (proc, info) in
      let next =
        if preserving ~info ~noop then { cur with oc_pend = (cur.oc_pend + h) land fp_mask }
        else { oc_chain = mix (mix cur.oc_chain cur.oc_pend) h; oc_pend = 0 }
      in
      let rec set = function
        | [] -> [ (obj, next) ]
        | (o, _) :: rest when String.equal o obj -> (obj, next) :: rest
        | kv :: rest -> kv :: set rest
      in
      {
        st with
        fr_objs = set st.fr_objs;
        fr_sum = (st.fr_sum - seal obj cur + seal obj next) land fp_mask;
      }

let fp_feed_list st evs = List.fold_left fp_feed st evs

let fp_value st = mix (mix st.fr_hist st.fr_rets) st.fr_sum

let fp_of_trace tr = fp_value (fp_feed_list fp_empty tr)
