(* Linearizability with multiplicity (paper §5, footnote 3; after
   Castañeda–Rajsbaum–Raynal).

   A queue (or stack) with multiplicity relaxes the exact object in one
   way: dequeues (pops) that are {e pairwise concurrent} may return the
   same item, and such duplicated operations are linearized consecutively
   (the set-linearizability view collapses them into one point).  We
   check the equivalent sequential formulation: there must be a
   linearization in which a dequeue may repeat the item of the
   immediately preceding dequeue, provided it overlaps every operation of
   the duplicate group; any other operation closes the group.

   This checker is interval-sensitive (the relaxation is only available
   to concurrent operations), which is why it cannot be phrased as a
   [Spec.S] state machine and gets its own search.  Only plain
   linearizability is decided here — the strong-linearizability status of
   multiplicity objects is settled by the paper's Theorem 17 (they are
   1-ordering), exhibited in this repository by running Algorithm B on
   the read/write multiplicity queue. *)

type kind = Queue | Stack

type outcome =
  | Decided of bool
  | Inconclusive of { visited : int; reason : Lincheck.budget_reason }

(* Search state: remaining items structure + the open duplicate group. *)
type search_state = {
  items : int list;  (* queue: front first; stack: top first *)
  group : (int * int list) option;  (* duplicated item, op ids in the group *)
}

let check_budgeted ?budget_nodes ?budget_ms ?(jobs = 1) ?(reduce = false) ?profiler ?coverage
    (kind : kind) (t : (Spec.Queue_spec.op, Spec.Queue_spec.resp) Trace.t) : outcome =
  (* Coverage (passive): the checked trace is one observed world — its
     fingerprint and access pairs land on shard 0 before the DFS runs,
     so budget trips cannot hide the observation. *)
  (match coverage with
  | Some c ->
      let sh = Coverage.shard c ~domain:0 in
      Coverage.observe_node sh ~depth:(Trace.step_count t) ~branching:0 t
  | None -> ());
  let records = History.of_trace t |> Array.of_list in
  let n = Array.length records in
  if n > 60 then invalid_arg "Mult_check: more than 60 operations";
  let pred = Array.make n 0 in
  Array.iteri
    (fun i ri ->
      Array.iteri
        (fun j rj -> if i <> j && History.precedes rj ri then pred.(i) <- pred.(i) lor (1 lsl j))
        records;
      ignore ri)
    records;
  let completed_mask = ref 0 in
  Array.iteri
    (fun i r -> if History.is_complete r then completed_mask := !completed_mask lor (1 lsl i))
    records;
  let completed_mask = !completed_mask in
  let overlaps_all ids i =
    List.for_all (fun j -> History.overlapping records.(i) records.(j)) ids
  in
  (* Outcomes of linearizing op [i] in state [s]: list of (state', resp). *)
  let outcomes s i =
    match records.(i).History.op with
    | Spec.Queue_spec.Enq x ->
        let items = match kind with Queue -> s.items @ [ x ] | Stack -> x :: s.items in
        [ ({ items; group = None }, Spec.Queue_spec.Ok_) ]
    | Spec.Queue_spec.Deq -> (
        let dup =
          match s.group with
          | Some (x, ids) when overlaps_all ids i ->
              [ ({ s with group = Some (x, i :: ids) }, Spec.Queue_spec.Item x) ]
          | _ -> []
        in
        match s.items with
        | [] -> ({ items = []; group = None }, Spec.Queue_spec.Empty) :: dup
        | x :: rest -> ({ items = rest; group = Some (x, [ i ]) }, Spec.Queue_spec.Item x) :: dup)
  in
  (* Budget accounting mirrors [Lincheck.check_strong_stats]: one unit
     per DFS state entered, budgets checked on entry so a tripped budget
     stops within one expansion. *)
  let t0 = Obs.now_ns () in
  let visited = Atomic.make 0 in
  let tripped = ref Lincheck.Budget_nodes in
  let stop reason =
    tripped := reason;
    raise Lincheck.Budget_exhausted
  in
  (* Partial-order reduction ([reduce]): the DFS answer is a pure
     function of (mask, state) — which operations are already
     linearized and what the abstract object looks like — so
     linearization orders that converge on the same (mask, items,
     group) share one sub-search.  The memo is consulted before the
     state is counted (a hit costs no visit); exception paths (budget
     trips) cache nothing.  Gated behind [reduce] because memo hits
     change [visited] counts (never the decision). *)
  let memo : (int * int list * (int * int list) option, bool) Hashtbl.t option =
    if reduce then Some (Hashtbl.create 1024) else None
  in
  let prunes = ref 0 in
  let rec dfs mask s =
    match memo with
    | Some m -> (
        let key = (mask, s.items, s.group) in
        match Hashtbl.find_opt m key with
        | Some r ->
            incr prunes;
            r
        | None ->
            let r = dfs_state mask s in
            Hashtbl.replace m key r;
            r)
    | None -> dfs_state mask s
  and dfs_state mask s =
    Atomic.incr visited;
    (match budget_nodes with
    | Some b when Atomic.get visited > b -> stop Lincheck.Budget_nodes
    | _ -> ());
    (match budget_ms with
    | Some ms when Obs.now_ns () - t0 > ms * 1_000_000 -> stop Lincheck.Budget_wall
    | _ -> ());
    if completed_mask land lnot mask = 0 then true
    else begin
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < n do
        let idx = !i in
        if mask land (1 lsl idx) = 0 && pred.(idx) land lnot mask = 0 then
          List.iter
            (fun (s', resp) ->
              if not !found then
                let resp_ok =
                  match records.(idx).History.resp with
                  | None -> true
                  | Some actual -> Spec.Queue_spec.equal_resp actual resp
                in
                if resp_ok && dfs (mask lor (1 lsl idx)) s' then found := true)
            (outcomes s idx);
        incr i
      done;
      !found
    end
  in
  (* Root-branch parallelism: the first linearization step's candidate
     (operation, outcome) pairs are independent sub-searches whose OR is
     the answer, so they can run on [jobs] domains.  Only when no budget
     is set — a deterministic budget trip needs the sequential visit
     order — and the answer is the same OR either way. *)
  let eff =
    match (budget_nodes, budget_ms) with
    | None, None when not reduce -> Steal_pool.effective_workers ~requested:jobs
    | _ -> 1 (* the memo table is single-domain, like a budget's visit order *)
  in
  let solve () =
    let s0 = { items = []; group = None } in
    if eff <= 1 then dfs 0 s0
    else begin
      Atomic.incr visited;
      (* the root state *)
      if completed_mask = 0 then true
      else begin
        let branches =
          Array.of_list
            (List.concat
               (List.init n (fun idx ->
                    if pred.(idx) = 0 then
                      List.filter_map
                        (fun (s', resp) ->
                          let resp_ok =
                            match records.(idx).History.resp with
                            | None -> true
                            | Some actual -> Spec.Queue_spec.equal_resp actual resp
                          in
                          if resp_ok then Some (idx, s') else None)
                        (outcomes s0 idx)
                    else [])))
        in
        let found = Atomic.make false in
        Steal_pool.parallel_for ~workers:eff ~n:(Array.length branches)
          (fun ~worker:_ i ->
            if not (Atomic.get found) then begin
              let idx, s' = branches.(i) in
              if dfs (1 lsl idx) s' then Atomic.set found true
            end);
        Atomic.get found
      end
    end
  in
  (* Profiling (passive): one solve span for the DFS, one work unit per
     visited state, a budget kill when a budget trips. *)
  let lane = Option.map (fun p -> Prof.lane p ~domain:0) profiler in
  (match lane with Some l -> Prof.begin_span l Prof.Solve ~label:"mult dfs" () | None -> ());
  let outcome =
    match solve () with
    | decided -> Decided decided
    | exception Lincheck.Budget_exhausted ->
        (match lane with Some l -> Prof.kill l Prof.Kill_budget | None -> ());
        Inconclusive { visited = Atomic.get visited; reason = !tripped }
  in
  (match lane with
  | Some l ->
      Prof.add_nodes l (Atomic.get visited);
      Prof.add_prunes l !prunes;
      Prof.end_span l
  | None -> ());
  outcome

let check kind t =
  match check_budgeted kind t with
  | Decided b -> b
  | Inconclusive _ -> assert false (* no budget set, so dfs cannot trip one *)
