(* Linearizability and strong-linearizability checking.

   [Make (S)] provides two checkers for programs whose high-level
   operations follow specification [S]:

   - [check_trace] decides whether one execution trace is linearizable:
     is there a sequential execution of [S] containing every completed
     operation (with its actual response), possibly some pending ones, and
     respecting real-time order?  (Paper §2's definition.)

   - [check_strong] decides whether a {e prefix-closed} linearization
     function exists on the tree of all executions of a program (up to a
     node budget): an assignment of a linearization L(v) to every node v
     such that L(child) extends L(parent) by appending operations only.
     This is precisely strong linearizability (Golab–Higham–Woelfel)
     restricted to the explored tree, so:

       - a [Not_strongly_linearizable] verdict is a {e proof} that the
         implementation is not strongly linearizable (the finite witness
         tree embeds in the full execution tree);
       - a [Strongly_linearizable] verdict is exhaustive for the given
         workload: no adversary scheduling that workload can violate
         prefix-closedness.

   The game solver enumerates, at each node, the {e minimal} valid
   linearizations extending the parent's choice — sequences that place
   every completed operation and only those pending operations forced
   before a completed one.  Minimality is sound: if L is a prefix of L'
   then every child strategy for L' is also one for L, so committing to
   unforced pending operations never helps. *)

exception Budget_exhausted

(* Which budget converted the run into an inconclusive verdict.  Node
   budgets predate the others; their rendering (pretty and JSON) is
   pinned byte-for-byte, so the new reasons only ever add output.
   [Budget_interrupt] is external: a signal handler, per-request
   deadline or supervisor cancellation asked the run to stop.
   [Budget_preempt] is the conservative [--preempt-bound] truncation: a
   successful game on the restricted tree proves nothing about the full
   one, so the verdict degrades exactly like a budget trip (refutations
   found under the bound remain sound — every visited node is real). *)
type budget_reason = Budget_nodes | Budget_wall | Budget_heap | Budget_interrupt | Budget_preempt

let budget_reason_tag = function
  | Budget_nodes -> "nodes"
  | Budget_wall -> "wall_ms"
  | Budget_heap -> "heap_mb"
  | Budget_interrupt -> "interrupt"
  | Budget_preempt -> "preempt_bound"

let heap_mb_now () =
  let words = (Gc.quick_stat ()).Gc.heap_words in
  words * (Sys.word_size / 8) / (1024 * 1024)

(* Exploration statistics for one [check_strong] run.  Spec-independent,
   hence outside the functor.  [nodes] always equals the count carried
   by the verdict; the rest explains where the work went: how many
   candidate linearizations the enumerator produced, how many died at a
   child ([candidates_killed] — the game's backtracking), how many nodes
   admitted no extension at all ([dead_ends]), and how often the
   schedule cache saved a replay. *)
type stats = {
  nodes : int;  (* distinct tree nodes explored (= verdict's count) *)
  cache_hits : int;  (* node lookups answered from the schedule cache *)
  max_frontier_depth : int;  (* deepest schedule prefix reached *)
  candidates_generated : int;  (* minimal linearizations enumerated *)
  candidates_killed : int;  (* candidates refuted at some child *)
  dead_ends : int;  (* nodes with no valid extension *)
  validate_failures : int;  (* inherited prefixes invalidated by new responses *)
  elapsed_ns : int;
}

let nodes_per_sec st =
  if st.elapsed_ns <= 0 then 0. else float_of_int st.nodes *. 1e9 /. float_of_int st.elapsed_ns

let pp_stats fmt st =
  Format.fprintf fmt
    "@[<v>nodes explored        %d@,\
     exploration rate      %.0f nodes/s@,\
     max frontier depth    %d@,\
     candidates generated  %d@,\
     linearizations killed %d@,\
     dead-end nodes        %d@,\
     prefix invalidations  %d@,\
     cache hits            %d@,\
     elapsed               %.3f s@]"
    st.nodes (nodes_per_sec st) st.max_frontier_depth st.candidates_generated
    st.candidates_killed st.dead_ends st.validate_failures st.cache_hits
    (float_of_int st.elapsed_ns /. 1e9)

let stats_fields st =
  [
    ("nodes", Obs_json.Int st.nodes);
    ("nodes_per_sec", Obs_json.Float (nodes_per_sec st));
    ("max_frontier_depth", Obs_json.Int st.max_frontier_depth);
    ("candidates_generated", Obs_json.Int st.candidates_generated);
    ("candidates_killed", Obs_json.Int st.candidates_killed);
    ("dead_ends", Obs_json.Int st.dead_ends);
    ("validate_failures", Obs_json.Int st.validate_failures);
    ("cache_hits", Obs_json.Int st.cache_hits);
    ("elapsed_ns", Obs_json.Int st.elapsed_ns);
  ]

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume (slin-checkpoint/v1)                            *)
(* ------------------------------------------------------------------ *)

(* Bumped whenever exploration order, node accounting or the column
   split change: a checkpoint (or a memoized serve verdict) produced by
   a different engine must never be replayed. *)
let engine_fingerprint = "slin-engine/incremental-columns-v1"

let checkpoint_schema = "slin-checkpoint/v1"

(* The resumable unit is one completed top-level column.  The game at
   the root reduces to "every top-level subtree admits the empty
   linearization", the columns are solved independently, and the merge
   is deterministic — the exact invariance the engine-equivalence suite
   pins for [jobs].  So skipping recorded columns and re-running the
   rest provably reaches the uninterrupted verdict, witness and counts.
   A finer-grained (mid-DFS) checkpoint would have to serialize the
   recursion stack and the schedule cache; column granularity costs at
   most one column of redone work and stays spec-independent. *)
type col_checkpoint = {
  col_index : int;
  col_outcome : string;  (* "ok" | "failed" | "not-lin" *)
  col_schedule : int list;  (* Not_linearizable schedule, else [] *)
  col_nodes : int;
  col_hits : int;
  col_frontier : int;
  col_cand : int;
  col_killed : int;
  col_dead : int;
  col_vfail : int;
  col_wit : (int * int list) list;  (* temporal order *)
  col_pruned : bool;  (* preempt bound dropped children in this column *)
}

type checkpoint = { ck_config : string; ck_columns : col_checkpoint list }

(* FNV-1a 64-bit over the canonical JSON body: cheap, deterministic,
   and plenty for integrity (corruption detection, identity checks) —
   this is not a security boundary. *)
let fnv64 (s : string) =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let col_checkpoint_to_json (c : col_checkpoint) =
  Obs_json.Assoc
    ([
      ("col", Obs_json.Int c.col_index);
      ("outcome", Obs_json.String c.col_outcome);
      ("schedule", Obs_json.List (List.map (fun p -> Obs_json.Int p) c.col_schedule));
      ("nodes", Obs_json.Int c.col_nodes);
      ("hits", Obs_json.Int c.col_hits);
      ("frontier", Obs_json.Int c.col_frontier);
      ("cand", Obs_json.Int c.col_cand);
      ("killed", Obs_json.Int c.col_killed);
      ("dead", Obs_json.Int c.col_dead);
      ("vfail", Obs_json.Int c.col_vfail);
      ( "wit",
        Obs_json.List
          (List.map
             (fun (d, pth) ->
               Obs_json.Assoc
                 [
                   ("depth", Obs_json.Int d);
                   ("path", Obs_json.List (List.map (fun p -> Obs_json.Int p) pth));
                 ])
             c.col_wit) );
    ]
    (* Appended only when set, so every pre-preempt-bound checkpoint
       body — and hence its digest — is byte-identical to before. *)
    @ if c.col_pruned then [ ("pruned", Obs_json.Bool true) ] else [])

let checkpoint_body ck =
  Obs_json.to_string
    (Obs_json.Assoc
       [
         ("engine", Obs_json.String engine_fingerprint);
         ("config", Obs_json.String ck.ck_config);
         ("columns", Obs_json.List (List.map col_checkpoint_to_json ck.ck_columns));
       ])

let checkpoint_fingerprint ck = fnv64 (checkpoint_body ck)

let checkpoint_to_json ck =
  Obs_json.Assoc
    [
      ("schema", Obs_json.String checkpoint_schema);
      ("engine", Obs_json.String engine_fingerprint);
      ("config", Obs_json.String ck.ck_config);
      ("fingerprint", Obs_json.String (checkpoint_fingerprint ck));
      ("columns", Obs_json.List (List.map col_checkpoint_to_json ck.ck_columns));
    ]

let checkpoint_of_json j : (checkpoint, string) result =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let field name conv o =
    match Option.bind (Obs_json.member name o) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "checkpoint: missing or ill-typed %S" name)
  in
  let* schema = field "schema" Obs_json.to_str j in
  if schema <> checkpoint_schema then
    Error (Printf.sprintf "checkpoint: unsupported schema %S (want %S)" schema checkpoint_schema)
  else
    let* engine = field "engine" Obs_json.to_str j in
    if engine <> engine_fingerprint then
      Error
        (Printf.sprintf "checkpoint: engine %S does not match this binary's %S" engine
           engine_fingerprint)
    else
      let* config = field "config" Obs_json.to_str j in
      let* fp = field "fingerprint" Obs_json.to_str j in
      let* cols = field "columns" Obs_json.to_list j in
      let parse_col o =
        let* idx = field "col" Obs_json.to_int o in
        let* outcome = field "outcome" Obs_json.to_str o in
        if outcome <> "ok" && outcome <> "failed" && outcome <> "not-lin" then
          Error (Printf.sprintf "checkpoint: column %d has unknown outcome %S" idx outcome)
        else
          let* schedule = field "schedule" Obs_json.to_int_list o in
          let* nodes = field "nodes" Obs_json.to_int o in
          let* hits = field "hits" Obs_json.to_int o in
          let* frontier = field "frontier" Obs_json.to_int o in
          let* cand = field "cand" Obs_json.to_int o in
          let* killed = field "killed" Obs_json.to_int o in
          let* dead = field "dead" Obs_json.to_int o in
          let* vfail = field "vfail" Obs_json.to_int o in
          let* wit = field "wit" Obs_json.to_list o in
          let* wit =
            List.fold_left
              (fun acc w ->
                let* acc = acc in
                let* d = field "depth" Obs_json.to_int w in
                let* pth = field "path" Obs_json.to_int_list w in
                Ok ((d, pth) :: acc))
              (Ok []) wit
          in
          (* Optional: absent in every checkpoint written before the
             preempt bound existed. *)
          let pruned =
            match Obs_json.member "pruned" o with Some (Obs_json.Bool b) -> b | _ -> false
          in
          Ok
            {
              col_index = idx;
              col_outcome = outcome;
              col_schedule = schedule;
              col_nodes = nodes;
              col_hits = hits;
              col_frontier = frontier;
              col_cand = cand;
              col_killed = killed;
              col_dead = dead;
              col_vfail = vfail;
              col_wit = List.rev wit;
              col_pruned = pruned;
            }
      in
      let* columns =
        List.fold_left
          (fun acc o ->
            let* acc = acc in
            let* c = parse_col o in
            Ok (c :: acc))
          (Ok []) cols
      in
      let ck = { ck_config = config; ck_columns = List.rev columns } in
      if checkpoint_fingerprint ck <> fp then
        Error "checkpoint: content digest mismatch (corrupted or hand-edited file)"
      else Ok ck

type checkpointing = {
  cp_config : string;
  cp_resume : checkpoint option;
  cp_emit : checkpoint -> unit;
}

module Make (S : Spec.S) = struct
  type entry = { op_id : int; eresp : S.resp }

  type linearization = entry list

  let pp_entry records fmt e =
    let r = List.find (fun (r : _ History.op_record) -> r.id = e.op_id) records in
    Format.fprintf fmt "#%d p%d %a -> %a" r.History.id r.History.proc S.pp_op r.History.op
      S.pp_resp e.eresp

  let pp_linearization records fmt l =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
      (pp_entry records) fmt l

  (* ---------------------------------------------------------------- *)
  (* Shared machinery                                                  *)
  (* ---------------------------------------------------------------- *)

  (* Deduplicating a state set costs a polymorphic sort; deterministic
     specs produce singletons on the hot path, where sorting is the
     identity — skip it. *)
  let sort_uniq_states = function ([] | [ _ ]) as l -> l | l -> List.sort_uniq compare l

  (* Nondeterministic specs: a sequence of (op, resp) pairs corresponds to
     a set of possible states.  [step_states] advances the whole set,
     keeping only outcomes whose response matches. *)
  let step_states states op resp =
    List.concat_map (fun s -> S.apply s op) states
    |> List.filter_map (fun (s', r) -> if S.equal_resp r resp then Some s' else None)
    |> sort_uniq_states

  (* All (resp, next-states) groups reachable by applying [op] to any
     state in [states]. *)
  let outcome_groups states op =
    let outcomes = List.concat_map (fun s -> S.apply s op) states in
    let acc : (S.resp * S.state list) list ref = ref [] in
    List.iter
      (fun (s', r) ->
        let rec insert = function
          | [] -> [ (r, [ s' ]) ]
          | (r0, ss) :: rest ->
              if S.equal_resp r0 r then (r0, s' :: ss) :: rest else (r0, ss) :: insert rest
        in
        acc := insert !acc)
      outcomes;
    List.map (fun (r, ss) -> (r, sort_uniq_states ss)) !acc

  (* Precedence masks for a list of records (ids are dense 0..n-1). *)
  let build_masks (records : (S.op, S.resp) History.op_record list) =
    let arr = Array.of_list records in
    let n = Array.length arr in
    if n > 60 then invalid_arg "Lincheck: more than 60 operations";
    let pred = Array.make n 0 in
    Array.iteri
      (fun i ri ->
        Array.iteri
          (fun j rj -> if i <> j && History.precedes rj ri then pred.(i) <- pred.(i) lor (1 lsl j))
          arr;
        ignore ri)
      arr;
    (arr, pred)

  let completed_mask_of arr =
    let m = ref 0 in
    Array.iteri (fun i r -> if History.is_complete r then m := !m lor (1 lsl i)) arr;
    !m

  (* Validate a linearization prefix against the (possibly extended)
     records of a node: responses of now-completed operations must match
     the committed ones, and the sequence must still be spec-valid.
     Returns the state set after the prefix, or None. *)
  let validate_over (arr : (S.op, S.resp) History.op_record array) (lin : linearization) =
    let rec go states = function
      | [] -> Some states
      | e :: rest ->
          if e.op_id >= Array.length arr then None
          else
            let r = arr.(e.op_id) in
            let resp_ok =
              match r.History.resp with None -> true | Some actual -> S.equal_resp actual e.eresp
            in
            if not resp_ok then None
            else
              let states' = step_states states r.History.op e.eresp in
              if states' = [] then None else go states' rest
    in
    go [ S.init ] lin

  let validate_prefix records lin = validate_over (Array.of_list records) lin

  (* Enumerate the minimal valid linearizations extending [lin] (whose
     state set is [states0]): place every completed operation; pending
     operations appear only in the interior (the last element of every
     extension is completed, or the extension is empty).  Works over a
     node's precomputed record array and masks so the solver never
     rebuilds them per candidate.  Returns deduplicated entry lists, in
     a deterministic order (reverse of first-emission order, which the
     solver's candidate priority depends on). *)
  let extensions_over (arr : (S.op, S.resp) History.op_record array) (pred : int array)
      (completed_mask : int) (lin : linearization) states0 =
    let n = Array.length arr in
    let in_lin = List.fold_left (fun m e -> m lor (1 lsl e.op_id)) 0 lin in
    let results = ref [] in
    (* Dedup is structural: extensions bucketed by their op-id sequence
       (packed into a string key), responses compared with [S.equal_resp].
       Keying on [Format.asprintf "%a" S.pp_resp] was both slow and
       unsound when the printer is not injective — two distinct responses
       printing alike would wrongly collapse into one candidate. *)
    let seen : (string, S.resp list list) Hashtbl.t = Hashtbl.create 16 in
    let emit rev_acc =
      let ext = List.rev rev_acc in
      let len = List.length ext in
      let key =
        let b = Bytes.create len in
        List.iteri (fun i e -> Bytes.unsafe_set b i (Char.unsafe_chr e.op_id)) ext;
        Bytes.unsafe_to_string b
      in
      let resps = List.map (fun e -> e.eresp) ext in
      let bucket = Option.value (Hashtbl.find_opt seen key) ~default:[] in
      if not (List.exists (fun rs -> List.for_all2 S.equal_resp rs resps) bucket) then begin
        Hashtbl.replace seen key (resps :: bucket);
        results := ext :: !results
      end
    in
    let rec go mask states rev_acc =
      if completed_mask land lnot mask = 0 then emit rev_acc
      else
        for i = 0 to n - 1 do
          if mask land (1 lsl i) = 0 && pred.(i) land lnot mask = 0 then begin
            let r = arr.(i) in
            match r.History.resp with
            | Some actual ->
                let states' = step_states states r.History.op actual in
                if states' <> [] then
                  go (mask lor (1 lsl i)) states' ({ op_id = i; eresp = actual } :: rev_acc)
            | None ->
                List.iter
                  (fun (resp, states') ->
                    go (mask lor (1 lsl i)) states' ({ op_id = i; eresp = resp } :: rev_acc))
                  (outcome_groups states r.History.op)
          end
        done
    in
    go in_lin states0 [];
    List.map (fun ext -> lin @ ext) !results

  let extensions (records : (S.op, S.resp) History.op_record list) (lin : linearization) states0 =
    let arr, pred = build_masks records in
    extensions_over arr pred (completed_mask_of arr) lin states0

  (* ---------------------------------------------------------------- *)
  (* Incremental node evaluation                                       *)
  (* ---------------------------------------------------------------- *)

  (* Everything the solver needs about one tree node, computed once and
     cached: the record array with its precedence masks (so [extensions]
     never rebuilds them per candidate), the enabled set, how much trace
     the records cover, and a lazily-memoized answer to "is this node's
     execution linearizable at all?" (the dead-end root check). *)
  type node_info = {
    rec_arr : (S.op, S.resp) History.op_record array;
    pred : int array;
    completed_mask : int;
    enabled : int list;
    trace_len : int;
    fp : Reduct.fp_state;
        (* commutation-invariant trace fingerprint: equal (modulo hash
           collisions) for nodes whose schedules differ only by swaps of
           adjacent commuting base-object accesses.  Such nodes have
           identical histories and record arrays, so the reduction memo
           may answer one from the other. *)
    mutable root_linearizable : bool option;
  }

  let info_of_world (w : (S.op, S.resp) Sim.t) =
    let trace = Sim.trace w in
    let arr, pred = build_masks (History.of_trace trace) in
    {
      rec_arr = arr;
      pred;
      completed_mask = completed_mask_of arr;
      enabled = Sim.enabled w;
      trace_len = Sim.trace_len w;
      fp = Reduct.fp_feed_list Reduct.fp_empty trace;
      root_linearizable = None;
    }

  (* Extend [parent]'s evaluated state by the trace delta of [w], a world
     whose trace extends the parent node's (the child is the parent's
     schedule plus steps; execution is deterministic, so this holds
     whether [w] was stepped in place or rebuilt from scratch).

     Why existing rows survive: every event in the delta sits at a trace
     position >= [parent.trace_len] > the [inv_index] of every existing
     record, so a newly completed operation precedes no existing one and
     no existing pair changes order — [precedes] on old pairs is final.
     Completions only fill [resp]/[res_index] of a pending record; fresh
     invocations append records whose precedence rows are computed
     against the finished array.  Cost: O(delta + new_ops * n) instead
     of O(trace * n + n^2) per node. *)
  let extend_info (parent : node_info) (w : (S.op, S.resp) Sim.t) =
    let enabled = Sim.enabled w in
    let trace_len = Sim.trace_len w in
    let delta = Sim.events_from w ~from:parent.trace_len in
    let fp = Reduct.fp_feed_list parent.fp delta in
    if not (List.exists (function Trace.Step _ -> false | _ -> true) delta) then
      (* Base-object steps only: the history is untouched, share every
         array (and the memoized root check) with the parent. *)
      { parent with enabled; trace_len; fp }
    else begin
      let n0 = Array.length parent.rec_arr in
      (* Open operation per process: parent's pending records, updated as
         the delta is scanned. *)
      let open_slot = Array.make (Sim.n w) (-1) in
      Array.iter
        (fun (r : _ History.op_record) ->
          if History.is_pending r then open_slot.(r.History.proc) <- r.History.id)
        parent.rec_arr;
      let news = ref [] in
      (* id -> completed copy, for records whose Return is in the delta *)
      let updates : (int, (S.op, S.resp) History.op_record) Hashtbl.t = Hashtbl.create 8 in
      let next_id = ref n0 in
      List.iteri
        (fun i ev ->
          let idx = parent.trace_len + i in
          match ev with
          | Trace.Step _ -> ()
          | Trace.Invoke { proc; op } ->
              let r =
                { History.id = !next_id; proc; op; resp = None; inv_index = idx; res_index = None }
              in
              incr next_id;
              open_slot.(proc) <- r.History.id;
              news := r :: !news
          | Trace.Return { proc; resp } ->
              let id = open_slot.(proc) in
              if id < 0 then invalid_arg "Lincheck: return without invocation in trace delta";
              open_slot.(proc) <- -1;
              let r =
                if id < n0 then parent.rec_arr.(id)
                else List.find (fun (r : _ History.op_record) -> r.History.id = id) !news
              in
              Hashtbl.replace updates id
                { r with History.resp = Some resp; res_index = Some idx })
        delta;
      let n = !next_id in
      if n > 60 then invalid_arg "Lincheck: more than 60 operations";
      let news_arr = Array.of_list (List.rev !news) in
      let fetch id =
        match Hashtbl.find_opt updates id with
        | Some r -> r
        | None -> if id < n0 then parent.rec_arr.(id) else news_arr.(id - n0)
      in
      let arr = Array.init n fetch in
      let pred = Array.make n 0 in
      Array.blit parent.pred 0 pred 0 n0;
      for i = n0 to n - 1 do
        let ri = arr.(i) in
        let m = ref 0 in
        for j = 0 to n - 1 do
          if j <> i && History.precedes arr.(j) ri then m := !m lor (1 lsl j)
        done;
        pred.(i) <- !m
      done;
      let completed_mask =
        Hashtbl.fold (fun id _ m -> m lor (1 lsl id)) updates parent.completed_mask
      in
      { rec_arr = arr; pred; completed_mask; enabled; trace_len; fp; root_linearizable = None }
    end

  (* Anchor check: recompute the node's records from the full trace and
     compare with the incrementally maintained ones.  Run at every node
     whose depth is a multiple of the checkpoint stride; a divergence is
     a checker bug, never a property of the object under test. *)
  let cross_check (info : node_info) (w : (S.op, S.resp) Sim.t) =
    if History.of_trace (Sim.trace w) <> Array.to_list info.rec_arr then
      invalid_arg "Lincheck: incremental node state diverged from full replay"

  let root_linearizable (info : node_info) =
    match info.root_linearizable with
    | Some b -> b
    | None ->
        let b = extensions_over info.rec_arr info.pred info.completed_mask [] [ S.init ] <> [] in
        info.root_linearizable <- Some b;
        b

  (* ---------------------------------------------------------------- *)
  (* Single-trace linearizability                                      *)
  (* ---------------------------------------------------------------- *)

  let check_trace (t : (S.op, S.resp) Trace.t) : linearization option =
    let records = History.of_trace t in
    match extensions records [] [ S.init ] with [] -> None | l :: _ -> Some l

  let is_linearizable t = check_trace t <> None

  (* ---------------------------------------------------------------- *)
  (* Strong linearizability on the execution tree                      *)
  (* ---------------------------------------------------------------- *)

  type verdict =
    | Strongly_linearizable of { nodes : int }
    | Not_linearizable of { schedule : int list }
    | Not_strongly_linearizable of { witness : int list; nodes : int }
    | Out_of_budget of { nodes : int; reason : budget_reason }

  let pp_verdict fmt = function
    | Strongly_linearizable { nodes } ->
        Format.fprintf fmt "strongly linearizable (%d nodes explored)" nodes
    | Not_linearizable { schedule } ->
        Format.fprintf fmt "NOT linearizable (schedule: %s)"
          (String.concat "" (List.map string_of_int schedule))
    | Not_strongly_linearizable { witness; nodes } ->
        Format.fprintf fmt "linearizable but NOT strongly linearizable (witness: %s; %d nodes)"
          (String.concat "" (List.map string_of_int witness))
          nodes
    | Out_of_budget { nodes; reason = Budget_nodes } ->
        Format.fprintf fmt "inconclusive: budget of %d nodes exhausted" nodes
    | Out_of_budget { nodes; reason = Budget_wall } ->
        Format.fprintf fmt "inconclusive: wall-clock budget exhausted after %d nodes" nodes
    | Out_of_budget { nodes; reason = Budget_heap } ->
        Format.fprintf fmt "inconclusive: memory budget exhausted after %d nodes" nodes
    | Out_of_budget { nodes; reason = Budget_interrupt } ->
        Format.fprintf fmt "inconclusive: interrupted after %d nodes" nodes
    | Out_of_budget { nodes; reason = Budget_preempt } ->
        Format.fprintf fmt "inconclusive: preemption bound pruned schedules (%d nodes explored)"
          nodes

  exception Found_not_linearizable of int list

  (* Raised inside a parallel worker when its column is past the
     sequential stopping point and its result can no longer matter. *)
  exception Abandoned

  (* One independent exploration state — counters, node cache, spine
     world and the recursive solver, bundled so the sequential checker
     (one engine, whole tree) and the parallel checker (one engine per
     top-level subtree) share the exact same code path. *)
  type engine = {
    en_nodes : int ref;
    en_hits : int ref;
    en_frontier : int ref;
    en_cand : int ref;
    en_killed : int ref;
    en_dead : int ref;
    en_vfail : int ref;
    en_wit : (int * int list) list ref;
        (* witness updates, newest first: (depth, forward schedule) at
           each strictly-deeper dead end *)
    en_tripped : budget_reason ref;
    en_pruned : bool ref;
        (* the preempt bound dropped at least one enabled child *)
    en_solve : int list -> int -> int -> string -> node_info option -> linearization -> bool;
        (* path, depth, preemption-switch count, packed key, parent, lin *)
  }

  (* Result of one parallel column (a top-level subtree solved with the
     empty inherited linearization). *)
  type col_outcome =
    | Col_ok of bool
    | Col_not_lin of int list
    | Col_tripped of budget_reason
    | Col_abandoned

  type col_result = {
    cr_outcome : col_outcome;
    cr_nodes : int;
    cr_hits : int;
    cr_frontier : int;
    cr_cand : int;
    cr_killed : int;
    cr_dead : int;
    cr_vfail : int;
    cr_wit : (int * int list) list;  (* temporal order *)
    cr_pruned : bool;
  }

  (* A checkpointed column replayed as if this run had solved it: the
     merge cannot tell a resumed column from a freshly solved one. *)
  let col_result_of_checkpoint (cc : col_checkpoint) =
    {
      cr_outcome =
        (match cc.col_outcome with
        | "ok" -> Col_ok true
        | "failed" -> Col_ok false
        | _ -> Col_not_lin cc.col_schedule);
      cr_nodes = cc.col_nodes;
      cr_hits = cc.col_hits;
      cr_frontier = cc.col_frontier;
      cr_cand = cc.col_cand;
      cr_killed = cc.col_killed;
      cr_dead = cc.col_dead;
      cr_vfail = cc.col_vfail;
      cr_wit = cc.col_wit;
      cr_pruned = cc.col_pruned;
    }

  (* ---------------------------------------------------------------- *)
  (* Work-stealing task engine (nworkers >= 2)                          *)
  (*                                                                    *)
  (* A task is one subtree solved under one inherited linearization.    *)
  (* Fork points (nodes at depth <= steal_grain with >= 2 children)     *)
  (* push each child of the current candidate as a task; sibling        *)
  (* subtrees have disjoint schedule-prefix key sets, so they race on   *)
  (* nothing.  Determinism comes from *canonical resolution*: when a    *)
  (* candidate's children have all finished, their results are folded   *)
  (* in child order up to and including the first failing child —       *)
  (* exactly the set of walks the sequential engine performs — and      *)
  (* everything after it (over-executed speculation) is discarded,      *)
  (* counters, cache tables and witnesses alike.  The two-tier cache:   *)
  (* each task writes fresh nodes into its own local table (tier 1) and *)
  (* reads through a chain of frozen tables from prior *counted* walks  *)
  (* (tier 2 — read-mostly and shared across domains without locks,     *)
  (* safe because a table is never mutated once it enters a chain).     *)
  (* Counted tables propagate upward at resolution, so a later          *)
  (* candidate's re-walk sees precisely the cache the sequential        *)
  (* engine would have — hit/fresh counts match node for node.          *)
  (* ---------------------------------------------------------------- *)

  type task_outcome =
    | T_ok
    | T_fail of Prof.kill_reason  (* the failing walk's kill attribution *)
    | T_notlin of int list
    | T_trip of budget_reason
    | T_col_abandoned  (* an earlier column stopped the run *)
    | T_aborted  (* an enclosing group's earlier child failed *)

  type task_counters = {
    mutable k_nodes : int;
    mutable k_hits : int;
    mutable k_frontier : int;
    mutable k_cand : int;
    mutable k_killed : int;
    mutable k_dead : int;
    mutable k_vfail : int;
    mutable k_wit : (int * int list) list;  (* newest first *)
    mutable k_wit_len : int;
    k_depth_hist : int array;
    k_kills : int array;
    mutable k_prunes : int;
    mutable k_pruned : bool;
    mutable k_tables : (string, node_info) Hashtbl.t list;
        (* the task's counted cache tables, set once at completion *)
  }

  let n_kill_reasons = List.length Prof.all_kills

  let new_task_counters () =
    {
      k_nodes = 0;
      k_hits = 0;
      k_frontier = 0;
      k_cand = 0;
      k_killed = 0;
      k_dead = 0;
      k_vfail = 0;
      k_wit = [];
      k_wit_len = 0;
      k_depth_hist = Array.make 64 0;
      k_kills = Array.make n_kill_reasons 0;
      k_prunes = 0;
      k_pruned = false;
      k_tables = [];
    }

  (* Join state of one candidate's forked children.  [g_failed] is the
     minimum failing child index so far (max_int while none): a task
     whose guard index exceeds it can no longer be part of the counted
     prefix and aborts at its next poll. *)
  type task_group = { g_pending : int Atomic.t; g_failed : int Atomic.t }

  type task_slot = { mutable r_out : task_outcome; mutable r_ctr : task_counters option }

  exception Task_stop of task_outcome

  (* [max_depth] truncates the tree: nodes at that depth get no children.
     Truncation preserves soundness of refutation — a prefix-closed
     linearization function on the full tree restricts to one on any
     truncated subtree, so if none exists on the subtree none exists at
     all — but makes a Strongly_linearizable verdict relative to the
     explored depth.  It is needed for implementations whose operations
     can spin (e.g. a queue's dequeue retrying on empty), which make the
     full tree infinite. *)
  let check_strong_stats ?(max_nodes = 200_000) ?max_depth ?budget_ms ?budget_heap_mb
      ?on_progress ?(progress_every = 10_000) ?(progress_every_ms = 1000) ?tracer ?profiler
      ?coverage ?(jobs = 1) ?(steal_grain = 4) ?(checkpoint_stride = 16) ?interrupt
      ?checkpointing ?(reduce = false) ?(reduce_check = false) ?preempt_bound
      (prog : (S.op, S.resp) Sim.program) : verdict * stats =
    let stride = max 1 checkpoint_stride in
    let jobs = max 1 jobs in
    let steal_grain = max 0 steal_grain in
    let reduce = reduce || reduce_check in
    let preempt_bound = Option.map (max 0) preempt_bound in
    if prog.Sim.procs > 255 then invalid_arg "Lincheck: more than 255 processes";
    let t0 = Obs.now_ns () in
    let lane_for w = Option.map (fun p -> Prof.lane p ~domain:w) profiler in
    let cov_for w = Option.map (fun c -> Coverage.shard c ~domain:w) coverage in
    (* One engine = one independent exploration: counters, node cache,
       spine world, recursive solver.  The sequential checker is one
       engine over the whole tree; the parallel checker runs one engine
       per top-level subtree — the subtrees' schedule prefixes are
       disjoint, so their caches partition the sequential engine's and
       their counters add up to its, column by column. *)
    let new_engine ~on_tick ~poll ~lane ~cov ~bump_global () =
      (* A tripped budget records its reason before unwinding; only read
         when [Budget_exhausted] escapes the solver. *)
      let tripped = ref Budget_nodes in
      let stop reason =
        tripped := reason;
        raise Budget_exhausted
      in
      let nodes = ref 0 in
      let cache_hits = ref 0 in
      let max_frontier = ref 0 in
      let cand_generated = ref 0 in
      let cand_killed = ref 0 in
      let dead_ends = ref 0 in
      let validate_failures = ref 0 in
      let wit_log = ref [] in
      let wit_len = ref 0 in
      (* Heartbeat + counter-track samples, every [progress_every] fresh
         nodes (never at node 0 — an exploration that has not expanded
         anything has nothing to report).  Nothing here feeds back into
         exploration. *)
      let tick () =
        if !nodes > 0 && !nodes mod progress_every = 0 then
          match on_tick with Some f -> f ~nodes:!nodes ~frontier:!max_frontier | None -> ()
      in
      (* Elapsed-time cadence alongside the node cadence: a cache-hit
         streak or a long anchored replay expands no fresh node for
         seconds, starving the node-count heartbeat.  Checked on every
         256th engine event (fresh or cached) so the clock read costs
         nothing measurable; disabled when [progress_every_ms <= 0] or
         when nobody is listening. *)
      let time_cadence = on_tick <> None && progress_every_ms > 0 in
      let next_beat = ref (t0 + (progress_every_ms * 1_000_000)) in
      let ev_count = ref 0 in
      let tick_time () =
        if time_cadence then begin
          incr ev_count;
          if !ev_count land 255 = 0 then begin
            let now = Obs.now_ns () in
            if now >= !next_beat then begin
              next_beat := now + (progress_every_ms * 1_000_000);
              match on_tick with
              | Some f -> f ~nodes:!nodes ~frontier:!max_frontier
              | None -> ()
            end
          end
        end
      in
      (* Why the last [solve] call returned false, for the profiler's
         candidate-kill attribution.  Written on every failing return
         path; read only at the kill site.  Never feeds back. *)
      let last_fail = ref Prof.Kill_mismatch in
      (* Node cache, keyed by the schedule prefix packed into a string
         (one byte per process index): hashing and equality become memcmp
         on a flat buffer instead of a polymorphic walk of an int list. *)
      let cache : (string, node_info) Hashtbl.t = Hashtbl.create 1024 in
      (* Spine world: the live world of the most recently evaluated fresh
         node.  Descending to that node's first fresh child is one
         [Sim.step]; any other fresh node is a full replay.  Fibers are
         one-shot continuations, so a world cannot be snapshotted — this
         single mutable spine is the only execution reuse available. *)
      let ev_world : (S.op, S.resp) Sim.t option ref = ref None in
      let ev_path : int list ref = ref [] in
      let world_at path =
        match (path, !ev_world) with
        (* Same node re-requested (the reduction layer probes the world
           for its fingerprint before deciding whether to explore): the
           spine already sits there. *)
        | p, Some w when p == !ev_path -> w
        | p :: tl, Some w when tl == !ev_path ->
            Sim.step w p;
            ev_path := path;
            w
        | _ ->
            let w = Sim.run_schedule prog (List.rev path) in
            ev_world := Some w;
            ev_path := path;
            w
      in
      let node_data path depth key parent =
        match Hashtbl.find_opt cache key with
        | Some info ->
            incr cache_hits;
            (match lane with Some l -> Prof.hit l | None -> ());
            tick_time ();
            info
        | None ->
            poll ();
            incr nodes;
            bump_global ();
            if !nodes > max_nodes then stop Budget_nodes;
            (match budget_ms with
            | Some ms when Obs.now_ns () - t0 > ms * 1_000_000 -> stop Budget_wall
            | _ -> ());
            (match budget_heap_mb with
            | Some mb when heap_mb_now () > mb -> stop Budget_heap
            | _ -> ());
            (match interrupt with Some f when f () -> stop Budget_interrupt | _ -> ());
            tick ();
            tick_time ();
            (match lane with Some l -> Prof.fresh l ~depth | None -> ());
            let w = world_at path in
            let info =
              match parent with Some pi -> extend_info pi w | None -> info_of_world w
            in
            if depth mod stride = 0 then begin
              match lane with
              | None -> cross_check info w
              | Some l ->
                  let s = Obs.now_ns () in
                  cross_check info w;
                  Prof.cross_checked l ~start_ns:s ~stop_ns:(Obs.now_ns ())
            end;
            (* Coverage is passive: one trace scan per fresh node, and
               nothing it records feeds back into exploration. *)
            (match cov with
            | Some sh ->
                let branching =
                  match max_depth with
                  | Some d when depth >= d -> 0
                  | _ -> List.length info.enabled
                in
                Coverage.observe_node sh ~depth ~branching (Sim.trace w)
            | None -> ());
            Hashtbl.add cache key info;
            info
      in
      (* Did the preempt bound drop an enabled child anywhere?  A
         successful game then only covers the restricted tree. *)
      let pruned = ref false in
      (* Candidate-survival memo (--reduce): the solve result is a
         function of the node's commutation class (trace-equivalent
         prefixes have identical record arrays and enabled sets, hence
         isomorphic future subtrees), its depth, its preemption-switch
         count and the inherited linearization — so one entry per
         (column, class fingerprint, depth, switches, lin) answers every
         twin.  Only committed results land here: a budget trip or a
         refutation unwinds as an exception and stores nothing.  The
         leading column byte keeps a shared table partitioned exactly
         like the per-column engines', so sequential, per-column and
         grain-0 stealing runs explore (and count) identically. *)
      let memo : (char * int * int * int * linearization, bool) Hashtbl.t option =
        if reduce then Some (Hashtbl.create 1024) else None
      in
      (* [path] is kept reversed for cheap extension; [depth] is its
         length; [switches] the preemptions charged so far; [key] its
         packed cache key; [parent] the parent node's evaluated state
         (None only at the engine's entry node). *)
      let rec solve path depth switches key parent (lin : linearization) =
        if depth > !max_frontier then max_frontier := depth;
        match memo with
        | Some m when depth > 0 -> (
            (* Probe the memo BEFORE registering the node: computing the
               child's fingerprint costs one [Sim.step] along the spine
               (or a node-cache lookup), and a hit answers the whole
               subtree — the pruned node is never counted, polled,
               cross-checked or cached, exactly as if the sleep set had
               suppressed the transition. *)
            let fp =
              match Hashtbl.find_opt cache key with
              | Some info -> info.fp
              | None -> (
                  let w = world_at path in
                  match parent with
                  | Some pi -> Reduct.fp_feed_list pi.fp (Sim.events_from w ~from:pi.trace_len)
                  | None -> Reduct.fp_feed_list Reduct.fp_empty (Sim.trace w))
            in
            let mkey = (key.[0], Reduct.fp_value fp, depth, switches, lin) in
            match Hashtbl.find_opt m mkey with
            | Some res when not reduce_check ->
                (match lane with Some l -> Prof.prune l | None -> ());
                if not res then last_fail := Prof.Kill_pruned;
                res
            | Some res ->
                (* Debug cross-validation: re-explore the twin subtree
                   and insist commuting steps really did yield an
                   isomorphic (same-verdict) subtree. *)
                let info = node_data path depth key parent in
                let res' = solve_node info path depth switches key lin in
                if res' <> res then
                  invalid_arg
                    "Lincheck: reduction cross-check failed — commutation-equivalent subtrees \
                     disagree";
                res'
            | None ->
                let info = node_data path depth key parent in
                let res = solve_node info path depth switches key lin in
                Hashtbl.replace m mkey res;
                res)
        | _ ->
            let info = node_data path depth key parent in
            solve_node info path depth switches key lin
      and solve_node info path depth switches key (lin : linearization) =
        let children = match max_depth with Some d when depth >= d -> [] | _ -> info.enabled in
        (* Conservative preemption bound: past [preempt_bound] switches
           only the currently scheduled process may continue (while it
           stays enabled).  Dropping children of a ∀-quantified game node
           preserves refutations — every explored node is a real node —
           and a fully successful game degrades to [Budget_preempt]. *)
        let children =
          match preempt_bound with
          | Some b when switches >= b -> (
              match path with
              | lastp :: _ when List.mem lastp children ->
                  if List.exists (fun p -> p <> lastp) children then pruned := true;
                  [ lastp ]
              | _ -> children)
          | _ -> children
        in
        match validate_over info.rec_arr lin with
        | None ->
            incr validate_failures;
            last_fail := Prof.Kill_mismatch;
            false
        | Some states -> (
            match extensions_over info.rec_arr info.pred info.completed_mask lin states with
            | [] ->
                (* No valid linearization extends the parent's choice.  If
                   even the empty prefix admits none, the execution itself is
                   not linearizable. *)
                incr dead_ends;
                if not (root_linearizable info) then
                  raise (Found_not_linearizable (List.rev path));
                if depth > !wit_len then begin
                  wit_len := depth;
                  wit_log := (depth, List.rev path) :: !wit_log
                end;
                last_fail := Prof.Kill_dead_end;
                false
            | candidates ->
                cand_generated := !cand_generated + List.length candidates;
                if children = [] then true
                else
                  let lastp_enabled =
                    match path with lastp :: _ -> List.mem lastp info.enabled | [] -> false
                  in
                  let kids =
                    List.map
                      (fun p ->
                        let sw =
                          match path with
                          | lastp :: _ when p <> lastp && lastp_enabled -> switches + 1
                          | _ -> switches
                        in
                        (p, sw, key ^ String.make 1 (Char.unsafe_chr p)))
                      children
                  in
                  (* [List.exists], unrolled to count refuted candidates. *)
                  let rec try_candidates = function
                    | [] ->
                        (* every candidate died at some child: the caller's
                           candidate is refuted by its futures *)
                        last_fail := Prof.Kill_futures;
                        false
                    | cand :: rest ->
                        if
                          List.for_all
                            (fun (p, sw, k) -> solve (p :: path) (depth + 1) sw k (Some info) cand)
                            kids
                        then true
                        else begin
                          incr cand_killed;
                          (match lane with Some l -> Prof.kill l !last_fail | None -> ());
                          try_candidates rest
                        end
                  in
                  try_candidates candidates)
      in
      {
        en_nodes = nodes;
        en_hits = cache_hits;
        en_frontier = max_frontier;
        en_cand = cand_generated;
        en_killed = cand_killed;
        en_dead = dead_ends;
        en_vfail = validate_failures;
        en_wit = wit_log;
        en_tripped = tripped;
        en_pruned = pruned;
        en_solve = solve;
      }
    in
    let mk_stats ~nodes ~hits ~frontier ~cand ~killed ~dead ~vfail =
      {
        nodes;
        cache_hits = hits;
        max_frontier_depth = frontier;
        candidates_generated = cand;
        candidates_killed = killed;
        dead_ends = dead;
        validate_failures = vfail;
        elapsed_ns = Obs.now_ns () - t0;
      }
    in
    let trace_final st =
      match tracer with
      | Some tr ->
          let ts_us = float_of_int st.elapsed_ns /. 1e3 in
          Obs_trace.counter tr ~cat:"lincheck" ~ts_us "nodes" (float_of_int st.nodes);
          Obs_trace.complete tr ~cat:"lincheck" ~ts_us:0. ~dur_us:ts_us "check_strong"
      | None -> ()
    in
    let run_sequential () =
      let on_tick =
        match (on_progress, tracer) with
        | None, None -> None
        | _ ->
            Some
              (fun ~nodes ~frontier ->
                let elapsed_ns = Obs.now_ns () - t0 in
                (match on_progress with Some f -> f ~nodes ~elapsed_ns | None -> ());
                match tracer with
                | Some tr ->
                    let ts_us = float_of_int elapsed_ns /. 1e3 in
                    Obs_trace.counter tr ~cat:"lincheck" ~ts_us "nodes" (float_of_int nodes);
                    Obs_trace.counter tr ~cat:"lincheck" ~ts_us "max_frontier_depth"
                      (float_of_int frontier)
                | None -> ())
      in
      let lane = lane_for 0 in
      let eng = new_engine ~on_tick ~poll:ignore ~lane ~cov:(cov_for 0) ~bump_global:ignore () in
      (match lane with Some l -> Prof.begin_span l Prof.Solve () | None -> ());
      let verdict =
        match eng.en_solve [] 0 0 "" None [] with
        | true ->
            if !(eng.en_pruned) then
              Out_of_budget { nodes = !(eng.en_nodes); reason = Budget_preempt }
            else Strongly_linearizable { nodes = !(eng.en_nodes) }
        | false ->
            let witness = match !(eng.en_wit) with [] -> [] | (_, w) :: _ -> w in
            Not_strongly_linearizable { witness; nodes = !(eng.en_nodes) }
        | exception Found_not_linearizable schedule -> Not_linearizable { schedule }
        | exception Budget_exhausted ->
            (match lane with Some l -> Prof.kill l Prof.Kill_budget | None -> ());
            Out_of_budget { nodes = !(eng.en_nodes); reason = !(eng.en_tripped) }
      in
      (match lane with Some l -> Prof.end_span l | None -> ());
      let st =
        mk_stats ~nodes:!(eng.en_nodes) ~hits:!(eng.en_hits) ~frontier:!(eng.en_frontier)
          ~cand:!(eng.en_cand) ~killed:!(eng.en_killed) ~dead:!(eng.en_dead)
          ~vfail:!(eng.en_vfail)
      in
      trace_final st;
      (verdict, st)
    in
    (* Parallel solving.  The root node's history is empty, so its only
       minimal extension is the empty linearization: the game reduces to
       "every top-level subtree must succeed with lin = []", and those
       subtrees — one per process enabled at the root — are the parallel
       columns.  Their schedule prefixes are disjoint, so each worker
       engine's cache and counters reproduce exactly the slice of the
       sequential run that falls inside its column; the merge walks the
       columns in sequential order and stops where the one-engine run
       would have stopped, making verdict, witness and node counts
       independent of [jobs].  Heartbeats aggregate across workers: every
       engine bumps one shared atomic per fresh node and worker 0's
       engine emits the beat (on its own node/time cadence) reading that
       total — thread-safe, and zero-cost when nobody listens.  Any
       budget trip in the walked prefix falls back to an actual
       sequential run: budgeted work is bounded, and only the sequential
       engine can say precisely where it stops. *)
    let run_parallel ~nworkers () =
      let trip reason =
        let st = mk_stats ~nodes:1 ~hits:0 ~frontier:0 ~cand:0 ~killed:0 ~dead:0 ~vfail:0 in
        trace_final st;
        (Out_of_budget { nodes = 1; reason }, st)
      in
      if max_nodes < 1 then trip Budget_nodes
      else if
        match budget_ms with Some ms -> Obs.now_ns () - t0 > ms * 1_000_000 | None -> false
      then trip Budget_wall
      else if match budget_heap_mb with Some mb -> heap_mb_now () > mb | None -> false then
        trip Budget_heap
      else if match interrupt with Some f -> f () | None -> false then trip Budget_interrupt
      else begin
        (* Root accounting, exactly as the sequential engine does it:
           node 1, anchored (depth 0), one generated candidate. *)
        let w0 = Sim.run_schedule prog [] in
        let root_info = info_of_world w0 in
        cross_check root_info w0;
        let columns = match max_depth with Some d when d <= 0 -> [] | _ -> root_info.enabled in
        (* The root node is evaluated here, not in any worker column;
           observe it on shard 0 (as the merge lane does for profiling). *)
        (match cov_for 0 with
        | Some sh -> Coverage.observe_node sh ~depth:0 ~branching:(List.length columns) (Sim.trace w0)
        | None -> ());
        if columns = [] then begin
          let st = mk_stats ~nodes:1 ~hits:0 ~frontier:0 ~cand:1 ~killed:0 ~dead:0 ~vfail:0 in
          trace_final st;
          (Strongly_linearizable { nodes = 1 }, st)
        end
        else begin
          let cols = Array.of_list columns in
          let ncols = Array.length cols in
          (* Aggregated heartbeat: all engines bump this (root already
             counted, matching the merge's accounting); worker 0 reads
             it when its own cadence fires. *)
          let want_ticks = on_progress <> None || tracer <> None in
          let global_nodes = Atomic.make 1 in
          let bump_global = if want_ticks then fun () -> Atomic.incr global_nodes else ignore in
          let par_on_tick =
            if not want_ticks then None
            else
              Some
                (fun ~nodes:_ ~frontier ->
                  let nodes = Atomic.get global_nodes in
                  let elapsed_ns = Obs.now_ns () - t0 in
                  (match on_progress with Some f -> f ~nodes ~elapsed_ns | None -> ());
                  match tracer with
                  | Some tr ->
                      let ts_us = float_of_int elapsed_ns /. 1e3 in
                      Obs_trace.counter tr ~cat:"lincheck" ~ts_us "nodes" (float_of_int nodes);
                      Obs_trace.counter tr ~cat:"lincheck" ~ts_us "max_frontier_depth"
                        (float_of_int frontier)
                  | None -> ())
          in
          (* Earliest column at which the sequential walk stops (failed
             candidate, refutation, or budget trip): columns after it are
             irrelevant, so workers abandon them. *)
          let min_stop = Atomic.make max_int in
          let note_stop c =
            let rec go () =
              let cur = Atomic.get min_stop in
              if c < cur && not (Atomic.compare_and_set min_stop cur c) then go ()
            in
            go ()
          in
          let results : col_result option array = Array.make ncols None in
          (* Checkpoint bookkeeping: the cumulative column list, emitted
             (sorted) after every completed column.  The list is updated
             under a lock; the caller's [cp_emit] runs outside it so a
             raising emitter (serve's fault injection) cannot wedge the
             other workers. *)
          let ck_lock = Mutex.create () in
          let ck_cols =
            ref
              (match checkpointing with
              | Some { cp_resume = Some r; _ } ->
                  List.filter (fun cc -> cc.col_index >= 0 && cc.col_index < ncols) r.ck_columns
              | _ -> [])
          in
          let emit_col cp (cc : col_checkpoint) =
            Mutex.lock ck_lock;
            ck_cols :=
              List.sort
                (fun a b -> compare a.col_index b.col_index)
                (cc :: List.filter (fun c -> c.col_index <> cc.col_index) !ck_cols);
            let snapshot = !ck_cols in
            Mutex.unlock ck_lock;
            cp.cp_emit { ck_config = cp.cp_config; ck_columns = snapshot }
          in
          (* Resume: recorded columns are final — pre-fill their results
             so no worker re-solves them, and propagate any recorded
             stopping column so later columns abandon immediately. *)
          (match checkpointing with
          | Some { cp_resume = Some r; _ } ->
              List.iter
                (fun (cc : col_checkpoint) ->
                  if cc.col_index >= 0 && cc.col_index < ncols then begin
                    results.(cc.col_index) <- Some (col_result_of_checkpoint cc);
                    match cc.col_outcome with
                    | "failed" | "not-lin" -> note_stop cc.col_index
                    | _ -> ()
                  end)
                r.ck_columns
          | _ -> ());
          let abandoned =
            {
              cr_outcome = Col_abandoned;
              cr_nodes = 0;
              cr_hits = 0;
              cr_frontier = 0;
              cr_cand = 0;
              cr_killed = 0;
              cr_dead = 0;
              cr_vfail = 0;
              cr_wit = [];
              cr_pruned = false;
            }
          in
          let run_column ~lane ~cov ~on_tick c =
            if Atomic.get min_stop < c then begin
              (match lane with
              | Some l ->
                  Prof.note_column l ~col:c ~proc:cols.(c) ~nodes:0 ~outcome:"abandoned"
              | None -> ());
              results.(c) <- Some abandoned
            end
            else begin
              let eng =
                new_engine ~on_tick
                  ~poll:(fun () -> if Atomic.get min_stop < c then raise Abandoned)
                  ~lane ~cov ~bump_global ()
              in
              let p = cols.(c) in
              (match lane with
              | Some l -> Prof.begin_span l Prof.Solve ~label:(Printf.sprintf "col %d" c) ()
              | None -> ());
              let outcome =
                match
                  eng.en_solve [ p ] 1 0 (String.make 1 (Char.unsafe_chr p)) (Some root_info) []
                with
                | true -> Col_ok true
                | false ->
                    note_stop c;
                    Col_ok false
                | exception Found_not_linearizable schedule ->
                    note_stop c;
                    Col_not_lin schedule
                | exception Budget_exhausted ->
                    note_stop c;
                    (match lane with Some l -> Prof.kill l Prof.Kill_budget | None -> ());
                    Col_tripped !(eng.en_tripped)
                | exception Abandoned -> Col_abandoned
              in
              (match lane with
              | Some l ->
                  Prof.end_span l;
                  let tag =
                    match outcome with
                    | Col_ok true -> "ok"
                    | Col_ok false -> "failed"
                    | Col_not_lin _ -> "not-lin"
                    | Col_tripped _ -> "budget"
                    | Col_abandoned -> "abandoned"
                  in
                  Prof.note_column l ~col:c ~proc:p ~nodes:!(eng.en_nodes) ~outcome:tag
              | None -> ());
              results.(c) <-
                Some
                  {
                    cr_outcome = outcome;
                    cr_nodes = !(eng.en_nodes);
                    cr_hits = !(eng.en_hits);
                    cr_frontier = !(eng.en_frontier);
                    cr_cand = !(eng.en_cand);
                    cr_killed = !(eng.en_killed);
                    cr_dead = !(eng.en_dead);
                    cr_vfail = !(eng.en_vfail);
                    cr_wit = List.rev !(eng.en_wit);
                    cr_pruned = !(eng.en_pruned);
                  };
              (* Completed columns (ok / failed / not-lin) are final facts
                 about the tree and go into the checkpoint; tripped or
                 abandoned columns are not resumable state. *)
              match checkpointing with
              | Some cp -> (
                  match outcome with
                  | Col_tripped _ | Col_abandoned -> ()
                  | _ ->
                      let tag, sched =
                        match outcome with
                        | Col_ok true -> ("ok", [])
                        | Col_ok false -> ("failed", [])
                        | Col_not_lin s -> ("not-lin", s)
                        | Col_tripped _ | Col_abandoned -> assert false
                      in
                      emit_col cp
                        {
                          col_index = c;
                          col_outcome = tag;
                          col_schedule = sched;
                          col_nodes = !(eng.en_nodes);
                          col_hits = !(eng.en_hits);
                          col_frontier = !(eng.en_frontier);
                          col_cand = !(eng.en_cand);
                          col_killed = !(eng.en_killed);
                          col_dead = !(eng.en_dead);
                          col_vfail = !(eng.en_vfail);
                          col_wit = List.rev !(eng.en_wit);
                          col_pruned = !(eng.en_pruned);
                        })
              | None -> ()
            end
          in
          (* Work-stealing dispatch (nworkers >= 2): columns are seeded
             round-robin as top-level tasks; fork points inside them
             split hot subtrees onto the deques, so the critical column
             no longer serializes the run.  See the task-engine comment
             above [task_outcome] for the determinism argument. *)
          let run_stealing () =
            let first_error : exn option Atomic.t = Atomic.make None in
            let note_error e =
              if Atomic.get first_error = None then Atomic.set first_error (Some e)
            in
            let remaining = Atomic.make 0 in
            let on_steal =
              match profiler with
              | None -> None
              | Some p ->
                  Some
                    (fun ~thief ~victim:_ ~stolen:_ ~dur_ns ->
                      let l = Prof.lane p ~domain:thief in
                      Prof.note_span l Prof.Steal ~start_ns:(Obs.now_ns () - dur_ns) ~dur_ns ())
            in
            let pool = Steal_pool.create ~workers:nworkers ?on_steal () in
            (* Per-column executed-node budget, mirroring the sequential
               engine's per-column [max_nodes]: includes speculative work,
               so a trip under stealing is conservative — harmless, since
               unbudgeted runs never touch it and tripped runs either fall
               back to the sequential engine (no checkpointing) or degrade
               to a partial [Out_of_budget] (checkpointing). *)
            let col_exec = Array.init ncols (fun _ -> Atomic.make 0) in
            (* Checkpointed runs never fork inside a column: a whole
               column per task keeps its executed-node count exactly the
               sequential engine's, so budget-trip points — which a
               checkpoint surfaces as a final [Out_of_budget] — stay
               byte-identical across worker counts.  (Without
               checkpointing a trip falls back to the sequential engine,
               so speculative over-counting is invisible there.)
               Reduced runs never fork either: the memo's hit pattern is
               the sequential engine's only if one table sees the whole
               column in DFS order — sibling tasks racing on a shared
               memo (or each starting one empty) would hit differently
               than the sequential walk, changing counts with [jobs].
               One task per column = one memo per column = the same
               exploration at every worker count. *)
            let grain =
              if reduce then 0 else match checkpointing with Some _ -> 0 | None -> steal_grain
            in
            (* Heartbeat: only worker 0 beats, on its own fresh-node and
               256-event time cadences, reading the canonical global total
               (bumped at column completion) so beats never overshoot the
               verdict's node count. *)
            let ticker =
              Array.init nworkers (fun w ->
                  match par_on_tick with
                  | Some beat when w = 0 ->
                      let ev = ref 0 in
                      let freshes = ref 0 in
                      let next_beat = ref (t0 + (progress_every_ms * 1_000_000)) in
                      let time_cadence = progress_every_ms > 0 in
                      fun ~fresh ~frontier ->
                        if fresh then begin
                          incr freshes;
                          if !freshes mod progress_every = 0 then beat ~nodes:0 ~frontier
                        end;
                        if time_cadence then begin
                          incr ev;
                          if !ev land 255 = 0 then begin
                            let now = Obs.now_ns () in
                            if now >= !next_beat then begin
                              next_beat := now + (progress_every_ms * 1_000_000);
                              beat ~nodes:0 ~frontier
                            end
                          end
                        end
                  | _ -> fun ~fresh:_ ~frontier:_ -> ())
            in
            (* Run one subtree as the current task on [worker]: returns
               its outcome and counters; never raises [Task_stop]. *)
            let rec run_subtree ~worker ~col ~guards ~chain path0 depth0 switches0 key0 parent0
                lin0 =
              let k = new_task_counters () in
              let local : (string, node_info) Hashtbl.t = Hashtbl.create 64 in
              (* Per-task reduction memo.  Under [reduce] the grain is
                 forced to 0, so one task covers one whole column and
                 this table is exactly the per-column engine's. *)
              let memo : (char * int * int * int * linearization, bool) Hashtbl.t option =
                if reduce then Some (Hashtbl.create 256) else None
              in
              let last_fail = ref Prof.Kill_mismatch in
              let lane = lane_for worker in
              let cov = cov_for worker in
              let tick = ticker.(worker) in
              let poll () =
                if Atomic.get min_stop < col then raise (Task_stop T_col_abandoned);
                List.iter
                  (fun ((g : task_group), i) ->
                    if i > Atomic.get g.g_failed then raise (Task_stop T_aborted))
                  guards
              in
              let ev_world : (S.op, S.resp) Sim.t option ref = ref None in
              let ev_path : int list ref = ref [] in
              let world_at path =
                match (path, !ev_world) with
                (* Same node re-requested (reduction fingerprint probe):
                   the spine already sits there. *)
                | p, Some w when p == !ev_path -> w
                | p :: tl, Some w when tl == !ev_path ->
                    Sim.step w p;
                    ev_path := path;
                    w
                | _ ->
                    let w = Sim.run_schedule prog (List.rev path) in
                    ev_world := Some w;
                    ev_path := path;
                    w
              in
              let find_chain key =
                let rec go = function
                  | [] -> None
                  | tbl :: rest -> (
                      match Hashtbl.find_opt tbl key with Some _ as r -> r | None -> go rest)
                in
                go chain
              in
              let node_data path depth key parent =
                match
                  match Hashtbl.find_opt local key with
                  | Some _ as r -> r
                  | None -> find_chain key
                with
                | Some info ->
                    k.k_hits <- k.k_hits + 1;
                    tick ~fresh:false ~frontier:k.k_frontier;
                    info
                | None ->
                    poll ();
                    (* Count the node first, trip after — the sequential
                       engine counts the node that exhausts the budget, and
                       column-sum trip accounting must match it exactly. *)
                    let executed = Atomic.fetch_and_add col_exec.(col) 1 + 1 in
                    k.k_nodes <- k.k_nodes + 1;
                    if executed > max_nodes then raise (Task_stop (T_trip Budget_nodes));
                    (match budget_ms with
                    | Some ms when Obs.now_ns () - t0 > ms * 1_000_000 ->
                        raise (Task_stop (T_trip Budget_wall))
                    | _ -> ());
                    (match budget_heap_mb with
                    | Some mb when heap_mb_now () > mb -> raise (Task_stop (T_trip Budget_heap))
                    | _ -> ());
                    (match interrupt with
                    | Some f when f () -> raise (Task_stop (T_trip Budget_interrupt))
                    | _ -> ());
                    let b = if depth >= 64 then 63 else if depth < 0 then 0 else depth in
                    k.k_depth_hist.(b) <- k.k_depth_hist.(b) + 1;
                    tick ~fresh:true ~frontier:k.k_frontier;
                    let w = world_at path in
                    let info =
                      match parent with Some pi -> extend_info pi w | None -> info_of_world w
                    in
                    if depth mod stride = 0 then begin
                      match lane with
                      | None -> cross_check info w
                      | Some l ->
                          let s = Obs.now_ns () in
                          cross_check info w;
                          Prof.cross_checked l ~start_ns:s ~stop_ns:(Obs.now_ns ())
                    end;
                    (match cov with
                    | Some sh ->
                        let branching =
                          match max_depth with
                          | Some d when depth >= d -> 0
                          | _ -> List.length info.enabled
                        in
                        Coverage.observe_node sh ~depth ~branching (Sim.trace w)
                    | None -> ());
                    Hashtbl.add local key info;
                    info
              in
              (* Fold a counted child's counters and witness log into
                 this task's, in canonical (temporal) order. *)
              let absorb (kc : task_counters) =
                k.k_nodes <- k.k_nodes + kc.k_nodes;
                k.k_hits <- k.k_hits + kc.k_hits;
                if kc.k_frontier > k.k_frontier then k.k_frontier <- kc.k_frontier;
                k.k_cand <- k.k_cand + kc.k_cand;
                k.k_killed <- k.k_killed + kc.k_killed;
                k.k_dead <- k.k_dead + kc.k_dead;
                k.k_vfail <- k.k_vfail + kc.k_vfail;
                for i = 0 to 63 do
                  k.k_depth_hist.(i) <- k.k_depth_hist.(i) + kc.k_depth_hist.(i)
                done;
                for i = 0 to n_kill_reasons - 1 do
                  k.k_kills.(i) <- k.k_kills.(i) + kc.k_kills.(i)
                done;
                k.k_prunes <- k.k_prunes + kc.k_prunes;
                if kc.k_pruned then k.k_pruned <- true;
                List.iter
                  (fun (d, pth) ->
                    if d > k.k_wit_len then begin
                      k.k_wit_len <- d;
                      k.k_wit <- (d, pth) :: k.k_wit
                    end)
                  (List.rev kc.k_wit)
              in
              (* Accumulated counted tables per fork node (keyed by its
                 schedule prefix) and child index, persisting across the
                 ancestors' candidate re-walks within this task. *)
              let forks : (string, (string, node_info) Hashtbl.t list ref array) Hashtbl.t =
                Hashtbl.create 8
              in
              let compact r =
                if List.length !r > 8 then begin
                  let m = Hashtbl.create 256 in
                  List.iter (fun t -> Hashtbl.iter (Hashtbl.replace m) t) !r;
                  r := [ m ]
                end
              in
              let rec solve path depth switches key parent (lin : linearization) =
                if depth > k.k_frontier then k.k_frontier <- depth;
                match memo with
                | Some m when depth > 0 -> (
                    (* Probe before registering, as in the sequential
                       engine: a hit answers the subtree and the pruned
                       node is never counted or cached. *)
                    let fp =
                      match
                        match Hashtbl.find_opt local key with
                        | Some _ as r -> r
                        | None -> find_chain key
                      with
                      | Some info -> info.fp
                      | None -> (
                          let w = world_at path in
                          match parent with
                          | Some pi ->
                              Reduct.fp_feed_list pi.fp (Sim.events_from w ~from:pi.trace_len)
                          | None -> Reduct.fp_feed_list Reduct.fp_empty (Sim.trace w))
                    in
                    let mkey = (key.[0], Reduct.fp_value fp, depth, switches, lin) in
                    match Hashtbl.find_opt m mkey with
                    | Some res when not reduce_check ->
                        k.k_prunes <- k.k_prunes + 1;
                        if not res then last_fail := Prof.Kill_pruned;
                        res
                    | Some res ->
                        let info = node_data path depth key parent in
                        let res' = solve_node info path depth switches key lin in
                        if res' <> res then
                          invalid_arg
                            "Lincheck: reduction cross-check failed — commutation-equivalent \
                             subtrees disagree";
                        res'
                    | None ->
                        let info = node_data path depth key parent in
                        let res = solve_node info path depth switches key lin in
                        Hashtbl.replace m mkey res;
                        res)
                | _ ->
                    let info = node_data path depth key parent in
                    solve_node info path depth switches key lin
              and solve_node info path depth switches key (lin : linearization) =
                let children =
                  match max_depth with Some d when depth >= d -> [] | _ -> info.enabled
                in
                let children =
                  match preempt_bound with
                  | Some b when switches >= b -> (
                      match path with
                      | lastp :: _ when List.mem lastp children ->
                          if List.exists (fun p -> p <> lastp) children then k.k_pruned <- true;
                          [ lastp ]
                      | _ -> children)
                  | _ -> children
                in
                match validate_over info.rec_arr lin with
                | None ->
                    k.k_vfail <- k.k_vfail + 1;
                    last_fail := Prof.Kill_mismatch;
                    false
                | Some states -> (
                    match
                      extensions_over info.rec_arr info.pred info.completed_mask lin states
                    with
                    | [] ->
                        k.k_dead <- k.k_dead + 1;
                        if not (root_linearizable info) then
                          raise (Task_stop (T_notlin (List.rev path)));
                        if depth > k.k_wit_len then begin
                          k.k_wit_len <- depth;
                          k.k_wit <- (depth, List.rev path) :: k.k_wit
                        end;
                        last_fail := Prof.Kill_dead_end;
                        false
                    | candidates ->
                        k.k_cand <- k.k_cand + List.length candidates;
                        if children = [] then true
                        else begin
                          let lastp_enabled =
                            match path with
                            | lastp :: _ -> List.mem lastp info.enabled
                            | [] -> false
                          in
                          let kids =
                            List.map
                              (fun p ->
                                let sw =
                                  match path with
                                  | lastp :: _ when p <> lastp && lastp_enabled -> switches + 1
                                  | _ -> switches
                                in
                                (p, sw, key ^ String.make 1 (Char.unsafe_chr p)))
                              children
                          in
                          let nkids = List.length kids in
                          if depth > grain || nkids < 2 then
                            (* Below the steal grain: the sequential
                               candidate loop, inside this task. *)
                            let rec try_candidates = function
                              | [] ->
                                  last_fail := Prof.Kill_futures;
                                  false
                              | cand :: rest ->
                                  if
                                    List.for_all
                                      (fun (p, sw, kk) ->
                                        solve (p :: path) (depth + 1) sw kk (Some info) cand)
                                      kids
                                  then true
                                  else begin
                                    k.k_killed <- k.k_killed + 1;
                                    k.k_kills.(Prof.kill_index !last_fail) <-
                                      k.k_kills.(Prof.kill_index !last_fail) + 1;
                                    try_candidates rest
                                  end
                            in
                            try_candidates candidates
                          else begin
                            (* Fork point: each candidate's children go out
                               as tasks, joined by canonical resolution. *)
                            let kid_arr = Array.of_list kids in
                            let accs =
                              match Hashtbl.find_opt forks key with
                              | Some a -> a
                              | None ->
                                  let a = Array.init nkids (fun _ -> ref []) in
                                  Hashtbl.add forks key a;
                                  a
                            in
                            let rec try_candidates = function
                              | [] ->
                                  last_fail := Prof.Kill_futures;
                                  false
                              | cand :: rest -> (
                                  let group =
                                    {
                                      g_pending = Atomic.make nkids;
                                      g_failed = Atomic.make max_int;
                                    }
                                  in
                                  let slots =
                                    Array.init nkids (fun _ ->
                                        { r_out = T_aborted; r_ctr = None })
                                  in
                                  let kid_task i w =
                                    let slot = slots.(i) in
                                    (try
                                       let p, sw, kk = kid_arr.(i) in
                                       let out, kc =
                                         run_subtree ~worker:w ~col
                                           ~guards:((group, i) :: guards)
                                           ~chain:(!(accs.(i)) @ (local :: chain))
                                           (p :: path) (depth + 1) sw kk (Some info) cand
                                       in
                                       slot.r_ctr <- Some kc;
                                       slot.r_out <- out
                                     with e ->
                                       note_error e;
                                       slot.r_out <- T_aborted);
                                    (match slot.r_out with
                                    | T_ok -> ()
                                    | _ ->
                                        let rec lower () =
                                          let cur = Atomic.get group.g_failed in
                                          if
                                            i < cur
                                            && not
                                                 (Atomic.compare_and_set group.g_failed cur i)
                                          then lower ()
                                        in
                                        lower ());
                                    Atomic.decr group.g_pending
                                  in
                                  for i = nkids - 1 downto 1 do
                                    Steal_pool.push pool ~worker (kid_task i)
                                  done;
                                  kid_task 0 worker;
                                  Steal_pool.help_until pool ~worker (fun () ->
                                      Atomic.get group.g_pending = 0);
                                  (* Canonical resolution: fold children in
                                     order up to and including the first
                                     failure; discard the rest. *)
                                  let fail = ref None in
                                  (try
                                     for i = 0 to nkids - 1 do
                                       (match slots.(i).r_ctr with
                                       | Some kc ->
                                           absorb kc;
                                           accs.(i) := kc.k_tables @ !(accs.(i));
                                           compact accs.(i)
                                       | None -> ());
                                       match slots.(i).r_out with
                                       | T_ok -> ()
                                       | out ->
                                           fail := Some out;
                                           raise Exit
                                     done
                                   with Exit -> ());
                                  match !fail with
                                  | None -> true
                                  | Some (T_fail reason) ->
                                      k.k_killed <- k.k_killed + 1;
                                      k.k_kills.(Prof.kill_index reason) <-
                                        k.k_kills.(Prof.kill_index reason) + 1;
                                      try_candidates rest
                                  | Some (T_ok | T_notlin _ | T_trip _ | T_col_abandoned
                                         | T_aborted) as f -> (
                                      match f with
                                      | Some T_ok -> assert false
                                      | Some o -> raise (Task_stop o)
                                      | None -> assert false))
                            in
                            try_candidates candidates
                          end
                        end)
              in
              (match lane with
              | Some l -> Prof.begin_span l Prof.Solve ~label:(Printf.sprintf "col %d" col) ()
              | None -> ());
              let out =
                match
                  poll ();
                  solve path0 depth0 switches0 key0 parent0 lin0
                with
                | true -> T_ok
                | false -> T_fail !last_fail
                | exception Task_stop o -> o
              in
              (match lane with Some l -> Prof.end_span l | None -> ());
              let owned = ref [ local ] in
              Hashtbl.iter
                (fun _ accs -> Array.iter (fun r -> owned := !r @ !owned) accs)
                forks;
              k.k_tables <- !owned;
              (out, k)
            in
            (* One column, run to completion as a task tree, its counted
               totals absorbed onto the completing worker's lane under a
               Share span, then published for the canonical merge. *)
            let column_task c w =
              if Atomic.get min_stop < c then begin
                (match lane_for w with
                | Some l ->
                    Prof.note_column l ~col:c ~proc:cols.(c) ~nodes:0 ~outcome:"abandoned"
                | None -> ());
                results.(c) <- Some abandoned
              end
              else begin
                let p = cols.(c) in
                let out, k =
                  try
                    run_subtree ~worker:w ~col:c ~guards:[] ~chain:[] [ p ] 1 0
                      (String.make 1 (Char.unsafe_chr p))
                      (Some root_info) []
                  with e ->
                    note_error e;
                    (T_col_abandoned, new_task_counters ())
                in
                let outcome =
                  match out with
                  | T_ok -> Col_ok true
                  | T_fail _ ->
                      note_stop c;
                      Col_ok false
                  | T_notlin s ->
                      note_stop c;
                      Col_not_lin s
                  | T_trip r ->
                      note_stop c;
                      k.k_kills.(Prof.kill_index Prof.Kill_budget) <-
                        k.k_kills.(Prof.kill_index Prof.Kill_budget) + 1;
                      Col_tripped r
                  | T_col_abandoned | T_aborted -> Col_abandoned
                in
                (match lane_for w with
                | Some l ->
                    Prof.begin_span l Prof.Share ~label:(Printf.sprintf "col %d" c) ();
                    Prof.add_nodes l k.k_nodes;
                    Prof.add_hits l k.k_hits;
                    Prof.add_depth_hist l k.k_depth_hist;
                    Prof.add_kills l k.k_kills;
                    Prof.add_prunes l k.k_prunes;
                    let tag =
                      match outcome with
                      | Col_ok true -> "ok"
                      | Col_ok false -> "failed"
                      | Col_not_lin _ -> "not-lin"
                      | Col_tripped _ -> "budget"
                      | Col_abandoned -> "abandoned"
                    in
                    Prof.note_column l ~col:c ~proc:p ~nodes:k.k_nodes ~outcome:tag;
                    Prof.end_span l
                | None -> ());
                (if want_ticks && outcome <> Col_abandoned then
                   ignore (Atomic.fetch_and_add global_nodes k.k_nodes));
                results.(c) <-
                  Some
                    {
                      cr_outcome = outcome;
                      cr_nodes = k.k_nodes;
                      cr_hits = k.k_hits;
                      cr_frontier = k.k_frontier;
                      cr_cand = k.k_cand;
                      cr_killed = k.k_killed;
                      cr_dead = k.k_dead;
                      cr_vfail = k.k_vfail;
                      cr_wit = List.rev k.k_wit;
                      cr_pruned = k.k_pruned;
                    };
                match checkpointing with
                | Some cp -> (
                    match outcome with
                    | Col_tripped _ | Col_abandoned -> ()
                    | _ ->
                        let tag, sched =
                          match outcome with
                          | Col_ok true -> ("ok", [])
                          | Col_ok false -> ("failed", [])
                          | Col_not_lin s -> ("not-lin", s)
                          | Col_tripped _ | Col_abandoned -> assert false
                        in
                        emit_col cp
                          {
                            col_index = c;
                            col_outcome = tag;
                            col_schedule = sched;
                            col_nodes = k.k_nodes;
                            col_hits = k.k_hits;
                            col_frontier = k.k_frontier;
                            col_cand = k.k_cand;
                            col_killed = k.k_killed;
                            col_dead = k.k_dead;
                            col_vfail = k.k_vfail;
                            col_wit = List.rev k.k_wit;
                            col_pruned = k.k_pruned;
                          })
                | None -> ()
              end
            in
            for c = ncols - 1 downto 0 do
              if results.(c) = None then begin
                Atomic.incr remaining;
                Steal_pool.push pool ~worker:(c mod nworkers) (fun w ->
                    column_task c w;
                    Atomic.decr remaining)
              end
            done;
            Steal_pool.run pool (fun w ->
                Steal_pool.help_until pool ~worker:w (fun () -> Atomic.get remaining = 0));
            match Atomic.get first_error with Some e -> raise e | None -> ()
          in
          (if nworkers <= 1 then begin
             (* One worker: today's per-column engine, column by column —
                the exact code path every single-domain run (and every
                jobs-routed run on a one-core box) has always taken. *)
             let lane = lane_for 0 in
             let cov = cov_for 0 in
             for c = 0 to ncols - 1 do
               if results.(c) = None then run_column ~lane ~cov ~on_tick:par_on_tick c
             done
           end
           else run_stealing ());
          (* Deterministic merge: sequential column order, strictly-deeper
             witness rule, stop at the first non-succeeding column. *)
          let acc_nodes = ref 1 in
          let acc_hits = ref 0 in
          let acc_frontier = ref 0 in
          let acc_cand = ref 1 in
          let acc_killed = ref 0 in
          let acc_dead = ref 0 in
          let acc_vfail = ref 0 in
          let acc_pruned = ref false in
          let witness = ref [] in
          let wit_len = ref 0 in
          let finish_par verdict =
            let st =
              mk_stats ~nodes:!acc_nodes ~hits:!acc_hits ~frontier:!acc_frontier
                ~cand:!acc_cand ~killed:!acc_killed ~dead:!acc_dead ~vfail:!acc_vfail
            in
            trace_final st;
            (verdict, st)
          in
          let exception Fallback in
          let exception Done of verdict in
          (* With checkpointing active a tripped budget must not discard
             the completed columns by re-running sequentially: degrade to
             [Out_of_budget] with the merged partial stats instead
             (column-granular accounting, documented in the mli). *)
          let exception Trip of budget_reason in
          let ckpt = checkpointing <> None in
          let merge_lane = lane_for 0 in
          (* The root node is evaluated here, not in any worker column;
             attribute it to the merge lane so lane totals sum to the
             verdict's node count. *)
          (match merge_lane with Some l -> Prof.fresh l ~depth:0 | None -> ());
          (match merge_lane with Some l -> Prof.begin_span l Prof.Merge () | None -> ());
          let end_merge () = match merge_lane with Some l -> Prof.end_span l | None -> () in
          try
            for c = 0 to ncols - 1 do
              let r = match results.(c) with Some r -> r | None -> raise Fallback in
              (* The walk only reaches abandoned columns if a worker raced
                 a stale [min_stop]; recover with the sequential engine. *)
              (match r.cr_outcome with Col_abandoned -> raise Fallback | _ -> ());
              if (not ckpt) && !acc_nodes + r.cr_nodes > max_nodes then raise Fallback;
              acc_nodes := !acc_nodes + r.cr_nodes;
              acc_hits := !acc_hits + r.cr_hits;
              if r.cr_frontier > !acc_frontier then acc_frontier := r.cr_frontier;
              acc_cand := !acc_cand + r.cr_cand;
              acc_killed := !acc_killed + r.cr_killed;
              acc_dead := !acc_dead + r.cr_dead;
              acc_vfail := !acc_vfail + r.cr_vfail;
              if r.cr_pruned then acc_pruned := true;
              List.iter
                (fun (d, pth) ->
                  if d > !wit_len then begin
                    wit_len := d;
                    witness := pth
                  end)
                r.cr_wit;
              (match r.cr_outcome with
              | Col_ok true -> ()
              | Col_ok false ->
                  incr acc_killed;
                  raise
                    (Done (Not_strongly_linearizable { witness = !witness; nodes = !acc_nodes }))
              | Col_not_lin schedule -> raise (Done (Not_linearizable { schedule }))
              | Col_tripped reason -> if ckpt then raise (Trip reason) else raise Fallback
              | Col_abandoned -> assert false);
              if ckpt && !acc_nodes > max_nodes then raise (Trip Budget_nodes)
            done;
            end_merge ();
            finish_par
              (if !acc_pruned then Out_of_budget { nodes = !acc_nodes; reason = Budget_preempt }
               else Strongly_linearizable { nodes = !acc_nodes })
          with
          | Done v ->
              end_merge ();
              finish_par v
          | Trip reason ->
              end_merge ();
              finish_par (Out_of_budget { nodes = !acc_nodes; reason })
          | Fallback ->
              end_merge ();
              run_sequential ()
        end
      end
    in
    (* Checkpointing forces the column engine even at [jobs = 1]: columns
       are the resumable unit, and column determinism makes the routed
       run's verdict and stats identical to the plain one.  The worker
       count is capped at the hardware parallelism — domains beyond the
       core count only time-slice the same cores and slow the solve down
       (and column determinism makes the cap invisible in the output). *)
    let eff = Steal_pool.effective_workers ~requested:jobs in
    if eff > 1 || checkpointing <> None then run_parallel ~nworkers:eff ()
    else run_sequential ()

  let check_strong ?max_nodes ?max_depth prog =
    fst (check_strong_stats ?max_nodes ?max_depth prog)

  (* Exposed (under [Internal]) for the witness forensics in
     [Witness.Make] (which replays the enumerator on small certificate
     subtrees) and for the crash adversary in [Adversary.Make] (which
     runs the same incremental node evaluation over its crash-extended
     tree).  Not part of the checking API proper. *)
  module Internal = struct
    let validate_prefix = validate_prefix

    let extensions = extensions

    type nonrec node_info = node_info

    let info_of_world = info_of_world

    let extend_info = extend_info

    let cross_check = cross_check

    let root_linearizable = root_linearizable

    let enabled_of (info : node_info) = info.enabled

    let records_of (info : node_info) = Array.to_list info.rec_arr

    let validate_info (info : node_info) lin = validate_over info.rec_arr lin

    let extensions_info (info : node_info) lin states =
      extensions_over info.rec_arr info.pred info.completed_mask lin states
  end

  let verdict_fields = function
    | Strongly_linearizable { nodes } ->
        [ ("verdict", Obs_json.String "strongly_linearizable"); ("nodes", Obs_json.Int nodes) ]
    | Not_linearizable { schedule } ->
        [
          ("verdict", Obs_json.String "not_linearizable");
          ("schedule", Obs_json.List (List.map (fun p -> Obs_json.Int p) schedule));
        ]
    | Not_strongly_linearizable { witness; nodes } ->
        [
          ("verdict", Obs_json.String "not_strongly_linearizable");
          ("witness", Obs_json.List (List.map (fun p -> Obs_json.Int p) witness));
          ("nodes", Obs_json.Int nodes);
        ]
    | Out_of_budget { nodes; reason = Budget_nodes } ->
        (* Pinned shape predating [budget_reason]; adding a field here
           would break the byte-identical-output contract for node-budget
           runs. *)
        [ ("verdict", Obs_json.String "out_of_budget"); ("nodes", Obs_json.Int nodes) ]
    | Out_of_budget { nodes; reason } ->
        [
          ("verdict", Obs_json.String "out_of_budget");
          ("nodes", Obs_json.Int nodes);
          ("reason", Obs_json.String (budget_reason_tag reason));
        ]
end
