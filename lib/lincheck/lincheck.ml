(* Linearizability and strong-linearizability checking.

   [Make (S)] provides two checkers for programs whose high-level
   operations follow specification [S]:

   - [check_trace] decides whether one execution trace is linearizable:
     is there a sequential execution of [S] containing every completed
     operation (with its actual response), possibly some pending ones, and
     respecting real-time order?  (Paper §2's definition.)

   - [check_strong] decides whether a {e prefix-closed} linearization
     function exists on the tree of all executions of a program (up to a
     node budget): an assignment of a linearization L(v) to every node v
     such that L(child) extends L(parent) by appending operations only.
     This is precisely strong linearizability (Golab–Higham–Woelfel)
     restricted to the explored tree, so:

       - a [Not_strongly_linearizable] verdict is a {e proof} that the
         implementation is not strongly linearizable (the finite witness
         tree embeds in the full execution tree);
       - a [Strongly_linearizable] verdict is exhaustive for the given
         workload: no adversary scheduling that workload can violate
         prefix-closedness.

   The game solver enumerates, at each node, the {e minimal} valid
   linearizations extending the parent's choice — sequences that place
   every completed operation and only those pending operations forced
   before a completed one.  Minimality is sound: if L is a prefix of L'
   then every child strategy for L' is also one for L, so committing to
   unforced pending operations never helps. *)

exception Budget_exhausted

(* Which budget converted the run into an inconclusive verdict.  Node
   budgets predate the others; their rendering (pretty and JSON) is
   pinned byte-for-byte, so the new reasons only ever add output. *)
type budget_reason = Budget_nodes | Budget_wall | Budget_heap

let budget_reason_tag = function
  | Budget_nodes -> "nodes"
  | Budget_wall -> "wall_ms"
  | Budget_heap -> "heap_mb"

let heap_mb_now () =
  let words = (Gc.quick_stat ()).Gc.heap_words in
  words * (Sys.word_size / 8) / (1024 * 1024)

(* Exploration statistics for one [check_strong] run.  Spec-independent,
   hence outside the functor.  [nodes] always equals the count carried
   by the verdict; the rest explains where the work went: how many
   candidate linearizations the enumerator produced, how many died at a
   child ([candidates_killed] — the game's backtracking), how many nodes
   admitted no extension at all ([dead_ends]), and how often the
   schedule cache saved a replay. *)
type stats = {
  nodes : int;  (* distinct tree nodes explored (= verdict's count) *)
  cache_hits : int;  (* node lookups answered from the schedule cache *)
  max_frontier_depth : int;  (* deepest schedule prefix reached *)
  candidates_generated : int;  (* minimal linearizations enumerated *)
  candidates_killed : int;  (* candidates refuted at some child *)
  dead_ends : int;  (* nodes with no valid extension *)
  validate_failures : int;  (* inherited prefixes invalidated by new responses *)
  elapsed_ns : int;
}

let nodes_per_sec st =
  if st.elapsed_ns <= 0 then 0. else float_of_int st.nodes *. 1e9 /. float_of_int st.elapsed_ns

let pp_stats fmt st =
  Format.fprintf fmt
    "@[<v>nodes explored        %d@,\
     exploration rate      %.0f nodes/s@,\
     max frontier depth    %d@,\
     candidates generated  %d@,\
     linearizations killed %d@,\
     dead-end nodes        %d@,\
     prefix invalidations  %d@,\
     cache hits            %d@,\
     elapsed               %.3f s@]"
    st.nodes (nodes_per_sec st) st.max_frontier_depth st.candidates_generated
    st.candidates_killed st.dead_ends st.validate_failures st.cache_hits
    (float_of_int st.elapsed_ns /. 1e9)

let stats_fields st =
  [
    ("nodes", Obs_json.Int st.nodes);
    ("nodes_per_sec", Obs_json.Float (nodes_per_sec st));
    ("max_frontier_depth", Obs_json.Int st.max_frontier_depth);
    ("candidates_generated", Obs_json.Int st.candidates_generated);
    ("candidates_killed", Obs_json.Int st.candidates_killed);
    ("dead_ends", Obs_json.Int st.dead_ends);
    ("validate_failures", Obs_json.Int st.validate_failures);
    ("cache_hits", Obs_json.Int st.cache_hits);
    ("elapsed_ns", Obs_json.Int st.elapsed_ns);
  ]

module Make (S : Spec.S) = struct
  type entry = { op_id : int; eresp : S.resp }

  type linearization = entry list

  let pp_entry records fmt e =
    let r = List.find (fun (r : _ History.op_record) -> r.id = e.op_id) records in
    Format.fprintf fmt "#%d p%d %a -> %a" r.History.id r.History.proc S.pp_op r.History.op
      S.pp_resp e.eresp

  let pp_linearization records fmt l =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
      (pp_entry records) fmt l

  (* ---------------------------------------------------------------- *)
  (* Shared machinery                                                  *)
  (* ---------------------------------------------------------------- *)

  (* Nondeterministic specs: a sequence of (op, resp) pairs corresponds to
     a set of possible states.  [step_states] advances the whole set,
     keeping only outcomes whose response matches. *)
  let step_states states op resp =
    List.concat_map (fun s -> S.apply s op) states
    |> List.filter_map (fun (s', r) -> if S.equal_resp r resp then Some s' else None)
    |> List.sort_uniq compare

  (* All (resp, next-states) groups reachable by applying [op] to any
     state in [states]. *)
  let outcome_groups states op =
    let outcomes = List.concat_map (fun s -> S.apply s op) states in
    let acc : (S.resp * S.state list) list ref = ref [] in
    List.iter
      (fun (s', r) ->
        let rec insert = function
          | [] -> [ (r, [ s' ]) ]
          | (r0, ss) :: rest ->
              if S.equal_resp r0 r then (r0, s' :: ss) :: rest else (r0, ss) :: insert rest
        in
        acc := insert !acc)
      outcomes;
    List.map (fun (r, ss) -> (r, List.sort_uniq compare ss)) !acc

  (* Precedence masks for a list of records (ids are dense 0..n-1). *)
  let build_masks (records : (S.op, S.resp) History.op_record list) =
    let arr = Array.of_list records in
    let n = Array.length arr in
    if n > 60 then invalid_arg "Lincheck: more than 60 operations";
    let pred = Array.make n 0 in
    Array.iteri
      (fun i ri ->
        Array.iteri
          (fun j rj -> if i <> j && History.precedes rj ri then pred.(i) <- pred.(i) lor (1 lsl j))
          arr;
        ignore ri)
      arr;
    (arr, pred)

  (* Validate a linearization prefix against the (possibly extended)
     records of a node: responses of now-completed operations must match
     the committed ones, and the sequence must still be spec-valid.
     Returns the state set after the prefix, or None. *)
  let validate_prefix (records : (S.op, S.resp) History.op_record list) (lin : linearization) =
    let arr = Array.of_list records in
    let rec go states = function
      | [] -> Some states
      | e :: rest ->
          if e.op_id >= Array.length arr then None
          else
            let r = arr.(e.op_id) in
            let resp_ok =
              match r.History.resp with None -> true | Some actual -> S.equal_resp actual e.eresp
            in
            if not resp_ok then None
            else
              let states' = step_states states r.History.op e.eresp in
              if states' = [] then None else go states' rest
    in
    go [ S.init ] lin

  (* Enumerate the minimal valid linearizations of [records] extending
     [lin] (whose state set is [states0]): place every completed
     operation; pending operations appear only in the interior (the last
     element of every extension is completed, or the extension is empty).
     Returns deduplicated entry lists. *)
  let extensions (records : (S.op, S.resp) History.op_record list) (lin : linearization) states0 =
    let arr, pred = build_masks records in
    let n = Array.length arr in
    let in_lin = List.fold_left (fun m e -> m lor (1 lsl e.op_id)) 0 lin in
    let completed_mask = ref 0 in
    Array.iteri (fun i r -> if History.is_complete r then completed_mask := !completed_mask lor (1 lsl i)) arr;
    let completed_mask = !completed_mask in
    let results = ref [] in
    let seen = Hashtbl.create 16 in
    let emit rev_acc =
      let ext = List.rev rev_acc in
      let key = List.map (fun e -> (e.op_id, Format.asprintf "%a" S.pp_resp e.eresp)) ext in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        results := ext :: !results
      end
    in
    let rec go mask states rev_acc =
      if completed_mask land lnot mask = 0 then emit rev_acc
      else
        for i = 0 to n - 1 do
          if mask land (1 lsl i) = 0 && pred.(i) land lnot mask = 0 then begin
            let r = arr.(i) in
            match r.History.resp with
            | Some actual ->
                let states' = step_states states r.History.op actual in
                if states' <> [] then
                  go (mask lor (1 lsl i)) states' ({ op_id = i; eresp = actual } :: rev_acc)
            | None ->
                List.iter
                  (fun (resp, states') ->
                    go (mask lor (1 lsl i)) states' ({ op_id = i; eresp = resp } :: rev_acc))
                  (outcome_groups states r.History.op)
          end
        done
    in
    go in_lin states0 [];
    List.map (fun ext -> lin @ ext) !results

  (* ---------------------------------------------------------------- *)
  (* Single-trace linearizability                                      *)
  (* ---------------------------------------------------------------- *)

  let check_trace (t : (S.op, S.resp) Trace.t) : linearization option =
    let records = History.of_trace t in
    match extensions records [] [ S.init ] with [] -> None | l :: _ -> Some l

  let is_linearizable t = check_trace t <> None

  (* ---------------------------------------------------------------- *)
  (* Strong linearizability on the execution tree                      *)
  (* ---------------------------------------------------------------- *)

  type verdict =
    | Strongly_linearizable of { nodes : int }
    | Not_linearizable of { schedule : int list }
    | Not_strongly_linearizable of { witness : int list; nodes : int }
    | Out_of_budget of { nodes : int; reason : budget_reason }

  let pp_verdict fmt = function
    | Strongly_linearizable { nodes } ->
        Format.fprintf fmt "strongly linearizable (%d nodes explored)" nodes
    | Not_linearizable { schedule } ->
        Format.fprintf fmt "NOT linearizable (schedule: %s)"
          (String.concat "" (List.map string_of_int schedule))
    | Not_strongly_linearizable { witness; nodes } ->
        Format.fprintf fmt "linearizable but NOT strongly linearizable (witness: %s; %d nodes)"
          (String.concat "" (List.map string_of_int witness))
          nodes
    | Out_of_budget { nodes; reason = Budget_nodes } ->
        Format.fprintf fmt "inconclusive: budget of %d nodes exhausted" nodes
    | Out_of_budget { nodes; reason = Budget_wall } ->
        Format.fprintf fmt "inconclusive: wall-clock budget exhausted after %d nodes" nodes
    | Out_of_budget { nodes; reason = Budget_heap } ->
        Format.fprintf fmt "inconclusive: memory budget exhausted after %d nodes" nodes

  exception Found_not_linearizable of int list

  (* [max_depth] truncates the tree: nodes at that depth get no children.
     Truncation preserves soundness of refutation — a prefix-closed
     linearization function on the full tree restricts to one on any
     truncated subtree, so if none exists on the subtree none exists at
     all — but makes a Strongly_linearizable verdict relative to the
     explored depth.  It is needed for implementations whose operations
     can spin (e.g. a queue's dequeue retrying on empty), which make the
     full tree infinite. *)
  let check_strong_stats ?(max_nodes = 200_000) ?max_depth ?budget_ms ?budget_heap_mb
      ?on_progress ?(progress_every = 10_000) ?tracer (prog : (S.op, S.resp) Sim.program) :
      verdict * stats =
    let t0 = Obs.now_ns () in
    (* A tripped budget records its reason before unwinding; only read
       when [Budget_exhausted] escapes [solve]. *)
    let tripped = ref Budget_nodes in
    let stop reason =
      tripped := reason;
      raise Budget_exhausted
    in
    let nodes = ref 0 in
    let cache_hits = ref 0 in
    let max_frontier = ref 0 in
    let cand_generated = ref 0 in
    let cand_killed = ref 0 in
    let dead_ends = ref 0 in
    let validate_failures = ref 0 in
    (* Heartbeat + counter-track samples, every [progress_every] fresh
       nodes.  Nothing here feeds back into exploration. *)
    let tick () =
      if !nodes mod progress_every = 0 then begin
        let elapsed_ns = Obs.now_ns () - t0 in
        (match on_progress with Some f -> f ~nodes:!nodes ~elapsed_ns | None -> ());
        match tracer with
        | Some tr ->
            let ts_us = float_of_int elapsed_ns /. 1e3 in
            Obs_trace.counter tr ~cat:"lincheck" ~ts_us "nodes" (float_of_int !nodes);
            Obs_trace.counter tr ~cat:"lincheck" ~ts_us "max_frontier_depth"
              (float_of_int !max_frontier)
        | None -> ()
      end
    in
    (* Cache node data: records and enabled set per schedule. *)
    let cache : (int list, (S.op, S.resp) History.op_record list * int list) Hashtbl.t =
      Hashtbl.create 1024
    in
    let node_data path =
      match Hashtbl.find_opt cache path with
      | Some d ->
          incr cache_hits;
          d
      | None ->
          incr nodes;
          if !nodes > max_nodes then stop Budget_nodes;
          (match budget_ms with
          | Some ms when Obs.now_ns () - t0 > ms * 1_000_000 -> stop Budget_wall
          | _ -> ());
          (match budget_heap_mb with
          | Some mb when heap_mb_now () > mb -> stop Budget_heap
          | _ -> ());
          tick ();
          let w = Sim.run_schedule prog (List.rev path) in
          let d = (History.of_trace (Sim.trace w), Sim.enabled w) in
          Hashtbl.add cache path d;
          d
    in
    let witness = ref [] in
    (* [path] is kept reversed for cheap extension; [depth] is its
       length. *)
    let rec solve path depth (lin : linearization) =
      if depth > !max_frontier then max_frontier := depth;
      let records, children = node_data path in
      let children = match max_depth with Some d when depth >= d -> [] | _ -> children in
      match validate_prefix records lin with
      | None ->
          incr validate_failures;
          false
      | Some states -> (
          match extensions records lin states with
          | [] ->
              (* No valid linearization extends the parent's choice.  If
                 even the empty prefix admits none, the execution itself is
                 not linearizable. *)
              incr dead_ends;
              if extensions records [] [ S.init ] = [] then
                raise (Found_not_linearizable (List.rev path));
              if depth > List.length !witness then witness := List.rev path;
              false
          | candidates ->
              cand_generated := !cand_generated + List.length candidates;
              if children = [] then true
              else
                (* [List.exists], unrolled to count refuted candidates. *)
                let rec try_candidates = function
                  | [] -> false
                  | cand :: rest ->
                      if List.for_all (fun p -> solve (p :: path) (depth + 1) cand) children
                      then true
                      else begin
                        incr cand_killed;
                        try_candidates rest
                      end
                in
                try_candidates candidates)
    in
    let finish verdict =
      let elapsed_ns = Obs.now_ns () - t0 in
      (match tracer with
      | Some tr ->
          let ts_us = float_of_int elapsed_ns /. 1e3 in
          Obs_trace.counter tr ~cat:"lincheck" ~ts_us "nodes" (float_of_int !nodes);
          Obs_trace.complete tr ~cat:"lincheck" ~ts_us:0. ~dur_us:ts_us "check_strong"
      | None -> ());
      ( verdict,
        {
          nodes = !nodes;
          cache_hits = !cache_hits;
          max_frontier_depth = !max_frontier;
          candidates_generated = !cand_generated;
          candidates_killed = !cand_killed;
          dead_ends = !dead_ends;
          validate_failures = !validate_failures;
          elapsed_ns;
        } )
    in
    match solve [] 0 [] with
    | true -> finish (Strongly_linearizable { nodes = !nodes })
    | false -> finish (Not_strongly_linearizable { witness = !witness; nodes = !nodes })
    | exception Found_not_linearizable schedule -> finish (Not_linearizable { schedule })
    | exception Budget_exhausted -> finish (Out_of_budget { nodes = !nodes; reason = !tripped })

  let check_strong ?max_nodes ?max_depth prog =
    fst (check_strong_stats ?max_nodes ?max_depth prog)

  (* Exposed (under [Internal]) for the witness forensics in
     [Witness.Make], which replays the enumerator on small certificate
     subtrees.  Not part of the checking API proper. *)
  module Internal = struct
    let validate_prefix = validate_prefix

    let extensions = extensions
  end

  let verdict_fields = function
    | Strongly_linearizable { nodes } ->
        [ ("verdict", Obs_json.String "strongly_linearizable"); ("nodes", Obs_json.Int nodes) ]
    | Not_linearizable { schedule } ->
        [
          ("verdict", Obs_json.String "not_linearizable");
          ("schedule", Obs_json.List (List.map (fun p -> Obs_json.Int p) schedule));
        ]
    | Not_strongly_linearizable { witness; nodes } ->
        [
          ("verdict", Obs_json.String "not_strongly_linearizable");
          ("witness", Obs_json.List (List.map (fun p -> Obs_json.Int p) witness));
          ("nodes", Obs_json.Int nodes);
        ]
    | Out_of_budget { nodes; reason = Budget_nodes } ->
        (* Pinned shape predating [budget_reason]; adding a field here
           would break the byte-identical-output contract for node-budget
           runs. *)
        [ ("verdict", Obs_json.String "out_of_budget"); ("nodes", Obs_json.Int nodes) ]
    | Out_of_budget { nodes; reason } ->
        [
          ("verdict", Obs_json.String "out_of_budget");
          ("nodes", Obs_json.Int nodes);
          ("reason", Obs_json.String (budget_reason_tag reason));
        ]
end
