(* Workload harness: turn an object implementation plus a per-process
   operation list into a [Sim.program] whose trace records exactly the
   high-level operations — the shape both checkers consume.

   [make] is called once per world (i.e. once per explored schedule); it
   receives the world's runtime, creates a fresh instance of the
   implementation, and returns the operation executor shared by all
   processes.  Per-process local state inside the implementation is keyed
   by [R.self ()]. *)

let program ~(make : (module Runtime_intf.S) -> 'op -> 'resp) ~(workload : 'op list array) :
    ('op, 'resp) Sim.program =
  {
    Sim.procs = Array.length workload;
    boot =
      (fun w ->
        let exec = make (Sim.runtime w) in
        Array.iteri
          (fun p ops ->
            Sim.spawn w ~proc:p (fun () ->
                List.iter (fun op -> ignore (Sim.operation w ~op ~resp:Fun.id (fun () -> exec op))) ops))
          workload);
  }

(* Run a workload under [runs] random schedules and check every resulting
   trace for linearizability with [check]; returns the first offending
   seed, if any.

   Partial-order reduction is applied unconditionally here: linearizability
   is a property of the history alone, and commutation-equivalent traces
   have identical histories, so one check answers the whole class.  Only
   CLEAN classes are cached — a violating trace is never skipped on the
   strength of a fingerprint, and the first violating seed is unchanged
   (an earlier equivalent trace would itself have been violating).  This
   phase is randomized testing, not exhaustive proof, which is why the
   reduction needs no opt-in: a fingerprint collision can at worst mute
   one of [runs] random probes. *)
let find_non_linearizable ~check ~runs ?(crash_prob = 0.0) prog =
  let clean : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec go seed =
    if seed > runs then None
    else
      let crash_after =
        if crash_prob > 0.0 && seed mod 5 = 0 then [ (seed mod prog.Sim.procs, seed mod 17) ]
        else []
      in
      let w = Sim.run_random ~seed ~crash_after prog in
      let tr = Sim.trace w in
      let fp = Reduct.fp_of_trace tr in
      if Hashtbl.mem clean fp then go (seed + 1)
      else if check tr then begin
        Hashtbl.add clean fp ();
        go (seed + 1)
      end
      else Some seed
  in
  go 1
