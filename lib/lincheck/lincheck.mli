(** Linearizability and strong-linearizability checking.

    [Make (S)] builds checkers for executions whose high-level operations
    follow specification [S]:

    - single-trace {e linearizability} (paper §2): is there a sequential
      execution of [S] containing every completed operation with its
      actual response, some of the pending ones, and respecting real-time
      order?
    - {e strong linearizability} (Golab–Higham–Woelfel, paper §2) of a
      whole program: does a {e prefix-closed} linearization function
      exist on the tree of all its executions?  Decided as a game:
      assign every explored node a linearization extending its parent's.

    Soundness: a refutation ([Not_strongly_linearizable]) holds for the
    real implementation — the finite witness tree embeds in the full
    execution tree.  A verification ([Strongly_linearizable]) is
    exhaustive for the given workload, node budget and depth bound. *)

exception Budget_exhausted

(** Which budget converted a run into the inconclusive {!Make.verdict}
    [Out_of_budget].  [Budget_nodes] is the historical node cap; its
    pretty and JSON renderings are pinned byte-for-byte.  [Budget_wall]
    and [Budget_heap] come from the optional [budget_ms] /
    [budget_heap_mb] arguments of {!Make.check_strong_stats};
    [Budget_interrupt] from its [interrupt] hook (signals, deadlines,
    supervisor cancellation).  [Budget_preempt] records that the
    conservative [preempt_bound] dropped enabled children somewhere: a
    fully successful game then only covers the restricted tree, so the
    verdict degrades to inconclusive (refutations found under the bound
    remain sound and are reported as usual). *)
type budget_reason = Budget_nodes | Budget_wall | Budget_heap | Budget_interrupt | Budget_preempt

val budget_reason_tag : budget_reason -> string
(** ["nodes"], ["wall_ms"], ["heap_mb"], ["interrupt"] or
    ["preempt_bound"] — the JSON tag. *)

val engine_fingerprint : string
(** Identity of the exploration engine's deterministic behaviour (bumped
    whenever exploration order, node accounting or the column split
    change).  Baked into checkpoints and into [slin serve]'s memoized
    verdict keys so stale state is never replayed across engines. *)

(** {1 Checkpoint / resume}

    The game at the root reduces to "every top-level subtree (column)
    must admit the empty linearization"; columns are solved independently
    and merged deterministically, so a run's completed columns are a
    sound resume point: a run restarted from a checkpoint skips them and
    provably reaches the same verdict, witness and counts as an
    uninterrupted run (the same invariance that makes the verdict
    independent of [jobs]).  Serialized as versioned [slin-checkpoint/v1]
    documents. *)

type col_checkpoint = {
  col_index : int;  (** position in the root's enabled list *)
  col_outcome : string;  (** ["ok"], ["failed"] or ["not-lin"] *)
  col_schedule : int list;  (** the [Not_linearizable] schedule, else [] *)
  col_nodes : int;
  col_hits : int;
  col_frontier : int;
  col_cand : int;
  col_killed : int;
  col_dead : int;
  col_vfail : int;
  col_wit : (int * int list) list;
      (** witness updates in temporal order: (depth, schedule) at each
          strictly-deeper dead end *)
  col_pruned : bool;
      (** the preempt bound dropped enabled children in this column
          (serialized only when true, so pre-existing checkpoints and
          their digests are unchanged; absent parses as false) *)
}

type checkpoint = {
  ck_config : string;
      (** caller-chosen configuration fingerprint (object, depth bound,
          engine); a resume under a different configuration must be
          refused by the caller *)
  ck_columns : col_checkpoint list;  (** completed columns, ascending *)
}

val checkpoint_schema : string
(** ["slin-checkpoint/v1"] *)

val checkpoint_fingerprint : checkpoint -> string
(** Deterministic digest of the checkpoint's configuration and column
    results — equal for an interrupted-then-resumed run and an
    uninterrupted one iff they walked the same columns to the same
    outcomes.  Embedded in the JSON and re-verified on parse, so a
    corrupted checkpoint is a structured error, not a wrong resume. *)

val checkpoint_to_json : checkpoint -> Obs_json.t

val checkpoint_of_json : Obs_json.t -> (checkpoint, string) result
(** Validates the schema tag, the engine fingerprint and the content
    digest; never raises. *)

type checkpointing = {
  cp_config : string;  (** configuration fingerprint to stamp and match *)
  cp_resume : checkpoint option;
      (** completed columns to skip; the caller must have verified
          [ck_config = cp_config] *)
  cp_emit : checkpoint -> unit;
      (** called with the cumulative checkpoint after every completed
          column (possibly from a worker domain; emissions are
          serialized per call but may arrive in any column order) *)
}

type stats = {
  nodes : int;  (** distinct tree nodes explored (= the verdict's count) *)
  cache_hits : int;  (** node lookups answered from the schedule cache *)
  max_frontier_depth : int;  (** deepest schedule prefix reached *)
  candidates_generated : int;  (** minimal linearizations enumerated *)
  candidates_killed : int;  (** candidates refuted at some child *)
  dead_ends : int;  (** nodes admitting no valid extension *)
  validate_failures : int;  (** inherited prefixes invalidated by new responses *)
  elapsed_ns : int;
}
(** Exploration statistics for one {!Make.check_strong_stats} run
    (spec-independent). *)

val nodes_per_sec : stats -> float

val pp_stats : Format.formatter -> stats -> unit
(** Multi-line, aligned block — the CLI's [--stats] output. *)

val stats_fields : stats -> (string * Obs_json.t) list
(** The stats as JSON fields (the documented [check_stats] schema). *)

module Make (S : Spec.S) : sig
  type entry = { op_id : int; eresp : S.resp }
  (** One linearized operation: the operation record id (dense, in
      invocation order) and the response it is committed to. *)

  type linearization = entry list

  val pp_linearization :
    (S.op, S.resp) History.op_record list -> Format.formatter -> linearization -> unit

  (** {1 Single-trace linearizability} *)

  val check_trace : (S.op, S.resp) Trace.t -> linearization option
  (** [check_trace t] is a linearization of [t] (completed operations
      plus any pending ones needed to justify them), or [None]. *)

  val is_linearizable : (S.op, S.resp) Trace.t -> bool

  (** {1 Strong linearizability} *)

  type verdict =
    | Strongly_linearizable of { nodes : int }
        (** A prefix-closed linearization function exists on the explored
            tree ([nodes] nodes). *)
    | Not_linearizable of { schedule : int list }
        (** Some execution is not even linearizable; [schedule] replays
            it via {!Sim.run_schedule}. *)
    | Not_strongly_linearizable of { witness : int list; nodes : int }
        (** Every execution is linearizable but no prefix-closed choice
            exists; [witness] is the deepest schedule prefix at which
            every candidate extension died. *)
    | Out_of_budget of { nodes : int; reason : budget_reason }
        (** Inconclusive: a budget tripped after [nodes] nodes.  The
            paired {!stats} still carry everything observed up to the
            stop (deepest frontier, candidate counts, elapsed time) —
            the "partial stats" of a budgeted run. *)

  val pp_verdict : Format.formatter -> verdict -> unit

  val check_strong :
    ?max_nodes:int -> ?max_depth:int -> (S.op, S.resp) Sim.program -> verdict
  (** [check_strong prog] solves the game on [prog]'s execution tree.
      [max_nodes] (default 200k) bounds distinct explored nodes;
      [max_depth] truncates the tree — needed when operations can spin
      (e.g. dequeue retrying on empty), and sound for refutation: a
      prefix-closed function on the full tree restricts to every
      truncated subtree. *)

  val check_strong_stats :
    ?max_nodes:int ->
    ?max_depth:int ->
    ?budget_ms:int ->
    ?budget_heap_mb:int ->
    ?on_progress:(nodes:int -> elapsed_ns:int -> unit) ->
    ?progress_every:int ->
    ?progress_every_ms:int ->
    ?tracer:Obs_trace.t ->
    ?profiler:Prof.t ->
    ?coverage:Coverage.t ->
    ?jobs:int ->
    ?steal_grain:int ->
    ?checkpoint_stride:int ->
    ?interrupt:(unit -> bool) ->
    ?checkpointing:checkpointing ->
    ?reduce:bool ->
    ?reduce_check:bool ->
    ?preempt_bound:int ->
    (S.op, S.resp) Sim.program ->
    verdict * stats
  (** Like {!check_strong}, additionally returning exploration {!stats}.
      Instrumentation is passive: the verdict and node count are
      identical to {!check_strong}'s (which is implemented as its
      [fst]).  [on_progress] fires every [progress_every] (default 10k)
      fresh nodes and additionally whenever [progress_every_ms] (default
      1000, [<= 0] disables) elapse without a beat — cache-hit streaks
      and long anchored replays expand no fresh node, and must not go
      silent; [tracer] receives [nodes] and [max_frontier_depth] counter
      samples at the same cadence plus one [check_strong] span, on a
      wall-clock-microsecond timeline.

      [profiler] records per-domain solve/merge/cross-check spans, node
      and cache-hit counts, depth histograms and candidate-kill
      attribution into a {!Prof.t} (see [Prof.to_json]).  Profiling is
      passive too: verdict, stats and outputs are byte-identical with or
      without it.

      [coverage] records per-domain exploration coverage into a
      {!Coverage.t}: each fresh node's world fingerprint, its depth and
      branching factor, and (on novel worlds) its trace's adjacent
      access pairs.  Passive like [profiler]: one trace scan per fresh
      node, nothing per cache hit, no feedback.  Note that with a
      wall-clock or heap budget set, the scan's cost can move where the
      budget trips; unbudgeted runs are byte-identical.  A parallel
      fallback to the sequential engine re-observes nodes (observation
      counts grow; unique fingerprints do not).

      [budget_ms] / [budget_heap_mb] bound wall-clock time and major-heap
      size; both are checked at every fresh node, so a tripped budget
      stops within one node expansion and yields [Out_of_budget] with the
      corresponding {!budget_reason} and the stats gathered so far.  When
      unset (the default) behaviour, output and node accounting are
      unchanged.

      [jobs] (default 1) solves the top-level subtrees on that many
      domains, capped at the hardware parallelism (override with the
      [SLIN_DOMAIN_CAP] environment variable); with two or more
      effective workers the columns are distributed by a work-stealing
      scheduler that also splits hot subtrees above depth [steal_grain]
      (default 4; [0] disables intra-column splitting) into tasks.
      Results are merged in canonical schedule-prefix order, so the
      verdict, witness and node count are identical for every [jobs]
      and [steal_grain] value.  Heartbeat and tracer samples aggregate
      across workers (one shared atomic node total, emitted from worker
      0 on its node/time cadence), so the parallel engine is no longer
      silent.
      [checkpoint_stride] (default 16, clamped to >= 1) sets the anchor
      interval of the incremental engine: every fresh node whose depth
      is a multiple of the stride is re-derived from a full replay and
      compared against the incrementally maintained state (stride 1 =
      paranoid mode, every node anchored).  Anchoring is a pure
      cross-check — results are identical for every stride.

      [interrupt] is polled at every fresh node (same cadence as the
      budgets); once it returns [true] the run degrades to
      [Out_of_budget] with reason [Budget_interrupt] and the partial
      stats gathered so far — this is how signal handlers, per-request
      deadlines and supervisor cancellation stop a check without losing
      its accounting.

      [checkpointing] routes the run through the column engine (even at
      [jobs = 1]), skips the columns recorded in [cp_resume], and calls
      [cp_emit] with the cumulative {!checkpoint} after each completed
      column.  An uninterrupted checkpointed run returns the same
      verdict and stats as a plain run; a resumed run returns the same
      verdict, witness and column-sum stats as the run it resumed
      (column determinism — the [jobs]-invariance property).  With
      checkpointing active a tripped budget merges the completed
      columns' partial stats instead of falling back to the sequential
      engine, so budget-tripped node counts are column-granular.

      [reduce] (default false) turns on dependency-aware partial-order
      reduction: the solver memoizes candidate survival per
      (commutation class, depth, switch count, inherited linearization)
      using the [Reduct] trace fingerprint, so subtrees reached by
      schedules that differ only in the order of adjacent commuting
      base-object accesses are explored once.  Trace-equivalent nodes
      have identical histories and record arrays, hence isomorphic game
      subtrees, so the verdict is preserved; the witness (deepest dead
      end, first in DFS order) sits in the explored region and is
      preserved too — modulo 62-bit fingerprint collisions, which is
      why the SL game only reduces on request while unreduced runs stay
      byte-identical to previous releases.  Reduced verdicts and node
      counts are themselves deterministic across [jobs] and
      [steal_grain] (intra-column forking is disabled under [reduce] so
      one memo sees each column in DFS order).

      [reduce_check] (debug cross-validation; implies [reduce])
      re-explores every memo hit and raises [Invalid_argument] if a
      commutation-equivalent subtree disagrees with the stored verdict
      — the mechanized form of the isomorphic-subtree argument.  Node
      counts under [reduce_check] are close to unreduced (every twin is
      re-walked), so it validates soundness, not speed.

      [preempt_bound] (off by default; clamped to >= 0) conservatively
      restricts exploration to schedules with at most N preemptions — a
      context switch away from a still-enabled process.  Composes with
      budgets and [reduce] (the switch count is part of the memo key).
      Refutations found under the bound are sound; a successful game
      with at least one child dropped degrades to [Out_of_budget] with
      [Budget_preempt]. *)

  val verdict_fields : verdict -> (string * Obs_json.t) list
  (** The verdict as JSON fields (constructor tag plus its payload). *)

  (** {1 Internals}

      Building blocks of the game solver, exposed so {!Witness.Make} can
      replay them on small certificate subtrees and so the crash
      adversary can run the same incremental node evaluation over its
      crash-extended tree.  Not intended for direct use. *)
  module Internal : sig
    val validate_prefix :
      (S.op, S.resp) History.op_record list -> linearization -> S.state list option
    (** State set of the spec after committing [linearization] against
        the given records, or [None] if some committed response is
        invalidated. *)

    val extensions :
      (S.op, S.resp) History.op_record list ->
      linearization ->
      S.state list ->
      linearization list
    (** Minimal valid linearizations of the records extending the given
        prefix (whose state set is the third argument). *)

    type node_info
    (** A tree node's evaluated state: record array, precedence masks,
        enabled set, trace length, and a memoized root-linearizability
        answer. *)

    val info_of_world : (S.op, S.resp) Sim.t -> node_info
    (** Evaluate a node from scratch (full trace walk). *)

    val extend_info : node_info -> (S.op, S.resp) Sim.t -> node_info
    (** [extend_info parent w] evaluates a node incrementally from its
        parent's state and the trace delta of [w], whose trace must
        extend the parent's.  O(delta + new_ops * n). *)

    val cross_check : node_info -> (S.op, S.resp) Sim.t -> unit
    (** Compare the incrementally maintained records against a full
        re-derivation from [w]'s trace.
        @raise Invalid_argument on divergence (a checker bug). *)

    val root_linearizable : node_info -> bool
    (** Does the node's execution admit any linearization at all?
        Memoized in the [node_info]. *)

    val enabled_of : node_info -> int list

    val records_of : node_info -> (S.op, S.resp) History.op_record list

    val validate_info : node_info -> linearization -> S.state list option
    (** {!validate_prefix} over the node's precomputed record array. *)

    val extensions_info : node_info -> linearization -> S.state list -> linearization list
    (** {!extensions} over the node's precomputed masks — no per-call
        rebuild. *)
  end
end
