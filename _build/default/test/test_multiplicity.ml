(* Tests for the multiplicity relaxation (§5, footnote 3): the
   multiplicity-aware checker, the read/write queue with multiplicity,
   and the Theorem 17 mechanism on it. *)

module LQ = Lincheck.Make (Spec.Queue_spec)

let inv p op = Trace.Invoke { proc = p; op }
let ret p resp = Trace.Return { proc = p; resp }

(* --- the checker itself ---------------------------------------------- *)

let test_sequential_dup_rejected () =
  (* Two sequential deqs returning the same item: not concurrent, so the
     multiplicity relaxation does not apply. *)
  let t =
    [
      inv 0 (Spec.Queue_spec.Enq 1);
      ret 0 Spec.Queue_spec.Ok_;
      inv 1 Spec.Queue_spec.Deq;
      ret 1 (Spec.Queue_spec.Item 1);
      inv 2 Spec.Queue_spec.Deq;
      ret 2 (Spec.Queue_spec.Item 1);
    ]
  in
  Alcotest.(check bool) "rejected" false (Mult_check.check Mult_check.Queue t)

let test_concurrent_dup_accepted () =
  let t =
    [
      inv 0 (Spec.Queue_spec.Enq 1);
      ret 0 Spec.Queue_spec.Ok_;
      inv 1 Spec.Queue_spec.Deq;
      inv 2 Spec.Queue_spec.Deq;
      ret 1 (Spec.Queue_spec.Item 1);
      ret 2 (Spec.Queue_spec.Item 1);
    ]
  in
  Alcotest.(check bool) "accepted" true (Mult_check.check Mult_check.Queue t);
  (* The same trace is NOT linearizable as an exact queue. *)
  Alcotest.(check bool) "exact queue rejects" false (LQ.is_linearizable t)

let test_dup_of_stale_item_rejected () =
  (* Concurrent deqs, but the duplicate returns an item that is not the
     one the group holds. *)
  let t =
    [
      inv 0 (Spec.Queue_spec.Enq 1);
      ret 0 Spec.Queue_spec.Ok_;
      inv 0 (Spec.Queue_spec.Enq 2);
      ret 0 Spec.Queue_spec.Ok_;
      inv 1 Spec.Queue_spec.Deq;
      inv 2 Spec.Queue_spec.Deq;
      ret 1 (Spec.Queue_spec.Item 1);
      ret 2 (Spec.Queue_spec.Item 2);
    ]
  in
  (* Returning 1 and 2 is plain queue behaviour — fine. *)
  Alcotest.(check bool) "exact behaviour accepted" true (Mult_check.check Mult_check.Queue t);
  let t_bad =
    [
      inv 0 (Spec.Queue_spec.Enq 1);
      ret 0 Spec.Queue_spec.Ok_;
      inv 0 (Spec.Queue_spec.Enq 2);
      ret 0 Spec.Queue_spec.Ok_;
      inv 1 Spec.Queue_spec.Deq;
      ret 1 (Spec.Queue_spec.Item 2);
      inv 2 Spec.Queue_spec.Deq;
      ret 2 (Spec.Queue_spec.Item 2);
    ]
  in
  (* Item 2 dequeued twice by NON-overlapping deqs while 1 sits in the
     queue: no relaxation covers that. *)
  Alcotest.(check bool) "stale dup rejected" false (Mult_check.check Mult_check.Queue t_bad)

let test_exact_behaviour_still_accepted () =
  let t =
    [
      inv 0 (Spec.Queue_spec.Enq 1);
      ret 0 Spec.Queue_spec.Ok_;
      inv 1 Spec.Queue_spec.Deq;
      ret 1 (Spec.Queue_spec.Item 1);
      inv 2 Spec.Queue_spec.Deq;
      ret 2 Spec.Queue_spec.Empty;
    ]
  in
  Alcotest.(check bool) "exact accepted" true (Mult_check.check Mult_check.Queue t)

let test_stack_kind () =
  (* LIFO discipline under the Stack kind (Push/Pop encoded as Enq/Deq). *)
  let t =
    [
      inv 0 (Spec.Queue_spec.Enq 1);
      ret 0 Spec.Queue_spec.Ok_;
      inv 0 (Spec.Queue_spec.Enq 2);
      ret 0 Spec.Queue_spec.Ok_;
      inv 1 Spec.Queue_spec.Deq;
      ret 1 (Spec.Queue_spec.Item 2);
    ]
  in
  Alcotest.(check bool) "lifo accepted" true (Mult_check.check Mult_check.Stack t);
  let t_fifo =
    [
      inv 0 (Spec.Queue_spec.Enq 1);
      ret 0 Spec.Queue_spec.Ok_;
      inv 0 (Spec.Queue_spec.Enq 2);
      ret 0 Spec.Queue_spec.Ok_;
      inv 1 Spec.Queue_spec.Deq;
      ret 1 (Spec.Queue_spec.Item 1);
    ]
  in
  Alcotest.(check bool) "fifo rejected for stack" false (Mult_check.check Mult_check.Stack t_fifo)

(* --- the read/write multiplicity queue -------------------------------- *)

let mult_exec (module R : Runtime_intf.S) =
  let module Q = Rw_mult_queue.Make (R) in
  let q = Q.create () in
  fun (op : Spec.Queue_spec.op) : Spec.Queue_spec.resp ->
    match op with
    | Spec.Queue_spec.Enq x ->
        Q.enqueue q x;
        Spec.Queue_spec.Ok_
    | Spec.Queue_spec.Deq -> (
        match Q.dequeue q with None -> Spec.Queue_spec.Empty | Some x -> Spec.Queue_spec.Item x)

let test_mult_queue_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:2 ()) in
  let module Q = Rw_mult_queue.Make (R) in
  let q = Q.create () in
  Alcotest.(check (option int)) "empty" None (Q.dequeue q);
  Q.enqueue q 1;
  Q.enqueue q 2;
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Q.dequeue q);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Q.dequeue q);
  Alcotest.(check (option int)) "empty again" None (Q.dequeue q)

let workload =
  [|
    [ Spec.Queue_spec.Enq 1; Spec.Queue_spec.Enq 2 ];
    [ Spec.Queue_spec.Deq ];
    [ Spec.Queue_spec.Deq ];
  |]

let test_mult_queue_relaxed_linearizable () =
  (* Every random execution satisfies queue-with-multiplicity. *)
  let prog = Harness.program ~make:mult_exec ~workload in
  for seed = 1 to 400 do
    let t = Sim.trace (Sim.run_random ~seed prog) in
    if not (Mult_check.check Mult_check.Queue t) then
      Alcotest.failf "seed %d: violates multiplicity-linearizability" seed
  done

let test_mult_queue_duplicates_happen () =
  (* ... and the relaxation is real: some schedule duplicates an item,
     failing the EXACT queue check. *)
  let prog = Harness.program ~make:mult_exec ~workload in
  let rec search seed =
    if seed > 3000 then Alcotest.fail "no duplicating schedule found"
    else
      let t = Sim.trace (Sim.run_random ~seed prog) in
      if not (LQ.is_linearizable t) then ()  (* found: relaxed-only behaviour *)
      else search (seed + 1)
  in
  search 1

(* --- the multiplicity stack -------------------------------------------- *)

(* Encode Push/Pop as Enq/Deq so Mult_check's Stack kind applies. *)
let mult_stack_exec (module R : Runtime_intf.S) =
  let module S = Rw_mult_queue.Make_stack (R) in
  let s = S.create () in
  fun (op : Spec.Queue_spec.op) : Spec.Queue_spec.resp ->
    match op with
    | Spec.Queue_spec.Enq x ->
        S.push s x;
        Spec.Queue_spec.Ok_
    | Spec.Queue_spec.Deq -> (
        match S.pop s with None -> Spec.Queue_spec.Empty | Some x -> Spec.Queue_spec.Item x)

let test_mult_stack_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:2 ()) in
  let module S = Rw_mult_queue.Make_stack (R) in
  let s = S.create () in
  S.push s 1;
  S.push s 2;
  Alcotest.(check (option int)) "lifo 2" (Some 2) (S.pop s);
  S.push s 3;
  Alcotest.(check (option int)) "lifo 3" (Some 3) (S.pop s);
  Alcotest.(check (option int)) "lifo 1" (Some 1) (S.pop s);
  Alcotest.(check (option int)) "empty" None (S.pop s)

let test_mult_stack_relaxed_linearizable () =
  let prog = Harness.program ~make:mult_stack_exec ~workload in
  for seed = 1 to 400 do
    let t = Sim.trace (Sim.run_random ~seed prog) in
    if not (Mult_check.check Mult_check.Stack t) then
      Alcotest.failf "seed %d: violates stack-multiplicity" seed
  done

(* --- Theorem 17's mechanism on the multiplicity queue ----------------- *)

let test_algorithm_b_violations () =
  (* Multiplicity queues are 1-ordering (paper §5), so if this
     implementation were strongly linearizable Algorithm B would solve
     consensus from read/write registers — impossible.  And indeed
     agreement breaks. *)
  let stats =
    Agreement.run_many ~make:Rw_mult_queue.instance ~ordering:K_ordering.queue_multiplicity_witness
      ~inputs:[| 100; 200; 300 |] ~trials:3000 ~seed:5 ()
  in
  Alcotest.(check bool) "disagreements found" true (stats.Agreement.agreement_violations > 0);
  Alcotest.(check int) "decisions stay valid" 0 stats.Agreement.validity_violations

(* Same for the multiplicity stack, with the stack witness. *)
let test_algorithm_b_stack_violations () =
  let stats =
    Agreement.run_many ~make:Rw_mult_queue.stack_instance
      ~ordering:K_ordering.stack_multiplicity_witness ~inputs:[| 100; 200; 300 |] ~trials:4000
      ~seed:9 ()
  in
  Alcotest.(check bool) "disagreements found" true (stats.Agreement.agreement_violations > 0);
  Alcotest.(check int) "decisions stay valid" 0 stats.Agreement.validity_violations

let suite =
  [
    ("sequential dup rejected", `Quick, test_sequential_dup_rejected);
    ("concurrent dup accepted", `Quick, test_concurrent_dup_accepted);
    ("stale dup rejected", `Quick, test_dup_of_stale_item_rejected);
    ("exact behaviour accepted", `Quick, test_exact_behaviour_still_accepted);
    ("stack kind", `Quick, test_stack_kind);
    ("RW mult queue sequential", `Quick, test_mult_queue_sequential);
    ("RW mult queue relaxed-linearizable", `Quick, test_mult_queue_relaxed_linearizable);
    ("duplication actually occurs", `Quick, test_mult_queue_duplicates_happen);
    ("RW mult stack sequential", `Quick, test_mult_stack_sequential);
    ("RW mult stack relaxed-linearizable", `Quick, test_mult_stack_relaxed_linearizable);
    ("Algorithm B disagrees on RW mult queue", `Quick, test_algorithm_b_violations);
    ("Algorithm B disagrees on RW mult stack", `Quick, test_algorithm_b_stack_violations);
  ]

let () = Alcotest.run "multiplicity" [ ("multiplicity", suite) ]
