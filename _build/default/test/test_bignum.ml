(* Unit and property tests for the Bignum substrate.

   Properties are checked against OCaml's native [int] arithmetic on values
   that fit comfortably in a word, plus targeted large-value cases built
   with [pow2] / [of_string]. *)

let nat = Alcotest.testable Bignum.pp Bignum.equal

let b = Bignum.of_int

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_constants () =
  Alcotest.check nat "zero" Bignum.zero (b 0);
  Alcotest.check nat "one" Bignum.one (b 1);
  Alcotest.(check bool) "is_zero zero" true (Bignum.is_zero Bignum.zero);
  Alcotest.(check bool) "is_zero one" false (Bignum.is_zero Bignum.one)

let test_of_to_int () =
  List.iter
    (fun k -> Alcotest.(check (option int)) (string_of_int k) (Some k) (Bignum.to_int_opt (b k)))
    [ 0; 1; 2; 42; 1 lsl 30; (1 lsl 31) - 1; 1 lsl 31; 1 lsl 40; max_int ];
  Alcotest.check_raises "of_int negative" (Invalid_argument "Bignum.of_int: negative") (fun () ->
      ignore (b (-1)))

let test_to_int_overflow () =
  (* OCaml ints are 63-bit: max_int = 2^62 - 1. *)
  Alcotest.(check (option int)) "2^62 does not fit" None (Bignum.to_int_opt (Bignum.pow2 62));
  Alcotest.(check (option int)) "2^61 fits" (Some (1 lsl 61)) (Bignum.to_int_opt (Bignum.pow2 61));
  Alcotest.(check (option int)) "max_int fits" (Some max_int)
    (Bignum.to_int_opt (Bignum.sub (Bignum.pow2 62) Bignum.one))

let test_add_sub () =
  Alcotest.check nat "1+1" (b 2) (Bignum.add Bignum.one Bignum.one);
  Alcotest.check nat "sub to zero" Bignum.zero (Bignum.sub (b 7) (b 7));
  Alcotest.check nat "carry chain"
    (Bignum.pow2 80)
    (Bignum.add (Bignum.sub (Bignum.pow2 80) Bignum.one) Bignum.one);
  Alcotest.check_raises "underflow" Bignum.Underflow (fun () -> ignore (Bignum.sub (b 3) (b 4)))

let test_mul_divmod_small () =
  Alcotest.check nat "7*6" (b 42) (Bignum.mul_small (b 7) 6);
  Alcotest.check nat "x*0" Bignum.zero (Bignum.mul_small (Bignum.pow2 100) 0);
  let q, r = Bignum.divmod_small (b 100) 7 in
  Alcotest.check nat "100/7" (b 14) q;
  Alcotest.(check int) "100 mod 7" 2 r;
  let big = Bignum.of_string "123456789012345678901234567890" in
  let q, r = Bignum.divmod_small big 10 in
  Alcotest.check nat "big/10" (Bignum.of_string "12345678901234567890123456789") q;
  Alcotest.(check int) "big mod 10" 0 r

let test_strings () =
  let s = "987654321098765432109876543210" in
  Alcotest.(check string) "roundtrip" s Bignum.(to_string (of_string s));
  Alcotest.(check string) "zero" "0" (Bignum.to_string Bignum.zero);
  Alcotest.(check string) "hex 255" "ff" (Bignum.to_hex (b 255));
  Alcotest.(check string) "hex 0" "0" (Bignum.to_hex Bignum.zero);
  Alcotest.(check string) "hex 2^64" "10000000000000000" (Bignum.to_hex (Bignum.pow2 64))

let test_bits () =
  let x = Bignum.set_bit (Bignum.set_bit Bignum.zero 0) 100 in
  Alcotest.(check bool) "bit 0" true (Bignum.bit x 0);
  Alcotest.(check bool) "bit 1" false (Bignum.bit x 1);
  Alcotest.(check bool) "bit 100" true (Bignum.bit x 100);
  Alcotest.(check int) "popcount" 2 (Bignum.popcount x);
  Alcotest.(check int) "num_bits" 101 (Bignum.num_bits x);
  let y = Bignum.clear_bit x 100 in
  Alcotest.check nat "clear high bit" Bignum.one y;
  Alcotest.(check int) "num_bits renormalized" 1 (Bignum.num_bits y);
  Alcotest.check nat "clear absent bit is id" x (Bignum.clear_bit x 55)

let test_logical () =
  let a = b 0b1100 and c = b 0b1010 in
  Alcotest.check nat "and" (b 0b1000) (Bignum.logand a c);
  Alcotest.check nat "or" (b 0b1110) (Bignum.logor a c);
  Alcotest.check nat "xor" (b 0b0110) (Bignum.logxor a c);
  (* Mixed widths. *)
  let big = Bignum.pow2 200 in
  Alcotest.check nat "xor self" Bignum.zero (Bignum.logxor big big);
  Alcotest.check nat "and disjoint" Bignum.zero (Bignum.logand big a)

let test_shifts () =
  Alcotest.check nat "1 lsl 31" (Bignum.pow2 31) (Bignum.shift_left Bignum.one 31);
  Alcotest.check nat "1 lsl 62" (Bignum.pow2 62) (Bignum.shift_left Bignum.one 62);
  Alcotest.check nat "shift right back" (b 13)
    (Bignum.shift_right (Bignum.shift_left (b 13) 200) 200);
  Alcotest.check nat "shift right to zero" Bignum.zero (Bignum.shift_right (b 13) 5);
  Alcotest.check nat "shift zero" Bignum.zero (Bignum.shift_left Bignum.zero 1000)

let test_stride () =
  (* Interleave two streams with stride 2: stream 0 = 0b101, stream 1 = 0b11. *)
  let r =
    Bignum.logor
      (Bignum.deposit_stride (b 0b101) ~offset:0 ~stride:2)
      (Bignum.deposit_stride (b 0b11) ~offset:1 ~stride:2)
  in
  Alcotest.check nat "stream 0" (b 0b101) (Bignum.extract_stride r ~offset:0 ~stride:2);
  Alcotest.check nat "stream 1" (b 0b11) (Bignum.extract_stride r ~offset:1 ~stride:2);
  (* Bit layout: positions 0,2,4 carry 1,0,1 and positions 1,3 carry 1,1. *)
  Alcotest.check nat "raw interleaving" (b 0b11011) r;
  Alcotest.check nat "extract from zero" Bignum.zero
    (Bignum.extract_stride Bignum.zero ~offset:3 ~stride:7)

let test_compare () =
  Alcotest.(check int) "eq" 0 (Bignum.compare (b 5) (b 5));
  Alcotest.(check bool) "lt" true (Bignum.compare (b 5) (b 6) < 0);
  Alcotest.(check bool) "big gt small" true (Bignum.compare (Bignum.pow2 64) (b max_int) > 0);
  Alcotest.(check bool) "equal" true (Bignum.equal (Bignum.pow2 10) (b 1024))

let test_signed () =
  let module S = Bignum.Signed in
  Alcotest.check nat "apply +" (b 10) (S.apply (b 7) (S.of_int 3));
  Alcotest.check nat "apply -" (b 4) (S.apply (b 7) (S.of_int (-3)));
  Alcotest.check nat "sum signs" (b 6) (S.apply (b 7) (S.add (S.of_int 4) (S.of_int (-5))));
  Alcotest.check_raises "underflow" Bignum.Underflow (fun () ->
      ignore (S.apply (b 2) (S.of_int (-3))));
  Alcotest.(check string) "pp neg" "-5" (Format.asprintf "%a" S.pp (S.of_int (-5)));
  Alcotest.(check string) "pp pos" "5" (Format.asprintf "%a" S.pp (S.of_int 5))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let small_nat_gen = QCheck.Gen.int_bound ((1 lsl 30) - 1)
let small_nat = QCheck.make ~print:string_of_int small_nat_gen

let prop name ?(count = 500) arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let properties =
  [
    prop "add agrees with int" (QCheck.pair small_nat small_nat) (fun (x, y) ->
        Bignum.equal (b (x + y)) (Bignum.add (b x) (b y)));
    prop "sub agrees with int" (QCheck.pair small_nat small_nat) (fun (x, y) ->
        let hi = max x y and lo = min x y in
        Bignum.equal (b (hi - lo)) (Bignum.sub (b hi) (b lo)));
    prop "add commutes (large)" (QCheck.pair small_nat small_nat) (fun (x, y) ->
        let gx = Bignum.shift_left (b x) 95 and gy = Bignum.shift_left (b y) 63 in
        Bignum.equal (Bignum.add gx gy) (Bignum.add gy gx));
    prop "add/sub roundtrip (large)" (QCheck.pair small_nat small_nat) (fun (x, y) ->
        let gx = Bignum.shift_left (b x) 77 in
        Bignum.equal gx (Bignum.sub (Bignum.add gx (b y)) (b y)));
    prop "mul_small agrees with int" (QCheck.pair (QCheck.make (QCheck.Gen.int_bound 0xFFFF)) (QCheck.make (QCheck.Gen.int_bound 0xFFFF)))
      (fun (x, k) -> Bignum.equal (b (x * k)) (Bignum.mul_small (b x) k));
    prop "divmod_small inverts mul" (QCheck.pair small_nat (QCheck.make (QCheck.Gen.int_range 1 1000)))
      (fun (x, k) ->
        let q, r = Bignum.divmod_small (b x) k in
        Bignum.equal (b x) (Bignum.add (Bignum.mul_small q k) (b r)) && r >= 0 && r < k);
    prop "string roundtrip" small_nat (fun x ->
        let big = Bignum.shift_left (b x) 130 in
        Bignum.equal big (Bignum.of_string (Bignum.to_string big)));
    prop "compare total order" (QCheck.pair small_nat small_nat) (fun (x, y) ->
        Bignum.compare (b x) (b y) = Stdlib.compare x y);
    prop "shift then unshift" (QCheck.pair small_nat (QCheck.make (QCheck.Gen.int_bound 300)))
      (fun (x, k) -> Bignum.equal (b x) (Bignum.shift_right (Bignum.shift_left (b x) k) k));
    prop "bit of shifted one" (QCheck.make (QCheck.Gen.int_bound 500)) (fun k ->
        let x = Bignum.pow2 k in
        Bignum.bit x k && Bignum.popcount x = 1 && Bignum.num_bits x = k + 1);
    prop "logxor cancels" (QCheck.pair small_nat small_nat) (fun (x, y) ->
        Bignum.equal (b y) (Bignum.logxor (Bignum.logxor (b x) (b y)) (b x)));
    prop "logand/logor agree with int" (QCheck.pair small_nat small_nat) (fun (x, y) ->
        Bignum.equal (b (x land y)) (Bignum.logand (b x) (b y))
        && Bignum.equal (b (x lor y)) (Bignum.logor (b x) (b y)));
    prop "set then test bit" (QCheck.pair small_nat (QCheck.make (QCheck.Gen.int_bound 400)))
      (fun (x, k) -> Bignum.bit (Bignum.set_bit (b x) k) k);
    prop "deposit/extract stride roundtrip"
      (QCheck.triple small_nat (QCheck.make (QCheck.Gen.int_bound 8)) (QCheck.make (QCheck.Gen.int_range 1 9)))
      (fun (v, offset, stride) ->
        let deposited = Bignum.deposit_stride (b v) ~offset ~stride in
        Bignum.equal (b v) (Bignum.extract_stride deposited ~offset ~stride));
    prop "disjoint streams do not interfere"
      (QCheck.pair small_nat small_nat)
      (fun (v0, v1) ->
        let n = 2 in
        let r =
          Bignum.logor
            (Bignum.deposit_stride (b v0) ~offset:0 ~stride:n)
            (Bignum.deposit_stride (b v1) ~offset:1 ~stride:n)
        in
        Bignum.equal (b v0) (Bignum.extract_stride r ~offset:0 ~stride:n)
        && Bignum.equal (b v1) (Bignum.extract_stride r ~offset:1 ~stride:n));
    prop "signed add models int add"
      (QCheck.pair (QCheck.make (QCheck.Gen.int_range (-10000) 10000)) (QCheck.make (QCheck.Gen.int_range (-10000) 10000)))
      (fun (x, y) ->
        let module S = Bignum.Signed in
        let s = S.add (S.of_int x) (S.of_int y) in
        let expect = x + y in
        if expect >= 0 then (not s.S.neg) || Bignum.is_zero s.S.mag else s.S.neg;);
    prop "signed apply models int"
      (QCheck.pair small_nat (QCheck.make (QCheck.Gen.int_range (-1000) 1000)))
      (fun (x, d) ->
        let module S = Bignum.Signed in
        QCheck.assume (x + d >= 0);
        Bignum.equal (b (x + d)) (S.apply (b x) (S.of_int d)));
  ]

let suite =
  [
    ("constants", `Quick, test_constants);
    ("of/to int", `Quick, test_of_to_int);
    ("to_int overflow", `Quick, test_to_int_overflow);
    ("add/sub", `Quick, test_add_sub);
    ("mul/divmod small", `Quick, test_mul_divmod_small);
    ("strings", `Quick, test_strings);
    ("bits", `Quick, test_bits);
    ("logical", `Quick, test_logical);
    ("shifts", `Quick, test_shifts);
    ("stride", `Quick, test_stride);
    ("compare", `Quick, test_compare);
    ("signed", `Quick, test_signed);
  ]
  @ properties

let () = Alcotest.run "bignum" [ ("bignum", suite) ]
