(* Tests for the baseline implementations: the linearizable-but-not-
   strongly-linearizable classics the paper contrasts against (E2), and
   the CAS-class positive references. *)

module LQ = Lincheck.Make (Spec.Queue_spec)
module LS = Lincheck.Make (Spec.Stack_spec)
module LM = Lincheck.Make (Spec.Max_register)
module LC = Lincheck.Make (Spec.Counter)

module Snap2 = Spec.Snapshot (struct
  let n = 2
end)

module LSn2 = Lincheck.Make (Snap2)

(* --- executors ------------------------------------------------------ *)

let hw_exec (module R : Runtime_intf.S) =
  let module Q = Hw_queue.Make (R) in
  let t = Q.create () in
  fun (op : Spec.Queue_spec.op) : Spec.Queue_spec.resp ->
    match op with
    | Spec.Queue_spec.Enq x ->
        Q.enqueue t x;
        Spec.Queue_spec.Ok_
    | Spec.Queue_spec.Deq -> (
        match Q.dequeue t with None -> Spec.Queue_spec.Empty | Some x -> Spec.Queue_spec.Item x)

let agm_exec (module R : Runtime_intf.S) =
  let module S = Agm_stack.Make (R) in
  let t = S.create () in
  fun (op : Spec.Stack_spec.op) : Spec.Stack_spec.resp ->
    match op with
    | Spec.Stack_spec.Push x ->
        S.push t x;
        Spec.Stack_spec.Ok_
    | Spec.Stack_spec.Pop -> (
        match S.pop t with None -> Spec.Stack_spec.Empty | Some x -> Spec.Stack_spec.Item x)

let rw_max_exec (module R : Runtime_intf.S) =
  let module M = Rw_max_register.Make (R) in
  let t = M.create () in
  fun (op : Spec.Max_register.op) : Spec.Max_register.resp ->
    match op with
    | Spec.Max_register.WriteMax v ->
        M.write_max t v;
        Spec.Max_register.Ack
    | Spec.Max_register.ReadMax -> Spec.Max_register.Value (M.read_max t)

let rw_snap_exec (module R : Runtime_intf.S) =
  let module S = Rw_snapshot.Make (R) in
  let t = S.create () in
  fun (op : Snap2.op) : Snap2.resp ->
    match op with
    | Snap2.Update (p, v) ->
        assert (p = R.self ());
        S.update t v;
        Snap2.Ack
    | Snap2.Scan -> Snap2.View (Array.to_list (S.scan t))

let cas_queue_exec (module R : Runtime_intf.S) =
  let module U =
    Cas_universal.Make
      (R)
      (struct
        type state = int list
        type op = Spec.Queue_spec.op
        type resp = Spec.Queue_spec.resp

        let init = []

        let apply s : op -> state * resp = function
          | Spec.Queue_spec.Enq x -> (s @ [ x ], Spec.Queue_spec.Ok_)
          | Spec.Queue_spec.Deq -> (
              match s with
              | [] -> ([], Spec.Queue_spec.Empty)
              | x :: r -> (r, Spec.Queue_spec.Item x))
      end)
  in
  let t = U.create ~name:"casq" () in
  fun op -> U.execute t op

(* --- sequential sanity ----------------------------------------------- *)

let test_hw_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:2 ()) in
  let module Q = Hw_queue.Make (R) in
  let t = Q.create () in
  Q.enqueue t 1;
  Q.enqueue t 2;
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Q.dequeue t);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Q.dequeue t)

let test_agm_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:2 ()) in
  let module S = Agm_stack.Make (R) in
  let t = S.create () in
  S.push t 1;
  S.push t 2;
  Alcotest.(check (option int)) "lifo 2" (Some 2) (S.pop t);
  Alcotest.(check (option int)) "lifo 1" (Some 1) (S.pop t)

let test_rw_max_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:3 ()) in
  let module M = Rw_max_register.Make (R) in
  let t = M.create () in
  M.write_max t 4;
  M.write_max t 2;
  Alcotest.(check int) "max kept" 4 (M.read_max t)

let test_rw_snapshot_sequential () =
  let module R = (val Solo_runtime.make ~self:1 ~n:3 ()) in
  let module S = Rw_snapshot.Make (R) in
  let t = S.create () in
  S.update t 9;
  Alcotest.(check (array int)) "view" [| 0; 9; 0 |] (S.scan t)

let test_aww_one_shot () =
  let module R = (val Solo_runtime.make ~self:0 ~n:2 ()) in
  let module F = Aww_fetch_inc.Make (R) in
  let t = F.create () in
  Alcotest.(check int) "first" 1 (F.fetch_inc t);
  Alcotest.check_raises "one-shot enforced"
    (Invalid_argument "Aww_fetch_inc: one-shot object invoked twice") (fun () ->
      ignore (F.fetch_inc t))

(* --- linearizability of random executions ---------------------------- *)

let test_random_linearizable () =
  let workload =
    [|
      [ Spec.Queue_spec.Enq 1; Spec.Queue_spec.Deq ];
      [ Spec.Queue_spec.Enq 2; Spec.Queue_spec.Enq 3 ];
      [ Spec.Queue_spec.Deq; Spec.Queue_spec.Deq ];
    |]
  in
  (match
     Harness.find_non_linearizable ~check:LQ.is_linearizable ~runs:300
       (Harness.program ~make:hw_exec ~workload)
   with
  | None -> ()
  | Some seed -> Alcotest.failf "HW queue non-linearizable at seed %d" seed);
  let workload =
    [|
      [ Spec.Stack_spec.Push 1; Spec.Stack_spec.Pop ];
      [ Spec.Stack_spec.Push 2; Spec.Stack_spec.Push 3 ];
      [ Spec.Stack_spec.Pop; Spec.Stack_spec.Pop ];
    |]
  in
  (match
     Harness.find_non_linearizable ~check:LS.is_linearizable ~runs:300
       (Harness.program ~make:agm_exec ~workload)
   with
  | None -> ()
  | Some seed -> Alcotest.failf "AGM stack non-linearizable at seed %d" seed);
  let workload =
    [|
      [ Spec.Max_register.WriteMax 3; Spec.Max_register.ReadMax; Spec.Max_register.WriteMax 5 ];
      [ Spec.Max_register.WriteMax 4; Spec.Max_register.ReadMax ];
      [ Spec.Max_register.ReadMax; Spec.Max_register.WriteMax 1; Spec.Max_register.ReadMax ];
    |]
  in
  (match
     Harness.find_non_linearizable ~check:LM.is_linearizable ~runs:300
       (Harness.program ~make:rw_max_exec ~workload)
   with
  | None -> ()
  | Some seed -> Alcotest.failf "RW max register non-linearizable at seed %d" seed);
  let workload =
    [|
      [ Snap2.Update (0, 1); Snap2.Scan; Snap2.Update (0, 3) ];
      [ Snap2.Scan; Snap2.Update (1, 2); Snap2.Scan ];
    |]
  in
  match
    Harness.find_non_linearizable ~check:LSn2.is_linearizable ~runs:300
      (Harness.program ~make:rw_snap_exec ~workload)
  with
  | None -> ()
  | Some seed -> Alcotest.failf "AAD snapshot non-linearizable at seed %d" seed

(* --- strong linearizability refutations (E2) -------------------------- *)

let test_hw_not_strong () =
  let workload =
    [|
      [ Spec.Queue_spec.Enq 1 ];
      [ Spec.Queue_spec.Enq 2 ];
      [ Spec.Queue_spec.Deq ];
      [ Spec.Queue_spec.Deq ];
    |]
  in
  match
    LQ.check_strong ~max_nodes:3_000_000 ~max_depth:22 (Harness.program ~make:hw_exec ~workload)
  with
  | LQ.Not_strongly_linearizable _ -> ()
  | v -> Alcotest.failf "HW queue: %a" LQ.pp_verdict v

let test_agm_not_strong () =
  let workload =
    [|
      [ Spec.Stack_spec.Push 1 ];
      [ Spec.Stack_spec.Push 2 ];
      [ Spec.Stack_spec.Pop ];
      [ Spec.Stack_spec.Pop ];
    |]
  in
  match
    LS.check_strong ~max_nodes:5_000_000 ~max_depth:24 (Harness.program ~make:agm_exec ~workload)
  with
  | LS.Not_strongly_linearizable _ -> ()
  | v -> Alcotest.failf "AGM stack: %a" LS.pp_verdict v

(* --- CAS universal construction is strongly linearizable -------------- *)

let test_cas_universal_strong () =
  let workload =
    [|
      [ Spec.Queue_spec.Enq 1 ];
      [ Spec.Queue_spec.Enq 2 ];
      [ Spec.Queue_spec.Deq; Spec.Queue_spec.Deq ];
    |]
  in
  match
    LQ.check_strong ~max_nodes:2_000_000 ~max_depth:30
      (Harness.program ~make:cas_queue_exec ~workload)
  with
  | LQ.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "CAS universal queue: %a" LQ.pp_verdict v

(* AWW one-shot fetch&inc is strongly linearizable (paper §1). *)
module L_fi = Lincheck.Make (Spec.Fetch_and_inc)

let aww_exec (module R : Runtime_intf.S) =
  let module F = Aww_fetch_inc.Make (R) in
  let t = F.create () in
  fun (op : Spec.Fetch_and_inc.op) : Spec.Fetch_and_inc.resp ->
    match op with
    | Spec.Fetch_and_inc.FetchInc -> Spec.Fetch_and_inc.Value (F.fetch_inc t)
    | Spec.Fetch_and_inc.Read -> invalid_arg "one-shot object has no read"

let test_aww_strong () =
  let workload =
    [|
      [ Spec.Fetch_and_inc.FetchInc ];
      [ Spec.Fetch_and_inc.FetchInc ];
      [ Spec.Fetch_and_inc.FetchInc ];
    |]
  in
  match L_fi.check_strong (Harness.program ~make:aww_exec ~workload) with
  | L_fi.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "AWW one-shot fetch&inc: %a" L_fi.pp_verdict v

let suite =
  [
    ("HW queue sequential", `Quick, test_hw_sequential);
    ("AGM stack sequential", `Quick, test_agm_sequential);
    ("RW max register sequential", `Quick, test_rw_max_sequential);
    ("AAD snapshot sequential", `Quick, test_rw_snapshot_sequential);
    ("AWW one-shot semantics", `Quick, test_aww_one_shot);
    ("random executions linearizable", `Quick, test_random_linearizable);
    ("HW queue not strongly linearizable", `Slow, test_hw_not_strong);
    ("AGM stack not strongly linearizable", `Slow, test_agm_not_strong);
    ("CAS universal queue strongly linearizable", `Quick, test_cas_universal_strong);
    ("AWW one-shot strongly linearizable", `Quick, test_aww_strong);
  ]

let () = Alcotest.run "baselines" [ ("baselines", suite) ]
