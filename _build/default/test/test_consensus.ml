(* Tests for the consensus protocols (the paper's §2 yardstick) and the
   naive tournament test&set negative control. *)

(* Run a 2-process consensus protocol under many random schedules and
   check agreement + validity. *)
let run_consensus2 ~make_propose ~trials =
  for seed = 1 to trials do
    let decisions = Array.make 2 None in
    let inputs = [| 10 + (seed mod 7); 20 + (seed mod 5) |] in
    let prog : (string, string) Sim.program =
      {
        procs = 2;
        boot =
          (fun w ->
            let propose = make_propose (Sim.runtime w) in
            for p = 0 to 1 do
              Sim.spawn w ~proc:p (fun () -> decisions.(p) <- Some (propose inputs.(p)))
            done);
      }
    in
    ignore (Sim.run_random ~seed prog);
    (match (decisions.(0), decisions.(1)) with
    | Some a, Some b when a <> b ->
        Alcotest.failf "seed %d: disagreement %d vs %d" seed a b
    | _ -> ());
    Array.iter
      (function
        | Some d when not (Array.exists (( = ) d) inputs) ->
            Alcotest.failf "seed %d: invalid decision %d" seed d
        | _ -> ())
      decisions
  done

let test_two_from_ts () =
  run_consensus2 ~trials:300 ~make_propose:(fun rt ->
      let module R = (val rt : Runtime_intf.S) in
      let module C = Consensus.Two_from_ts (R) in
      let t = C.create () in
      fun v -> C.propose t v)

let test_two_from_queue () =
  run_consensus2 ~trials:300 ~make_propose:(fun rt ->
      let module R = (val rt : Runtime_intf.S) in
      let module C = Consensus.Two_from_queue (R) in
      let t = C.create () in
      fun v -> C.propose t v)

let test_any_from_cas () =
  (* n = 5 processes: CAS is universal. *)
  for seed = 1 to 200 do
    let n = 5 in
    let decisions = Array.make n None in
    let inputs = Array.init n (fun i -> 100 + i) in
    let prog : (string, string) Sim.program =
      {
        procs = n;
        boot =
          (fun w ->
            let module R = (val Sim.runtime w) in
            let module C = Consensus.Any_from_cas (R) in
            let t = C.create () in
            for p = 0 to n - 1 do
              Sim.spawn w ~proc:p (fun () -> decisions.(p) <- Some (C.propose t inputs.(p)))
            done);
      }
    in
    ignore (Sim.run_random ~seed ~crash_after:[ (seed mod n, seed mod 4) ] prog);
    let distinct =
      List.sort_uniq compare (List.filter_map Fun.id (Array.to_list decisions))
    in
    if List.length distinct > 1 then Alcotest.failf "seed %d: disagreement" seed
  done

let test_two_from_ts_rejects_third () =
  let prog : (string, string) Sim.program =
    {
      procs = 3;
      boot =
        (fun w ->
          let module R = (val Sim.runtime w) in
          let module C = Consensus.Two_from_ts (R) in
          let t = C.create () in
          for p = 0 to 2 do
            Sim.spawn w ~proc:p (fun () -> ignore (C.propose t p))
          done);
    }
  in
  Alcotest.check_raises "third proposer rejected"
    (Invalid_argument "Two_from_ts: 2-process protocol") (fun () ->
      ignore (Sim.run_to_completion prog))

(* --- tournament test&set: correct winner count, NOT linearizable ----- *)

let tournament_exec (module R : Runtime_intf.S) =
  let module T = Tournament_ts.Make (R) in
  let t = T.create () in
  fun (op : Spec.Test_and_set.op) : Spec.Test_and_set.resp ->
    match op with
    | Spec.Test_and_set.TestAndSet -> Spec.Test_and_set.Value (T.test_and_set t)
    | Spec.Test_and_set.Read -> invalid_arg "tournament T&S is not readable"

let test_tournament_one_winner () =
  (* Safety it does have: exactly one winner in every schedule. *)
  for seed = 1 to 300 do
    let winners = ref 0 in
    let prog : (string, string) Sim.program =
      {
        procs = 4;
        boot =
          (fun w ->
            let module R = (val Sim.runtime w) in
            let module T = Tournament_ts.Make (R) in
            let t = T.create () in
            for p = 0 to 3 do
              Sim.spawn w ~proc:p (fun () -> if T.test_and_set t = 0 then incr winners)
            done);
      }
    in
    ignore (Sim.run_random ~seed prog);
    if !winners <> 1 then Alcotest.failf "seed %d: %d winners" seed !winners
  done

let test_tournament_not_linearizable () =
  let module L = Lincheck.Make (Spec.Test_and_set) in
  let workload = Array.make 4 [ Spec.Test_and_set.TestAndSet ] in
  match L.check_strong ~max_nodes:2_000_000 (Harness.program ~make:tournament_exec ~workload) with
  | L.Not_linearizable { schedule } ->
      (* Replay the witness: it must really be a bad execution. *)
      let w = Sim.run_schedule (Harness.program ~make:tournament_exec ~workload) schedule in
      Alcotest.(check bool) "witness replays to a non-linearizable trace" false
        (L.is_linearizable (Sim.trace w))
  | v -> Alcotest.failf "tournament: expected Not_linearizable, got %a" L.pp_verdict v

let suite =
  [
    ("2-process consensus from test&set", `Quick, test_two_from_ts);
    ("2-process consensus from a queue", `Quick, test_two_from_queue);
    ("n-process consensus from CAS", `Quick, test_any_from_cas);
    ("2-process protocol guards", `Quick, test_two_from_ts_rejects_third);
    ("tournament T&S: one winner", `Quick, test_tournament_one_winner);
    ("tournament T&S: not linearizable", `Quick, test_tournament_not_linearizable);
  ]

let () = Alcotest.run "consensus" [ ("consensus", suite) ]
