(* Tests for the typed base objects, run on the solo runtime (semantics)
   and the simulator (atomicity under interleaving). *)

let solo () = Solo_runtime.make ~self:0 ~n:2 ()

let test_register () =
  let module R0 = (val solo ()) in
  let module P = Prim.Make (R0) in
  let r = P.Register.make 5 in
  Alcotest.(check int) "init" 5 (P.Register.read r);
  P.Register.write r 9;
  Alcotest.(check int) "written" 9 (P.Register.read r)

let test_test_and_set () =
  let module R0 = (val solo ()) in
  let module P = Prim.Make (R0) in
  let ts = P.Test_and_set.make () in
  Alcotest.(check int) "read clean" 0 (P.Test_and_set.read ts);
  Alcotest.(check int) "first wins" 0 (P.Test_and_set.test_and_set ts);
  Alcotest.(check int) "second loses" 1 (P.Test_and_set.test_and_set ts);
  Alcotest.(check int) "read set" 1 (P.Test_and_set.read ts)

let test_two_process_ts () =
  (* Three distinct processes using a 2-process test&set must be caught. *)
  let prog : (string, string) Sim.program =
    {
      procs = 3;
      boot =
        (fun w ->
          let module R0 = (val Sim.runtime w) in
          let module P = Prim.Make (R0) in
          let ts = P.Test_and_set.make ~procs:2 () in
          for p = 0 to 2 do
            Sim.spawn w ~proc:p (fun () -> ignore (P.Test_and_set.test_and_set ts))
          done);
    }
  in
  Alcotest.check_raises "third process rejected"
    (Invalid_argument "Test_and_set: 2-process object used by 3 processes") (fun () ->
      ignore (Sim.run_to_completion prog))

let test_faa_wide () =
  let module R0 = (val solo ()) in
  let module P = Prim.Make (R0) in
  let r = P.Faa_wide.make Bignum.zero in
  let old = P.Faa_wide.fetch_and_add r (Bignum.Signed.of_int 5) in
  Alcotest.(check bool) "old was 0" true (Bignum.is_zero old);
  let old = P.Faa_wide.fetch_and_add r (Bignum.Signed.of_int (-2)) in
  Alcotest.(check string) "old was 5" "5" (Bignum.to_string old);
  Alcotest.(check string) "now 3" "3" (Bignum.to_string (P.Faa_wide.read r));
  (* A wide add beyond word size. *)
  let big = Bignum.pow2 200 in
  ignore (P.Faa_wide.fetch_and_add r (Bignum.Signed.of_nat big));
  Alcotest.(check bool) "wide value" true
    (Bignum.equal (P.Faa_wide.read r) (Bignum.add big (Bignum.of_int 3)))

let test_faa_int_swap_cas () =
  let module R0 = (val solo ()) in
  let module P = Prim.Make (R0) in
  let f = P.Faa_int.make 10 in
  Alcotest.(check int) "faa old" 10 (P.Faa_int.fetch_and_add f 3);
  Alcotest.(check int) "faa new" 13 (P.Faa_int.read f);
  let s = P.Swap.make "a" in
  Alcotest.(check string) "swap old" "a" (P.Swap.swap s "b");
  Alcotest.(check string) "swap new" "b" (P.Swap.read s);
  let c = P.Cas.make 0 in
  Alcotest.(check bool) "cas success" true (P.Cas.compare_and_swap c ~expect:0 1);
  Alcotest.(check bool) "cas failure" false (P.Cas.compare_and_swap c ~expect:0 2);
  Alcotest.(check int) "cas state" 1 (P.Cas.read c)

(* Atomicity under the simulator: n processes race on one test&set; in
   every schedule exactly one process wins. *)
let prop_ts_one_winner =
  let gen = QCheck.Gen.(list_size (return 40) (int_bound 2)) in
  let arb = QCheck.make ~print:(fun l -> String.concat "" (List.map string_of_int l)) gen in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"one test&set winner in every schedule" ~count:300 arb
       (fun choices ->
         let winners = ref 0 in
         let prog : (string, string) Sim.program =
           {
             procs = 3;
             boot =
               (fun w ->
                 let module R0 = (val Sim.runtime w) in
          let module P = Prim.Make (R0) in
                 let ts = P.Test_and_set.make () in
                 for p = 0 to 2 do
                   Sim.spawn w ~proc:p (fun () ->
                       if P.Test_and_set.test_and_set ts = 0 then incr winners)
                 done);
           }
         in
         let w = Sim.create ~n:3 in
         prog.boot w;
         List.iter
           (fun p -> if List.mem p (Sim.enabled w) then Sim.step w p)
           choices;
         let rec drain () =
           match Sim.enabled w with
           | [] -> ()
           | p :: _ ->
               Sim.step w p;
               drain ()
         in
         drain ();
         !winners = 1))

(* Same for fetch&add: concurrent adds never lose updates. *)
let prop_faa_no_lost_updates =
  let gen = QCheck.Gen.(list_size (return 60) (int_bound 2)) in
  let arb = QCheck.make ~print:(fun l -> String.concat "" (List.map string_of_int l)) gen in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"fetch&add sums all deltas" ~count:200 arb (fun choices ->
         let final = ref Bignum.zero in
         let prog : (string, string) Sim.program =
           {
             procs = 3;
             boot =
               (fun w ->
                 let module R0 = (val Sim.runtime w) in
          let module P = Prim.Make (R0) in
                 let r = P.Faa_wide.make Bignum.zero in
                 for p = 0 to 2 do
                   Sim.spawn w ~proc:p (fun () ->
                       for _ = 1 to 3 do
                         ignore (P.Faa_wide.fetch_and_add r (Bignum.Signed.of_int (p + 1)))
                       done;
                       final := P.Faa_wide.read r)
                 done);
           }
         in
         let w = Sim.create ~n:3 in
         prog.boot w;
         List.iter (fun p -> if List.mem p (Sim.enabled w) then Sim.step w p) choices;
         let rec drain () =
           match Sim.enabled w with
           | [] -> ()
           | p :: _ ->
               Sim.step w p;
               drain ()
         in
         drain ();
         (* 3*(1+2+3) = 18 *)
         Bignum.equal !final (Bignum.of_int 18)))

let suite =
  [
    ("register", `Quick, test_register);
    ("test&set", `Quick, test_test_and_set);
    ("2-process test&set guard", `Quick, test_two_process_ts);
    ("wide fetch&add", `Quick, test_faa_wide);
    ("int faa / swap / cas", `Quick, test_faa_int_swap_cas);
    prop_ts_one_winner;
    prop_faa_no_lost_updates;
  ]

let () = Alcotest.run "primitives" [ ("primitives", suite) ]
