(* Tests for the linearizability checker and the strong-linearizability
   game solver.  These validate the checkers themselves on objects whose
   status is known, before they are used to verify the paper's
   constructions. *)

module L_reg = Lincheck.Make (Spec.Register)
module L_queue = Lincheck.Make (Spec.Queue_spec)
module L_set = Lincheck.Make (Spec.Set_obj)
module L_max = Lincheck.Make (Spec.Max_register)

(* Handcrafted traces (indices don't matter beyond relative order). *)
let inv p op = Trace.Invoke { proc = p; op }
let ret p resp = Trace.Return { proc = p; resp }

let test_sequential_register () =
  let t =
    [
      inv 0 (Spec.Register.Write 1);
      ret 0 Spec.Register.Ack;
      inv 1 Spec.Register.Read;
      ret 1 (Spec.Register.Value 1);
    ]
  in
  Alcotest.(check bool) "linearizable" true (L_reg.is_linearizable t)

let test_stale_read_rejected () =
  (* Write(1) completes strictly before Read is invoked, yet Read sees 0. *)
  let t =
    [
      inv 0 (Spec.Register.Write 1);
      ret 0 Spec.Register.Ack;
      inv 1 Spec.Register.Read;
      ret 1 (Spec.Register.Value 0);
    ]
  in
  Alcotest.(check bool) "not linearizable" false (L_reg.is_linearizable t)

let test_concurrent_read_both_ok () =
  let overlapping v =
    [
      inv 0 (Spec.Register.Write 1);
      inv 1 Spec.Register.Read;
      ret 1 (Spec.Register.Value v);
      ret 0 Spec.Register.Ack;
    ]
  in
  Alcotest.(check bool) "old value ok" true (L_reg.is_linearizable (overlapping 0));
  Alcotest.(check bool) "new value ok" true (L_reg.is_linearizable (overlapping 1));
  Alcotest.(check bool) "phantom value rejected" false (L_reg.is_linearizable (overlapping 7))

let test_pending_write_justifies_read () =
  (* The write never returns, but the read observed it: the pending write
     must be linearized before the read. *)
  let t =
    [ inv 0 (Spec.Register.Write 1); inv 1 Spec.Register.Read; ret 1 (Spec.Register.Value 1) ]
  in
  match L_reg.check_trace t with
  | None -> Alcotest.fail "should be linearizable via pending write"
  | Some lin -> Alcotest.(check int) "pending write included" 2 (List.length lin)

let test_queue_fifo () =
  let t =
    [
      inv 0 (Spec.Queue_spec.Enq 1);
      ret 0 Spec.Queue_spec.Ok_;
      inv 0 (Spec.Queue_spec.Enq 2);
      ret 0 Spec.Queue_spec.Ok_;
      inv 1 Spec.Queue_spec.Deq;
      ret 1 (Spec.Queue_spec.Item 2);
    ]
  in
  Alcotest.(check bool) "lifo rejected on queue" false (L_queue.is_linearizable t);
  let t_ok =
    [
      inv 0 (Spec.Queue_spec.Enq 1);
      ret 0 Spec.Queue_spec.Ok_;
      inv 0 (Spec.Queue_spec.Enq 2);
      ret 0 Spec.Queue_spec.Ok_;
      inv 1 Spec.Queue_spec.Deq;
      ret 1 (Spec.Queue_spec.Item 1);
    ]
  in
  Alcotest.(check bool) "fifo accepted" true (L_queue.is_linearizable t_ok)

let test_set_nondeterminism () =
  let take_of v =
    [
      inv 0 (Spec.Set_obj.Put 1);
      ret 0 Spec.Set_obj.Ok_;
      inv 1 (Spec.Set_obj.Put 2);
      ret 1 Spec.Set_obj.Ok_;
      inv 2 Spec.Set_obj.Take;
      ret 2 (Spec.Set_obj.Item v);
    ]
  in
  Alcotest.(check bool) "take 1 ok" true (L_set.is_linearizable (take_of 1));
  Alcotest.(check bool) "take 2 ok" true (L_set.is_linearizable (take_of 2));
  Alcotest.(check bool) "take 3 rejected" false (L_set.is_linearizable (take_of 3))

let test_real_time_order_enforced () =
  (* Two sequential meta-operations cannot be reordered even when the
     responses alone would allow it: Read -> 1 before Write(1) returns is
     fine when overlapping, but not when the read completed first. *)
  let t =
    [
      inv 1 Spec.Register.Read;
      ret 1 (Spec.Register.Value 1);
      inv 0 (Spec.Register.Write 1);
      ret 0 Spec.Register.Ack;
    ]
  in
  Alcotest.(check bool) "future read rejected" false (L_reg.is_linearizable t)

(* ------------------------------------------------------------------ *)
(* Programs for the strong-linearizability game                        *)
(* ------------------------------------------------------------------ *)

(* Atomic register: every operation is a single access — trivially
   strongly linearizable. *)
let atomic_register_program ops : (Spec.Register.op, Spec.Register.resp) Sim.program =
  {
    procs = Array.length ops;
    boot =
      (fun w ->
        let module R = (val Sim.runtime w) in
        let r = R.obj ~name:"r" 0 in
        Array.iteri
          (fun p my_ops ->
            Sim.spawn w ~proc:p (fun () ->
                List.iter
                  (fun op ->
                    ignore
                      (Sim.operation w ~op
                         ~resp:(fun x -> x)
                         (fun () ->
                           match op with
                           | Spec.Register.Read ->
                               Spec.Register.Value (R.access r (fun s -> (s, s)))
                           | Spec.Register.Write v ->
                               R.access r (fun _ -> (v, ()));
                               Spec.Register.Ack)))
                  my_ops))
          ops);
  }

(* Broken max register: WriteMax reads then conditionally writes — loses
   concurrent writes, so it is not even linearizable. *)
let broken_max_program () : (Spec.Max_register.op, Spec.Max_register.resp) Sim.program =
  {
    procs = 3;
    boot =
      (fun w ->
        let module R = (val Sim.runtime w) in
        let r = R.obj ~name:"r" 0 in
        let write_max v =
          let cur = R.read r in
          if v > cur then R.access r (fun _ -> (v, ()))
        in
        Sim.spawn w ~proc:0 (fun () ->
            ignore
              (Sim.operation w ~op:(Spec.Max_register.WriteMax 1)
                 ~resp:(fun () -> Spec.Max_register.Ack)
                 (fun () -> write_max 1)));
        Sim.spawn w ~proc:1 (fun () ->
            ignore
              (Sim.operation w ~op:(Spec.Max_register.WriteMax 2)
                 ~resp:(fun () -> Spec.Max_register.Ack)
                 (fun () -> write_max 2)));
        Sim.spawn w ~proc:2 (fun () ->
            let read1 =
              Sim.operation w ~op:Spec.Max_register.ReadMax
                ~resp:(fun v -> Spec.Max_register.Value v)
                (fun () -> R.read r)
            in
            let read2 =
              Sim.operation w ~op:Spec.Max_register.ReadMax
                ~resp:(fun v -> Spec.Max_register.Value v)
                (fun () -> R.read r)
            in
            ignore (read1, read2)));
  }

(* Multi-writer register from single-writer registers (Vitányi–Awerbuch
   style timestamps).  Linearizable, but by Helmi–Higham–Woelfel (PODC
   2012) single-writer registers do not support lock-free strongly
   linearizable multi-writer registers — the game should refute it. *)
let mwmr_program () : (Spec.Register.op, Spec.Register.resp) Sim.program =
  {
    procs = 3;
    boot =
      (fun w ->
        let module R = (val Sim.runtime w) in
        (* own.(p) holds (timestamp, pid, value); p is its only writer. *)
        let own = Array.init 3 (fun i -> R.obj ~name:(Printf.sprintf "own%d" i) (0, i, 0)) in
        let collect () = Array.map (fun o -> R.read o) own in
        let write p v =
          let views = collect () in
          let ts = Array.fold_left (fun acc (t, _, _) -> max acc t) 0 views in
          R.access own.(p) (fun _ -> ((ts + 1, p, v), ()))
        in
        let read () =
          let views = collect () in
          let _, _, v = Array.fold_left max (min_int, min_int, 0) views in
          v
        in
        Sim.spawn w ~proc:0 (fun () ->
            ignore
              (Sim.operation w ~op:(Spec.Register.Write 1)
                 ~resp:(fun () -> Spec.Register.Ack)
                 (fun () -> write 0 1)));
        Sim.spawn w ~proc:1 (fun () ->
            ignore
              (Sim.operation w ~op:(Spec.Register.Write 2)
                 ~resp:(fun () -> Spec.Register.Ack)
                 (fun () -> write 1 2)));
        Sim.spawn w ~proc:2 (fun () ->
            for _ = 1 to 2 do
              ignore
                (Sim.operation w ~op:Spec.Register.Read
                   ~resp:(fun v -> Spec.Register.Value v)
                   (fun () -> read ()))
            done));
  }

let test_atomic_register_strong () =
  let ops =
    [| [ Spec.Register.Write 1; Spec.Register.Read ]; [ Spec.Register.Write 2 ]; [ Spec.Register.Read ] |]
  in
  match L_reg.check_strong (atomic_register_program ops) with
  | L_reg.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "expected strong, got: %a" L_reg.pp_verdict v

let test_broken_max_not_linearizable () =
  match L_max.check_strong (broken_max_program ()) with
  | L_max.Not_linearizable _ -> ()
  | v -> Alcotest.failf "expected not linearizable, got: %a" L_max.pp_verdict v

let test_mwmr_not_strong () =
  match L_reg.check_strong ~max_nodes:2_000_000 (mwmr_program ()) with
  | L_reg.Not_strongly_linearizable _ -> ()
  | v -> Alcotest.failf "expected not strongly linearizable, got: %a" L_reg.pp_verdict v

(* Every single execution of the MWMR register is linearizable — the
   defect is only in prefix-closedness.  Checked on random schedules. *)
let test_mwmr_linearizable_executions () =
  for seed = 1 to 50 do
    let w = Sim.run_random ~seed (mwmr_program ()) in
    if not (L_reg.is_linearizable (Sim.trace w)) then
      Alcotest.failf "seed %d: execution not linearizable" seed
  done

let test_progress_measure () =
  let ops = [| [ Spec.Register.Write 1 ]; [ Spec.Register.Read ] |] in
  let r = Progress.measure ~runs:20 (atomic_register_program ops) in
  Alcotest.(check int) "every run completes 2 ops" 40 r.Progress.total_completed;
  Alcotest.(check int) "atomic ops take one step" 1 r.Progress.max_steps_per_op

(* Property: the game verdict on an atomic register is Strongly_
   linearizable for EVERY workload — atomic objects are the definition of
   strong linearizability, so any refutation would be a checker bug. *)
let prop_atomic_always_strong =
  let gen =
    QCheck.Gen.(
      list_size (int_range 2 3)
        (list_size (int_bound 2) (frequency [ (1, map (fun v -> Spec.Register.Write v) (int_bound 3)); (1, return Spec.Register.Read) ])))
  in
  let arb =
    QCheck.make
      ~print:(fun w ->
        String.concat "|"
          (List.map
             (fun ops -> String.concat ";" (List.map (Format.asprintf "%a" Spec.Register.pp_op) ops))
             w))
      gen
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"atomic register strong on random workloads" ~count:60 arb
       (fun workload ->
         let ops = Array.of_list workload in
         QCheck.assume (Array.length ops >= 2);
         match L_reg.check_strong ~max_nodes:300_000 (atomic_register_program ops) with
         | L_reg.Strongly_linearizable _ -> true
         | L_reg.Out_of_budget _ -> QCheck.assume_fail ()
         | _ -> false))

(* Property: the MWMR register is linearizable on every random workload —
   the checker must never classify it Not_linearizable. *)
let prop_mwmr_never_notlin =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"MWMR register linearizable on random schedules" ~count:100 arb
       (fun seed ->
         let w = Sim.run_random ~seed (mwmr_program ()) in
         L_reg.is_linearizable (Sim.trace w)))

let suite =
  [
    ("sequential register", `Quick, test_sequential_register);
    ("stale read rejected", `Quick, test_stale_read_rejected);
    ("concurrent read", `Quick, test_concurrent_read_both_ok);
    ("pending write justifies read", `Quick, test_pending_write_justifies_read);
    ("queue fifo", `Quick, test_queue_fifo);
    ("set nondeterminism", `Quick, test_set_nondeterminism);
    ("real-time order", `Quick, test_real_time_order_enforced);
    ("atomic register strongly linearizable", `Quick, test_atomic_register_strong);
    ("broken max not linearizable", `Quick, test_broken_max_not_linearizable);
    ("MWMR register not strongly linearizable", `Slow, test_mwmr_not_strong);
    ("MWMR register executions linearizable", `Quick, test_mwmr_linearizable_executions);
    ("progress measurement", `Quick, test_progress_measure);
    prop_atomic_always_strong;
    prop_mwmr_never_notlin;
  ]

let () = Alcotest.run "lincheck" [ ("lincheck", suite) ]
