(* Sequential conformance: every implementation, run solo on random
   operation sequences, must produce responses the specification allows.

   This complements the concurrent checks: the lincheck suites validate
   interleavings on small fixed workloads; these properties validate the
   sequential semantics on hundreds of random longer workloads.  The spec
   is followed as a set of possible states (relaxed objects are
   nondeterministic); an implementation conforms when every response is
   allowed by at least one state path. *)

let conforms (type op resp state)
    (module S : Spec.S with type op = op and type resp = resp and type state = state)
    ~(make : (module Runtime_intf.S) -> op -> resp) (ops : op list) : bool =
  let exec = make (Solo_runtime.make ~self:0 ~n:1 ()) in
  let step states op resp =
    List.concat_map (fun s -> S.apply s op) states
    |> List.filter_map (fun (s', r) -> if S.equal_resp r resp then Some s' else None)
    |> List.sort_uniq compare
  in
  let rec go states = function
    | [] -> true
    | op :: rest -> (
        match step states op (exec op) with [] -> false | states' -> go states' rest)
  in
  go [ S.init ] ops

let prop name ?(count = 300) arb check = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb check)

(* --- generators ------------------------------------------------------- *)

let list_of gen = QCheck.Gen.(list_size (int_bound 25) gen)

let max_register_ops =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map (Format.asprintf "%a" Spec.Max_register.pp_op) l))
    (list_of
       QCheck.Gen.(
         frequency
           [ (2, map (fun v -> Spec.Max_register.WriteMax v) (int_bound 40)); (1, return Spec.Max_register.ReadMax) ]))

let counter_ops =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map (Format.asprintf "%a" Spec.Counter.pp_op) l))
    (list_of
       QCheck.Gen.(
         frequency
           [ (2, map (fun v -> Spec.Counter.Add (v - 10)) (int_bound 20)); (1, return Spec.Counter.Read) ]))

let fi_ops =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map (Format.asprintf "%a" Spec.Fetch_and_inc.pp_op) l))
    (list_of
       QCheck.Gen.(
         frequency
           [ (2, return Spec.Fetch_and_inc.FetchInc); (1, return Spec.Fetch_and_inc.Read) ]))

let msts_ops =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (Format.asprintf "%a" Spec.Multishot_test_and_set.pp_op) l))
    (list_of
       QCheck.Gen.(
         frequency
           [
             (2, return Spec.Multishot_test_and_set.TestAndSet);
             (1, return Spec.Multishot_test_and_set.Read);
             (1, return Spec.Multishot_test_and_set.Reset);
           ]))

let set_ops =
  (* Distinct put values, as Algorithm 2 assumes. *)
  let gen =
    QCheck.Gen.(
      list_size (int_bound 25) (int_bound 2)
      |> map (fun l ->
             let fresh = ref 0 in
             List.map
               (fun c ->
                 if c = 0 then Spec.Set_obj.Take
                 else begin
                   incr fresh;
                   Spec.Set_obj.Put !fresh
                 end)
               l))
  in
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map (Format.asprintf "%a" Spec.Set_obj.pp_op) l))
    gen

let queue_ops =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 25) (int_bound 2)
      |> map (fun l ->
             let fresh = ref 0 in
             List.map
               (fun c ->
                 if c = 0 then Spec.Queue_spec.Deq
                 else begin
                   incr fresh;
                   Spec.Queue_spec.Enq !fresh
                 end)
               l))
  in
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map (Format.asprintf "%a" Spec.Queue_spec.pp_op) l))
    gen

let stack_ops =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 25) (int_bound 2)
      |> map (fun l ->
             let fresh = ref 0 in
             List.map
               (fun c ->
                 if c = 0 then Spec.Stack_spec.Pop
                 else begin
                   incr fresh;
                   Spec.Stack_spec.Push !fresh
                 end)
               l))
  in
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map (Format.asprintf "%a" Spec.Stack_spec.pp_op) l))
    gen

(* A solo queue/stack consumer must never spin: drop unmatched Deq/Pop.
   (The HW dequeue retries while empty — on the solo runtime that would
   loop forever, so conformance workloads keep consumers covered.) *)
let cover_consumers is_producer ops =
  let balance = ref 0 in
  List.filter
    (fun op ->
      if is_producer op then begin
        incr balance;
        true
      end
      else if !balance > 0 then begin
        decr balance;
        true
      end
      else false)
    ops

(* --- the properties --------------------------------------------------- *)

let suite =
  [
    prop "Thm 1 max register conforms" max_register_ops (fun ops ->
        conforms (module Spec.Max_register) ~make:Executors.faa_max_register ops);
    prop "Thm 4 counter conforms" ~count:100 counter_ops (fun ops ->
        conforms (module Spec.Counter) ~make:Executors.simple_counter ops);
    prop "Thm 4 max register conforms" ~count:100 max_register_ops (fun ops ->
        conforms (module Spec.Max_register) ~make:Executors.simple_max_register ops);
    prop "Thm 6 multishot T&S conforms (atomic bases)" msts_ops (fun ops ->
        conforms (module Spec.Multishot_test_and_set) ~make:Executors.multishot_ts_atomic ops);
    prop "Cor 7 multishot T&S conforms (composed)" msts_ops (fun ops ->
        conforms (module Spec.Multishot_test_and_set) ~make:Executors.multishot_ts_composed ops);
    prop "Thm 9 fetch&inc conforms" fi_ops (fun ops ->
        conforms (module Spec.Fetch_and_inc) ~make:Executors.ts_fetch_inc ops);
    prop "Thm 10 set conforms (full stack)" set_ops (fun ops ->
        conforms (module Spec.Set_obj) ~make:Executors.ts_set_full ops);
    prop "repaired set conforms" set_ops (fun ops ->
        let make (module R : Runtime_intf.S) =
          let module A = Atomic_objects.Make (R) in
          let module S = Ts_set_conservative.Make (R) (A.Fetch_inc) in
          let t = S.create () in
          fun (op : Spec.Set_obj.op) : Spec.Set_obj.resp ->
            match op with
            | Spec.Set_obj.Put x ->
                S.put t x;
                Spec.Set_obj.Ok_
            | Spec.Set_obj.Take -> (
                match S.take t with
                | None -> Spec.Set_obj.Empty
                | Some x -> Spec.Set_obj.Item x)
        in
        conforms (module Spec.Set_obj) ~make ops);
    prop "HW queue conforms" queue_ops (fun ops ->
        let ops = cover_consumers (function Spec.Queue_spec.Enq _ -> true | _ -> false) ops in
        conforms (module Spec.Queue_spec) ~make:Executors.hw_queue ops);
    prop "AGM stack conforms" stack_ops (fun ops ->
        let ops = cover_consumers (function Spec.Stack_spec.Push _ -> true | _ -> false) ops in
        conforms (module Spec.Stack_spec) ~make:Executors.agm_stack ops);
    prop "RW max register conforms" max_register_ops (fun ops ->
        conforms (module Spec.Max_register) ~make:Executors.rw_max_register ops);
    prop "CAS queue conforms" queue_ops (fun ops ->
        conforms (module Spec.Queue_spec) ~make:Executors.cas_queue ops);
    prop "MWMR register conforms"
      (QCheck.make
         ~print:(fun l -> String.concat ";" (List.map (Format.asprintf "%a" Spec.Register.pp_op) l))
         (list_of
            QCheck.Gen.(
              frequency
                [ (2, map (fun v -> Spec.Register.Write v) (int_bound 9)); (1, return Spec.Register.Read) ])))
      (fun ops -> conforms (module Spec.Register) ~make:Executors.mwmr_register ops);
  ]

let () = Alcotest.run "conformance" [ ("conformance", suite) ]
