(* Ablations tied to the paper's side remarks:
   - footnote 2 (§4.3): Algorithm 2 without the distinct-items assumption
     implements a multiset;
   - §6 open problem: the naive wide-from-narrow fetch&add strawman is
     not even linearizable, which is why the question is open. *)

module L_mset = Lincheck.Make (Spec.Multiset_obj)
module L_faa = Lincheck.Make (Spec.Fetch_and_add)

(* --- multiset semantics of Algorithm 2 -------------------------------- *)

let mset_exec (module R : Runtime_intf.S) =
  let module RT = Readable_ts.Make (R) in
  let module F = Ts_fetch_inc.Make (RT) in
  let module S = Ts_set.Make (R) (F) in
  let t = S.create ~name:"mset" () in
  fun (op : Spec.Multiset_obj.op) : Spec.Multiset_obj.resp ->
    match op with
    | Spec.Multiset_obj.Put x ->
        S.put t x;
        Spec.Multiset_obj.Ok_
    | Spec.Multiset_obj.Take -> (
        match S.take t with
        | None -> Spec.Multiset_obj.Empty
        | Some x -> Spec.Multiset_obj.Item x)

let test_multiset_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:1 ()) in
  let module RT = Readable_ts.Make (R) in
  let module F = Ts_fetch_inc.Make (RT) in
  let module S = Ts_set.Make (R) (F) in
  let t = S.create () in
  (* The same item put twice yields two occurrences. *)
  S.put t 7;
  S.put t 7;
  Alcotest.(check (option int)) "first occurrence" (Some 7) (S.take t);
  Alcotest.(check (option int)) "second occurrence" (Some 7) (S.take t);
  Alcotest.(check (option int)) "drained" None (S.take t)

(* FINDING (see DESIGN.md): with two puts racing a take, the checker
   refutes strong linearizability of Algorithm 2 — the EMPTY-returning
   take's linearization point ("its last step that reads Max") is only
   determined retroactively, and an adversary holding a pending put can
   force the completed take to be ordered before an already-linearized
   put in one future and after it in another.  The refutation is
   exhaustive (finite witness tree), so it applies to the algorithm, not
   just to a linearization strategy.  Pinned here for the multiset
   variant; see test_set_empty_race_refuted for Theorem 10's exact
   setting. *)
let test_multiset_empty_race_refuted () =
  let workload =
    [| [ Spec.Multiset_obj.Put 7 ]; [ Spec.Multiset_obj.Put 7 ]; [ Spec.Multiset_obj.Take ] |]
  in
  match
    L_mset.check_strong ~max_nodes:2_000_000 (Harness.program ~make:mset_exec ~workload)
  with
  | L_mset.Not_strongly_linearizable _ -> ()
  | v -> Alcotest.failf "multiset: %a" L_mset.pp_verdict v

module L_set = Lincheck.Make (Spec.Set_obj)

let set_exec (module R : Runtime_intf.S) =
  let module A = Atomic_objects.Make (R) in
  let module S = Ts_set.Make (R) (A.Fetch_inc) in
  let t = S.create ~name:"set" () in
  fun (op : Spec.Set_obj.op) : Spec.Set_obj.resp ->
    match op with
    | Spec.Set_obj.Put x ->
        S.put t x;
        Spec.Set_obj.Ok_
    | Spec.Set_obj.Take -> (
        match S.take t with None -> Spec.Set_obj.Empty | Some x -> Spec.Set_obj.Item x)

let test_set_empty_race_refuted () =
  (* Theorem 10's exact setting — distinct items, atomic base objects —
     same refutation. *)
  let workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Put 2 ]; [ Spec.Set_obj.Take ] |] in
  match
    L_set.check_strong ~max_nodes:4_000_000 (Harness.program ~make:set_exec ~workload)
  with
  | L_set.Not_strongly_linearizable _ -> ()
  | v -> Alcotest.failf "set empty race: %a" L_set.pp_verdict v

let test_set_executions_linearizable () =
  (* The refutation is purely about prefix-closure: every execution of
     the same workload is plainly linearizable. *)
  let workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Put 2 ]; [ Spec.Set_obj.Take ] |] in
  match
    Harness.find_non_linearizable ~check:L_set.is_linearizable ~runs:300
      (Harness.program ~make:set_exec ~workload)
  with
  | None -> ()
  | Some seed -> Alcotest.failf "set: non-linearizable at seed %d" seed

(* Diagnosis companion to the finding: the SAME workload verifies once
   the EMPTY path is removed (take spins instead of concluding empty), so
   the EMPTY linearization point is the sole cause of the refutation. *)
let noempty_exec (module R : Runtime_intf.S) =
  let module P = Prim.Make (R) in
  let module A = Atomic_objects.Make (R) in
  let items = Inf_array.create (fun _ -> P.Register.make None) in
  let ts = Inf_array.create (fun _ -> P.Test_and_set.make ()) in
  let max = A.Fetch_inc.create () in
  fun (op : Spec.Set_obj.op) : Spec.Set_obj.resp ->
    match op with
    | Spec.Set_obj.Put x ->
        let slot = A.Fetch_inc.fetch_inc max in
        P.Register.write (Inf_array.get items slot) (Some x);
        Spec.Set_obj.Ok_
    | Spec.Set_obj.Take ->
        let result = ref None in
        while !result = None do
          let max_new = A.Fetch_inc.read max - 1 in
          let c = ref 1 in
          while !result = None && !c <= max_new do
            (match P.Register.read (Inf_array.get items !c) with
            | Some x ->
                if P.Test_and_set.test_and_set (Inf_array.get ts !c) = 0 then result := Some x
            | None -> ());
            incr c
          done
        done;
        (match !result with Some x -> Spec.Set_obj.Item x | None -> assert false)

let test_set_without_empty_verifies () =
  let workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Put 2 ]; [ Spec.Set_obj.Take ] |] in
  match
    L_set.check_strong ~max_nodes:4_000_000 ~max_depth:15
      (Harness.program ~make:noempty_exec ~workload)
  with
  | L_set.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "set without EMPTY: %a" L_set.pp_verdict v

(* --- the repaired set: conservative EMPTY ----------------------------- *)

let cset_exec (module R : Runtime_intf.S) =
  let module A = Atomic_objects.Make (R) in
  let module S = Ts_set_conservative.Make (R) (A.Fetch_inc) in
  let t = S.create ~name:"cset" () in
  fun (op : Spec.Set_obj.op) : Spec.Set_obj.resp ->
    match op with
    | Spec.Set_obj.Put x ->
        S.put t x;
        Spec.Set_obj.Ok_
    | Spec.Set_obj.Take -> (
        match S.take t with None -> Spec.Set_obj.Empty | Some x -> Spec.Set_obj.Item x)

let test_conservative_set_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:1 ()) in
  let module A = Atomic_objects.Make (R) in
  let module S = Ts_set_conservative.Make (R) (A.Fetch_inc) in
  let t = S.create () in
  Alcotest.(check (option int)) "empty" None (S.take t);
  S.put t 10;
  S.put t 20;
  let a = S.take t and b = S.take t in
  Alcotest.(check (list int)) "both items" [ 10; 20 ]
    (List.sort compare (List.filter_map Fun.id [ a; b ]));
  Alcotest.(check (option int)) "empty again" None (S.take t)

let test_conservative_set_verifies_the_race () =
  (* The workload that refutes Algorithm 2 verifies under the repair. *)
  let workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Put 2 ]; [ Spec.Set_obj.Take ] |] in
  match
    L_set.check_strong ~max_nodes:4_000_000 ~max_depth:18
      (Harness.program ~make:cset_exec ~workload)
  with
  | L_set.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "conservative set: %a" L_set.pp_verdict v

let test_conservative_set_not_lock_free () =
  (* The price of the repair: a put crashed between reserving its slot
     and writing it starves every subsequent take on an empty set. *)
  let workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Take ] |] in
  let prog = Harness.program ~make:cset_exec ~workload in
  let w = Sim.create ~n:2 in
  prog.Sim.boot w;
  (* p0: boot resume (invoke, reach fetch&inc) then apply fetch&inc —
     slot reserved, item write pending — then crash. *)
  Sim.step w 0;
  Sim.step w 0;
  Sim.crash w 0;
  (* p1's take can now run 500 steps without ever completing. *)
  for _ = 1 to 500 do
    if List.mem 1 (Sim.enabled w) then Sim.step w 1
  done;
  Alcotest.(check bool) "take still running" false (Sim.finished w 1);
  let returns =
    List.filter_map (function Trace.Return { proc; _ } -> Some proc | _ -> None) (Sim.trace w)
  in
  Alcotest.(check (list int)) "nothing completed" [] returns

let test_original_set_is_lock_free_here () =
  (* Contrast: Algorithm 2's take answers EMPTY under the same crash. *)
  let workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Take ] |] in
  let prog = Harness.program ~make:set_exec ~workload in
  let w = Sim.create ~n:2 in
  prog.Sim.boot w;
  Sim.step w 0;
  Sim.step w 0;
  Sim.crash w 0;
  let budget = ref 500 in
  while (not (Sim.finished w 1)) && !budget > 0 do
    if List.mem 1 (Sim.enabled w) then Sim.step w 1;
    decr budget
  done;
  Alcotest.(check bool) "take completed" true (Sim.finished w 1);
  let resp =
    List.filter_map (function Trace.Return { resp; _ } -> Some resp | _ -> None) (Sim.trace w)
  in
  Alcotest.(check bool) "returned EMPTY" true (resp = [ Spec.Set_obj.Empty ])

let test_multiset_random () =
  let workload =
    [|
      [ Spec.Multiset_obj.Put 1; Spec.Multiset_obj.Put 1; Spec.Multiset_obj.Take ];
      [ Spec.Multiset_obj.Put 2; Spec.Multiset_obj.Take ];
      [ Spec.Multiset_obj.Take; Spec.Multiset_obj.Put 1 ];
    |]
  in
  match
    Harness.find_non_linearizable ~check:L_mset.is_linearizable ~runs:200
      (Harness.program ~make:mset_exec ~workload)
  with
  | None -> ()
  | Some seed -> Alcotest.failf "multiset: non-linearizable at seed %d" seed

(* --- naive wide-from-narrow fetch&add --------------------------------- *)

let split_exec (module R : Runtime_intf.S) =
  let module F =
    Split_faa.Make
      (R)
      (struct
        let width = 2
      end)
  in
  let t = F.create () in
  fun (op : Spec.Fetch_and_add.op) : Spec.Fetch_and_add.resp ->
    match op with
    | Spec.Fetch_and_add.FetchAdd d -> Spec.Fetch_and_add.Value (F.fetch_add t d)
    | Spec.Fetch_and_add.Read -> Spec.Fetch_and_add.Value (F.read t)

let test_split_faa_sequential () =
  (* Solo it is a perfectly fine counter — the defect is concurrent. *)
  let module R = (val Solo_runtime.make ~self:0 ~n:1 ()) in
  let module F =
    Split_faa.Make
      (R)
      (struct
        let width = 2
      end)
  in
  let t = F.create () in
  Alcotest.(check int) "fa 3 returns 0" 0 (F.fetch_add t 3);
  Alcotest.(check int) "fa 3 returns 3" 3 (F.fetch_add t 3);
  Alcotest.(check int) "value 6 (carried)" 6 (F.read t);
  Alcotest.(check int) "fa 2 returns 6" 6 (F.fetch_add t 2);
  Alcotest.(check int) "value 8" 8 (F.read t)

let test_split_faa_not_linearizable () =
  let workload =
    [|
      [ Spec.Fetch_and_add.FetchAdd 3 ];
      [ Spec.Fetch_and_add.FetchAdd 3 ];
      [ Spec.Fetch_and_add.Read; Spec.Fetch_and_add.Read ];
    |]
  in
  match
    L_faa.check_strong ~max_nodes:2_000_000 (Harness.program ~make:split_exec ~workload)
  with
  | L_faa.Not_linearizable { schedule } ->
      (* The witness must replay to a genuinely bad trace. *)
      let w = Sim.run_schedule (Harness.program ~make:split_exec ~workload) schedule in
      Alcotest.(check bool) "witness replays" false (L_faa.is_linearizable (Sim.trace w))
  | v -> Alcotest.failf "split faa: expected Not_linearizable, got %a" L_faa.pp_verdict v

let suite =
  [
    ("Algorithm 2 multiset semantics (footnote 2)", `Quick, test_multiset_sequential);
    ("multiset EMPTY race refuted (finding)", `Quick, test_multiset_empty_race_refuted);
    ("set EMPTY race refuted (finding)", `Quick, test_set_empty_race_refuted);
    ("set executions remain linearizable", `Quick, test_set_executions_linearizable);
    ("set without EMPTY path verifies (diagnosis)", `Slow, test_set_without_empty_verifies);
    ("conservative set sequential", `Quick, test_conservative_set_sequential);
    ("conservative set verifies the race (repair)", `Slow, test_conservative_set_verifies_the_race);
    ("conservative set not lock-free (repair cost)", `Quick, test_conservative_set_not_lock_free);
    ("Algorithm 2 stays lock-free under the crash", `Quick, test_original_set_is_lock_free_here);
    ("multiset random schedules", `Quick, test_multiset_random);
    ("split F&A sequential", `Quick, test_split_faa_sequential);
    ("split F&A not linearizable (Sec 6 strawman)", `Quick, test_split_faa_not_linearizable);
  ]

let () = Alcotest.run "ablations" [ ("ablations", suite) ]
