(* Tests for the sequential specifications. *)

let check_det name expected got = Alcotest.(check bool) name true (expected = got)

let test_register () =
  let open Spec.Register in
  check_det "read init" [ (0, Value 0) ] (apply init Read);
  check_det "write then read" [ (7, Value 7) ]
    (apply (fst (List.hd (apply init (Write 7)))) Read)

let test_max_register () =
  let open Spec.Max_register in
  let s = fst (List.hd (apply init (WriteMax 5))) in
  let s = fst (List.hd (apply s (WriteMax 3))) in
  check_det "max retained" [ (5, Value 5) ] (apply s ReadMax);
  let s = fst (List.hd (apply s (WriteMax 9))) in
  check_det "max advanced" [ (9, Value 9) ] (apply s ReadMax)

let test_snapshot () =
  let module S = Spec.Snapshot (struct
    let n = 3
  end) in
  let open S in
  Alcotest.(check (list int)) "init view" [ 0; 0; 0 ]
    (match apply init Scan with [ (_, View v) ] -> v | _ -> assert false);
  let s = fst (List.hd (apply init (Update (1, 42)))) in
  Alcotest.(check (list int)) "after update" [ 0; 42; 0 ]
    (match apply s Scan with [ (_, View v) ] -> v | _ -> assert false);
  Alcotest.check_raises "bad process" (Invalid_argument "Snapshot: process out of range")
    (fun () -> ignore (apply init (Update (3, 1))))

let test_counters () =
  let open Spec.Counter in
  let s = fst (List.hd (apply init (Add 5))) in
  let s = fst (List.hd (apply s (Add (-2)))) in
  check_det "non-monotonic" [ (3, Value 3) ] (apply s Read);
  let open Spec.Logical_clock in
  let s = fst (List.hd (apply init Tick)) in
  check_det "clock" [ (1, Time 1) ] (apply s Read)

let test_test_and_set () =
  let open Spec.Test_and_set in
  check_det "winner" [ (1, Value 0) ] (apply init TestAndSet);
  check_det "loser" [ (1, Value 1) ] (apply 1 TestAndSet);
  check_det "read" [ (1, Value 1) ] (apply 1 Read)

let test_multishot_ts () =
  let open Spec.Multishot_test_and_set in
  let s = fst (List.hd (apply init TestAndSet)) in
  Alcotest.(check int) "set" 1 s;
  let s = fst (List.hd (apply s Reset)) in
  Alcotest.(check int) "reset" 0 s;
  check_det "winner again" [ (1, Value 0) ] (apply s TestAndSet)

let test_fetch_and_inc () =
  let open Spec.Fetch_and_inc in
  check_det "starts at 1" [ (2, Value 1) ] (apply init FetchInc);
  check_det "read" [ (1, Value 1) ] (apply init Read)

let test_faa_swap () =
  let open Spec.Fetch_and_add in
  check_det "faa" [ (5, Value 0) ] (apply init (FetchAdd 5));
  let open Spec.Swap in
  check_det "swap" [ (9, Value 0) ] (apply init (SwapOp 9))

let test_set () =
  let open Spec.Set_obj in
  let s = fst (List.hd (apply init (Put 2))) in
  let s = fst (List.hd (apply s (Put 1))) in
  let s' = fst (List.hd (apply s (Put 2))) in
  Alcotest.(check bool) "idempotent put" true (s = s');
  let outcomes = apply s Take in
  Alcotest.(check int) "take branches" 2 (List.length outcomes);
  Alcotest.(check bool) "take any member" true
    (List.for_all (function _, Item x -> List.mem x [ 1; 2 ] | _ -> false) outcomes);
  check_det "empty take" [ ([], Empty) ] (apply init Take)

let test_queue_stack () =
  let open Spec.Queue_spec in
  let s = fst (List.hd (apply init (Enq 1))) in
  let s = fst (List.hd (apply s (Enq 2))) in
  check_det "fifo" [ ([ 2 ], Item 1) ] (apply s Deq);
  check_det "empty deq" [ ([], Empty) ] (apply init Deq);
  let open Spec.Stack_spec in
  let s = fst (List.hd (apply init (Push 1))) in
  let s = fst (List.hd (apply s (Push 2))) in
  check_det "lifo" [ ([ 1 ], Item 2) ] (apply s Pop)

let test_stuttering_queue () =
  let module Q = Spec.Stuttering_queue (struct
    let m = 1
  end) in
  let open Q in
  (* First enq may stutter or not: two outcomes. *)
  let outs = apply init (Enq 7) in
  Alcotest.(check int) "enq branches" 2 (List.length outs);
  (* Find the stuttering outcome and enq again: now it must take effect. *)
  let stuttered =
    List.find (fun (s, _) -> s.Q.items = []) outs |> fst
  in
  let outs2 = apply stuttered (Enq 8) in
  Alcotest.(check int) "forced effective" 1 (List.length outs2);
  Alcotest.(check bool) "item enqueued" true ((fst (List.hd outs2)).Q.items = [ 8 ]);
  (* A stuttering deq returns the head without removing it. *)
  let s = { Q.items = [ 1; 2 ]; enq_stutter = 0; deq_stutter = 0 } in
  let outs3 = apply s Deq in
  Alcotest.(check int) "deq branches" 2 (List.length outs3);
  Alcotest.(check bool) "both return head" true
    (List.for_all (fun (_, r) -> r = Item 1) outs3);
  Alcotest.(check bool) "one removes, one keeps" true
    (List.exists (fun (s', _) -> s'.Q.items = [ 2 ]) outs3
    && List.exists (fun (s', _) -> s'.Q.items = [ 1; 2 ]) outs3)

let test_stuttering_stack () =
  let module S = Spec.Stuttering_stack (struct
    let m = 2
  end) in
  let open S in
  let rec chain s depth =
    (* Follow only stuttering outcomes; they must run out at m. *)
    match List.filter (fun (s', _) -> s'.S.items = []) (apply s (Push 1)) with
    | [] -> depth
    | (s', _) :: _ -> chain s' (depth + 1)
  in
  Alcotest.(check int) "at most m stutters" 2 (chain init 0)

let test_ooo_queue () =
  let module Q = Spec.Ooo_queue (struct
    let k = 2
  end) in
  let open Q in
  let s = [ 10; 20; 30 ] in
  let outs = apply s Deq in
  Alcotest.(check int) "k branches" 2 (List.length outs);
  Alcotest.(check bool) "returns one of 2 oldest" true
    (List.for_all (function _, Item x -> x = 10 || x = 20 | _ -> false) outs);
  Alcotest.(check bool) "removal correct" true
    (List.exists (fun (s', _) -> s' = [ 20; 30 ]) outs
    && List.exists (fun (s', _) -> s' = [ 10; 30 ]) outs)

let test_multiplicity_names () =
  Alcotest.(check string) "queue" "queue-multiplicity" Spec.Queue_multiplicity.name;
  Alcotest.(check string) "stack" "stack-multiplicity" Spec.Stack_multiplicity.name

(* Property: in any reachable state of the m-stuttering queue, at most m
   consecutive same-type operations are ineffective. *)
let prop_stutter_bound =
  let m = 2 in
  let module Q = Spec.Stuttering_queue (struct
    let m = 2
  end) in
  let gen = QCheck.Gen.(list_size (int_bound 30) (int_bound 3)) in
  let arb = QCheck.make ~print:(fun l -> String.concat ";" (List.map string_of_int l)) gen in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"stutter counters bounded by m" ~count:200 arb (fun choices ->
         (* Random walk over outcomes, alternating enq/deq by the choice parity. *)
         let s = ref Q.init in
         List.for_all
           (fun c ->
             let op = if c mod 2 = 0 then Q.Enq c else Q.Deq in
             let outs = Q.apply !s op in
             s := fst (List.nth outs (c mod List.length outs));
             !s.Q.enq_stutter <= m && !s.Q.deq_stutter <= m)
           choices))

let suite =
  [
    ("register", `Quick, test_register);
    ("max register", `Quick, test_max_register);
    ("snapshot", `Quick, test_snapshot);
    ("counters/clock", `Quick, test_counters);
    ("test&set", `Quick, test_test_and_set);
    ("multishot test&set", `Quick, test_multishot_ts);
    ("fetch&inc", `Quick, test_fetch_and_inc);
    ("fetch&add/swap", `Quick, test_faa_swap);
    ("set", `Quick, test_set);
    ("queue/stack", `Quick, test_queue_stack);
    ("stuttering queue", `Quick, test_stuttering_queue);
    ("stuttering stack", `Quick, test_stuttering_stack);
    ("ooo queue", `Quick, test_ooo_queue);
    ("multiplicity aliases", `Quick, test_multiplicity_names);
    prop_stutter_bound;
  ]

let () = Alcotest.run "spec" [ ("spec", suite) ]
