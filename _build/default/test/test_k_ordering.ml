(* Tests for §5: k-ordering witnesses (Definition 11), Algorithm B
   (Lemma 12), and the impossibility phenomena (Theorems 17/19) exhibited
   on real implementations. *)

module LQ = Lincheck.Make (Spec.Queue_spec)

let inputs3 = [| 100; 200; 300 |]

(* --- witness decision functions (Definition 11's examples) ---------- *)

let test_queue_witness_decide () =
  let w = K_ordering.queue_witness in
  Alcotest.(check int) "deq item wins" 2
    (w.K_ordering.decide ~n:3 0 [ Spec.Queue_spec.Ok_; Spec.Queue_spec.Item 2 ])

let test_stack_witness_decide () =
  let w = K_ordering.stack_witness in
  (* Last non-empty pop is the first push. *)
  Alcotest.(check int) "bottom of stack wins" 1
    (w.K_ordering.decide ~n:3 0
       [
         Spec.Stack_spec.Ok_;
         Spec.Stack_spec.Item 0;
         Spec.Stack_spec.Item 2;
         Spec.Stack_spec.Item 1;
         Spec.Stack_spec.Empty;
       ]);
  Alcotest.(check int) "dec length is n+1" 4 (List.length (w.K_ordering.dec ~n:3 0))

let test_stuttering_witness_shapes () =
  let w = K_ordering.stuttering_queue_witness ~m:2 in
  Alcotest.(check int) "m+1 enqueues" 3 (List.length (w.K_ordering.prop ~n:3 1));
  let w = K_ordering.stuttering_stack_witness ~m:1 in
  Alcotest.(check int) "n(m+1)+1 pops" 7 (List.length (w.K_ordering.dec ~n:3 0))

(* --- Lemma 12 positively: strongly-linearizable instances ----------- *)

let no_violations name stats =
  if stats.Agreement.agreement_violations > 0 || stats.Agreement.validity_violations > 0 then
    Alcotest.failf "%s: %a" name Agreement.pp_stats stats

let test_b_on_atomic_queue () =
  no_violations "atomic queue"
    (Agreement.run_many ~make:K_ordering.atomic_queue ~ordering:K_ordering.queue_witness
       ~inputs:inputs3 ~trials:400 ~seed:7 ())

let test_b_on_atomic_stack () =
  no_violations "atomic stack"
    (Agreement.run_many ~make:K_ordering.atomic_stack ~ordering:K_ordering.stack_witness
       ~inputs:inputs3 ~trials:400 ~seed:13 ())

let test_b_on_stuttering_queue () =
  (* An exact queue refines the m-stuttering queue, so the stuttering
     witness must still reach consensus on it. *)
  no_violations "stuttering queue witness"
    (Agreement.run_many ~make:K_ordering.atomic_queue
       ~ordering:(K_ordering.stuttering_queue_witness ~m:1)
       ~inputs:inputs3 ~trials:300 ~seed:21 ())

let test_b_on_stuttering_stack () =
  no_violations "stuttering stack witness"
    (Agreement.run_many ~make:K_ordering.atomic_stack
       ~ordering:(K_ordering.stuttering_stack_witness ~m:1)
       ~inputs:inputs3 ~trials:300 ~seed:23 ())

let test_b_on_ooo_queue () =
  (* n = 5 > 2k = 4: Theorem 19's regime.  The relaxed instance is
     strongly linearizable, so k-agreement must hold — and the relaxation
     makes the k=2 bound tight (two distinct decisions occur). *)
  let stats =
    Agreement.run_many
      ~make:(K_ordering.atomic_ooo_queue ~k:2)
      ~ordering:(K_ordering.ooo_queue_witness ~k:2)
      ~inputs:[| 10; 20; 30; 40; 50 |] ~trials:400 ~seed:3 ()
  in
  no_violations "ooo queue" stats;
  Alcotest.(check int) "k=2 bound is tight" 2 stats.Agreement.max_distinct

let test_b_with_crashes () =
  no_violations "atomic queue with crashes"
    (Agreement.run_many ~make:K_ordering.atomic_queue ~ordering:K_ordering.queue_witness
       ~inputs:inputs3 ~trials:400 ~crash_prob:0.5 ~seed:31 ())

(* --- the impossibility phenomena on a consensus-number-2 queue ------ *)

let hw_exec capacity (module R : Runtime_intf.S) =
  let (K_ordering.Instance inst) = K_ordering.hw_queue ~capacity (module R) in
  inst.apply

(* The HW queue is linearizable on every schedule we can throw at it. *)
let test_hw_queue_linearizable () =
  let workload =
    [|
      [ Spec.Queue_spec.Enq 1; Spec.Queue_spec.Enq 3 ];
      [ Spec.Queue_spec.Enq 2 ];
      [ Spec.Queue_spec.Deq; Spec.Queue_spec.Deq; Spec.Queue_spec.Deq ];
    |]
  in
  match
    Harness.find_non_linearizable ~check:LQ.is_linearizable ~runs:300
      (Harness.program ~make:(hw_exec 3) ~workload)
  with
  | None -> ()
  | Some seed -> Alcotest.failf "HW queue: non-linearizable at seed %d" seed

(* ... but not strongly linearizable (consequence of Theorem 17): the
   game solver produces a finite refutation tree. *)
let test_hw_queue_not_strongly_linearizable () =
  let workload =
    [|
      [ Spec.Queue_spec.Enq 1 ];
      [ Spec.Queue_spec.Enq 2 ];
      [ Spec.Queue_spec.Deq ];
      [ Spec.Queue_spec.Deq ];
    |]
  in
  match
    LQ.check_strong ~max_nodes:3_000_000 ~max_depth:22
      (Harness.program ~make:(hw_exec 2) ~workload)
  with
  | LQ.Not_strongly_linearizable _ -> ()
  | v -> Alcotest.failf "HW queue: expected refutation, got %a" LQ.pp_verdict v

(* Algorithm B over the HW queue can disagree — the exact failure mode
   Lemma 12 turns into the impossibility proof.  The seed is fixed, so
   this documents a concrete reproducible violation. *)
let test_b_on_hw_queue_violates () =
  let stats =
    Agreement.run_many
      ~make:(K_ordering.hw_queue ~capacity:3)
      ~ordering:K_ordering.queue_witness ~inputs:inputs3 ~trials:2000 ~seed:7 ()
  in
  Alcotest.(check bool) "disagreements found" true (stats.Agreement.agreement_violations > 0);
  Alcotest.(check int) "still valid decisions" 0 stats.Agreement.validity_violations

let suite =
  [
    ("queue witness decide", `Quick, test_queue_witness_decide);
    ("stack witness decide", `Quick, test_stack_witness_decide);
    ("stuttering witness shapes", `Quick, test_stuttering_witness_shapes);
    ("Lemma 12 on atomic queue", `Quick, test_b_on_atomic_queue);
    ("Lemma 12 on atomic stack", `Quick, test_b_on_atomic_stack);
    ("Lemma 12 stuttering queue witness", `Quick, test_b_on_stuttering_queue);
    ("Lemma 12 stuttering stack witness", `Quick, test_b_on_stuttering_stack);
    ("Lemma 12 k-ooo queue (Thm 19 regime)", `Quick, test_b_on_ooo_queue);
    ("Lemma 12 under crashes", `Quick, test_b_with_crashes);
    ("HW queue linearizable", `Quick, test_hw_queue_linearizable);
    ("HW queue not strongly linearizable", `Slow, test_hw_queue_not_strongly_linearizable);
    ("Algorithm B disagrees on HW queue", `Quick, test_b_on_hw_queue_violates);
  ]

let () = Alcotest.run "k_ordering" [ ("k_ordering", suite) ]
