(* Tests for the paper's constructions (Theorems 1, 2, 4, 5, 6, 9, 10).

   Each construction is tested three ways:
   1. sequential semantics on the solo runtime;
   2. strong linearizability, verified exhaustively by the game solver on
      small workloads (this is the mechanical counterpart of the
      theorems);
   3. linearizability of random executions on larger workloads, plus
      step-per-operation bounds for the wait-free constructions. *)

module L_max = Lincheck.Make (Spec.Max_register)
module L_counter = Lincheck.Make (Spec.Counter)
module L_ts = Lincheck.Make (Spec.Test_and_set)
module L_msts = Lincheck.Make (Spec.Multishot_test_and_set)
module L_fi = Lincheck.Make (Spec.Fetch_and_inc)
module L_set = Lincheck.Make (Spec.Set_obj)

module Spec_snapshot3 = Spec.Snapshot (struct
  let n = 3
end)

module L_snap = Lincheck.Make (Spec_snapshot3)

(* --- executors: map spec operations onto an implementation ----------- *)

let max_register_exec (module R : Runtime_intf.S) =
  let module M = Faa_max_register.Make (R) in
  let t = M.create ~name:"max" () in
  fun (op : Spec.Max_register.op) : Spec.Max_register.resp ->
    match op with
    | Spec.Max_register.WriteMax v ->
        M.write_max t v;
        Spec.Max_register.Ack
    | Spec.Max_register.ReadMax -> Spec.Max_register.Value (M.read_max t)

let snapshot_exec (module R : Runtime_intf.S) =
  let module S = Faa_snapshot.Make (R) in
  let t = S.create ~name:"snap" () in
  fun (op : Spec_snapshot3.op) : Spec_snapshot3.resp ->
    match op with
    | Spec_snapshot3.Update (p, v) ->
        assert (p = R.self ());
        S.update t v;
        Spec_snapshot3.Ack
    | Spec_snapshot3.Scan -> Spec_snapshot3.View (Array.to_list (S.scan t))

(* Theorem 4 composition: simple-type counter over the fetch&add
   snapshot. *)
let counter_exec (module R : Runtime_intf.S) =
  let module Snap = Faa_snapshot.Make (R) in
  let module C = Simple_type.Make (Simple_instances.Counter_type) (Snap) in
  let t = C.create ~name:"counter" ~n:(R.n_procs ()) () in
  fun (op : Spec.Counter.op) -> C.execute t ~self:(R.self ()) op

let readable_ts_exec (module R : Runtime_intf.S) =
  let module T = Readable_ts.Make (R) in
  let t = T.create ~name:"rts" () in
  fun (op : Spec.Test_and_set.op) : Spec.Test_and_set.resp ->
    match op with
    | Spec.Test_and_set.TestAndSet -> Spec.Test_and_set.Value (T.test_and_set t)
    | Spec.Test_and_set.Read -> Spec.Test_and_set.Value (T.read t)

(* Theorem 6 with atomic base objects. *)
let multishot_atomic_exec (module R : Runtime_intf.S) =
  let module A = Atomic_objects.Make (R) in
  let module T = Multishot_ts.Make (A.Max_register) (A.Readable_ts) in
  let t = T.create ~name:"msts" () in
  fun (op : Spec.Multishot_test_and_set.op) : Spec.Multishot_test_and_set.resp ->
    match op with
    | Spec.Multishot_test_and_set.TestAndSet ->
        Spec.Multishot_test_and_set.Value (T.test_and_set t)
    | Spec.Multishot_test_and_set.Read -> Spec.Multishot_test_and_set.Value (T.read t)
    | Spec.Multishot_test_and_set.Reset ->
        T.reset t;
        Spec.Multishot_test_and_set.Ack

(* Corollary 7 composition: max register from fetch&add (Thm 1) +
   readable test&set from test&set (Thm 5) feeding Theorem 6. *)
let multishot_composed_exec (module R : Runtime_intf.S) =
  let module M = Faa_max_register.Make (R) in
  let module RT = Readable_ts.Make (R) in
  let module T = Multishot_ts.Make (M) (RT) in
  let t = T.create ~name:"msts" () in
  fun (op : Spec.Multishot_test_and_set.op) : Spec.Multishot_test_and_set.resp ->
    match op with
    | Spec.Multishot_test_and_set.TestAndSet ->
        Spec.Multishot_test_and_set.Value (T.test_and_set t)
    | Spec.Multishot_test_and_set.Read -> Spec.Multishot_test_and_set.Value (T.read t)
    | Spec.Multishot_test_and_set.Reset ->
        T.reset t;
        Spec.Multishot_test_and_set.Ack

(* Theorem 9 with Theorem 5's readable test&set. *)
let fetch_inc_exec (module R : Runtime_intf.S) =
  let module RT = Readable_ts.Make (R) in
  let module F = Ts_fetch_inc.Make (RT) in
  let t = F.create ~name:"fi" () in
  fun (op : Spec.Fetch_and_inc.op) : Spec.Fetch_and_inc.resp ->
    match op with
    | Spec.Fetch_and_inc.FetchInc -> Spec.Fetch_and_inc.Value (F.fetch_inc t)
    | Spec.Fetch_and_inc.Read -> Spec.Fetch_and_inc.Value (F.read t)

(* Theorem 10, with an atomic fetch&increment to keep the game tree
   small; the full composition is exercised separately. *)
let set_atomic_fi_exec (module R : Runtime_intf.S) =
  let module A = Atomic_objects.Make (R) in
  let module S = Ts_set.Make (R) (A.Fetch_inc) in
  let t = S.create ~name:"set" () in
  fun (op : Spec.Set_obj.op) : Spec.Set_obj.resp ->
    match op with
    | Spec.Set_obj.Put x ->
        S.put t x;
        Spec.Set_obj.Ok_
    | Spec.Set_obj.Take -> (
        match S.take t with None -> Spec.Set_obj.Empty | Some x -> Spec.Set_obj.Item x)

(* Theorem 10 full stack: set over Theorem 9's fetch&inc over Theorem 5's
   readable test&set. *)
let set_full_exec (module R : Runtime_intf.S) =
  let module RT = Readable_ts.Make (R) in
  let module F = Ts_fetch_inc.Make (RT) in
  let module S = Ts_set.Make (R) (F) in
  let t = S.create ~name:"set" () in
  fun (op : Spec.Set_obj.op) : Spec.Set_obj.resp ->
    match op with
    | Spec.Set_obj.Put x ->
        S.put t x;
        Spec.Set_obj.Ok_
    | Spec.Set_obj.Take -> (
        match S.take t with None -> Spec.Set_obj.Empty | Some x -> Spec.Set_obj.Item x)

(* --- sequential semantics ------------------------------------------- *)

let test_max_register_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:2 ()) in
  let module M = Faa_max_register.Make (R) in
  let t = M.create () in
  Alcotest.(check int) "init" 0 (M.read_max t);
  M.write_max t 5;
  M.write_max t 3;
  Alcotest.(check int) "max" 5 (M.read_max t);
  M.write_max t 12;
  Alcotest.(check int) "raised" 12 (M.read_max t)

let test_snapshot_sequential () =
  let module R = (val Solo_runtime.make ~self:1 ~n:3 ()) in
  let module S = Faa_snapshot.Make (R) in
  let t = S.create () in
  Alcotest.(check (array int)) "init" [| 0; 0; 0 |] (S.scan t);
  S.update t 42;
  Alcotest.(check (array int)) "updated" [| 0; 42; 0 |] (S.scan t);
  S.update t 7;
  S.update t 7;
  Alcotest.(check (array int)) "overwritten" [| 0; 7; 0 |] (S.scan t)

let test_simple_counter_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:2 ()) in
  let module Snap = Faa_snapshot.Make (R) in
  let module C = Simple_type.Make (Simple_instances.Counter_type) (Snap) in
  let t = C.create ~n:2 () in
  Alcotest.(check bool) "read 0" true (C.execute t ~self:0 Spec.Counter.Read = Spec.Counter.Value 0);
  ignore (C.execute t ~self:0 (Spec.Counter.Add 5));
  ignore (C.execute t ~self:0 (Spec.Counter.Add (-2)));
  Alcotest.(check bool) "read 3" true (C.execute t ~self:0 Spec.Counter.Read = Spec.Counter.Value 3)

let test_union_set_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:2 ()) in
  let module Snap = Faa_snapshot.Make (R) in
  let module U = Simple_type.Make (Simple_instances.Union_set_type) (Snap) in
  let t = U.create ~n:2 () in
  let open Simple_instances.Union_set_type in
  Alcotest.(check bool) "absent" true (U.execute t ~self:0 (Contains 3) = No);
  ignore (U.execute t ~self:0 (Insert 3));
  ignore (U.execute t ~self:0 (Insert 3));
  Alcotest.(check bool) "present" true (U.execute t ~self:0 (Contains 3) = Yes)

let test_multishot_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:2 ()) in
  let module A = Atomic_objects.Make (R) in
  let module T = Multishot_ts.Make (A.Max_register) (A.Readable_ts) in
  let t = T.create () in
  Alcotest.(check int) "fresh read" 0 (T.read t);
  Alcotest.(check int) "win" 0 (T.test_and_set t);
  Alcotest.(check int) "lose" 1 (T.test_and_set t);
  T.reset t;
  Alcotest.(check int) "after reset" 0 (T.read t);
  Alcotest.(check int) "win again" 0 (T.test_and_set t);
  T.reset t;
  T.reset t;
  (* double reset is idempotent *)
  Alcotest.(check int) "still reset" 0 (T.read t)

let test_fetch_inc_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:2 ()) in
  let module RT = Readable_ts.Make (R) in
  let module F = Ts_fetch_inc.Make (RT) in
  let t = F.create () in
  Alcotest.(check int) "read 1" 1 (F.read t);
  Alcotest.(check int) "fi 1" 1 (F.fetch_inc t);
  Alcotest.(check int) "fi 2" 2 (F.fetch_inc t);
  Alcotest.(check int) "read 3" 3 (F.read t)

let test_set_sequential () =
  let module R = (val Solo_runtime.make ~self:0 ~n:2 ()) in
  let module RT = Readable_ts.Make (R) in
  let module F = Ts_fetch_inc.Make (RT) in
  let module S = Ts_set.Make (R) (F) in
  let t = S.create () in
  Alcotest.(check (option int)) "empty" None (S.take t);
  S.put t 10;
  S.put t 20;
  let a = S.take t and b = S.take t in
  Alcotest.(check (list int)) "both items" [ 10; 20 ]
    (List.sort compare (List.filter_map Fun.id [ a; b ]));
  Alcotest.(check (option int)) "empty again" None (S.take t)

(* --- strong linearizability (the theorems, mechanically) ------------- *)

let test_thm1_strong () =
  let workload =
    [|
      [ Spec.Max_register.WriteMax 1; Spec.Max_register.ReadMax ];
      [ Spec.Max_register.WriteMax 2 ];
      [ Spec.Max_register.ReadMax ];
    |]
  in
  match L_max.check_strong (Harness.program ~make:max_register_exec ~workload) with
  | L_max.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "Theorem 1: %a" L_max.pp_verdict v

let test_thm2_strong () =
  let workload =
    [|
      [ Spec_snapshot3.Update (0, 1); Spec_snapshot3.Update (0, 2) ];
      [ Spec_snapshot3.Update (1, 3) ];
      [ Spec_snapshot3.Scan; Spec_snapshot3.Scan ];
    |]
  in
  match L_snap.check_strong (Harness.program ~make:snapshot_exec ~workload) with
  | L_snap.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "Theorem 2: %a" L_snap.pp_verdict v

let test_thm4_strong () =
  let workload =
    [| [ Spec.Counter.Add 1 ]; [ Spec.Counter.Add 2 ]; [ Spec.Counter.Read; Spec.Counter.Read ] |]
  in
  match L_counter.check_strong (Harness.program ~make:counter_exec ~workload) with
  | L_counter.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "Theorem 4: %a" L_counter.pp_verdict v

let test_thm5_strong () =
  let workload =
    [|
      [ Spec.Test_and_set.TestAndSet ];
      [ Spec.Test_and_set.TestAndSet ];
      [ Spec.Test_and_set.Read; Spec.Test_and_set.Read ];
    |]
  in
  match L_ts.check_strong (Harness.program ~make:readable_ts_exec ~workload) with
  | L_ts.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "Theorem 5: %a" L_ts.pp_verdict v

let test_thm6_strong () =
  let workload =
    [|
      [ Spec.Multishot_test_and_set.TestAndSet; Spec.Multishot_test_and_set.Reset ];
      [ Spec.Multishot_test_and_set.TestAndSet ];
      [ Spec.Multishot_test_and_set.Read ];
    |]
  in
  match L_msts.check_strong (Harness.program ~make:multishot_atomic_exec ~workload) with
  | L_msts.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "Theorem 6: %a" L_msts.pp_verdict v

let test_cor7_strong () =
  let workload =
    [|
      [ Spec.Multishot_test_and_set.TestAndSet; Spec.Multishot_test_and_set.Reset ];
      [ Spec.Multishot_test_and_set.TestAndSet ];
    |]
  in
  match
    L_msts.check_strong ~max_nodes:2_000_000
      (Harness.program ~make:multishot_composed_exec ~workload)
  with
  | L_msts.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "Corollary 7: %a" L_msts.pp_verdict v

let test_thm9_strong () =
  let workload =
    [|
      [ Spec.Fetch_and_inc.FetchInc ];
      [ Spec.Fetch_and_inc.FetchInc ];
      [ Spec.Fetch_and_inc.Read ];
    |]
  in
  match L_fi.check_strong (Harness.program ~make:fetch_inc_exec ~workload) with
  | L_fi.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "Theorem 9: %a" L_fi.pp_verdict v

let test_thm10_strong () =
  let workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Take ] |] in
  match L_set.check_strong (Harness.program ~make:set_atomic_fi_exec ~workload) with
  | L_set.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "Theorem 10: %a" L_set.pp_verdict v

let test_thm10_full_strong () =
  let workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Take ] |] in
  match
    L_set.check_strong ~max_nodes:2_000_000 (Harness.program ~make:set_full_exec ~workload)
  with
  | L_set.Strongly_linearizable _ -> ()
  | v -> Alcotest.failf "Theorem 10 (full): %a" L_set.pp_verdict v

(* --- random-schedule linearizability on bigger workloads ------------- *)

let test_random_linearizable () =
  let snapshot_workload =
    [|
      [ Spec_snapshot3.Update (0, 1); Spec_snapshot3.Update (0, 3); Spec_snapshot3.Scan ];
      [ Spec_snapshot3.Update (1, 2); Spec_snapshot3.Scan; Spec_snapshot3.Update (1, 5) ];
      [ Spec_snapshot3.Scan; Spec_snapshot3.Update (2, 9); Spec_snapshot3.Scan ];
    |]
  in
  (match
     Harness.find_non_linearizable ~check:L_snap.is_linearizable ~runs:200
       (Harness.program ~make:snapshot_exec ~workload:snapshot_workload)
   with
  | None -> ()
  | Some seed -> Alcotest.failf "snapshot: non-linearizable at seed %d" seed);
  let set_workload =
    [|
      [ Spec.Set_obj.Put 1; Spec.Set_obj.Take; Spec.Set_obj.Put 4 ];
      [ Spec.Set_obj.Put 2; Spec.Set_obj.Take ];
      [ Spec.Set_obj.Take; Spec.Set_obj.Put 3; Spec.Set_obj.Take ];
    |]
  in
  match
    Harness.find_non_linearizable ~check:L_set.is_linearizable ~runs:150 ~crash_prob:0.2
      (Harness.program ~make:set_full_exec ~workload:set_workload)
  with
  | None -> ()
  | Some seed -> Alcotest.failf "set: non-linearizable at seed %d" seed

(* --- progress: wait-free constructions take O(1) steps per op -------- *)

let test_wait_free_bounds () =
  let workload =
    [|
      [ Spec.Max_register.WriteMax 3; Spec.Max_register.ReadMax; Spec.Max_register.WriteMax 9 ];
      [ Spec.Max_register.WriteMax 7; Spec.Max_register.ReadMax ];
      [ Spec.Max_register.ReadMax; Spec.Max_register.WriteMax 2 ];
    |]
  in
  let r = Progress.measure ~runs:50 (Harness.program ~make:max_register_exec ~workload) in
  Alcotest.(check int) "Theorem 1 is one step per op" 1 r.Progress.max_steps_per_op;
  let workload =
    [|
      [ Spec_snapshot3.Update (0, 1); Spec_snapshot3.Scan ];
      [ Spec_snapshot3.Update (1, 2); Spec_snapshot3.Scan ];
      [ Spec_snapshot3.Scan; Spec_snapshot3.Update (2, 3) ];
    |]
  in
  let r = Progress.measure ~runs:50 (Harness.program ~make:snapshot_exec ~workload) in
  Alcotest.(check int) "Theorem 2 is one step per op" 1 r.Progress.max_steps_per_op;
  let workload =
    [|
      [ Spec.Test_and_set.TestAndSet; Spec.Test_and_set.Read ];
      [ Spec.Test_and_set.TestAndSet ];
      [ Spec.Test_and_set.Read ];
    |]
  in
  let r = Progress.measure ~runs:50 (Harness.program ~make:readable_ts_exec ~workload) in
  Alcotest.(check bool) "Theorem 5 at most 2 steps per op" true (r.Progress.max_steps_per_op <= 2)

let suite =
  [
    ("Thm 1 sequential", `Quick, test_max_register_sequential);
    ("Thm 2 sequential", `Quick, test_snapshot_sequential);
    ("Thm 4 counter sequential", `Quick, test_simple_counter_sequential);
    ("Thm 4 union set sequential", `Quick, test_union_set_sequential);
    ("Thm 6 sequential", `Quick, test_multishot_sequential);
    ("Thm 9 sequential", `Quick, test_fetch_inc_sequential);
    ("Thm 10 sequential", `Quick, test_set_sequential);
    ("Thm 1 strongly linearizable", `Quick, test_thm1_strong);
    ("Thm 2 strongly linearizable", `Quick, test_thm2_strong);
    ("Thm 4 strongly linearizable", `Quick, test_thm4_strong);
    ("Thm 5 strongly linearizable", `Quick, test_thm5_strong);
    ("Thm 6 strongly linearizable", `Quick, test_thm6_strong);
    ("Cor 7 strongly linearizable", `Slow, test_cor7_strong);
    ("Thm 9 strongly linearizable", `Quick, test_thm9_strong);
    ("Thm 10 strongly linearizable", `Quick, test_thm10_strong);
    ("Thm 10 full stack strongly linearizable", `Slow, test_thm10_full_strong);
    ("random schedules linearizable", `Quick, test_random_linearizable);
    ("wait-free step bounds", `Quick, test_wait_free_bounds);
  ]

let () = Alcotest.run "core" [ ("core", suite) ]
