test/test_conformance.ml: Alcotest Atomic_objects Executors Format List QCheck QCheck_alcotest Runtime_intf Solo_runtime Spec String Ts_set_conservative
