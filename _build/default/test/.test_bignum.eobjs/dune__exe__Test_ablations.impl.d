test/test_ablations.ml: Alcotest Atomic_objects Fun Harness Inf_array Lincheck List Prim Readable_ts Runtime_intf Sim Solo_runtime Spec Split_faa Trace Ts_fetch_inc Ts_set Ts_set_conservative
