test/test_consensus.ml: Alcotest Array Consensus Fun Harness Lincheck List Runtime_intf Sim Spec Tournament_ts
