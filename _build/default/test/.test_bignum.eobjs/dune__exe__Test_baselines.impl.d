test/test_baselines.ml: Agm_stack Alcotest Array Aww_fetch_inc Cas_universal Harness Hw_queue Lincheck Runtime_intf Rw_max_register Rw_snapshot Solo_runtime Spec
