test/test_primitives.ml: Alcotest Bignum List Prim QCheck QCheck_alcotest Sim Solo_runtime String
