test/test_runtime.ml: Alcotest Array Format List Par_runtime QCheck QCheck_alcotest Sim Solo_runtime String Trace
