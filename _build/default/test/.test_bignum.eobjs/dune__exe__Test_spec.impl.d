test/test_spec.ml: Alcotest List QCheck QCheck_alcotest Spec String
