test/test_k_ordering.mli:
