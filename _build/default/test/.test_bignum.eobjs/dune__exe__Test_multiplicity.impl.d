test/test_multiplicity.ml: Agreement Alcotest Harness K_ordering Lincheck Mult_check Runtime_intf Rw_mult_queue Sim Solo_runtime Spec Trace
