test/test_multiplicity.mli:
