test/test_units.ml: Alcotest Atomic_objects Bignum History Inf_array List Prim Solo_runtime Trace
