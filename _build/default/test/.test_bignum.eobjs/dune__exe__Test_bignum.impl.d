test/test_bignum.ml: Alcotest Bignum Format List QCheck QCheck_alcotest Stdlib
