test/test_lincheck.ml: Alcotest Array Format Lincheck List Printf Progress QCheck QCheck_alcotest Sim Spec String Trace
