test/test_k_ordering.ml: Agreement Alcotest Harness K_ordering Lincheck List Runtime_intf Spec
