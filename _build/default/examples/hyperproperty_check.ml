(* Why strong linearizability matters: the checker as a hyperproperty
   audit.

   A randomized program keeps its probabilistic guarantees against a
   strong adversary only when the objects it uses are STRONGLY
   linearizable (Golab–Higham–Woelfel; Attiya–Enea).  Plain
   linearizability lets the adversary keep the order of already-applied
   operations undecided and resolve it later, after it has seen coin
   flips — correlating "past" events with future randomness.

   This example audits three snapshot-family objects with the
   strong-linearizability game solver:

   1. Theorem 2's fetch&add snapshot          — certified safe;
   2. the multi-writer register from single-writer registers
      (Vitányi–Awerbuch timestamps)           — refuted, witness printed;
   3. the AAD read/write snapshot (the object in GHW's original
      counterexample) — linearizable on every schedule we test, while
      its strong-linearizability game is too large to settle exhaustively
      at interesting workload sizes; GHW prove it is not strongly
      linearizable.

   A refutation witness is a schedule prefix after which no single
   linearization of the operations so far can be extended into all
   futures: the adversary still holds the ordering decision even though
   the operations have happened.  That pending decision is exactly the
   leverage a strong adversary uses against randomized programs.

     dune exec examples/hyperproperty_check.exe *)

module Snap3 = Spec.Snapshot (struct
  let n = 3
end)

module L_snap = Lincheck.Make (Snap3)
module L_reg = Lincheck.Make (Spec.Register)

let faa_snapshot_exec (module R : Runtime_intf.S) =
  let module S = Faa_snapshot.Make (R) in
  let t = S.create () in
  fun (op : Snap3.op) : Snap3.resp ->
    match op with
    | Snap3.Update (_, v) ->
        S.update t v;
        Snap3.Ack
    | Snap3.Scan -> Snap3.View (Array.to_list (S.scan t))

let mwmr_exec (module R : Runtime_intf.S) =
  let n = R.n_procs () in
  let own = Array.init n (fun i -> R.obj ~name:(Printf.sprintf "own%d" i) (0, i, 0)) in
  let collect () = Array.map (fun o -> R.read o) own in
  fun (op : Spec.Register.op) : Spec.Register.resp ->
    match op with
    | Spec.Register.Write v ->
        let views = collect () in
        let ts = Array.fold_left (fun acc (t, _, _) -> max acc t) 0 views in
        R.access own.(R.self ()) (fun _ -> ((ts + 1, R.self (), v), ()));
        Spec.Register.Ack
    | Spec.Register.Read ->
        let views = collect () in
        let _, _, v = Array.fold_left max (min_int, min_int, 0) views in
        Spec.Register.Value v

let () =
  Format.printf "== 1. Theorem 2's fetch&add snapshot ==@.";
  let workload =
    [|
      [ Snap3.Update (0, 1); Snap3.Update (0, 2) ];
      [ Snap3.Update (1, 3) ];
      [ Snap3.Scan; Snap3.Scan ];
    |]
  in
  let v = L_snap.check_strong (Harness.program ~make:faa_snapshot_exec ~workload) in
  Format.printf "   %a@." L_snap.pp_verdict v;
  Format.printf
    "   -> every prefix of every schedule already fixes the linearization:@.\
    \      nothing is left for a strong adversary to exploit.@.@."

let () =
  Format.printf "== 2. Multi-writer register from single-writer registers ==@.";
  let workload =
    [|
      [ Spec.Register.Write 1 ];
      [ Spec.Register.Write 2 ];
      [ Spec.Register.Read; Spec.Register.Read ];
    |]
  in
  let v = L_reg.check_strong ~max_nodes:2_000_000 (Harness.program ~make:mwmr_exec ~workload) in
  Format.printf "   %a@." L_reg.pp_verdict v;
  (match v with
  | L_reg.Not_strongly_linearizable { witness; _ } ->
      Format.printf
        "   -> after schedule prefix %s the adversary still holds the ordering@.\
        \      decision for operations that already took effect; by scheduling@.\
        \      the readers after seeing a coin, it can correlate the register's@.\
        \      'past' with future randomness (Golab-Higham-Woelfel's attack).@."
        (String.concat "" (List.map string_of_int witness))
  | _ -> Format.printf "   -> unexpected verdict@.");
  Format.printf "@."

let () =
  Format.printf "== 3. AAD read/write snapshot (GHW's original example) ==@.";
  let module Snap2 = Spec.Snapshot (struct
    let n = 2
  end) in
  let module L2 = Lincheck.Make (Snap2) in
  let aad_exec (module R : Runtime_intf.S) =
    let module S = Rw_snapshot.Make (R) in
    let t = S.create () in
    fun (op : Snap2.op) : Snap2.resp ->
      match op with
      | Snap2.Update (_, v) ->
          S.update t v;
          Snap2.Ack
      | Snap2.Scan -> Snap2.View (Array.to_list (S.scan t))
  in
  let workload = [| [ Snap2.Update (0, 1); Snap2.Update (0, 2) ]; [ Snap2.Scan; Snap2.Scan ] |] in
  let prog = Harness.program ~make:aad_exec ~workload in
  (match Harness.find_non_linearizable ~check:L2.is_linearizable ~runs:300 prog with
  | None -> Format.printf "   linearizable on 300 random schedules (as AAD proved);@."
  | Some seed -> Format.printf "   UNEXPECTED: not linearizable at seed %d@." seed);
  let v = L2.check_strong ~max_nodes:150_000 ~max_depth:18 prog in
  Format.printf "   strong-linearizability game: %a@." L2.pp_verdict v;
  Format.printf
    "   -> the update's embedded-scan helping makes the game tree explode;@.\
    \      GHW prove the refutation exists (their STOC'11 counterexample@.\
    \      needs longer histories than exhaustive search can cover).@."
