(* The adversary game behind Theorem 17, played operationally.

   Algorithm B (Lemma 12) solves consensus from a lock-free
   strongly-linearizable queue.  This example asks the converse question:
   can a scheduling adversary force Algorithm B to disagree?

   - Over a strongly-linearizable queue (single CAS-class object), no
     schedule can: we hammer it with tens of thousands of adversarial
     random schedules (with crash injection) and none produces two
     decisions — consistently with Lemma 12's proof, which only needs
     strong linearizability.
   - Over the Herlihy–Wing queue (fetch&add + swap; linearizable but, by
     Theorem 17, necessarily NOT strongly linearizable), the search finds
     forcing schedules, and we print one — a concrete, replayable
     sequence of scheduler choices that breaks consensus.

   That pair of outcomes is the operational content of the paper's
   impossibility: a strongly-linearizable queue from consensus-number-2
   primitives would solve 3-process consensus, which Herlihy proved
   impossible.

     dune exec examples/adversary_game.exe *)

let inputs = [| 100; 200; 300 |]

(* One adversarial run: random walk over the schedule tree, recording the
   choices so a found violation is replayable.  Optionally crashes one
   process mid-run (the adversary may also kill processes). *)
let adversarial_run ~make ~seed =
  let rng = Random.State.make [| seed |] in
  let decisions = Array.make (Array.length inputs) None in
  let prog = Agreement.program ~make ~ordering:K_ordering.queue_witness ~inputs ~decisions in
  let w = Sim.create ~n:prog.Sim.procs in
  prog.Sim.boot w;
  let crash_at = if Random.State.bool rng then Some (Random.State.int rng 25) else None in
  let victim = Random.State.int rng 3 in
  let schedule = ref [] in
  let steps = ref 0 in
  let rec loop () =
    (match crash_at with Some c when !steps = c -> Sim.crash w victim | _ -> ());
    match Sim.enabled w with
    | [] -> ()
    | ps ->
        let p = List.nth ps (Random.State.int rng (List.length ps)) in
        Sim.step w p;
        schedule := p :: !schedule;
        incr steps;
        loop ()
  in
  loop ();
  let distinct = List.sort_uniq compare (List.filter_map Fun.id (Array.to_list decisions)) in
  (List.rev !schedule, distinct)

let search ~make ~trials =
  let rec go seed =
    if seed > trials then None
    else
      let schedule, distinct = adversarial_run ~make ~seed in
      if List.length distinct > 1 then Some (seed, schedule, distinct) else go (seed + 1)
  in
  go 1

let pp_schedule fmt s = List.iter (fun p -> Format.fprintf fmt "%d" p) s

let () =
  Format.printf "Adversary goal: make Algorithm B (Lemma 12) decide two different values.@.@.";
  Format.printf "1. Strongly-linearizable queue (single CAS-class object), 30000 adversarial runs:@.";
  (match search ~make:K_ordering.atomic_queue ~trials:30_000 with
  | None -> Format.printf "   adversary never wins — consensus holds on every run.@."
  | Some (seed, s, d) ->
      Format.printf "   UNEXPECTED: seed %d schedule %a forces decisions %s@." seed pp_schedule
        s
        (String.concat "," (List.map string_of_int d)));
  Format.printf "@.2. Herlihy–Wing queue (fetch&add + swap, not strongly linearizable):@.";
  match search ~make:(K_ordering.hw_queue ~capacity:3) ~trials:30_000 with
  | None -> Format.printf "   no forcing schedule found in 30000 runs (unexpected)@."
  | Some (seed, s, d) ->
      Format.printf "   adversary wins at seed %d with schedule %a@." seed pp_schedule s;
      Format.printf "   decisions: {%s} — consensus broken.@."
        (String.concat ", " (List.map string_of_int d));
      Format.printf
        "@.This is why Theorem 17 holds: a lock-free strongly-linearizable queue@.\
         from test&set/fetch&add/swap would solve 3-process consensus, which@.\
         these primitives (consensus number 2) cannot (Herlihy 1991).@."
