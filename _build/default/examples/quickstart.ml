(* Quickstart: a tour of the library.

   Builds the paper's fetch&add constructions, runs them in the
   deterministic simulator, inspects the trace, and lets the checker
   verify strong linearizability of a small workload.

     dune exec examples/quickstart.exe *)

let () = Format.printf "== 1. A max register from fetch&add (Theorem 1) ==@."

(* The simplest way to play with an object is the solo runtime: a single
   process, accesses apply immediately. *)
let () =
  let module R = (val Solo_runtime.make ~self:0 ~n:4 ()) in
  let module M = Faa_max_register.Make (R) in
  let m = M.create () in
  M.write_max m 17;
  M.write_max m 5;
  Format.printf "  wrote 17 then 5; read_max = %d@." (M.read_max m);
  let module S = Faa_snapshot.Make (R) in
  let s = S.create () in
  S.update s 42;
  Format.printf "  snapshot after update(42) by p0: [%s]@.@."
    (String.concat "; " (Array.to_list (Array.map string_of_int (S.scan s))))

let () = Format.printf "== 2. Concurrency in the simulator ==@."

(* Three processes race on one max register.  The schedule is explicit,
   so the run is reproducible; every operation of Theorem 1's
   construction is a single fetch&add step. *)
let program : (Spec.Max_register.op, Spec.Max_register.resp) Sim.program =
  {
    procs = 3;
    boot =
      (fun w ->
        let module R = (val Sim.runtime w) in
        let module M = Faa_max_register.Make (R) in
        let m = M.create ~name:"max" () in
        let ops =
          [|
            [ Spec.Max_register.WriteMax 10 ];
            [ Spec.Max_register.WriteMax 20 ];
            [ Spec.Max_register.ReadMax; Spec.Max_register.ReadMax ];
          |]
        in
        Array.iteri
          (fun p my_ops ->
            Sim.spawn w ~proc:p (fun () ->
                List.iter
                  (fun op ->
                    ignore
                      (Sim.operation w ~op
                         ~resp:(fun r -> r)
                         (fun () ->
                           match op with
                           | Spec.Max_register.WriteMax v ->
                               M.write_max m v;
                               Spec.Max_register.Ack
                           | Spec.Max_register.ReadMax ->
                               Spec.Max_register.Value (M.read_max m))))
                  my_ops))
          ops);
  }

let () =
  let w = Sim.run_random ~seed:2024 program in
  Format.printf "  trace of one random schedule (seed 2024):@.";
  Format.printf "%a@."
    (Trace.pp Spec.Max_register.pp_op Spec.Max_register.pp_resp)
    (Sim.trace w)

let () = Format.printf "== 3. Checking strong linearizability ==@."

let () =
  let module L = Lincheck.Make (Spec.Max_register) in
  let verdict = L.check_strong program in
  Format.printf "  Theorem 1 construction, 3-process workload: %a@.@." L.pp_verdict verdict

let () = Format.printf "== 4. A counter via Algorithm 1 over the fetch&add snapshot (Theorem 4) ==@."

let () =
  let module R = (val Solo_runtime.make ~self:0 ~n:2 ()) in
  let module Snap = Faa_snapshot.Make (R) in
  let module C = Simple_type.Make (Simple_instances.Counter_type) (Snap) in
  let c = C.create ~n:2 () in
  ignore (C.execute c ~self:0 (Spec.Counter.Add 5));
  ignore (C.execute c ~self:0 (Spec.Counter.Add (-2)));
  (match C.execute c ~self:0 Spec.Counter.Read with
  | Spec.Counter.Value v -> Format.printf "  counter after +5, -2: %d@." v
  | Spec.Counter.Ack -> assert false);
  Format.printf "@.Done.  See examples/adversary_game.ml for the impossibility side.@."
