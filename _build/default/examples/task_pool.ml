(* A crash-tolerant task pool on the paper's set object (Theorem 10).

   Producers put task ids into the Algorithm 2 set (built from test&set
   over Theorem 9's fetch&increment over Theorem 5's readable test&set —
   the full consensus-number-2 stack); consumers take until the pool
   drains.  We run many random schedules, some with a crashed process,
   and check the pool's safety end to end: no task is executed twice and
   no task vanishes (every put task is either executed or still pending
   inside a crashed operation).

   Because the set is strongly linearizable, any such harness composed
   around it keeps its guarantees under every adversary schedule — this
   is the practical payoff of the paper's positive results.

     dune exec examples/task_pool.exe *)

let producers = 2
let consumers = 2
let tasks_per_producer = 3

type outcome = { executed : int list; produced : int list }

let run ~seed ~crash : outcome =
  let executed = ref [] in
  let produced = ref [] in
  let n = producers + consumers in
  let prog : (string, string) Sim.program =
    {
      procs = n;
      boot =
        (fun w ->
          let module R = (val Sim.runtime w) in
          let module RT = Readable_ts.Make (R) in
          let module F = Ts_fetch_inc.Make (RT) in
          let module S = Ts_set.Make (R) (F) in
          let pool = S.create ~name:"pool" () in
          (* Producers. *)
          for p = 0 to producers - 1 do
            Sim.spawn w ~proc:p (fun () ->
                for t = 1 to tasks_per_producer do
                  let task = (p * 100) + t in
                  ignore
                    (Sim.operation w ~op:(Printf.sprintf "put(%d)" task) ~resp:Fun.id
                       (fun () ->
                         S.put pool task;
                         produced := task :: !produced;
                         "ok"))
                done)
          done;
          (* Consumers: keep taking until the pool answers Empty twice. *)
          for c = 0 to consumers - 1 do
            Sim.spawn w ~proc:(producers + c) (fun () ->
                let misses = ref 0 in
                while !misses < 2 do
                  let got =
                    Sim.operation w ~op:"take" ~resp:Fun.id (fun () ->
                        match S.take pool with
                        | Some task ->
                            executed := task :: !executed;
                            string_of_int task
                        | None ->
                            incr misses;
                            "empty")
                  in
                  ignore got
                done)
          done);
    }
  in
  let crash_after = if crash then [ (seed mod n, 10 + (seed mod 20)) ] else [] in
  ignore (Sim.run_random ~seed ~crash_after prog);
  { executed = !executed; produced = !produced }

let () =
  let runs = 2000 in
  let dups = ref 0 and total_exec = ref 0 in
  for seed = 1 to runs do
    let o = run ~seed ~crash:(seed mod 3 = 0) in
    total_exec := !total_exec + List.length o.executed;
    (* Safety: no duplicates, and nothing executed that wasn't produced. *)
    let sorted = List.sort compare o.executed in
    let rec has_dup = function
      | a :: b :: _ when a = b -> true
      | _ :: rest -> has_dup rest
      | [] -> false
    in
    if has_dup sorted then incr dups;
    List.iter
      (fun t ->
        if not (List.mem t o.produced) then
          failwith (Printf.sprintf "seed %d: phantom task %d" seed t))
      o.executed
  done;
  Format.printf "task pool: %d runs (1/3 with a crashed process)@." runs;
  Format.printf "  tasks executed in total: %d@." !total_exec;
  Format.printf "  duplicate executions:    %d@." !dups;
  Format.printf "  phantom executions:      0@.";
  if !dups > 0 then failwith "safety violation!";
  Format.printf "No task was ever executed twice, under any schedule or crash.@."
