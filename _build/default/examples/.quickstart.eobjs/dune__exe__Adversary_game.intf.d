examples/adversary_game.mli:
