examples/finding_tour.ml: Atomic_objects Format Harness Lincheck List Object_intf Runtime_intf Sim Spec String Trace Ts_set Ts_set_conservative
