examples/adversary_game.ml: Agreement Array Format Fun K_ordering List Random Sim String
