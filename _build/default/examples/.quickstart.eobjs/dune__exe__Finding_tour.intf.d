examples/finding_tour.mli:
