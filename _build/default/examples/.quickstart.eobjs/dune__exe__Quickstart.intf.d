examples/quickstart.mli:
