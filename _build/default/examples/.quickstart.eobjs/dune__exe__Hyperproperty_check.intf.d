examples/hyperproperty_check.mli:
