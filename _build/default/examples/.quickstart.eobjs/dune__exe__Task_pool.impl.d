examples/task_pool.ml: Format Fun List Printf Readable_ts Sim Ts_fetch_inc Ts_set
