examples/task_pool.mli:
