examples/quickstart.ml: Array Faa_max_register Faa_snapshot Format Lincheck List Sim Simple_instances Simple_type Solo_runtime Spec String Trace
