examples/hyperproperty_check.ml: Array Faa_snapshot Format Harness Lincheck List Printf Runtime_intf Rw_snapshot Spec String
