(* A guided tour of the Theorem 10 finding.

   The strong-linearizability checker refuted the paper's own Algorithm 2
   (the set from test&set): its EMPTY-returning take is linearized "at
   its last step that reads Max", a point that is only selected
   retroactively.  This example walks the whole story end to end:

   1. refute:   the game loses on Put(1) | Put(2) | Take;
   2. witness:  replay the branch point and print the two futures that
                contradict every possible commitment;
   3. diagnose: the same workload verifies when the take cannot return
                EMPTY;
   4. repair:   a conservative EMPTY (only from a fully settled stable
                round) restores strong linearizability —
   5. price:    — and forfeits lock-freedom: a put crashed between its
                fetch&increment and its write starves takes forever.

     dune exec examples/finding_tour.exe *)

module L = Lincheck.Make (Spec.Set_obj)

let exec_of (type a) (module M : Object_intf.SET with type t = a) (t : a) :
    Spec.Set_obj.op -> Spec.Set_obj.resp = function
  | Spec.Set_obj.Put x ->
      M.put t x;
      Spec.Set_obj.Ok_
  | Spec.Set_obj.Take -> (
      match M.take t with None -> Spec.Set_obj.Empty | Some x -> Spec.Set_obj.Item x)

let alg2_exec (module R : Runtime_intf.S) =
  let module A = Atomic_objects.Make (R) in
  let module S = Ts_set.Make (R) (A.Fetch_inc) in
  exec_of (module S) (S.create ~name:"set" ())

let repaired_exec (module R : Runtime_intf.S) =
  let module A = Atomic_objects.Make (R) in
  let module S = Ts_set_conservative.Make (R) (A.Fetch_inc) in
  exec_of (module S) (S.create ~name:"cset" ())

let workload = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Put 2 ]; [ Spec.Set_obj.Take ] |]

let () =
  Format.printf "== 1. Refute: Algorithm 2 on Put(1) | Put(2) | Take ==@.";
  (match L.check_strong ~max_nodes:4_000_000 (Harness.program ~make:alg2_exec ~workload) with
  | L.Not_strongly_linearizable { witness; nodes } ->
      Format.printf "   NOT strongly linearizable — witness %s, %d nodes (exhaustive).@."
        (String.concat "" (List.map string_of_int witness))
        nodes
  | v -> Format.printf "   unexpected: %a@." L.pp_verdict v);
  Format.printf "@."

let () =
  Format.printf "== 2. The branch point ==@.";
  (* Drive the take to the step just before it reads Items[2] in its
     final round, with put(1) completed (its item missed) and put(2)
     holding a reserved-but-unwritten slot. *)
  let prefix = [ 0; 0; 1; 1; 2; 2; 2; 2; 2; 2; 0 ] in
  let prog = Harness.program ~make:alg2_exec ~workload in
  let w = Sim.run_schedule prog prefix in
  Format.printf "   after schedule %s:@."
    (String.concat "" (List.map string_of_int prefix));
  Format.printf "   - put(1) is COMPLETE (take already scanned past its slot);@.";
  Format.printf "   - put(2) reserved slot 2 but has not written it;@.";
  Format.printf "   - the take is one read away from slot 2.@.";
  List.iter
    (fun p ->
      let w' = Sim.run_schedule prog (prefix @ [ p ]) in
      let rec drain w' =
        match Sim.enabled w' with
        | [] -> ()
        | q :: _ ->
            Sim.step w' q;
            drain w'
      in
      drain w';
      let take_resp =
        List.filter_map
          (function
            | Trace.Return { proc = 2; resp } ->
                Some (Format.asprintf "%a" Spec.Set_obj.pp_resp resp)
            | _ -> None)
          (Sim.trace w')
      in
      Format.printf "   future via p%d: take returns %s@." p
        (String.concat "," take_resp))
    (Sim.enabled w);
  Format.printf
    "   EMPTY forces the take BEFORE the completed put(1); Item 2 forces a@.\
    \   different committed response — no prefix-closed choice survives both.@.@."

let () =
  Format.printf "== 3. Repair: conservative EMPTY (all slots settled) ==@.";
  (match
     L.check_strong ~max_nodes:4_000_000 ~max_depth:18
       (Harness.program ~make:repaired_exec ~workload)
   with
  | L.Strongly_linearizable { nodes } ->
      Format.printf "   strongly linearizable (%d nodes) — the race is gone.@." nodes
  | v -> Format.printf "   unexpected: %a@." L.pp_verdict v);
  Format.printf "@."

let () =
  Format.printf "== 4. The price: lock-freedom ==@.";
  let small = [| [ Spec.Set_obj.Put 1 ]; [ Spec.Set_obj.Take ] |] in
  let prog = Harness.program ~make:repaired_exec ~workload:small in
  let w = Sim.create ~n:2 in
  prog.Sim.boot w;
  Sim.step w 0;
  Sim.step w 0;
  (* put(1) reserved its slot; crash it before the write *)
  Sim.crash w 0;
  let steps = ref 0 in
  while List.mem 1 (Sim.enabled w) && !steps < 400 do
    Sim.step w 1;
    incr steps
  done;
  Format.printf "   put crashed between fetch&increment and write;@.";
  Format.printf "   take took %d steps and %s.@." !steps
    (if Sim.finished w 1 then "completed (unexpected!)" else "is still spinning — starvation");
  Format.printf
    "@.Whether a lock-free strongly-linearizable set with a sound EMPTY exists@.\
     from consensus-number-2 primitives appears to be open.  Details:@.\
     DESIGN.md section 6, EXPERIMENTS.md, test/test_ablations.ml.@."
