(** Arbitrary-precision natural numbers.

    This module is the arithmetic substrate for the {e wide} fetch&add
    registers of Attiya–Castañeda–Enea (PODC 2024, Sections 3.1–3.2): the
    constructions there pack one unbounded value per process into a single
    register by interleaving bits (process [i] owns bits
    [i, i + n, i + 2n, ...] of an n-process register).  Multicore OCaml's
    [Atomic] offers fetch-and-add only on word-sized integers, so the
    registers are backed by this type instead; atomicity is supplied by the
    simulation runtime.

    Values are immutable and always non-negative.  All functions are pure.
    The representation is normalized: equal numbers are structurally equal,
    so polymorphic equality would be safe, but use {!equal} and {!compare}
    anyway. *)

type t

exception Underflow
(** Raised by {!sub} (and {!Signed.apply}) when the result would be
    negative. *)

(** {1 Constants and conversions} *)

val zero : t
val one : t

val of_int : int -> t
(** [of_int k] is [k] as a bignum.  @raise Invalid_argument if [k < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some k] when [x] fits an OCaml [int]. *)

val to_int_exn : t -> int
(** Like {!to_int_opt}. @raise Failure when the value does not fit. *)

val of_string : string -> t
(** Parse a decimal string. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal rendering. *)

val to_hex : t -> string
(** Hexadecimal rendering (no ["0x"] prefix, lowercase). *)

val pp : Format.formatter -> t -> unit
(** Prints the decimal rendering. *)

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool
val hash : t -> int

(** {1 Arithmetic} *)

val add : t -> t -> t
val succ : t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b]. @raise Underflow if [b > a]. *)

val mul_small : t -> int -> t
(** [mul_small a k] is [a * k] for [0 <= k < 2^30].
    @raise Invalid_argument if [k] is out of range. *)

val divmod_small : t -> int -> t * int
(** [divmod_small a k] is [(a / k, a mod k)] for [1 <= k < 2^30].
    @raise Invalid_argument if [k] is out of range. *)

(** {1 Bit operations}

    Bit [0] is the least significant bit. *)

val pow2 : int -> t
(** [pow2 k] is [2^k].  @raise Invalid_argument if [k < 0]. *)

val bit : t -> int -> bool
val set_bit : t -> int -> t
val clear_bit : t -> int -> t

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0].  This is
    the "register width" metric of experiment E5 (paper §6 discusses the
    cost of storing extremely large values). *)

val popcount : t -> int

(** {1 Strided bit access}

    The interleaved-bit encodings of §3.1–§3.2 view a register of an
    [n]-process system as [n] independent bit streams: stream [i] occupies
    absolute bit positions [i, i + n, i + 2n, ...].  [extract_stride]
    gathers one stream into a contiguous number; [deposit_stride] scatters
    a contiguous number back into stream positions. *)

val extract_stride : t -> offset:int -> stride:int -> t
(** [extract_stride x ~offset ~stride] is the number whose bit [j] is bit
    [offset + j * stride] of [x].
    @raise Invalid_argument if [offset < 0] or [stride < 1]. *)

val deposit_stride : t -> offset:int -> stride:int -> t
(** [deposit_stride v ~offset ~stride] is the number whose bit
    [offset + j * stride] equals bit [j] of [v] and whose other bits are
    zero.  Inverse of {!extract_stride} on its image.
    @raise Invalid_argument if [offset < 0] or [stride < 1]. *)

(** {1 Signed deltas}

    A fetch&add adjustment may be negative (the snapshot construction of
    §3.2 adds [posAdj - negAdj]).  [Signed] represents such deltas without
    making the main type signed. *)

module Signed : sig
  type nat := t

  type t = { neg : bool; mag : nat }
  (** [{ neg; mag }] denotes [mag] if [not neg], and [-mag] otherwise.
      [{ neg = true; mag = zero }] is a valid representation of zero. *)

  val zero : t
  val of_int : int -> t
  val of_nat : ?neg:bool -> nat -> t

  val add : t -> t -> t

  val apply : nat -> t -> nat
  (** [apply x d] is [x + d].  @raise Underflow if the result would be
      negative. *)

  val pp : Format.formatter -> t -> unit
end
