(* The one-shot fetch&increment from test&set of Afek–Weisberger(–Weisman)
   [4, 5]: each process sweeps an array of test&set objects in ascending
   order and returns the index at which it wins.

   One-shot means every process invokes fetch&increment at most once, so
   a sweep is bounded by n and the implementation is wait-free.  The
   paper notes this implementation IS strongly linearizable (operations
   linearize at their winning test&set, a fixed point), and that
   Theorem 9's lock-free readable fetch&increment is its straightforward
   generalization — whereas the wait-free multi-shot constructions of
   [3, 4, 5] are not strongly linearizable.  We enforce the one-shot
   restriction at runtime. *)

module Make (R : Runtime_intf.S) : sig
  type t

  val create : ?name:string -> unit -> t

  val fetch_inc : t -> int
  (** @raise Invalid_argument if the calling process invokes twice. *)
end = struct
  module P = Prim.Make (R)

  type t = { cells : P.Test_and_set.t Inf_array.t; used : bool array }

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "aww." in
    {
      cells = Inf_array.create (fun i -> P.Test_and_set.make ~name:(Printf.sprintf "%sts%d" prefix i) ());
      used = Array.make (R.n_procs ()) false;
    }

  let fetch_inc t =
    let me = R.self () in
    if t.used.(me) then invalid_arg "Aww_fetch_inc: one-shot object invoked twice";
    t.used.(me) <- true;
    let rec go i = if P.Test_and_set.test_and_set (Inf_array.get t.cells i) = 0 then i else go (i + 1) in
    go 1
end
