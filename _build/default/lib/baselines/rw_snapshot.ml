(* The Afek–Attiya–Dolev–Gafni–Merritt–Shavit wait-free atomic snapshot
   from single-writer registers [1].

   Each process's register holds (value, sequence number, embedded view).
   An update first performs a scan and stores the resulting view next to
   the new value; a scan repeatedly collects all registers and returns
   either the values of two identical consecutive collects (a "clean"
   double collect) or, once it has seen some process move twice, that
   process's embedded view — which was obtained entirely within the
   scan's own interval.

   This is THE motivating example for strong linearizability: Golab,
   Higham and Woelfel showed that composing it with a randomized program
   lets a strong adversary bias outcomes — it is linearizable but not
   strongly linearizable.  Our game solver refutes it mechanically
   (experiment E2), and the randomized-consensus example program shows
   the adversary's bias concretely. *)

module Make (R : Runtime_intf.S) : Object_intf.SNAPSHOT = struct
  type entry = { value : int; seq : int; view : int array }

  type t = entry R.obj array

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "aad." in
    let n = R.n_procs () in
    Array.init n (fun i ->
        R.obj ~name:(Printf.sprintf "%sr%d" prefix i) { value = 0; seq = 0; view = Array.make n 0 })

  let collect t = Array.map (fun r -> R.read ~info:"collect" r) t

  let scan t =
    let n = Array.length t in
    let moved = Array.make n 0 in
    let rec attempt (prev : entry array) =
      let cur = collect t in
      let all_equal = ref true in
      for j = 0 to n - 1 do
        if cur.(j).seq <> prev.(j).seq then all_equal := false
      done;
      if !all_equal then Array.map (fun e -> e.value) cur
      else begin
        (* Find a process that moved twice since the scan began: its
           embedded view lies within our interval. *)
        let borrowed = ref None in
        for j = 0 to n - 1 do
          if cur.(j).seq <> prev.(j).seq then begin
            moved.(j) <- moved.(j) + 1;
            if moved.(j) >= 2 && !borrowed = None then borrowed := Some cur.(j).view
          end
        done;
        match !borrowed with Some view -> Array.copy view | None -> attempt cur
      end
    in
    let first = collect t in
    attempt first

  let update t v =
    if v < 0 then invalid_arg "Rw_snapshot.update: negative";
    let i = R.self () in
    let view = scan t in
    R.access ~info:"update-write" t.(i) (fun e -> ({ value = v; seq = e.seq + 1; view }, ()))
end
