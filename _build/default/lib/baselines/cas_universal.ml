(* The lock-free universal construction from compare&swap: the whole
   object state lives behind one pointer; an operation snapshots the
   state, computes the successor locally, and installs it with CAS,
   retrying on interference.

   Operations linearize at their successful CAS — a fixed point in the
   execution — so the construction is strongly linearizable.  This is the
   upper baseline of the paper's introduction: the only previously known
   wait-free/lock-free strongly-linearizable implementations use such
   universal (infinite consensus number) primitives, and Theorems 17/19
   show that for queues and stacks nothing weaker can work. *)

module Make (R : Runtime_intf.S) (S : sig
  type state
  type op
  type resp

  val init : state
  val apply : state -> op -> state * resp
end) : sig
  type t

  val create : ?name:string -> unit -> t
  val execute : t -> S.op -> S.resp
end = struct
  module P = Prim.Make (R)

  type t = S.state P.Cas.t

  let create ?name () = P.Cas.make ?name S.init

  let rec execute t op =
    let s = P.Cas.read t in
    let s', r = S.apply s op in
    if P.Cas.compare_and_swap t ~expect:s s' then r else execute t op
end
