(* A naive tournament test&set: n-process test&set from 2-process
   test&sets arranged in a binary tree.  Each process climbs from its
   leaf; at every internal node it plays that node's 2-process test&set
   (only the two subtree winners can reach a node, so the 2-process
   restriction is respected) and advances on a win; the process that wins
   the root returns 0, everyone else returns 1.

   This construction is NOT linearizable, and the checker proves it
   (test and experiment E2): a process can lose — and complete, returning
   1 — before the eventual winner has even invoked, so no sequential
   execution can put a winning test&set first.  This is exactly why the
   genuine n-process test&set from 2-process test&set of
   Afek–Gafni–Tromp–Vitányi (1992) needs more machinery than a
   tournament, and it makes the object a useful negative control for the
   checker: "uses only 2-process test&set" (Theorem 19's base objects)
   does not by itself make an implementation correct. *)

module Make (R : Runtime_intf.S) : sig
  type t

  val create : ?name:string -> unit -> t

  val test_and_set : t -> int
  (** One-shot: each process may call at most once. *)
end = struct
  module P = Prim.Make (R)

  type t = { nodes : P.Test_and_set.t array; leaves : int }

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "tour." in
    let n = R.n_procs () in
    let leaves = ref 1 in
    while !leaves < n do
      leaves := !leaves * 2
    done;
    {
      nodes =
        Array.init !leaves (fun i ->
            P.Test_and_set.make ~name:(Printf.sprintf "%snode%d" prefix i) ~procs:2 ());
      leaves = !leaves;
    }

  let test_and_set t =
    let rec climb node =
      if node <= 1 then 0  (* won every round including the root *)
      else if P.Test_and_set.test_and_set t.nodes.(node / 2) = 0 then climb (node / 2)
      else 1
    in
    climb (t.leaves + R.self ())
end
