(* A wait-free linearizable max register from single-writer registers:
   write_max raises the writer's own component; read_max collects all
   components and returns the largest.

   Linearizable because components only grow: the maximum seen by a
   collect always lies between the object's value at the collect's start
   and at its end.  By Denysyuk–Woelfel (DISC 2015) no max register has a
   wait-free strongly-linearizable implementation from registers, so this
   baseline sits on the impossible side of the paper's Figure 1 — in
   contrast to Theorem 1's one-step fetch&add construction. *)

module Make (R : Runtime_intf.S) : Object_intf.MAX_REGISTER = struct
  type t = int R.obj array

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "rwmax." in
    Array.init (R.n_procs ()) (fun i -> R.obj ~name:(Printf.sprintf "%sr%d" prefix i) 0)

  let write_max t v =
    if v < 0 then invalid_arg "Rw_max_register.write_max: negative";
    let i = R.self () in
    let cur = R.read ~info:"own-read" t.(i) in
    if v > cur then R.access ~info:"own-write" t.(i) (fun _ -> (v, ()))

  let read_max t = Array.fold_left (fun acc r -> max acc (R.read ~info:"collect" r)) 0 t
end
