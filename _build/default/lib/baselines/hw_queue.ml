(* The Herlihy–Wing queue from fetch&add and swap: enqueue reserves a
   slot with fetch&add on [back] and writes its item there; dequeue
   sweeps slots 0..back-1 claiming with swap, retrying while it finds
   nothing (a dequeue concurrent with slow enqueues cannot soundly report
   "empty").

   The canonical linearizable queue from consensus-number-2 primitives —
   and, by Theorem 17, necessarily not strongly linearizable; the same
   holds for Li's lock-free queue [25], which refines this structure.
   The game solver refutes it (experiment E2) and Algorithm B run on it
   loses agreement (experiment E4; see also [K_ordering.hw_queue], a
   bounded-capacity copy of this algorithm packaged for Algorithm B's
   collect/replay). *)

module Make (R : Runtime_intf.S) : Object_intf.QUEUE = struct
  module P = Prim.Make (R)

  type t = { back : P.Faa_int.t; slots : int option P.Swap.t Inf_array.t }

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "hw." in
    {
      back = P.Faa_int.make ~name:(prefix ^ "back") 0;
      slots = Inf_array.create (fun i -> P.Swap.make ~name:(Printf.sprintf "%sslot%d" prefix i) None);
    }

  let enqueue t x =
    let i = P.Faa_int.fetch_and_add t.back 1 in
    ignore (P.Swap.swap (Inf_array.get t.slots i) (Some x))

  let dequeue t =
    let rec sweep i limit =
      if i >= limit then None
      else
        match P.Swap.swap (Inf_array.get t.slots i) None with
        | Some x -> Some x
        | None -> sweep (i + 1) limit
    in
    let rec retry () =
      let limit = P.Faa_int.read t.back in
      match sweep 0 limit with Some x -> Some x | None -> retry ()
    in
    retry ()
end
