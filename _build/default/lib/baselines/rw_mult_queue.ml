(* A queue with multiplicity from single-writer registers, in the spirit
   of Castañeda–Rajsbaum–Raynal [11] (the paper's §5 notes these relaxed
   implementations exist from read/write operations, and its Theorem 17
   implies they cannot be strongly linearizable).

   Structure: process i owns two single-writer registers — a log of its
   enqueued entries (timestamped by collecting everyone's logs and taking
   max+1, ties broken by process id) and a log of "taken" announcements.
   enqueue = collect + publish; dequeue = collect logs and announcements,
   pick the oldest unannounced entry, announce it.  Both are wait-free.

   Two dequeues that collect before either announces can return the SAME
   item — exactly the multiplicity relaxation: the duplication can only
   happen between concurrent dequeues (a completed dequeue's announcement
   is visible to every later collect).  [Mult_check] validates executions
   against that relaxed specification.

   The [instance] packaging (collect/replay) lets Lemma 12's Algorithm B
   run on it; since the implementation is not strongly linearizable,
   agreement violations appear — the mechanism behind the paper's claim
   that the implementations of [11] are not strongly linearizable. *)

module Make (R : Runtime_intf.S) = struct
  module P = Prim.Make (R)

  type entry = { ts : int; owner : int; seq : int; item : int }

  type t = {
    logs : entry list P.Register.t array;  (* newest first; SWMR *)
    taken : (int * int) list P.Register.t array;  (* (owner, seq) uids; SWMR *)
    my_seq : int array;
  }

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "mq." in
    let n = R.n_procs () in
    {
      logs = Array.init n (fun i -> P.Register.make ~name:(Printf.sprintf "%slog%d" prefix i) []);
      taken = Array.init n (fun i -> P.Register.make ~name:(Printf.sprintf "%staken%d" prefix i) []);
      my_seq = Array.make n 0;
    }

  let collect_logs t = Array.map (fun r -> P.Register.read r) t.logs
  let collect_taken t = Array.map (fun r -> P.Register.read r) t.taken

  let enqueue t x =
    let me = R.self () in
    let views = collect_logs t in
    let ts =
      1 + Array.fold_left (fun acc log -> List.fold_left (fun a e -> max a e.ts) acc log) 0 views
    in
    let seq = t.my_seq.(me) in
    t.my_seq.(me) <- seq + 1;
    let mine = views.(me) in
    P.Register.write t.logs.(me) ({ ts; owner = me; seq; item = x } :: mine)

  (* Oldest available entry in a collected view: min (ts, owner, seq)
     among entries whose uid is unannounced. *)
  let oldest_available logs taken =
    let announced = Array.to_list taken |> List.concat in
    Array.to_list logs |> List.concat
    |> List.filter (fun e -> not (List.mem (e.owner, e.seq) announced))
    |> List.fold_left
         (fun best e ->
           match best with
           | None -> Some e
           | Some b -> if (e.ts, e.owner, e.seq) < (b.ts, b.owner, b.seq) then Some e else best)
         None

  let dequeue t =
    let me = R.self () in
    let logs = collect_logs t in
    let taken = collect_taken t in
    match oldest_available logs taken with
    | None -> None
    | Some e ->
        P.Register.write t.taken.(me) ((e.owner, e.seq) :: taken.(me));
        Some e.item
end

(* The stack with multiplicity is the same construction with the age
   order reversed: a pop claims the YOUNGEST unannounced entry.  The
   paper's §5 treats the two relaxations in parallel; so do we. *)
module Make_stack (R : Runtime_intf.S) = struct
  module Q = Make (R)

  type t = Q.t

  let create = Q.create
  let push (t : t) x = Q.enqueue t x

  let youngest_available logs taken =
    let announced = Array.to_list taken |> List.concat in
    Array.to_list logs |> List.concat
    |> List.filter (fun e -> not (List.mem (e.Q.owner, e.Q.seq) announced))
    |> List.fold_left
         (fun best e ->
           match best with
           | None -> Some e
           | Some b ->
               if (e.Q.ts, e.Q.owner, e.Q.seq) > (b.Q.ts, b.Q.owner, b.Q.seq) then Some e
               else best)
         None

  let pop (t : t) =
    let module P = Prim.Make (R) in
    let logs = Q.collect_logs t in
    let taken = Q.collect_taken t in
    match youngest_available logs taken with
    | None -> None
    | Some e ->
        P.Register.write t.Q.taken.(R.self ()) ((e.Q.owner, e.Q.seq) :: taken.(R.self ()));
        Some e.Q.item
end

(* Algorithm B packaging (same shape as [K_ordering.atomic_queue]). *)
let instance (module R : Runtime_intf.S) :
    (Spec.Queue_spec.op, Spec.Queue_spec.resp) K_ordering.instance =
  let module Q = Make (R) in
  let q = Q.create () in
  K_ordering.Instance
    {
      apply =
        (fun op ->
          match op with
          | Spec.Queue_spec.Enq x ->
              Q.enqueue q x;
              Spec.Queue_spec.Ok_
          | Spec.Queue_spec.Deq -> (
              match Q.dequeue q with
              | None -> Spec.Queue_spec.Empty
              | Some x -> Spec.Queue_spec.Item x));
      collect = (fun () -> (Q.collect_logs q, Q.collect_taken q));
      replay =
        (fun (logs, taken) ops ->
          let taken = Array.copy taken in
          List.map
            (fun op ->
              match op with
              | Spec.Queue_spec.Enq _ ->
                  invalid_arg "rw_mult_queue.replay: decision sequences only"
              | Spec.Queue_spec.Deq -> (
                  match Q.oldest_available logs taken with
                  | None -> Spec.Queue_spec.Empty
                  | Some e ->
                      taken.(0) <- (e.owner, e.seq) :: taken.(0);
                      Spec.Queue_spec.Item e.item))
            ops);
    }

let stack_instance (module R : Runtime_intf.S) :
    (Spec.Stack_spec.op, Spec.Stack_spec.resp) K_ordering.instance =
  let module S = Make_stack (R) in
  let s = S.create () in
  K_ordering.Instance
    {
      apply =
        (fun op ->
          match op with
          | Spec.Stack_spec.Push x ->
              S.push s x;
              Spec.Stack_spec.Ok_
          | Spec.Stack_spec.Pop -> (
              match S.pop s with
              | None -> Spec.Stack_spec.Empty
              | Some x -> Spec.Stack_spec.Item x));
      collect = (fun () -> (S.Q.collect_logs s, S.Q.collect_taken s));
      replay =
        (fun (logs, taken) ops ->
          let taken = Array.copy taken in
          List.map
            (fun op ->
              match op with
              | Spec.Stack_spec.Push _ ->
                  invalid_arg "rw_mult_queue.stack replay: decision sequences only"
              | Spec.Stack_spec.Pop -> (
                  match S.youngest_available logs taken with
                  | None -> Spec.Stack_spec.Empty
                  | Some e ->
                      taken.(0) <- (e.S.Q.owner, e.S.Q.seq) :: taken.(0);
                      Spec.Stack_spec.Item e.S.Q.item))
            ops);
    }
