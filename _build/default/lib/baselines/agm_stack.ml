(* A wait-free-push stack from fetch&add and swap, after the structure of
   Afek–Gafni–Morrison's Common2 stack [2]: push reserves a slot in an
   infinite array with fetch&add on a top counter and writes its item
   there; pop reads the counter and sweeps downward, claiming with swap.

   It is linearizable (pushes order by their slot index; a pop takes the
   highest written slot it reaches), and Attiya–Enea showed the stack of
   [2] is not strongly linearizable — as Theorem 17 says any such stack
   must be, since it uses only consensus-number-2 primitives.  Our game
   solver refutes this implementation directly (experiment E2).

   Pop retries when it sweeps past everything without claiming — a pop
   concurrent with slow pushes cannot soundly report "empty", so like the
   Herlihy–Wing dequeue it spins until an item appears.  Workloads keep
   pops matched by pushes. *)

module Make (R : Runtime_intf.S) : Object_intf.STACK = struct
  module P = Prim.Make (R)

  type t = { top : P.Faa_int.t; slots : int option P.Swap.t Inf_array.t }

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "agm." in
    {
      top = P.Faa_int.make ~name:(prefix ^ "top") 0;
      slots = Inf_array.create (fun i -> P.Swap.make ~name:(Printf.sprintf "%sslot%d" prefix i) None);
    }

  let push t x =
    let i = P.Faa_int.fetch_and_add t.top 1 in
    ignore (P.Swap.swap (Inf_array.get t.slots i) (Some x))

  let pop t =
    let rec sweep i =
      if i < 0 then None
      else
        match P.Swap.swap (Inf_array.get t.slots i) None with
        | Some x -> Some x
        | None -> sweep (i - 1)
    in
    let rec retry () =
      let top = P.Faa_int.read t.top in
      match sweep (top - 1) with Some x -> Some x | None -> retry ()
    in
    retry ()
end
