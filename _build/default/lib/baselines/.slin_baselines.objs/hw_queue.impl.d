lib/baselines/hw_queue.ml: Inf_array Object_intf Prim Printf Runtime_intf
