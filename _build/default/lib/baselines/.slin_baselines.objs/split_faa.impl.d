lib/baselines/split_faa.ml: Prim Runtime_intf
