lib/baselines/cas_universal.ml: Prim Runtime_intf
