lib/baselines/aww_fetch_inc.ml: Array Inf_array Prim Printf Runtime_intf
