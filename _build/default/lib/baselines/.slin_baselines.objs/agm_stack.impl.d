lib/baselines/agm_stack.ml: Inf_array Object_intf Prim Printf Runtime_intf
