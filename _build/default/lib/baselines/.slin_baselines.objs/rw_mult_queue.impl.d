lib/baselines/rw_mult_queue.ml: Array K_ordering List Prim Printf Runtime_intf Spec
