lib/baselines/rw_snapshot.ml: Array Object_intf Printf Runtime_intf
