lib/baselines/rw_max_register.ml: Array Object_intf Printf Runtime_intf
