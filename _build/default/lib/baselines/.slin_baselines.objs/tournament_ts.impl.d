lib/baselines/tournament_ts.ml: Array Prim Printf Runtime_intf
