(* A "wide" fetch&add built naively from two narrow fetch&add words —
   the §6 open problem's strawman.

   The paper closes by asking whether wide fetch&add objects (the §3
   constructions store unbounded values in one register) can be
   implemented, strongly linearizably, from narrow ones.  The obvious
   split-word attempt fails before strong linearizability even enters:
   carry propagation between the words is a separate step, so increments
   that overflow the low word and concurrent reads can observe torn
   values.  The checker refutes plain linearizability of this
   implementation (test suite / experiment E2), substantiating why the
   question is open rather than routine.

   Layout: value = high * 2^width + low, with low kept in [0, 2^width).
   add d (0 < d < 2^width): faa low by d; on overflow, carry: faa high
   by 1 and faa low by -2^width.  read: read high then low. *)

module Make
    (R : Runtime_intf.S) (W : sig
      val width : int  (* bits of the low word *)
    end) : sig
  type t

  val create : ?name:string -> unit -> t

  val fetch_add : t -> int -> int
  (** Returns the pre-add value reconstructed from the two words —
      possibly torn, which is the point. *)

  val read : t -> int
end = struct
  module P = Prim.Make (R)

  let base = 1 lsl W.width

  type t = { low : P.Faa_int.t; high : P.Faa_int.t }

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "split." in
    { low = P.Faa_int.make ~name:(prefix ^ "low") 0; high = P.Faa_int.make ~name:(prefix ^ "high") 0 }

  let fetch_add t d =
    if d <= 0 || d >= base then invalid_arg "Split_faa.fetch_add: delta out of range";
    (* Best-effort reconstruction of the pre-add value: high first, then
       the low-word fetch&add — correct solo, torn under concurrency. *)
    let high0 = P.Faa_int.read t.high in
    let old_low = P.Faa_int.fetch_and_add t.low d in
    if old_low + d >= base then begin
      ignore (P.Faa_int.fetch_and_add t.high 1);
      ignore (P.Faa_int.fetch_and_add t.low (-base))
    end;
    (high0 * base) + old_low

  let read t =
    let high = P.Faa_int.read t.high in
    let low = P.Faa_int.read t.low in
    (high * base) + low
end
