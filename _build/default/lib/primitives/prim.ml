(* Typed base objects over a runtime.

   Every operation below is exactly one atomic step ([Runtime_intf.S.access]).
   These are the primitives the paper builds from, organized by consensus
   number:

   - consensus number 1: read/write [Register];
   - consensus number 2: [Test_and_set], [Faa_wide] / [Faa_int] (fetch&add),
     [Swap] — the "realistic primitives" of the title;
   - consensus number infinity: [Cas] (compare&swap), used only by the
     baseline universal constructions the paper contrasts against.

   All objects are {e readable} (they expose a [read], one atomic step);
   by Lemma 16 of the paper this does not affect strong linearizability of
   algorithms that do not use the reads.  Algorithm B of Lemma 12 is the
   one place the reads are load-bearing.

   [Test_and_set.make ~procs:2] builds a 2-process test&set (Theorem 19's
   base object): it enforces at runtime that at most two distinct
   processes ever apply [test_and_set] to it. *)

module Make (R : Runtime_intf.S) = struct
  module Register = struct
    type 'a t = 'a R.obj

    let make ?name init = R.obj ?name init
    let read (r : 'a t) = R.read ~info:"read" r
    let write (r : 'a t) v = R.access ~info:"write" r (fun _ -> (v, ()))
  end

  module Test_and_set = struct
    (* State: the bit, plus the set of processes that applied test&set
       (used only to enforce the 2-process restriction). *)
    type t = { cell : (int * int list) R.obj; procs : int option }

    let make ?name ?procs () = { cell = R.obj ?name (0, []); procs }

    let test_and_set (ts : t) =
      let me = R.self () in
      R.access ~info:"test&set" ts.cell (fun (bit, users) ->
          let users = if List.mem me users then users else me :: users in
          (match ts.procs with
          | Some limit when List.length users > limit ->
              invalid_arg
                (Printf.sprintf "Test_and_set: %d-process object used by %d processes" limit
                   (List.length users))
          | _ -> ());
          ((1, users), bit))

    let read (ts : t) = fst (R.read ~info:"read" ts.cell)
  end

  module Faa_wide = struct
    type t = Bignum.t R.obj

    let make ?name init : t = R.obj ?name init

    let fetch_and_add (r : t) (delta : Bignum.Signed.t) =
      R.access ~info:"fetch&add" r (fun s -> (Bignum.Signed.apply s delta, s))

    (* The §3 constructions read with fetch&add(R, 0); this is that. *)
    let read (r : t) = fetch_and_add r Bignum.Signed.zero
  end

  module Faa_int = struct
    type t = int R.obj

    let make ?name init : t = R.obj ?name init
    let fetch_and_add (r : t) d = R.access ~info:"fetch&add" r (fun s -> (s + d, s))
    let read (r : t) = R.read ~info:"read" r
  end

  module Swap = struct
    type 'a t = 'a R.obj

    let make ?name init : _ t = R.obj ?name init
    let swap (r : 'a t) v = R.access ~info:"swap" r (fun s -> (v, s))
    let read (r : 'a t) = R.read ~info:"read" r
  end

  module Cas = struct
    type 'a t = 'a R.obj

    let make ?name init : _ t = R.obj ?name init

    let compare_and_swap (r : 'a t) ~expect v =
      R.access ~info:"cas" r (fun s -> if s = expect then (v, true) else (s, false))

    let read (r : 'a t) = R.read ~info:"read" r

    (* Unconditional atomic update; same consensus power as CAS.  Used by
       the CAS-backed atomic baselines. *)
    let update (r : 'a t) (f : 'a -> 'a * 'b) = R.access ~info:"update" r f
  end
end
