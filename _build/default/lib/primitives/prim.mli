(** Typed base objects over a runtime — the paper's primitives, organized
    by consensus number.

    Every operation is exactly one atomic step ({!Runtime_intf.S.access}):

    - consensus number 1: read/write {!Make.Register};
    - consensus number 2: {!Make.Test_and_set}, fetch&add
      ({!Make.Faa_wide} on arbitrary-precision naturals — the §3
      constructions need unbounded width — and {!Make.Faa_int} on ints),
      {!Make.Swap} — the "realistic primitives" of the title;
    - consensus number ∞: {!Make.Cas}, used only by the baseline
      universal constructions the paper contrasts against.

    All objects are {e readable} (one-step [read]); by Lemma 16 this does
    not affect strong linearizability of algorithms that do not use the
    reads.  Algorithm B of Lemma 12 is where the reads are load-bearing. *)

module Make (R : Runtime_intf.S) : sig
  module Register : sig
    type 'a t

    val make : ?name:string -> 'a -> 'a t
    val read : 'a t -> 'a
    val write : 'a t -> 'a -> unit
  end

  module Test_and_set : sig
    type t

    val make : ?name:string -> ?procs:int -> unit -> t
    (** [procs] restricts the object: [make ~procs:2 ()] is the 2-process
        test&set of Theorem 19; a third distinct process applying
        {!test_and_set} raises [Invalid_argument]. *)

    val test_and_set : t -> int
    (** Returns the previous bit: 0 for the unique winner, 1 after. *)

    val read : t -> int
  end

  module Faa_wide : sig
    type t

    val make : ?name:string -> Bignum.t -> t

    val fetch_and_add : t -> Bignum.Signed.t -> Bignum.t
    (** Atomically adds a (possibly negative) delta; returns the previous
        value.  @raise Bignum.Underflow if the result would be negative. *)

    val read : t -> Bignum.t
    (** The §3 constructions read with fetch&add(R, 0); this is that. *)
  end

  module Faa_int : sig
    type t

    val make : ?name:string -> int -> t
    val fetch_and_add : t -> int -> int
    val read : t -> int
  end

  module Swap : sig
    type 'a t

    val make : ?name:string -> 'a -> 'a t

    val swap : 'a t -> 'a -> 'a
    (** Atomically installs the new value; returns the previous one. *)

    val read : 'a t -> 'a
  end

  module Cas : sig
    type 'a t

    val make : ?name:string -> 'a -> 'a t

    val compare_and_swap : 'a t -> expect:'a -> 'a -> bool
    (** Structural-equality compare. *)

    val read : 'a t -> 'a

    val update : 'a t -> ('a -> 'a * 'b) -> 'b
    (** Unconditional atomic read-modify-write (same consensus power as
        CAS); used by the CAS-backed atomic reference objects. *)
  end
end
