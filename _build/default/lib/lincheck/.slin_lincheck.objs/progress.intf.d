lib/lincheck/progress.mli: Format Sim Trace
