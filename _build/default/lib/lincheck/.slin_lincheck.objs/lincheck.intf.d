lib/lincheck/lincheck.mli: Format History Sim Spec Trace
