lib/lincheck/harness.mli: Runtime_intf Sim Trace
