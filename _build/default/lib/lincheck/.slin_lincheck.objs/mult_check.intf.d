lib/lincheck/mult_check.mli: Spec Trace
