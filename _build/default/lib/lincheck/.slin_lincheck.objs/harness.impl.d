lib/lincheck/harness.ml: Array Fun List Runtime_intf Sim
