lib/lincheck/progress.ml: Format Hashtbl List Random Sim Trace
