lib/lincheck/lincheck.ml: Array Format Hashtbl History List Sim Spec String Trace
