lib/lincheck/mult_check.ml: Array History List Spec Trace
