(* Sequential specifications.

   A specification is a (possibly nondeterministic) state machine: [apply
   s o] lists every allowed [(state', response)] outcome of operation [o]
   in state [s].  Deterministic objects return singleton lists; relaxed
   objects (stuttering / out-of-order, paper §5) return several outcomes.
   The linearizability checkers enumerate over these outcomes.

   States must be immutable values: the checkers keep many of them alive
   at once. *)

module type S = sig
  type state
  type op
  type resp

  val name : string
  val init : state
  val apply : state -> op -> (state * resp) list

  val equal_resp : resp -> resp -> bool
  val pp_op : Format.formatter -> op -> unit
  val pp_resp : Format.formatter -> resp -> unit
end

let det x = [ x ]

(* ------------------------------------------------------------------ *)
(* Read/write register                                                 *)
(* ------------------------------------------------------------------ *)

module Register = struct
  type state = int
  type op = Read | Write of int [@@deriving show { with_path = false }, eq]
  type resp = Value of int | Ack [@@deriving show { with_path = false }, eq]

  let name = "register"
  let init = 0

  let apply s = function
    | Read -> det (s, Value s)
    | Write v -> det (v, Ack)

  let equal_resp = equal_resp
end

(* ------------------------------------------------------------------ *)
(* Max register (§3.1): ReadMax returns the largest value written      *)
(* ------------------------------------------------------------------ *)

module Max_register = struct
  type state = int
  type op = ReadMax | WriteMax of int [@@deriving show { with_path = false }, eq]
  type resp = Value of int | Ack [@@deriving show { with_path = false }, eq]

  let name = "max-register"
  let init = 0

  let apply s = function
    | ReadMax -> det (s, Value s)
    | WriteMax v -> det (max s v, Ack)

  let equal_resp = equal_resp
end

(* ------------------------------------------------------------------ *)
(* n-component single-writer atomic snapshot (§3.2)                    *)
(* ------------------------------------------------------------------ *)

(* The component written by Update is the invoking process's own; the
   process index is part of the operation so the spec stays a plain state
   machine. *)
module Snapshot (P : sig
  val n : int
end) =
struct
  type state = int list  (* length n *)
  type op = Scan | Update of int * int  (* process, value *)
  [@@deriving show { with_path = false }, eq]

  type resp = View of int list | Ack [@@deriving show { with_path = false }, eq]

  let name = Printf.sprintf "snapshot-%d" P.n
  let init = List.init P.n (fun _ -> 0)

  let apply s = function
    | Scan -> det (s, View s)
    | Update (p, v) ->
        if p < 0 || p >= P.n then invalid_arg "Snapshot: process out of range";
        det (List.mapi (fun i x -> if i = p then v else x) s, Ack)

  let equal_resp = equal_resp
end

(* ------------------------------------------------------------------ *)
(* Counters and logical clocks (§3.3 simple types)                     *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type state = int
  type op = Read | Add of int  (* Add may be negative: non-monotonic counter *)
  [@@deriving show { with_path = false }, eq]

  type resp = Value of int | Ack [@@deriving show { with_path = false }, eq]

  let name = "counter"
  let init = 0

  let apply s = function
    | Read -> det (s, Value s)
    | Add d -> det (s + d, Ack)

  let equal_resp = equal_resp
end

module Monotonic_counter = struct
  type state = int
  type op = Read | Inc [@@deriving show { with_path = false }, eq]
  type resp = Value of int | Ack [@@deriving show { with_path = false }, eq]

  let name = "monotonic-counter"
  let init = 0

  let apply s = function
    | Read -> det (s, Value s)
    | Inc -> det (s + 1, Ack)

  let equal_resp = equal_resp
end

(* A logical clock: Tick advances the clock and returns an ack (so Ticks
   commute, as the simple-type construction requires); Read returns the
   current time. *)
module Logical_clock = struct
  type state = int
  type op = Read | Tick [@@deriving show { with_path = false }, eq]
  type resp = Time of int | Ack [@@deriving show { with_path = false }, eq]

  let name = "logical-clock"
  let init = 0

  let apply s = function
    | Read -> det (s, Time s)
    | Tick -> det (s + 1, Ack)

  let equal_resp = equal_resp
end

(* ------------------------------------------------------------------ *)
(* Test&set family (§4.1)                                              *)
(* ------------------------------------------------------------------ *)

(* One-shot test&set: the first TestAndSet returns 0 (wins) and sets the
   state to 1; all others return 1.  With Read it is the readable variant;
   specs are permissive: Read is always allowed. *)
module Test_and_set = struct
  type state = int  (* 0 or 1 *)
  type op = TestAndSet | Read [@@deriving show { with_path = false }, eq]
  type resp = Value of int [@@deriving show { with_path = false }, eq]

  let name = "test&set"
  let init = 0

  let apply s = function
    | TestAndSet -> det (1, Value s)
    | Read -> det (s, Value s)

  let equal_resp = equal_resp
end

(* Multi-shot readable test&set (§4.1): Reset returns the state to 0. *)
module Multishot_test_and_set = struct
  type state = int
  type op = TestAndSet | Read | Reset [@@deriving show { with_path = false }, eq]
  type resp = Value of int | Ack [@@deriving show { with_path = false }, eq]

  let name = "multishot-test&set"
  let init = 0

  let apply s = function
    | TestAndSet -> det (1, Value s)
    | Read -> det (s, Value s)
    | Reset -> det (0, Ack)

  let equal_resp = equal_resp
end

(* ------------------------------------------------------------------ *)
(* Fetch&increment / fetch&add / swap (§4.2, §6)                       *)
(* ------------------------------------------------------------------ *)

module Fetch_and_inc = struct
  type state = int
  type op = FetchInc | Read [@@deriving show { with_path = false }, eq]
  type resp = Value of int [@@deriving show { with_path = false }, eq]

  let name = "fetch&inc"
  let init = 1
  (* The paper's §4.2 object starts at 1 (indices into the array M). *)

  let apply s = function
    | FetchInc -> det (s + 1, Value s)
    | Read -> det (s, Value s)

  let equal_resp = equal_resp
end

module Fetch_and_add = struct
  type state = int
  type op = FetchAdd of int | Read [@@deriving show { with_path = false }, eq]
  type resp = Value of int [@@deriving show { with_path = false }, eq]

  let name = "fetch&add"
  let init = 0

  let apply s = function
    | FetchAdd d -> det (s + d, Value s)
    | Read -> det (s, Value s)

  let equal_resp = equal_resp
end

module Swap = struct
  type state = int
  type op = SwapOp of int | Read [@@deriving show { with_path = false }, eq]
  type resp = Value of int [@@deriving show { with_path = false }, eq]

  let name = "swap"
  let init = 0

  let apply s = function
    | SwapOp v -> det (v, Value s)
    | Read -> det (s, Value s)

  let equal_resp = equal_resp
end

(* ------------------------------------------------------------------ *)
(* Sets (§4.3)                                                         *)
(* ------------------------------------------------------------------ *)

(* Put(x) adds x (idempotent, returns OK); Take returns EMPTY or removes
   and returns an arbitrary member — inherently nondeterministic. *)
module Set_obj = struct
  type state = int list  (* sorted, distinct *)
  type op = Put of int | Take [@@deriving show { with_path = false }, eq]
  type resp = Ok_ | Empty | Item of int [@@deriving show { with_path = false }, eq]

  let name = "set"
  let init = []

  let apply s = function
    | Put x -> det ((if List.mem x s then s else List.sort compare (x :: s)), Ok_)
    | Take ->
        if s = [] then det (s, Empty)
        else List.map (fun x -> (List.filter (fun y -> y <> x) s, Item x)) s

  let equal_resp = equal_resp
end

(* Multiset (§4.3, footnote 2): without the at-most-one-put-per-item
   assumption, Algorithm 2 implements a multiset — Put always adds an
   occurrence and Take removes one occurrence of any present item. *)
module Multiset_obj = struct
  type state = int list  (* sorted with repetitions *)
  type op = Put of int | Take [@@deriving show { with_path = false }, eq]
  type resp = Ok_ | Empty | Item of int [@@deriving show { with_path = false }, eq]

  let name = "multiset"
  let init = []

  let remove_one x s =
    let rec go = function
      | [] -> []
      | y :: rest -> if y = x then rest else y :: go rest
    in
    go s

  let apply s = function
    | Put x -> det (List.sort compare (x :: s), Ok_)
    | Take ->
        if s = [] then det (s, Empty)
        else List.sort_uniq compare s |> List.map (fun x -> (remove_one x s, Item x))

  let equal_resp = equal_resp
end

(* ------------------------------------------------------------------ *)
(* Queues and stacks, exact and relaxed (§5)                           *)
(* ------------------------------------------------------------------ *)

module Queue_spec = struct
  type state = int list  (* front first *)
  type op = Enq of int | Deq [@@deriving show { with_path = false }, eq]
  type resp = Ok_ | Empty | Item of int [@@deriving show { with_path = false }, eq]

  let name = "queue"
  let init = []

  let apply s = function
    | Enq x -> det (s @ [ x ], Ok_)
    | Deq -> ( match s with [] -> det ([], Empty) | x :: rest -> det (rest, Item x))

  let equal_resp = equal_resp
end

module Stack_spec = struct
  type state = int list  (* top first *)
  type op = Push of int | Pop [@@deriving show { with_path = false }, eq]
  type resp = Ok_ | Empty | Item of int [@@deriving show { with_path = false }, eq]

  let name = "stack"
  let init = []

  let apply s = function
    | Push x -> det (x :: s, Ok_)
    | Pop -> ( match s with [] -> det ([], Empty) | x :: rest -> det (rest, Item x))

  let equal_resp = equal_resp
end

(* m-stuttering queue (§5, footnote 4): each operation type carries a
   stutter counter; while the counter is below m the object may
   nondeterministically leave the state unchanged (the operation "has no
   effect": an Enq acks without enqueueing, a Deq returns the oldest item
   without removing it); at m the operation must take effect, so at least
   one in every m+1 consecutive same-type operations is effective. *)
module Stuttering_queue (P : sig
  val m : int
end) =
struct
  type state = { items : int list; enq_stutter : int; deq_stutter : int }

  let pp_state fmt s =
    Format.fprintf fmt "{items=[%s]; e=%d; d=%d}"
      (String.concat ";" (List.map string_of_int s.items))
      s.enq_stutter s.deq_stutter

  let _ = pp_state

  type op = Enq of int | Deq [@@deriving show { with_path = false }, eq]
  type resp = Ok_ | Empty | Item of int [@@deriving show { with_path = false }, eq]

  let name = Printf.sprintf "%d-stuttering-queue" P.m
  let init = { items = []; enq_stutter = 0; deq_stutter = 0 }

  let apply s = function
    | Enq x ->
        let effective = ({ s with items = s.items @ [ x ]; enq_stutter = 0 }, Ok_) in
        if s.enq_stutter >= P.m then [ effective ]
        else [ effective; ({ s with enq_stutter = s.enq_stutter + 1 }, Ok_) ]
    | Deq -> (
        match s.items with
        | [] -> [ ({ s with deq_stutter = 0 }, Empty) ]
        (* Returning Empty reflects the true state: not a stutter. *)
        | x :: rest ->
            let effective = ({ s with items = rest; deq_stutter = 0 }, Item x) in
            if s.deq_stutter >= P.m then [ effective ]
            else [ effective; ({ s with deq_stutter = s.deq_stutter + 1 }, Item x) ])

  let equal_resp = equal_resp
end

module Stuttering_stack (P : sig
  val m : int
end) =
struct
  type state = { items : int list; push_stutter : int; pop_stutter : int }
  type op = Push of int | Pop [@@deriving show { with_path = false }, eq]
  type resp = Ok_ | Empty | Item of int [@@deriving show { with_path = false }, eq]

  let name = Printf.sprintf "%d-stuttering-stack" P.m
  let init = { items = []; push_stutter = 0; pop_stutter = 0 }

  let apply s = function
    | Push x ->
        let effective = ({ s with items = x :: s.items; push_stutter = 0 }, Ok_) in
        if s.push_stutter >= P.m then [ effective ]
        else [ effective; ({ s with push_stutter = s.push_stutter + 1 }, Ok_) ]
    | Pop -> (
        match s.items with
        | [] -> [ ({ s with pop_stutter = 0 }, Empty) ]
        | x :: rest ->
            let effective = ({ s with items = rest; pop_stutter = 0 }, Item x) in
            if s.pop_stutter >= P.m then [ effective ]
            else [ effective; ({ s with pop_stutter = s.pop_stutter + 1 }, Item x) ])

  let equal_resp = equal_resp
end

(* k-out-of-order queue (§5): Deq returns (and removes) one of the k
   oldest items. *)
module Ooo_queue (P : sig
  val k : int
end) =
struct
  type state = int list
  type op = Enq of int | Deq [@@deriving show { with_path = false }, eq]
  type resp = Ok_ | Empty | Item of int [@@deriving show { with_path = false }, eq]

  let name = Printf.sprintf "%d-ooo-queue" P.k
  let init = []

  let apply s = function
    | Enq x -> det (s @ [ x ], Ok_)
    | Deq ->
        if s = [] then det ([], Empty)
        else
          List.filteri (fun i _ -> i < P.k) s
          |> List.mapi (fun i x -> (List.filteri (fun j _ -> j <> i) s, Item x))

  let equal_resp = equal_resp
end

(* Queue/stack with multiplicity (§5, [11]): concurrent Deqs/Pops may
   return the same item.  The relaxation is only observable under
   concurrency, so {e sequential} executions coincide with the exact
   object's; Definition 11's analysis is over sequential executions, and
   the paper notes the exact objects' proposal/decision sequences carry
   over unchanged.  We therefore reuse the exact specs, under names that
   keep the experiment tables honest. *)
module Queue_multiplicity = struct
  include Queue_spec

  let name = "queue-multiplicity"
end

module Stack_multiplicity = struct
  include Stack_spec

  let name = "stack-multiplicity"
end
