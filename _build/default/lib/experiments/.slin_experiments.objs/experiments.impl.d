lib/experiments/experiments.ml: Agreement Array Executors Faa_max_register Faa_snapshot Format Harness K_ordering Lincheck List Printf Progress Rw_mult_queue Sim Simple_instances Spec String Unix
