(* Infinite arrays of base objects.

   Several constructions use an unbounded array of base objects (the TS
   arrays of §4.1–§4.3, the M array of §4.2, the Items array of
   Algorithm 2).  Entries are created on demand; in the paper's model all
   of them exist in the initial configuration, and since creating a base
   object is not a step of any process, lazy creation is
   indistinguishable from that.  The table itself is bookkeeping, not a
   shared base object: it is guarded by a mutex only so the parallel
   runtime can use it. *)

type 'a t = { make : int -> 'a; table : (int, 'a) Hashtbl.t; lock : Mutex.t }

let create make = { make; table = Hashtbl.create 16; lock = Mutex.create () }

let get t i =
  Mutex.lock t.lock;
  let v =
    match Hashtbl.find_opt t.table i with
    | Some v -> v
    | None ->
        let v = t.make i in
        Hashtbl.add t.table i v;
        v
  in
  Mutex.unlock t.lock;
  v
