(* Definition 11: k-ordering objects.

   An object is k-ordering when there are per-process proposal and
   decision invocation sequences and a decision function d such that
   executing the proposals on the object, then locally simulating the
   decisions, solves k-set agreement (via Lemma 12's Algorithm B, see
   [Agreement]).  This module packages the witnesses the paper gives in
   §5 — queue, stack, queue/stack with multiplicity, m-stuttering
   queue/stack, k-out-of-order queue — together with instances (shared
   implementations supporting Algorithm B's collect/replay) to run them
   on.

   The instances:
   - [atomic_queue]/[atomic_stack]/[atomic_ooo_queue] keep the whole
     state in a single base object, i.e. they rely on a universal
     (CAS-class) primitive.  They are trivially strongly linearizable, so
     Algorithm B must succeed on them — and by Theorems 17/19 universal
     power is unavoidable here.
   - [hw_queue] is the Herlihy–Wing queue built from fetch&add and swap
     (consensus number 2).  It is linearizable but (Theorem 17) cannot be
     strongly linearizable, and Algorithm B run on it can disagree —
     experiment E4 exhibits exactly that. *)

(* A k-ordering witness: the data of Definition 11 for an n-process
   system.  [degree] is k; [prop]/[dec] are the proposal and decision
   invocation sequences; [decide i resps] maps the concatenated responses
   of process i's proposal and decision sequences to the index of the
   process whose input is adopted. *)
type ('op, 'resp) witness = {
  w_name : string;
  degree : n:int -> int;
  prop : n:int -> int -> 'op list;
  dec : n:int -> int -> 'op list;
  decide : n:int -> int -> 'resp list -> int;
}

(* A running shared instance, with the two extra capabilities Algorithm B
   needs: [collect] reads every base object (one read step each —
   possible because base objects are readable, Lemma 16) and returns
   their joint state; [replay] simulates a fresh copy of the
   implementation starting from collected states, locally (no shared
   steps). *)
type ('op, 'resp) instance =
  | Instance : {
      apply : 'op -> 'resp;
      collect : unit -> 'snap;
      replay : 'snap -> 'op list -> 'resp list;
    }
      -> ('op, 'resp) instance

(* ------------------------------------------------------------------ *)
(* Witnesses (§5's examples, verbatim)                                 *)
(* ------------------------------------------------------------------ *)

let queue_witness : (Spec.Queue_spec.op, Spec.Queue_spec.resp) witness =
  {
    w_name = "queue";
    degree = (fun ~n -> ignore n; 1);
    prop = (fun ~n i -> ignore n; [ Spec.Queue_spec.Enq i ]);
    dec = (fun ~n i -> ignore (n, i); [ Spec.Queue_spec.Deq ]);
    decide =
      (fun ~n i resps ->
        ignore (n, i);
        match List.rev resps with
        | Spec.Queue_spec.Item l :: _ -> l
        | _ -> invalid_arg "queue_witness: dequeue returned no item");
  }

let stack_witness : (Spec.Stack_spec.op, Spec.Stack_spec.resp) witness =
  {
    w_name = "stack";
    degree = (fun ~n -> ignore n; 1);
    prop = (fun ~n i -> ignore n; [ Spec.Stack_spec.Push i ]);
    dec = (fun ~n i -> ignore i; List.init (n + 1) (fun _ -> Spec.Stack_spec.Pop));
    decide =
      (fun ~n i resps ->
        ignore (n, i);
        (* The last non-Empty pop response is the bottom of the stack:
           the first push in the linearization. *)
        let last_item =
          List.fold_left
            (fun acc r -> match r with Spec.Stack_spec.Item l -> Some l | _ -> acc)
            None resps
        in
        match last_item with
        | Some l -> l
        | None -> invalid_arg "stack_witness: no pop returned an item");
  }

(* Queues and stacks with multiplicity: the relaxation is only observable
   under concurrency, so their sequential analysis — and hence the
   witness — is the exact objects' (paper §5). *)
let queue_multiplicity_witness = { queue_witness with w_name = "queue-multiplicity" }
let stack_multiplicity_witness = { stack_witness with w_name = "stack-multiplicity" }

let stuttering_queue_witness ~m : (Spec.Queue_spec.op, Spec.Queue_spec.resp) witness =
  {
    w_name = Printf.sprintf "%d-stuttering-queue" m;
    degree = (fun ~n -> ignore n; 1);
    prop = (fun ~n i -> ignore n; List.init (m + 1) (fun _ -> Spec.Queue_spec.Enq i));
    dec = (fun ~n i -> ignore (n, i); [ Spec.Queue_spec.Deq ]);
    decide =
      (fun ~n i resps ->
        ignore (n, i);
        match List.rev resps with
        | Spec.Queue_spec.Item l :: _ -> l
        | _ -> invalid_arg "stuttering_queue_witness: dequeue returned no item");
  }

let stuttering_stack_witness ~m : (Spec.Stack_spec.op, Spec.Stack_spec.resp) witness =
  {
    w_name = Printf.sprintf "%d-stuttering-stack" m;
    degree = (fun ~n -> ignore n; 1);
    prop = (fun ~n i -> ignore n; List.init (m + 1) (fun _ -> Spec.Stack_spec.Push i));
    dec = (fun ~n i -> ignore i; List.init ((n * (m + 1)) + 1) (fun _ -> Spec.Stack_spec.Pop));
    decide =
      (fun ~n i resps ->
        ignore (n, i);
        let last_item =
          List.fold_left
            (fun acc r -> match r with Spec.Stack_spec.Item l -> Some l | _ -> acc)
            None resps
        in
        match last_item with
        | Some l -> l
        | None -> invalid_arg "stuttering_stack_witness: no pop returned an item");
  }

let ooo_queue_witness ~k : (Spec.Queue_spec.op, Spec.Queue_spec.resp) witness =
  {
    w_name = Printf.sprintf "%d-ooo-queue" k;
    degree = (fun ~n -> ignore n; k);
    prop = (fun ~n i -> ignore n; [ Spec.Queue_spec.Enq i ]);
    dec = (fun ~n i -> ignore (n, i); [ Spec.Queue_spec.Deq ]);
    decide =
      (fun ~n i resps ->
        ignore (n, i);
        match List.rev resps with
        | Spec.Queue_spec.Item l :: _ -> l
        | _ -> invalid_arg "ooo_queue_witness: dequeue returned no item");
  }

(* ------------------------------------------------------------------ *)
(* Instances                                                           *)
(* ------------------------------------------------------------------ *)

let queue_step (s : int list) : Spec.Queue_spec.op -> int list * Spec.Queue_spec.resp = function
  | Spec.Queue_spec.Enq x -> (s @ [ x ], Spec.Queue_spec.Ok_)
  | Spec.Queue_spec.Deq -> (
      match s with
      | [] -> ([], Spec.Queue_spec.Empty)
      | x :: rest -> (rest, Spec.Queue_spec.Item x))

let atomic_queue (module R : Runtime_intf.S) :
    (Spec.Queue_spec.op, Spec.Queue_spec.resp) instance =
  let q = R.obj ~name:"aqueue" [] in
  Instance
    {
      apply = (fun op -> R.access ~info:"queue-op" q (fun s -> queue_step s op));
      collect = (fun () -> R.read q);
      replay =
        (fun snap ops ->
          let _, resps =
            List.fold_left
              (fun (s, acc) op ->
                let s', r = queue_step s op in
                (s', r :: acc))
              (snap, []) ops
          in
          List.rev resps);
    }

let stack_step (s : int list) : Spec.Stack_spec.op -> int list * Spec.Stack_spec.resp = function
  | Spec.Stack_spec.Push x -> (x :: s, Spec.Stack_spec.Ok_)
  | Spec.Stack_spec.Pop -> (
      match s with
      | [] -> ([], Spec.Stack_spec.Empty)
      | x :: rest -> (rest, Spec.Stack_spec.Item x))

let atomic_stack (module R : Runtime_intf.S) :
    (Spec.Stack_spec.op, Spec.Stack_spec.resp) instance =
  let s0 = R.obj ~name:"astack" [] in
  Instance
    {
      apply = (fun op -> R.access ~info:"stack-op" s0 (fun s -> stack_step s op));
      collect = (fun () -> R.read s0);
      replay =
        (fun snap ops ->
          let _, resps =
            List.fold_left
              (fun (s, acc) op ->
                let s', r = stack_step s op in
                (s', r :: acc))
              (snap, []) ops
          in
          List.rev resps);
    }

(* A k-out-of-order queue that genuinely exercises the relaxation: a
   dequeue by process p removes the (p mod k)-th oldest item (clamped to
   the queue length).  Deterministic, single-object, hence strongly
   linearizable; a valid refinement of the k-ooo specification. *)
let atomic_ooo_queue ~k (module R : Runtime_intf.S) :
    (Spec.Queue_spec.op, Spec.Queue_spec.resp) instance =
  let q = R.obj ~name:"oooqueue" [] in
  let step p (s : int list) : Spec.Queue_spec.op -> int list * Spec.Queue_spec.resp = function
    | Spec.Queue_spec.Enq x -> (s @ [ x ], Spec.Queue_spec.Ok_)
    | Spec.Queue_spec.Deq ->
        if s = [] then ([], Spec.Queue_spec.Empty)
        else
          let idx = p mod min k (List.length s) in
          let item = List.nth s idx in
          (List.filteri (fun j _ -> j <> idx) s, Spec.Queue_spec.Item item)
  in
  Instance
    {
      apply = (fun op -> R.access ~info:"ooo-op" q (fun s -> step (R.self ()) s op));
      collect = (fun () -> (R.self (), R.read q));
      replay =
        (fun (p, snap) ops ->
          let _, resps =
            List.fold_left
              (fun (s, acc) op ->
                let s', r = step p s op in
                (s', r :: acc))
              (snap, []) ops
          in
          List.rev resps);
    }

(* Herlihy–Wing queue from fetch&add and swap (consensus number 2).
   enqueue: reserve a slot with fetch&add on [back], then write the item;
   dequeue: repeatedly sweep slots 0..back-1, claiming with swap.
   Linearizable; by Theorem 17 necessarily NOT strongly linearizable.
   [capacity] bounds the slots that exist (enough for the finite
   workloads of Algorithm B: one slot per proposal enqueue). *)
let hw_queue ~capacity (module R : Runtime_intf.S) :
    (Spec.Queue_spec.op, Spec.Queue_spec.resp) instance =
  let module P = Prim.Make (R) in
  let back = P.Faa_int.make ~name:"hw.back" 0 in
  let slots = Array.init capacity (fun i -> P.Swap.make ~name:(Printf.sprintf "hw.slot%d" i) None) in
  let apply : Spec.Queue_spec.op -> Spec.Queue_spec.resp = function
    | Spec.Queue_spec.Enq x ->
        let i = P.Faa_int.fetch_and_add back 1 in
        if i >= capacity then invalid_arg "hw_queue: capacity exceeded";
        ignore (P.Swap.swap slots.(i) (Some x));
        Spec.Queue_spec.Ok_
    | Spec.Queue_spec.Deq ->
        (* Loops while the queue is observably empty; terminates in
           Algorithm B's local replays and in workloads with enough
           enqueues. *)
        let rec sweep i limit =
          if i >= limit then None
          else
            match P.Swap.swap slots.(i) None with
            | Some x -> Some x
            | None -> sweep (i + 1) limit
        in
        let rec retry () =
          let limit = min capacity (P.Faa_int.read back) in
          match sweep 0 limit with Some x -> Spec.Queue_spec.Item x | None -> retry ()
        in
        retry ()
  in
  Instance
    {
      apply;
      collect =
        (fun () ->
          let b = P.Faa_int.read back in
          let items = Array.map (fun s -> P.Swap.read s) slots in
          (b, items));
      replay =
        (fun (b, items) ops ->
          let items = Array.copy items in
          let apply_local : Spec.Queue_spec.op -> Spec.Queue_spec.resp = function
            | Spec.Queue_spec.Enq _ -> invalid_arg "hw_queue.replay: decision sequences only"
            | Spec.Queue_spec.Deq ->
                let limit = min capacity b in
                let rec sweep i =
                  if i >= limit then Spec.Queue_spec.Empty
                  else
                    match items.(i) with
                    | Some x ->
                        items.(i) <- None;
                        Spec.Queue_spec.Item x
                    | None -> sweep (i + 1)
                in
                sweep 0
          in
          List.map apply_local ops);
    }
