(** Definition 11: k-ordering objects — witnesses and instances.

    An object is k-ordering when per-process proposal and decision
    invocation sequences and a decision function [d] exist such that
    executing the proposals on the object and locally simulating the
    decisions solves k-set agreement (via {!Agreement}, Lemma 12's
    Algorithm B).  This module packages the paper's §5 witnesses —
    queue, stack, queue/stack with multiplicity, m-stuttering
    queue/stack, k-out-of-order queue — and instances to run them on. *)

(** The data of Definition 11 for an n-process system. *)
type ('op, 'resp) witness = {
  w_name : string;
  degree : n:int -> int;  (** k *)
  prop : n:int -> int -> 'op list;  (** proposal sequence of process i *)
  dec : n:int -> int -> 'op list;  (** decision sequence of process i *)
  decide : n:int -> int -> 'resp list -> int;
      (** maps the concatenated proposal+decision responses of process i
          to the index of the adopted process *)
}

(** A running shared instance with Algorithm B's two extra capabilities:
    [collect] reads every base object (one read step each — possible
    because base objects are readable, Lemma 16) and returns their joint
    state; [replay] simulates a fresh local copy from collected states
    (no shared steps). *)
type ('op, 'resp) instance =
  | Instance : {
      apply : 'op -> 'resp;
      collect : unit -> 'snap;
      replay : 'snap -> 'op list -> 'resp list;
    }
      -> ('op, 'resp) instance

(** {1 Witnesses (§5's examples)} *)

val queue_witness : (Spec.Queue_spec.op, Spec.Queue_spec.resp) witness
(** k = 1: propose by enqueueing your index, decide the first dequeue. *)

val stack_witness : (Spec.Stack_spec.op, Spec.Stack_spec.resp) witness
(** k = 1: propose by pushing; decide the last non-empty of n+1 pops
    (the bottom of the stack = first push). *)

val queue_multiplicity_witness : (Spec.Queue_spec.op, Spec.Queue_spec.resp) witness
val stack_multiplicity_witness : (Spec.Stack_spec.op, Spec.Stack_spec.resp) witness

val stuttering_queue_witness : m:int -> (Spec.Queue_spec.op, Spec.Queue_spec.resp) witness
(** k = 1: m+1 enqueues guarantee one takes effect. *)

val stuttering_stack_witness : m:int -> (Spec.Stack_spec.op, Spec.Stack_spec.resp) witness
(** k = 1: m+1 pushes; n(m+1)+1 pops. *)

val ooo_queue_witness : k:int -> (Spec.Queue_spec.op, Spec.Queue_spec.resp) witness
(** Degree k: a dequeue returns one of the k oldest items. *)

(** {1 Instances} *)

val atomic_queue :
  (module Runtime_intf.S) -> (Spec.Queue_spec.op, Spec.Queue_spec.resp) instance
(** Whole state in one base object (CAS-class) — strongly linearizable;
    by Theorem 17 the universal power is unavoidable. *)

val atomic_stack :
  (module Runtime_intf.S) -> (Spec.Stack_spec.op, Spec.Stack_spec.resp) instance

val atomic_ooo_queue :
  k:int -> (module Runtime_intf.S) -> (Spec.Queue_spec.op, Spec.Queue_spec.resp) instance
(** A k-out-of-order queue that really relaxes: a dequeue by process p
    removes the (p mod k)-th oldest item.  Deterministic single-object,
    hence strongly linearizable; makes the k bound of E3 tight. *)

val hw_queue :
  capacity:int ->
  (module Runtime_intf.S) ->
  (Spec.Queue_spec.op, Spec.Queue_spec.resp) instance
(** The Herlihy–Wing queue from fetch&add and swap: linearizable, by
    Theorem 17 necessarily NOT strongly linearizable — Algorithm B run
    on it can disagree (experiment E4).  [capacity] bounds the slot
    array (one slot per proposal enqueue suffices). *)
