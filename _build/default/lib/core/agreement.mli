(** Lemma 12 / Algorithm B: k-set agreement from a lock-free
    strongly-linearizable implementation of a k-ordering object over
    readable base objects.

    Process [p_i] with input [x]: writes [x] to [M[i]]; executes its
    proposal sequence on the shared instance, bumping its slot of a
    counter array [T] before {e every} step of the instance (the
    instrumented runtime inserts the extra write); collects
    [T]-[bases]-[T] until the two [T] collects agree — then the base
    states are a consistent snapshot; locally replays its decision
    sequence from the snapshot; decides [M[d i responses]].

    Strong linearizability of the instance is what makes decisions agree
    (every solo extension extends a common prefix-closed linearization);
    with a merely linearizable instance the local extensions can extend
    incompatible linearizations and disagree — experiments E3/E4. *)

type outcome = {
  decisions : int option array;  (** per process; [None] if crashed first *)
  inputs : int array;
}

val distinct_decisions : outcome -> int list
(** Sorted distinct decided values. *)

val valid : outcome -> bool
(** Every decision is some process's input. *)

val agreement : k:int -> outcome -> bool
(** At most [k] distinct decisions. *)

val program :
  make:((module Runtime_intf.S) -> ('op, 'resp) K_ordering.instance) ->
  ordering:('op, 'resp) K_ordering.witness ->
  inputs:int array ->
  decisions:int option array ->
  ('op, 'resp) Sim.program
(** The Algorithm B program for custom scheduling; [decisions] is filled
    in as processes decide.  The trace records the proposal operations of
    the underlying object. *)

val run_random :
  make:((module Runtime_intf.S) -> ('op, 'resp) K_ordering.instance) ->
  ordering:('op, 'resp) K_ordering.witness ->
  inputs:int array ->
  seed:int ->
  ?crash_after:(int * int) list ->
  unit ->
  outcome
(** One run under a seeded random schedule, with optional crash
    injection ([(proc, after_total_steps)] pairs). *)

type stats = {
  trials : int;
  agreement_violations : int;
  validity_violations : int;
  max_distinct : int;
}

val pp_stats : Format.formatter -> stats -> unit

val run_many :
  make:((module Runtime_intf.S) -> ('op, 'resp) K_ordering.instance) ->
  ordering:('op, 'resp) K_ordering.witness ->
  inputs:int array ->
  trials:int ->
  ?crash_prob:float ->
  seed:int ->
  unit ->
  stats
(** Many seeded runs; [crash_prob] is the per-run probability of crashing
    one random process early. *)
