(* A repair of Algorithm 2's EMPTY case — and what it costs.

   The finding (DESIGN.md §6): Algorithm 2's take may conclude EMPTY
   while a slot it already scanned is written by a put that then
   completes, leaving the take's linearization point to be fixed
   retroactively.  The repair here makes EMPTY conservative: a take
   concludes EMPTY only from a stable round in which {e every} allocated
   slot is both written and taken — an unwritten slot (a put between its
   fetch&increment and its write) blocks the verdict, so the race of the
   finding cannot arise and the strong-linearizability game verifies the
   bounded workloads that refute Algorithm 2.

   The price is progress: if a put crashes between reserving its slot and
   writing it, a take on an (actually empty) set retries forever while no
   other operation completes — the implementation is no longer lock-free,
   only obstruction-free for EMPTY answers.  The tests measure exactly
   that starvation.  Whether a lock-free strongly-linearizable set (with
   a sound EMPTY) exists from consensus-number-2 primitives is, to our
   knowledge, open — the paper's Theorem 10 claimed Algorithm 2 settles
   it, which the finding disputes. *)

module Make (R : Runtime_intf.S) (F : Object_intf.FETCH_INC) : Object_intf.SET = struct
  module P = Prim.Make (R)

  type t = {
    items : int option P.Register.t Inf_array.t;
    ts : P.Test_and_set.t Inf_array.t;
    max : F.t;
  }

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "cset." in
    {
      items =
        Inf_array.create (fun i -> P.Register.make ~name:(Printf.sprintf "%sitem%d" prefix i) None);
      ts = Inf_array.create (fun i -> P.Test_and_set.make ~name:(Printf.sprintf "%sts%d" prefix i) ());
      max = F.create ~name:(prefix ^ "max") ();
    }

  let put t x =
    let slot = F.fetch_inc t.max in
    P.Register.write (Inf_array.get t.items slot) (Some x)

  exception Took of int

  let take t =
    let rec round ~max_old =
      (* A round may conclude EMPTY only when every allocated slot is
         written AND taken, and the region did not grow since the last
         round. *)
      let all_settled = ref true in
      let max_new = F.read t.max - 1 in
      match
        for c = 1 to max_new do
          match P.Register.read (Inf_array.get t.items c) with
          | None -> all_settled := false  (* reserved but unwritten: cannot rule it out *)
          | Some x ->
              if P.Test_and_set.test_and_set (Inf_array.get t.ts c) = 0 then raise (Took x)
        done
      with
      | () ->
          if !all_settled && max_new = max_old then None else round ~max_old:max_new
      | exception Took x -> Some x
    in
    round ~max_old:0
end
