(** Object interfaces shared by the constructions.

    Each interface describes one of the object types the paper implements
    or uses as a building block.  Constructions are functors producing
    these interfaces, so they compose: e.g. Theorem 6's multi-shot
    test&set is a functor over any {!MAX_REGISTER} and {!READABLE_TS},
    instantiated with atomic base objects (Theorem 6 as stated), with
    Theorem 1's fetch&add max register (Corollary 7), or with the
    lock-free read/write max register (Corollary 8). *)

(** Max register (§3.1): ReadMax returns the largest value ever written. *)
module type MAX_REGISTER = sig
  type t

  val create : ?name:string -> unit -> t
  val write_max : t -> int -> unit

  val read_max : t -> int
  (** Initial value 0; arguments to {!write_max} must be non-negative. *)
end

(** Single-writer atomic snapshot (§3.2): component [i] is written only by
    process [i]. *)
module type SNAPSHOT = sig
  type t

  val create : ?name:string -> unit -> t

  val update : t -> int -> unit
  (** Sets the calling process's component (non-negative values). *)

  val scan : t -> int array
  (** Returns an atomic view of all components (initially all 0). *)
end

(** One-shot readable test&set (§4.1): at most one [test_and_set] returns
    0 ("wins"); [read] returns the current state. *)
module type READABLE_TS = sig
  type t

  val create : ?name:string -> unit -> t
  val test_and_set : t -> int
  val read : t -> int
end

(** Multi-shot readable test&set (§4.1): adds [reset]. *)
module type MULTISHOT_TS = sig
  type t

  val create : ?name:string -> unit -> t
  val test_and_set : t -> int
  val read : t -> int
  val reset : t -> unit
end

(** Readable fetch&increment (§4.2).  Initial value 1, as in the paper's
    use as an index allocator. *)
module type FETCH_INC = sig
  type t

  val create : ?name:string -> unit -> t

  val fetch_inc : t -> int
  (** Returns the pre-increment value. *)

  val read : t -> int
end

(** Set (§4.3): [put] adds an item (idempotent), [take] removes and
    returns an arbitrary present item, or [None] when empty. *)
module type SET = sig
  type t

  val create : ?name:string -> unit -> t
  val put : t -> int -> unit
  val take : t -> int option
end

(** Queue / stack (used by §5's reduction and the baselines). *)
module type QUEUE = sig
  type t

  val create : ?name:string -> unit -> t
  val enqueue : t -> int -> unit
  val dequeue : t -> int option
end

module type STACK = sig
  type t

  val create : ?name:string -> unit -> t
  val push : t -> int -> unit
  val pop : t -> int option
end
