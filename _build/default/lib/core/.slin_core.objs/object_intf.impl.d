lib/core/object_intf.ml:
