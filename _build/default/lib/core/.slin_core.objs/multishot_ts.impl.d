lib/core/multishot_ts.ml: Inf_array Object_intf Printf
