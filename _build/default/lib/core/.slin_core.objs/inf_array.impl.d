lib/core/inf_array.ml: Hashtbl Mutex
