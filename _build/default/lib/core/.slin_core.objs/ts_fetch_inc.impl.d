lib/core/ts_fetch_inc.ml: Inf_array Object_intf Printf
