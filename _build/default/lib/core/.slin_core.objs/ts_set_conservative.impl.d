lib/core/ts_set_conservative.ml: Inf_array Object_intf Prim Printf Runtime_intf
