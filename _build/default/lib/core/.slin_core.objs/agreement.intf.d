lib/core/agreement.mli: Format K_ordering Runtime_intf Sim
