lib/core/ts_set.ml: Inf_array Object_intf Prim Printf Runtime_intf
