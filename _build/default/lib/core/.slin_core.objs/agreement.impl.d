lib/core/agreement.ml: Array Format Fun K_ordering List Printf Random Runtime_intf Sim
