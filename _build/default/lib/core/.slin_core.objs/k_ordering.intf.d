lib/core/k_ordering.mli: Runtime_intf Spec
