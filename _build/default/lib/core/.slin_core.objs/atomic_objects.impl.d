lib/core/atomic_objects.ml: Array Object_intf Runtime_intf
