lib/core/faa_snapshot.ml: Array Bignum Object_intf Prim Runtime_intf
