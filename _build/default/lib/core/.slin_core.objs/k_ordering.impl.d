lib/core/k_ordering.ml: Array List Prim Printf Runtime_intf Spec
