lib/core/faa_max_register.ml: Array Bignum Object_intf Prim Runtime_intf
