lib/core/readable_ts.ml: Object_intf Prim Runtime_intf
