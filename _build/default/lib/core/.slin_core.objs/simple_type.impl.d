lib/core/simple_type.ml: Array Hashtbl List Mutex Object_intf
