lib/core/consensus.ml: Array Prim Printf Runtime_intf
