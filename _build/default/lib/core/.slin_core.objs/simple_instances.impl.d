lib/core/simple_instances.ml: Format List Spec
