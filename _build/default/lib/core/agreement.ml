(* Lemma 12 / Algorithm B: k-set agreement from a lock-free
   strongly-linearizable implementation of a k-ordering object over
   readable base objects.

   Process p_i with input x:
   1. writes x into M[i];
   2. executes its proposal sequence prop_i on the shared instance A,
      writing an incremented counter into T[i] {e before every step} of A
      (the instrumented runtime below inserts that write);
   3. repeats { t1 := collect(T); r := collect(R); t2 := collect(T) }
      until t1 = t2 — then r is a consistent snapshot of A's base
      objects: any process that took a step of A between the two T-reads
      would have bumped its counter first;
   4. locally simulates its decision sequence dec_i on a fresh copy of A
      started from r (a solo extension of the execution so far);
   5. decides M[d(i, responses)].

   Strong linearizability of A is what makes the decisions agree: every
   local solo extension extends a {e common} prefix-closed linearization
   of the shared execution, so the set S_alpha of possible winners is
   fixed once and for all.  With a merely linearizable A the local
   extensions may extend {e incompatible} linearizations and disagree —
   experiment E4 exhibits this with the Herlihy–Wing queue. *)

type outcome = {
  decisions : int option array;  (* per process; None if crashed before deciding *)
  inputs : int array;
}

let distinct_decisions o =
  List.sort_uniq compare (List.filter_map Fun.id (Array.to_list o.decisions))

(* Validity: every decision is some process's input. *)
let valid o = List.for_all (fun d -> Array.exists (( = ) d) o.inputs) (distinct_decisions o)

(* k-agreement: at most k distinct decisions. *)
let agreement ~k o = List.length (distinct_decisions o) <= k

(* Wrap a runtime so that every access is preceded by a write bumping the
   calling process's slot of [t_arr] — but only while that process is in
   its proposal phase ([in_prop]). *)
module Instrumented
    (R : Runtime_intf.S)
    (C : sig
      val t_arr : int R.obj array
      val in_prop : bool array
    end) : Runtime_intf.S = struct
  type 'a obj = 'a R.obj

  let obj = R.obj

  let access ?info o f =
    let me = R.self () in
    if C.in_prop.(me) then R.access ~info:"T-bump" C.t_arr.(me) (fun t -> (t + 1, ()));
    R.access ?info o f

  let read ?info o = access ?info o (fun s -> (s, s))
  let self = R.self
  let n_procs = R.n_procs
end

(* Build the Sim program.  [decisions] is filled in as processes decide.
   The trace records the proposal/decision operations of A. *)
let program ~(make : (module Runtime_intf.S) -> ('op, 'resp) K_ordering.instance)
    ~(ordering : ('op, 'resp) K_ordering.witness) ~(inputs : int array)
    ~(decisions : int option array) : ('op, 'resp) Sim.program =
  let n = Array.length inputs in
  {
    Sim.procs = n;
    boot =
      (fun w ->
        let module R = (val Sim.runtime w) in
        let m_arr = Array.init n (fun i -> R.obj ~name:(Printf.sprintf "M%d" i) None) in
        let t_arr = Array.init n (fun i -> R.obj ~name:(Printf.sprintf "T%d" i) 0) in
        let in_prop = Array.make n false in
        let module RI =
          Instrumented
            (R)
            (struct
              let t_arr = t_arr
              let in_prop = in_prop
            end)
        in
        let (K_ordering.Instance inst) = make (module RI : Runtime_intf.S) in
        for i = 0 to n - 1 do
          Sim.spawn w ~proc:i (fun () ->
              (* Step 2: publish the input. *)
              R.access ~info:"M-write" m_arr.(i) (fun _ -> (Some inputs.(i), ()));
              (* Step 3: run the proposal sequence, instrumented. *)
              in_prop.(i) <- true;
              let prop_resps =
                List.map
                  (fun op -> Sim.operation w ~op ~resp:Fun.id (fun () -> inst.apply op))
                  (ordering.K_ordering.prop ~n i)
              in
              in_prop.(i) <- false;
              (* Steps 4–5: collect until stable. *)
              let collect_t () = Array.map (fun t -> R.read ~info:"T-read" t) t_arr in
              let rec stable_collect () =
                let t1 = collect_t () in
                let r = inst.collect () in
                let t2 = collect_t () in
                if t1 = t2 then r else stable_collect ()
              in
              let r = stable_collect () in
              (* Step 6: local solo simulation of the decision sequence. *)
              let dec_resps = inst.replay r (ordering.K_ordering.dec ~n i) in
              (* Step 7: decide. *)
              let l = ordering.K_ordering.decide ~n i (prop_resps @ dec_resps) in
              match R.read ~info:"M-read" m_arr.(l) with
              | Some v -> decisions.(i) <- Some v
              | None ->
                  (* Unreachable when the witness is correct: d returns a
                     process that completed its proposals, whose M slot is
                     set. *)
                  failwith "Agreement: decided process never published its input")
        done);
  }

(* Run Algorithm B once under a random schedule. *)
let run_random ~make ~ordering ~inputs ~seed ?(crash_after = []) () : outcome =
  let decisions = Array.make (Array.length inputs) None in
  let prog = program ~make ~ordering ~inputs ~decisions in
  ignore (Sim.run_random ~seed ~crash_after prog);
  { decisions; inputs }

(* Run many random schedules (with optional crash injection) and report
   how many violated validity or k-agreement. *)
type stats = { trials : int; agreement_violations : int; validity_violations : int; max_distinct : int }

let pp_stats fmt s =
  Format.fprintf fmt "trials=%d agreement-violations=%d validity-violations=%d max-distinct=%d"
    s.trials s.agreement_violations s.validity_violations s.max_distinct

let run_many ~make ~ordering ~inputs ~trials ?(crash_prob = 0.0) ~seed () : stats =
  let rng = Random.State.make [| seed |] in
  let n = Array.length inputs in
  let k = ordering.K_ordering.degree ~n in
  let agreement_violations = ref 0 and validity_violations = ref 0 and max_distinct = ref 0 in
  for _ = 1 to trials do
    let crash_after =
      if crash_prob > 0.0 && Random.State.float rng 1.0 < crash_prob then
        [ (Random.State.int rng n, Random.State.int rng 30) ]
      else []
    in
    let o = run_random ~make ~ordering ~inputs ~seed:(Random.State.int rng 1_000_000) ~crash_after () in
    let d = List.length (distinct_decisions o) in
    if d > !max_distinct then max_distinct := d;
    if not (agreement ~k o) then incr agreement_violations;
    if not (valid o) then incr validity_violations
  done;
  { trials; agreement_violations = !agreement_violations; validity_violations = !validity_violations; max_distinct = !max_distinct }
