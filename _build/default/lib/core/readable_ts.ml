(* Theorem 5: a wait-free strongly-linearizable readable test&set from
   (plain, non-readable) test&set and a read/write register.

   The register [state] mirrors the object's state at all times.  A
   test&set first applies the underlying ts, then writes 1 into [state];
   a read just reads [state].  Linearization (from the paper's proof):
   reads linearize at their read of [state]; the winning test&set
   linearizes at the first write of 1 into [state], immediately followed
   by every other test&set that had already accessed [ts] by then; all
   remaining test&sets linearize at their access to [ts].  These points
   never move in extensions, hence strong linearizability. *)

module Make (R : Runtime_intf.S) : Object_intf.READABLE_TS = struct
  module P = Prim.Make (R)

  type t = { state : int P.Register.t; ts : P.Test_and_set.t }

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "rts." in
    {
      state = P.Register.make ~name:(prefix ^ "state") 0;
      ts = P.Test_and_set.make ~name:(prefix ^ "ts") ();
    }

  let test_and_set t =
    let r = P.Test_and_set.test_and_set t.ts in
    P.Register.write t.state 1;
    r

  let read t = P.Register.read t.state
end
