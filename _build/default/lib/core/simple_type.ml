(* Theorems 3–4 / Algorithm 1: a wait-free strongly-linearizable
   implementation of any "simple type" from atomic snapshots
   (Aspnes–Herlihy, as analyzed by Ovens–Woelfel and re-proved in the
   paper via forward simulation).

   A simple type is an object in which any two operations either commute
   or one overwrites the other.  The construction maintains a grow-only
   DAG of operation nodes: each node carries an invocation, its computed
   response, and pointers to the last node of every process at the time
   the operation started (the [preceding] array).  The only shared base
   object is one snapshot, [root], holding the id of each process's
   latest node.  To execute an invocation a process:

   1. scans [root] and gathers the whole graph G reachable through
      [preceding] pointers,
   2. linearizes G with LINGRAPH: start from the real-time partial order,
      add dominance edges (the dominated operation goes first) whenever
      they do not close a cycle, and take a canonical topological sort —
      canonical so that all processes seeing the same G compute the same
      sequence,
   3. computes its response as the one obtained by running its invocation
      after that sequence,
   4. publishes a new node by updating its component of [root].

   Nodes are immutable once published; following a [preceding] pointer is
   a local computation, not a base-object step (in the paper, nodes live
   in memory that is written once before its address is released).  The
   node table below is that memory; its mutex matters only under the
   parallel runtime.

   Instantiating the snapshot with Theorem 2's fetch&add snapshot yields
   Theorem 4: any simple type, wait-free and strongly linearizable, from
   fetch&add. *)

module type SIMPLE_TYPE = sig
  type op
  type resp
  type state

  val init : state
  val apply : state -> op -> state * resp

  val overwrites : op -> op -> bool
  (** [overwrites o2 o1]: after executing [o2], the state is the same
      whether or not [o1] was executed immediately before it. *)
end

module Make (S : SIMPLE_TYPE) (Snap : Object_intf.SNAPSHOT) : sig
  type t

  val create : ?name:string -> n:int -> unit -> t
  (** [n] is the number of processes (the snapshot width). *)

  val execute : t -> self:int -> S.op -> S.resp
  (** Executes one high-level operation on behalf of process [self]. *)
end = struct
  type node = {
    node_id : int;  (* = seq * n + proc + 1; 0 means "none" *)
    proc : int;
    op : S.op;
    preceding : int array;  (* node ids; 0 = none *)
  }

  type t = {
    root : Snap.t;
    table : (int, node) Hashtbl.t;
    table_lock : Mutex.t;
    seq : int array;  (* per-process local publication counter *)
    n : int;
  }

  let create ?name ~n () =
    {
      root = Snap.create ?name ();
      table = Hashtbl.create 64;
      table_lock = Mutex.create ();
      seq = Array.make n 0;
      n;
    }

  let find_node t id =
    Mutex.lock t.table_lock;
    let v = Hashtbl.find t.table id in
    Mutex.unlock t.table_lock;
    v

  let publish_node t node =
    Mutex.lock t.table_lock;
    Hashtbl.replace t.table node.node_id node;
    Mutex.unlock t.table_lock

  (* Gather the graph reachable from the ids in [view]. *)
  let collect_graph t view =
    let seen = Hashtbl.create 32 in
    let rec visit id =
      if id <> 0 && not (Hashtbl.mem seen id) then begin
        let node = find_node t id in
        Hashtbl.add seen id node;
        Array.iter visit node.preceding
      end
    in
    Array.iter visit view;
    Hashtbl.fold (fun _ node acc -> node :: acc) seen []

  (* [dominates a b]: b is dominated by a — a overwrites b but not
     vice-versa, or they overwrite each other and b's process id is
     smaller (the paper's tie-break). *)
  let dominates a b =
    let ab = S.overwrites a.op b.op and ba = S.overwrites b.op a.op in
    (ab && not ba) || (ab && ba && b.proc < a.proc)

  (* LINGRAPH + canonical topological sort.  [nodes] is the collected
     graph; the real-time order is the reachability order of [preceding]
     pointers. *)
  let linearize nodes =
    let nodes = Array.of_list (List.sort (fun a b -> compare a.node_id b.node_id) nodes) in
    let k = Array.length nodes in
    let index_of = Hashtbl.create k in
    Array.iteri (fun i node -> Hashtbl.replace index_of node.node_id i) nodes;
    (* before.(i).(j): node i must be linearized before node j. *)
    let before = Array.make_matrix k k false in
    let add_closure a b =
      (* a -> b, then close transitively. *)
      if not before.(a).(b) then begin
        before.(a).(b) <- true;
        for x = 0 to k - 1 do
          for y = 0 to k - 1 do
            if
              (x = a || before.(x).(a))
              && (y = b || before.(b).(y))
              && not before.(x).(y) && x <> y
            then before.(x).(y) <- true
          done
        done
      end
    in
    (* Real-time edges: each direct preceding pointer, transitively
       closed.  (Reachability through preceding pointers is exactly the
       order recorded by the algorithm.) *)
    Array.iteri
      (fun j node ->
        Array.iter
          (fun pid ->
            if pid <> 0 then
              match Hashtbl.find_opt index_of pid with
              | Some i -> add_closure i j
              | None -> ())
          node.preceding)
      nodes;
    (* Dominance edges, dominated first, skipping cycle-closing ones.
       The scan order (increasing node_id pairs) is canonical. *)
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        if dominates nodes.(i) nodes.(j) && not before.(i).(j) then add_closure j i
        else if dominates nodes.(j) nodes.(i) && not before.(j).(i) then add_closure i j
      done
    done;
    (* Canonical topological sort: repeatedly take the minimal-id node
       with no unprocessed predecessor. *)
    let emitted = Array.make k false in
    let order = ref [] in
    for _ = 1 to k do
      let pick = ref (-1) in
      for i = k - 1 downto 0 do
        if not emitted.(i) then begin
          let free = ref true in
          for j = 0 to k - 1 do
            if (not emitted.(j)) && before.(j).(i) then free := false
          done;
          if !free then pick := i
        end
      done;
      assert (!pick >= 0);
      emitted.(!pick) <- true;
      order := nodes.(!pick) :: !order
    done;
    List.rev !order

  let response_after sequence op =
    let state = List.fold_left (fun st node -> fst (S.apply st node.op)) S.init sequence in
    snd (S.apply state op)

  let execute t ~self op =
    let view = Snap.scan t.root in
    let graph = collect_graph t view in
    let sequence = linearize graph in
    let resp = response_after sequence op in
    let seq = t.seq.(self) in
    t.seq.(self) <- seq + 1;
    let node =
      { node_id = (seq * t.n) + self + 1; proc = self; op; preceding = Array.copy view }
    in
    publish_node t node;
    Snap.update t.root node.node_id;
    resp
end
