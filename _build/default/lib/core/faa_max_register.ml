(* Theorem 1: a wait-free strongly-linearizable max register from
   fetch&add.

   One wide register packs every process's personal maximum, in unary,
   with interleaved bits: process i owns absolute bits i, n+i, 2n+i, ...
   of the register, and stores the value v as v consecutive one-bits
   (stream bits 0..v-1).  To raise its maximum from prev to k, process i
   fetch&adds the number whose stream-i bits prev..k-1 are set; a read is
   fetch&add(R, 0) followed by local decoding.  Every operation is a
   single fetch&add, which is its linearization point — hence strong
   linearizability.

   The paper has WriteMax apply fetch&add(R, 0) even when the write does
   not raise the process's maximum ("not needed for correctness, but it
   simplifies the linearization proof"); we keep that step for
   faithfulness, so WriteMax is always exactly one base-object step. *)

module Make (R : Runtime_intf.S) : sig
  include Object_intf.MAX_REGISTER

  val width_bits : t -> int
  (** Bits currently used by the backing wide register — instrumentation
      for the §6 discussion of storing "extremely large values" (bench
      E5); reads the register (one step). *)
end = struct
  module P = Prim.Make (R)

  type t = { reg : P.Faa_wide.t; prev_local_max : int array }

  let create ?name () =
    { reg = P.Faa_wide.make ?name Bignum.zero; prev_local_max = Array.make (R.n_procs ()) 0 }

  (* Unary encoding of the step prev -> k in process i's stream: bits
     prev..k-1 set, i.e. (2^k - 2^prev), deposited at stride n. *)
  let unary_delta ~n ~i ~prev ~k =
    let stream = Bignum.sub (Bignum.pow2 k) (Bignum.pow2 prev) in
    Bignum.Signed.of_nat (Bignum.deposit_stride stream ~offset:i ~stride:n)

  let write_max t k =
    if k < 0 then invalid_arg "Faa_max_register.write_max: negative";
    let i = R.self () and n = R.n_procs () in
    let prev = t.prev_local_max.(i) in
    if k <= prev then ignore (P.Faa_wide.fetch_and_add t.reg Bignum.Signed.zero)
    else begin
      ignore (P.Faa_wide.fetch_and_add t.reg (unary_delta ~n ~i ~prev ~k));
      t.prev_local_max.(i) <- k
    end

  let width_bits t = Bignum.num_bits (P.Faa_wide.read t.reg)

  let read_max t =
    let n = R.n_procs () in
    let packed = P.Faa_wide.read t.reg in
    let best = ref 0 in
    for i = 0 to n - 1 do
      (* Stream i holds a unary value: contiguous ones from bit 0, so the
         value is the position of the highest set bit plus one. *)
      let v = Bignum.num_bits (Bignum.extract_stride packed ~offset:i ~stride:n) in
      if v > !best then best := v
    done;
    !best
end
