(* Atomic reference objects: every operation is a single base-object
   access, so every one of these is trivially strongly linearizable (the
   linearization point is the access itself and never moves).

   They play three roles:
   - the "atomic base objects" some theorems assume (e.g. Theorem 6 uses
     an atomic max register and atomic readable test&sets);
   - the specification-level oracles the checkers are sanity-tested
     against;
   - the strongly-linearizable queue/stack needed to run Lemma 12's
     Algorithm B positively — these use a single whole-state object, i.e.
     a universal (CAS-class) primitive, which is exactly what the paper
     says is required: by Theorem 17 no consensus-number-2 primitive
     could replace it. *)

module Make (R : Runtime_intf.S) = struct
  module Max_register : Object_intf.MAX_REGISTER = struct
    type t = int R.obj

    let create ?name () = R.obj ?name 0

    let write_max t v =
      if v < 0 then invalid_arg "Max_register.write_max: negative";
      R.access ~info:"writeMax" t (fun s -> (max s v, ()))

    let read_max t = R.read ~info:"readMax" t
  end

  module Readable_ts : Object_intf.READABLE_TS = struct
    type t = int R.obj

    let create ?name () = R.obj ?name 0
    let test_and_set t = R.access ~info:"test&set" t (fun s -> (1, s))
    let read t = R.read t
  end

  module Multishot_ts : Object_intf.MULTISHOT_TS = struct
    type t = int R.obj

    let create ?name () = R.obj ?name 0
    let test_and_set t = R.access ~info:"test&set" t (fun s -> (1, s))
    let read t = R.read t
    let reset t = R.access ~info:"reset" t (fun _ -> (0, ()))
  end

  module Fetch_inc : Object_intf.FETCH_INC = struct
    type t = int R.obj

    let create ?name () = R.obj ?name 1
    let fetch_inc t = R.access ~info:"fetch&inc" t (fun s -> (s + 1, s))
    let read t = R.read t
  end

  module Snapshot : Object_intf.SNAPSHOT = struct
    type t = int array R.obj

    let create ?name () = R.obj ?name (Array.make (R.n_procs ()) 0)

    let update t v =
      if v < 0 then invalid_arg "Snapshot.update: negative";
      let p = R.self () in
      R.access ~info:"update" t (fun s ->
          let s' = Array.copy s in
          s'.(p) <- v;
          (s', ()))

    let scan t = R.read ~info:"scan" t
  end

  module Queue : Object_intf.QUEUE = struct
    type t = int list R.obj  (* front first *)

    let create ?name () = R.obj ?name []
    let enqueue t x = R.access ~info:"enq" t (fun s -> (s @ [ x ], ()))

    let dequeue t =
      R.access ~info:"deq" t (function [] -> ([], None) | x :: rest -> (rest, Some x))
  end

  module Stack : Object_intf.STACK = struct
    type t = int list R.obj  (* top first *)

    let create ?name () = R.obj ?name []
    let push t x = R.access ~info:"push" t (fun s -> (x :: s, ()))
    let pop t = R.access ~info:"pop" t (function [] -> ([], None) | x :: rest -> (rest, Some x))
  end
end
