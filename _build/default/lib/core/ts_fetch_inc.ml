(* Theorem 9: a lock-free strongly-linearizable readable fetch&increment
   from test&set (via Theorem 5's readable test&set).

   An infinite array M of readable test&sets encodes the counter: the
   object's state is the smallest index whose test&set is still 0.
   fetch&increment applies test&set to M[1], M[2], ... until it wins
   (obtains 0) and returns that index; read scans with reads until it
   sees a 0.  Operations linearize when they obtain their 0 — a fixed
   point, hence strong linearizability.  The scan is unbounded only when
   other fetch&increments keep completing, hence lock-freedom (not
   wait-freedom: the paper poses wait-free fetch&inc from test&set as an
   open question).

   This generalizes the one-shot fetch&increment of Afek–Weisberger–
   Weisman, which the paper notes is strongly linearizable — unlike their
   multi-shot version (see the baselines library). *)

module Make (T : Object_intf.READABLE_TS) : Object_intf.FETCH_INC = struct
  type t = T.t Inf_array.t

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "fi." in
    Inf_array.create (fun i -> T.create ~name:(Printf.sprintf "%sm%d" prefix i) ())

  let fetch_inc t =
    let rec go i = if T.test_and_set (Inf_array.get t i) = 0 then i else go (i + 1) in
    go 1

  let read t =
    let rec go i = if T.read (Inf_array.get t i) = 0 then i else go (i + 1) in
    go 1
end
